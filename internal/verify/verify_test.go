package verify

import (
	"testing"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/harness"
	"sierra/internal/pointer"
	"sierra/internal/race"
	"sierra/internal/shbg"
	"sierra/internal/symexec"
)

// analyzePairs runs the static pipeline up to racy pairs with verdicts.
func analyzePairs(t *testing.T, app *apk.App) (*actions.Registry, []race.Pair, []symexec.Verdict) {
	t.Helper()
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	g := shbg.Build(reg, res, shbg.Options{})
	pairs := race.RacyPairs(reg, g, race.CollectAccesses(reg, res))
	ref := symexec.NewRefuter(reg, res, symexec.Config{})
	verdicts := make([]symexec.Verdict, len(pairs))
	for i, p := range pairs {
		verdicts[i] = ref.Check(p)
	}
	return reg, pairs, verdicts
}

func pairOn(reg *actions.Registry, pairs []race.Pair, field, cb1, cb2 string) (race.Pair, bool) {
	for _, p := range pairs {
		if p.A.Field != field {
			continue
		}
		n1 := reg.Get(p.A.Action).Callback
		n2 := reg.Get(p.B.Action).Callback
		if (n1 == cb1 && n2 == cb2) || (n1 == cb2 && n2 == cb1) {
			return p, true
		}
	}
	return race.Pair{}, false
}

func TestTrueRaceIsDynamicallyConfirmed(t *testing.T) {
	reg, pairs, _ := analyzePairs(t, corpus.NewsApp())
	p, ok := pairOn(reg, pairs, "mData", "doInBackground", "onScroll")
	if !ok {
		t.Fatal("Fig 1 pair missing")
	}
	out := Witness(corpus.NewsApp, p, Options{Schedules: 120, EventsPerSchedule: 60, Seed: 1})
	if !out.Confirmed() {
		t.Fatalf("the Fig 1 race should be witnessable in both orders: %+v", out)
	}
	if out.WitnessSeedAB < 0 || out.WitnessSeedBA < 0 {
		t.Errorf("witness seeds not recorded: %+v", out)
	}
}

func TestRefutedPairIsNeverConfirmed(t *testing.T) {
	// The soundness cross-check: the statically-refuted guarded pair
	// (Fig 8's mAccumTime) must not be witnessable in both orders — the
	// guard makes one order semantically impossible.
	reg, pairs, verdicts := analyzePairs(t, corpus.SudokuTimerApp())
	checked := 0
	for i, p := range pairs {
		if verdicts[i].TruePositive || p.A.Field != "mAccumTime" {
			continue
		}
		_ = reg
		out := Witness(corpus.SudokuTimerApp, p, Options{Schedules: 150, EventsPerSchedule: 80, Seed: 7})
		if out.Confirmed() {
			t.Errorf("refuted pair %s witnessed in both orders (seeds %d/%d) — refuter unsound",
				p.Key(), out.WitnessSeedAB, out.WitnessSeedBA)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no refuted mAccumTime pairs to check")
	}
}

func TestRefuterSoundOnGeneratedApp(t *testing.T) {
	// Broader cross-validation: on a generated corpus app, no refuted
	// pair may be dynamically confirmed.
	row, _ := corpus.RowByName("VuDroid")
	app, _ := corpus.NamedApp(row)
	_, pairs, verdicts := analyzePairs(t, app)
	factory := func() *apk.App {
		a, _ := corpus.NamedApp(row)
		return a
	}
	refuted := 0
	for i, p := range pairs {
		if verdicts[i].TruePositive {
			continue
		}
		refuted++
		if refuted > 6 {
			break // bound test time; each pair runs many schedules
		}
		out := Witness(factory, p, Options{Schedules: 60, EventsPerSchedule: 60, Seed: 3})
		if out.Confirmed() {
			t.Errorf("refuted pair %s dynamically confirmed — refuter unsound", p.Key())
		}
	}
	if refuted == 0 {
		t.Skip("no refuted pairs on this app")
	}
}

func TestGuardRaceConfirmed(t *testing.T) {
	// The guard flag itself is a true race and should be confirmable.
	reg, pairs, verdicts := analyzePairs(t, corpus.SudokuTimerApp())
	for i, p := range pairs {
		if !verdicts[i].TruePositive || p.A.Field != "mIsRunning" {
			continue
		}
		cb1 := reg.Get(p.A.Action).Callback
		cb2 := reg.Get(p.B.Action).Callback
		if !(cb1 == "onPause" || cb2 == "onPause") {
			continue
		}
		out := Witness(corpus.SudokuTimerApp, p, Options{Schedules: 200, EventsPerSchedule: 80, Seed: 5})
		if !out.Confirmed() {
			t.Logf("guard race %s not confirmed in %d schedules (acceptable: dynamic search is best-effort)", p.Key(), out.Schedules)
		}
		return
	}
	t.Fatal("no surviving guard pair found")
}

func TestWitnessAllShapes(t *testing.T) {
	_, pairs, _ := analyzePairs(t, corpus.NewsApp())
	reports := WitnessAll(corpus.NewsApp, pairs, Options{Schedules: 10, EventsPerSchedule: 40, Seed: 2})
	if len(reports) != len(pairs) {
		t.Fatalf("reports = %d, want %d", len(reports), len(pairs))
	}
	for _, r := range reports {
		if r.Outcome.Schedules == 0 {
			t.Error("no schedules run")
		}
		if r.Outcome.Confirmed() && (r.Outcome.WitnessSeedAB < 0 || r.Outcome.WitnessSeedBA < 0) {
			t.Error("confirmed without witness seeds")
		}
	}
}

func TestOutcomeConfirmedSemantics(t *testing.T) {
	if (Outcome{ObservedAB: true}).Confirmed() {
		t.Error("one order is not a confirmation")
	}
	if !(Outcome{ObservedAB: true, ObservedBA: true}).Confirmed() {
		t.Error("both orders must confirm")
	}
}
