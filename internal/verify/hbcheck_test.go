package verify

import (
	"strings"
	"testing"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/frontend"
	"sierra/internal/harness"
	"sierra/internal/interp"
	"sierra/internal/pointer"
	"sierra/internal/shbg"
)

// mapEvent resolves a trace event to its static action id, or -1 when
// the mapping is ambiguous (several actions share the label) or unknown.
// occurrence is the 1-based count of this label so far in the trace —
// it distinguishes the duplicated lifecycle instances (first onResume is
// instance 1, later ones instance 2, mirroring the harness model).
func mapEvent(reg *actions.Registry, launcher string, ev *interp.TraceEvent, occurrence int) int {
	var cands []*actions.Action
	switch ev.Kind {
	case interp.EvLifecycle:
		inst := 1
		if occurrence > 1 && (ev.Label == frontend.OnStart || ev.Label == frontend.OnResume) {
			inst = 2
		}
		for _, a := range reg.Actions() {
			if a.Kind == actions.KindLifecycle && a.Class == launcher &&
				a.Callback == ev.Label && a.Instance == inst {
				cands = append(cands, a)
			}
		}
	default:
		// Labels look like "run[TimerRunnable]" / "onClick[Click0_0]".
		open := strings.IndexByte(ev.Label, '[')
		if open < 0 {
			return -1
		}
		cb := ev.Label[:open]
		cls := strings.TrimSuffix(ev.Label[open+1:], "]")
		for _, a := range reg.Actions() {
			if a.Callback == cb && a.Class == cls {
				cands = append(cands, a)
			}
		}
	}
	if len(cands) != 1 {
		return -1
	}
	return cands[0].ID
}

// TestStaticHBRespectsDynamicOrder is the end-to-end soundness
// cross-check: if the SHBG claims a ≺ b, no execution may run b's sole
// occurrence before a's sole occurrence. Restricting to labels that
// occur exactly once per trace sidesteps the instance conflation that
// static action nodes inherently have.
func TestStaticHBRespectsDynamicOrder(t *testing.T) {
	apps := []struct {
		name    string
		factory func() *apk.App
	}{
		{"newsapp", corpus.NewsApp},
		{"sudoku", corpus.SudokuTimerApp},
		{"dbapp", corpus.DatabaseApp},
		{"nullguard", corpus.NullGuardApp},
		{"gen-VuDroid", func() *apk.App {
			row, _ := corpus.RowByName("VuDroid")
			a, _ := corpus.NamedApp(row)
			return a
		}},
		{"gen-SuperGenPass", func() *apk.App {
			row, _ := corpus.RowByName("SuperGenPass")
			a, _ := corpus.NamedApp(row)
			return a
		}},
	}
	for _, tc := range apps {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			app := tc.factory()
			hs := harness.Generate(app)
			reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
			// The soundness property is checked against the
			// instance-sound core: the §6.4 GUI-before-stop filter
			// deliberately conflates instances (see Options doc) and is
			// exempt by construction.
			g := shbg.Build(reg, res, shbg.Options{DisableGUITeardownOrder: true})
			launcher := app.Launcher().Class

			violations := 0
			for seed := int64(0); seed < 40; seed++ {
				m := interp.NewMachine(tc.factory(), seed)
				m.RegisterManifestReceivers()
				tr := m.Run(60)

				// Map events whose labels occur exactly once.
				labelCount := map[string]int{}
				for _, ev := range tr.Events {
					labelCount[ev.Label]++
				}
				type mapped struct {
					order  int
					action int
				}
				var seq []mapped
				occ := map[string]int{}
				for i, ev := range tr.Events {
					occ[ev.Label]++
					if labelCount[ev.Label] != 1 {
						continue
					}
					if aid := mapEvent(reg, launcher, ev, occ[ev.Label]); aid >= 0 {
						seq = append(seq, mapped{order: i, action: aid})
					}
				}
				for i := 0; i < len(seq); i++ {
					for j := i + 1; j < len(seq); j++ {
						earlier, later := seq[i], seq[j]
						if earlier.action == later.action {
							continue
						}
						// The SHBG must not order the later event's
						// action before the earlier one.
						if g.HB(later.action, earlier.action) {
							violations++
							if violations <= 5 {
								t.Errorf("seed %d: observed %s before %s but SHBG claims %s ≺ %s",
									seed,
									reg.Get(earlier.action).Name(), reg.Get(later.action).Name(),
									reg.Get(later.action).Name(), reg.Get(earlier.action).Name())
							}
						}
					}
				}
			}
			if violations > 0 {
				t.Fatalf("%d HB soundness violations", violations)
			}
		})
	}
}

// TestDynamicPostedByCoveredByStaticHB: every dynamically observed
// poster/enabler relationship must be covered statically — either a
// spawn record or an HB edge from the enabling action (GUI events are
// enabled by the callback that registered the listener; static HB covers
// that through the dominance rules rather than spawn records).
func TestDynamicPostedByCoveredByStaticHB(t *testing.T) {
	app := corpus.NewsApp()
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	g := shbg.Build(reg, res, shbg.Options{})
	launcher := app.Launcher().Class

	for seed := int64(0); seed < 30; seed++ {
		m := interp.NewMachine(corpus.NewsApp(), seed)
		tr := m.Run(60)
		occ := map[string]int{}
		byID := map[int]int{} // event id -> action id
		for _, ev := range tr.Events {
			occ[ev.Label]++
			byID[ev.ID] = mapEvent(reg, launcher, ev, occ[ev.Label])
		}
		for _, ev := range tr.Events {
			if ev.Kind == interp.EvLifecycle || ev.PostedBy < 0 {
				continue
			}
			child, parent := byID[ev.ID], byID[ev.PostedBy]
			if child < 0 || parent < 0 || child == parent {
				continue
			}
			covered := g.HB(parent, child)
			for _, sp := range reg.Get(child).Spawns {
				if sp.From == parent {
					covered = true
				}
			}
			if !covered {
				t.Errorf("seed %d: runtime posted/enabled %s from %s but static HB has no cover",
					seed, reg.Get(child).Name(), reg.Get(parent).Name())
			}
		}
	}
}
