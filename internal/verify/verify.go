// Package verify implements the static+dynamic combination the paper
// proposes in §6.4: SIERRA's over-approximated race reports are handed
// to the runtime simulator, which searches randomized schedules for
// executions that witness the racy accesses in both orders. A report
// witnessed both ways is dynamically confirmed; a refuted pair must
// never be witnessed both ways — which makes this package double as a
// soundness cross-check between the symbolic refuter and the runtime
// semantics.
package verify

import (
	"sierra/internal/apk"
	"sierra/internal/interp"
	"sierra/internal/ir"
	"sierra/internal/race"
)

// Options tunes the schedule search.
type Options struct {
	// Schedules is how many randomized executions to try (default 50).
	Schedules int
	// EventsPerSchedule bounds each execution (default 60).
	EventsPerSchedule int
	// Seed makes the search reproducible.
	Seed int64
}

// Outcome reports what the schedule search observed for one pair.
type Outcome struct {
	// ObservedAB: some execution performed the A access before the B
	// access on overlapping state; ObservedBA is the reverse.
	ObservedAB, ObservedBA bool
	// Schedules is how many executions were run.
	Schedules int
	// WitnessSeedAB / WitnessSeedBA are seeds of witnessing schedules
	// (-1 when not observed).
	WitnessSeedAB, WitnessSeedBA int64
}

// Confirmed reports whether both orders were observed — the dynamic
// confirmation that the pair's order is genuinely nondeterministic.
func (o Outcome) Confirmed() bool { return o.ObservedAB && o.ObservedBA }

// Witness searches for executions exhibiting the pair's two accesses in
// both orders. factory must produce a fresh app per run (the simulator
// mutates heap state).
func Witness(factory func() *apk.App, pair race.Pair, opts Options) Outcome {
	out, _ := WitnessErr(func() (*apk.App, error) { return factory(), nil }, pair, opts)
	return out
}

// WitnessErr is Witness with a fallible factory: the first factory
// error aborts the schedule search and is returned alongside whatever
// was observed up to that point (callers exit cleanly instead of
// panicking inside the factory).
func WitnessErr(factory func() (*apk.App, error), pair race.Pair, opts Options) (Outcome, error) {
	if opts.Schedules == 0 {
		opts.Schedules = 50
	}
	if opts.EventsPerSchedule == 0 {
		opts.EventsPerSchedule = 60
	}
	out := Outcome{WitnessSeedAB: -1, WitnessSeedBA: -1}
	for s := 0; s < opts.Schedules; s++ {
		if out.Confirmed() {
			break
		}
		app, err := factory()
		if err != nil {
			return out, err
		}
		seed := opts.Seed + int64(s)*104729
		m := interp.NewMachine(app, seed)
		m.RegisterManifestReceivers()
		tr := m.Run(opts.EventsPerSchedule)
		out.Schedules++
		ab, ba := observe(tr, pair.A.Pos, pair.B.Pos)
		if ab && !out.ObservedAB {
			out.ObservedAB = true
			out.WitnessSeedAB = seed
		}
		if ba && !out.ObservedBA {
			out.ObservedBA = true
			out.WitnessSeedBA = seed
		}
	}
	return out, nil
}

// observation is one executed access: its event index and the concrete
// object it touched.
type observation struct {
	event int
	objID int
}

// posKey identifies a statement position structurally (method qualified
// name + block + index). The simulator runs a fresh program instance per
// schedule, so ir.Pos pointer identity cannot match across instances.
func posKey(p ir.Pos) string {
	if p.Method == nil {
		return ""
	}
	return p.Method.QualifiedName() + "@" + itoa(p.Block) + "." + itoa(p.Index)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// observe scans a trace for accesses at the two static positions
// touching the same concrete object, reporting which orders occurred.
//
// An ordering only counts when the two accesses are *adjacent* with
// respect to their object: no event between them writes that object.
// This matches the refuter's semantics — backward symbolic execution
// witnesses the earlier action's final heap state flowing directly into
// the later access (§5). Without adjacency, an intervening event (e.g.
// onResume re-arming Fig 8's guard between stop() and the timer tick)
// would "witness" an ordering the refutation never claimed impossible.
func observe(tr *interp.Trace, posA, posB ir.Pos) (ab, ba bool) {
	keyA, keyB := posKey(posA), posKey(posB)
	var as, bs []observation
	// writesTo[objID] lists event ids containing a write to the object.
	writesTo := map[int][]int{}
	for _, ev := range tr.Events {
		for _, acc := range ev.Accesses {
			k := posKey(acc.Pos)
			if k == keyA {
				as = append(as, observation{event: ev.ID, objID: acc.ObjID})
			}
			// Same-position pairs (one statement racing with itself
			// across action instances) observe on both sides.
			if k == keyB {
				bs = append(bs, observation{event: ev.ID, objID: acc.ObjID})
			}
			if acc.Kind == interp.Write {
				writesTo[acc.ObjID] = append(writesTo[acc.ObjID], ev.ID)
			}
		}
	}
	adjacent := func(objID, lo, hi int) bool {
		for _, w := range writesTo[objID] {
			if w > lo && w < hi {
				return false
			}
		}
		return true
	}
	for _, a := range as {
		for _, b := range bs {
			if a.objID != b.objID || a.event == b.event {
				continue
			}
			switch {
			case a.event < b.event && adjacent(a.objID, a.event, b.event):
				ab = true
			case b.event < a.event && adjacent(a.objID, b.event, a.event):
				ba = true
			}
		}
	}
	return ab, ba
}

// Report pairs a candidate with its dynamic outcome.
type Report struct {
	Pair    race.Pair
	Outcome Outcome
}

// WitnessAll runs the search for every pair, reusing schedules is not
// possible (heap state differs per pair query positions are independent),
// so each pair gets its own budget.
func WitnessAll(factory func() *apk.App, pairs []race.Pair, opts Options) []Report {
	out := make([]Report, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, Report{Pair: p, Outcome: Witness(factory, p, opts)})
	}
	return out
}
