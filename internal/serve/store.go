// Package serve is the always-on analysis service: an HTTP/JSON API
// (submit an .app, poll the job, fetch the report) over the
// internal/batch engine, with a sharded persistent report store and
// fingerprint-driven incremental re-analysis (internal/incremental)
// for resubmitted app revisions. It is the daemon behind the `sierra
// serve` subcommand.
package serve

import (
	"crypto/sha256"
	"fmt"
	"path/filepath"

	"sierra/internal/batch"
)

// storeShards is the shard fan-out: 256 DirCache subdirectories keyed
// by the first byte of the key hash. Sharding keeps per-directory entry
// counts flat under millions of stored reports (large flat directories
// degrade on most filesystems) and lets the GC sweep work in
// budget-bounded slices.
const storeShards = 256

// Store is the service's persistent report store: a digest-keyed
// batch.Cache whose entries are canonical report documents, sharded
// over DirCaches. Get/Put are safe for concurrent use.
type Store struct {
	shards [storeShards]*batch.DirCache
}

// NewStore opens (creating as needed) a sharded store rooted at dir.
func NewStore(dir string) (*Store, error) {
	s := &Store{}
	for i := range s.shards {
		c, err := batch.NewDirCache(filepath.Join(dir, fmt.Sprintf("%02x", i)))
		if err != nil {
			return nil, err
		}
		s.shards[i] = c
	}
	return s, nil
}

func (s *Store) shard(key string) *batch.DirCache {
	sum := sha256.Sum256([]byte(key))
	return s.shards[sum[0]]
}

// Get returns the stored report for key.
func (s *Store) Get(key string) ([]byte, bool) { return s.shard(key).Get(key) }

// Put stores a report (atomic within its shard).
func (s *Store) Put(key string, val []byte) { s.shard(key).Put(key, val) }

// Sweep bounds the store to roughly maxBytes by running each shard's
// best-effort LRU-by-mtime sweep with an equal slice of the budget
// (maxBytes <= 0 disables). Returns entries removed and bytes freed.
func (s *Store) Sweep(maxBytes int64) (removed int, freed int64) {
	if maxBytes <= 0 {
		return 0, 0
	}
	per := maxBytes / storeShards
	if per < 1 {
		per = 1
	}
	for _, sh := range s.shards {
		r, f := sh.Sweep(per)
		removed += r
		freed += f
	}
	return removed, freed
}
