package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"sierra/internal/apk"
	"sierra/internal/appfile"
	"sierra/internal/batch"
	"sierra/internal/incremental"
	"sierra/internal/obs"
	"sierra/internal/obs/eventlog"
	"sierra/internal/obs/export"
	"sierra/internal/symexec"
)

// maxAppBytes caps a submission body. The Table 2 corpus tops out well
// under a megabyte of canonical text; 16 MiB leaves room for apps two
// orders of magnitude bigger while still bounding a hostile client.
const maxAppBytes = 16 << 20

// Config tunes the daemon.
type Config struct {
	// Workers bounds concurrent analyses (0 = GOMAXPROCS).
	Workers int
	// JobTimeout is the per-analysis deadline (0 = none). A timed-out
	// analysis fails its job; partial results are never stored.
	JobTimeout time.Duration
	// RefuteJobs sizes the per-analysis refutation pool (0 =
	// GOMAXPROCS). The service forces at least 2: per-pair-pure
	// refutation is what makes verdicts order-independent, which
	// incremental verdict splicing and report byte-parity both require
	// (see symexec.Checker).
	RefuteJobs int
	// PTAJobs sizes the SCC-partitioned points-to solver pool and
	// SHBGJobs the block-parallel closure pool (0 = GOMAXPROCS, 1 =
	// the sequential kernels). Neither affects results — every parallel
	// kernel is bit-for-bit deterministic — so neither is part of the
	// report cache fingerprint.
	PTAJobs  int
	SHBGJobs int
	// MaxPaths/MaxDepth tune the refuter budget (0 = defaults). Part of
	// the report cache fingerprint.
	MaxPaths, MaxDepth int
	// StoreDir roots the persistent sharded report store; empty keeps
	// reports in memory only.
	StoreDir string
	// CacheMaxBytes bounds the persistent store (the -cache-max-bytes
	// flag): a best-effort LRU-by-mtime sweep runs after each batch.
	// 0 = unbounded.
	CacheMaxBytes int64
	// MemCacheEntries caps the in-memory report cache used when
	// StoreDir is empty (0 = a generous default).
	MemCacheEntries int
	// Baselines caps the warm incremental baseline pool (0 = default).
	Baselines int
	// BaselineMaxBytes bounds the baseline pool by estimated resident
	// bytes (the -baseline-max-bytes flag): program IR plus points-to,
	// SHBG, and pair/verdict tables per lineage, LRU-evicted beyond the
	// budget. 0 = no byte budget (entry cap only).
	BaselineMaxBytes int64
	// QueueDepth bounds accepted-but-unstarted submissions (0 = 1024).
	QueueDepth int
	// Obs receives service counters and histograms; Events receives the
	// flight-recorder stream. Both may be nil.
	Obs    *obs.Trace
	Events *eventlog.Recorder
}

// Server is the running service: HTTP handlers feeding a dispatcher
// goroutine that drains submissions through batch.Run.
type Server struct {
	cfg     Config
	store   batch.Cache
	dstore  *Store // non-nil when StoreDir-backed (swept after batches)
	pool    *incremental.Pool
	tracker *batch.Tracker
	ln      net.Listener
	hsrv    *http.Server

	// runCtx cancels in-flight analyses (ForceCancel).
	runCtx    context.Context
	cancelRun context.CancelFunc

	mu        sync.Mutex
	draining  bool
	nextID    int
	jobs      map[string]*jobState
	byDigest  map[string]*jobState // in-flight dedup: digest → live job
	doneOrder []string             // completed job ids, oldest first
	queue     chan *jobState

	dispatcherDone chan struct{}
}

// jobState tracks one submission through the pipeline.
type jobState struct {
	id     string
	digest string
	name   string // app name (lineage key)
	raw    []byte
	app    *apk.App

	queuedAt time.Time

	mu     sync.Mutex
	status string // "queued", "running", "done", "failed"
	errMsg string
}

func (j *jobState) set(status, errMsg string) {
	j.mu.Lock()
	j.status, j.errMsg = status, errMsg
	j.mu.Unlock()
}

func (j *jobState) get() (string, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.errMsg
}

// New assembles a server (no listener yet; Start binds it).
func New(cfg Config) (*Server, error) {
	if cfg.RefuteJobs <= 0 {
		cfg.RefuteJobs = runtime.GOMAXPROCS(0)
	}
	if cfg.RefuteJobs < 2 {
		cfg.RefuteJobs = 2
	}
	if cfg.PTAJobs <= 0 {
		cfg.PTAJobs = runtime.GOMAXPROCS(0)
	}
	if cfg.SHBGJobs <= 0 {
		cfg.SHBGJobs = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	runCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		pool:      incremental.NewPool(cfg.Baselines, cfg.BaselineMaxBytes),
		tracker:   &batch.Tracker{},
		runCtx:    runCtx,
		cancelRun: cancel,
		jobs:      map[string]*jobState{},
		byDigest:  map[string]*jobState{},
		queue:     make(chan *jobState, cfg.QueueDepth),

		dispatcherDone: make(chan struct{}),
	}
	if cfg.StoreDir != "" {
		st, err := NewStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		s.store, s.dstore = st, st
	} else {
		n := cfg.MemCacheEntries
		if n <= 0 {
			n = 4096
		}
		s.store = batch.NewMemCacheCap(n)
	}
	return s, nil
}

// Start binds addr (":0" picks a free port — see Addr) and begins
// serving the API and the dispatcher.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go s.hsrv.Serve(ln)
	go s.dispatcher()
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handler returns the service mux: the /v1 API plus the export debug
// endpoints (/metrics, /progress, /events, /healthz, /debug/pprof) so
// one port exposes both the service and its live telemetry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/apps", s.handleSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/reports/", s.handleReport)
	mux.Handle("/", export.Handler(export.Options{
		Trace:    s.cfg.Obs,
		Events:   s.cfg.Events,
		Progress: func() any { return s.progress() },
	}))
	return mux
}

// serveProgress is the /progress payload's service half.
type serveProgress struct {
	Draining      bool           `json:"draining"`
	Queued        int            `json:"queued"`
	Jobs          int            `json:"jobs"`
	Baselines     int            `json:"baselines"`
	BaselineBytes int64          `json:"baseline_bytes"`
	Batch         batch.Progress `json:"batch"`
}

func (s *Server) progress() serveProgress {
	s.mu.Lock()
	p := serveProgress{
		Draining: s.draining,
		Queued:   len(s.queue),
		Jobs:     len(s.jobs),
	}
	s.mu.Unlock()
	p.Baselines = s.pool.Len()
	p.BaselineBytes = s.pool.Bytes()
	p.Batch = s.tracker.Snapshot()
	return p
}

// submitResponse is POST /v1/apps's body.
type submitResponse struct {
	JobID  string `json:"job_id"`
	Digest string `json:"digest"`
	Status string `json:"status"`
	// Report is the fetch path, present once the report exists.
	Report string `json:"report,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST an .app document")
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxAppBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if len(raw) > maxAppBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "app exceeds size cap")
		return
	}
	// Parse (and validate) before accepting: a malformed submission is
	// the client's error and must never become a queued job that fails
	// server-side.
	app, err := appfile.Read(bytes.NewReader(raw))
	if err != nil {
		s.cfg.Obs.Count("serve.malformed", 1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// An empty body parses into an empty, nameless app; the name is the
	// incremental lineage key, so a nameless submission is malformed.
	if app.Name == "" {
		s.cfg.Obs.Count("serve.malformed", 1)
		httpError(w, http.StatusBadRequest, "app document has no app name")
		return
	}
	digest := batch.RawDigest(raw)
	s.cfg.Obs.Count("serve.submissions", 1)

	// Already stored? The submission is a duplicate of a completed
	// revision — answer without a job.
	if _, ok := s.store.Get(s.reportKey(digest)); ok {
		s.cfg.Obs.Count("serve.report_hits", 1)
		writeJSON(w, http.StatusOK, submitResponse{
			Digest: digest, Status: "done", Report: "/v1/reports/" + digest,
		})
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	// In-flight dedup: concurrent submissions of one digest share a job.
	if live, ok := s.byDigest[digest]; ok {
		s.mu.Unlock()
		s.cfg.Obs.Count("serve.dedup_hits", 1)
		status, _ := live.get()
		writeJSON(w, http.StatusAccepted, submitResponse{
			JobID: live.id, Digest: digest, Status: status,
		})
		return
	}
	s.nextID++
	job := &jobState{
		id:       fmt.Sprintf("j%d", s.nextID),
		digest:   digest,
		name:     app.Name,
		raw:      raw,
		app:      app,
		status:   "queued",
		queuedAt: time.Now(),
	}
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "queue full")
		return
	}
	s.jobs[job.id] = job
	s.byDigest[digest] = job
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, submitResponse{
		JobID: job.id, Digest: digest, Status: "queued",
	})
}

// jobResponse is GET /v1/jobs/{id}'s body.
type jobResponse struct {
	JobID  string `json:"job_id"`
	Digest string `json:"digest"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	Report string `json:"report,omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	status, errMsg := job.get()
	resp := jobResponse{JobID: job.id, Digest: job.digest, Status: status, Error: errMsg}
	if status == "done" {
		resp.Report = "/v1/reports/" + job.digest
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	digest := strings.TrimPrefix(r.URL.Path, "/v1/reports/")
	doc, ok := s.store.Get(s.reportKey(digest))
	if !ok {
		httpError(w, http.StatusNotFound, "no report for digest "+digest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

// reportKey is the store key for a revision's report: the content
// digest plus the analysis-config fingerprint, so a daemon restarted
// with different refutation budgets never serves stale documents.
func (s *Server) reportKey(digest string) string {
	return batch.Key(digest,
		"serve-report",
		"policy=action[k=2]",
		"solver=delta",
		fmt.Sprintf("maxpaths=%d", s.cfg.MaxPaths),
		fmt.Sprintf("maxdepth=%d", s.cfg.MaxDepth),
	)
}

// refuterConfig is the daemon's pinned refutation config. RefuteJobs ≥ 2
// selects per-pair-pure checking; the budget knobs are in the report key.
func (s *Server) refuterConfig() symexec.Config {
	return symexec.Config{
		MaxPaths: s.cfg.MaxPaths,
		MaxDepth: s.cfg.MaxDepth,
		Jobs:     s.cfg.RefuteJobs,
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
