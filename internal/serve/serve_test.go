package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sierra/internal/corpus"
	"sierra/internal/obs"
	"sierra/internal/serve"
)

// startServer boots a daemon on a random port and tears it down with
// the test. The returned trace observes the service counters.
func startServer(t *testing.T, cfg serve.Config) (*serve.Server, string, *obs.Trace) {
	t.Helper()
	tr := obs.New("serve-test")
	cfg.Obs = tr
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("serve.Start: %v", err)
	}
	t.Cleanup(func() {
		s.Drain()
		s.Close()
	})
	return s, "http://" + s.Addr(), tr
}

func submit(t *testing.T, base string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/apps", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/apps: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return resp.StatusCode, m
}

// waitDone polls the job until it completes and returns its digest.
func waitDone(t *testing.T, base, jobID string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatalf("GET job %s: %v", jobID, err)
		}
		var m map[string]any
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding job %s: %v", jobID, err)
		}
		switch m["status"] {
		case "done":
			return m["digest"].(string)
		case "failed":
			t.Fatalf("job %s failed: %v", jobID, m["error"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not complete", jobID)
	return ""
}

func fetchReport(t *testing.T, base, digest string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/reports/" + digest)
	if err != nil {
		t.Fatalf("GET report %s: %v", digest, err)
	}
	defer resp.Body.Close()
	doc, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET report %s: status %d: %s", digest, resp.StatusCode, doc)
	}
	return doc
}

func TestSubmitPollFetch(t *testing.T) {
	_, base, _ := startServer(t, serve.Config{})
	raw := corpus.IncrDemoText(corpus.IncrDemoEdit{})

	code, m := submit(t, base, raw)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d body %v", code, m)
	}
	if m["job_id"] == "" || m["digest"] == "" {
		t.Fatalf("submit response missing ids: %v", m)
	}
	digest := waitDone(t, base, m["job_id"].(string))

	doc := fetchReport(t, base, digest)
	var report map[string]any
	if err := json.Unmarshal(doc, &report); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, doc)
	}
	if report["schema"] != serve.ReportSchema {
		t.Errorf("schema = %v, want %s", report["schema"], serve.ReportSchema)
	}
	if report["app"] != "IncrDemo" || report["digest"] != digest {
		t.Errorf("report identity wrong: app=%v digest=%v", report["app"], report["digest"])
	}
	if !bytes.Contains(doc, []byte(`".f2"`)) || bytes.Contains(doc, []byte(`".f1"`)) {
		t.Errorf("baseline report must contain the f2 race and refute f1:\n%s", doc)
	}

	// Resubmitting the identical bytes is answered from the store.
	code, m = submit(t, base, raw)
	if code != http.StatusOK || m["status"] != "done" {
		t.Errorf("duplicate submit: status %d body %v, want 200/done", code, m)
	}
	if m["report"] != "/v1/reports/"+digest {
		t.Errorf("duplicate submit report path = %v", m["report"])
	}
}

func TestMalformedAndUnknown(t *testing.T) {
	_, base, tr := startServer(t, serve.Config{})

	code, m := submit(t, base, []byte("this is not an app document"))
	if code != http.StatusBadRequest {
		t.Errorf("malformed submit: status %d body %v, want 400", code, m)
	}
	if m["error"] == "" {
		t.Errorf("malformed submit: no error message: %v", m)
	}
	// An empty body parses but has no app name — equally malformed.
	if code, m := submit(t, base, nil); code != http.StatusBadRequest {
		t.Errorf("empty submit: status %d body %v, want 400", code, m)
	}
	if got := tr.Counter("serve.malformed"); got != 2 {
		t.Errorf("serve.malformed = %d, want 2", got)
	}
	if got := tr.Counter("serve.submissions"); got != 0 {
		t.Errorf("serve.submissions = %d, want 0 (malformed never counts)", got)
	}

	resp, err := http.Get(base + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/apps: status %d, want 405", resp.StatusCode)
	}

	for _, path := range []string{"/v1/jobs/j999", "/v1/reports/deadbeef"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestConcurrentSubmitDedup: one digest submitted from many clients at
// once must never analyze twice — every submission is answered with the
// shared in-flight job or the stored report, and every client ends up
// reading identical bytes.
func TestConcurrentSubmitDedup(t *testing.T) {
	_, base, tr := startServer(t, serve.Config{})
	raw := corpus.IncrDemoText(corpus.IncrDemoEdit{})

	const clients = 8
	var wg sync.WaitGroup
	jobIDs := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/apps", "text/plain", bytes.NewReader(raw))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var m map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d body %v", i, resp.StatusCode, m)
				return
			}
			if id, _ := m["job_id"].(string); id != "" {
				jobIDs[i] = id
			}
		}(i)
	}
	wg.Wait()

	ids := map[string]bool{}
	var digest string
	for _, id := range jobIDs {
		if id != "" {
			ids[id] = true
			digest = waitDone(t, base, id)
		}
	}
	if len(ids) != 1 {
		t.Fatalf("concurrent submissions created %d jobs (%v), want exactly 1", len(ids), ids)
	}
	if got := tr.Counter("serve.jobs_done"); got != 1 {
		t.Errorf("serve.jobs_done = %d, want 1 (dedup must prevent re-analysis)", got)
	}
	want := fetchReport(t, base, digest)
	for i := 0; i < 3; i++ {
		if got := fetchReport(t, base, digest); !bytes.Equal(got, want) {
			t.Fatalf("report fetch %d differs", i)
		}
	}
}

// TestIncrementalResubmission drives the warm-baseline path end to end:
// a revision differing only in an If operand must be absorbed
// incrementally (fewer pairs re-refuted than exist), flip the guarded
// verdict, and a skeleton-visible revision must fall back to a full run
// — all observable through the service counters and the reports.
func TestIncrementalResubmission(t *testing.T) {
	_, base, tr := startServer(t, serve.Config{})

	code, m := submit(t, base, corpus.IncrDemoText(corpus.IncrDemoEdit{}))
	if code != http.StatusAccepted {
		t.Fatalf("baseline submit: status %d", code)
	}
	waitDone(t, base, m["job_id"].(string))

	code, m = submit(t, base, corpus.IncrDemoText(corpus.IncrDemoEdit{IfLine: "if c == int 0"}))
	if code != http.StatusAccepted {
		t.Fatalf("edited submit: status %d", code)
	}
	digest := waitDone(t, base, m["job_id"].(string))

	if got := tr.Counter("incremental.applies"); got != 1 {
		t.Errorf("incremental.applies = %d, want 1", got)
	}
	rerefuted := tr.Counter("incremental.pairs_rerefuted")
	reused := tr.Counter("incremental.pairs_reused")
	if rerefuted < 1 {
		t.Errorf("incremental.pairs_rerefuted = %d, want >= 1", rerefuted)
	}
	if reused < 1 {
		t.Errorf("incremental.pairs_reused = %d, want >= 1 (untouched pair must be reused)", reused)
	}
	doc := fetchReport(t, base, digest)
	if !bytes.Contains(doc, []byte(`".f1"`)) {
		t.Errorf("edited revision must surface the now-feasible f1 race:\n%s", doc)
	}

	// A skeleton-visible edit declines and falls back to the full path.
	code, m = submit(t, base, corpus.IncrDemoText(corpus.IncrDemoEdit{ExtraStmt: "load w a f1"}))
	if code != http.StatusAccepted {
		t.Fatalf("fallback submit: status %d", code)
	}
	waitDone(t, base, m["job_id"].(string))
	if got := tr.Counter("incremental.fallbacks"); got != 1 {
		t.Errorf("incremental.fallbacks = %d, want 1", got)
	}
	if got := tr.Counter("incremental.applies"); got != 1 {
		t.Errorf("incremental.applies moved to %d on a declined plan", got)
	}
}

// TestStorePersistence: with a StoreDir, reports outlive the daemon — a
// fresh server over the same directory answers a duplicate submission
// from the store without re-analyzing.
func TestStorePersistence(t *testing.T) {
	dir := t.TempDir()
	raw := corpus.IncrDemoText(corpus.IncrDemoEdit{})

	s1, base1, _ := startServer(t, serve.Config{StoreDir: dir})
	_, m := submit(t, base1, raw)
	digest := waitDone(t, base1, m["job_id"].(string))
	want := fetchReport(t, base1, digest)
	s1.Drain()
	s1.Close()

	_, base2, tr2 := startServer(t, serve.Config{StoreDir: dir})
	code, m := submit(t, base2, raw)
	if code != http.StatusOK || m["status"] != "done" {
		t.Fatalf("restarted server: status %d body %v, want 200/done", code, m)
	}
	if got := tr2.Counter("serve.report_hits"); got != 1 {
		t.Errorf("serve.report_hits = %d, want 1", got)
	}
	if got := fetchReport(t, base2, digest); !bytes.Equal(got, want) {
		t.Error("report changed across restart")
	}
}

// TestDrain: a draining server rejects new submissions with 503 but
// finishes and serves what it already accepted.
func TestDrain(t *testing.T) {
	s, base, tr := startServer(t, serve.Config{})
	raw := corpus.IncrDemoText(corpus.IncrDemoEdit{})
	_, m := submit(t, base, raw)
	jobID := m["job_id"].(string)

	s.Drain() // blocks until the in-flight analysis completes

	digest := waitDone(t, base, jobID)
	fetchReport(t, base, digest)

	code, m2 := submit(t, base, corpus.IncrDemoText(corpus.IncrDemoEdit{IfLine: "if c == int 0"}))
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d body %v, want 503", code, m2)
	}
	if got := tr.Counter("serve.drains"); got != 1 {
		t.Errorf("serve.drains = %d, want 1", got)
	}
}

// TestQueueFullAndOversized exercises the remaining rejection paths.
func TestQueueFullAndOversized(t *testing.T) {
	_, base, _ := startServer(t, serve.Config{})

	// An over-cap body is refused before parsing (16 MiB + 1 of noise).
	big := bytes.Repeat([]byte("x"), 16<<20+1)
	resp, err := http.Post(base+"/v1/apps", "text/plain", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized submit: status %d, want 413", resp.StatusCode)
	}
}

// TestTelemetryMounted: the export debug surface shares the service
// port.
func TestTelemetryMounted(t *testing.T) {
	_, base, _ := startServer(t, serve.Config{})
	for _, path := range []string{"/healthz", "/metrics", "/progress"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/progress" && !strings.Contains(string(body), `"draining"`) {
			t.Errorf("/progress missing service fields: %s", body)
		}
	}
}

// TestJobWaitObserved: queue latency lands in the wait histogram.
func TestJobWaitObserved(t *testing.T) {
	_, base, tr := startServer(t, serve.Config{})
	_, m := submit(t, base, corpus.IncrDemoText(corpus.IncrDemoEdit{}))
	waitDone(t, base, m["job_id"].(string))
	if n := tr.Hist("serve.job_wait_ms").Count(); n != 1 {
		t.Errorf("serve.job_wait_ms count = %d, want 1", n)
	}
}

// TestStageReuseResubmission drives tier-2 partial stage reuse end to
// end through the daemon: a skeleton-visible one-method edit (an
// inserted dataflow sink) must be absorbed by the warm baseline —
// pointer delta re-seed, SHBG row patch, pair diff — and the report it
// answers with must be byte-identical to what a cold daemon computes
// for the same bytes.
func TestStageReuseResubmission(t *testing.T) {
	_, base, tr := startServer(t, serve.Config{})

	code, m := submit(t, base, corpus.StageDemoText(4, corpus.StageDemoEdit{}))
	if code != http.StatusAccepted {
		t.Fatalf("baseline submit: status %d", code)
	}
	waitDone(t, base, m["job_id"].(string))

	edited := corpus.StageDemoText(4, corpus.StageDemoEdit{ExtraStmt: "load w a f1_0"})
	code, m = submit(t, base, edited)
	if code != http.StatusAccepted {
		t.Fatalf("edited submit: status %d", code)
	}
	digest := waitDone(t, base, m["job_id"].(string))

	if got := tr.Counter("incremental.stage_applies"); got != 1 {
		t.Errorf("incremental.stage_applies = %d, want 1", got)
	}
	if got := tr.Counter("incremental.stage_reuse_pta"); got != 1 {
		t.Errorf("incremental.stage_reuse_pta = %d, want 1", got)
	}
	if got := tr.Counter("incremental.stage_reuse_shbg"); got != 1 {
		t.Errorf("incremental.stage_reuse_shbg = %d, want 1", got)
	}
	if spliced := tr.Counter("incremental.pairs_spliced"); spliced < 1 {
		t.Errorf("incremental.pairs_spliced = %d, want >= 1", spliced)
	}
	warm := fetchReport(t, base, digest)

	// The cold truth: a fresh daemon with no baseline for this lineage.
	_, base2, tr2 := startServer(t, serve.Config{})
	_, m = submit(t, base2, edited)
	cold := fetchReport(t, base2, waitDone(t, base2, m["job_id"].(string)))
	if got := tr2.Counter("incremental.stage_applies"); got != 0 {
		t.Fatalf("control daemon took the stage path (%d applies) — not a cold run", got)
	}
	if !bytes.Equal(warm, cold) {
		t.Errorf("stage-reused report differs from cold:\n-- warm --\n%s\n-- cold --\n%s", warm, cold)
	}
}

// TestLineageWaves: a gathered batch holding several revisions of one
// app must run them serialized in submission order (they absorb into
// one warm baseline) while an unrelated lineage rides the first wave
// concurrently. A slow occupier (a large StageDemo — its own lineage,
// the group count is part of the app name) keeps the dispatcher busy
// in its first batch so the three follow-up submissions coalesce into
// one gathered batch; timing-dependent, so the burst retries on a
// fresh server if the coalesce window was missed.
func TestLineageWaves(t *testing.T) {
	const attempts = 3
	for attempt := 0; attempt < attempts; attempt++ {
		_, base, tr := startServer(t, serve.Config{Workers: 2})

		// ~100ms of analysis: a wide window next to three local POSTs.
		_, m0 := submit(t, base, corpus.StageDemoText(60, corpus.StageDemoEdit{}))

		// While the occupier analyzes, queue two revisions of IncrDemo
		// and one revision of StageDemo2.
		_, mA1 := submit(t, base, corpus.IncrDemoText(corpus.IncrDemoEdit{}))
		_, mA2 := submit(t, base, corpus.IncrDemoText(corpus.IncrDemoEdit{IfLine: "if c == int 0"}))
		_, mB1 := submit(t, base, corpus.StageDemoText(2, corpus.StageDemoEdit{}))

		waitDone(t, base, m0["job_id"].(string))
		waitDone(t, base, mA1["job_id"].(string))
		digestA2 := waitDone(t, base, mA2["job_id"].(string))
		waitDone(t, base, mB1["job_id"].(string))

		if tr.Counter("serve.lineage_waves") < 1 {
			if attempt < attempts-1 {
				continue // window missed; retry on a fresh server
			}
			t.Fatalf("serve.lineage_waves = 0 after %d attempts (second IncrDemo revision never ran in a later wave)", attempts)
		}
		// Order proof: the second revision saw the first as its baseline
		// (incremental apply), and its report reflects the edited branch.
		if got := tr.Counter("incremental.applies"); got < 1 {
			t.Errorf("incremental.applies = %d, want >= 1 (serialized lineage must absorb in order)", got)
		}
		doc := fetchReport(t, base, digestA2)
		if !bytes.Contains(doc, []byte(`".f1"`)) {
			t.Errorf("second revision's report must surface the now-feasible f1 race:\n%s", doc)
		}
		return
	}
}
