package serve

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"sierra/internal/appfile"
	"sierra/internal/batch"
	"sierra/internal/core"
	"sierra/internal/incremental"
	"sierra/internal/shbg"
)

// doneJobsKept bounds the completed-job index a long-lived daemon
// retains for polling; older entries are pruned FIFO (their reports
// stay fetchable by digest — the store, not the job index, is the
// durable record).
const doneJobsKept = 10000

// dispatcher drains the submission queue: it blocks for the next job,
// opportunistically gathers everything else already queued, and runs
// the gathered slice as one batch.Run — so a burst of submissions
// shares one worker pool dispatch and the tracker describes it as one
// batch. Exits when the queue is closed (Drain) and empty.
func (s *Server) dispatcher() {
	defer close(s.dispatcherDone)
	for {
		job, ok := <-s.queue
		if !ok {
			return
		}
		pending := []*jobState{job}
	gather:
		for {
			select {
			case j, ok := <-s.queue:
				if !ok {
					break gather
				}
				pending = append(pending, j)
			default:
				break gather
			}
		}
		s.runBatch(pending)
	}
}

// runBatch serializes same-lineage jobs (revisions of one app must
// absorb into its warm baseline in submission order — and never
// concurrently, since tier-1/2 applies mutate the baseline in place)
// while keeping different lineages concurrent: the gathered slice is
// split into waves, wave k holding each lineage's k-th queued revision,
// and the waves run sequentially through batch.Run.
func (s *Server) runBatch(pending []*jobState) {
	byName := make(map[string][]*jobState)
	var order []string
	for _, js := range pending {
		if len(byName[js.name]) == 0 {
			order = append(order, js.name)
		}
		byName[js.name] = append(byName[js.name], js)
	}
	for wave := 0; ; wave++ {
		var ws []*jobState
		for _, n := range order {
			if wave < len(byName[n]) {
				ws = append(ws, byName[n][wave])
			}
		}
		if len(ws) == 0 {
			break
		}
		if wave > 0 {
			s.cfg.Obs.Count("serve.lineage_waves", 1)
		}
		s.runWave(ws)
	}
	// Bound the persistent store after each batch — daemon life, not
	// CLI life, is when "entries never expire" becomes a disk leak.
	if s.dstore != nil && s.cfg.CacheMaxBytes > 0 {
		if removed, _ := s.dstore.Sweep(s.cfg.CacheMaxBytes); removed > 0 {
			s.cfg.Obs.Count("serve.store_evictions", int64(removed))
		}
	}
}

func (s *Server) runWave(pending []*jobState) {
	now := time.Now()
	jobs := make([]batch.Job, len(pending))
	for i, js := range pending {
		js := js
		s.cfg.Obs.Observe("serve.job_wait_ms", float64(now.Sub(js.queuedAt))/1e6)
		js.set("running", "")
		jobs[i] = batch.Job{
			Name:  js.name + "@" + js.digest[:12],
			KeyFn: func() (string, error) { return s.reportKey(js.digest), nil },
			Fn:    func(ctx context.Context) ([]byte, error) { return s.analyze(ctx, js) },
		}
	}
	batch.Run(s.runCtx, jobs, batch.Options{
		Workers: s.cfg.Workers,
		Timeout: s.cfg.JobTimeout,
		Cache:   s.store,
		Obs:     s.cfg.Obs,
		Events:  s.cfg.Events,
		Tracker: s.tracker,
		OnResult: func(i int, r batch.Result) {
			js := pending[i]
			switch r.Status {
			case batch.StatusOK, batch.StatusCached:
				js.set("done", "")
				s.cfg.Obs.Count("serve.jobs_done", 1)
			default:
				msg := r.Err
				if msg == "" {
					msg = string(r.Status)
					if r.Panic != "" {
						if i := strings.IndexByte(r.Panic, '\n'); i >= 0 {
							msg += ": " + r.Panic[:i]
						} else {
							msg += ": " + r.Panic
						}
					}
				}
				js.set("failed", msg)
				s.cfg.Obs.Count("serve.jobs_failed", 1)
			}
			s.finishJob(js)
		},
	})
}

// analyze is one job's body: incremental against the lineage's warm
// baseline when the fingerprint planner proves it safe, full pipeline
// otherwise. Either way the returned document is byte-identical to what
// a cold full run would render.
func (s *Server) analyze(ctx context.Context, js *jobState) ([]byte, error) {
	app, raw := js.app, js.raw
	js.app = nil // one-shot: the program is about to be mutated
	tr := s.cfg.Obs
	fp := incremental.Compute(app)

	if base := s.pool.Lookup(js.name); base != nil {
		base.Mu.Lock()
		// Tier 1: skeleton-invisible edit — reuse every pre-refutation
		// artifact, re-refute only touched pairs.
		if _, ok := base.Apply(app, fp, js.digest, s.refuterConfig(), tr); ok {
			doc := RenderReport(js.digest, base.Res)
			base.Mu.Unlock()
			return doc, nil
		}
		// Tier 2: skeleton-visible edit — warm pointer re-solve, SHBG
		// row patch, pair diff. A clean tier-1 decline leaves both the
		// baseline and the donor program untouched, so chaining is safe;
		// a poisoned baseline falls straight through to the cold path.
		if !base.Poisoned {
			shbgOpts := shbg.Options{Jobs: s.cfg.SHBGJobs}
			if _, ok := base.ApplyStages(app, fp, js.digest, s.refuterConfig(), shbgOpts, tr); ok {
				doc := RenderReport(js.digest, base.Res)
				base.Mu.Unlock()
				return doc, nil
			}
		}
		poisoned := base.Poisoned
		base.Mu.Unlock()
		if poisoned {
			// A failed mid-patch leaves both the baseline and the donor
			// program suspect (bodies were transplanted); discard the
			// baseline and re-parse the submission for the full run.
			s.pool.Drop(js.name)
			fresh, err := appfile.Read(bytes.NewReader(raw))
			if err != nil {
				return nil, err
			}
			app = fresh
			fp = incremental.Compute(app)
		}
	}

	res := core.AnalyzeContext(ctx, app, core.Options{
		Refuter:     s.refuterConfig(),
		SHBG:        shbg.Options{Jobs: s.cfg.SHBGJobs},
		PTAJobs:     s.cfg.PTAJobs,
		KeepPTAWarm: true,
		Obs:         tr,
	})
	if res.Interrupted {
		return nil, fmt.Errorf("analysis interrupted at stage %q", res.InterruptedStage)
	}
	tr.Count("race.pairs_total", int64(len(res.RacyPairs)))
	if evicted := s.pool.Store(&incremental.Baseline{
		Name: js.name, Digest: js.digest, FP: fp, App: app, Res: res,
		Warm: res.PTAWarm,
	}); evicted > 0 {
		tr.Count("serve.baseline_evictions", int64(evicted))
	}
	return RenderReport(js.digest, res), nil
}

// finishJob retires a completed job from the in-flight dedup index and
// prunes the oldest completed entries beyond the retention cap.
func (s *Server) finishJob(js *jobState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byDigest[js.digest] == js {
		delete(s.byDigest, js.digest)
	}
	s.doneOrder = append(s.doneOrder, js.id)
	for len(s.doneOrder) > doneJobsKept {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// Drain gracefully winds the service down: new submissions are rejected
// (503), the queue is closed, and the call blocks until the dispatcher
// has finished every in-flight batch (each analysis bounded by the
// per-job deadline). Idempotent; safe to call from the signal handler.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.dispatcherDone
		return
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()
	s.cfg.Obs.Count("serve.drains", 1)
	<-s.dispatcherDone
}

// ForceCancel hard-cancels in-flight analyses (they bail cooperatively
// and their jobs fail); the escalation path behind a second signal.
func (s *Server) ForceCancel() { s.cancelRun() }

// Close releases the listener and HTTP server. Call after Drain for a
// graceful exit, or directly for an abrupt one.
func (s *Server) Close() error {
	if s.hsrv != nil {
		return s.hsrv.Close()
	}
	return nil
}
