package serve

import (
	"bytes"
	"encoding/json"

	"sierra/internal/core"
)

// ReportSchema identifies the canonical report document format.
const ReportSchema = "sierra-report/1"

// ReportDoc is the service's report: everything a client needs about
// one analyzed revision, and nothing run-dependent. No timings, no
// worker counts, no cache provenance — the document is a pure function
// of (app bytes, analysis config), which is what makes "incremental and
// full runs produce byte-identical reports" a checkable equality and
// lets GET /v1/reports/{digest} serve cached documents transparently.
type ReportDoc struct {
	Schema    string    `json:"schema"`
	App       string    `json:"app"`
	Digest    string    `json:"digest"`
	Harnesses int       `json:"harnesses"`
	Actions   int       `json:"actions"`
	HBEdges   int       `json:"hb_edges"`
	RacyPairs int       `json:"racy_pairs"`
	Races     []RaceDoc `json:"races"`
}

// RaceDoc is one ranked surviving race.
type RaceDoc struct {
	Rank     int       `json:"rank"`
	Category string    `json:"category"`
	Field    string    `json:"field"`
	RefRace  bool      `json:"ref_race"`
	Benign   bool      `json:"benign"`
	A        AccessDoc `json:"a"`
	B        AccessDoc `json:"b"`
	// Paths is the refuter's explored-path count — deterministic under
	// the service's per-pair-pure refutation mode.
	Paths  int  `json:"paths"`
	Budget bool `json:"budget_exhausted"`
}

// AccessDoc is one side of a race.
type AccessDoc struct {
	Action     int    `json:"action"`
	ActionName string `json:"action_name"`
	Kind       string `json:"kind"`
	Pos        string `json:"pos"`
}

// RenderReport renders the canonical report document for a completed
// (non-interrupted) analysis: deterministic field order, two-space
// indentation, one trailing newline. Byte-identical inputs produce
// byte-identical documents.
func RenderReport(digest string, res *core.Result) []byte {
	doc := ReportDoc{
		Schema:    ReportSchema,
		App:       res.App.Name,
		Digest:    digest,
		Harnesses: res.NumHarnesses(),
		Actions:   res.NumActions(),
		HBEdges:   res.HBEdges(),
		RacyPairs: len(res.RacyPairs),
		Races:     []RaceDoc{},
	}
	reg := res.Registry
	for _, r := range res.Reports {
		doc.Races = append(doc.Races, RaceDoc{
			Rank:     r.Rank,
			Category: r.Category.String(),
			Field:    r.Pair.A.Location(),
			RefRace:  r.RefRace,
			Benign:   r.Benign,
			A: AccessDoc{
				Action:     r.Pair.A.Action,
				ActionName: reg.Get(r.Pair.A.Action).Name(),
				Kind:       r.Pair.A.Kind.String(),
				Pos:        r.Pair.A.Pos.String(),
			},
			B: AccessDoc{
				Action:     r.Pair.B.Action,
				ActionName: reg.Get(r.Pair.B.Action).Name(),
				Kind:       r.Pair.B.Kind.String(),
				Pos:        r.Pair.B.Pos.String(),
			},
			Paths:  r.Verdict.Paths,
			Budget: r.Verdict.BudgetExhausted,
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
	return buf.Bytes()
}
