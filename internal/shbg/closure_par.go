package shbg

// Block-parallel transitive closure (Options.Jobs > 1).
//
// The serial close() drains a LIFO worklist, ORing each popped row into
// its predecessors through the rev index. This variant runs synchronous
// rounds instead: the drained worklist becomes a *frontier* bitset, the
// action rows are split into contiguous blocks — one worker per block —
// and each worker sweeps its rows, merging the round-start snapshot of
// every frontier row its row references. A barrier ends the round; the
// next frontier is every row that grew plus every successor bit that
// newly appeared anywhere (so a row that just gained an edge to a
// settled action re-absorbs that action's successors next round).
//
// Why the fixpoint matches the serial relation exactly: workers only
// write their own block's rows and read immutable round-start
// snapshots, so the sweep is deterministic; and the frontier invariant
// — whenever hb[i] ∋ j but hb[i] ⊉ hb[j]\{i}, j is in the frontier —
// holds at every round start (initially the worklist contains both
// endpoints of every direct edge; afterwards grown rows and newly
// referenced successors re-enter). An empty frontier therefore implies
// full closure, the same unique fixpoint the serial drain reaches, so
// HB bits, NumEdges, and the RuleTransitive tally (each new bit counted
// exactly once under the nw mask) are identical. Only the *trailing
// zero words* of a row may differ from the serial path — row growth
// depends on merge-time lengths — which no observable (HB, Count,
// Fingerprint) can see. closure_par_test.go pins all of this against
// both the serial path and the naive Floyd–Warshall reference.

import (
	mathbits "math/bits"
	"sync"

	"sierra/internal/bitset"
)

// closeParallel is the Jobs>1 implementation of close(); see close()
// for the contract.
func (g *Graph) closeParallel() bool {
	if len(g.work) == 0 {
		return false
	}
	blocks := g.jobs
	if blocks > g.n {
		blocks = g.n
	}

	// The drained worklist is the first frontier.
	fb := bitset.New(g.n)
	for _, k := range g.work {
		g.inWork[k] = false
		fb.Add(k)
	}
	g.work = g.work[:0]

	if g.snapRows == nil {
		g.snapRows = make([]bitset.Set, g.n)
	}
	everGrew := bitset.New(g.n)
	grews := make([][]int, blocks)
	addedBy := make([]int, blocks)
	refs := make([]bitset.Set, blocks)

	totalAdded := 0
	per := (g.n + blocks - 1) / blocks
	for {
		frontierEmpty := true
		fb.ForEach(func(k int) {
			g.snapRows[k].CopyFrom(g.hb[k])
			frontierEmpty = false
		})
		if frontierEmpty {
			break
		}
		g.closureBlocks += int64(blocks)
		var wg sync.WaitGroup
		for wi := 0; wi < blocks; wi++ {
			lo := wi * per
			hi := lo + per
			if hi > g.n {
				hi = g.n
			}
			refs[wi] = bitset.New(g.n)
			wg.Add(1)
			go func(wi, lo, hi int) {
				defer wg.Done()
				grew := grews[wi][:0]
				added := 0
				for i := lo; i < hi; i++ {
					rowAdded := 0
					// Re-read the row length each step: merges can extend
					// the row, and frontier bits landing in later words are
					// still merged this round (earlier ones re-enter via
					// the reference frontier).
					for w := 0; w < len(g.hb[i]); w++ {
						var fw uint64
						if w < len(fb) {
							fw = fb[w]
						}
						cand := g.hb[i][w] & fw
						for rem := cand; rem != 0; rem &= rem - 1 {
							k := w<<6 + mathbits.TrailingZeros64(rem)
							rowAdded += g.mergeRowPar(i, g.snapRows[k], &refs[wi])
						}
					}
					if rowAdded > 0 {
						grew = append(grew, i)
						added += rowAdded
					}
				}
				grews[wi] = grew
				addedBy[wi] = added
			}(wi, lo, hi)
		}
		wg.Wait()

		// Barrier: assemble the next frontier deterministically.
		nf := bitset.New(g.n)
		for wi := 0; wi < blocks; wi++ {
			totalAdded += addedBy[wi]
			for _, i := range grews[wi] {
				nf.Add(i)
				everGrew.Add(i)
			}
			refs[wi].ForEach(func(j int) { nf.Add(j) })
		}
		fb = nf
	}

	// Rebuild the predecessor index for every row that grew (workers do
	// not maintain rev; Add is idempotent for bits already indexed).
	everGrew.ForEach(func(i int) {
		row := g.hb[i]
		row.ForEach(func(j int) {
			g.rev[j].Add(i)
		})
	})
	g.ruleCounts[RuleTransitive] += totalAdded
	return totalAdded > 0
}

// mergeRowPar ORs a frontier row's snapshot into row i (clearing the
// self-bit), recording each newly set successor bit in ref and
// returning the number of bits added. Row growth mirrors orRow: the row
// extends to the last non-zero source word even when masking leaves no
// new bits.
func (g *Graph) mergeRowPar(i int, prev bitset.Set, ref *bitset.Set) int {
	row := g.hb[i]
	added := 0
	for w, kw := range prev {
		if w == i>>6 {
			kw &^= 1 << (uint(i) & 63)
		}
		if kw == 0 {
			continue
		}
		for len(row) <= w {
			row = append(row, 0)
		}
		nw := kw &^ row[w]
		if nw == 0 {
			continue
		}
		row[w] |= nw
		added += mathbits.OnesCount64(nw)
		for rem := nw; rem != 0; rem &= rem - 1 {
			ref.Add(w<<6 + mathbits.TrailingZeros64(rem))
		}
	}
	g.hb[i] = row
	return added
}
