package shbg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sierra/internal/bitset"
	"sierra/internal/corpus"
)

// newBareGraph builds a Graph with n nodes and no registry — enough to
// drive addEdge/close/HB directly in kernel tests.
func newBareGraph(n int) *Graph {
	return &Graph{
		n:      n,
		hb:     make([]bitset.Set, n),
		rev:    make([]bitset.Set, n),
		inWork: make([]bool, n),
	}
}

// naiveClosure is the reference the bitset worklist replaced: a dense
// Floyd–Warshall sweep over a bool matrix.
func naiveClosure(n int, edges [][2]int) [][]bool {
	hb := make([][]bool, n)
	for i := range hb {
		hb[i] = make([]bool, n)
	}
	for _, e := range edges {
		if e[0] != e[1] {
			hb[e[0]][e[1]] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !hb[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if hb[k][j] && i != j {
					hb[i][j] = true
				}
			}
		}
	}
	return hb
}

// TestClosureMatchesNaiveReference drives the worklist closure and the
// dense bool-matrix Floyd–Warshall over the same random edge sets —
// including multi-batch insertion with close() between batches, the
// shape Build's rule-6/7 loop produces — and requires the identical
// relation, edge count, and transitive-edge tally.
func TestClosureMatchesNaiveReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(70) // spans the one-word/multi-word row boundary
		nedges := rng.Intn(3 * n)
		edges := make([][2]int, 0, nedges)
		for i := 0; i < nedges; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}

		g := newBareGraph(n)
		direct := 0
		// Insert in batches with a close() drain between them, like the
		// iterated rule-6/7 loop: later batches must re-open settled rows.
		cut := rng.Intn(len(edges) + 1)
		for i, e := range edges {
			if i == cut {
				g.close()
			}
			if g.addEdge(e[0], e[1], RuleInvocation) {
				direct++
			}
		}
		g.close()

		want := naiveClosure(n, edges)
		closed := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.HB(i, j) != want[i][j] {
					t.Logf("seed %d: HB(%d,%d)=%v, naive=%v", seed, i, j, g.HB(i, j), want[i][j])
					return false
				}
				if want[i][j] {
					closed++
				}
			}
		}
		if g.NumEdges() != closed {
			return false
		}
		// Every closed edge is either direct or tallied as transitive.
		return g.RuleCount(RuleTransitive) == closed-direct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestClosureIdempotent re-draining an already-closed graph must report
// no change and add no edges.
func TestClosureIdempotent(t *testing.T) {
	g := newBareGraph(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 0}} {
		g.addEdge(e[0], e[1], RuleInvocation)
	}
	g.close()
	before := g.NumEdges()
	if g.close() {
		t.Error("second close() reported change on a closed graph")
	}
	if g.NumEdges() != before {
		t.Errorf("second close() changed edges: %d -> %d", before, g.NumEdges())
	}
}

// TestHBOrderedBoundsSafe out-of-range action ids must answer false,
// not panic — callers pass raw pair ids that can outlive a registry.
func TestHBOrderedBoundsSafe(t *testing.T) {
	reg, g := pipeline(t, corpus.SudokuTimerApp())
	n := reg.NumActions()
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {n, 0}, {0, n}, {n + 100, n + 200}, {-5, -7}} {
		if g.HB(pair[0], pair[1]) {
			t.Errorf("HB(%d,%d) = true for out-of-range id", pair[0], pair[1])
		}
		if g.Ordered(pair[0], pair[1]) {
			t.Errorf("Ordered(%d,%d) = true for out-of-range id", pair[0], pair[1])
		}
	}
	// addEdge must reject out-of-range ids rather than corrupt rows.
	bare := newBareGraph(3)
	for _, pair := range [][2]int{{-1, 0}, {0, 3}, {3, 0}, {1, 1}} {
		if bare.addEdge(pair[0], pair[1], RuleInvocation) {
			t.Errorf("addEdge(%d,%d) accepted an invalid edge", pair[0], pair[1])
		}
	}
	if bare.NumEdges() != 0 {
		t.Errorf("invalid edges left %d edges behind", bare.NumEdges())
	}
}
