package shbg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint digests the closed HB relation: action count plus every
// successor row, word by word. Two graphs over programs with identical
// action numbering fingerprint equally iff their HB relations are
// bit-identical. internal/incremental uses this as its reuse witness —
// the incremental parity tests rebuild the graph cold and assert the
// reused baseline graph digests to the same value, turning "the SHBG
// cannot have changed" from an argument into a checked equality.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.n))
	h.Write(buf[:])
	for _, row := range g.hb {
		// Trailing zero words are representation detail, not relation:
		// hash up to the last set word so equal relations with different
		// allocation widths digest equally.
		last := len(row)
		for last > 0 && row[last-1] == 0 {
			last--
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(last))
		h.Write(buf[:])
		for _, w := range row[:last] {
			binary.LittleEndian.PutUint64(buf[:], w)
			h.Write(buf[:])
		}
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:])
}
