package shbg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/harness"
	"sierra/internal/pointer"
)

// parJobCounts are the worker counts every parallel-closure parity test
// pins against the serial drain.
var parJobCounts = []int{2, 3, 8}

// requireRevConsistent checks hb/rev lockstep: the parallel path defers
// rev maintenance to a post-convergence rebuild, and later rule rounds
// (and RacyPairs' predecessor scans) depend on the index being exact.
func requireRevConsistent(t *testing.T, g *Graph) {
	t.Helper()
	for i := 0; i < g.n; i++ {
		g.hb[i].ForEach(func(j int) {
			if !g.rev[j].Has(i) {
				t.Fatalf("rev[%d] missing predecessor %d", j, i)
			}
		})
		g.rev[i].ForEach(func(j int) {
			if !g.hb[j].Has(i) {
				t.Fatalf("rev[%d] has stale predecessor %d", i, j)
			}
		})
	}
}

// TestClosureParallelMatchesNaiveReference is the block-parallel twin of
// TestClosureMatchesNaiveReference: the same random multi-batch edge
// sets, drained at several worker counts, must reproduce the dense
// Floyd–Warshall relation, the edge count, the transitive tally, and a
// consistent predecessor index.
func TestClosureParallelMatchesNaiveReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(70)
		nedges := rng.Intn(3 * n)
		edges := make([][2]int, 0, nedges)
		for i := 0; i < nedges; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		cut := rng.Intn(len(edges) + 1)
		want := naiveClosure(n, edges)

		for _, jobs := range parJobCounts {
			g := newBareGraph(n)
			g.jobs = jobs
			direct := 0
			for i, e := range edges {
				if i == cut {
					g.close()
				}
				if g.addEdge(e[0], e[1], RuleInvocation) {
					direct++
				}
			}
			g.close()

			closed := 0
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if g.HB(i, j) != want[i][j] {
						t.Logf("seed %d jobs %d: HB(%d,%d)=%v, naive=%v",
							seed, jobs, i, j, g.HB(i, j), want[i][j])
						return false
					}
					if want[i][j] {
						closed++
					}
				}
			}
			if g.NumEdges() != closed {
				return false
			}
			if g.RuleCount(RuleTransitive) != closed-direct {
				return false
			}
			requireRevConsistent(t, g)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestClosureParallelMatchesSerial drives identical random edge batches
// through the serial drain and the block-parallel rounds and requires
// the exact same observables — relation fingerprint, change reports from
// every close() call, edge count, and per-rule tallies. Trailing zero
// words of a row may differ between the paths (growth depends on
// merge-time lengths); the fingerprint deliberately ignores them.
func TestClosureParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(70)
		nedges := rng.Intn(3 * n)
		edges := make([][2]int, 0, nedges)
		for i := 0; i < nedges; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		cuts := map[int]bool{rng.Intn(len(edges) + 1): true, rng.Intn(len(edges) + 1): true}

		run := func(jobs int) (*Graph, []bool) {
			g := newBareGraph(n)
			g.jobs = jobs
			var reports []bool
			for i, e := range edges {
				if cuts[i] {
					reports = append(reports, g.close())
				}
				g.addEdge(e[0], e[1], RuleInvocation)
			}
			reports = append(reports, g.close())
			// An immediate re-drain must be a no-op on both paths.
			reports = append(reports, g.close())
			return g, reports
		}

		serial, wantReports := run(1)
		for _, jobs := range parJobCounts {
			par, reports := run(jobs)
			if par.Fingerprint() != serial.Fingerprint() {
				t.Logf("seed %d jobs %d: fingerprint mismatch", seed, jobs)
				return false
			}
			if par.NumEdges() != serial.NumEdges() {
				return false
			}
			for r := Rule(0); r < numRules; r++ {
				if par.RuleCount(r) != serial.RuleCount(r) {
					t.Logf("seed %d jobs %d: rule %s tally %d != %d",
						seed, jobs, r, par.RuleCount(r), serial.RuleCount(r))
					return false
				}
			}
			if len(reports) != len(wantReports) {
				return false
			}
			for i := range reports {
				if reports[i] != wantReports[i] {
					t.Logf("seed %d jobs %d: close() report %d: %v != %v",
						seed, jobs, i, reports[i], wantReports[i])
					return false
				}
			}
			requireRevConsistent(t, par)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildParallelMatchesSerial runs the full SHBG pipeline — all seven
// rules iterating with closure — at several worker counts over the
// corpus apps and requires the exact serial graph.
func TestBuildParallelMatchesSerial(t *testing.T) {
	apps := []*apk.App{
		corpus.SudokuTimerApp(), corpus.NewsApp(),
		corpus.DatabaseApp(), corpus.NullGuardApp(),
	}
	for _, app := range apps {
		hs := harness.Generate(app)
		reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
		serial := Build(reg, res, Options{})
		for _, jobs := range parJobCounts {
			par := Build(reg, res, Options{Jobs: jobs})
			if par.Fingerprint() != serial.Fingerprint() {
				t.Errorf("%s jobs=%d: fingerprint diverged from serial build", app.Name, jobs)
			}
			if par.NumEdges() != serial.NumEdges() {
				t.Errorf("%s jobs=%d: edges %d != %d", app.Name, jobs, par.NumEdges(), serial.NumEdges())
			}
			for r := Rule(0); r < numRules; r++ {
				if par.RuleCount(r) != serial.RuleCount(r) {
					t.Errorf("%s jobs=%d: rule %s tally %d != %d",
						app.Name, jobs, r, par.RuleCount(r), serial.RuleCount(r))
				}
			}
			requireRevConsistent(t, par)
		}
	}
}

// TestClosureParallelIdempotent re-draining an already-closed parallel
// graph must report no change and launch no worker blocks.
func TestClosureParallelIdempotent(t *testing.T) {
	g := newBareGraph(8)
	g.jobs = 4
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 0}} {
		g.addEdge(e[0], e[1], RuleInvocation)
	}
	g.close()
	before, blocks := g.NumEdges(), g.closureBlocks
	if blocks == 0 {
		t.Fatal("parallel close launched no worker blocks")
	}
	if g.close() {
		t.Error("second close() reported change on a closed graph")
	}
	if g.NumEdges() != before {
		t.Errorf("second close() changed edges: %d -> %d", before, g.NumEdges())
	}
	if g.closureBlocks != blocks {
		t.Errorf("empty-worklist close() launched blocks: %d -> %d", blocks, g.closureBlocks)
	}
}
