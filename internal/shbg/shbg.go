// Package shbg builds the Static Happens-Before Graph (§4 of the paper):
// nodes are actions, edges are statically-proven "A completes before B
// starts" relations derived from seven rules — action invocation,
// lifecycle dominance, GUI-model dominance, intra-procedural domination,
// inter-procedural intra-action domination, inter-action transitivity,
// and transitive closure.
package shbg

import (
	"context"
	mathbits "math/bits"

	"sierra/internal/actions"
	"sierra/internal/bitset"
	"sierra/internal/cfg"
	"sierra/internal/frontend"
	"sierra/internal/ir"
	"sierra/internal/obs"
	"sierra/internal/pointer"
)

// Rule identifies an HB rule for bookkeeping and ablation.
type Rule int

const (
	// RuleInvocation: spawner ≺ spawnee (threads, posts, messages,
	// system registrations, AsyncTask-internal order).
	RuleInvocation Rule = iota
	// RuleLifecycle: harness-CFG dominance between lifecycle sites
	// (Fig 5, including the duplicated onStart/onResume instances).
	RuleLifecycle
	// RuleGUI: harness-CFG dominance involving GUI sites (Fig 6), plus
	// the GUI-before-stop ordering (a stopped activity receives no UI
	// events — the reason SIERRA filters EventRacer's onClick-vs-onStop
	// false positives, §6.4).
	RuleGUI
	// RuleIntraProc: two posts in one method, the first dominating the
	// second, same target looper (rule 4).
	RuleIntraProc
	// RuleInterProc: posts in different methods of one action ordered by
	// de-facto ICFG dominance (rule 5).
	RuleInterProc
	// RuleInterAction: A1≺A2 ∧ A1 posts A3 ∧ A2 posts A4 ⇒ A3≺A4 under
	// looper atomicity (rule 6, Fig 7).
	RuleInterAction
	// RuleTransitive marks edges added by transitive closure (rule 7).
	RuleTransitive

	numRules
)

func (r Rule) String() string {
	return [...]string{
		"invocation", "lifecycle", "gui", "intra-proc",
		"inter-proc", "inter-action", "transitive",
	}[r]
}

// Options tunes graph construction (rule ablation for benchmarks).
type Options struct {
	// Disable turns individual rules off.
	Disable map[Rule]bool
	// DisableGUITeardownOrder drops only the §6.4 GUI-before-stop
	// post-dominance edges while keeping the rest of the GUI rule. Those
	// edges deliberately conflate action instances (a click after a
	// restart follows an earlier onStop), trading per-instance soundness
	// for the false-positive filtering the paper describes; disabling
	// them yields the instance-sound core HB relation.
	DisableGUITeardownOrder bool
	// Obs, when non-nil, receives the construction effort counters
	// (shbg.* — see README.md "Observability"). Nil costs nothing.
	Obs *obs.Trace
	// Ctx, when non-nil, is polled between closure rounds; once done the
	// rule-6/7 iteration stops early and the graph is marked Interrupted
	// (every recorded edge is real, but the closure may be incomplete).
	Ctx context.Context
	// Jobs bounds the transitive-closure worker count; ≤1 (the zero
	// value) runs the exact legacy serial drain. The HB relation, edge
	// counts, and per-rule tallies are identical at every count (see
	// closure_par.go for the argument).
	Jobs int
}

// Graph is the SHBG.
type Graph struct {
	Reg *actions.Registry
	n   int
	// Interrupted marks that closure stopped early on a cancelled
	// context; the HB relation is then an under-approximation.
	Interrupted bool
	// hb[a] is a's successor row: bit b set means a ≺ b after
	// transitive closure. One bitset row per action makes closure
	// propagation a word-parallel OR (64 pairs per machine op).
	hb []bitset.Set
	// rev[b] is b's predecessor row (bit a set iff a ≺ b), kept in
	// lockstep with hb so the closure worklist can reach exactly the
	// rows a changed row invalidates.
	rev []bitset.Set
	// work/inWork form the closure worklist: actions whose successor
	// row changed since their predecessors last absorbed it.
	work   []int
	inWork []bool
	// ruleCounts tallies direct (pre-closure) edges per rule.
	ruleCounts [numRules]int
	// reachQueries counts rule 5's ICFG reachability queries.
	reachQueries int
	// iaCands/msCands are the rule-6 and multi-spawn candidates,
	// precomputed once per Build: spawns are static, so re-deriving
	// them every closure round (the old per-round singleSpawn +
	// externalSpawners churn) only burned allocations.
	iaCands []iaCand
	msCands []msCand
	// jobs > 1 routes close() through the block-parallel rounds in
	// closure_par.go; closureBlocks tallies worker-blocks launched and
	// snapRows holds the reusable round-start row snapshots.
	jobs          int
	closureBlocks int64
	snapRows      []bitset.Set
	// base records the pre-closure addEdge sequence (rules 1–5, in
	// order) while recording is set — Build's direct-edge witness, which
	// Rebuild (rebuild.go) re-derives for dirty pairs and compares.
	base      []baseEdge
	recording bool
	// restrict, when non-nil, limits the pair rules to pairs the dirty
	// predicate matches (see pairDirty/spawnPairDirty); Rebuild's
	// restricted re-derivation sets it, Build never does.
	restrict map[int]bool
}

// baseEdge is one successfully-added pre-closure edge with its rule
// attribution.
type baseEdge struct {
	a, b int
	rule Rule
}

// pairDirty is the restricted-run predicate for rules whose derivation
// reads only the two endpoints (invocation, lifecycle, GUI).
func (g *Graph) pairDirty(a, b int) bool {
	if g.restrict == nil {
		return true
	}
	return g.restrict[a] || g.restrict[b]
}

// spawnPairDirty is the predicate for the domination rules 4/5, whose
// derivation additionally reads the spawning actions' method bodies
// (dominators of the site's method, ICFG reachability from the
// spawner's roots) — so a dirty spawner dirties the pair even when both
// endpoints are clean.
func (g *Graph) spawnPairDirty(a, b, fromA, fromB int) bool {
	if g.restrict == nil {
		return true
	}
	return g.restrict[a] || g.restrict[b] ||
		(fromA >= 0 && g.restrict[fromA]) || (fromB >= 0 && g.restrict[fromB])
}

// iaCand is a rule-6 candidate: a single-spawn action actually posted,
// undelayed, to a real looper queue. Pairs of candidates on the same
// looper with distinct HB-ordered spawners get ordered by Fig 7.
type iaCand struct {
	id     int
	from   int
	looper actions.Looper
}

// msCand is a multi-spawner invocation-rule candidate with its distinct
// external spawner ids.
type msCand struct {
	id       int
	spawners []int
}

// Build constructs the SHBG from the action registry and the (action-
// sensitive) analysis result.
func Build(reg *actions.Registry, res *pointer.Result, opts Options) *Graph {
	g := &Graph{Reg: reg, n: reg.NumActions(), jobs: opts.Jobs}
	g.hb = make([]bitset.Set, g.n)
	g.rev = make([]bitset.Set, g.n)
	g.inWork = make([]bool, g.n)
	disabled := func(r Rule) bool { return opts.Disable != nil && opts.Disable[r] }

	// Record the pre-closure direct-edge sequence: Rebuild's dirty-row
	// comparison needs the exact per-rule base set, and the rounds loop
	// below must not pollute it (its edges are derived, not direct).
	g.recording = true
	if !disabled(RuleInvocation) {
		g.ruleInvocation()
	}
	if !disabled(RuleLifecycle) || !disabled(RuleGUI) {
		g.ruleHarnessDominance(disabled(RuleLifecycle), disabled(RuleGUI), opts.DisableGUITeardownOrder)
	}
	if !disabled(RuleIntraProc) {
		g.ruleIntraProc()
	}
	if !disabled(RuleInterProc) {
		g.ruleInterProc(res)
	}
	g.recording = false
	// Rules 6+7 iterate together: inter-action transitivity can reveal
	// edges that further closure propagates, and vice versa (§4.3 ¶7).
	// Their candidate sets depend only on the (static) spawn structure,
	// so derive them once, in action order.
	for _, a := range reg.Actions() {
		if sp, ok := singleSpawn(a); ok && sp.From >= 0 &&
			sp.Posted && !sp.Delayed && a.Looper != actions.LooperNone {
			g.iaCands = append(g.iaCands, iaCand{id: a.ID, from: sp.From, looper: a.Looper})
		}
		if spawners := externalSpawners(a); len(spawners) >= 2 {
			g.msCands = append(g.msCands, msCand{id: a.ID, spawners: spawners})
		}
	}
	rounds := 0
	for {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			g.Interrupted = true
			break
		}
		rounds++
		changed := g.close()
		if !disabled(RuleInvocation) && g.ruleMultiSpawnInvocation() {
			changed = true
		}
		if !disabled(RuleInterAction) && g.ruleInterAction() {
			changed = true
		}
		if !changed {
			break
		}
	}
	if tr := opts.Obs; tr != nil {
		for r := Rule(0); r < numRules; r++ {
			tr.Count("shbg.edges."+r.String(), int64(g.ruleCounts[r]))
		}
		tr.Count("shbg.edges_closed", int64(g.NumEdges()))
		tr.Count("shbg.closure_rounds", int64(rounds))
		tr.Observe("shbg.closure_iterations", float64(rounds))
		tr.Count("shbg.reach_queries", int64(g.reachQueries))
		if g.closureBlocks > 0 {
			tr.Count("shbg.closure_blocks", g.closureBlocks)
		}
		if g.Interrupted {
			tr.Count("shbg.interrupted", 1)
		}
	}
	return g
}

// addEdge inserts a direct edge (no self-edges, out-of-range ids
// rejected), tagging the rule. Both endpoints join the closure
// worklist: a's row grew, and b's successors now belong in a's row.
func (g *Graph) addEdge(a, b int, r Rule) bool {
	if a == b || a < 0 || b < 0 || a >= g.n || b >= g.n || g.hb[a].Has(b) {
		return false
	}
	g.hb[a].Add(b)
	g.rev[b].Add(a)
	g.ruleCounts[r]++
	if g.recording {
		g.base = append(g.base, baseEdge{a: a, b: b, rule: r})
	}
	g.push(a)
	g.push(b)
	return true
}

// HB reports whether a ≺ b (false for out-of-range action ids).
func (g *Graph) HB(a, b int) bool {
	if a < 0 || b < 0 || a >= g.n || b >= g.n {
		return false
	}
	return g.hb[a].Has(b)
}

// Ordered reports whether the pair is ordered either way (false for
// out-of-range action ids).
func (g *Graph) Ordered(a, b int) bool {
	if a < 0 || b < 0 || a >= g.n || b >= g.n {
		return false
	}
	return g.hb[a].Has(b) || g.hb[b].Has(a)
}

// NumActions returns the node count.
func (g *Graph) NumActions() int { return g.n }

// NumEdges counts ordered pairs after closure.
func (g *Graph) NumEdges() int {
	total := 0
	for a := 0; a < g.n; a++ {
		total += g.hb[a].Count()
	}
	return total
}

// OrderedFraction is NumEdges over the theoretical maximum N(N-1)/2 —
// the "Ordered (%)" column of Table 3.
func (g *Graph) OrderedFraction() float64 {
	if g.n < 2 {
		return 0
	}
	max := g.n * (g.n - 1) / 2
	return float64(g.NumEdges()) / float64(max)
}

// RuleCount reports how many direct edges a rule contributed.
func (g *Graph) RuleCount(r Rule) int { return g.ruleCounts[r] }

// ruleInvocation adds spawner ≺ spawnee edges plus AsyncTask-internal
// order (rule 1 and Table 1's HB-introduction column).
//
// Soundness with multiple spawners: an action node conflates every
// occurrence it stands for, so "X ≺ B" must hold no matter which site
// posted B. A direct edge is only added when B has a single distinct
// external spawner; multi-spawner actions are ordered by the
// intersection rule in ruleMultiSpawnInvocation, re-run under closure.
// Self-spawns (a runnable re-posting itself) are excluded from the
// spawner set: by induction, anything preceding the first post precedes
// every re-post.
func (g *Graph) ruleInvocation() {
	for _, a := range g.Reg.Actions() {
		spawners := externalSpawners(a)
		if len(spawners) == 1 && g.pairDirty(spawners[0], a.ID) {
			g.addEdge(spawners[0], a.ID, RuleInvocation)
		}
	}
	for _, e := range g.Reg.TaskEdges() {
		if g.pairDirty(e[0], e[1]) {
			g.addEdge(e[0], e[1], RuleInvocation)
		}
	}
}

// externalSpawners returns the distinct non-self spawner ids of a.
func externalSpawners(a *actions.Action) []int {
	seen := map[int]bool{}
	var out []int
	for _, sp := range a.Spawns {
		if sp.From < 0 || sp.From == a.ID || seen[sp.From] {
			continue
		}
		seen[sp.From] = true
		out = append(out, sp.From)
	}
	return out
}

// ruleMultiSpawnInvocation orders X ≺ B for multi-spawner actions B when
// X is (or precedes) every distinct external spawner of B. Monotone in
// the growing HB relation, so it iterates with closure over the
// precomputed msCands (same action/x order as the naive scan, so the
// addEdge sequence — and with it the per-rule tallies — is unchanged).
func (g *Graph) ruleMultiSpawnInvocation() bool {
	changed := false
	for _, ms := range g.msCands {
		for x := 0; x < g.n; x++ {
			if x == ms.id || g.hb[x].Has(ms.id) {
				continue
			}
			all := true
			for _, f := range ms.spawners {
				if x != f && !g.hb[x].Has(f) {
					all = false
					break
				}
			}
			if all && g.addEdge(x, ms.id, RuleInvocation) {
				changed = true
			}
		}
	}
	return changed
}

// ruleHarnessDominance adds dominance-derived edges among harness-sited
// actions (rules 2 and 3): site dominance in the harness CFG orders
// lifecycle and GUI actions; post-dominance of pause/stop/destroy over
// GUI sites orders UI events before the activity becomes invisible.
func (g *Graph) ruleHarnessDominance(skipLifecycle, skipGUI, skipTeardown bool) {
	for hi, h := range g.Reg.Harnesses {
		if g.restrict != nil {
			// Restricted runs skip whole harnesses with no dirty sited
			// action: every pair the loops below would consider fails the
			// endpoint predicate, so the dominator trees are dead weight.
			any := false
			for _, a := range g.Reg.Actions() {
				if a.Scope == hi && a.HarnessSite.Valid() && g.restrict[a.ID] {
					any = true
					break
				}
			}
			if !any {
				continue
			}
		}
		dom := cfg.MethodDominators(h.Method)
		graph := cfg.MethodGraph{M: h.Method}

		// Post-dominators need the single return block as exit.
		exits := []int{}
		for bi, blk := range h.Method.Blocks {
			if len(blk.Stmts) > 0 {
				if _, isRet := blk.Stmts[len(blk.Stmts)-1].(*ir.Return); isRet {
					exits = append(exits, bi)
				}
			}
		}
		gx, exit := cfg.WithVirtualExit(graph, exits)
		pdom := cfg.PostDominators(gx, exit)

		var sited []*actions.Action
		for _, a := range g.Reg.Actions() {
			if a.Scope == hi && a.HarnessSite.Valid() {
				sited = append(sited, a)
			}
		}
		for _, a := range sited {
			for _, b := range sited {
				if a == b {
					continue
				}
				bothLC := a.Kind == actions.KindLifecycle && b.Kind == actions.KindLifecycle
				rule := RuleGUI
				if bothLC {
					rule = RuleLifecycle
				}
				if (bothLC && skipLifecycle) || (!bothLC && skipGUI) {
					continue
				}
				if !g.pairDirty(a.ID, b.ID) {
					continue
				}
				if cfg.StmtDominates(dom, a.HarnessSite, b.HarnessSite) {
					g.addEdge(a.ID, b.ID, rule)
				}
			}
		}
		if skipGUI || skipTeardown {
			continue
		}
		// GUI ≺ pause/stop/destroy via post-dominance: a stopped
		// activity receives no UI events, so every UI action instance
		// precedes the teardown callbacks (cycle-guarded: only when the
		// reverse edge is absent).
		for _, a := range sited {
			if a.Kind != actions.KindGUI {
				continue
			}
			for _, b := range sited {
				if b.Kind != actions.KindLifecycle {
					continue
				}
				// Only stopped/destroyed activities are guaranteed to
				// receive no UI events (§6.4); paused ones may still be
				// visible, so onPause stays unordered with GUI actions.
				switch b.Callback {
				case frontend.OnStop, frontend.OnDestroy:
				default:
					continue
				}
				if !g.pairDirty(a.ID, b.ID) {
					continue
				}
				if g.hb[b.ID].Has(a.ID) {
					continue
				}
				if pdom.Dominates(b.HarnessSite.Block, a.HarnessSite.Block) {
					g.addEdge(a.ID, b.ID, RuleGUI)
				}
			}
		}
	}
}

// singleSpawn returns an action's sole spawn when it has exactly one —
// the sound precondition for the domination rules 4/5 (an action posted
// from several sites has no unique posting point to order).
func singleSpawn(a *actions.Action) (actions.Spawn, bool) {
	if len(a.Spawns) != 1 {
		return actions.Spawn{}, false
	}
	return a.Spawns[0], true
}

// posteable reports whether rules 4/5/6's looper-FIFO reasoning applies
// to a pair of spawned actions: both actually posted to the same real
// looper queue (not synthetic harness invocations, thread starts, or
// system registrations) and neither delayed.
func posteable(a, b *actions.Action, sa, sb actions.Spawn) bool {
	return sa.Posted && sb.Posted &&
		a.Looper == b.Looper && a.Looper != actions.LooperNone &&
		!sa.Delayed && !sb.Delayed
}

// ruleIntraProc orders actions posted at two sites of the same method
// when the first site dominates the second (rule 4).
func (g *Graph) ruleIntraProc() {
	domCache := map[*ir.Method]*cfg.DomTree{}
	for _, a := range g.Reg.Actions() {
		sa, ok := singleSpawn(a)
		if !ok || !sa.Site.Valid() {
			continue
		}
		for _, b := range g.Reg.Actions() {
			if a.ID == b.ID {
				continue
			}
			sb, ok := singleSpawn(b)
			if !ok || !sb.Site.Valid() || sa.Site.Method != sb.Site.Method {
				continue
			}
			if !posteable(a, b, sa, sb) {
				continue
			}
			if !g.spawnPairDirty(a.ID, b.ID, sa.From, sb.From) {
				continue
			}
			dom := domCache[sa.Site.Method]
			if dom == nil {
				dom = cfg.MethodDominators(sa.Site.Method)
				domCache[sa.Site.Method] = dom
			}
			if cfg.StmtDominates(dom, sa.Site, sb.Site) {
				g.addEdge(a.ID, b.ID, RuleIntraProc)
			}
		}
	}
}

// ruleInterProc orders actions posted from different methods of the same
// spawning action via de-facto ICFG dominance: removing e1 must make e2
// unreachable from the spawner's roots (rule 5).
func (g *Graph) ruleInterProc(res *pointer.Result) {
	icfg := cfg.NewICFG(res.CalleeMethods())
	for _, a := range g.Reg.Actions() {
		sa, ok := singleSpawn(a)
		if !ok || !sa.Site.Valid() || sa.From < 0 {
			continue
		}
		for _, b := range g.Reg.Actions() {
			if a.ID == b.ID || g.hb[a.ID].Has(b.ID) {
				continue
			}
			sb, ok := singleSpawn(b)
			if !ok || !sb.Site.Valid() || sb.From != sa.From {
				continue
			}
			if sa.Site.Method == sb.Site.Method || !posteable(a, b, sa, sb) {
				continue
			}
			if !g.spawnPairDirty(a.ID, b.ID, sa.From, sb.From) {
				continue
			}
			spawner := g.Reg.Get(sa.From)
			dominated := len(spawner.Roots) > 0
			for _, root := range spawner.Roots {
				g.reachQueries++
				if icfg.ReachesWithoutStrict(root, sa.Site, sb.Site) {
					dominated = false
					break
				}
				// e2 must be reachable at all for the claim to mean
				// anything.
				g.reachQueries++
				if !icfg.Reaches(root, sb.Site) {
					dominated = false
					break
				}
			}
			if dominated {
				g.addEdge(a.ID, b.ID, RuleInterProc)
			}
		}
	}
}

// ruleInterAction applies Fig 7: A1 ≺ A2, A1 posts A3, A2 posts A4,
// same-looper non-delayed posts ⇒ A3 ≺ A4. It scans the precomputed
// candidate pairs — the same pairs the naive n² scan reached, in the
// same order, so the addEdge sequence is unchanged — which drops the
// per-round cost from n² singleSpawn/posteable probes to c² bit tests
// over the usually-small posted-candidate set.
func (g *Graph) ruleInterAction() bool {
	changed := false
	for _, c3 := range g.iaCands {
		for _, c4 := range g.iaCands {
			if c3.id == c4.id || c4.from == c3.from || c3.looper != c4.looper {
				continue
			}
			if g.hb[c3.id].Has(c4.id) || !g.hb[c3.from].Has(c4.from) {
				continue
			}
			if g.addEdge(c3.id, c4.id, RuleInterAction) {
				changed = true
			}
		}
	}
	return changed
}

// close computes the transitive closure (rule 7), reporting change.
//
// Rather than a dense Floyd–Warshall sweep (n³ boolean tests per call,
// most re-confirming settled rows), it drains a worklist of actions
// whose successor row changed: popping k ORs hb[k] into every
// predecessor's row word-parallel, re-queueing rows that grew. The
// fixpoint is the same full closure the dense sweep reached — at an
// empty worklist every edge i≺k implies hb[i] ⊇ hb[k]\{i} — so the
// per-rule edge counts, round counts, and final relation are
// unchanged; only the work drops from n³ to (edges added)·n/64.
func (g *Graph) close() bool {
	if g.jobs > 1 && g.n > 1 {
		return g.closeParallel()
	}
	changed := false
	for len(g.work) > 0 {
		k := g.work[len(g.work)-1]
		g.work = g.work[:len(g.work)-1]
		g.inWork[k] = false
		krow := g.hb[k]
		if len(krow) == 0 {
			continue
		}
		// Propagate k's successors to each predecessor of k. rev[k]
		// cannot change while k is being processed (self-bits never
		// exist, so no new j here equals k), making the iteration safe.
		g.rev[k].ForEach(func(i int) {
			if g.orRow(i, krow) > 0 {
				changed = true
				g.push(i)
			}
		})
	}
	return changed
}

// orRow ORs krow into action i's successor row (clearing the self-bit),
// maintains rev for every newly reachable successor, tallies the new
// edges under RuleTransitive, and returns how many bits were added.
func (g *Graph) orRow(i int, krow bitset.Set) int {
	row := g.hb[i]
	added := 0
	for w, kw := range krow {
		if w == i>>6 {
			kw &^= 1 << (uint(i) & 63)
		}
		if kw == 0 {
			continue
		}
		for len(row) <= w {
			row = append(row, 0)
		}
		nw := kw &^ row[w]
		if nw == 0 {
			continue
		}
		row[w] |= nw
		added += mathbits.OnesCount64(nw)
		for rem := nw; rem != 0; rem &= rem - 1 {
			j := w<<6 + mathbits.TrailingZeros64(rem)
			g.rev[j].Add(i)
		}
	}
	g.hb[i] = row
	g.ruleCounts[RuleTransitive] += added
	return added
}

// push queues action i for closure propagation (idempotent).
func (g *Graph) push(i int) {
	if !g.inWork[i] {
		g.inWork[i] = true
		g.work = append(g.work, i)
	}
}
