// Package shbg builds the Static Happens-Before Graph (§4 of the paper):
// nodes are actions, edges are statically-proven "A completes before B
// starts" relations derived from seven rules — action invocation,
// lifecycle dominance, GUI-model dominance, intra-procedural domination,
// inter-procedural intra-action domination, inter-action transitivity,
// and transitive closure.
package shbg

import (
	"context"

	"sierra/internal/actions"
	"sierra/internal/cfg"
	"sierra/internal/frontend"
	"sierra/internal/ir"
	"sierra/internal/obs"
	"sierra/internal/pointer"
)

// Rule identifies an HB rule for bookkeeping and ablation.
type Rule int

const (
	// RuleInvocation: spawner ≺ spawnee (threads, posts, messages,
	// system registrations, AsyncTask-internal order).
	RuleInvocation Rule = iota
	// RuleLifecycle: harness-CFG dominance between lifecycle sites
	// (Fig 5, including the duplicated onStart/onResume instances).
	RuleLifecycle
	// RuleGUI: harness-CFG dominance involving GUI sites (Fig 6), plus
	// the GUI-before-stop ordering (a stopped activity receives no UI
	// events — the reason SIERRA filters EventRacer's onClick-vs-onStop
	// false positives, §6.4).
	RuleGUI
	// RuleIntraProc: two posts in one method, the first dominating the
	// second, same target looper (rule 4).
	RuleIntraProc
	// RuleInterProc: posts in different methods of one action ordered by
	// de-facto ICFG dominance (rule 5).
	RuleInterProc
	// RuleInterAction: A1≺A2 ∧ A1 posts A3 ∧ A2 posts A4 ⇒ A3≺A4 under
	// looper atomicity (rule 6, Fig 7).
	RuleInterAction
	// RuleTransitive marks edges added by transitive closure (rule 7).
	RuleTransitive

	numRules
)

func (r Rule) String() string {
	return [...]string{
		"invocation", "lifecycle", "gui", "intra-proc",
		"inter-proc", "inter-action", "transitive",
	}[r]
}

// Options tunes graph construction (rule ablation for benchmarks).
type Options struct {
	// Disable turns individual rules off.
	Disable map[Rule]bool
	// DisableGUITeardownOrder drops only the §6.4 GUI-before-stop
	// post-dominance edges while keeping the rest of the GUI rule. Those
	// edges deliberately conflate action instances (a click after a
	// restart follows an earlier onStop), trading per-instance soundness
	// for the false-positive filtering the paper describes; disabling
	// them yields the instance-sound core HB relation.
	DisableGUITeardownOrder bool
	// Obs, when non-nil, receives the construction effort counters
	// (shbg.* — see README.md "Observability"). Nil costs nothing.
	Obs *obs.Trace
	// Ctx, when non-nil, is polled between closure rounds; once done the
	// rule-6/7 iteration stops early and the graph is marked Interrupted
	// (every recorded edge is real, but the closure may be incomplete).
	Ctx context.Context
}

// Graph is the SHBG.
type Graph struct {
	Reg *actions.Registry
	n   int
	// Interrupted marks that closure stopped early on a cancelled
	// context; the HB relation is then an under-approximation.
	Interrupted bool
	// hb[a][b]: a ≺ b after transitive closure.
	hb [][]bool
	// ruleCounts tallies direct (pre-closure) edges per rule.
	ruleCounts [numRules]int
	// reachQueries counts rule 5's ICFG reachability queries.
	reachQueries int
}

// Build constructs the SHBG from the action registry and the (action-
// sensitive) analysis result.
func Build(reg *actions.Registry, res *pointer.Result, opts Options) *Graph {
	g := &Graph{Reg: reg, n: reg.NumActions()}
	g.hb = make([][]bool, g.n)
	for i := range g.hb {
		g.hb[i] = make([]bool, g.n)
	}
	disabled := func(r Rule) bool { return opts.Disable != nil && opts.Disable[r] }

	if !disabled(RuleInvocation) {
		g.ruleInvocation()
	}
	if !disabled(RuleLifecycle) || !disabled(RuleGUI) {
		g.ruleHarnessDominance(disabled(RuleLifecycle), disabled(RuleGUI), opts.DisableGUITeardownOrder)
	}
	if !disabled(RuleIntraProc) {
		g.ruleIntraProc()
	}
	if !disabled(RuleInterProc) {
		g.ruleInterProc(res)
	}
	// Rules 6+7 iterate together: inter-action transitivity can reveal
	// edges that further closure propagates, and vice versa (§4.3 ¶7).
	rounds := 0
	for {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			g.Interrupted = true
			break
		}
		rounds++
		changed := g.close()
		if !disabled(RuleInvocation) && g.ruleMultiSpawnInvocation() {
			changed = true
		}
		if !disabled(RuleInterAction) && g.ruleInterAction() {
			changed = true
		}
		if !changed {
			break
		}
	}
	if tr := opts.Obs; tr != nil {
		for r := Rule(0); r < numRules; r++ {
			tr.Count("shbg.edges."+r.String(), int64(g.ruleCounts[r]))
		}
		tr.Count("shbg.edges_closed", int64(g.NumEdges()))
		tr.Count("shbg.closure_rounds", int64(rounds))
		tr.Count("shbg.reach_queries", int64(g.reachQueries))
		if g.Interrupted {
			tr.Count("shbg.interrupted", 1)
		}
	}
	return g
}

// addEdge inserts a direct edge (no self-edges), tagging the rule.
func (g *Graph) addEdge(a, b int, r Rule) bool {
	if a == b || a < 0 || b < 0 || g.hb[a][b] {
		return false
	}
	g.hb[a][b] = true
	g.ruleCounts[r]++
	return true
}

// HB reports whether a ≺ b.
func (g *Graph) HB(a, b int) bool { return g.hb[a][b] }

// Ordered reports whether the pair is ordered either way.
func (g *Graph) Ordered(a, b int) bool { return g.hb[a][b] || g.hb[b][a] }

// NumActions returns the node count.
func (g *Graph) NumActions() int { return g.n }

// NumEdges counts ordered pairs after closure.
func (g *Graph) NumEdges() int {
	total := 0
	for a := 0; a < g.n; a++ {
		for b := 0; b < g.n; b++ {
			if g.hb[a][b] {
				total++
			}
		}
	}
	return total
}

// OrderedFraction is NumEdges over the theoretical maximum N(N-1)/2 —
// the "Ordered (%)" column of Table 3.
func (g *Graph) OrderedFraction() float64 {
	if g.n < 2 {
		return 0
	}
	max := g.n * (g.n - 1) / 2
	return float64(g.NumEdges()) / float64(max)
}

// RuleCount reports how many direct edges a rule contributed.
func (g *Graph) RuleCount(r Rule) int { return g.ruleCounts[r] }

// ruleInvocation adds spawner ≺ spawnee edges plus AsyncTask-internal
// order (rule 1 and Table 1's HB-introduction column).
//
// Soundness with multiple spawners: an action node conflates every
// occurrence it stands for, so "X ≺ B" must hold no matter which site
// posted B. A direct edge is only added when B has a single distinct
// external spawner; multi-spawner actions are ordered by the
// intersection rule in ruleMultiSpawnInvocation, re-run under closure.
// Self-spawns (a runnable re-posting itself) are excluded from the
// spawner set: by induction, anything preceding the first post precedes
// every re-post.
func (g *Graph) ruleInvocation() {
	for _, a := range g.Reg.Actions() {
		spawners := externalSpawners(a)
		if len(spawners) == 1 {
			g.addEdge(spawners[0], a.ID, RuleInvocation)
		}
	}
	for _, e := range g.Reg.TaskEdges() {
		g.addEdge(e[0], e[1], RuleInvocation)
	}
}

// externalSpawners returns the distinct non-self spawner ids of a.
func externalSpawners(a *actions.Action) []int {
	seen := map[int]bool{}
	var out []int
	for _, sp := range a.Spawns {
		if sp.From < 0 || sp.From == a.ID || seen[sp.From] {
			continue
		}
		seen[sp.From] = true
		out = append(out, sp.From)
	}
	return out
}

// ruleMultiSpawnInvocation orders X ≺ B for multi-spawner actions B when
// X is (or precedes) every distinct external spawner of B. Monotone in
// the growing HB relation, so it iterates with closure.
func (g *Graph) ruleMultiSpawnInvocation() bool {
	changed := false
	for _, b := range g.Reg.Actions() {
		spawners := externalSpawners(b)
		if len(spawners) < 2 {
			continue
		}
		for x := 0; x < g.n; x++ {
			if x == b.ID || g.hb[x][b.ID] {
				continue
			}
			all := true
			for _, f := range spawners {
				if x != f && !g.hb[x][f] {
					all = false
					break
				}
			}
			if all && g.addEdge(x, b.ID, RuleInvocation) {
				changed = true
			}
		}
	}
	return changed
}

// ruleHarnessDominance adds dominance-derived edges among harness-sited
// actions (rules 2 and 3): site dominance in the harness CFG orders
// lifecycle and GUI actions; post-dominance of pause/stop/destroy over
// GUI sites orders UI events before the activity becomes invisible.
func (g *Graph) ruleHarnessDominance(skipLifecycle, skipGUI, skipTeardown bool) {
	for hi, h := range g.Reg.Harnesses {
		dom := cfg.MethodDominators(h.Method)
		graph := cfg.MethodGraph{M: h.Method}

		// Post-dominators need the single return block as exit.
		exits := []int{}
		for bi, blk := range h.Method.Blocks {
			if len(blk.Stmts) > 0 {
				if _, isRet := blk.Stmts[len(blk.Stmts)-1].(*ir.Return); isRet {
					exits = append(exits, bi)
				}
			}
		}
		gx, exit := cfg.WithVirtualExit(graph, exits)
		pdom := cfg.PostDominators(gx, exit)

		var sited []*actions.Action
		for _, a := range g.Reg.Actions() {
			if a.Scope == hi && a.HarnessSite.Valid() {
				sited = append(sited, a)
			}
		}
		for _, a := range sited {
			for _, b := range sited {
				if a == b {
					continue
				}
				bothLC := a.Kind == actions.KindLifecycle && b.Kind == actions.KindLifecycle
				rule := RuleGUI
				if bothLC {
					rule = RuleLifecycle
				}
				if (bothLC && skipLifecycle) || (!bothLC && skipGUI) {
					continue
				}
				if cfg.StmtDominates(dom, a.HarnessSite, b.HarnessSite) {
					g.addEdge(a.ID, b.ID, rule)
				}
			}
		}
		if skipGUI || skipTeardown {
			continue
		}
		// GUI ≺ pause/stop/destroy via post-dominance: a stopped
		// activity receives no UI events, so every UI action instance
		// precedes the teardown callbacks (cycle-guarded: only when the
		// reverse edge is absent).
		for _, a := range sited {
			if a.Kind != actions.KindGUI {
				continue
			}
			for _, b := range sited {
				if b.Kind != actions.KindLifecycle {
					continue
				}
				// Only stopped/destroyed activities are guaranteed to
				// receive no UI events (§6.4); paused ones may still be
				// visible, so onPause stays unordered with GUI actions.
				switch b.Callback {
				case frontend.OnStop, frontend.OnDestroy:
				default:
					continue
				}
				if g.hb[b.ID][a.ID] {
					continue
				}
				if pdom.Dominates(b.HarnessSite.Block, a.HarnessSite.Block) {
					g.addEdge(a.ID, b.ID, RuleGUI)
				}
			}
		}
	}
}

// singleSpawn returns an action's sole spawn when it has exactly one —
// the sound precondition for the domination rules 4/5 (an action posted
// from several sites has no unique posting point to order).
func singleSpawn(a *actions.Action) (actions.Spawn, bool) {
	if len(a.Spawns) != 1 {
		return actions.Spawn{}, false
	}
	return a.Spawns[0], true
}

// posteable reports whether rules 4/5/6's looper-FIFO reasoning applies
// to a pair of spawned actions: both actually posted to the same real
// looper queue (not synthetic harness invocations, thread starts, or
// system registrations) and neither delayed.
func posteable(a, b *actions.Action, sa, sb actions.Spawn) bool {
	return sa.Posted && sb.Posted &&
		a.Looper == b.Looper && a.Looper != actions.LooperNone &&
		!sa.Delayed && !sb.Delayed
}

// ruleIntraProc orders actions posted at two sites of the same method
// when the first site dominates the second (rule 4).
func (g *Graph) ruleIntraProc() {
	domCache := map[*ir.Method]*cfg.DomTree{}
	for _, a := range g.Reg.Actions() {
		sa, ok := singleSpawn(a)
		if !ok || !sa.Site.Valid() {
			continue
		}
		for _, b := range g.Reg.Actions() {
			if a.ID == b.ID {
				continue
			}
			sb, ok := singleSpawn(b)
			if !ok || !sb.Site.Valid() || sa.Site.Method != sb.Site.Method {
				continue
			}
			if !posteable(a, b, sa, sb) {
				continue
			}
			dom := domCache[sa.Site.Method]
			if dom == nil {
				dom = cfg.MethodDominators(sa.Site.Method)
				domCache[sa.Site.Method] = dom
			}
			if cfg.StmtDominates(dom, sa.Site, sb.Site) {
				g.addEdge(a.ID, b.ID, RuleIntraProc)
			}
		}
	}
}

// ruleInterProc orders actions posted from different methods of the same
// spawning action via de-facto ICFG dominance: removing e1 must make e2
// unreachable from the spawner's roots (rule 5).
func (g *Graph) ruleInterProc(res *pointer.Result) {
	icfg := cfg.NewICFG(res.CalleeMethods())
	for _, a := range g.Reg.Actions() {
		sa, ok := singleSpawn(a)
		if !ok || !sa.Site.Valid() || sa.From < 0 {
			continue
		}
		for _, b := range g.Reg.Actions() {
			if a.ID == b.ID || g.hb[a.ID][b.ID] {
				continue
			}
			sb, ok := singleSpawn(b)
			if !ok || !sb.Site.Valid() || sb.From != sa.From {
				continue
			}
			if sa.Site.Method == sb.Site.Method || !posteable(a, b, sa, sb) {
				continue
			}
			spawner := g.Reg.Get(sa.From)
			dominated := len(spawner.Roots) > 0
			for _, root := range spawner.Roots {
				g.reachQueries++
				if icfg.ReachesWithoutStrict(root, sa.Site, sb.Site) {
					dominated = false
					break
				}
				// e2 must be reachable at all for the claim to mean
				// anything.
				g.reachQueries++
				if !icfg.Reaches(root, sb.Site) {
					dominated = false
					break
				}
			}
			if dominated {
				g.addEdge(a.ID, b.ID, RuleInterProc)
			}
		}
	}
}

// ruleInterAction applies Fig 7: A1 ≺ A2, A1 posts A3, A2 posts A4,
// same-looper non-delayed posts ⇒ A3 ≺ A4.
func (g *Graph) ruleInterAction() bool {
	changed := false
	for _, a3 := range g.Reg.Actions() {
		s3, ok := singleSpawn(a3)
		if !ok || s3.From < 0 {
			continue
		}
		for _, a4 := range g.Reg.Actions() {
			if a3.ID == a4.ID || g.hb[a3.ID][a4.ID] {
				continue
			}
			s4, ok := singleSpawn(a4)
			if !ok || s4.From < 0 || s4.From == s3.From {
				continue
			}
			if !posteable(a3, a4, s3, s4) {
				continue
			}
			if g.hb[s3.From][s4.From] {
				if g.addEdge(a3.ID, a4.ID, RuleInterAction) {
					changed = true
				}
			}
		}
	}
	return changed
}

// close computes the transitive closure (rule 7), reporting change.
func (g *Graph) close() bool {
	changed := false
	for k := 0; k < g.n; k++ {
		for i := 0; i < g.n; i++ {
			if !g.hb[i][k] {
				continue
			}
			row, krow := g.hb[i], g.hb[k]
			for j := 0; j < g.n; j++ {
				if krow[j] && !row[j] && i != j {
					row[j] = true
					g.ruleCounts[RuleTransitive]++
					changed = true
				}
			}
		}
	}
	return changed
}
