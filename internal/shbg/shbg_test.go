package shbg

import (
	"testing"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/frontend"
	"sierra/internal/harness"
	"sierra/internal/ir"
	"sierra/internal/pointer"
)

// pipeline runs harness + discovery + SHBG for an app.
func pipeline(t *testing.T, app *apk.App) (*actions.Registry, *Graph) {
	t.Helper()
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	return reg, Build(reg, res, Options{})
}

func action(reg *actions.Registry, kind actions.Kind, callback string, instance int) *actions.Action {
	for _, a := range reg.Actions() {
		if a.Kind == kind && a.Callback == callback && (instance == 0 || a.Instance == instance) {
			return a
		}
	}
	return nil
}

func TestFigure5LifecycleHB(t *testing.T) {
	reg, g := pipeline(t, corpus.SudokuTimerApp())
	lc := func(cb string, inst int) int {
		a := action(reg, actions.KindLifecycle, cb, inst)
		if a == nil {
			t.Fatalf("missing lifecycle action %s#%d", cb, inst)
		}
		return a.ID
	}
	mustHB := func(a, b int, desc string) {
		t.Helper()
		if !g.HB(a, b) {
			t.Errorf("%s: edge missing", desc)
		}
		if g.HB(b, a) {
			t.Errorf("%s: reverse edge must be absent", desc)
		}
	}
	// The four relations called out in Fig 5.
	mustHB(lc(frontend.OnStart, 1), lc(frontend.OnStop, 1), `onStart "1" ≺ onStop`)
	mustHB(lc(frontend.OnResume, 1), lc(frontend.OnPause, 1), `onResume "1" ≺ onPause`)
	mustHB(lc(frontend.OnPause, 1), lc(frontend.OnResume, 2), `onPause ≺ onResume "2"`)
	mustHB(lc(frontend.OnStop, 1), lc(frontend.OnStart, 2), `onStop ≺ onStart "2"`)
	// Plus the endpoints.
	mustHB(lc(frontend.OnCreate, 1), lc(frontend.OnDestroy, 1), "onCreate ≺ onDestroy")
	// onResume "2" and onStop are genuinely unorderable by dominance.
	if g.HB(lc(frontend.OnResume, 2), lc(frontend.OnStop, 1)) {
		t.Error(`onResume "2" must not be ordered before onStop by dominance`)
	}
}

func TestFigure6GUIHB(t *testing.T) {
	reg, g := pipeline(t, corpus.NewsApp())
	onResume := action(reg, actions.KindLifecycle, frontend.OnResume, 1)
	onClick := action(reg, actions.KindGUI, frontend.OnClick, 0)
	onScroll := action(reg, actions.KindGUI, frontend.OnScroll, 0)
	if onClick == nil || onScroll == nil {
		t.Fatal("GUI actions missing")
	}
	if !g.HB(onResume.ID, onClick.ID) || !g.HB(onResume.ID, onScroll.ID) {
		t.Error("onResume must precede GUI actions")
	}
	if g.Ordered(onClick.ID, onScroll.ID) {
		t.Error("independent GUI actions must stay unordered")
	}
	// UI events precede teardown (the §6.4 filter).
	onStop := action(reg, actions.KindLifecycle, frontend.OnStop, 1)
	if !g.HB(onClick.ID, onStop.ID) {
		t.Error("onClick ≺ onStop missing (stopped activities receive no UI events)")
	}
	if g.HB(onStop.ID, onClick.ID) {
		t.Error("cycle: onStop ≺ onClick must be absent")
	}
}

func TestNewsAppSpawnChainOrdered(t *testing.T) {
	reg, g := pipeline(t, corpus.NewsApp())
	onClick := action(reg, actions.KindGUI, frontend.OnClick, 0)
	onScroll := action(reg, actions.KindGUI, frontend.OnScroll, 0)
	bg := action(reg, actions.KindAsyncBackground, frontend.DoInBackground, 0)
	post := action(reg, actions.KindAsyncPost, frontend.OnPostExecute, 0)

	if !g.HB(onClick.ID, bg.ID) || !g.HB(bg.ID, post.ID) || !g.HB(onClick.ID, post.ID) {
		t.Error("onClick ≺ doInBackground ≺ onPostExecute chain broken")
	}
	// The Fig 1 race pairs stay unordered.
	if g.Ordered(bg.ID, onScroll.ID) {
		t.Error("doInBackground vs onScroll must be unordered (the Fig 1 race)")
	}
	if g.Ordered(post.ID, onScroll.ID) {
		t.Error("onPostExecute vs onScroll must be unordered")
	}
}

func TestSudokuRunnableUnorderedWithPause(t *testing.T) {
	reg, g := pipeline(t, corpus.SudokuTimerApp())
	onResume := action(reg, actions.KindLifecycle, frontend.OnResume, 1)
	onPause := action(reg, actions.KindLifecycle, frontend.OnPause, 1)
	run := action(reg, actions.KindRunnable, frontend.Run, 0)
	if run == nil {
		t.Fatal("runnable action missing")
	}
	if !g.HB(onResume.ID, run.ID) {
		t.Error("onResume ≺ run missing (post edge)")
	}
	if g.Ordered(run.ID, onPause.ID) {
		t.Error("run vs onPause must be unordered (the Fig 8 candidate)")
	}
}

// rule4App posts two runnables back to back in onCreate.
func rule4App() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	for _, name := range []string{"R1", "R2"} {
		c := ir.NewClass(name, frontend.Object, frontend.RunnableIface)
		b := ir.NewMethodBuilder(frontend.Run)
		b.Ret("")
		c.AddMethod(b.Build())
		p.AddClass(c)
	}
	act := ir.NewClass("A", frontend.ActivityClass)
	b := ir.NewMethodBuilder(frontend.OnCreate)
	b.Int("id", 1)
	b.Call("v", "this", "A", frontend.FindViewByID, "id")
	b.NewObj("r1", "R1")
	b.Call("", "v", frontend.ViewClass, frontend.Post, "r1")
	b.NewObj("r2", "R2")
	b.Call("", "v", frontend.ViewClass, frontend.Post, "r2")
	b.Ret("")
	act.AddMethod(b.Build())
	p.AddClass(act)
	p.Finalize()
	return &apk.App{
		Name: "rule4", Program: p,
		Manifest: apk.Manifest{Activities: []apk.Component{{Class: "A", Layout: "l"}}},
		Layouts: map[string]*apk.Layout{"l": {Name: "l",
			Root: &apk.View{ID: 1, Type: frontend.ViewClass}}},
	}
}

func TestRule4IntraProcDomination(t *testing.T) {
	reg, g := pipeline(t, rule4App())
	var r1, r2 *actions.Action
	for _, a := range reg.Actions() {
		if a.Kind == actions.KindRunnable {
			switch a.Class {
			case "R1":
				r1 = a
			case "R2":
				r2 = a
			}
		}
	}
	if r1 == nil || r2 == nil {
		t.Fatal("runnable actions missing")
	}
	if !g.HB(r1.ID, r2.ID) {
		t.Error("rule 4: first-posted runnable must precede second")
	}
	if g.HB(r2.ID, r1.ID) {
		t.Error("rule 4 reverse edge must be absent")
	}
	if g.RuleCount(RuleIntraProc) == 0 {
		t.Error("intra-proc rule contributed no edges")
	}
}

// rule5App posts R1 from helperA and R2 from helperB, where onCreate
// calls helperA then helperB sequentially.
func rule5App() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	for _, name := range []string{"R1", "R2"} {
		c := ir.NewClass(name, frontend.Object, frontend.RunnableIface)
		b := ir.NewMethodBuilder(frontend.Run)
		b.Ret("")
		c.AddMethod(b.Build())
		p.AddClass(c)
	}
	act := ir.NewClass("A", frontend.ActivityClass)
	ha := ir.NewMethodBuilder("helperA", "v")
	ha.NewObj("r1", "R1")
	ha.Call("", "v", frontend.ViewClass, frontend.Post, "r1")
	ha.Ret("")
	act.AddMethod(ha.Build())
	hb := ir.NewMethodBuilder("helperB", "v")
	hb.NewObj("r2", "R2")
	hb.Call("", "v", frontend.ViewClass, frontend.Post, "r2")
	hb.Ret("")
	act.AddMethod(hb.Build())
	b := ir.NewMethodBuilder(frontend.OnCreate)
	b.Int("id", 1)
	b.Call("v", "this", "A", frontend.FindViewByID, "id")
	b.Call("", "this", "A", "helperA", "v")
	b.Call("", "this", "A", "helperB", "v")
	b.Ret("")
	act.AddMethod(b.Build())
	p.AddClass(act)
	p.Finalize()
	return &apk.App{
		Name: "rule5", Program: p,
		Manifest: apk.Manifest{Activities: []apk.Component{{Class: "A", Layout: "l"}}},
		Layouts: map[string]*apk.Layout{"l": {Name: "l",
			Root: &apk.View{ID: 1, Type: frontend.ViewClass}}},
	}
}

func TestRule5InterProcDomination(t *testing.T) {
	reg, g := pipeline(t, rule5App())
	var r1, r2 *actions.Action
	for _, a := range reg.Actions() {
		if a.Kind == actions.KindRunnable {
			switch a.Class {
			case "R1":
				r1 = a
			case "R2":
				r2 = a
			}
		}
	}
	if r1 == nil || r2 == nil {
		t.Fatal("runnable actions missing")
	}
	if !g.HB(r1.ID, r2.ID) {
		t.Error("rule 5: helperA's post must precede helperB's post")
	}
	if g.HB(r2.ID, r1.ID) {
		t.Error("rule 5 reverse edge must be absent")
	}
	if g.RuleCount(RuleInterProc) == 0 {
		t.Error("inter-proc rule contributed no edges")
	}
}

// rule6App posts R1 from onCreate and R2 from onClick; onCreate ≺
// onClick via the harness, so R1 ≺ R2 by inter-action transitivity.
func rule6App() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	for _, name := range []string{"R1", "R2"} {
		c := ir.NewClass(name, frontend.Object, frontend.RunnableIface)
		b := ir.NewMethodBuilder(frontend.Run)
		b.Ret("")
		c.AddMethod(b.Build())
		p.AddClass(c)
	}
	act := ir.NewClass("A", frontend.ActivityClass, frontend.OnClickListener)
	b := ir.NewMethodBuilder(frontend.OnCreate)
	b.Int("id", 1)
	b.Call("v", "this", "A", frontend.FindViewByID, "id")
	b.Call("", "v", frontend.ViewClass, frontend.SetOnClickListener, "this")
	b.NewObj("r1", "R1")
	b.Call("", "v", frontend.ViewClass, frontend.Post, "r1")
	b.Ret("")
	act.AddMethod(b.Build())
	cb := ir.NewMethodBuilder(frontend.OnClick, "view")
	cb.Int("id", 1)
	cb.Call("v", "this", "A", frontend.FindViewByID, "id")
	cb.NewObj("r2", "R2")
	cb.Call("", "v", frontend.ViewClass, frontend.Post, "r2")
	cb.Ret("")
	act.AddMethod(cb.Build())
	p.AddClass(act)
	p.Finalize()
	return &apk.App{
		Name: "rule6", Program: p,
		Manifest: apk.Manifest{Activities: []apk.Component{{Class: "A", Layout: "l"}}},
		Layouts: map[string]*apk.Layout{"l": {Name: "l",
			Root: &apk.View{ID: 1, Type: frontend.ViewClass}}},
	}
}

func TestFigure7InterActionTransitivity(t *testing.T) {
	reg, g := pipeline(t, rule6App())
	var r1, r2 *actions.Action
	for _, a := range reg.Actions() {
		if a.Kind == actions.KindRunnable {
			switch a.Class {
			case "R1":
				r1 = a
			case "R2":
				r2 = a
			}
		}
	}
	if r1 == nil || r2 == nil {
		t.Fatal("runnable actions missing")
	}
	if !g.HB(r1.ID, r2.ID) {
		t.Error("Fig 7: onCreate's post must precede onClick's post")
	}
	if g.RuleCount(RuleInterAction) == 0 {
		t.Error("inter-action rule contributed no edges")
	}
}

func TestAblationDisableRules(t *testing.T) {
	app := rule6App()
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	full := Build(reg, res, Options{})
	crippled := Build(reg, res, Options{Disable: map[Rule]bool{RuleInterAction: true}})
	if crippled.NumEdges() >= full.NumEdges() {
		t.Errorf("disabling inter-action must lose edges: %d vs %d",
			crippled.NumEdges(), full.NumEdges())
	}
	if crippled.RuleCount(RuleInterAction) != 0 {
		t.Error("disabled rule still contributed edges")
	}
}

func TestGraphStatsSanity(t *testing.T) {
	_, g := pipeline(t, corpus.NewsApp())
	if g.NumActions() < 10 {
		t.Errorf("actions = %d, want >= 10", g.NumActions())
	}
	frac := g.OrderedFraction()
	if frac <= 0 || frac > 1.0 {
		t.Errorf("ordered fraction = %f out of range", frac)
	}
	// No self-edges and antisymmetry (the harness model is acyclic).
	for a := 0; a < g.NumActions(); a++ {
		if g.HB(a, a) {
			t.Errorf("self edge on %d", a)
		}
		for b := 0; b < g.NumActions(); b++ {
			if g.HB(a, b) && g.HB(b, a) {
				t.Errorf("HB cycle between %d and %d", a, b)
			}
		}
	}
}

// multiSpawnApp posts the same runnable class from two independent
// lifecycle callbacks (two distinct sites share the action only when the
// site matches, so craft one site reached by both onStart and onResume
// via a helper).
func multiSpawnApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	r := ir.NewClass("R", frontend.Object, frontend.RunnableIface)
	rb := ir.NewMethodBuilder(frontend.Run)
	rb.Ret("")
	r.AddMethod(rb.Build())
	p.AddClass(r)

	act := ir.NewClass("A", frontend.ActivityClass)
	act.Fields = []string{"r", "v"}
	oc := ir.NewMethodBuilder(frontend.OnCreate)
	oc.Int("id", 1)
	oc.Call("v", "this", "A", frontend.FindViewByID, "id")
	oc.Store("this", "v", "v")
	oc.NewObj("r", "R")
	oc.Store("this", "r", "r")
	oc.Ret("")
	act.AddMethod(oc.Build())
	// Shared posting helper called from both onStart and onResume: the
	// runnable action gets two distinct spawner actions through ONE site.
	kick := ir.NewMethodBuilder("kick")
	kick.Load("v", "this", "v")
	kick.Load("r", "this", "r")
	kick.Call("", "v", frontend.ViewClass, frontend.Post, "r")
	kick.Ret("")
	act.AddMethod(kick.Build())
	os := ir.NewMethodBuilder(frontend.OnStart)
	os.Call("", "this", "A", "kick")
	os.Ret("")
	act.AddMethod(os.Build())
	orm := ir.NewMethodBuilder(frontend.OnResume)
	orm.Call("", "this", "A", "kick")
	orm.Ret("")
	act.AddMethod(orm.Build())
	p.AddClass(act)
	p.Finalize()
	return &apk.App{
		Name: "multispawn", Program: p,
		Manifest: apk.Manifest{Activities: []apk.Component{{Class: "A", Layout: "l"}}},
		Layouts: map[string]*apk.Layout{"l": {Name: "l",
			Root: &apk.View{ID: 1, Type: frontend.ViewClass}}},
	}
}

func TestMultiSpawnIntersectionRule(t *testing.T) {
	reg, g := pipeline(t, multiSpawnApp())
	var run *actions.Action
	for _, a := range reg.Actions() {
		if a.Kind == actions.KindRunnable {
			run = a
		}
	}
	if run == nil {
		t.Fatal("runnable action missing")
	}
	spawners := map[int]bool{}
	for _, s := range run.Spawns {
		spawners[s.From] = true
	}
	if len(spawners) < 2 {
		t.Fatalf("expected multiple spawners, got %v", run.Spawns)
	}
	onCreate := action(reg, actions.KindLifecycle, frontend.OnCreate, 1)
	onStart1 := action(reg, actions.KindLifecycle, frontend.OnStart, 1)
	onResume2 := action(reg, actions.KindLifecycle, frontend.OnResume, 2)
	// onCreate precedes every spawner (onStart#1/2, onResume#1/2) → the
	// intersection rule orders it before the conflated runnable.
	if !g.HB(onCreate.ID, run.ID) {
		t.Error("onCreate should precede the multi-spawned runnable (intersection rule)")
	}
	// onStart#1 does NOT precede all spawners (a post can come from
	// onStart#2's pass after a restart... via onResume#2 whose spawner
	// set includes onStart instances unordered with onStart#1's pass) —
	// crucially the runnable must NOT be ordered after actions that only
	// precede SOME spawners.
	if g.HB(onResume2.ID, run.ID) {
		t.Error("onResume#2 precedes only some spawners; edge must be absent")
	}
	_ = onStart1
}

func TestGUITeardownOptionIsolation(t *testing.T) {
	app := corpus.NewsApp()
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	full := Build(reg, res, Options{})
	sound := Build(reg, res, Options{DisableGUITeardownOrder: true})

	onClick := action(reg, actions.KindGUI, frontend.OnClick, 0)
	onStop := action(reg, actions.KindLifecycle, frontend.OnStop, 1)
	if !full.HB(onClick.ID, onStop.ID) {
		t.Error("full graph should order onClick ≺ onStop (§6.4 filter)")
	}
	if sound.HB(onClick.ID, onStop.ID) {
		t.Error("instance-sound graph must not order onClick ≺ onStop")
	}
	if sound.NumEdges() >= full.NumEdges() {
		t.Errorf("teardown edges not isolated: %d vs %d", sound.NumEdges(), full.NumEdges())
	}
	// Everything else is unaffected: lifecycle order intact.
	onCreate := action(reg, actions.KindLifecycle, frontend.OnCreate, 1)
	if !sound.HB(onCreate.ID, onStop.ID) {
		t.Error("lifecycle order lost in sound graph")
	}
}
