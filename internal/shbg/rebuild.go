package shbg

import (
	"sierra/internal/actions"
	"sierra/internal/bitset"
	"sierra/internal/obs"
	"sierra/internal/pointer"
)

// Rebuild attempts to prove a previously-built graph still describes
// the (in-place patched) program after an incremental re-solve, given
// the set of dirty actions — those whose callee closure reaches a
// changed method.
//
// Removing rows from a transitively-closed relation is not sound (a
// clean row may hold closure contributions that flowed through a dirty
// row), so Rebuild does not patch prev in place. Instead it re-derives
// the *direct* (pre-closure) edges whose derivation could have read
// changed state, and compares them against prev's recorded base
// sequence:
//
//   - a scratch graph replays prev's clean base edges (neither endpoint
//     dirty, and for the domination rules 4/5, neither spawner dirty —
//     their derivations read the spawner's method bodies);
//   - the pre-closure rules 1–5 re-run restricted to dirty pairs, in
//     Build's exact order, so mid-build guards (the rule-3 cycle guard,
//     rule 5's already-ordered skip) see the same per-pair state a cold
//     build would (clean replay cannot place an edge on a dirty pair:
//     the replay predicate and the recompute predicate are the same,
//     per rule);
//   - the recomputed dirty base set is compared, as a set of
//     (a, b, rule) triples, against prev's dirty base records, and the
//     closure-round inputs that bypass the base set — the rule-6 and
//     multi-spawn candidate lists, both functions of the registry's
//     spawn structure — are compared outright.
//
// Equal means every direct edge (and every closure input) of a cold
// build is identical to prev's, hence so is the closed relation and
// every per-rule tally: prev is returned for reuse, byte-for-byte the
// graph a cold build would produce. Any difference means the caller's
// edit gate let real HB change through; Rebuild returns (nil, false)
// and the caller must fall back to a full pipeline — it never guesses
// at a patched closure.
//
// opts must carry the same rule ablation the baseline was built with.
// tr receives shbg.rows_patched (dirty rows re-derived) on success.
func Rebuild(prev *Graph, reg *actions.Registry, res *pointer.Result, opts Options, dirty map[int]bool, tr *obs.Trace) (*Graph, bool) {
	if prev == nil || prev.Interrupted || prev.Reg != reg || prev.n != reg.NumActions() {
		return nil, false
	}
	if prev.base == nil && (prev.ruleCounts[RuleInvocation]+prev.ruleCounts[RuleLifecycle]+
		prev.ruleCounts[RuleGUI]+prev.ruleCounts[RuleIntraProc]+prev.ruleCounts[RuleInterProc]) > 0 {
		return nil, false // no base record to compare against
	}

	// The closure rounds consume the candidate lists, not the program:
	// if the registry's spawn structure drifted, the rounds' output can
	// change without any base-edge difference. Re-derive and compare.
	var iaCands []iaCand
	var msCands []msCand
	for _, a := range reg.Actions() {
		if sp, ok := singleSpawn(a); ok && sp.From >= 0 &&
			sp.Posted && !sp.Delayed && a.Looper != actions.LooperNone {
			iaCands = append(iaCands, iaCand{id: a.ID, from: sp.From, looper: a.Looper})
		}
		if spawners := externalSpawners(a); len(spawners) >= 2 {
			msCands = append(msCands, msCand{id: a.ID, spawners: spawners})
		}
	}
	if !sameIACands(prev.iaCands, iaCands) || !sameMSCands(prev.msCands, msCands) {
		return nil, false
	}

	scratch := &Graph{Reg: reg, n: prev.n, restrict: dirty}
	scratch.hb = make([]bitset.Set, scratch.n)
	scratch.rev = make([]bitset.Set, scratch.n)
	scratch.inWork = make([]bool, scratch.n)
	for _, e := range prev.base {
		if edgeDirty(reg, dirty, e) {
			continue
		}
		scratch.addEdge(e.a, e.b, e.rule)
	}
	scratch.recording = true
	disabled := func(r Rule) bool { return opts.Disable != nil && opts.Disable[r] }
	if !disabled(RuleInvocation) {
		scratch.ruleInvocation()
	}
	if !disabled(RuleLifecycle) || !disabled(RuleGUI) {
		scratch.ruleHarnessDominance(disabled(RuleLifecycle), disabled(RuleGUI), opts.DisableGUITeardownOrder)
	}
	if !disabled(RuleIntraProc) {
		scratch.ruleIntraProc()
	}
	if !disabled(RuleInterProc) {
		scratch.ruleInterProc(res)
	}
	scratch.recording = false

	// Compare dirty base sets. Each side records an (a, b) pair at most
	// once (addEdge dedups), so set semantics suffice.
	want := make(map[baseEdge]bool)
	for _, e := range prev.base {
		if edgeDirty(reg, dirty, e) {
			want[e] = true
		}
	}
	got := 0
	for _, e := range scratch.base {
		if !want[e] {
			return nil, false // new or re-attributed dirty edge
		}
		got++
	}
	if got != len(want) {
		return nil, false // a dirty edge disappeared
	}

	if tr != nil {
		tr.Count("shbg.rows_patched", int64(len(dirty)))
	}
	return prev, true
}

// edgeDirty applies, per rule, the same predicate the restricted
// re-derivation uses — the two must match exactly or the replay and the
// recompute could both place (or both miss) an edge.
func edgeDirty(reg *actions.Registry, dirty map[int]bool, e baseEdge) bool {
	if dirty[e.a] || dirty[e.b] {
		return true
	}
	if e.rule != RuleIntraProc && e.rule != RuleInterProc {
		return false
	}
	// Domination rules: a dirty spawner dirties the edge.
	for _, id := range [2]int{e.a, e.b} {
		if sp, ok := singleSpawn(reg.Get(id)); ok && sp.From >= 0 && dirty[sp.From] {
			return true
		}
	}
	return false
}

func sameIACands(a, b []iaCand) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameMSCands(a, b []msCand) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].id != b[i].id || len(a[i].spawners) != len(b[i].spawners) {
			return false
		}
		for j := range a[i].spawners {
			if a[i].spawners[j] != b[i].spawners[j] {
				return false
			}
		}
	}
	return true
}

// ApproxBytes estimates the graph's resident memory (bitset rows plus
// the base-edge record) for the serve baseline pool's byte budget.
func (g *Graph) ApproxBytes() int64 {
	var b int64
	for i := 0; i < g.n; i++ {
		b += int64(g.hb[i].Words()+g.rev[i].Words()) * 8
	}
	b += int64(len(g.base)) * 24
	b += int64(g.n) * 56 // row headers + worklist bookkeeping
	return b
}
