package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond: 0 -> 1, 2; 1 -> 3; 2 -> 3
func diamond() Graph { return NewGraph([][]int{{1, 2}, {3}, {3}, {}}) }

func TestDominatorsDiamond(t *testing.T) {
	d := Dominators(diamond(), 0)
	if d.IDom(1) != 0 || d.IDom(2) != 0 || d.IDom(3) != 0 {
		t.Fatalf("idoms = %d %d %d, want all 0", d.IDom(1), d.IDom(2), d.IDom(3))
	}
	if !d.Dominates(0, 3) {
		t.Error("0 should dominate 3")
	}
	if d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("neither branch arm dominates the join")
	}
	if !d.Dominates(3, 3) {
		t.Error("dominance is reflexive")
	}
	if d.StrictlyDominates(3, 3) {
		t.Error("strict dominance is irreflexive")
	}
}

func TestDominatorsChainAndLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 3; 3 -> 1 (loop); 2 -> 4 (exit)
	g := NewGraph([][]int{{1}, {2}, {3, 4}, {1}, {}})
	d := Dominators(g, 0)
	want := []int{-1, 0, 1, 2, 2}
	for n, w := range want {
		if d.IDom(n) != w {
			t.Errorf("IDom(%d) = %d, want %d", n, d.IDom(n), w)
		}
	}
	if !d.Dominates(1, 4) || !d.Dominates(2, 3) {
		t.Error("chain dominance broken")
	}
}

func TestDominatorsIrreducible(t *testing.T) {
	// Irreducible: 0 -> 1, 2; 1 -> 2; 2 -> 1. Only 0 dominates 1 and 2.
	g := NewGraph([][]int{{1, 2}, {2}, {1}})
	d := Dominators(g, 0)
	if d.IDom(1) != 0 || d.IDom(2) != 0 {
		t.Fatalf("irreducible idoms = %d %d, want 0 0", d.IDom(1), d.IDom(2))
	}
	if d.Dominates(1, 2) || d.Dominates(2, 1) {
		t.Error("mutual loop nodes must not dominate each other")
	}
}

func TestUnreachableNodes(t *testing.T) {
	g := NewGraph([][]int{{1}, {}, {1}}) // 2 unreachable from 0
	d := Dominators(g, 0)
	if d.Reachable(2) {
		t.Error("2 should be unreachable")
	}
	if d.Dominates(2, 1) || d.Dominates(0, 2) {
		t.Error("unreachable nodes neither dominate nor are dominated")
	}
	r := Reachable(g, 0)
	if !r[0] || !r[1] || r[2] {
		t.Errorf("Reachable = %v", r)
	}
}

func TestReachableWithout(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 2 -> 3: removing 1 leaves 3 reachable via 2.
	g := diamond()
	if !ReachableWithout(g, 0, 1, 3) {
		t.Error("3 should be reachable without 1 (via 2)")
	}
	// chain 0 -> 1 -> 2: removing 1 cuts 2 off.
	chain := NewGraph([][]int{{1}, {2}, {}})
	if ReachableWithout(chain, 0, 1, 2) {
		t.Error("2 must be unreachable without 1")
	}
	if !ReachableWithout(chain, 0, 2, 1) {
		t.Error("1 remains reachable without 2")
	}
	if ReachableWithout(chain, 0, 0, 2) {
		t.Error("removing the root cuts everything")
	}
	if !ReachableWithout(chain, 0, 1, 0) {
		t.Error("root reaches itself regardless")
	}
}

func TestPostDominators(t *testing.T) {
	// 0 -> 1, 2; 1 -> 3; 2 -> 3; 3 is the exit: 3 post-dominates all.
	d := PostDominators(diamond(), 3)
	for n := 0; n < 3; n++ {
		if !d.Dominates(3, n) {
			t.Errorf("3 should post-dominate %d", n)
		}
	}
	if d.Dominates(1, 0) {
		t.Error("1 must not post-dominate 0")
	}
}

func TestWithVirtualExit(t *testing.T) {
	// Two exits 1 and 2: 0 -> 1; 0 -> 2.
	g := NewGraph([][]int{{1, 2}, {}, {}})
	gx, exit := WithVirtualExit(g, []int{1, 2})
	if exit != 3 || gx.NumNodes() != 4 {
		t.Fatalf("exit = %d nodes = %d", exit, gx.NumNodes())
	}
	d := PostDominators(gx, exit)
	if !d.Dominates(exit, 0) {
		t.Error("virtual exit should post-dominate entry")
	}
	if d.Dominates(1, 0) || d.Dominates(2, 0) {
		t.Error("neither real exit post-dominates entry")
	}
}

// randomGraph builds a connected-ish random digraph for property tests.
func randomGraph(r *rand.Rand, n int) Graph {
	adj := make([][]int, n)
	for u := 1; u < n; u++ {
		// Guarantee reachability with a random back-pointing tree edge,
		// then add extras.
		p := r.Intn(u)
		adj[p] = append(adj[p], u)
	}
	extra := r.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		adj[u] = append(adj[u], v)
	}
	return NewGraph(adj)
}

// dominatesBySimulation checks "a dom b" by brute force: b unreachable
// when a removed (a != b), per the classical definition.
func dominatesBySimulation(g Graph, root, a, b int) bool {
	if !Reachable(g, root)[b] || !Reachable(g, root)[a] {
		return false
	}
	if a == b {
		return true
	}
	if b == root {
		return false
	}
	return !ReachableWithout(g, root, a, b)
}

func TestDominatorsMatchSimulationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(14)
		g := randomGraph(rr, n)
		d := Dominators(g, 0)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := dominatesBySimulation(g, 0, a, b)
				if got := d.Dominates(a, b); got != want {
					t.Logf("n=%d a=%d b=%d got=%t want=%t", n, a, b, got, want)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDominatorTreeIsATreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(20)
		g := randomGraph(rr, n)
		d := Dominators(g, 0)
		for u := 0; u < n; u++ {
			if !d.Reachable(u) {
				continue
			}
			// Walking idom links terminates at the root without cycles.
			steps := 0
			for v := u; v != 0; v = d.IDom(v) {
				if steps++; steps > n {
					return false
				}
				if v < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
