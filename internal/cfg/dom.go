// Package cfg provides control-flow-graph analyses: dominator trees,
// reachability (including reachability with a node removed, which HB rule
// 5 needs), and an interprocedural CFG over IR statements.
//
// It is the substitute for the CFG/ICFG layer the paper gets from WALA.
package cfg

// Graph is a digraph over dense node ids 0..NumNodes()-1.
type Graph interface {
	NumNodes() int
	Succs(n int) []int
}

// sliceGraph adapts adjacency lists to Graph.
type sliceGraph [][]int

func (g sliceGraph) NumNodes() int     { return len(g) }
func (g sliceGraph) Succs(n int) []int { return g[n] }

// NewGraph wraps adjacency lists as a Graph.
func NewGraph(adj [][]int) Graph { return sliceGraph(adj) }

// DomTree is a dominator tree: IDom(n) is n's immediate dominator, -1 for
// the root and for unreachable nodes.
type DomTree struct {
	root int
	idom []int
	// depth[n] is the distance from the root along idom links; -1 when
	// unreachable. Used to answer Dominates in O(depth).
	depth []int
}

// Dominators computes the dominator tree of g rooted at root using the
// Cooper–Harvey–Kennedy iterative algorithm. Nodes unreachable from root
// get IDom -1 and dominate nothing.
func Dominators(g Graph, root int) *DomTree {
	n := g.NumNodes()
	// Reverse post-order numbering via iterative DFS.
	order := make([]int, 0, n) // nodes in post-order
	number := make([]int, n)   // post-order index, -1 if unreachable
	for i := range number {
		number[i] = -1
	}
	type frame struct {
		node int
		next int
	}
	visited := make([]bool, n)
	stack := []frame{{root, 0}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.Succs(f.node)
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		number[f.node] = len(order)
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}

	// Predecessors restricted to reachable nodes.
	preds := make([][]int, n)
	for u := 0; u < n; u++ {
		if number[u] < 0 {
			continue
		}
		for _, v := range g.Succs(u) {
			if number[v] >= 0 {
				preds[v] = append(preds[v], u)
			}
		}
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root

	intersect := func(a, b int) int {
		for a != b {
			for number[a] < number[b] {
				a = idom[a]
			}
			for number[b] < number[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		// Iterate in reverse post-order (skip the root).
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == root {
				continue
			}
			var newIdom = -1
			for _, p := range preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[root] = -1

	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[root] = 0
	// order is post-order; walking it backwards visits parents before
	// children in the dominator tree is NOT guaranteed, so fix point.
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			if u == root || idom[u] < 0 {
				continue
			}
			if depth[idom[u]] >= 0 && depth[u] != depth[idom[u]]+1 {
				depth[u] = depth[idom[u]] + 1
				changed = true
			}
		}
	}

	return &DomTree{root: root, idom: idom, depth: depth}
}

// IDom returns n's immediate dominator (-1 for the root or unreachable
// nodes).
func (d *DomTree) IDom(n int) int { return d.idom[n] }

// Reachable reports whether n was reachable from the root.
func (d *DomTree) Reachable(n int) bool { return n == d.root || d.idom[n] >= 0 }

// Dominates reports whether a dominates b (reflexively). Unreachable
// nodes dominate nothing and are dominated by nothing.
func (d *DomTree) Dominates(a, b int) bool {
	if !d.Reachable(a) || !d.Reachable(b) {
		return false
	}
	for b != -1 && d.depth[b] >= d.depth[a] {
		if b == a {
			return true
		}
		b = d.idom[b]
	}
	return false
}

// StrictlyDominates reports a ≠ b ∧ a dom b.
func (d *DomTree) StrictlyDominates(a, b int) bool {
	return a != b && d.Dominates(a, b)
}

// Reachable returns the set of nodes reachable from root in g.
func Reachable(g Graph, root int) []bool {
	seen := make([]bool, g.NumNodes())
	stack := []int{root}
	seen[root] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// ReachableWithout reports whether target is reachable from root when node
// removed is deleted from the graph (its in- and out-edges vanish). This
// is the de-facto-dominance test of HB rule 5: if removing e1 makes e2
// unreachable, e1 dominates e2 in practice.
func ReachableWithout(g Graph, root, removed, target int) bool {
	if root == removed {
		return false
	}
	if root == target {
		return true
	}
	seen := make([]bool, g.NumNodes())
	seen[root] = true
	seen[removed] = true // never enter it
	stack := []int{root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs(u) {
			if v == target {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// reverse builds the reversed graph of g.
func reverse(g Graph) Graph {
	n := g.NumNodes()
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Succs(u) {
			adj[v] = append(adj[v], u)
		}
	}
	return sliceGraph(adj)
}

// PostDominators computes the post-dominator tree of g with respect to a
// single exit node. Callers with multiple exits should add a virtual exit
// first (see WithVirtualExit).
func PostDominators(g Graph, exit int) *DomTree {
	return Dominators(reverse(g), exit)
}

// WithVirtualExit returns a copy of g plus one extra node (the new exit)
// that every node in exits points to, and the id of that node.
func WithVirtualExit(g Graph, exits []int) (Graph, int) {
	n := g.NumNodes()
	adj := make([][]int, n+1)
	for u := 0; u < n; u++ {
		adj[u] = append([]int(nil), g.Succs(u)...)
	}
	for _, e := range exits {
		adj[e] = append(adj[e], n)
	}
	return sliceGraph(adj), n
}
