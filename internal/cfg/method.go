package cfg

import "sierra/internal/ir"

// MethodGraph adapts a method's basic blocks to the Graph interface.
// Node ids are block indices; block 0 is the entry.
type MethodGraph struct{ M *ir.Method }

// NumNodes returns the block count.
func (g MethodGraph) NumNodes() int { return len(g.M.Blocks) }

// Succs returns the successor block indices of block n.
func (g MethodGraph) Succs(n int) []int { return g.M.Blocks[n].Succs }

// MethodDominators computes the block dominator tree of m.
func MethodDominators(m *ir.Method) *DomTree {
	return Dominators(MethodGraph{m}, 0)
}

// StmtDominates reports whether statement a dominates statement b inside
// one method: either a's block strictly dominates b's, or they share a
// block and a comes first. Positions in different methods never dominate
// (use the ICFG for that).
func StmtDominates(dom *DomTree, a, b ir.Pos) bool {
	if a.Method != b.Method {
		return false
	}
	if a.Block == b.Block {
		return a.Index < b.Index
	}
	return dom.StrictlyDominates(a.Block, b.Block)
}
