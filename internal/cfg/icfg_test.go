package cfg

import (
	"testing"

	"sierra/internal/ir"
)

// buildCallPair builds:
//
//	class C {
//	  caller() { this.helper1(); this.helper2(); }   // e1 dominates e2
//	  helper1() { this.x = 1 }
//	  helper2() { y = this.x }
//	  brancher() { if * { this.helper1() } else { this.helper2() } }
//	}
func buildCallPair(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	c := ir.NewClass("C", "")
	c.Fields = []string{"x"}

	cb := ir.NewMethodBuilder("caller")
	cb.Call("", "this", "C", "helper1")
	cb.Call("", "this", "C", "helper2")
	cb.Ret("")
	c.AddMethod(cb.Build())

	h1 := ir.NewMethodBuilder("helper1")
	h1.Int("one", 1).Store("this", "x", "one")
	h1.Ret("")
	c.AddMethod(h1.Build())

	h2 := ir.NewMethodBuilder("helper2")
	h2.Load("y", "this", "x")
	h2.Ret("")
	c.AddMethod(h2.Build())

	br := ir.NewMethodBuilder("brancher")
	then, els := br.IfStar()
	br.SetBlock(then)
	br.Call("", "this", "C", "helper1")
	br.Ret("")
	br.SetBlock(els)
	br.Call("", "this", "C", "helper2")
	br.Ret("")
	c.AddMethod(br.Build())

	p.AddClass(c)
	p.Finalize()
	return p
}

func resolver(p *ir.Program) func(ir.Pos) []*ir.Method {
	return func(pos ir.Pos) []*ir.Method {
		inv := pos.Stmt().(*ir.Invoke)
		if m := p.ResolveMethod(inv.Class, inv.Method); m != nil {
			return []*ir.Method{m}
		}
		return nil
	}
}

func stmtAt(m *ir.Method, block, idx int) ir.Pos {
	return ir.Pos{Method: m, Block: block, Index: idx}
}

func TestICFGReachesIntoCallees(t *testing.T) {
	p := buildCallPair(t)
	g := NewICFG(resolver(p))
	c := p.Class("C")
	caller := c.Methods["caller"]
	store := stmtAt(c.Methods["helper1"], 0, 1) // this.x = one
	load := stmtAt(c.Methods["helper2"], 0, 0)  // y = this.x
	if !g.Reaches(caller, store) {
		t.Error("caller should reach the store inside helper1")
	}
	if !g.Reaches(caller, load) {
		t.Error("caller should reach the load inside helper2")
	}
	if !g.Reaches(caller, stmtAt(caller, 0, 1)) {
		t.Error("caller should reach its own second call site")
	}
}

func TestICFGReachesWithoutExpressesDeFactoDominance(t *testing.T) {
	p := buildCallPair(t)
	g := NewICFG(resolver(p))
	c := p.Class("C")
	caller := c.Methods["caller"]
	e1 := stmtAt(caller, 0, 0) // call helper1
	e2 := stmtAt(caller, 0, 1) // call helper2

	// Sequential calls: removing e1 cuts off e2 → e1 de-facto dominates e2.
	if g.ReachesWithout(caller, e1, e2) {
		t.Error("e2 should be unreachable without e1 (sequential calls)")
	}
	// But not vice versa.
	if !g.ReachesWithout(caller, e2, e1) {
		t.Error("e1 stays reachable without e2")
	}

	// Branching calls: neither dominates.
	br := c.Methods["brancher"]
	var b1, b2 ir.Pos
	for bi, blk := range br.Blocks {
		for si, s := range blk.Stmts {
			if inv, ok := s.(*ir.Invoke); ok {
				if inv.Method == "helper1" {
					b1 = stmtAt(br, bi, si)
				}
				if inv.Method == "helper2" {
					b2 = stmtAt(br, bi, si)
				}
			}
		}
	}
	if !g.ReachesWithout(br, b1, b2) || !g.ReachesWithout(br, b2, b1) {
		t.Error("branch arms must remain mutually reachable when the other is removed")
	}
}

func TestICFGReachableStmtsCoversTransitiveCalls(t *testing.T) {
	p := buildCallPair(t)
	g := NewICFG(resolver(p))
	c := p.Class("C")
	seen := g.ReachableStmts(c.Methods["caller"])
	if !seen[stmtAt(c.Methods["helper1"], 0, 1)] {
		t.Error("store in helper1 not reached")
	}
	if !seen[stmtAt(c.Methods["helper2"], 0, 0)] {
		t.Error("load in helper2 not reached")
	}
	// brancher is not called from caller.
	for pos := range seen {
		if pos.Method == c.Methods["brancher"] {
			t.Error("brancher must not be reachable from caller")
		}
	}
}

func TestEntryPosDescendsEmptyBlocks(t *testing.T) {
	b := ir.NewMethodBuilder("m")
	// Create an empty entry situation: entry block jumps to a block with
	// statements via GotoNew after emitting nothing.
	target := b.GotoNew()
	_ = target
	b.Int("x", 1)
	b.Ret("")
	m := b.Build()
	ep, ok := EntryPos(m)
	if !ok {
		t.Fatal("no entry pos")
	}
	if ep.Block != 1 || ep.Index != 0 {
		t.Fatalf("entry pos = %v, want block 1 idx 0", ep)
	}
}

func TestEntryPosEmptyMethod(t *testing.T) {
	m := &ir.Method{Name: "none"}
	if _, ok := EntryPos(m); ok {
		t.Error("body-less method should have no entry pos")
	}
	if _, ok := EntryPos(nil); ok {
		t.Error("nil method should have no entry pos")
	}
}

func TestStmtDominatesWithinMethod(t *testing.T) {
	p := buildCallPair(t)
	c := p.Class("C")
	caller := c.Methods["caller"]
	dom := MethodDominators(caller)
	e1 := stmtAt(caller, 0, 0)
	e2 := stmtAt(caller, 0, 1)
	if !StmtDominates(dom, e1, e2) {
		t.Error("e1 should dominate e2 in the same block")
	}
	if StmtDominates(dom, e2, e1) {
		t.Error("e2 must not dominate e1")
	}

	br := c.Methods["brancher"]
	brDom := MethodDominators(br)
	// The If statement dominates both arms; arms don't dominate each other.
	iff := stmtAt(br, 0, 0)
	arm1 := stmtAt(br, 1, 0)
	arm2 := stmtAt(br, 2, 0)
	if !StmtDominates(brDom, iff, arm1) || !StmtDominates(brDom, iff, arm2) {
		t.Error("If should dominate both arms")
	}
	if StmtDominates(brDom, arm1, arm2) || StmtDominates(brDom, arm2, arm1) {
		t.Error("arms must not dominate each other")
	}
	// Cross-method positions never dominate.
	if StmtDominates(dom, e1, arm1) {
		t.Error("cross-method dominance must be false")
	}
}
