package cfg

import "sierra/internal/ir"

// ICFG is a lazily-traversed interprocedural CFG over IR statements.
// Nodes are ir.Pos values. Call edges step into callee entries (resolved
// by the Callees function, typically backed by the call graph); calls
// also fall through to their intraprocedural successor, which makes
// return edges unnecessary and keeps reachability an over-approximation —
// the sound direction for HB inference (missing order, never inventing
// it).
type ICFG struct {
	// Callees resolves the possible targets of the Invoke at p. Nil or
	// empty results mean the call has no analyzable body (framework
	// no-op) and only the fall-through edge applies.
	Callees func(p ir.Pos) []*ir.Method
}

// NewICFG builds an ICFG with the given callee resolver.
func NewICFG(callees func(p ir.Pos) []*ir.Method) *ICFG {
	return &ICFG{Callees: callees}
}

// EntryPos returns the position of the first statement of m, descending
// through empty blocks. ok is false for body-less methods.
func EntryPos(m *ir.Method) (ir.Pos, bool) {
	if m == nil || len(m.Blocks) == 0 {
		return ir.Pos{}, false
	}
	ps := firstStmts(m, 0, nil)
	if len(ps) == 0 {
		return ir.Pos{}, false
	}
	return ps[0], true
}

// firstStmts returns the position(s) of the first statement(s) at or
// after block b, descending through empty blocks (cycle-guarded).
func firstStmts(m *ir.Method, b int, seen map[int]bool) []ir.Pos {
	if seen == nil {
		seen = make(map[int]bool)
	}
	if seen[b] {
		return nil
	}
	seen[b] = true
	blk := m.Blocks[b]
	if len(blk.Stmts) > 0 {
		return []ir.Pos{{Method: m, Block: b, Index: 0}}
	}
	var out []ir.Pos
	for _, s := range blk.Succs {
		out = append(out, firstStmts(m, s, seen)...)
	}
	return out
}

// intraSuccs returns the intraprocedural successors of p: the next
// statement in the block, or the first statements of successor blocks.
// Return statements have none.
func intraSuccs(p ir.Pos) []ir.Pos {
	if _, isRet := p.Stmt().(*ir.Return); isRet {
		return nil
	}
	blk := p.Method.Blocks[p.Block]
	if p.Index+1 < len(blk.Stmts) {
		return []ir.Pos{{Method: p.Method, Block: p.Block, Index: p.Index + 1}}
	}
	var out []ir.Pos
	for _, s := range blk.Succs {
		out = append(out, firstStmts(p.Method, s, nil)...)
	}
	return out
}

// Succs returns the ICFG successors of p: intraprocedural successors
// plus, for calls, the entries of all resolved callees.
func (g *ICFG) Succs(p ir.Pos) []ir.Pos {
	out := intraSuccs(p)
	if _, isCall := p.Stmt().(*ir.Invoke); isCall && g.Callees != nil {
		for _, callee := range g.Callees(p) {
			if ep, ok := EntryPos(callee); ok {
				out = append(out, ep)
			}
		}
	}
	return out
}

// Reaches reports whether target is reachable from entry (inclusive of
// entry itself).
func (g *ICFG) Reaches(entry *ir.Method, target ir.Pos) bool {
	return g.reach(entry, target, ir.Pos{})
}

// ReachesWithout reports whether target is reachable from entry when the
// statement at removed is deleted. HB rule 5: call site e1 de-facto
// dominates e2 within an action iff e2 is unreachable once e1 is removed.
func (g *ICFG) ReachesWithout(entry *ir.Method, removed, target ir.Pos) bool {
	return g.reach(entry, target, removed)
}

func (g *ICFG) reach(entry *ir.Method, target, removed ir.Pos) bool {
	start, ok := EntryPos(entry)
	if !ok {
		return false
	}
	if start == removed {
		return false
	}
	if start == target {
		return true
	}
	seen := map[ir.Pos]bool{start: true}
	if removed.Method != nil {
		seen[removed] = true // never enter the removed node
	}
	stack := []ir.Pos{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs(u) {
			if v == target {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// ReachesWithoutStrict is the return-aware variant of ReachesWithout
// used by HB rule 5. A call falls through to its continuation only if
// some callee can run to completion without executing the removed
// statement; plain ReachesWithout's unconditional fall-through would let
// execution "skip past" a callee that must execute the removed node to
// return, defeating the removal test entirely.
func (g *ICFG) ReachesWithoutStrict(entry *ir.Method, removed, target ir.Pos) bool {
	t := &strictTraversal{
		g:        g,
		removed:  removed,
		complete: make(map[*ir.Method]int),
	}
	start, ok := EntryPos(entry)
	if !ok || start == removed {
		return false
	}
	return t.search(start, target, map[ir.Pos]bool{})
}

type strictTraversal struct {
	g       *ICFG
	removed ir.Pos
	// complete memoizes canComplete per method: 0 unknown, 1 yes, 2 no,
	// 3 in-progress (treated optimistically as yes — over-approximating
	// reachability is the sound direction for HB).
	complete map[*ir.Method]int
}

// search is a DFS over positions where stepping past a call requires a
// completable callee.
func (t *strictTraversal) search(from, target ir.Pos, seen map[ir.Pos]bool) bool {
	if from == target {
		return true
	}
	if from == t.removed || seen[from] {
		return false
	}
	seen[from] = true
	if _, isCall := from.Stmt().(*ir.Invoke); isCall {
		callees := t.callees(from)
		for _, callee := range callees {
			if ep, ok := EntryPos(callee); ok {
				if t.search(ep, target, seen) {
					return true
				}
			}
		}
		if len(callees) == 0 || t.anyCompletes(callees) {
			for _, next := range intraSuccs(from) {
				if t.search(next, target, seen) {
					return true
				}
			}
		}
		return false
	}
	for _, next := range intraSuccs(from) {
		if t.search(next, target, seen) {
			return true
		}
	}
	return false
}

func (t *strictTraversal) callees(p ir.Pos) []*ir.Method {
	if t.g.Callees == nil {
		return nil
	}
	var out []*ir.Method
	for _, m := range t.g.Callees(p) {
		if m != nil && len(m.Blocks) > 0 {
			out = append(out, m)
		}
	}
	return out
}

func (t *strictTraversal) anyCompletes(ms []*ir.Method) bool {
	for _, m := range ms {
		if t.canComplete(m) {
			return true
		}
	}
	return false
}

// canComplete reports whether m can reach a Return without executing the
// removed statement.
func (t *strictTraversal) canComplete(m *ir.Method) bool {
	switch t.complete[m] {
	case 1, 3: // yes, or in-progress (optimistic)
		return true
	case 2:
		return false
	}
	t.complete[m] = 3
	result := t.completeSearch(m)
	if result {
		t.complete[m] = 1
	} else {
		t.complete[m] = 2
	}
	return result
}

func (t *strictTraversal) completeSearch(m *ir.Method) bool {
	start, ok := EntryPos(m)
	if !ok {
		return true // body-less: trivially completes
	}
	seen := map[ir.Pos]bool{}
	var dfs func(p ir.Pos) bool
	dfs = func(p ir.Pos) bool {
		if p == t.removed || seen[p] {
			return false
		}
		seen[p] = true
		switch p.Stmt().(type) {
		case *ir.Return:
			return true
		case *ir.Invoke:
			callees := t.callees(p)
			if len(callees) > 0 && !t.anyCompletes(callees) {
				return false
			}
		}
		for _, next := range intraSuccs(p) {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(start)
}

// ReachableStmts returns every statement position reachable from entry —
// used for in-thread reachability when binding handlers to loopers.
func (g *ICFG) ReachableStmts(entry *ir.Method) map[ir.Pos]bool {
	seen := make(map[ir.Pos]bool)
	start, ok := EntryPos(entry)
	if !ok {
		return seen
	}
	seen[start] = true
	stack := []ir.Pos{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succs(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}
