package report

import (
	"fmt"
	"strings"

	"sierra/internal/actions"
	"sierra/internal/race"
	"sierra/internal/shbg"
)

// Explain renders a multi-line, developer-facing explanation of a race
// report: both accesses with their actions' provenance (spawn chains
// back to the harness), and the happens-before facts showing why the
// pair is unordered — the narrative the paper walks through for its
// examples.
func (r *Report) Explain(reg *actions.Registry, g *shbg.Graph) string {
	var b strings.Builder
	tags := []string{r.Category.String()}
	if r.RefRace {
		tags = append(tags, "reference race: possible NullPointerException")
	}
	if r.Benign {
		tags = append(tags, "guard-variable pattern: real but usually benign (§6.5)")
	}
	if r.Verdict.BudgetExhausted {
		tags = append(tags, "refutation budget exhausted: reported conservatively")
	}
	fmt.Fprintf(&b, "race on %s  [%s]\n", r.Pair.A.Location(), strings.Join(tags, "; "))
	explainSide(&b, reg, "first ", r.Pair.A)
	explainSide(&b, reg, "second", r.Pair.B)

	a, bb := r.Pair.A.Action, r.Pair.B.Action
	fmt.Fprintf(&b, "  unordered: no happens-before path %s → %s or back\n",
		reg.Get(a).Name(), reg.Get(bb).Name())
	if anc := nearestCommonAncestors(reg, g, a, bb); len(anc) > 0 {
		names := make([]string, 0, len(anc))
		for _, id := range anc {
			names = append(names, reg.Get(id).Name())
		}
		fmt.Fprintf(&b, "  latest common HB ancestors: %s\n", strings.Join(names, ", "))
	}
	return b.String()
}

// explainSide prints one access with its action's spawn provenance.
func explainSide(b *strings.Builder, reg *actions.Registry, label string, acc race.Access) {
	a := reg.Get(acc.Action)
	where := "main looper"
	switch {
	case a.Looper == actions.LooperNone:
		where = "background thread"
	case a.Looper > actions.LooperMain:
		where = fmt.Sprintf("background looper #%d", a.Looper)
	}
	fmt.Fprintf(b, "  %s: %-6s in %s (%s, %s) at %v\n",
		label, acc.Kind, a.Name(), a.Kind, where, acc.Pos)
	if chain := spawnChain(reg, acc.Action, 6); len(chain) > 1 {
		names := make([]string, 0, len(chain))
		for _, id := range chain {
			names = append(names, reg.Get(id).Name())
		}
		fmt.Fprintf(b, "          spawned via: %s\n", strings.Join(names, " → "))
	}
}

// spawnChain follows the first spawn record of each action back toward
// its root, bounded by depth (cycle-guarded).
func spawnChain(reg *actions.Registry, id, depth int) []int {
	var chain []int
	seen := map[int]bool{}
	for id >= 0 && depth > 0 && !seen[id] {
		seen[id] = true
		chain = append([]int{id}, chain...)
		a := reg.Get(id)
		if len(a.Spawns) == 0 {
			break
		}
		id = a.Spawns[0].From
		depth--
	}
	return chain
}

// nearestCommonAncestors returns the maximal actions that happen-before
// both a and b: common HB ancestors not themselves ordered before
// another common ancestor. These are "the last things both sides agree
// on" — useful anchors when reading a report.
func nearestCommonAncestors(reg *actions.Registry, g *shbg.Graph, a, b int) []int {
	var common []int
	for _, x := range reg.Actions() {
		if g.HB(x.ID, a) && g.HB(x.ID, b) {
			common = append(common, x.ID)
		}
	}
	var maximal []int
	for _, x := range common {
		dominated := false
		for _, y := range common {
			if x != y && g.HB(x, y) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, x)
		}
	}
	const cap = 4
	if len(maximal) > cap {
		maximal = maximal[:cap]
	}
	return maximal
}
