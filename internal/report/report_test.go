package report_test

import (
	"strings"
	"testing"

	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/report"
)

func TestExplainNarrative(t *testing.T) {
	res := core.Analyze(corpus.NewsApp(), core.Options{})
	if len(res.Reports) == 0 {
		t.Fatal("no reports")
	}
	for i := range res.Reports {
		out := res.Reports[i].Explain(res.Registry, res.Graph)
		for _, want := range []string{"race on", "first", "second", "unordered"} {
			if !strings.Contains(out, want) {
				t.Errorf("explanation missing %q:\n%s", want, out)
			}
		}
	}
	// The Fig 1 mData report should name the spawn chain through onClick.
	var fig1 string
	for i := range res.Reports {
		if res.Reports[i].Pair.A.Field == "mData" {
			fig1 = res.Reports[i].Explain(res.Registry, res.Graph)
		}
	}
	if fig1 == "" {
		t.Fatal("mData report missing")
	}
	for _, want := range []string{"doInBackground", "onClick", "spawned via", "background thread"} {
		if !strings.Contains(fig1, want) {
			t.Errorf("Fig 1 explanation missing %q:\n%s", want, fig1)
		}
	}
}

func TestExplainBenignTag(t *testing.T) {
	res := core.Analyze(corpus.SudokuTimerApp(), core.Options{})
	found := false
	for i := range res.Reports {
		if !res.Reports[i].Benign {
			continue
		}
		found = true
		out := res.Reports[i].Explain(res.Registry, res.Graph)
		if !strings.Contains(out, "benign") {
			t.Errorf("benign report not tagged:\n%s", out)
		}
	}
	if !found {
		t.Fatal("no benign reports on the sudoku fixture")
	}
}

func TestCommonAncestorsMentioned(t *testing.T) {
	res := core.Analyze(corpus.NewsApp(), core.Options{})
	anyAncestors := false
	for i := range res.Reports {
		out := res.Reports[i].Explain(res.Registry, res.Graph)
		if strings.Contains(out, "common HB ancestors") {
			anyAncestors = true
			// onCreate precedes both sides of every news app race.
			if !strings.Contains(out, "onC") && !strings.Contains(out, "harness") {
				t.Errorf("ancestor line lacks plausible anchors:\n%s", out)
			}
		}
	}
	if !anyAncestors {
		t.Error("no explanation mentioned common ancestors")
	}
}

func TestSummarizeCategories(t *testing.T) {
	res := core.Analyze(corpus.DatabaseApp(), core.Options{})
	s := report.Summarize(res.Reports)
	if s.Total != len(res.Reports) {
		t.Fatalf("total %d != %d", s.Total, len(res.Reports))
	}
	if s.App+s.Framework+s.Library != s.Total {
		t.Error("category counts don't sum")
	}
	if s.BenignPct < 0 || s.BenignPct > 100 {
		t.Errorf("benign%% out of range: %f", s.BenignPct)
	}
}

func TestDescribeFormatsRank(t *testing.T) {
	res := core.Analyze(corpus.NewsApp(), core.Options{})
	for i := range res.Reports {
		d := res.Reports[i].Describe(res.Registry)
		if !strings.HasPrefix(d, "#") {
			t.Errorf("describe missing rank prefix: %s", d)
		}
		if !strings.Contains(d, "vs") {
			t.Errorf("describe missing pair: %s", d)
		}
	}
}
