// Package report ranks and classifies race reports (§3.1 "Race
// prioritization" and §6.5's benign-guard analysis): races in app code
// outrank framework races reached from app code, which outrank library
// races; reference-typed races (NullPointerException risk) come first
// within each bucket; true races on guard variables are flagged benign.
package report

import (
	"fmt"
	"sort"

	"sierra/internal/actions"
	"sierra/internal/ir"
	"sierra/internal/race"
	"sierra/internal/symexec"
)

// Category buckets a race by the code it touches.
type Category int

const (
	// AppCode: both accesses in application classes.
	AppCode Category = iota
	// FrameworkFromApp: at least one access in framework code reached
	// from app code.
	FrameworkFromApp
	// LibraryCode: an access sits in bundled third-party library code.
	LibraryCode
)

func (c Category) String() string {
	return [...]string{"app", "framework", "library"}[c]
}

// Report is one ranked race.
type Report struct {
	Pair    race.Pair
	Verdict symexec.Verdict
	// Category is the prioritization bucket.
	Category Category
	// RefRace marks reference-typed races (possible NPE).
	RefRace bool
	// Benign marks the guard-variable pattern: a true race whose field
	// guards other accesses — bad practice, but usually harmless
	// (§6.5 found 74.8% of true races fit it).
	Benign bool
	// Rank is the 1-based position after sorting.
	Rank int
}

// Describe renders a one-line human-readable report.
func (r *Report) Describe(reg *actions.Registry) string {
	a, b := reg.Get(r.Pair.A.Action), reg.Get(r.Pair.B.Action)
	tag := ""
	if r.Benign {
		tag = " [benign-guard]"
	}
	if r.Verdict.BudgetExhausted {
		tag += " [budget]"
	}
	return fmt.Sprintf("#%d [%s]%s %s %s%s vs %s %s%s on %s",
		r.Rank, r.Category, tag,
		a.Name(), r.Pair.A.Kind, "", b.Name(), r.Pair.B.Kind, "", r.Pair.A.Location())
}

// Rank classifies and orders the surviving pairs.
func Rank(prog *ir.Program, pairs []race.Pair, verdicts []symexec.Verdict) []Report {
	guards := guardFields(prog)
	out := make([]Report, 0, len(pairs))
	for i, p := range pairs {
		r := Report{Pair: p, Verdict: verdicts[i]}
		r.Category = categorize(p)
		r.RefRace = p.A.IsRef || p.B.IsRef
		r.Benign = guards[p.A.Field]
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		if a.RefRace != b.RefRace {
			return a.RefRace
		}
		return a.Pair.Key() < b.Pair.Key()
	})
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

func categorize(p race.Pair) Category {
	if p.A.InLibrary || p.B.InLibrary {
		return LibraryCode
	}
	if p.A.InFramework || p.B.InFramework {
		return FrameworkFromApp
	}
	return AppCode
}

// guardFields finds fields used as guards: loaded into a variable that
// an If in the same method tests. Races on such fields are real but
// usually benign (§6.5) — the guard itself is unsynchronized, yet each
// interleaving reads a consistent boolean.
func guardFields(prog *ir.Program) map[string]bool {
	out := map[string]bool{}
	for _, c := range prog.Classes() {
		for _, m := range c.MethodsSorted() {
			// Collect loads per destination var, then see which vars
			// appear in If conditions.
			loadedFrom := map[string][]string{}
			for _, blk := range m.Blocks {
				for _, s := range blk.Stmts {
					switch st := s.(type) {
					case *ir.Load:
						loadedFrom[st.Dst] = append(loadedFrom[st.Dst], st.Field)
					case *ir.StaticLoad:
						loadedFrom[st.Dst] = append(loadedFrom[st.Dst], st.Field)
					case *ir.If:
						for _, f := range loadedFrom[st.A] {
							out[f] = true
						}
					}
				}
			}
		}
	}
	return out
}

// Summary aggregates a report list.
type Summary struct {
	Total     int
	App       int
	Framework int
	Library   int
	RefRaces  int
	BenignPct float64
}

// Summarize computes aggregate statistics over the reports.
func Summarize(reports []Report) Summary {
	s := Summary{Total: len(reports)}
	benign := 0
	for _, r := range reports {
		switch r.Category {
		case AppCode:
			s.App++
		case FrameworkFromApp:
			s.Framework++
		default:
			s.Library++
		}
		if r.RefRace {
			s.RefRaces++
		}
		if r.Benign {
			benign++
		}
	}
	if s.Total > 0 {
		s.BenignPct = 100 * float64(benign) / float64(s.Total)
	}
	return s
}
