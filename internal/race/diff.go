package race

import (
	"sort"

	"sierra/internal/actions"
	"sierra/internal/ir"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/shbg"
)

// CollectAccessesDelta is CollectAccesses for an incrementally
// re-solved result. An access is keyed by its statement position, and a
// position's contributions come only from instances of its own method —
// so only accesses at positions inside an edited method can differ from
// prev. Those are re-collected (from every action instantiating an
// edited method, synthetic harness actions included); every other prev
// access is spliced — its statement, instance set, and base points-to
// set are provably unchanged in a non-poisoned warm apply. IsRef is the
// one spliced field that can still flip: it reads global field
// points-to state, which an edited body's inserted store can extend
// through a fresh key the re-solve growth check never sees.
// storedFields narrows that refresh: a fresh field-points-to key can
// only come from a store statement inside an edited method (any other
// route grows an old key, which the re-solve gate rejects), so only
// accesses to a field stored by an edited body can flip. Pass nil to
// refresh every spliced access.
// The returned slice is byte-for-byte what a cold CollectAccesses over
// the patched program would produce (both assemble the same unique-key
// access set in the same total order).
func CollectAccessesDelta(reg *actions.Registry, res *pointer.Result, prev []Access, edited map[*ir.Method]bool, storedFields map[string]bool, tr *obs.Trace) []Access {
	insts := reg.ActionInstances(res)
	sub := map[int][]pointer.MKey{}
	aids := make([]int, 0, 4)
	for aid, mks := range insts {
		for _, mk := range mks {
			if edited[mk.M] {
				if len(sub[aid]) == 0 {
					aids = append(aids, aid)
				}
				sub[aid] = append(sub[aid], mk)
			}
		}
	}
	sort.Ints(aids)
	fresh := collectForActions(res, sub, aids)
	sortAccesses(fresh)

	retained := make([]Access, 0, len(prev))
	for _, a := range prev {
		if edited[a.Pos.Method] {
			continue
		}
		if storedFields == nil || storedFields[a.Field] {
			setIsRef(res, &a)
		}
		retained = append(retained, a)
	}

	// Merge the two sorted runs under the canonical order.
	out := make([]Access, 0, len(retained)+len(fresh))
	i, j := 0, 0
	for i < len(retained) && j < len(fresh) {
		if accessLess(&retained[i], &fresh[j]) {
			out = append(out, retained[i])
			i++
		} else {
			out = append(out, fresh[j])
			j++
		}
	}
	out = append(out, retained[i:]...)
	out = append(out, fresh[j:]...)
	tr.Count("race.accesses", int64(len(out)))
	return out
}

// RacyPairsDelta is RacyPairs for an incrementally re-solved result.
// It must run after shbg.Rebuild verified the graph equal to the
// baseline's: with HB outcomes pinned, every filter-chain determinant
// of a combination whose endpoints both lie outside the edited methods
// — access values, alias sets, scopes, HB order — is unchanged, so
// membership in prev IS the chain outcome. Only combinations touching
// an edited-method position run the full chain. Output is byte-for-byte
// the cold result.
func RacyPairsDelta(reg *actions.Registry, g *shbg.Graph, accesses []Access, prev []Pair, edited map[*ir.Method]bool, tr *obs.Trace) []Pair {
	if edited == nil {
		edited = map[*ir.Method]bool{}
	}
	return racyPairsImpl(reg, g, accesses, edited, prev, tr)
}

// MatchPairs aligns two racy-pair tables by canonical pair key (action
// ids + positions + field — see Pair.Key). For each pair in next it
// returns the index of the identical pair in prev, or -1 when the pair
// is new; removed is how many prev pairs have no successor. Keys are
// position-sensitive on purpose: an access whose statement shifted is
// "new", so incremental re-analysis re-refutes it instead of splicing a
// stale verdict.
func MatchPairs(prev, next []Pair) (match []int, removed int) {
	byKey := make(map[string]int, len(prev))
	for i := range prev {
		byKey[prev[i].Key()] = i
	}
	match = make([]int, len(next))
	used := 0
	for i := range next {
		if j, ok := byKey[next[i].Key()]; ok {
			match[i] = j
			used++
		} else {
			match[i] = -1
		}
	}
	return match, len(prev) - used
}
