package race

import (
	"strings"
	"testing"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/harness"
	"sierra/internal/pointer"
	"sierra/internal/shbg"
)

// analyzeApp runs harness → actions → SHBG → accesses → racy pairs.
func analyzeApp(t *testing.T, app *apk.App, pol pointer.Policy) (*actions.Registry, *shbg.Graph, []Access, []Pair) {
	t.Helper()
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pol)
	g := shbg.Build(reg, res, shbg.Options{})
	accs := CollectAccesses(reg, res)
	pairs := RacyPairs(reg, g, accs)
	return reg, g, accs, pairs
}

func actionName(reg *actions.Registry, id int) string { return reg.Get(id).Name() }

// pairOn reports whether some pair races on the given field between the
// two named callbacks (order-insensitive).
func pairOn(reg *actions.Registry, pairs []Pair, field, cb1, cb2 string) bool {
	for _, p := range pairs {
		if p.A.Field != field {
			continue
		}
		n1 := reg.Get(p.A.Action).Callback
		n2 := reg.Get(p.B.Action).Callback
		if (n1 == cb1 && n2 == cb2) || (n1 == cb2 && n2 == cb1) {
			return true
		}
	}
	return false
}

func TestFigure1NewsAppRacyPairs(t *testing.T) {
	reg, _, accs, pairs := analyzeApp(t, corpus.NewsApp(), pointer.ActionSensitivePolicy{K: 2})
	if len(accs) == 0 || len(pairs) == 0 {
		t.Fatalf("accesses=%d pairs=%d, want both nonzero", len(accs), len(pairs))
	}
	// The Fig 1 race: background adapter.add (mData write) vs the
	// scroll handler's read through the RecycleView.
	if !pairOn(reg, pairs, "mData", "doInBackground", "onScroll") {
		for _, p := range pairs {
			t.Logf("pair: %s %v vs %s %v on %s",
				actionName(reg, p.A.Action), p.A.Kind, actionName(reg, p.B.Action), p.B.Kind, p.A.Field)
		}
		t.Fatal("missing doInBackground vs onScroll race on mData")
	}
	// The cache flag race: onPostExecute writes mCacheValid, scroll reads.
	if !pairOn(reg, pairs, "mCacheValid", "onPostExecute", "onScroll") {
		t.Error("missing onPostExecute vs onScroll race on mCacheValid")
	}
	// Ordered pair must NOT appear: onCreate writes this.adapter, onClick
	// reads it, but onCreate ≺ onClick.
	if pairOn(reg, pairs, "adapter", "onCreate", "onClick") {
		t.Error("onCreate vs onClick on adapter is HB-ordered; must not be racy")
	}
}

func TestFigure2InterComponentRacyPairs(t *testing.T) {
	reg, _, _, pairs := analyzeApp(t, corpus.DatabaseApp(), pointer.ActionSensitivePolicy{K: 2})
	// onReceive's update (mOpen read) vs onStop's close (mOpen write).
	if !pairOn(reg, pairs, "mOpen", "onReceive", "onStop") {
		for _, p := range pairs {
			t.Logf("pair: %s vs %s on %s", actionName(reg, p.A.Action), actionName(reg, p.B.Action), p.A.Field)
		}
		t.Fatal("missing onReceive vs onStop race on mOpen (Fig 2)")
	}
	// onReceive reads act.mDB; onDestroy nulls it.
	if !pairOn(reg, pairs, "mDB", "onReceive", "onDestroy") {
		t.Error("missing onReceive vs onDestroy race on mDB")
	}
	// Ordered lifecycle accesses must not pair: onCreate writes mDB,
	// onStart reads it, but onCreate ≺ onStart.
	if pairOn(reg, pairs, "mDB", "onCreate", "onStart") {
		t.Error("onCreate vs onStart on mDB is ordered; must not be racy")
	}
}

func TestFigure8SudokuCandidates(t *testing.T) {
	reg, _, _, pairs := analyzeApp(t, corpus.SudokuTimerApp(), pointer.ActionSensitivePolicy{K: 2})
	// Both the guarded mAccumTime pair (later refuted) and the guard
	// variable pair (true race) are candidates at this stage.
	if !pairOn(reg, pairs, "mAccumTime", "run", "onPause") {
		t.Error("missing run vs onPause candidate on mAccumTime")
	}
	if !pairOn(reg, pairs, "mIsRunning", "run", "onPause") {
		t.Error("missing run vs onPause candidate on mIsRunning")
	}
	_ = reg
}

func TestActionSensitivityReducesRacyPairs(t *testing.T) {
	appAS := corpus.NewsApp()
	_, _, _, withAS := analyzeApp(t, appAS, pointer.ActionSensitivePolicy{K: 2})
	appHY := corpus.NewsApp()
	_, _, _, without := analyzeApp(t, appHY, pointer.Hybrid{K: 2})
	if len(without) < len(withAS) {
		t.Errorf("racy pairs: hybrid %d < action-sensitive %d; AS must not add pairs",
			len(without), len(withAS))
	}
}

func TestAccessMetadata(t *testing.T) {
	_, _, accs, _ := analyzeApp(t, corpus.NewsApp(), pointer.ActionSensitivePolicy{K: 2})
	var sawFramework, sawApp, sawRef bool
	for _, a := range accs {
		if a.InFramework {
			sawFramework = true
		} else {
			sawApp = true
		}
		if a.IsRef {
			sawRef = true
		}
		if !a.Static && a.BaseVar == "" {
			t.Errorf("instance access %v missing base var", a)
		}
	}
	if !sawFramework {
		t.Error("no framework accesses collected (adapter internals expected)")
	}
	if !sawApp {
		t.Error("no app accesses collected")
	}
	if !sawRef {
		t.Error("no reference-typed accesses detected (this.adapter expected)")
	}
}

func TestRacyPairsDeterministic(t *testing.T) {
	_, _, _, p1 := analyzeApp(t, corpus.NewsApp(), pointer.ActionSensitivePolicy{K: 2})
	_, _, _, p2 := analyzeApp(t, corpus.NewsApp(), pointer.ActionSensitivePolicy{K: 2})
	if len(p1) != len(p2) {
		t.Fatalf("nondeterministic pair count: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].Key() != p2[i].Key() {
			t.Fatalf("pair %d differs: %s vs %s", i, p1[i].Key(), p2[i].Key())
		}
	}
}

func TestPairKeyAndStrings(t *testing.T) {
	_, _, accs, pairs := analyzeApp(t, corpus.NewsApp(), pointer.ActionSensitivePolicy{K: 2})
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	p := pairs[0]
	if p.A.Action > p.B.Action {
		t.Error("pairs must be canonically ordered")
	}
	if !strings.Contains(p.Key(), "/") {
		t.Errorf("key %q malformed", p.Key())
	}
	for _, a := range accs[:3] {
		if a.String() == "" || a.Location() == "" {
			t.Error("empty render")
		}
	}
}
