// Package race generates candidate event races: it collects the memory
// accesses ⟨x, τ, A⟩ of every action (§4.1) and pairs accesses from
// different, HB-unordered actions that touch overlapping memory with at
// least one write — the paper's "racy pairs", which the symbolic
// refuter then prunes.
package race

import (
	"fmt"
	"sort"

	"sierra/internal/actions"
	"sierra/internal/harness"
	"sierra/internal/ir"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/shbg"
)

// AccessKind is read or write.
type AccessKind int

const (
	// Read is a heap load.
	Read AccessKind = iota
	// Write is a heap store.
	Write
)

func (k AccessKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Access is one memory access attributed to an action.
type Access struct {
	// Action is the owning action's id.
	Action int
	// Pos locates the access statement.
	Pos ir.Pos
	// Kind is read or write.
	Kind AccessKind
	// Field is the accessed field name.
	Field string
	// Static marks static-field accesses; Class qualifies them.
	Static bool
	Class  string
	// BaseVar is the base variable of instance accesses (for the
	// refuter's queries).
	BaseVar string
	// Objs is the points-to set of the base (nil for statics).
	Objs pointer.ObjSet
	// InFramework marks accesses inside framework model code.
	InFramework bool
	// InLibrary marks accesses inside bundled library code.
	InLibrary bool
	// IsRef marks accesses to reference-typed state (the field holds
	// objects) — racy reference updates can yield NullPointerException,
	// which the prioritizer ranks highest.
	IsRef bool
}

// Location renders the field identity.
func (a Access) Location() string {
	if a.Static {
		return a.Class + "." + a.Field
	}
	return "." + a.Field
}

func (a Access) String() string {
	return fmt.Sprintf("A%d %s %s @%v", a.Action, a.Kind, a.Location(), a.Pos)
}

// Pair is a candidate race: two unordered accesses to overlapping
// memory, at least one a write.
type Pair struct {
	A, B Access
}

// Key canonically identifies the pair (for dedup and stable output).
func (p Pair) Key() string {
	return fmt.Sprintf("%d@%v/%d@%v:%s", p.A.Action, p.A.Pos, p.B.Action, p.B.Pos, p.A.Field)
}

// CollectAccesses gathers every heap access of every action from the
// analysis result, merging duplicate (action, site) entries across
// contexts.
func CollectAccesses(reg *actions.Registry, res *pointer.Result) []Access {
	return CollectAccessesTraced(reg, res, nil)
}

// CollectAccessesTraced is CollectAccesses with observability: it counts
// the merged accesses into race.accesses (nil Trace = no-op).
func CollectAccessesTraced(reg *actions.Registry, res *pointer.Result, tr *obs.Trace) []Access {
	type key struct {
		action int
		pos    ir.Pos
		kind   AccessKind
	}
	merged := map[key]*Access{}
	insts := reg.ActionInstances(res)

	aids := make([]int, 0, len(insts))
	for aid := range insts {
		aids = append(aids, aid)
	}
	sort.Ints(aids)

	record := func(aid int, mk pointer.MKey, pos ir.Pos, kind AccessKind, field, baseVar string, static bool, cls string) {
		k := key{action: aid, pos: pos, kind: kind}
		acc := merged[k]
		if acc == nil {
			acc = &Access{
				Action: aid, Pos: pos, Kind: kind, Field: field,
				Static: static, Class: cls, BaseVar: baseVar,
				InFramework: mk.M.Class != nil && mk.M.Class.Framework,
				InLibrary:   mk.M.Class != nil && mk.M.Class.Library,
			}
			if !static {
				acc.Objs = res.NewObjSet()
			}
			merged[k] = acc
		}
		if !static {
			acc.Objs.AddAll(res.PointsTo(mk.M, mk.Ctx, baseVar))
		}
	}

	for _, aid := range aids {
		for _, mk := range insts[aid] {
			if mk.M.Class != nil && harness.IsSynthetic(mk.M.Class.Name) {
				continue
			}
			for _, blk := range mk.M.Blocks {
				for _, s := range blk.Stmts {
					switch st := s.(type) {
					case *ir.Load:
						record(aid, mk, st.Pos(), Read, st.Field, st.Obj, false, "")
					case *ir.Store:
						record(aid, mk, st.Pos(), Write, st.Field, st.Obj, false, "")
					case *ir.StaticLoad:
						record(aid, mk, st.Pos(), Read, st.Field, "", true, st.Class)
					case *ir.StaticStore:
						record(aid, mk, st.Pos(), Write, st.Field, "", true, st.Class)
					}
				}
			}
		}
	}

	out := make([]Access, 0, len(merged))
	for _, acc := range merged {
		// Reference-typed state: some pointee of the base holds objects
		// under this field, or the static slot holds objects.
		if acc.Static {
			acc.IsRef = res.StaticPointsTo(acc.Class, acc.Field).Len() > 0
		} else {
			for _, o := range acc.Objs.Slice() {
				if res.FieldPointsTo(o, acc.Field).Len() > 0 {
					acc.IsRef = true
					break
				}
			}
		}
		out = append(out, *acc)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Action != b.Action {
			return a.Action < b.Action
		}
		if a.Pos.String() != b.Pos.String() {
			return a.Pos.String() < b.Pos.String()
		}
		return a.Kind < b.Kind
	})
	tr.Count("race.accesses", int64(len(out)))
	return out
}

// RacyPairs intersects accesses across HB-unordered actions: same field,
// overlapping points-to sets (or the same static slot), at least one
// write, actions in compatible scopes.
func RacyPairs(reg *actions.Registry, g *shbg.Graph, accesses []Access) []Pair {
	return RacyPairsTraced(reg, g, accesses, nil)
}

// RacyPairsTraced is RacyPairs with observability: it counts the
// candidate funnel into race.pairs_considered (same-field combinations
// examined), race.alias_hits (pairs whose memory overlaps),
// race.hb_filtered (overlapping pairs dropped because HB orders them),
// and race.pairs_emitted (nil Trace = no-op).
func RacyPairsTraced(reg *actions.Registry, g *shbg.Graph, accesses []Access, tr *obs.Trace) []Pair {
	var considered, aliasHits, hbFiltered int64
	// Bucket by field name first — only same-named fields can overlap.
	byField := map[string][]int{}
	for i, a := range accesses {
		byField[a.Field] = append(byField[a.Field], i)
	}
	fields := make([]string, 0, len(byField))
	for f := range byField {
		fields = append(fields, f)
	}
	sort.Strings(fields)

	// pairKey mirrors Pair.Key() structurally: dedup needs no string
	// formatting, only the report-order sort below renders Key().
	type pairKey struct {
		aAction int
		aPos    ir.Pos
		bAction int
		bPos    ir.Pos
		field   string
	}
	var out []Pair
	seen := map[pairKey]bool{}
	for _, f := range fields {
		idxs := byField[f]
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				considered++
				a, b := accesses[idxs[i]], accesses[idxs[j]]
				if a.Action == b.Action {
					continue
				}
				if a.Kind != Write && b.Kind != Write {
					continue
				}
				if a.Static != b.Static {
					continue
				}
				if a.Static {
					if a.Class != b.Class {
						continue
					}
				} else if !a.Objs.Intersects(b.Objs) {
					continue
				}
				aliasHits++
				actA, actB := reg.Get(a.Action), reg.Get(b.Action)
				if !actions.SameScope(actA, actB) {
					continue
				}
				if g.Ordered(a.Action, b.Action) {
					hbFiltered++
					continue
				}
				p := Pair{A: a, B: b}
				if a.Action > b.Action {
					p = Pair{A: b, B: a}
				}
				k := pairKey{p.A.Action, p.A.Pos, p.B.Action, p.B.Pos, p.A.Field}
				if !seen[k] {
					seen[k] = true
					out = append(out, p)
				}
			}
		}
	}
	keys := make([]string, len(out))
	for i := range out {
		keys[i] = out[i].Key()
	}
	sort.Sort(&pairsByKey{pairs: out, keys: keys})
	tr.Count("race.pairs_considered", considered)
	tr.Count("race.alias_hits", aliasHits)
	tr.Count("race.hb_filtered", hbFiltered)
	tr.Count("race.pairs_emitted", int64(len(out)))
	return out
}

// pairsByKey sorts pairs by their canonical Key with each key rendered
// once, not O(n log n) times inside the comparator.
type pairsByKey struct {
	pairs []Pair
	keys  []string
}

func (s *pairsByKey) Len() int           { return len(s.pairs) }
func (s *pairsByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *pairsByKey) Swap(i, j int) {
	s.pairs[i], s.pairs[j] = s.pairs[j], s.pairs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
