// Package race generates candidate event races: it collects the memory
// accesses ⟨x, τ, A⟩ of every action (§4.1) and pairs accesses from
// different, HB-unordered actions that touch overlapping memory with at
// least one write — the paper's "racy pairs", which the symbolic
// refuter then prunes.
package race

import (
	"fmt"
	"sort"

	"sierra/internal/actions"
	"sierra/internal/harness"
	"sierra/internal/ir"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/shbg"
)

// AccessKind is read or write.
type AccessKind int

const (
	// Read is a heap load.
	Read AccessKind = iota
	// Write is a heap store.
	Write
)

func (k AccessKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Access is one memory access attributed to an action.
type Access struct {
	// Action is the owning action's id.
	Action int
	// Pos locates the access statement.
	Pos ir.Pos
	// Kind is read or write.
	Kind AccessKind
	// Field is the accessed field name.
	Field string
	// Static marks static-field accesses; Class qualifies them.
	Static bool
	Class  string
	// BaseVar is the base variable of instance accesses (for the
	// refuter's queries).
	BaseVar string
	// Objs is the points-to set of the base (nil for statics).
	Objs pointer.ObjSet
	// InFramework marks accesses inside framework model code.
	InFramework bool
	// InLibrary marks accesses inside bundled library code.
	InLibrary bool
	// IsRef marks accesses to reference-typed state (the field holds
	// objects) — racy reference updates can yield NullPointerException,
	// which the prioritizer ranks highest.
	IsRef bool
}

// Location renders the field identity.
func (a Access) Location() string {
	if a.Static {
		return a.Class + "." + a.Field
	}
	return "." + a.Field
}

func (a Access) String() string {
	return fmt.Sprintf("A%d %s %s @%v", a.Action, a.Kind, a.Location(), a.Pos)
}

// Pair is a candidate race: two unordered accesses to overlapping
// memory, at least one a write.
type Pair struct {
	A, B Access
}

// Key canonically identifies the pair (for dedup and stable output).
func (p Pair) Key() string {
	return fmt.Sprintf("%d@%v/%d@%v:%s", p.A.Action, p.A.Pos, p.B.Action, p.B.Pos, p.A.Field)
}

// CollectAccesses gathers every heap access of every action from the
// analysis result, merging duplicate (action, site) entries across
// contexts.
func CollectAccesses(reg *actions.Registry, res *pointer.Result) []Access {
	return CollectAccessesTraced(reg, res, nil)
}

// CollectAccessesTraced is CollectAccesses with observability: it counts
// the merged accesses into race.accesses (nil Trace = no-op).
func CollectAccessesTraced(reg *actions.Registry, res *pointer.Result, tr *obs.Trace) []Access {
	insts := reg.ActionInstances(res)
	aids := make([]int, 0, len(insts))
	for aid := range insts {
		aids = append(aids, aid)
	}
	sort.Ints(aids)
	out := collectForActions(res, insts, aids)
	sortAccesses(out)
	tr.Count("race.accesses", int64(len(out)))
	return out
}

// collectForActions gathers and merges the given actions' accesses
// (unsorted), resolving IsRef against the current field points-to
// state. Shared by the cold collector and the incremental delta
// re-collection.
func collectForActions(res *pointer.Result, insts map[int][]pointer.MKey, aids []int) []Access {
	type key struct {
		action int
		pos    ir.Pos
		kind   AccessKind
	}
	merged := map[key]*Access{}

	record := func(aid int, mk pointer.MKey, pos ir.Pos, kind AccessKind, field, baseVar string, static bool, cls string) {
		k := key{action: aid, pos: pos, kind: kind}
		acc := merged[k]
		if acc == nil {
			acc = &Access{
				Action: aid, Pos: pos, Kind: kind, Field: field,
				Static: static, Class: cls, BaseVar: baseVar,
				InFramework: mk.M.Class != nil && mk.M.Class.Framework,
				InLibrary:   mk.M.Class != nil && mk.M.Class.Library,
			}
			if !static {
				acc.Objs = res.NewObjSet()
			}
			merged[k] = acc
		}
		if !static {
			acc.Objs.AddAll(res.PointsTo(mk.M, mk.Ctx, baseVar))
		}
	}

	for _, aid := range aids {
		for _, mk := range insts[aid] {
			if mk.M.Class != nil && harness.IsSynthetic(mk.M.Class.Name) {
				continue
			}
			for _, blk := range mk.M.Blocks {
				for _, s := range blk.Stmts {
					switch st := s.(type) {
					case *ir.Load:
						record(aid, mk, st.Pos(), Read, st.Field, st.Obj, false, "")
					case *ir.Store:
						record(aid, mk, st.Pos(), Write, st.Field, st.Obj, false, "")
					case *ir.StaticLoad:
						record(aid, mk, st.Pos(), Read, st.Field, "", true, st.Class)
					case *ir.StaticStore:
						record(aid, mk, st.Pos(), Write, st.Field, "", true, st.Class)
					}
				}
			}
		}
	}

	out := make([]Access, 0, len(merged))
	for _, acc := range merged {
		setIsRef(res, acc)
		out = append(out, *acc)
	}
	return out
}

// setIsRef resolves the reference-typed-state flag: some pointee of the
// base holds objects under this field, or the static slot holds
// objects. The flag reads global field points-to state, so incremental
// re-analysis must refresh it even on accesses it otherwise splices.
func setIsRef(res *pointer.Result, acc *Access) {
	if acc.Static {
		acc.IsRef = res.StaticPointsTo(acc.Class, acc.Field).Len() > 0
		return
	}
	acc.IsRef = false
	for _, o := range acc.Objs.Slice() {
		if res.FieldPointsTo(o, acc.Field).Len() > 0 {
			acc.IsRef = true
			break
		}
	}
}

// accessLess is the canonical access order: (action, position, kind).
// The key is unique — the merge map collapses duplicates — so the order
// is total and any sorted assembly of the same access set is identical.
func accessLess(a, b *Access) bool {
	if a.Action != b.Action {
		return a.Action < b.Action
	}
	if ap, bp := a.Pos.String(), b.Pos.String(); ap != bp {
		return ap < bp
	}
	return a.Kind < b.Kind
}

func sortAccesses(out []Access) {
	sort.Slice(out, func(i, j int) bool { return accessLess(&out[i], &out[j]) })
}

// RacyPairs intersects accesses across HB-unordered actions: same field,
// overlapping points-to sets (or the same static slot), at least one
// write, actions in compatible scopes.
func RacyPairs(reg *actions.Registry, g *shbg.Graph, accesses []Access) []Pair {
	return RacyPairsTraced(reg, g, accesses, nil)
}

// RacyPairsTraced is RacyPairs with observability: it counts the
// candidate funnel into race.pairs_considered (same-field combinations
// examined), race.alias_hits (pairs whose memory overlaps),
// race.hb_filtered (overlapping pairs dropped because HB orders them),
// and race.pairs_emitted (nil Trace = no-op).
func RacyPairsTraced(reg *actions.Registry, g *shbg.Graph, accesses []Access, tr *obs.Trace) []Pair {
	return racyPairsImpl(reg, g, accesses, nil, nil, tr)
}

// pairKey mirrors Pair.Key() structurally: dedup and prev-membership
// need no string formatting, only the report-order sort renders Key().
type pairKey struct {
	aAction int
	aPos    ir.Pos
	bAction int
	bPos    ir.Pos
	field   string
}

// racyPairsImpl is the shared pair generator. With edited == nil it is
// the cold path: every same-field combination runs the full alias /
// scope / HB filter chain. With edited non-nil (the incremental path,
// RacyPairsDelta) a combination whose endpoints both lie at positions
// outside the edited methods skips the chain entirely — its access
// values, alias relation, scopes, and (graph-equality-verified) HB
// edges are all provably unchanged from the baseline, so membership in
// prev IS the filter-chain outcome. Clean pairs are spliced straight
// from prev (rebuilt over the current access values, which carry the
// refreshed IsRef flags), and only combinations touching an
// edited-method position are enumerated at all, so the delta path never
// scans clean×clean. Dedup keys and the final canonical sort are
// identical either way, so the output is byte-for-byte the cold result.
func racyPairsImpl(reg *actions.Registry, g *shbg.Graph, accesses []Access, edited map[*ir.Method]bool, prev []Pair, tr *obs.Trace) []Pair {
	var considered, aliasHits, hbFiltered int64
	var out []Pair
	seen := map[pairKey]bool{}

	// chain runs the full filter chain on one combination and emits.
	chain := func(a, b *Access) {
		if a.Action == b.Action {
			return
		}
		considered++
		if a.Kind != Write && b.Kind != Write {
			return
		}
		if a.Static != b.Static {
			return
		}
		if a.Static {
			if a.Class != b.Class {
				return
			}
		} else if !a.Objs.Intersects(b.Objs) {
			return
		}
		aliasHits++
		actA, actB := reg.Get(a.Action), reg.Get(b.Action)
		if !actions.SameScope(actA, actB) {
			return
		}
		if g.Ordered(a.Action, b.Action) {
			hbFiltered++
			return
		}
		p := Pair{A: *a, B: *b}
		if a.Action > b.Action {
			p = Pair{A: *b, B: *a}
		}
		k := pairKey{p.A.Action, p.A.Pos, p.B.Action, p.B.Pos, p.A.Field}
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}

	if edited == nil {
		// Cold: bucket by field name — only same-named fields can
		// overlap — and run every combination through the chain.
		byField := map[string][]int{}
		for i := range accesses {
			byField[accesses[i].Field] = append(byField[accesses[i].Field], i)
		}
		fields := make([]string, 0, len(byField))
		for f := range byField {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			idxs := byField[f]
			for i := 0; i < len(idxs); i++ {
				for j := i + 1; j < len(idxs); j++ {
					chain(&accesses[idxs[i]], &accesses[idxs[j]])
				}
			}
		}
	} else {
		// Delta: splice every prev pair whose endpoints both lie outside
		// the edited methods, rebuilt over the current access values
		// ((action, position) names an access uniquely — one statement,
		// one kind), then enumerate only the combinations touching an
		// edited-method position. The two emission sets are disjoint —
		// spliced pairs touch no edited position, computed ones always do.
		type apKey struct {
			action int
			pos    ir.Pos
		}
		idxByAP := make(map[apKey]int, len(accesses))
		editedFields := map[string]bool{}
		for i := range accesses {
			idxByAP[apKey{accesses[i].Action, accesses[i].Pos}] = i
			if edited[accesses[i].Pos.Method] {
				editedFields[accesses[i].Field] = true
			}
		}
		for _, p := range prev {
			if edited[p.A.Pos.Method] || edited[p.B.Pos.Method] {
				continue
			}
			i, okA := idxByAP[apKey{p.A.Action, p.A.Pos}]
			j, okB := idxByAP[apKey{p.B.Action, p.B.Pos}]
			if !okA || !okB {
				// Unreachable while unedited methods keep their access
				// sets; fail safe by dropping rather than splicing stale
				// values.
				continue
			}
			np := Pair{A: accesses[i], B: accesses[j]}
			k := pairKey{np.A.Action, np.A.Pos, np.B.Action, np.B.Pos, np.A.Field}
			if !seen[k] {
				seen[k] = true
				out = append(out, np)
			}
		}
		byField := map[string][]int{}
		for i := range accesses {
			if editedFields[accesses[i].Field] {
				byField[accesses[i].Field] = append(byField[accesses[i].Field], i)
			}
		}
		fields := make([]string, 0, len(byField))
		for f := range byField {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			idxs := byField[f]
			for i := 0; i < len(idxs); i++ {
				for j := i + 1; j < len(idxs); j++ {
					a, b := &accesses[idxs[i]], &accesses[idxs[j]]
					if !edited[a.Pos.Method] && !edited[b.Pos.Method] {
						continue
					}
					chain(a, b)
				}
			}
		}
	}
	keys := make([]string, len(out))
	for i := range out {
		keys[i] = out[i].Key()
	}
	sort.Sort(&pairsByKey{pairs: out, keys: keys})
	tr.Count("race.pairs_considered", considered)
	tr.Count("race.alias_hits", aliasHits)
	tr.Count("race.hb_filtered", hbFiltered)
	tr.Count("race.pairs_emitted", int64(len(out)))
	return out
}

// pairsByKey sorts pairs by their canonical Key with each key rendered
// once, not O(n log n) times inside the comparator.
type pairsByKey struct {
	pairs []Pair
	keys  []string
}

func (s *pairsByKey) Len() int           { return len(s.pairs) }
func (s *pairsByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *pairsByKey) Swap(i, j int) {
	s.pairs[i], s.pairs[j] = s.pairs[j], s.pairs[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
