package frontend

import (
	"testing"

	"sierra/internal/ir"
)

func newFrameworkProgram(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	InstallFramework(p)
	return p
}

func TestFrameworkHierarchy(t *testing.T) {
	p := newFrameworkProgram(t)
	cases := []struct {
		sub, super string
	}{
		{ActivityClass, ContextClass},
		{ServiceClass, ContextClass},
		{ButtonClass, ViewClass},
		{RecycleViewClass, ViewClass},
		{ThreadClass, Object},
		{HandlerClass, Object},
	}
	for _, c := range cases {
		if !p.IsSubtype(c.sub, c.super) {
			t.Errorf("%s should be subtype of %s", c.sub, c.super)
		}
	}
	for _, cls := range p.Classes() {
		if !cls.Framework {
			t.Errorf("%s not marked Framework", cls.Name)
		}
	}
}

func TestFrameworkPredicates(t *testing.T) {
	p := newFrameworkProgram(t)
	act := ir.NewClass("MyActivity", ActivityClass)
	task := ir.NewClass("MyTask", AsyncTaskClass)
	run := ir.NewClass("MyRunnable", Object, RunnableIface)
	thr := ir.NewClass("MyThread", ThreadClass)
	h := ir.NewClass("MyHandler", HandlerClass)
	rcv := ir.NewClass("MyReceiver", ReceiverClass)
	for _, c := range []*ir.Class{act, task, run, thr, h, rcv} {
		p.AddClass(c)
	}
	if !IsActivity(p, "MyActivity") || IsActivity(p, "MyTask") {
		t.Error("IsActivity wrong")
	}
	if !IsAsyncTask(p, "MyTask") || IsAsyncTask(p, "MyRunnable") {
		t.Error("IsAsyncTask wrong")
	}
	if !IsRunnable(p, "MyRunnable") {
		t.Error("IsRunnable wrong")
	}
	if !IsThread(p, "MyThread") || IsThread(p, "MyHandler") {
		t.Error("IsThread wrong")
	}
	if !IsHandler(p, "MyHandler") {
		t.Error("IsHandler wrong")
	}
	if !IsReceiver(p, "MyReceiver") {
		t.Error("IsReceiver wrong")
	}
	if !IsView(p, ButtonClass) {
		t.Error("IsView wrong")
	}
}

func TestThreadRunDelegatesToTarget(t *testing.T) {
	p := newFrameworkProgram(t)
	run := p.ResolveMethod(ThreadClass, Run)
	if run == nil {
		t.Fatal("Thread.run missing")
	}
	// Body loads this.target and virtually calls run on it.
	foundCall := false
	for _, b := range run.Blocks {
		for _, s := range b.Stmts {
			if inv, ok := s.(*ir.Invoke); ok && inv.Method == Run && inv.Class == RunnableIface {
				foundCall = true
			}
		}
	}
	if !foundCall {
		t.Error("Thread.run does not delegate to Runnable target")
	}
}

func TestRecognizeSpawningAPIs(t *testing.T) {
	p := newFrameworkProgram(t)
	p.AddClass(ir.NewClass("MyTask", AsyncTaskClass))
	p.AddClass(ir.NewClass("MyThread", ThreadClass))
	p.AddClass(ir.NewClass("MyHandler", HandlerClass))
	p.AddClass(ir.NewClass("MyActivity", ActivityClass))

	cases := []struct {
		inv    *ir.Invoke
		kind   APIKind
		target PostTarget
	}{
		{&ir.Invoke{Class: "MyTask", Method: Execute}, APIExecuteAsyncTask, TargetBackground},
		{&ir.Invoke{Class: "MyThread", Method: Start}, APIThreadStart, TargetBackground},
		{&ir.Invoke{Class: ExecutorIface, Method: Execute}, APIExecutorExecute, TargetBackground},
		{&ir.Invoke{Class: "MyHandler", Method: Post}, APIPostRunnable, TargetHandlerLooper},
		{&ir.Invoke{Class: "MyHandler", Method: PostDelayed}, APIPostRunnable, TargetHandlerLooper},
		{&ir.Invoke{Class: ViewClass, Method: Post}, APIPostRunnable, TargetMain},
		{&ir.Invoke{Class: "MyActivity", Method: RunOnUiThread}, APIPostRunnable, TargetMain},
		{&ir.Invoke{Class: "MyHandler", Method: SendMessage}, APISendMessage, TargetHandlerLooper},
		{&ir.Invoke{Class: "MyHandler", Method: SendEmptyMessage}, APISendMessage, TargetHandlerLooper},
		{&ir.Invoke{Class: TimerClass, Method: Schedule}, APITimerSchedule, TargetBackground},
	}
	for _, c := range cases {
		got, ok := Recognize(p, c.inv)
		if !ok {
			t.Errorf("Recognize(%v) not recognized", c.inv)
			continue
		}
		if got.Kind != c.kind || got.Target != c.target {
			t.Errorf("Recognize(%v) = kind %d target %d, want %d %d", c.inv, got.Kind, got.Target, c.kind, c.target)
		}
		if !got.IsActionSpawn() {
			t.Errorf("Recognize(%v) should be an action spawn", c.inv)
		}
	}
}

func TestRecognizeNonSpawningAPIs(t *testing.T) {
	p := newFrameworkProgram(t)
	p.AddClass(ir.NewClass("MyActivity", ActivityClass))
	cases := []struct {
		inv  *ir.Invoke
		kind APIKind
	}{
		{&ir.Invoke{Class: "MyActivity", Method: FindViewByID}, APIFindViewByID},
		{&ir.Invoke{Class: "MyActivity", Method: RegisterReceiver}, APIRegisterReceiver},
		{&ir.Invoke{Class: "MyActivity", Method: UnregisterReceiver}, APIUnregisterReceiver},
		{&ir.Invoke{Class: "MyActivity", Method: StartService}, APIStartService},
		{&ir.Invoke{Class: "MyActivity", Method: BindService}, APIBindService},
		{&ir.Invoke{Class: "MyActivity", Method: StartActivity}, APIStartActivity},
		{&ir.Invoke{Class: ButtonClass, Method: SetOnClickListener}, APISetListener},
	}
	for _, c := range cases {
		got, ok := Recognize(p, c.inv)
		if !ok || got.Kind != c.kind {
			t.Errorf("Recognize(%v) = (%d, %t), want kind %d", c.inv, got.Kind, ok, c.kind)
		}
		if got.IsActionSpawn() {
			t.Errorf("Recognize(%v) must not be an action spawn", c.inv)
		}
	}
	if got, _ := Recognize(p, &ir.Invoke{Class: ButtonClass, Method: SetOnClickListener}); got.Callback != OnClick {
		t.Errorf("setOnClickListener callback = %q, want onClick", got.Callback)
	}
}

func TestRecognizeRejectsUnrelatedCalls(t *testing.T) {
	p := newFrameworkProgram(t)
	p.AddClass(ir.NewClass("Plain", Object))
	unrelated := []*ir.Invoke{
		{Class: "Plain", Method: "execute"},
		{Class: "Plain", Method: "start"},
		{Class: "Plain", Method: "post"},
		{Class: "Plain", Method: "compute"},
	}
	for _, inv := range unrelated {
		if got, ok := Recognize(p, inv); ok {
			t.Errorf("Recognize(%v) = %+v, want unrecognized", inv, got)
		}
	}
}

func TestCallbackRegistry(t *testing.T) {
	for _, name := range []string{OnCreate, OnClick, OnReceive, Run, HandleMessage, DoInBackground} {
		if _, ok := LookupCallback(name); !ok {
			t.Errorf("LookupCallback(%s) missing", name)
		}
	}
	if _, ok := LookupCallback("notACallback"); ok {
		t.Error("bogus callback found")
	}
	if spec, _ := LookupCallback(OnCreate); spec.Kind != LifecycleCallback {
		t.Error("onCreate should be lifecycle")
	}
	if spec, _ := LookupCallback(OnClick); spec.Kind != GUICallback {
		t.Error("onClick should be GUI")
	}
	if spec, _ := LookupCallback(OnReceive); spec.Kind != SystemCallback {
		t.Error("onReceive should be system")
	}
	if spec, _ := LookupCallback(Run); spec.Kind != TaskCallback {
		t.Error("run should be task")
	}
}

func TestLifecycleSequenceOrder(t *testing.T) {
	want := []string{"onCreate", "onStart", "onResume", "onPause", "onStop", "onDestroy"}
	if len(LifecycleSequence) != len(want) {
		t.Fatalf("sequence = %v", LifecycleSequence)
	}
	for i, m := range want {
		if LifecycleSequence[i] != m {
			t.Errorf("LifecycleSequence[%d] = %s, want %s", i, LifecycleSequence[i], m)
		}
		if LifecycleIndex(m) != i {
			t.Errorf("LifecycleIndex(%s) = %d, want %d", m, LifecycleIndex(m), i)
		}
	}
	if LifecycleIndex(OnRestart) != -1 {
		t.Error("onRestart has no linear index")
	}
}
