// Package frontend models the Android Framework for analysis purposes: a
// class hierarchy of framework stubs, the callback registry, and the
// recognizer that classifies framework API invocations (AsyncTask.execute,
// Handler.post, findViewById, registerReceiver, …).
//
// It substitutes for DroidEL (view inflation, reflection) plus
// FlowDroid's predefined callback list in the paper's toolchain.
package frontend

// Well-known framework class names. App models extend or implement these.
const (
	Object        = "java.lang.Object"
	RunnableIface = "java.lang.Runnable"
	ThreadClass   = "java.lang.Thread"
	ExecutorIface = "java.util.concurrent.Executor"
	TimerClass    = "java.util.Timer"

	ContextClass  = "android.content.Context"
	ActivityClass = "android.app.Activity"
	ServiceClass  = "android.app.Service"
	ReceiverClass = "android.content.BroadcastReceiver"
	ProviderClass = "android.content.ContentProvider"
	IntentClass   = "android.content.Intent"
	BundleClass   = "android.os.Bundle"

	AsyncTaskClass     = "android.os.AsyncTask"
	HandlerClass       = "android.os.Handler"
	HandlerThreadClass = "android.os.HandlerThread"
	LooperClass        = "android.os.Looper"
	MessageClass       = "android.os.Message"

	ViewClass        = "android.view.View"
	ButtonClass      = "android.widget.Button"
	TextViewClass    = "android.widget.TextView"
	ListViewClass    = "android.widget.ListView"
	RecycleViewClass = "android.widget.RecycleView"
	AdapterClass     = "android.widget.BaseAdapter"

	OnClickListener        = "android.view.View$OnClickListener"
	OnLongClickListener    = "android.view.View$OnLongClickListener"
	OnScrollListener       = "android.widget.OnScrollListener"
	OnItemClickListener    = "android.widget.OnItemClickListener"
	OnTouchListener        = "android.view.View$OnTouchListener"
	ServiceConnectionIface = "android.content.ServiceConnection"

	SQLiteDatabaseClass = "android.database.sqlite.SQLiteDatabase"
)

// Lifecycle callback names, in activity lifecycle order. The harness
// generator and SHBG lifecycle rule both key on these.
const (
	OnCreate  = "onCreate"
	OnStart   = "onStart"
	OnResume  = "onResume"
	OnPause   = "onPause"
	OnStop    = "onStop"
	OnRestart = "onRestart"
	OnDestroy = "onDestroy"
)

// Service and receiver callbacks.
const (
	OnReceive             = "onReceive"
	OnStartCommand        = "onStartCommand"
	OnBind                = "onBind"
	OnServiceConnected    = "onServiceConnected"
	OnServiceDisconnected = "onServiceDisconnected"
)

// Task/thread/message callbacks.
const (
	Run              = "run"
	DoInBackground   = "doInBackground"
	OnPreExecute     = "onPreExecute"
	OnPostExecute    = "onPostExecute"
	OnProgressUpdate = "onProgressUpdate"
	HandleMessage    = "handleMessage"
)

// GUI callbacks.
const (
	OnClick     = "onClick"
	OnLongClick = "onLongClick"
	OnScroll    = "onScroll"
	OnItemClick = "onItemClick"
	OnTouch     = "onTouch"
)

// Registration / posting APIs recognized on framework receivers.
const (
	FindViewByID           = "findViewById"
	SetOnClickListener     = "setOnClickListener"
	SetOnLongClickListener = "setOnLongClickListener"
	SetOnScrollListener    = "setOnScrollListener"
	SetOnItemClickListener = "setOnItemClickListener"
	SetOnTouchListener     = "setOnTouchListener"
	SetAdapter             = "setAdapter"
	Execute                = "execute"
	Start                  = "start"
	Post                   = "post"
	PostDelayed            = "postDelayed"
	RunOnUiThread          = "runOnUiThread"
	SendMessage            = "sendMessage"
	SendEmptyMessage       = "sendEmptyMessage"
	SendMessageDelayed     = "sendMessageDelayed"
	ObtainMessage          = "obtainMessage"
	Obtain                 = "obtain"
	RegisterReceiver       = "registerReceiver"
	UnregisterReceiver     = "unregisterReceiver"
	StartService           = "startService"
	BindService            = "bindService"
	StartActivity          = "startActivity"
	Schedule               = "schedule"
	GetMainLooper          = "getMainLooper"
	GetLooper              = "getLooper"
	MyLooper               = "myLooper"
)

// setListenerToCallback maps each set*Listener API to the callback method
// it registers on the listener argument.
var setListenerToCallback = map[string]string{
	SetOnClickListener:     OnClick,
	SetOnLongClickListener: OnLongClick,
	SetOnScrollListener:    OnScroll,
	SetOnItemClickListener: OnItemClick,
	SetOnTouchListener:     OnTouch,
}

// ListenerCallback returns the callback method registered by a
// set*Listener API, and whether the method is one.
func ListenerCallback(method string) (string, bool) {
	cb, ok := setListenerToCallback[method]
	return cb, ok
}
