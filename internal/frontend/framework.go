package frontend

import "sierra/internal/ir"

// InstallFramework adds the Android Framework model classes to p. Most
// framework methods are empty stubs recognized by name (action-creating
// APIs like AsyncTask.execute must NOT have bodies: the actions package
// reifies their effects as separate actions). A few framework classes
// carry small real bodies — adapters, recycler views, the SQLite model,
// Thread/Handler plumbing — because the paper's race examples (Figs 1, 2)
// race on framework-internal state reached from app code, and the race
// prioritizer distinguishes app/framework accesses.
func InstallFramework(p *ir.Program) {
	add := func(c *ir.Class) {
		c.Framework = true
		p.AddClass(c)
	}

	add(ir.NewClass(Object, ""))
	add(ir.NewClass(RunnableIface, Object))
	add(ir.NewClass(ExecutorIface, Object))
	add(ir.NewClass(IntentFilterClass, Object))

	// Thread: constructor captures an optional Runnable target; the
	// default run() delegates to it. Subclasses override run() directly.
	{
		c := ir.NewClass(ThreadClass, Object)
		c.Fields = []string{"target"}
		init := ir.NewMethodBuilder("<init>", "r")
		init.Store("this", "target", "r")
		init.Ret("")
		c.AddMethod(init.Build())
		run := ir.NewMethodBuilder(Run)
		run.Load("t", "this", "target")
		nn, _ := run.If("t", ir.CmpNE, ir.NullOperand())
		run.SetBlock(nn)
		run.Call("", "t", RunnableIface, Run)
		run.Ret("")
		c.AddMethod(run.Build())
		stub(c, Start)
		add(c)
	}

	// HandlerThread: a background thread owning its own looper. The
	// constructor materializes the looper eagerly (statically the thread
	// is assumed started before the looper is used), so handler→looper
	// binding works through plain field flow — the in-thread
	// reachability shortcut the paper's §4.4 preprocessing provides.
	{
		c := ir.NewClass(HandlerThreadClass, ThreadClass)
		c.Fields = []string{"looper"}
		init := ir.NewMethodBuilder("<initHT>")
		init.NewObj("l", LooperClass)
		init.Store("this", "looper", "l")
		init.Ret("")
		c.AddMethod(init.Build())
		gl := ir.NewMethodBuilder(GetLooper)
		gl.Load("l", "this", "looper")
		gl.Ret("l")
		c.AddMethod(gl.Build())
		add(c)
	}

	// Timer: schedule(task, delay) is recognized as a delayed post.
	{
		c := ir.NewClass(TimerClass, Object)
		stub(c, Schedule, "task", "delay")
		add(c)
	}

	// AsyncTask: execute is an action-creating stub; the callback
	// methods exist as empty virtuals so dispatch resolves when a
	// subclass omits one.
	{
		c := ir.NewClass(AsyncTaskClass, Object)
		stub(c, Execute)
		stub(c, DoInBackground)
		stub(c, OnPreExecute)
		stub(c, OnPostExecute, "result")
		stub(c, OnProgressUpdate, "values")
		add(c)
	}

	// Looper: obtained statically; carries no analyzable state.
	{
		c := ir.NewClass(LooperClass, Object)
		stubStatic(c, GetMainLooper)
		stubStatic(c, MyLooper)
		add(c)
	}

	// Handler: the looper binding is real state (handler→looper
	// inference reads the "looper" field's points-to set).
	{
		c := ir.NewClass(HandlerClass, Object)
		c.Fields = []string{"looper"}
		init := ir.NewMethodBuilder("<init>", "l")
		init.Store("this", "looper", "l")
		init.Ret("")
		c.AddMethod(init.Build())
		stub(c, Post, "r")
		stub(c, PostDelayed, "r", "delay")
		stub(c, SendMessage, "m")
		stub(c, SendEmptyMessage, "what")
		stub(c, SendMessageDelayed, "m", "delay")
		stub(c, HandleMessage, "m")
		// obtainMessage allocates a Message bound to this handler.
		om := ir.NewMethodBuilder(ObtainMessage)
		om.NewObj("m", MessageClass)
		om.Store("m", "target", "this")
		om.Ret("m")
		c.AddMethod(om.Build())
		add(c)
	}

	// Message: what/obj are data the on-demand constant propagation
	// inspects; target is the owning handler.
	{
		c := ir.NewClass(MessageClass, Object)
		c.Fields = []string{"what", "obj", "target"}
		ob := ir.NewStaticMethodBuilder(Obtain)
		ob.NewObj("m", MessageClass)
		ob.Ret("m")
		c.AddMethod(ob.Build())
		add(c)
	}

	// Context and the component classes.
	{
		c := ir.NewClass(ContextClass, Object)
		stub(c, RegisterReceiver, "recv", "filter")
		stub(c, UnregisterReceiver, "recv")
		stub(c, StartService, "intent")
		stub(c, BindService, "intent", "conn")
		stub(c, StartActivity, "intent")
		add(c)
	}
	{
		c := ir.NewClass(ActivityClass, ContextClass)
		for _, lc := range []string{OnCreate, OnStart, OnResume, OnPause, OnStop, OnRestart, OnDestroy} {
			stub(c, lc)
		}
		stub(c, FindViewByID, "id")
		stub(c, RunOnUiThread, "r")
		stub(c, SetAdapter, "a")
		add(c)
	}
	{
		c := ir.NewClass(ServiceClass, ContextClass)
		stub(c, OnCreate)
		stub(c, OnStartCommand, "intent")
		stub(c, OnBind, "intent")
		stub(c, OnDestroy)
		add(c)
	}
	{
		c := ir.NewClass(ReceiverClass, Object)
		stub(c, OnReceive, "ctx", "intent")
		add(c)
	}
	add(ir.NewClass(ProviderClass, Object))

	// Intent / Bundle: enough structure for getExtras()-style flows.
	{
		c := ir.NewClass(IntentClass, Object)
		c.Fields = []string{"extras", "action"}
		ge := ir.NewMethodBuilder("getExtras")
		ge.Load("b", "this", "extras")
		ge.Ret("b")
		c.AddMethod(ge.Build())
		pe := ir.NewMethodBuilder("putExtra", "b")
		pe.Store("this", "extras", "b")
		pe.Ret("")
		c.AddMethod(pe.Build())
		add(c)
	}
	add(ir.NewClass(BundleClass, Object))

	// Views and listeners.
	{
		c := ir.NewClass(ViewClass, Object)
		stub(c, FindViewByID, "id")
		stub(c, SetOnClickListener, "l")
		stub(c, SetOnLongClickListener, "l")
		stub(c, SetOnScrollListener, "l")
		stub(c, SetOnItemClickListener, "l")
		stub(c, SetOnTouchListener, "l")
		stub(c, Post, "r")
		stub(c, PostDelayed, "r", "delay")
		stub(c, "invalidate")
		stub(c, "setText", "t")
		add(c)
	}
	add(ir.NewClass(ButtonClass, ViewClass))
	add(ir.NewClass(TextViewClass, ViewClass))
	add(ir.NewClass(ListViewClass, ViewClass))
	for _, itf := range []string{OnClickListener, OnLongClickListener, OnScrollListener, OnItemClickListener, OnTouchListener, ServiceConnectionIface} {
		add(ir.NewClass(itf, Object))
	}

	// BaseAdapter: mData/mCacheValid are the framework-internal state the
	// Fig 1 race touches (background add vs main-thread view lookup).
	{
		c := ir.NewClass(AdapterClass, Object)
		c.Fields = []string{"mData", "mCacheValid"}
		addM := ir.NewMethodBuilder("add", "item")
		addM.Store("this", "mData", "item")
		addM.Ret("")
		c.AddMethod(addM.Build())
		nd := ir.NewMethodBuilder("notifyDataSetChanged")
		nd.Bool("valid", true).Store("this", "mCacheValid", "valid")
		nd.Ret("")
		c.AddMethod(nd.Build())
		gi := ir.NewMethodBuilder("getItem", "pos")
		gi.Load("d", "this", "mData")
		gi.Ret("d")
		c.AddMethod(gi.Build())
		add(c)
	}

	// RecycleView: caches view positions against its adapter — the other
	// half of the Fig 1 race.
	{
		c := ir.NewClass(RecycleViewClass, ViewClass)
		c.Fields = []string{"mAdapter", "mCachedPos"}
		sa := ir.NewMethodBuilder(SetAdapter, "a")
		sa.Store("this", "mAdapter", "a")
		sa.Ret("")
		c.AddMethod(sa.Build())
		gv := ir.NewMethodBuilder("getViewForPosition", "pos")
		gv.Load("a", "this", "mAdapter")
		gv.Load("d", "a", AdapterField("mData"))
		gv.Load("v", "a", AdapterField("mCacheValid"))
		gv.Store("this", "mCachedPos", "pos")
		gv.Ret("d")
		c.AddMethod(gv.Build())
		add(c)
	}

	// SQLiteDatabase: open/close/update race on mOpen (Fig 2).
	{
		c := ir.NewClass(SQLiteDatabaseClass, Object)
		c.Fields = []string{"mOpen"}
		op := ir.NewMethodBuilder("open")
		op.Bool("t", true).Store("this", "mOpen", "t")
		op.Ret("")
		c.AddMethod(op.Build())
		cl := ir.NewMethodBuilder("close")
		cl.Bool("f", false).Store("this", "mOpen", "f")
		cl.Ret("")
		c.AddMethod(cl.Build())
		up := ir.NewMethodBuilder("update", "data")
		up.Load("o", "this", "mOpen")
		up.Ret("")
		c.AddMethod(up.Build())
		add(c)
	}
}

// IntentFilterClass is declared here (not names.go) because it only
// appears as a plumbing type.
const IntentFilterClass = "android.content.IntentFilter"

// AdapterField returns the adapter-internal field name; a tiny
// indirection so tests and examples reference framework state uniformly.
func AdapterField(name string) string { return name }

// stub attaches an empty virtual method (single void return).
func stub(c *ir.Class, name string, params ...string) {
	b := ir.NewMethodBuilder(name, params...)
	b.Ret("")
	c.AddMethod(b.Build())
}

// stubStatic attaches an empty static method.
func stubStatic(c *ir.Class, name string, params ...string) {
	b := ir.NewStaticMethodBuilder(name, params...)
	b.Ret("")
	c.AddMethod(b.Build())
}

// IsActivity reports whether cls is an Activity subclass.
func IsActivity(p *ir.Program, cls string) bool { return p.IsSubtype(cls, ActivityClass) }

// IsService reports whether cls is a Service subclass.
func IsService(p *ir.Program, cls string) bool { return p.IsSubtype(cls, ServiceClass) }

// IsReceiver reports whether cls is a BroadcastReceiver subclass.
func IsReceiver(p *ir.Program, cls string) bool { return p.IsSubtype(cls, ReceiverClass) }

// IsAsyncTask reports whether cls is an AsyncTask subclass.
func IsAsyncTask(p *ir.Program, cls string) bool { return p.IsSubtype(cls, AsyncTaskClass) }

// IsThread reports whether cls is a Thread subclass.
func IsThread(p *ir.Program, cls string) bool { return p.IsSubtype(cls, ThreadClass) }

// IsRunnable reports whether cls implements Runnable.
func IsRunnable(p *ir.Program, cls string) bool { return p.IsSubtype(cls, RunnableIface) }

// IsHandler reports whether cls is a Handler subclass.
func IsHandler(p *ir.Program, cls string) bool { return p.IsSubtype(cls, HandlerClass) }

// IsView reports whether cls is a View subclass.
func IsView(p *ir.Program, cls string) bool { return p.IsSubtype(cls, ViewClass) }
