package frontend

import "sierra/internal/ir"

// APIKind classifies framework API invocations with concurrency or GUI
// semantics. Everything else is APINone and analyzed as a plain call.
type APIKind int

const (
	APINone APIKind = iota
	// APIFindViewByID resolves an inflated view by constant id.
	APIFindViewByID
	// APISetListener registers a GUI callback on a view.
	APISetListener
	// APIExecuteAsyncTask spawns doInBackground (background) and
	// onPostExecute (main looper) actions.
	APIExecuteAsyncTask
	// APIThreadStart spawns the thread's run() as a background action.
	APIThreadStart
	// APIExecutorExecute runs the Runnable argument on a background pool.
	APIExecutorExecute
	// APIPostRunnable posts the Runnable argument to a looper.
	APIPostRunnable
	// APISendMessage posts a message; the receiver handler's
	// handleMessage is the action.
	APISendMessage
	// APIRegisterReceiver / APIUnregisterReceiver gate onReceive.
	APIRegisterReceiver
	APIUnregisterReceiver
	// APIStartService / APIBindService gate service callbacks.
	APIStartService
	APIBindService
	// APIStartActivity transitions to another activity.
	APIStartActivity
	// APITimerSchedule runs a task on the timer's own thread.
	APITimerSchedule
)

// PostTarget says which looper/thread a spawned action runs on.
type PostTarget int

const (
	// TargetNone: not a posting API.
	TargetNone PostTarget = iota
	// TargetMain: the main (UI) looper.
	TargetMain
	// TargetHandlerLooper: the looper the receiver Handler is bound to.
	TargetHandlerLooper
	// TargetBackground: a fresh background thread (no looper atomicity
	// with respect to the main thread).
	TargetBackground
)

// APICall is the classification of one Invoke.
type APICall struct {
	Kind APIKind
	// Target is where the spawned action runs, for spawning kinds.
	Target PostTarget
	// Callback is the callback method a SetListener call registers.
	Callback string
	// Delayed marks postDelayed/sendMessageDelayed/schedule.
	Delayed bool
	// RunnableArg / MessageArg / ListenerArg index into inv.Args for the
	// relevant argument (-1 when absent).
	Arg int
}

// Recognize classifies inv against the framework API surface. The check
// is receiver-type based (static type, widened by subtype tests), which
// mirrors how the paper's implementation hooks WALA call sites on
// framework signatures.
func Recognize(p *ir.Program, inv *ir.Invoke) (APICall, bool) {
	cls := inv.Class
	switch inv.Method {
	case FindViewByID:
		if p.IsSubtype(cls, ActivityClass) || p.IsSubtype(cls, ViewClass) {
			return APICall{Kind: APIFindViewByID, Arg: 0}, true
		}
	case Execute:
		if p.IsSubtype(cls, AsyncTaskClass) {
			return APICall{Kind: APIExecuteAsyncTask, Target: TargetBackground, Arg: -1}, true
		}
		if p.IsSubtype(cls, ExecutorIface) {
			return APICall{Kind: APIExecutorExecute, Target: TargetBackground, Arg: 0}, true
		}
	case Start:
		if p.IsSubtype(cls, ThreadClass) {
			return APICall{Kind: APIThreadStart, Target: TargetBackground, Arg: -1}, true
		}
	case Post, PostDelayed:
		delayed := inv.Method == PostDelayed
		if p.IsSubtype(cls, HandlerClass) {
			return APICall{Kind: APIPostRunnable, Target: TargetHandlerLooper, Delayed: delayed, Arg: 0}, true
		}
		if p.IsSubtype(cls, ViewClass) || p.IsSubtype(cls, ActivityClass) {
			return APICall{Kind: APIPostRunnable, Target: TargetMain, Delayed: delayed, Arg: 0}, true
		}
	case RunOnUiThread:
		if p.IsSubtype(cls, ActivityClass) {
			return APICall{Kind: APIPostRunnable, Target: TargetMain, Arg: 0}, true
		}
	case SendMessage, SendEmptyMessage, SendMessageDelayed:
		if p.IsSubtype(cls, HandlerClass) {
			return APICall{
				Kind:    APISendMessage,
				Target:  TargetHandlerLooper,
				Delayed: inv.Method == SendMessageDelayed,
				Arg:     0,
			}, true
		}
	case RegisterReceiver:
		if p.IsSubtype(cls, ContextClass) {
			return APICall{Kind: APIRegisterReceiver, Arg: 0}, true
		}
	case UnregisterReceiver:
		if p.IsSubtype(cls, ContextClass) {
			return APICall{Kind: APIUnregisterReceiver, Arg: 0}, true
		}
	case StartService:
		if p.IsSubtype(cls, ContextClass) {
			return APICall{Kind: APIStartService, Arg: 0}, true
		}
	case BindService:
		if p.IsSubtype(cls, ContextClass) {
			return APICall{Kind: APIBindService, Arg: 1}, true
		}
	case StartActivity:
		if p.IsSubtype(cls, ContextClass) {
			return APICall{Kind: APIStartActivity, Arg: 0}, true
		}
	case Schedule:
		if p.IsSubtype(cls, TimerClass) {
			return APICall{Kind: APITimerSchedule, Target: TargetBackground, Delayed: true, Arg: 0}, true
		}
	}
	if cb, ok := ListenerCallback(inv.Method); ok {
		if p.IsSubtype(cls, ViewClass) {
			return APICall{Kind: APISetListener, Callback: cb, Arg: 0}, true
		}
	}
	return APICall{Kind: APINone, Arg: -1}, false
}

// IsActionSpawn reports whether the API creates a new action (SHBG node)
// when invoked.
func (c APICall) IsActionSpawn() bool {
	switch c.Kind {
	case APIExecuteAsyncTask, APIThreadStart, APIExecutorExecute, APIPostRunnable, APISendMessage, APITimerSchedule:
		return true
	}
	return false
}
