package frontend

// CallbackKind classifies callbacks the way the paper's Table 1
// classifies actions.
type CallbackKind int

const (
	// LifecycleCallback is an Activity/Service lifecycle method.
	LifecycleCallback CallbackKind = iota
	// GUICallback is a user-input handler (click, scroll, …).
	GUICallback
	// SystemCallback is invoked by the system (broadcasts, service
	// connections).
	SystemCallback
	// TaskCallback is a thread/task/message body (run, doInBackground,
	// onPostExecute, handleMessage).
	TaskCallback
)

func (k CallbackKind) String() string {
	return [...]string{"lifecycle", "gui", "system", "task"}[k]
}

// CallbackSpec describes one known framework callback: its method name,
// the framework type that declares it, and its kind. This registry plays
// the role of FlowDroid's predefined callback list in the paper.
type CallbackSpec struct {
	Method   string
	Declarer string
	Kind     CallbackKind
}

// Registry is the full callback list. Harness generation seeds its
// fixpoint from it; anything not here is plain code.
var Registry = []CallbackSpec{
	{OnCreate, ActivityClass, LifecycleCallback},
	{OnStart, ActivityClass, LifecycleCallback},
	{OnResume, ActivityClass, LifecycleCallback},
	{OnPause, ActivityClass, LifecycleCallback},
	{OnStop, ActivityClass, LifecycleCallback},
	{OnRestart, ActivityClass, LifecycleCallback},
	{OnDestroy, ActivityClass, LifecycleCallback},

	{OnClick, OnClickListener, GUICallback},
	{OnLongClick, OnLongClickListener, GUICallback},
	{OnScroll, OnScrollListener, GUICallback},
	{OnItemClick, OnItemClickListener, GUICallback},
	{OnTouch, OnTouchListener, GUICallback},

	{OnReceive, ReceiverClass, SystemCallback},
	{OnStartCommand, ServiceClass, SystemCallback},
	{OnBind, ServiceClass, SystemCallback},
	{OnServiceConnected, ServiceConnectionIface, SystemCallback},
	{OnServiceDisconnected, ServiceConnectionIface, SystemCallback},

	{Run, RunnableIface, TaskCallback},
	{DoInBackground, AsyncTaskClass, TaskCallback},
	{OnPreExecute, AsyncTaskClass, TaskCallback},
	{OnPostExecute, AsyncTaskClass, TaskCallback},
	{OnProgressUpdate, AsyncTaskClass, TaskCallback},
	{HandleMessage, HandlerClass, TaskCallback},
}

// callbackByMethod indexes Registry.
var callbackByMethod = func() map[string]CallbackSpec {
	m := make(map[string]CallbackSpec, len(Registry))
	for _, s := range Registry {
		m[s.Method] = s
	}
	return m
}()

// LookupCallback returns the spec for a callback method name.
func LookupCallback(method string) (CallbackSpec, bool) {
	s, ok := callbackByMethod[method]
	return s, ok
}

// LifecycleSequence is the activity lifecycle in invocation order for a
// full visible pass: create → start → resume … pause → stop → destroy.
// The harness generator mirrors it (Fig 4) and the SHBG lifecycle rule
// (Fig 5) orders the duplicated onStart/onResume instances around the
// pause/stop cycles.
var LifecycleSequence = []string{OnCreate, OnStart, OnResume, OnPause, OnStop, OnDestroy}

// IsLifecycleName reports whether method is an Activity lifecycle
// callback name (including onRestart).
func IsLifecycleName(method string) bool {
	switch method {
	case OnCreate, OnStart, OnResume, OnPause, OnStop, OnRestart, OnDestroy:
		return true
	}
	return false
}

// LifecycleIndex returns the position of a lifecycle callback in the
// canonical sequence, or -1.
func LifecycleIndex(method string) int {
	for i, m := range LifecycleSequence {
		if m == method {
			return i
		}
	}
	if method == OnRestart {
		return -1 // onRestart sits on the stop→start back edge
	}
	return -1
}
