package harness

import (
	"testing"

	"sierra/internal/apk"
	"sierra/internal/cfg"
	"sierra/internal/corpus"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

func TestGenerateNewsAppHarness(t *testing.T) {
	app := corpus.NewsApp()
	hs := Generate(app)
	if len(hs) != 1 {
		t.Fatalf("harnesses = %d, want 1", len(hs))
	}
	h := hs[0]
	if h.Activity != "NewsActivity" || h.Method == nil {
		t.Fatalf("bad harness %+v", h)
	}
	if !IsSynthetic(h.Method.Class.Name) {
		t.Errorf("harness class %s not marked synthetic", h.Method.Class.Name)
	}
	// Lifecycle skeleton: 7 distinct callbacks, onStart and onResume twice.
	counts := map[string]int{}
	for _, s := range h.Lifecycle {
		counts[s.Callback]++
		if !s.Pos.Valid() {
			t.Errorf("site %v has invalid pos", s)
		}
	}
	want := map[string]int{
		"onCreate": 1, "onStart": 2, "onResume": 2,
		"onPause": 1, "onStop": 1, "onRestart": 1, "onDestroy": 1,
	}
	for cb, n := range want {
		if counts[cb] != n {
			t.Errorf("lifecycle %s sites = %d, want %d", cb, counts[cb], n)
		}
	}
	// GUI discovery: the activity registers onClick (button) and
	// onScroll (recycler) in onCreate.
	cbs := map[string]bool{}
	for _, slot := range h.GUI {
		cbs[slot.Callback] = true
		if !slot.Pos.Valid() {
			t.Errorf("slot %s has invalid pos", slot.Callback)
		}
		if slot.Parent != -1 {
			t.Errorf("slot %s should be top-level", slot.Callback)
		}
		if !slot.BindActivity {
			t.Errorf("slot %s registered with this, should bind activity", slot.Callback)
		}
		if len(slot.Classes) != 1 || slot.Classes[0] != "NewsActivity" {
			t.Errorf("slot %s classes = %v", slot.Callback, slot.Classes)
		}
	}
	if !cbs["onClick"] || !cbs["onScroll"] {
		t.Fatalf("discovered callbacks = %v, want onClick and onScroll", cbs)
	}
}

func TestHarnessLifecycleDominance(t *testing.T) {
	app := corpus.SudokuTimerApp()
	h := Generate(app)[0]
	dom := cfg.MethodDominators(h.Method)

	site := func(cb string, n int) ir.Pos {
		s, ok := h.Site(cb, n)
		if !ok {
			t.Fatalf("missing site %s %d", cb, n)
		}
		return s.Pos
	}
	mustDom := func(a, b ir.Pos, desc string) {
		t.Helper()
		if !cfg.StmtDominates(dom, a, b) {
			t.Errorf("%s: expected dominance", desc)
		}
	}
	mustNotDom := func(a, b ir.Pos, desc string) {
		t.Helper()
		if cfg.StmtDominates(dom, a, b) {
			t.Errorf("%s: unexpected dominance", desc)
		}
	}

	// Fig 5 relations via harness CFG dominance.
	mustDom(site("onCreate", 1), site("onDestroy", 1), "onCreate ≺ onDestroy")
	mustDom(site("onStart", 1), site("onStop", 1), `onStart "1" ≺ onStop`)
	mustDom(site("onResume", 1), site("onPause", 1), `onResume "1" ≺ onPause`)
	mustDom(site("onPause", 1), site("onResume", 2), `onPause ≺ onResume "2"`)
	mustDom(site("onStop", 1), site("onStart", 2), `onStop ≺ onStart "2"`)
	mustNotDom(site("onResume", 2), site("onPause", 1), `onResume "2" must not dominate onPause`)
	mustNotDom(site("onStart", 2), site("onStop", 1), `onStart "2" must not dominate onStop`)
	mustNotDom(site("onDestroy", 1), site("onCreate", 1), "onDestroy must not dominate onCreate")
}

func TestHarnessGUIDominatedByOnResume(t *testing.T) {
	app := corpus.NewsApp()
	h := Generate(app)[0]
	dom := cfg.MethodDominators(h.Method)
	onResume1, _ := h.Site("onResume", 1)
	for _, slot := range h.GUI {
		if !cfg.StmtDominates(dom, onResume1.Pos, slot.Pos) {
			t.Errorf("onResume should dominate GUI slot %s", slot.Callback)
		}
		if cfg.StmtDominates(dom, slot.Pos, onResume1.Pos) {
			t.Errorf("GUI slot %s must not dominate onResume", slot.Callback)
		}
	}
	// GUI slots are mutually unordered (separate switch arms).
	if len(h.GUI) >= 2 {
		a, b := h.GUI[0].Pos, h.GUI[1].Pos
		if cfg.StmtDominates(dom, a, b) || cfg.StmtDominates(dom, b, a) {
			t.Error("top-level GUI slots must be mutually unordered")
		}
	}
}

// nestedApp registers a second listener inside the first callback, which
// must nest the slots (Fig 6's onClick2 ≺ onClick3).
func nestedRegistrationApp() *ir.Program {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	act := ir.NewClass("A", frontend.ActivityClass, frontend.OnClickListener)
	act.Fields = []string{"btn2"}
	b := ir.NewMethodBuilder(frontend.OnCreate)
	b.Int("id", 1)
	b.Call("btn", "this", "A", frontend.FindViewByID, "id")
	b.Call("", "btn", frontend.ViewClass, frontend.SetOnClickListener, "this")
	b.Ret("")
	act.AddMethod(b.Build())
	cb := ir.NewMethodBuilder(frontend.OnClick, "v")
	cb.Int("id2", 2)
	cb.Call("btn2", "this", "A", frontend.FindViewByID, "id2")
	cb.NewObj("l2", "Inner")
	cb.Call("", "btn2", frontend.ViewClass, frontend.SetOnLongClickListener, "l2")
	cb.Ret("")
	act.AddMethod(cb.Build())
	p.AddClass(act)

	inner := ir.NewClass("Inner", frontend.Object, frontend.OnLongClickListener)
	lb := ir.NewMethodBuilder(frontend.OnLongClick, "v")
	lb.Ret("")
	inner.AddMethod(lb.Build())
	p.AddClass(inner)
	return p
}

func TestNestedRegistrationNestsSlots(t *testing.T) {
	p := nestedRegistrationApp()
	p.Finalize()
	app := appFor(p, "A")
	h := Generate(app)[0]

	var click, long *GUISlot
	for _, s := range h.GUI {
		switch s.Callback {
		case frontend.OnClick:
			click = s
		case frontend.OnLongClick:
			long = s
		}
	}
	if click == nil || long == nil {
		t.Fatalf("slots missing: %+v", h.GUI)
	}
	if click.Parent != -1 {
		t.Errorf("onClick should be top-level, parent = %d", click.Parent)
	}
	wantParent := -1
	for i, s := range h.GUI {
		if s == click {
			wantParent = i
		}
	}
	if long.Parent != wantParent {
		t.Errorf("onLongClick parent = %d, want %d (the onClick slot)", long.Parent, wantParent)
	}
	if len(long.Classes) != 1 || long.Classes[0] != "Inner" {
		t.Errorf("onLongClick classes = %v, want [Inner]", long.Classes)
	}
	// Nesting shows up as dominance in the harness CFG.
	dom := cfg.MethodDominators(h.Method)
	if !cfg.StmtDominates(dom, click.Pos, long.Pos) {
		t.Error("parent slot invocation should dominate nested slot invocation")
	}
}

func TestXMLCallbacksBecomeSlots(t *testing.T) {
	app := corpus.NewsApp()
	// Declare an XML onClick pointing at an activity method.
	mb := ir.NewMethodBuilder("onMenuClick", "v")
	mb.Ret("")
	app.Program.Class("NewsActivity").AddMethod(mb.Build())
	app.Layouts["main"].Root.Children[1].XMLCallbacks = map[string]string{"onClick": "onMenuClick"}
	h := Generate(app)[0]
	found := false
	for _, s := range h.GUI {
		if s.Callback == "onMenuClick" && s.FromXML {
			found = true
			if !s.BindActivity {
				t.Error("XML slot should bind the activity")
			}
		}
	}
	if !found {
		t.Fatalf("XML callback slot missing: %+v", h.GUI)
	}
}

func TestMultipleActivitiesGetSeparateHarnesses(t *testing.T) {
	app := corpus.DatabaseApp()
	p := app.Program
	second := ir.NewClass("SettingsActivity", frontend.ActivityClass)
	sb := ir.NewMethodBuilder(frontend.OnCreate)
	sb.Ret("")
	second.AddMethod(sb.Build())
	p.AddClass(second)
	app.Manifest.Activities = append(app.Manifest.Activities,
		apk.Component{Class: "SettingsActivity"})
	hs := Generate(app)
	if len(hs) != 2 {
		t.Fatalf("harnesses = %d, want 2", len(hs))
	}
	if hs[0].Method.Class.Name == hs[1].Method.Class.Name {
		t.Error("harness classes must be distinct")
	}
}

// appFor wraps a program as a single-activity app for tests.
func appFor(p *ir.Program, activity string) *apk.App {
	return &apk.App{
		Name:    "test",
		Program: p,
		Manifest: apk.Manifest{
			Activities: []apk.Component{{Class: activity}},
		},
		Layouts: map[string]*apk.Layout{},
	}
}
