// Package harness generates per-activity analysis entrypoints (Fig 4 in
// the paper). Android apps have no main(); the harness mirrors the
// Activity lifecycle state machine and the GUI model, giving the static
// analysis an entrypoint and giving the SHBG the control-flow structure
// its dominance-based HB rules (Figs 5, 6) run on.
//
// Callback discovery is a fixpoint: starting from lifecycle callbacks,
// reachable code is scanned for listener registrations (and XML-declared
// callbacks are added); each discovered callback gets a synthetic
// invocation site, which can reveal more registrations, until no new
// callbacks appear.
package harness

import (
	"fmt"
	"sort"

	"sierra/internal/apk"
	"sierra/internal/callgraph"
	"sierra/internal/frontend"
	"sierra/internal/ir"
	"sierra/internal/obs"
)

// ClassPrefix marks synthetic harness classes in the program.
const ClassPrefix = "sierra.harness."

// Harness is the generated entrypoint for one activity.
type Harness struct {
	// Activity is the activity class this harness drives.
	Activity string
	// Method is the synthetic main method (attached to a ClassPrefix
	// class registered in the app's program).
	Method *ir.Method
	// ActivityVar is the harness local holding the activity instance.
	ActivityVar string
	// Lifecycle lists the lifecycle call sites in harness CFG order.
	Lifecycle []LifecycleSite
	// GUI lists the synthetic GUI callback invocation slots.
	GUI []*GUISlot

	prog *ir.Program
}

// LifecycleSite is one lifecycle callback invocation in the harness.
// Instance distinguishes the duplicated callbacks the lifecycle model
// needs (onStart "1" on the create path vs onStart "2" on the restart
// path, per Fig 5).
type LifecycleSite struct {
	Callback string
	Instance int
	Pos      ir.Pos
}

// GUISlot is a synthetic invocation of a discovered GUI callback.
type GUISlot struct {
	// Callback is the listener method (onClick, onScroll, …).
	Callback string
	// Declarer is the listener interface declaring the callback.
	Declarer string
	// Classes are the candidate listener implementations.
	Classes []string
	// RecvVar is the harness local standing for the listener object; the
	// pointer analysis seeds it from Bindings (and from the activity
	// itself when BindActivity is set).
	RecvVar string
	// Pos is the synthetic invocation site in the harness method.
	Pos ir.Pos
	// Bindings seed RecvVar's points-to set from registration-site
	// arguments.
	Bindings []Binding
	// BindActivity additionally seeds RecvVar with the activity object
	// ("this"-registered listeners and XML callbacks).
	BindActivity bool
	// Parent indexes the GUI slot whose callback registered this one
	// (-1 for top-level slots); the harness nests the invocation under
	// the parent's, which is what induces onClick2 ≺ onClick3 edges.
	Parent int
	// FromXML marks layout-declared callbacks.
	FromXML bool
}

// Binding names a registration-site argument whose points-to set flows
// into a GUI slot's receiver variable.
type Binding struct {
	SrcMethod *ir.Method
	SrcVar    string
}

// Generate builds one harness per manifest activity and registers the
// synthetic classes in the app's program (finalizing it again).
func Generate(app *apk.App) []*Harness {
	return GenerateTraced(app, nil)
}

// GenerateTraced is Generate with observability: it publishes the
// harness.* counters (emitted harnesses, lifecycle sites, GUI slots,
// synthetic statements) into the trace (nil Trace = no-op).
func GenerateTraced(app *apk.App, tr *obs.Trace) []*Harness {
	var out []*Harness
	for _, comp := range app.Manifest.Activities {
		out = append(out, generateOne(app, comp))
	}
	app.Program.Finalize()
	// Positions exist only after Finalize; fill the site/slot Pos fields.
	for _, h := range out {
		h.locateSites()
	}
	if tr != nil {
		lifecycle, gui, stmts := Stats(out)
		tr.Count("harness.emitted", int64(len(out)))
		tr.Count("harness.lifecycle_sites", int64(lifecycle))
		tr.Count("harness.gui_slots", int64(gui))
		tr.Count("harness.synthetic_stmts", int64(stmts))
	}
	return out
}

// Stats sums the generated harnesses' lifecycle sites, GUI slots, and
// synthetic statements (the harness methods' statement count).
func Stats(hs []*Harness) (lifecycleSites, guiSlots, syntheticStmts int) {
	for _, h := range hs {
		lifecycleSites += len(h.Lifecycle)
		guiSlots += len(h.GUI)
		for _, blk := range h.Method.Blocks {
			syntheticStmts += len(blk.Stmts)
		}
	}
	return lifecycleSites, guiSlots, syntheticStmts
}

// generateOne builds the harness for a single activity.
func generateOne(app *apk.App, comp apk.Component) *Harness {
	p := app.Program
	h := &Harness{Activity: comp.Class, ActivityVar: "act", prog: p}
	h.GUI = discoverSlots(app, comp)

	b := ir.NewMethodBuilder("main")
	// a = new Activity; onCreate; onStart "1"; onResume "1"
	b.NewObj(h.ActivityVar, comp.Class)
	call := func(cb string) {
		b.Call("", h.ActivityVar, comp.Class, cb)
	}
	call(frontend.OnCreate)
	call(frontend.OnStart)
	call(frontend.OnResume)
	loopHead := b.GotoNew()

	// loop: while (*) { switch (*) { gui slots } }
	guiEntry, after := b.IfStar()
	b.SetBlock(guiEntry)
	emitSlots(b, h, topLevel(h.GUI), loopHead)

	// after the loop: onPause; then either onResume "2" (back to loop) or
	// onStop; after onStop either onRestart+onStart "2" (back) or
	// onDestroy.
	b.SetBlock(after)
	call(frontend.OnPause)
	resumeB, stopB := b.IfStar()
	b.SetBlock(resumeB)
	call(frontend.OnResume)
	b.Goto(loopHead)
	b.SetBlock(stopB)
	call(frontend.OnStop)
	restartB, destroyB := b.IfStar()
	b.SetBlock(restartB)
	call(frontend.OnRestart)
	call(frontend.OnStart)
	b.Goto(loopHead)
	b.SetBlock(destroyB)
	call(frontend.OnDestroy)
	b.Ret("")

	cls := ir.NewClass(ClassPrefix+comp.Class, frontend.Object)
	cls.AddMethod(b.Build())
	p.AddClass(cls)
	h.Method = cls.Methods["main"]
	return h
}

// topLevel returns the indices of slots with no parent.
func topLevel(slots []*GUISlot) []int {
	var out []int
	for i, s := range slots {
		if s.Parent < 0 {
			out = append(out, i)
		}
	}
	return out
}

// children returns the indices of slots whose parent is idx.
func children(slots []*GUISlot, idx int) []int {
	var out []int
	for i, s := range slots {
		if s.Parent == idx {
			out = append(out, i)
		}
	}
	return out
}

// emitSlots emits a nondeterministic switch over the given slots. Each
// arm invokes the slot's callback, then nests its children under a
// further nondeterministic switch, then jumps back to loopHead.
func emitSlots(b *ir.MethodBuilder, h *Harness, idxs []int, loopHead *ir.Block) {
	for _, i := range idxs {
		slot := h.GUI[i]
		arm, next := b.IfStar()
		b.SetBlock(arm)
		emitInvoke(b, h, i)
		kids := children(h.GUI, i)
		if len(kids) > 0 {
			kidEntry, done := b.IfStar()
			b.SetBlock(kidEntry)
			emitSlots(b, h, kids, loopHead)
			b.SetBlock(done)
		}
		b.Goto(loopHead)
		b.SetBlock(next)
		_ = slot
	}
	b.Goto(loopHead)
}

// IsSynthetic reports whether cls is a generated harness class.
func IsSynthetic(cls string) bool {
	return len(cls) >= len(ClassPrefix) && cls[:len(ClassPrefix)] == ClassPrefix
}

// emitInvoke emits the synthetic callback invocation for slot i. The
// receiver variable is never assigned in the harness; the pointer
// analysis seeds it from the slot's bindings.
func emitInvoke(b *ir.MethodBuilder, h *Harness, i int) {
	slot := h.GUI[i]
	slot.RecvVar = fmt.Sprintf("gui$%d", i)
	// Parameter count from any candidate implementation (null-padded).
	nargs := 0
	args := []string{}
	for range slot.paramsOf(h) {
		v := fmt.Sprintf("gui$%d$arg%d", i, nargs)
		b.Null(v)
		args = append(args, v)
		nargs++
	}
	b.Call("", slot.RecvVar, slot.Declarer, slot.Callback, args...)
}

// paramsOf returns the parameter list of the first resolvable candidate
// implementation of the slot's callback.
func (s *GUISlot) paramsOf(h *Harness) []string {
	for _, cls := range s.Classes {
		if m := h.prog.ResolveMethod(cls, s.Callback); m != nil {
			return m.Params
		}
	}
	return nil
}

// locateSites records the Pos of every lifecycle call and GUI invocation
// now that the program is finalized.
func (h *Harness) locateSites() {
	counts := map[string]int{}
	for _, blk := range h.Method.Blocks {
		for _, s := range blk.Stmts {
			inv, ok := s.(*ir.Invoke)
			if !ok {
				continue
			}
			if inv.Recv == h.ActivityVar && frontend.IsLifecycleName(inv.Method) {
				counts[inv.Method]++
				h.Lifecycle = append(h.Lifecycle, LifecycleSite{
					Callback: inv.Method,
					Instance: counts[inv.Method],
					Pos:      inv.Pos(),
				})
				continue
			}
			for _, slot := range h.GUI {
				if inv.Recv == slot.RecvVar && inv.Method == slot.Callback {
					slot.Pos = inv.Pos()
				}
			}
		}
	}
}

// Site returns the lifecycle site for callback cb, instance n (1-based).
func (h *Harness) Site(cb string, n int) (LifecycleSite, bool) {
	for _, s := range h.Lifecycle {
		if s.Callback == cb && s.Instance == n {
			return s, true
		}
	}
	return LifecycleSite{}, false
}

// discoverSlots runs the registration-discovery fixpoint for one
// activity and returns the GUI slots.
func discoverSlots(app *apk.App, comp apk.Component) []*GUISlot {
	p := app.Program
	var slots []*GUISlot
	seen := map[string]bool{} // dedup key

	// XML-declared callbacks come first ("they are unique" — §3.2).
	if comp.Layout != "" {
		if l := app.Layouts[comp.Layout]; l != nil {
			for _, v := range l.AllViews() {
				kinds := make([]string, 0, len(v.XMLCallbacks))
				for kind := range v.XMLCallbacks {
					kinds = append(kinds, kind)
				}
				sort.Strings(kinds)
				for _, kind := range kinds {
					target := v.XMLCallbacks[kind]
					key := "xml:" + kind + ":" + target
					if seen[key] || p.ResolveMethod(comp.Class, target) == nil {
						continue
					}
					seen[key] = true
					slots = append(slots, &GUISlot{
						Callback:     target,
						Declarer:     comp.Class,
						Classes:      []string{comp.Class},
						BindActivity: true,
						Parent:       -1,
						FromXML:      true,
					})
				}
			}
		}
	}

	// Fixpoint over dynamically-registered listeners.
	for {
		entries, entryOf := entryMethods(p, comp.Class, slots)
		cha := callgraph.BuildCHA(p, entries)
		added := false
		for _, m := range cha.ReachableMethods() {
			if m.Class != nil && m.Class.Framework {
				continue
			}
			for _, blk := range m.Blocks {
				for _, s := range blk.Stmts {
					inv, ok := s.(*ir.Invoke)
					if !ok {
						continue
					}
					api, ok := frontend.Recognize(p, inv)
					if !ok || api.Kind != frontend.APISetListener {
						continue
					}
					key := fmt.Sprintf("reg:%s:%s@%d.%d", api.Callback, m.QualifiedName(), blk.Index, indexOf(blk, s))
					if seen[key] {
						continue
					}
					seen[key] = true
					arg := inv.Args[api.Arg]
					classes, bindAct := listenerClasses(p, m, arg, api.Callback)
					slot := &GUISlot{
						Callback:     api.Callback,
						Declarer:     declarerOf(api.Callback),
						Classes:      classes,
						BindActivity: bindAct,
						Parent:       parentSlot(cha, entryOf, slots, m),
						Bindings:     []Binding{{SrcMethod: m, SrcVar: arg}},
					}
					slots = append(slots, slot)
					added = true
				}
			}
		}
		if !added {
			return slots
		}
	}
}

// indexOf finds a statement's index within its block (pre-Finalize the
// Pos fields aren't set yet).
func indexOf(blk *ir.Block, s ir.Stmt) int {
	for i, have := range blk.Stmts {
		if have == s {
			return i
		}
	}
	return -1
}

// entryMethods returns the methods the discovery CHA starts from: the
// activity's lifecycle callbacks plus every already-discovered slot
// callback, and a map recording which slot (if any) each entry came from.
func entryMethods(p *ir.Program, activity string, slots []*GUISlot) ([]*ir.Method, map[*ir.Method]int) {
	var entries []*ir.Method
	entryOf := map[*ir.Method]int{}
	for _, lc := range []string{
		frontend.OnCreate, frontend.OnStart, frontend.OnResume,
		frontend.OnPause, frontend.OnStop, frontend.OnRestart, frontend.OnDestroy,
	} {
		if m := p.ResolveMethod(activity, lc); m != nil {
			entries = append(entries, m)
			if _, dup := entryOf[m]; !dup {
				entryOf[m] = -1
			}
		}
	}
	for i, slot := range slots {
		for _, cls := range slot.Classes {
			if m := p.ResolveMethod(cls, slot.Callback); m != nil {
				entries = append(entries, m)
				if _, dup := entryOf[m]; !dup {
					entryOf[m] = i
				}
			}
		}
	}
	return entries, entryOf
}

// parentSlot decides which slot (if any) a registration found in method
// reg nests under: if reg is reachable from a lifecycle entry it is
// top-level; otherwise it belongs to the first GUI slot that reaches it.
func parentSlot(cha *callgraph.CHA, entryOf map[*ir.Method]int, slots []*GUISlot, reg *ir.Method) int {
	// Deterministic order: lifecycle entries (slot -1) first.
	type cand struct {
		slot int
		m    *ir.Method
	}
	var cands []cand
	for m, slot := range entryOf {
		cands = append(cands, cand{slot, m})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].slot != cands[j].slot {
			return cands[i].slot < cands[j].slot
		}
		return cands[i].m.QualifiedName() < cands[j].m.QualifiedName()
	})
	for _, c := range cands {
		if cha.ReachableFrom(c.m)[reg] {
			return c.slot
		}
	}
	return -1
}

// listenerClasses resolves the candidate classes of a listener argument:
// "this" means the registering class; a locally-allocated listener means
// that class; anything else (field loads, params) over-approximates to
// every app class implementing the callback — the type-based reflection
// fallback the paper describes.
func listenerClasses(p *ir.Program, m *ir.Method, arg, callback string) (classes []string, bindActivity bool) {
	if arg == "this" {
		return []string{m.Class.Name}, true
	}
	// Chase Move chains to a New within the method.
	cur := arg
	for hops := 0; hops < 8; hops++ {
		var def ir.Stmt
		for _, blk := range m.Blocks {
			for _, s := range blk.Stmts {
				switch st := s.(type) {
				case *ir.New:
					if st.Dst == cur {
						def = st
					}
				case *ir.Move:
					if st.Dst == cur {
						def = st
					}
				}
			}
		}
		switch st := def.(type) {
		case *ir.New:
			return []string{st.Class}, false
		case *ir.Move:
			if st.Src == "this" {
				return []string{m.Class.Name}, true
			}
			cur = st.Src
			continue
		}
		break
	}
	// Over-approximate: any non-framework class defining the callback.
	for _, c := range p.Classes() {
		if c.Framework {
			continue
		}
		if c.Methods[callback] != nil {
			classes = append(classes, c.Name)
		}
	}
	return classes, false
}

// declarerOf maps a callback name to its listener interface.
func declarerOf(callback string) string {
	switch callback {
	case frontend.OnClick:
		return frontend.OnClickListener
	case frontend.OnLongClick:
		return frontend.OnLongClickListener
	case frontend.OnScroll:
		return frontend.OnScrollListener
	case frontend.OnItemClick:
		return frontend.OnItemClickListener
	case frontend.OnTouch:
		return frontend.OnTouchListener
	default:
		return frontend.Object
	}
}
