package incremental_test

import (
	"bytes"
	"fmt"
	"testing"

	"sierra/internal/apk"
	"sierra/internal/appfile"
	"sierra/internal/batch"
	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/incremental"
	"sierra/internal/obs"
	"sierra/internal/serve"
	"sierra/internal/shbg"
)

func readStageDemo(t *testing.T, groups int, ed corpus.StageDemoEdit) ([]byte, *apk.App) {
	t.Helper()
	raw := corpus.StageDemoText(groups, ed)
	app, err := appfile.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parsing StageDemo: %v", err)
	}
	return raw, app
}

// warmBaseline builds the baseline the serve daemon would hold after a
// cold analysis with KeepPTAWarm: fingerprint from the fresh parse,
// warm solver state retained.
func warmBaseline(t *testing.T, groups int, ed corpus.StageDemoEdit) *incremental.Baseline {
	t.Helper()
	raw, app := readStageDemo(t, groups, ed)
	fp := incremental.Compute(app)
	res := core.Analyze(app, core.Options{Refuter: serveCfg(), KeepPTAWarm: true})
	if res.Interrupted {
		t.Fatalf("analysis interrupted at %q", res.InterruptedStage)
	}
	return &incremental.Baseline{
		Name: app.Name, Digest: batch.RawDigest(raw), FP: fp,
		App: app, Res: res, Warm: res.PTAWarm,
	}
}

// TestEditClassParity is the edit-class fuzzer: for every supported and
// every planned-fallback edit class, across several app sizes, the
// serve tiering (tier-1 whole-stage reuse, then tier-2 partial stage
// reuse, then cold) must produce a report byte-identical to a cold run
// of the edited revision — and must land on the planned tier for the
// class. A "tier2" class exercises delta re-seeding, SHBG row patching,
// and pair diffing end to end; a "fallback" class proves the gates fail
// closed instead of splicing something unsound.
func TestEditClassParity(t *testing.T) {
	type class struct {
		name string
		base corpus.StageDemoEdit
		next corpus.StageDemoEdit
		want string // "tier1" | "tier2" | "fallback"
	}
	classes := []class{
		// Body-only edits the fixpoint stages cannot see: whole-stage reuse.
		{"if-operand", corpus.StageDemoEdit{}, corpus.StageDemoEdit{IfLine: "if c == int 0"}, "tier1"},
		// Skeleton-visible dataflow sinks: partial stage reuse.
		{"insert-load", corpus.StageDemoEdit{}, corpus.StageDemoEdit{ExtraStmt: "load w a f1_0"}, "tier2"},
		{"insert-const", corpus.StageDemoEdit{}, corpus.StageDemoEdit{ExtraStmt: "const w int 42"}, "tier2"},
		{"insert-new", corpus.StageDemoEdit{}, corpus.StageDemoEdit{ExtraStmt: "new w Task1_0"}, "tier2"},
		{"insert-binop", corpus.StageDemoEdit{}, corpus.StageDemoEdit{ExtraStmt: "binop w + c c"}, "tier2"},
		// Removing a BinOp is always provably inert.
		{"remove-binop", corpus.StageDemoEdit{ExtraStmt: "binop w + c c"}, corpus.StageDemoEdit{}, "tier2"},
		// Call-graph edits shift action discovery: planned gate fallbacks.
		{"insert-call", corpus.StageDemoEdit{}, corpus.StageDemoEdit{WithCall: true}, "fallback"},
		{"remove-call", corpus.StageDemoEdit{WithCall: true}, corpus.StageDemoEdit{}, "fallback"},
		// Shape drift (declarations changed): planned planner fallbacks.
		{"handler-add", corpus.StageDemoEdit{}, corpus.StageDemoEdit{ExtraHandler: true}, "fallback"},
		{"handler-remove", corpus.StageDemoEdit{ExtraHandler: true}, corpus.StageDemoEdit{}, "fallback"},
		{"method-add", corpus.StageDemoEdit{}, corpus.StageDemoEdit{ExtraMethod: true}, "fallback"},
	}

	for _, groups := range []int{1, 3} {
		for _, c := range classes {
			t.Run(fmt.Sprintf("g%d/%s", groups, c.name), func(t *testing.T) {
				tr := obs.New("test")
				base := warmBaseline(t, groups, c.base)

				editRaw, editApp := readStageDemo(t, groups, c.next)
				editFP := incremental.Compute(editApp)
				editDigest := batch.RawDigest(editRaw)

				// The cold truth: a fresh full run of the edited revision.
				_, coldApp := readStageDemo(t, groups, c.next)
				coldRes := fullAnalyze(t, coldApp)
				coldDoc := serve.RenderReport(editDigest, coldRes)

				// Mirror the serve tiering.
				got := "fallback"
				var doc []byte
				if _, ok := base.Apply(editApp, editFP, editDigest, serveCfg(), tr); ok {
					got = "tier1"
					doc = serve.RenderReport(editDigest, base.Res)
				} else if _, ok := base.ApplyStages(editApp, editFP, editDigest, serveCfg(), shbg.Options{}, tr); ok {
					got = "tier2"
					doc = serve.RenderReport(editDigest, base.Res)
				} else {
					if base.Poisoned {
						t.Errorf("planned fallback must decline cleanly, not poison (reason %q)", base.Res.InterruptedStage)
					}
					// The caller re-parses and runs cold; that IS coldDoc.
					doc = coldDoc
				}
				if got != c.want {
					t.Errorf("edit class %s landed on %s, want %s", c.name, got, c.want)
				}
				if !bytes.Equal(doc, coldDoc) {
					t.Errorf("report not byte-identical to cold run:\n-- incremental --\n%s\n-- cold --\n%s", doc, coldDoc)
				}
			})
		}
	}
}

// TestStageStatsAccounting pins the splice arithmetic on the canonical
// sink-insert edit: every pair is either spliced or re-refuted, at
// least one pair re-refutes (the edited listener's), the splice
// fraction dominates, and both stages report reuse.
func TestStageStatsAccounting(t *testing.T) {
	tr := obs.New("test")
	base := warmBaseline(t, 6, corpus.StageDemoEdit{})
	editRaw, editApp := readStageDemo(t, 6, corpus.StageDemoEdit{ExtraStmt: "load w a f1_0"})
	st, ok := base.ApplyStages(editApp, incremental.Compute(editApp), batch.RawDigest(editRaw), serveCfg(), shbg.Options{}, tr)
	if !ok {
		t.Fatalf("stage apply declined: %+v", st.Plan)
	}
	if !st.ReusedPTA || !st.ReusedSHBG {
		t.Errorf("both stages must report reuse: %+v", st)
	}
	if st.PairsRerefuted+st.PairsSpliced != st.PairsTotal {
		t.Errorf("splice arithmetic: %d re-refuted + %d spliced != %d total",
			st.PairsRerefuted, st.PairsSpliced, st.PairsTotal)
	}
	if st.PairsRerefuted < 1 {
		t.Error("the edited listener's pairs must re-refute")
	}
	if st.PairsSpliced <= st.PairsRerefuted {
		t.Errorf("splices (%d) must dominate re-refutations (%d) on a one-listener edit of 6 groups",
			st.PairsSpliced, st.PairsRerefuted)
	}
}

// TestStagePoisonFallsBackCold: a poisoned baseline must refuse further
// incremental applies of either tier.
func TestStagePoisonFallsBackCold(t *testing.T) {
	tr := obs.New("test")
	base := warmBaseline(t, 1, corpus.StageDemoEdit{})
	base.Poisoned = true
	editRaw, editApp := readStageDemo(t, 1, corpus.StageDemoEdit{ExtraStmt: "load w a f1_0"})
	if _, ok := base.ApplyStages(editApp, incremental.Compute(editApp), batch.RawDigest(editRaw), serveCfg(), shbg.Options{}, tr); ok {
		t.Fatal("poisoned baseline accepted a stage apply")
	}
}

// TestPoolByteBudget: the baseline pool must evict by estimated
// resident bytes when a budget is set, never evicting the entry it is
// currently storing, and must expose the accounted total.
func TestPoolByteBudget(t *testing.T) {
	mk := func(name string, groups int) *incremental.Baseline {
		b := warmBaseline(t, groups, corpus.StageDemoEdit{})
		b.Name = name
		return b
	}
	a, b, c := mk("a", 1), mk("b", 1), mk("c", 1)
	per := a.ApproxBytes()
	if per <= 0 {
		t.Fatalf("ApproxBytes must be positive, got %d", per)
	}

	// Budget for two entries: storing the third must evict the LRU one.
	p := incremental.NewPool(10, 2*per+per/2)
	if ev := p.Store(a); ev != 0 {
		t.Fatalf("storing a evicted %d", ev)
	}
	if ev := p.Store(b); ev != 0 {
		t.Fatalf("storing b evicted %d", ev)
	}
	if ev := p.Store(c); ev != 1 {
		t.Fatalf("storing c must evict exactly the LRU entry, evicted %d", ev)
	}
	if p.Lookup("a") != nil {
		t.Error("a (LRU) should have been evicted")
	}
	if p.Lookup("b") == nil || p.Lookup("c") == nil {
		t.Error("b and c should survive a byte-budget eviction")
	}
	if got := p.Bytes(); got > 2*per+per/2 || got <= 0 {
		t.Errorf("accounted bytes %d out of range (0, %d]", got, 2*per+per/2)
	}

	// A single entry over budget is kept — the pool never evicts its
	// only (or just-stored) entry.
	small := incremental.NewPool(10, 1)
	if ev := small.Store(a); ev != 0 {
		t.Fatalf("sole over-budget entry must be kept, evicted %d", ev)
	}
	if small.Lookup("a") == nil {
		t.Error("sole entry evicted under byte pressure")
	}
}
