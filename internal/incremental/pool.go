package incremental

import (
	"container/list"
	"sync"
)

// Pool holds warm baselines keyed by app name (the lineage key: a CI
// fleet resubmitting revisions of one app hits the same baseline). It
// is LRU-bounded — baselines pin a full program plus every analysis
// artifact in memory, so a daemon keeps only the hottest lineages warm.
type Pool struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element
	lru list.List // of *Baseline, most-recently-used first
}

// NewPool returns a pool keeping at most max baselines (max <= 0 picks
// a small default).
func NewPool(max int) *Pool {
	if max <= 0 {
		max = 8
	}
	return &Pool{max: max, m: make(map[string]*list.Element)}
}

// Lookup returns the warm baseline for an app name, or nil. The caller
// must take Baseline.Mu before using it — the pool hands out live
// pointers, not copies.
func (p *Pool) Lookup(name string) *Baseline {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.m[name]
	if !ok {
		return nil
	}
	p.lru.MoveToFront(el)
	return el.Value.(*Baseline)
}

// Store installs (or replaces) the baseline for b.Name, evicting the
// least-recently-used lineage beyond the cap.
func (p *Pool) Store(b *Baseline) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.m[b.Name]; ok {
		el.Value = b
		p.lru.MoveToFront(el)
		return
	}
	p.m[b.Name] = p.lru.PushFront(b)
	for p.lru.Len() > p.max {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.m, oldest.Value.(*Baseline).Name)
	}
}

// Drop removes a lineage (used to discard poisoned baselines).
func (p *Pool) Drop(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.m[name]; ok {
		p.lru.Remove(el)
		delete(p.m, name)
	}
}

// Len reports how many baselines are warm.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}
