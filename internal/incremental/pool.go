package incremental

import (
	"container/list"
	"sync"
)

// Pool holds warm baselines keyed by app name (the lineage key: a CI
// fleet resubmitting revisions of one app hits the same baseline).
// Baselines pin a full program plus every analysis artifact — and,
// warm, the delta solver's dependency index — so the pool is bounded
// two ways: an entry cap, and a resident-byte budget measured by
// Baseline.ApproxBytes at store time. Eviction is LRU under both
// limits; bytes matter more in practice, since one large app can
// outweigh many small ones.
type Pool struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	bytes    int64
	m        map[string]*list.Element
	lru      list.List // of *poolEntry, most-recently-used first
}

type poolEntry struct {
	b     *Baseline
	bytes int64 // ApproxBytes at store time (bodies may drift after Apply; close enough for a budget)
}

// NewPool returns a pool keeping at most max baselines (max <= 0 picks
// a small default) within maxBytes of estimated resident memory
// (maxBytes <= 0 disables the byte budget).
func NewPool(max int, maxBytes int64) *Pool {
	if max <= 0 {
		max = 8
	}
	return &Pool{max: max, maxBytes: maxBytes, m: make(map[string]*list.Element)}
}

// Lookup returns the warm baseline for an app name, or nil. The caller
// must take Baseline.Mu before using it — the pool hands out live
// pointers, not copies.
func (p *Pool) Lookup(name string) *Baseline {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.m[name]
	if !ok {
		return nil
	}
	p.lru.MoveToFront(el)
	return el.Value.(*poolEntry).b
}

// Store installs (or replaces) the baseline for b.Name and returns how
// many other lineages were evicted to fit it. A baseline larger than
// the whole byte budget is still stored (evicting everything else):
// the alternative — refusing to cache the one lineage being resubmitted
// — would disable incrementality exactly where it pays most.
func (p *Pool) Store(b *Baseline) int {
	size := b.ApproxBytes()
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.m[b.Name]; ok {
		ent := el.Value.(*poolEntry)
		p.bytes += size - ent.bytes
		ent.b, ent.bytes = b, size
		p.lru.MoveToFront(el)
		return p.evictLocked(b.Name)
	}
	p.m[b.Name] = p.lru.PushFront(&poolEntry{b: b, bytes: size})
	p.bytes += size
	return p.evictLocked(b.Name)
}

// evictLocked drops LRU entries until both limits hold, never evicting
// keep (the entry just stored). Returns the eviction count.
func (p *Pool) evictLocked(keep string) int {
	evicted := 0
	for p.lru.Len() > p.max || (p.maxBytes > 0 && p.bytes > p.maxBytes && p.lru.Len() > 1) {
		oldest := p.lru.Back()
		ent := oldest.Value.(*poolEntry)
		if ent.b.Name == keep {
			break
		}
		p.lru.Remove(oldest)
		delete(p.m, ent.b.Name)
		p.bytes -= ent.bytes
		evicted++
	}
	return evicted
}

// Drop removes a lineage (used to discard poisoned baselines).
func (p *Pool) Drop(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.m[name]; ok {
		p.bytes -= el.Value.(*poolEntry).bytes
		p.lru.Remove(el)
		delete(p.m, name)
	}
}

// Len reports how many baselines are warm.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// Bytes reports the estimated resident footprint of the warm baselines.
func (p *Pool) Bytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes
}
