package incremental

import "sort"

// Plan is the planner's output: either a proven-safe reuse of every
// pre-refutation artifact (OK true, Changed listing the skeleton-equal
// edited methods), or a decline with the reason the proof failed.
type Plan struct {
	OK bool
	// Changed lists the qualified names of methods whose bodies differ
	// (sorted). Empty with OK means the revision is body-identical.
	Changed []string
	// Reason explains a decline: "shape" (declarations, manifest, or
	// layouts changed), or "skeleton:<method>" (a changed method also
	// changed statements some fixpoint stage reads).
	Reason string
}

// PlanReuse decides whether next can be analyzed incrementally against
// a baseline with fingerprint base. Reuse is offered only when the
// shapes match exactly (which pins the class/method sets, so Methods
// maps have identical keys) and every changed method is skeleton-equal.
func PlanReuse(base, next *Fingerprint) Plan {
	if base.Shape != next.Shape {
		return Plan{Reason: "shape"}
	}
	var changed []string
	for name, nfp := range next.Methods {
		bfp, ok := base.Methods[name]
		if !ok {
			// Equal shapes should make this impossible; fail closed.
			return Plan{Reason: "shape"}
		}
		if bfp.Full == nfp.Full {
			continue
		}
		if bfp.Skeleton != nfp.Skeleton {
			return Plan{Reason: "skeleton:" + name}
		}
		changed = append(changed, name)
	}
	sort.Strings(changed)
	return Plan{OK: true, Changed: changed}
}
