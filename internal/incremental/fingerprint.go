// Package incremental implements fingerprint-driven incremental
// re-analysis: the stage-reuse machinery that lets `sierra serve` turn
// a one-method edit of an already-analyzed app into a re-refutation of
// a handful of racy pairs instead of a full pipeline run.
//
// The soundness argument is structural. The fixpoint stages of the
// pipeline — pointer analysis, action discovery, SHBG construction,
// racy-pair generation — read method bodies only through the statement
// kinds pointer.SolverReads admits; branch conditions (If) and
// arithmetic (BinOp) operands are consumed exclusively by the backward
// symbolic walker and by report ranking, both of which always run
// against the current bodies. So a revision whose "shape" (manifest,
// layouts, class/field/method declarations, block structure) is
// unchanged and whose changed methods are all skeleton-equal (equal
// after masking If/BinOp operands) has, by construction, the same
// registry, points-to result, happens-before graph, and racy-pair set
// as its baseline — those artifacts are reused outright, and only the
// pairs whose witness walks can see a changed body are re-refuted.
// Whenever any of that cannot be proven, the planner declines and the
// caller falls back to a full run; reports are byte-identical either
// way.
package incremental

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"
	"strconv"

	"sierra/internal/apk"
	"sierra/internal/appfile"
	"sierra/internal/ir"
	"sierra/internal/pointer"
)

// MethodFP is one method's pair of body digests.
type MethodFP struct {
	// Full digests every canonical statement line plus the block
	// structure — equal Full means the body is textually identical.
	Full string
	// Skeleton digests the same lines with If and BinOp operands masked
	// (the statement fields no fixpoint stage reads; see
	// pointer.SolverReads). Equal Skeleton with unequal Full is the
	// incremental window: the body changed, but only in ways invisible
	// to everything before refutation.
	Skeleton string
}

// Fingerprint is an app's incremental identity: a digest of everything
// outside method bodies plus per-method body digests.
type Fingerprint struct {
	// Shape digests the manifest, layouts (views and XML callbacks),
	// and every class/field/method declaration — all structure the
	// harness generator and the analyses key on besides bodies.
	Shape string
	// Methods maps ir qualified names ("Class#method") to body digests
	// for every non-framework method.
	Methods map[string]MethodFP
}

// Compute fingerprints an app. Call it on the freshly parsed app,
// before analysis: harness generation extends the program with
// synthetic classes that must not leak into the fingerprint (the same
// rule appfile.Bytes follows for cache digests).
func Compute(app *apk.App) *Fingerprint {
	shape := sha256.New()
	line := func(h hash.Hash, format string, args ...any) {
		fmt.Fprintf(h, format, args...)
		h.Write([]byte{'\n'})
	}
	line(shape, "app %s", app.Name)
	line(shape, "package %s", app.Manifest.Package)
	line(shape, "installs %s", app.Installs)
	line(shape, "main %s", app.Manifest.MainActivity)
	for _, c := range app.Manifest.Activities {
		line(shape, "activity %s layout %s", c.Class, c.Layout)
	}
	for _, c := range app.Manifest.Services {
		line(shape, "service %s %v", c.Class, c.IntentFilters)
	}
	for _, c := range app.Manifest.Receivers {
		line(shape, "receiver %s %v", c.Class, c.IntentFilters)
	}
	layouts := make([]string, 0, len(app.Layouts))
	for n := range app.Layouts {
		layouts = append(layouts, n)
	}
	sort.Strings(layouts)
	for _, n := range layouts {
		line(shape, "layout %s", n)
		hashView(shape, n, app.Layouts[n].Root, -1)
	}

	fp := &Fingerprint{Methods: map[string]MethodFP{}}
	for _, c := range app.Program.Classes() {
		if c.Framework {
			continue
		}
		line(shape, "class %s extends %s implements %v library %t",
			c.Name, c.Super, c.Interfaces, c.Library)
		for _, f := range c.Fields {
			line(shape, "field %s %s", c.Name, f)
		}
		for _, m := range c.MethodsSorted() {
			line(shape, "method %s %s static %t params %v", c.Name, m.Name, m.Static, m.Params)
			fp.Methods[m.QualifiedName()] = methodFP(m)
		}
	}
	fp.Shape = hex.EncodeToString(shape.Sum(nil))
	return fp
}

func hashView(h hash.Hash, layout string, v *apk.View, parent int) {
	if v == nil {
		return
	}
	fmt.Fprintf(h, "view %s %d %s %d\n", layout, v.ID, v.Type, parent)
	kinds := make([]string, 0, len(v.XMLCallbacks))
	for k := range v.XMLCallbacks {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(h, "xmlcb %s %d %s %s\n", layout, v.ID, k, v.XMLCallbacks[k])
	}
	for _, c := range v.Children {
		hashView(h, layout, c, v.ID)
	}
}

func methodFP(m *ir.Method) MethodFP {
	// Hot path: one buffered pass per digest, no fmt. Full and Skeleton
	// share every line except masked statements, so the buffers diverge
	// only there.
	var fullBuf, skelBuf []byte
	for bi, b := range m.Blocks {
		header := appendBlockHeader(nil, bi, b.Succs)
		fullBuf = append(fullBuf, header...)
		skelBuf = append(skelBuf, header...)
		for _, s := range b.Stmts {
			canon := appfile.StmtLine(s)
			fullBuf = append(append(fullBuf, canon...), '\n')
			if pointer.SolverReads(s) {
				skelBuf = append(append(skelBuf, canon...), '\n')
			} else {
				skelBuf = append(append(skelBuf, skeletonLine(s)...), '\n')
			}
		}
	}
	full, skel := sha256.Sum256(fullBuf), sha256.Sum256(skelBuf)
	return MethodFP{
		Full:     hex.EncodeToString(full[:]),
		Skeleton: hex.EncodeToString(skel[:]),
	}
}

// appendBlockHeader renders "block N succ [a b ...]\n" exactly as
// fmt.Sprintf("block %d succ %v\n", ...) would, without fmt.
func appendBlockHeader(dst []byte, bi int, succs []int) []byte {
	dst = append(dst, "block "...)
	dst = strconv.AppendInt(dst, int64(bi), 10)
	dst = append(dst, " succ ["...)
	for i, s := range succs {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = strconv.AppendInt(dst, int64(s), 10)
	}
	dst = append(dst, "]\n"...)
	return dst
}

// skeletonLine masks the operand fields of the statements the fixpoint
// stages never read. BinOp keeps its destination (cheap, and keeps the
// mask conservative even though no solver stage reads BinOp defs
// either); If keeps nothing — its control-flow effect lives in the
// block successor lines.
func skeletonLine(s ir.Stmt) string {
	switch st := s.(type) {
	case *ir.If:
		return "if ?"
	case *ir.BinOp:
		return "binop " + st.Dst + " ?"
	default:
		// Unreachable while SolverReads admits everything else; fail
		// closed (distinct per-statement text) if that ever changes.
		return "opaque " + appfile.StmtLine(s)
	}
}
