package incremental

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"sierra/internal/apk"
	"sierra/internal/core"
	"sierra/internal/ir"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/report"
	"sierra/internal/symexec"
)

// Baseline is one fully-analyzed app revision kept warm for incremental
// re-analysis. It owns the live analysis artifacts — program, registry,
// pointer result, SHBG, pairs, verdicts — which all key on *ir.Method
// identity, so a new revision is absorbed by patching bodies into this
// program (ir.Method.ReplaceBody), never by re-parsing into a new one.
type Baseline struct {
	// Mu serializes revisions against this baseline: Apply mutates the
	// program and the result in place.
	Mu sync.Mutex
	// Name is the app name — the lineage key submissions match on.
	Name string
	// Digest is the content digest of the revision currently analyzed.
	Digest string
	// FP is the fingerprint of that revision.
	FP *Fingerprint
	// App owns the program the artifacts below point into.
	App *apk.App
	// Res is the full analysis result for Digest.
	Res *core.Result
	// Warm is the pointer solver's live re-solve handle (Res.PTAWarm,
	// hoisted here so pool/serve code needn't reach into the result).
	// Nil baselines still support tier-1 Apply; ApplyStages requires it.
	Warm *pointer.Warm
	// Poisoned marks a baseline whose in-place patch failed midway; its
	// artifacts may be inconsistent and it must not be reused.
	Poisoned bool
}

// ApproxBytes estimates the baseline's resident footprint — the IR
// program plus the three big analysis artifacts (points-to result,
// closed SHBG, pair/verdict tables). The serve pool's byte budget
// evicts on this, not on entry count: one large app can outweigh
// twenty small ones.
func (b *Baseline) ApproxBytes() int64 {
	var n int64
	for _, c := range b.App.Program.Classes() {
		n += 256 // class header, field table
		for _, m := range c.Methods {
			n += 128
			for _, blk := range m.Blocks {
				n += 64 + int64(len(blk.Stmts))*96
			}
		}
	}
	if b.Res != nil {
		if b.Res.PTA != nil {
			n += b.Res.PTA.ApproxBytes()
		}
		if b.Res.Graph != nil {
			n += b.Res.Graph.ApproxBytes()
		}
		n += int64(len(b.Res.Accesses)) * 96
		n += int64(len(b.Res.RacyPairs)+len(b.Res.Reports)) * 160
		n += int64(len(b.Res.AllVerdicts)+len(b.Res.Verdicts)) * 48
	}
	return n
}

// Stats describes one Apply outcome.
type Stats struct {
	// Plan is the planner's decision (Plan.OK false on fallback).
	Plan Plan
	// PairsTotal is the baseline's racy-pair count.
	PairsTotal int
	// PairsRerefuted counts the pairs whose verdicts were recomputed;
	// the rest were reused. Always < PairsTotal when any pair avoided
	// the changed methods.
	PairsRerefuted int
}

// CanApply reports whether the baseline is a sound reuse source at all:
// complete (not interrupted, refutation ran over every pair) and not
// poisoned by a failed patch. Partial baselines are never reused — the
// spliced verdict array must cover exactly the pair set.
func (b *Baseline) CanApply() bool {
	return b != nil && !b.Poisoned && !b.Res.Interrupted &&
		len(b.Res.AllVerdicts) == len(b.Res.RacyPairs)
}

// Apply absorbs the revision (next, nextFP, nextDigest) into the
// baseline incrementally: it patches the changed method bodies into the
// baseline program, reuses the registry/pointer/SHBG/pair artifacts
// outright, re-refutes only the pairs whose action bodies (root methods
// plus their callee closure) include a changed method, and re-ranks.
// On success the baseline describes the new revision exactly as a cold
// full run would — byte-identical reports — and Stats says how much
// work was saved.
//
// Apply returns (stats, false) without mutating anything when the
// planner declines; the caller then runs the full pipeline and replaces
// the baseline. If the in-place patch itself fails (impossible while
// skeleton equality implies shape equality; defended anyway), the
// baseline is marked Poisoned and must be discarded.
//
// Verdict-splicing is only sound when verdicts are pure per pair: the
// baseline must have been produced with per-pair-pure refutation
// (Config.Jobs > 1 — see symexec.Checker), and cfg here must match the
// baseline's refutation config. Callers own both invariants; `sierra
// serve` pins one refutation config for the daemon's lifetime.
//
// The caller must hold b.Mu.
func (b *Baseline) Apply(next *apk.App, nextFP *Fingerprint, nextDigest string, cfg symexec.Config, tr *obs.Trace) (Stats, bool) {
	st := Stats{PairsTotal: len(b.Res.RacyPairs)}
	if !b.CanApply() {
		st.Plan = Plan{Reason: "baseline-partial"}
		tr.Count("incremental.fallbacks", 1)
		return st, false
	}
	st.Plan = PlanReuse(b.FP, nextFP)
	if !st.Plan.OK {
		tr.Count("incremental.fallbacks", 1)
		return st, false
	}
	t0 := time.Now()
	span := tr.Start("incremental.apply")
	defer span.End()

	// Patch the changed bodies into the baseline program. Site ids and
	// statement back-pointers transfer inside ReplaceBody.
	changedSet := make(map[*ir.Method]bool, len(st.Plan.Changed))
	for _, qn := range st.Plan.Changed {
		old, donor, err := b.resolveEdit(next, qn)
		if err == nil {
			err = old.ReplaceBody(donor)
		}
		if err != nil {
			b.Poisoned = true
			st.Plan = Plan{Reason: "patch:" + err.Error()}
			tr.Count("incremental.fallbacks", 1)
			return st, false
		}
		changedSet[old] = true
	}

	// Re-refute exactly the pairs whose refutation walks can observe a
	// changed body: the walker explores an action's root methods plus
	// their inlined callees, so the callee closure over the pointer
	// result's call edges (depth-unbounded — a superset of the walker's
	// depth-bounded inlining) is a sound "touches changed code" test.
	touched := b.touchedActions(changedSet)
	checker := symexec.NewChecker(b.Res.Registry, b.Res.PTA, cfg)
	verdicts := append([]symexec.Verdict(nil), b.Res.AllVerdicts...)
	for i, p := range b.Res.RacyPairs {
		if !touched[p.A.Action] && !touched[p.B.Action] {
			continue
		}
		verdicts[i] = checker.Check(p)
		st.PairsRerefuted++
	}

	// Rebuild the surviving set and re-rank on the patched program
	// (ranking reads guard fields from the live bodies, exactly like a
	// cold run on the new revision).
	var survivors = b.Res.RacyPairs[:0:0]
	var sverdicts []symexec.Verdict
	for i, v := range verdicts {
		if v.TruePositive {
			survivors = append(survivors, b.Res.RacyPairs[i])
			sverdicts = append(sverdicts, v)
		}
	}
	b.Res.AllVerdicts = verdicts
	b.Res.Verdicts = sverdicts
	b.Res.Reports = report.Rank(b.App.Program, survivors, sverdicts)
	b.Digest = nextDigest
	b.FP = nextFP

	tr.Count("incremental.applies", 1)
	tr.Count("incremental.methods_changed", int64(len(st.Plan.Changed)))
	tr.Count("incremental.pairs_rerefuted", int64(st.PairsRerefuted))
	tr.Count("incremental.pairs_reused", int64(st.PairsTotal-st.PairsRerefuted))
	tr.Count("race.pairs_total", int64(st.PairsTotal))
	tr.Observe("incremental.apply_ms", float64(time.Since(t0))/1e6)
	return st, true
}

// resolveEdit finds the baseline method and its donor body for one
// changed qualified name ("Class#method").
func (b *Baseline) resolveEdit(next *apk.App, qn string) (old, donor *ir.Method, err error) {
	cls, name, ok := strings.Cut(qn, "#")
	if !ok {
		return nil, nil, fmt.Errorf("incremental: bad method key %q", qn)
	}
	if c := b.App.Program.Class(cls); c != nil {
		old = c.Methods[name]
	}
	if c := next.Program.Class(cls); c != nil {
		donor = c.Methods[name]
	}
	if old == nil || donor == nil {
		return nil, nil, fmt.Errorf("incremental: method %s missing from %s revision", qn,
			map[bool]string{true: "baseline", false: "new"}[old == nil])
	}
	return old, donor, nil
}

// touchedActions maps action id → whether the action's root methods or
// any method reachable from them through the pointer result's call
// edges is in changed. A plain per-action BFS: quadratic at worst over
// methods, which is nothing at app scale, and trivially sound (a memo
// shared across a cyclic call graph would need care not to cache a
// provisional miss).
func (b *Baseline) touchedActions(changed map[*ir.Method]bool) map[int]bool {
	callees := b.Res.PTA.CalleeMethods()
	reg := b.Res.Registry
	touched := make(map[int]bool)
	for id := 0; id < reg.NumActions(); id++ {
		seen := map[*ir.Method]bool{}
		stack := append([]*ir.Method(nil), reg.Get(id).Roots...)
		hit := false
		for len(stack) > 0 && !hit {
			m := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if m == nil || seen[m] {
				continue
			}
			seen[m] = true
			if changed[m] {
				hit = true
				break
			}
			for _, blk := range m.Blocks {
				for si := range blk.Stmts {
					if _, isCall := blk.Stmts[si].(*ir.Invoke); isCall {
						stack = append(stack, callees(ir.Pos{Method: m, Block: blk.Index, Index: si})...)
					}
				}
			}
		}
		touched[id] = hit
	}
	return touched
}
