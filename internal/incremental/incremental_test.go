package incremental_test

import (
	"bytes"
	"strings"
	"testing"

	"sierra/internal/apk"
	"sierra/internal/appfile"
	"sierra/internal/batch"
	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/incremental"
	"sierra/internal/obs"
	"sierra/internal/serve"
	"sierra/internal/symexec"
)

func readDemo(t *testing.T, ed corpus.IncrDemoEdit) ([]byte, *apk.App) {
	t.Helper()
	raw := corpus.IncrDemoText(ed)
	app, err := appfile.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parsing IncrDemo: %v", err)
	}
	return raw, app
}

// serveCfg mirrors the daemon's pinned refutation config: Jobs >= 2
// selects per-pair-pure checking, the precondition for verdict splicing.
func serveCfg() symexec.Config { return symexec.Config{Jobs: 2} }

func fullAnalyze(t *testing.T, app *apk.App) *core.Result {
	t.Helper()
	res := core.Analyze(app, core.Options{Refuter: serveCfg()})
	if res.Interrupted {
		t.Fatalf("analysis interrupted at %q", res.InterruptedStage)
	}
	return res
}

func TestFingerprintDeterministic(t *testing.T) {
	_, a := readDemo(t, corpus.IncrDemoEdit{})
	_, b := readDemo(t, corpus.IncrDemoEdit{})
	fa, fb := incremental.Compute(a), incremental.Compute(b)
	if fa.Shape != fb.Shape {
		t.Errorf("shape digest not deterministic: %s vs %s", fa.Shape, fb.Shape)
	}
	if len(fa.Methods) != len(fb.Methods) {
		t.Fatalf("method sets differ: %d vs %d", len(fa.Methods), len(fb.Methods))
	}
	for qn, m := range fa.Methods {
		if fb.Methods[qn] != m {
			t.Errorf("method %s digest not deterministic", qn)
		}
	}
	if _, ok := fa.Methods["Click2#onClick"]; !ok {
		t.Errorf("expected Click2#onClick in fingerprint, have %d methods", len(fa.Methods))
	}
}

func TestPlanReuseDecisions(t *testing.T) {
	_, base := readDemo(t, corpus.IncrDemoEdit{})
	baseFP := incremental.Compute(base)

	t.Run("identical", func(t *testing.T) {
		_, same := readDemo(t, corpus.IncrDemoEdit{})
		plan := incremental.PlanReuse(baseFP, incremental.Compute(same))
		if !plan.OK || len(plan.Changed) != 0 {
			t.Errorf("identical revision: want OK with no changes, got %+v", plan)
		}
	})
	t.Run("if-operand-edit", func(t *testing.T) {
		_, edited := readDemo(t, corpus.IncrDemoEdit{IfLine: "if c == int 0"})
		fp := incremental.Compute(edited)
		mb, me := baseFP.Methods["Click2#onClick"], fp.Methods["Click2#onClick"]
		if mb.Full == me.Full {
			t.Error("If edit must change the Full digest")
		}
		if mb.Skeleton != me.Skeleton {
			t.Error("If-operand edit must keep the Skeleton digest")
		}
		plan := incremental.PlanReuse(baseFP, fp)
		if !plan.OK {
			t.Fatalf("planner declined an If-operand edit: %+v", plan)
		}
		if len(plan.Changed) != 1 || plan.Changed[0] != "Click2#onClick" {
			t.Errorf("want Changed=[Click2#onClick], got %v", plan.Changed)
		}
	})
	t.Run("skeleton-visible-edit", func(t *testing.T) {
		_, edited := readDemo(t, corpus.IncrDemoEdit{ExtraStmt: "load w a f1"})
		plan := incremental.PlanReuse(baseFP, incremental.Compute(edited))
		if plan.OK {
			t.Errorf("added statement must decline, got %+v", plan)
		}
		if !strings.HasPrefix(plan.Reason, "skeleton:") {
			t.Errorf("want skeleton decline reason, got %q", plan.Reason)
		}
	})
	t.Run("shape-edit", func(t *testing.T) {
		_, edited := readDemo(t, corpus.IncrDemoEdit{ExtraField: "f3"})
		plan := incremental.PlanReuse(baseFP, incremental.Compute(edited))
		if plan.OK || plan.Reason != "shape" {
			t.Errorf("added field must decline with shape reason, got %+v", plan)
		}
	})
}

// TestApplyParity is the incremental-vs-full equivalence check: an
// If-operand edit applied against a warm baseline must re-refute only
// the pairs touching the edited callback and render a report
// byte-identical to a cold full run of the edited revision — including
// the verdict flip the edit causes (the guarded f1 read becomes
// feasible, so the f1 race must appear).
func TestApplyParity(t *testing.T) {
	tr := obs.New("test")
	baseRaw, baseApp := readDemo(t, corpus.IncrDemoEdit{})
	baseFP := incremental.Compute(baseApp)
	baseRes := fullAnalyze(t, baseApp)
	baseDigest := batch.RawDigest(baseRaw)
	if len(baseRes.RacyPairs) < 2 {
		t.Fatalf("IncrDemo needs >= 2 racy pairs to show partial re-refutation, got %d", len(baseRes.RacyPairs))
	}
	baseDoc := serve.RenderReport(baseDigest, baseRes)
	if bytes.Contains(baseDoc, []byte(`"field": ".f1"`)) {
		t.Fatalf("baseline must refute the guarded f1 race:\n%s", baseDoc)
	}
	if !bytes.Contains(baseDoc, []byte(`"field": ".f2"`)) {
		t.Fatalf("baseline must report the unguarded f2 race:\n%s", baseDoc)
	}

	base := &incremental.Baseline{
		Name: baseApp.Name, Digest: baseDigest, FP: baseFP, App: baseApp, Res: baseRes,
	}

	editRaw, editApp := readDemo(t, corpus.IncrDemoEdit{IfLine: "if c == int 0"})
	editFP := incremental.Compute(editApp)
	editDigest := batch.RawDigest(editRaw)
	stats, ok := base.Apply(editApp, editFP, editDigest, serveCfg(), tr)
	if !ok {
		t.Fatalf("Apply declined: %+v", stats.Plan)
	}
	if stats.PairsRerefuted < 1 {
		t.Error("the edited callback's pairs must be re-refuted")
	}
	if stats.PairsRerefuted >= stats.PairsTotal {
		t.Errorf("re-refuted %d of %d pairs; pairs not touching the edit must be reused",
			stats.PairsRerefuted, stats.PairsTotal)
	}
	if base.Digest != editDigest {
		t.Errorf("baseline digest not advanced: %s", base.Digest)
	}

	incDoc := serve.RenderReport(editDigest, base.Res)
	if !bytes.Contains(incDoc, []byte(`"field": ".f1"`)) {
		t.Errorf("the un-guarded f1 race must appear after the edit (verdict flip):\n%s", incDoc)
	}

	// A cold full run of the edited revision must render the same bytes,
	// and the reused baseline SHBG must digest identically to the graph
	// the cold run builds — the checked form of "the edit was invisible
	// to the happens-before stage".
	_, freshApp := readDemo(t, corpus.IncrDemoEdit{IfLine: "if c == int 0"})
	freshRes := fullAnalyze(t, freshApp)
	fullDoc := serve.RenderReport(editDigest, freshRes)
	if !bytes.Equal(incDoc, fullDoc) {
		t.Errorf("incremental report diverges from full run:\n-- incremental --\n%s\n-- full --\n%s", incDoc, fullDoc)
	}
	if got, want := base.Res.Graph.Fingerprint(), freshRes.Graph.Fingerprint(); got != want {
		t.Errorf("reused SHBG fingerprint %s != cold-run fingerprint %s", got, want)
	}
}

// TestApplyFallback: declined plans must leave the baseline untouched
// (not poisoned, digest unchanged) so the caller can run the full
// pipeline and replace it.
func TestApplyFallback(t *testing.T) {
	tr := obs.New("test")
	baseRaw, baseApp := readDemo(t, corpus.IncrDemoEdit{})
	base := &incremental.Baseline{
		Name:   baseApp.Name,
		Digest: batch.RawDigest(baseRaw),
		FP:     incremental.Compute(baseApp),
		App:    baseApp,
		Res:    fullAnalyze(t, baseApp),
	}
	wantDigest := base.Digest

	for _, tc := range []struct {
		name string
		ed   corpus.IncrDemoEdit
	}{
		{"skeleton", corpus.IncrDemoEdit{ExtraStmt: "load w a f1"}},
		{"shape", corpus.IncrDemoEdit{ExtraField: "f3"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw, app := readDemo(t, tc.ed)
			stats, ok := base.Apply(app, incremental.Compute(app), batch.RawDigest(raw), serveCfg(), tr)
			if ok {
				t.Fatal("Apply must decline a non-reusable revision")
			}
			if stats.Plan.OK {
				t.Errorf("declined Apply with OK plan: %+v", stats.Plan)
			}
			if base.Poisoned {
				t.Error("a planner decline must not poison the baseline")
			}
			if base.Digest != wantDigest {
				t.Errorf("declined Apply mutated the baseline digest: %s", base.Digest)
			}
		})
	}

	// An interrupted or partially-refuted baseline is never a reuse source.
	t.Run("partial-baseline", func(t *testing.T) {
		partial := &incremental.Baseline{
			Name: base.Name, Digest: base.Digest, FP: base.FP, App: base.App,
			Res: &core.Result{Interrupted: true},
		}
		if partial.CanApply() {
			t.Error("interrupted baseline must not be reusable")
		}
	})
}
