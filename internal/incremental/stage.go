package incremental

import (
	"fmt"
	"sort"
	"time"

	"sierra/internal/apk"
	"sierra/internal/appfile"
	"sierra/internal/ir"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/race"
	"sierra/internal/report"
	"sierra/internal/shbg"
	"sierra/internal/symexec"
)

// This file is the tier-2 incremental path: partial stage reuse for
// skeleton-VISIBLE edits. Where Apply (tier 1) reuses every
// pre-refutation artifact outright — sound because skeleton-equal edits
// are invisible to the fixpoint stages — ApplyStages absorbs edits the
// fixpoint can see, by re-solving only what the edit can reach:
//
//   1. the changed methods' pointer constraints are retracted and
//      re-seeded into the warm delta solver (pointer.Warm.ReSolve),
//      which re-drains from the dirty frontier and verifies at runtime
//      that no pre-existing fact grew;
//   2. the SHBG rows owned by actions whose callee closure reaches a
//      changed method are re-derived and compared against the recorded
//      base-edge sequence (shbg.Rebuild), reusing the closed graph when
//      they match;
//   3. racy pairs are regenerated (cheap) and diffed by canonical key:
//      retained pairs that cannot observe a changed body splice their
//      baseline verdicts, added or touched pairs are re-refuted.
//
// The report contract is the same as tier 1: byte-identical to a cold
// run of the new revision, or a fail-closed fallback. The static edit
// gate below (stageGate) admits only edits for which cold-equality is
// provable — inserted statements must be dataflow sinks (fresh
// destinations, so nothing flows into facts the baseline already
// derived, and in particular the action-discovery order that bakes
// action ids into pointer contexts cannot shift), and removed
// statements must be provably inert at the baseline fixpoint (empty
// points-to sources). What the gate cannot see, the runtime
// verification catches: any growth of a pre-existing points-to set, any
// new method instance, entry, or action, or any drift in the re-derived
// SHBG base edges poisons the baseline and forces a cold re-parse.

// StageStats describes one ApplyStages outcome.
type StageStats struct {
	// Plan is the stage planner's decision (Plan.OK false on fallback).
	Plan Plan
	// PairsTotal is the revision's racy-pair count (the new table).
	PairsTotal int
	// PairsRerefuted counts pairs whose verdicts were recomputed:
	// added pairs plus retained pairs touching a changed method.
	PairsRerefuted int
	// PairsSpliced counts retained pairs that reused their baseline
	// verdict unchanged.
	PairsSpliced int
	// PairsAdded counts pairs with no baseline counterpart.
	PairsAdded int
	// PairsRemoved counts baseline pairs with no successor.
	PairsRemoved int
	// ReusedPTA and ReusedSHBG record which stages were patched rather
	// than recomputed (both true on success by construction).
	ReusedPTA  bool
	ReusedSHBG bool
}

// PlanStages decides whether next is a candidate for partial stage
// reuse against base. Unlike PlanReuse it does not require changed
// methods to be skeleton-equal — skeleton drift is exactly the tier-2
// window — but the shape (declarations, manifest, layouts, block
// structure digests live in the method FPs) must still match, which
// pins the class/method/harness sets. Whether each changed body is
// actually admissible is decided per method by the edit gate, which
// needs the parsed bodies and the baseline points-to result.
func PlanStages(base, next *Fingerprint) Plan {
	if base.Shape != next.Shape {
		return Plan{Reason: "shape"}
	}
	var changed []string
	for name, nfp := range next.Methods {
		bfp, ok := base.Methods[name]
		if !ok {
			return Plan{Reason: "shape"} // equal shapes make this impossible
		}
		if bfp.Full != nfp.Full {
			changed = append(changed, name)
		}
	}
	sort.Strings(changed)
	return Plan{OK: true, Changed: changed}
}

// maskedLine is the per-statement comparison the gate aligns bodies
// with: statements the fixpoint stages read compare by their full
// canonical line, If/BinOp by their skeleton mask (their operands are
// refutation-only). Return is solver-read, so a changed return value
// never masks to equal.
func maskedLine(s ir.Stmt) string {
	if pointer.SolverReads(s) {
		return appfile.StmtLine(s)
	}
	return skeletonLine(s)
}

// terminator returns the block's trailing If/Return, or nil.
func terminator(stmts []ir.Stmt) ir.Stmt {
	if len(stmts) == 0 {
		return nil
	}
	switch last := stmts[len(stmts)-1]; last.(type) {
	case *ir.If, *ir.Return:
		return last
	}
	return nil
}

// collectVars gathers every variable name the method's baseline body
// mentions (plus parameters and the receiver) — the set an inserted
// statement's destination must avoid to be a dataflow sink.
func collectVars(m *ir.Method) map[string]bool {
	vars := map[string]bool{"this": true}
	for _, p := range m.Params {
		vars[p] = true
	}
	add := func(names ...string) {
		for _, n := range names {
			if n != "" {
				vars[n] = true
			}
		}
	}
	for _, b := range m.Blocks {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *ir.New:
				add(st.Dst)
			case *ir.Const:
				add(st.Dst)
			case *ir.Move:
				add(st.Dst, st.Src)
			case *ir.Load:
				add(st.Dst, st.Obj)
			case *ir.Store:
				add(st.Obj, st.Src)
			case *ir.StaticLoad:
				add(st.Dst)
			case *ir.StaticStore:
				add(st.Src)
			case *ir.BinOp:
				add(st.Dst, st.A, st.B)
			case *ir.Invoke:
				add(st.Dst, st.Recv)
				add(st.Args...)
			case *ir.If:
				add(st.A)
				if st.B.IsVar {
					add(st.B.Var)
				}
			case *ir.Return:
				add(st.Src)
			}
		}
	}
	return vars
}

// insertOK decides whether one inserted statement is a provable
// dataflow sink. The whitelist is deliberately narrow:
//
//   - New/Const/Move/Load/BinOp with a destination absent from the
//     baseline body (and not a parameter) write only fresh facts; reads
//     of old variables are fine — flow out of old keys into new keys
//     cannot change old keys. Later-inserted statements may read
//     earlier-inserted destinations.
//   - Store writes obj.field for objects the base variable already
//     points to; if that field key already holds facts consumed by old
//     loads, the re-drain grows a pre-existing set and the runtime
//     verification falls back — so admitting it here is safe, just not
//     always free. The "what" field is declined outright: message-what
//     inference reads stores structurally, not through the fixpoint.
//   - Invoke (new call/dispatch/event edges shift action discovery
//     order), If/Return (control flow), and statics (global keys with
//     program-wide consumers) are declined.
func insertOK(s ir.Stmt, oldVars map[string]bool, inserted map[string]bool) error {
	freshDst := func(dst string) error {
		if dst == "" {
			return nil
		}
		if oldVars[dst] && !inserted[dst] {
			return fmt.Errorf("inserted def of existing var %q", dst)
		}
		inserted[dst] = true
		return nil
	}
	switch st := s.(type) {
	case *ir.New:
		return freshDst(st.Dst)
	case *ir.Const:
		return freshDst(st.Dst)
	case *ir.Move:
		return freshDst(st.Dst)
	case *ir.Load:
		return freshDst(st.Dst)
	case *ir.BinOp:
		return freshDst(st.Dst)
	case *ir.Store:
		if st.Field == "what" {
			return fmt.Errorf("inserted store to message field %q", st.Field)
		}
		return nil
	default:
		return fmt.Errorf("inserted %T not a provable dataflow sink", s)
	}
}

// removeOK decides whether one removed statement was provably inert at
// the baseline fixpoint — it derived nothing, so retracting it cannot
// require any fact to shrink (the half the runtime verification cannot
// see: version snapshots detect growth, not absence of shrinkage).
// Emptiness is checked against the union of the method's contexts.
func removeOK(s ir.Stmt, m *ir.Method, pta *pointer.Result) error {
	empty := func(v string) bool { return pta.PointsToAll(m, v).Len() == 0 }
	switch st := s.(type) {
	case *ir.BinOp:
		return nil // never solver-read
	case *ir.Load:
		if !empty(st.Obj) {
			return fmt.Errorf("removed load %s.%s has live base", st.Obj, st.Field)
		}
		return nil
	case *ir.Store:
		if st.Field == "what" {
			return fmt.Errorf("removed store to message field %q", st.Field)
		}
		if !empty(st.Obj) && !empty(st.Src) {
			return fmt.Errorf("removed store %s.%s has live base and source", st.Obj, st.Field)
		}
		return nil
	case *ir.Move:
		if !empty(st.Src) {
			return fmt.Errorf("removed move %s = %s has live source", st.Dst, st.Src)
		}
		return nil
	default:
		// Const feeds message-what inference, New owns an allocation
		// site retained facts may name, Invoke/If/Return shape the call
		// graph and CFG, statics have global consumers.
		return fmt.Errorf("removed %T not provably inert", s)
	}
}

// stageGate validates one changed method against the stage-reuse
// whitelist. Per block (block count and successor equality are
// re-checked by ReplaceBodyFlex; checked here too so declines stay
// clean, before any mutation):
//
//   - the trailing terminator (If/Return) must be present on both
//     sides or neither, and masked-equal (If operands free, Return
//     exact);
//   - the remaining statements must agree positionally under
//     maskedLine for a common prefix, with the leftover suffix either
//     all-inserted (donor longer: each insertOK) or all-removed
//     (baseline longer: each removeOK). A suffix on both sides is a
//     rewrite the gate cannot reason about — declined.
func stageGate(old, donor *ir.Method, pta *pointer.Result) error {
	if len(old.Blocks) != len(donor.Blocks) {
		return fmt.Errorf("block count %d -> %d", len(old.Blocks), len(donor.Blocks))
	}
	oldVars := collectVars(old)
	inserted := map[string]bool{}
	for bi := range old.Blocks {
		ob, nb := old.Blocks[bi], donor.Blocks[bi]
		if len(ob.Succs) != len(nb.Succs) {
			return fmt.Errorf("block %d successor count", bi)
		}
		for i := range ob.Succs {
			if ob.Succs[i] != nb.Succs[i] {
				return fmt.Errorf("block %d successors", bi)
			}
		}
		os, ns := ob.Stmts, nb.Stmts
		ot, nt := terminator(os), terminator(ns)
		if (ot == nil) != (nt == nil) {
			return fmt.Errorf("block %d terminator added or removed", bi)
		}
		if ot != nil {
			if maskedLine(ot) != maskedLine(nt) {
				return fmt.Errorf("block %d terminator rewritten", bi)
			}
			os, ns = os[:len(os)-1], ns[:len(ns)-1]
		}
		p := 0
		for p < len(os) && p < len(ns) && maskedLine(os[p]) == maskedLine(ns[p]) {
			p++
		}
		switch {
		case p == len(os) && p == len(ns):
			// Body-only edit (If/BinOp operands) — nothing to prove.
		case p == len(os):
			for _, s := range ns[p:] {
				if err := insertOK(s, oldVars, inserted); err != nil {
					return fmt.Errorf("block %d: %w", bi, err)
				}
			}
		case p == len(ns):
			for _, s := range os[p:] {
				if err := removeOK(s, old, pta); err != nil {
					return fmt.Errorf("block %d: %w", bi, err)
				}
			}
		default:
			return fmt.Errorf("block %d rewritten at statement %d", bi, p)
		}
	}
	return nil
}

// ApplyStages absorbs a skeleton-visible revision into the baseline by
// partial stage reuse (see the file comment for the protocol). It
// requires a warm baseline (Baseline.Warm non-nil — produced under
// core.Options.KeepPTAWarm) and the same refutation and SHBG configs
// the baseline ran with.
//
// Like Apply it returns (stats, false) without mutating anything when
// the planner or the edit gate declines — the caller falls back to a
// cold run and the baseline stays valid. Once mutation starts, any
// failure (patch error, re-solve verification, action drift, SHBG base
// drift) marks the baseline Poisoned; the caller must drop it and run
// cold. The caller must hold b.Mu.
func (b *Baseline) ApplyStages(next *apk.App, nextFP *Fingerprint, nextDigest string, refCfg symexec.Config, shbgOpts shbg.Options, tr *obs.Trace) (StageStats, bool) {
	st := StageStats{PairsTotal: len(b.Res.RacyPairs)}
	decline := func(reason string) (StageStats, bool) {
		st.Plan = Plan{Reason: reason, Changed: st.Plan.Changed}
		tr.Count("incremental.stage_fallbacks", 1)
		return st, false
	}
	if !b.CanApply() {
		return decline("baseline-partial")
	}
	if b.Warm == nil {
		return decline("baseline-cold")
	}
	st.Plan = PlanStages(b.FP, nextFP)
	if !st.Plan.OK {
		return decline(st.Plan.Reason)
	}

	// Gate every edit before touching anything: declines here are clean.
	type edit struct {
		old, donor *ir.Method
	}
	edits := make([]edit, 0, len(st.Plan.Changed))
	for _, qn := range st.Plan.Changed {
		old, donor, err := b.resolveEdit(next, qn)
		if err == nil {
			err = stageGate(old, donor, b.Res.PTA)
		}
		if err != nil {
			return decline("gate:" + qn + ": " + err.Error())
		}
		edits = append(edits, edit{old, donor})
	}

	t0 := time.Now()
	span := tr.Start("incremental.stage_apply")
	defer span.End()
	poison := func(reason string) (StageStats, bool) {
		b.Poisoned = true
		st.Plan = Plan{Reason: reason, Changed: st.Plan.Changed}
		tr.Count("incremental.stage_fallbacks", 1)
		return st, false
	}

	// Mutation starts: patch bodies in place, renumber fresh allocation
	// sites, then re-solve the warm pointer state from the dirty
	// frontier.
	nActions := b.Res.Registry.NumActions()
	changedSet := make(map[*ir.Method]bool, len(edits))
	changed := make([]*ir.Method, 0, len(edits))
	for _, e := range edits {
		if err := e.old.ReplaceBodyFlex(e.donor); err != nil {
			return poison("patch:" + err.Error())
		}
		changedSet[e.old] = true
		changed = append(changed, e.old)
	}
	b.App.Program.Finalize() // number inserted allocation sites

	if err := b.Warm.ReSolve(changed, tr); err != nil {
		return poison("resolve:" + err.Error())
	}
	if b.Res.Registry.NumActions() != nActions {
		return poison("actions-drift")
	}
	st.ReusedPTA = true
	tr.Count("incremental.stage_reuse_pta", 1)

	// SHBG: re-derive only the rows owned by actions that can reach a
	// changed method, and reuse the closed graph iff they match the
	// recorded base edges.
	touched := b.touchedActions(changedSet)
	dirty := make(map[int]bool)
	for id, hit := range touched {
		if hit {
			dirty[id] = true
		}
	}
	g, ok := shbg.Rebuild(b.Res.Graph, b.Res.Registry, b.Res.PTA, shbgOpts, dirty, tr)
	if !ok {
		return poison("shbg-drift")
	}
	b.Res.Graph = g
	st.ReusedSHBG = true
	tr.Count("incremental.stage_reuse_shbg", 1)

	// Pairs: re-collect only the dirty actions' accesses and recompute
	// only the combinations touching them (everything else splices from
	// the baseline — see race.CollectAccessesDelta/RacyPairsDelta),
	// then diff against the baseline table by canonical key. Retained
	// pairs that cannot observe a changed body splice their baseline
	// verdicts; the rest re-refute. Only fields stored by a patched body
	// can have gained field points-to entries (the re-solve gate rejects
	// every other growth route), so only those spliced accesses need
	// their IsRef flag refreshed.
	storedFields := map[string]bool{}
	for m := range changedSet {
		for _, blk := range m.Blocks {
			for _, s := range blk.Stmts {
				switch stt := s.(type) {
				case *ir.Store:
					storedFields[stt.Field] = true
				case *ir.StaticStore:
					storedFields[stt.Field] = true
				}
			}
		}
	}
	accesses := race.CollectAccessesDelta(b.Res.Registry, b.Res.PTA, b.Res.Accesses, changedSet, storedFields, tr)
	pairs := race.RacyPairsDelta(b.Res.Registry, b.Res.Graph, accesses, b.Res.RacyPairs, changedSet, tr)
	match, removed := race.MatchPairs(b.Res.RacyPairs, pairs)
	st.PairsRemoved = removed
	st.PairsTotal = len(pairs)

	// The checker's interference-graph setup is not free, so build it
	// lazily — an edit whose pairs all splice never pays for it.
	var checker *symexec.Checker
	verdicts := make([]symexec.Verdict, len(pairs))
	for i, p := range pairs {
		if match[i] < 0 {
			st.PairsAdded++
		}
		if match[i] >= 0 && !touched[p.A.Action] && !touched[p.B.Action] {
			verdicts[i] = b.Res.AllVerdicts[match[i]]
			st.PairsSpliced++
			continue
		}
		if checker == nil {
			checker = symexec.NewChecker(b.Res.Registry, b.Res.PTA, refCfg)
		}
		verdicts[i] = checker.Check(p)
		st.PairsRerefuted++
	}

	var survivors = pairs[:0:0]
	var sverdicts []symexec.Verdict
	for i, v := range verdicts {
		if v.TruePositive {
			survivors = append(survivors, pairs[i])
			sverdicts = append(sverdicts, v)
		}
	}
	b.Res.Accesses = accesses
	b.Res.RacyPairs = pairs
	b.Res.AllVerdicts = verdicts
	b.Res.Verdicts = sverdicts
	b.Res.Reports = report.Rank(b.App.Program, survivors, sverdicts)
	b.Digest = nextDigest
	b.FP = nextFP

	tr.Count("incremental.stage_applies", 1)
	tr.Count("incremental.methods_changed", int64(len(st.Plan.Changed)))
	tr.Count("incremental.pairs_rerefuted", int64(st.PairsRerefuted))
	tr.Count("incremental.pairs_spliced", int64(st.PairsSpliced))
	tr.Count("incremental.pairs_added", int64(st.PairsAdded))
	tr.Count("incremental.pairs_removed", int64(st.PairsRemoved))
	tr.Count("race.pairs_total", int64(st.PairsTotal))
	tr.Observe("incremental.stage_apply_ms", float64(time.Since(t0))/1e6)
	return st, true
}
