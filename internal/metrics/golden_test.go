package metrics

import (
	"context"
	"reflect"
	"testing"

	"sierra/internal/batch"
	"sierra/internal/corpus"
	"sierra/internal/obs"
)

// goldenSubset picks small named-dataset members so the three full
// pipeline runs below stay tractable under `go test -race`.
func goldenSubset(t *testing.T) []corpus.PaperRow {
	t.Helper()
	names := []string{"SuperGenPass", "VuDroid", "TippyTipper", "APV"}
	rows := make([]corpus.PaperRow, 0, len(names))
	for _, n := range names {
		pr, ok := corpus.RowByName(n)
		if !ok {
			t.Fatalf("%s missing from corpus", n)
		}
		rows = append(rows, pr)
	}
	return rows
}

// zeroTimings clears the wall-clock columns, which legitimately vary
// between runs; everything else in a Row is deterministic.
func zeroTimings(rows []Row) []Row {
	out := make([]Row, len(rows))
	copy(out, rows)
	for i := range out {
		out[i].CGPA, out[i].HBG, out[i].Pairs = 0, 0, 0
		out[i].Compare, out[i].Refutation, out[i].Total = 0, 0, 0
	}
	return out
}

// TestParallelMatchesSequentialGolden is the determinism golden test:
// the tables produced with -jobs N must be byte-identical to -jobs 1.
// Cold runs are compared with timings zeroed (execution determinism);
// a warm run against the sequential run's cache must match byte for
// byte, timings included, since cached rows are literally the same
// serialized bytes.
func TestParallelMatchesSequentialGolden(t *testing.T) {
	rows := goldenSubset(t)
	ctx := context.Background()

	cache := batch.NewMemCache()
	seq, seqRes := EvaluateNamedBatch(ctx, rows, Options{}, BatchOptions{Jobs: 1, Cache: cache})
	for i, r := range seqRes {
		if r.Status != batch.StatusOK {
			t.Fatalf("sequential job %d (%s) status %q", i, r.Name, r.Status)
		}
	}

	par, parRes := EvaluateNamedBatch(ctx, rows, Options{}, BatchOptions{Jobs: 4})
	if got, want := FormatTable3(zeroTimings(par)), FormatTable3(zeroTimings(seq)); got != want {
		t.Errorf("Table 3 differs between -jobs 4 and -jobs 1 (cold):\n%s\nvs\n%s", got, want)
	}
	if got, want := FormatTable4(zeroTimings(par)), FormatTable4(zeroTimings(seq)); got != want {
		t.Errorf("Table 4 (timings zeroed) differs between -jobs 4 and -jobs 1")
	}
	if !reflect.DeepEqual(zeroTimings(par), zeroTimings(seq)) {
		t.Errorf("rows differ between -jobs 4 and -jobs 1 (cold)")
	}
	for i := range parRes {
		if parRes[i].Status != batch.StatusOK {
			t.Fatalf("parallel job %d status %q", i, parRes[i].Status)
		}
	}

	// Warm parallel run against the sequential cache: byte-identical
	// including timings, and no app is re-analyzed (visible hit count).
	tr := obs.New("warm")
	warm, warmRes := EvaluateNamedBatch(ctx, rows, Options{}, BatchOptions{Jobs: 4, Cache: cache, Obs: tr})
	if got, want := FormatTable3(warm), FormatTable3(seq); got != want {
		t.Errorf("warm Table 3 not byte-identical to sequential run:\n%s\nvs\n%s", got, want)
	}
	if got, want := FormatTable4(warm), FormatTable4(seq); got != want {
		t.Errorf("warm Table 4 not byte-identical to sequential run")
	}
	for i, r := range warmRes {
		if r.Status != batch.StatusCached {
			t.Errorf("warm job %d (%s) status %q, want cached", i, r.Name, r.Status)
		}
	}
	if hits := tr.Counter("batch.cache_hits"); hits != int64(len(rows)) {
		t.Errorf("warm run cache hits = %d, want %d", hits, len(rows))
	}
	if misses := tr.Counter("batch.cache_misses"); misses != 0 {
		t.Errorf("warm run cache misses = %d, want 0", misses)
	}
}

// TestFDroidBatchDeterministic extends the golden guarantee to the
// generated dataset (Table 5): rows and sizes must match between worker
// counts, timings aside.
func TestFDroidBatchDeterministic(t *testing.T) {
	const n = 8
	ctx := context.Background()
	seqRows, seqSizes, _ := EvaluateFDroidBatch(ctx, n, Options{}, BatchOptions{Jobs: 1})
	parRows, parSizes, _ := EvaluateFDroidBatch(ctx, n, Options{}, BatchOptions{Jobs: 4})
	if !reflect.DeepEqual(zeroTimings(parRows), zeroTimings(seqRows)) {
		t.Errorf("fdroid rows differ between -jobs 4 and -jobs 1")
	}
	if !reflect.DeepEqual(parSizes, seqSizes) {
		t.Errorf("fdroid sizes differ: %v vs %v", parSizes, seqSizes)
	}
	if got, want := FormatTable5(zeroTimings(parRows), parSizes), FormatTable5(zeroTimings(seqRows), seqSizes); got != want {
		t.Errorf("Table 5 (timings zeroed) differs between worker counts:\n%s\nvs\n%s", got, want)
	}
}
