package metrics

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"sierra/internal/apk"
	"sierra/internal/batch"
	"sierra/internal/corpus"
	"sierra/internal/obs"
	"sierra/internal/obs/eventlog"
)

// BatchOptions configures the concurrent evaluation runners: how the
// per-app measurement jobs fan out across internal/batch workers.
type BatchOptions struct {
	// Jobs bounds worker concurrency (0 = GOMAXPROCS). Jobs == 1
	// reproduces the sequential evaluation exactly — see the
	// determinism guarantee on batch.Run.
	Jobs int
	// JobTimeout is the per-app deadline (0 = none); a timed-out app
	// yields the partial Row its interrupted pipeline produced.
	JobTimeout time.Duration
	// Cache, when non-nil, is keyed by app digest + options fingerprint:
	// re-evaluating an unchanged corpus becomes near-free.
	Cache batch.Cache
	// Obs, when non-nil, receives the engine counters (batch.*) and each
	// executed app's absorbed effort counters.
	Obs *obs.Trace
	// Events, when non-nil, receives the engine's job_start/job_end
	// flight-recorder events (see internal/obs/eventlog).
	Events *eventlog.Recorder
	// Tracker, when non-nil, is updated live as jobs complete — the
	// `-debug-addr` /progress source.
	Tracker *batch.Tracker
	// Progress, when non-nil, observes results in input order.
	Progress func(index int, r batch.Result)
}

// fingerprint lists every Options knob that influences a Row, for the
// cache key. Policy knobs are fixed by EvaluateApp (action-sensitive
// k=2 with the hybrid comparison rerun), so the corpus digest plus
// these parts fully determine the result.
func fingerprint(opts Options) []string {
	// Refuter knobs are keyed by their effective values (0 means the
	// paper defaults), so explicit -refute-max-paths=5000 and the
	// default share one cache entry.
	maxPaths, maxDepth := opts.RefuteMaxPaths, opts.RefuteMaxDepth
	if maxPaths == 0 {
		maxPaths = 5000
	}
	if maxDepth == 0 {
		maxDepth = 6
	}
	return []string{
		"row",
		fmt.Sprintf("dynamic=%t", opts.WithDynamic),
		fmt.Sprintf("schedules=%d", opts.Schedules),
		fmt.Sprintf("events=%d", opts.EventsPerSchedule),
		"solver=" + string(opts.Solver),
		fmt.Sprintf("refutepaths=%d", maxPaths),
		fmt.Sprintf("refutedepth=%d", maxDepth),
		fmt.Sprintf("ptajobs=%d", opts.PTAJobs),
		fmt.Sprintf("shbgjobs=%d", opts.SHBGJobs),
	}
}

// EvaluateNamedBatch measures the given named-dataset rows concurrently
// and returns their Rows in input order, plus the raw batch results
// (status, latency, failure records) aligned with them. A job that
// failed or timed out without a value yields a zero Row carrying only
// the app name.
func EvaluateNamedBatch(ctx context.Context, rows []corpus.PaperRow, opts Options, b BatchOptions) ([]Row, []batch.Result) {
	opts.Obs = b.Obs
	jobs := make([]batch.Job, len(rows))
	for i := range rows {
		pr := rows[i]
		jobs[i] = batch.Job{
			Name: pr.Name,
			KeyFn: func() (string, error) {
				app, _ := corpus.NamedApp(pr)
				d, err := batch.AppDigest(app)
				if err != nil {
					return "", err
				}
				return batch.Key(d, fingerprint(opts)...), nil
			},
			Fn: func(jctx context.Context) ([]byte, error) {
				row := EvaluateAppContext(jctx, pr.Name, func() (*apk.App, *corpus.GroundTruth) {
					return corpus.NamedApp(pr)
				}, opts)
				return json.Marshal(row)
			},
		}
	}
	results := batch.Run(ctx, jobs, batch.Options{
		Workers:  b.Jobs,
		Timeout:  b.JobTimeout,
		Cache:    b.Cache,
		Obs:      b.Obs,
		Events:   b.Events,
		Tracker:  b.Tracker,
		OnResult: b.Progress,
	})
	out := make([]Row, len(rows))
	for i, r := range results {
		out[i] = decodeRow(r, rows[i].Name)
	}
	return out, results
}

// fdroidPayload is the serialized result of one generated-dataset job:
// the measured Row plus the model's bytecode size (Table 5's size
// column).
type fdroidPayload struct {
	Row  Row `json:"row"`
	Size int `json:"size"`
}

// EvaluateFDroidBatch measures the first n generated-dataset apps
// concurrently, returning Rows and bytecode sizes in input order plus
// the raw batch results.
func EvaluateFDroidBatch(ctx context.Context, n int, opts Options, b BatchOptions) ([]Row, []int, []batch.Result) {
	opts.Obs = b.Obs
	jobs := make([]batch.Job, n)
	for i := 0; i < n; i++ {
		i := i
		name := corpus.FDroidRow(i).Name
		jobs[i] = batch.Job{
			Name: name,
			KeyFn: func() (string, error) {
				app, _ := corpus.FDroidApp(i)
				d, err := batch.AppDigest(app)
				if err != nil {
					return "", err
				}
				return batch.Key(d, fingerprint(opts)...), nil
			},
			Fn: func(jctx context.Context) ([]byte, error) {
				row := EvaluateAppContext(jctx, name, func() (*apk.App, *corpus.GroundTruth) {
					return corpus.FDroidApp(i)
				}, opts)
				app, _ := corpus.FDroidApp(i)
				return json.Marshal(fdroidPayload{Row: row, Size: app.BytecodeSize()})
			},
		}
	}
	results := batch.Run(ctx, jobs, batch.Options{
		Workers:  b.Jobs,
		Timeout:  b.JobTimeout,
		Cache:    b.Cache,
		Obs:      b.Obs,
		Events:   b.Events,
		Tracker:  b.Tracker,
		OnResult: b.Progress,
	})
	rowsOut := make([]Row, n)
	sizes := make([]int, n)
	for i, r := range results {
		var p fdroidPayload
		if len(r.Value) > 0 && json.Unmarshal(r.Value, &p) == nil {
			rowsOut[i], sizes[i] = p.Row, p.Size
		} else {
			rowsOut[i] = Row{Name: corpus.FDroidRow(i).Name}
		}
	}
	return rowsOut, sizes, results
}

// decodeRow unmarshals a job's Row, falling back to a named zero Row
// for valueless failures.
func decodeRow(r batch.Result, name string) Row {
	var row Row
	if len(r.Value) > 0 && json.Unmarshal(r.Value, &row) == nil {
		return row
	}
	return Row{Name: name}
}
