package metrics

import (
	"context"
	"reflect"
	"testing"

	"sierra/internal/batch"
	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/obs"
	"sierra/internal/pointer"
)

// TestSolverGoldenTables is the end-to-end parity gate for the
// difference-propagation solver: the evaluation tables produced under
// -pta-solver=delta and -pta-solver=exhaustive must be byte-identical
// (timings zeroed — wall clock is the one column allowed to differ,
// and the whole point is that it does).
func TestSolverGoldenTables(t *testing.T) {
	rows := goldenSubset(t)
	ctx := context.Background()

	run := func(s pointer.Solver) []Row {
		got, res := EvaluateNamedBatch(ctx, rows, Options{Solver: s}, BatchOptions{Jobs: 1})
		for i, r := range res {
			if r.Status != batch.StatusOK {
				t.Fatalf("%s job %d (%s) status %q", s, i, r.Name, r.Status)
			}
		}
		return zeroTimings(got)
	}
	delta := run(pointer.SolverDelta)
	exhaustive := run(pointer.SolverExhaustive)

	if got, want := FormatTable3(delta), FormatTable3(exhaustive); got != want {
		t.Errorf("Table 3 differs between solvers:\n%s\nvs\n%s", got, want)
	}
	if got, want := FormatTable4(delta), FormatTable4(exhaustive); got != want {
		t.Errorf("Table 4 (timings zeroed) differs between solvers:\n%s\nvs\n%s", got, want)
	}
	if !reflect.DeepEqual(delta, exhaustive) {
		t.Errorf("rows differ between solvers:\n%+v\nvs\n%+v", delta, exhaustive)
	}
}

// TestSolverGaugeParity pins the observability contract: both solvers
// report the same points-to volume gauges (they compute the same
// result), while the delta solver additionally proves it skipped work.
func TestSolverGaugeParity(t *testing.T) {
	pr, ok := corpus.RowByName("SuperGenPass")
	if !ok {
		t.Fatal("SuperGenPass missing from corpus")
	}

	run := func(s pointer.Solver) *obs.Trace {
		app, _ := corpus.NamedApp(pr)
		tr := obs.New(string(s))
		core.Analyze(app, core.Options{PTASolver: s, SkipRefutation: true, Obs: tr})
		return tr
	}
	trD := run(pointer.SolverDelta)
	trE := run(pointer.SolverExhaustive)

	for _, g := range []string{"pointer.pts_objs", "pointer.pts_vars", "pointer.pts_max"} {
		if d, e := trD.GaugeValue(g), trE.GaugeValue(g); d != e {
			t.Errorf("%s: delta %v vs exhaustive %v", g, d, e)
		}
	}
	for _, c := range []string{"pointer.passes", "pointer.worklist_iterations"} {
		if d, e := trD.Counter(c), trE.Counter(c); d != e {
			t.Errorf("%s: delta %d vs exhaustive %d", c, d, e)
		}
	}
	if skips := trD.Counter("pointer.transfer_skips"); skips == 0 {
		t.Error("delta solver reported zero transfer_skips — no work was actually skipped")
	}
	if trE.Counter("pointer.transfer_skips") != 0 {
		t.Error("exhaustive solver reported transfer_skips")
	}
	if trD.Counter("pointer.dep_edges") == 0 {
		t.Error("delta solver reported zero dep_edges")
	}
}
