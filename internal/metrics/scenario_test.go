package metrics

import (
	"testing"

	"sierra/internal/apk"
	"sierra/internal/corpus"
)

// TestScenarioFamiliesAnalyze runs the full static pipeline over one
// app of each streaming scenario family and requires the planted
// pattern to surface: actions discovered, races surviving refutation,
// and no ground-truth false positives.
func TestScenarioFamiliesAnalyze(t *testing.T) {
	for _, s := range corpus.Scenarios() {
		if s.Name == "table2-x10" || s.Name == "paper-mix" {
			continue // row-derived shapes; covered by the dataset tests
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			row := EvaluateApp("smoke-"+s.Name, func() (*apk.App, *corpus.GroundTruth) {
				return s.Generate("smoke-"+s.Name, 7, nil)
			}, Options{})
			if row.Actions == 0 {
				t.Fatalf("%s: no actions discovered", s.Name)
			}
			if row.AfterRefut == 0 {
				t.Fatalf("%s: no surviving races — pattern inert", s.Name)
			}
			if row.TrueRaces == 0 {
				t.Fatalf("%s: no ground-truth true positives", s.Name)
			}
			if row.FP != 0 {
				t.Fatalf("%s: %d ground-truth false positives", s.Name, row.FP)
			}
		})
	}
}
