// Package metrics runs the paper's evaluation and assembles its tables:
// Table 2 (dataset), Table 3 (effectiveness), Table 4 (efficiency), and
// Table 5 (174-app medians). Rows mirror the paper's columns so output
// can be compared side by side.
package metrics

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sierra/internal/apk"
	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/eventracer"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/shbg"
	"sierra/internal/symexec"
)

// Row is one measured app: Table 3's columns plus Table 4's timings and
// the ground-truth classification of the surviving reports.
type Row struct {
	Name       string
	Harnesses  int
	Actions    int
	HBEdges    int
	OrderedPct float64
	RacyNoAS   int
	RacyAS     int
	AfterRefut int
	TrueRaces  int
	FP         int
	// EventRacer is the dynamic baseline's report count (-1 = not run).
	EventRacer int
	// Timings in seconds (Table 4 stages). Pairs is racy-pair
	// generation, Compare the optional plain-hybrid rerun; together with
	// CGPA, HBG, and Refutation they partition Total.
	CGPA, HBG, Pairs, Compare, Refutation, Total float64
	// Effort counters from the observability layer (Table 4's effort
	// columns; one source of truth with `sierra -stats`).
	PAPasses  int // pointer-analysis fixpoint passes
	PAIters   int // pointer worklist iterations (instances × passes)
	RefPaths  int // refutation paths explored
	RefPruned int // refutation paths pruned on contradictions/bounds
}

// Options tunes an evaluation run.
type Options struct {
	// WithDynamic also runs the EventRacer baseline.
	WithDynamic bool
	// Schedules / EventsPerSchedule configure the dynamic runs.
	Schedules         int
	EventsPerSchedule int
	// Solver selects the points-to fixpoint implementation ("" =
	// pointer.SolverDelta). Both solvers produce identical tables; the
	// exhaustive one is the slow reference kept for parity checking.
	Solver pointer.Solver
	// RefuteMaxPaths / RefuteMaxDepth bound the refuter's backward
	// exploration (0 = the paper's defaults, 5000 paths and depth 6).
	RefuteMaxPaths int
	RefuteMaxDepth int
	// PTAJobs / SHBGJobs size the SCC-partitioned points-to solver and
	// block-parallel SHBG closure pools (≤1 = the sequential kernels).
	// Both kernels are bit-for-bit deterministic, so these change wall
	// clock only — the Rows are identical at any count.
	PTAJobs  int
	SHBGJobs int
	// Obs, when non-nil, absorbs each measured app's effort counters
	// (the per-app trace snapshot) — the batch runners point this at a
	// shared trace so `-stats`-style aggregates survive fan-out. Safe
	// for concurrent use.
	Obs *obs.Trace
}

// EvaluateApp runs the full static pipeline (and optionally the dynamic
// baseline) on an app produced by factory, classifying survivors against
// the ground truth.
func EvaluateApp(name string, factory func() (*apk.App, *corpus.GroundTruth), opts Options) Row {
	return EvaluateAppContext(nil, name, factory, opts)
}

// EvaluateAppContext is EvaluateApp with cooperative cancellation: the
// context is threaded into the pipeline (see core.AnalyzeContext), so a
// deadline yields a partial Row instead of a stuck evaluation. The
// dynamic baseline is skipped once the context is done.
func EvaluateAppContext(ctx context.Context, name string, factory func() (*apk.App, *corpus.GroundTruth), opts Options) Row {
	app, gt := factory()
	tr := obs.New(name)
	res := core.AnalyzeContext(ctx, app, core.Options{
		CompareContexts: true,
		PTASolver:       opts.Solver,
		PTAJobs:         opts.PTAJobs,
		SHBG:            shbg.Options{Jobs: opts.SHBGJobs},
		Refuter:         symexec.Config{MaxPaths: opts.RefuteMaxPaths, MaxDepth: opts.RefuteMaxDepth},
		Obs:             tr,
	})

	row := Row{
		Name:       name,
		Harnesses:  res.NumHarnesses(),
		Actions:    res.NumActions(),
		HBEdges:    res.HBEdges(),
		OrderedPct: res.OrderedPercent(),
		RacyNoAS:   res.RacyPairsNoAS,
		RacyAS:     len(res.RacyPairs),
		AfterRefut: res.TrueRaces(),
		EventRacer: -1,
		CGPA:       res.Timing.CGPA.Seconds(),
		HBG:        res.Timing.HBG.Seconds(),
		Pairs:      res.Timing.Pairs.Seconds(),
		Compare:    res.Timing.Compare.Seconds(),
		Refutation: res.Timing.Refutation.Seconds(),
		Total:      res.Timing.Total.Seconds(),
		PAPasses:   int(tr.Counter("pointer.passes")),
		PAIters:    int(tr.Counter("pointer.worklist_iterations")),
		RefPaths:   int(tr.Counter("refute.paths")),
		RefPruned:  int(tr.Counter("refute.paths_pruned")),
	}
	for _, r := range res.Reports {
		if gt.Classify(r.Pair.A.Field) == "true" {
			row.TrueRaces++
		} else {
			row.FP++
		}
	}
	if opts.WithDynamic && (ctx == nil || ctx.Err() == nil) {
		races := eventracer.Detect(func() *apk.App {
			a, _ := factory()
			return a
		}, eventracer.Options{
			Schedules:         opts.Schedules,
			EventsPerSchedule: opts.EventsPerSchedule,
			Seed:              1,
		})
		// Count racy event pairs (EventRacer's report granularity), not
		// per-field findings: one unordered event pair racing on many
		// fields is one report.
		pairs := map[string]bool{}
		for _, r := range races {
			pairs[r.Labels[0]+"|"+r.Labels[1]] = true
		}
		row.EventRacer = len(pairs)
	}
	opts.Obs.Absorb(tr.Snapshot())
	return row
}

// EvaluateNamed measures one named-dataset app.
func EvaluateNamed(pr corpus.PaperRow, opts Options) Row {
	return EvaluateApp(pr.Name, func() (*apk.App, *corpus.GroundTruth) {
		return corpus.NamedApp(pr)
	}, opts)
}

// EvaluateFDroid measures one generated-dataset app.
func EvaluateFDroid(i int, opts Options) Row {
	name := corpus.FDroidRow(i).Name
	return EvaluateApp(name, func() (*apk.App, *corpus.GroundTruth) {
		return corpus.FDroidApp(i)
	}, opts)
}

// Median computes the median of a float slice (0 for empty).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MedianRow aggregates per-column medians over measured rows.
func MedianRow(rows []Row) Row {
	pick := func(f func(Row) float64) float64 {
		xs := make([]float64, 0, len(rows))
		for _, r := range rows {
			xs = append(xs, f(r))
		}
		return Median(xs)
	}
	pickER := func() int {
		var xs []float64
		for _, r := range rows {
			if r.EventRacer >= 0 {
				xs = append(xs, float64(r.EventRacer))
			}
		}
		if len(xs) == 0 {
			return -1
		}
		return int(Median(xs))
	}
	return Row{
		Name:       "Median",
		Harnesses:  int(pick(func(r Row) float64 { return float64(r.Harnesses) })),
		Actions:    int(pick(func(r Row) float64 { return float64(r.Actions) })),
		HBEdges:    int(pick(func(r Row) float64 { return float64(r.HBEdges) })),
		OrderedPct: pick(func(r Row) float64 { return r.OrderedPct }),
		RacyNoAS:   int(pick(func(r Row) float64 { return float64(r.RacyNoAS) })),
		RacyAS:     int(pick(func(r Row) float64 { return float64(r.RacyAS) })),
		AfterRefut: int(pick(func(r Row) float64 { return float64(r.AfterRefut) })),
		TrueRaces:  int(pick(func(r Row) float64 { return float64(r.TrueRaces) })),
		FP:         int(pick(func(r Row) float64 { return float64(r.FP) })),
		EventRacer: pickER(),
		CGPA:       pick(func(r Row) float64 { return r.CGPA }),
		HBG:        pick(func(r Row) float64 { return r.HBG }),
		Pairs:      pick(func(r Row) float64 { return r.Pairs }),
		Compare:    pick(func(r Row) float64 { return r.Compare }),
		Refutation: pick(func(r Row) float64 { return r.Refutation }),
		Total:      pick(func(r Row) float64 { return r.Total }),
		PAPasses:   int(pick(func(r Row) float64 { return float64(r.PAPasses) })),
		PAIters:    int(pick(func(r Row) float64 { return float64(r.PAIters) })),
		RefPaths:   int(pick(func(r Row) float64 { return float64(r.RefPaths) })),
		RefPruned:  int(pick(func(r Row) float64 { return float64(r.RefPruned) })),
	}
}

// FormatTable2 renders the dataset table: paper metadata plus the
// generated model's actual size.
func FormatTable2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: App popularity and size for the 20-app dataset\n")
	fmt.Fprintf(&b, "%-16s %-28s %12s %12s\n", "App", "Installs", "dex KB(paper)", "model KB")
	for _, r := range corpus.PaperRows() {
		app, _ := corpus.NamedApp(r)
		fmt.Fprintf(&b, "%-16s %-28s %12d %12d\n", r.Name, r.Installs, r.SizeKB, app.BytecodeSize()/1024)
	}
	return b.String()
}

// FormatTable3 renders effectiveness rows next to the paper's values.
func FormatTable3(rows []Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 3: SIERRA effectiveness (measured | paper)")
	fmt.Fprintf(&b, "%-16s %9s %9s %10s %8s %11s %11s %9s %9s %7s %6s\n",
		"App", "Harness", "Actions", "HB edges", "Ord%", "Racy w/o AS", "Racy w/ AS", "AfterRef", "True", "FP", "ER")
	for _, r := range rows {
		pr, ok := corpus.RowByName(r.Name)
		paper := func(v int) string {
			if !ok {
				return ""
			}
			return fmt.Sprintf("|%d", v)
		}
		er := fmt.Sprintf("%d", r.EventRacer)
		if r.EventRacer < 0 {
			er = "-"
		}
		perER := ""
		if ok {
			if pr.EventRacer >= 0 {
				perER = fmt.Sprintf("|%d", pr.EventRacer)
			} else {
				perER = "|-"
			}
		}
		fmt.Fprintf(&b, "%-16s %9s %9s %10s %8s %11s %11s %9s %9s %7s %6s\n",
			r.Name,
			fmt.Sprintf("%d%s", r.Harnesses, paper(pr.Harnesses)),
			fmt.Sprintf("%d%s", r.Actions, paper(pr.Actions)),
			fmt.Sprintf("%d%s", r.HBEdges, paper(pr.HBEdges)),
			fmt.Sprintf("%.0f%s", r.OrderedPct, paper(pr.OrderedPct)),
			fmt.Sprintf("%d%s", r.RacyNoAS, paper(pr.RacyNoAS)),
			fmt.Sprintf("%d%s", r.RacyAS, paper(pr.RacyAS)),
			fmt.Sprintf("%d%s", r.AfterRefut, paper(pr.AfterRefutation)),
			fmt.Sprintf("%d%s", r.TrueRaces, paper(pr.TrueRaces)),
			fmt.Sprintf("%d%s", r.FP, paper(pr.FP)),
			er+perER,
		)
	}
	m := MedianRow(rows)
	fmt.Fprintf(&b, "%-16s %9d %9d %10d %8.0f %11d %11d %9d %9d %7d %6d\n",
		"Median", m.Harnesses, m.Actions, m.HBEdges, m.OrderedPct,
		m.RacyNoAS, m.RacyAS, m.AfterRefut, m.TrueRaces, m.FP, m.EventRacer)
	fmt.Fprintf(&b, "%-16s %9s %9d %10d %8s %11d %11s %9d %9s %7s %6d\n",
		"Median (paper)", "10.5", 160, 2755, "22", 431, "80.5", 33, "29.5", "8.5", 4)
	return b.String()
}

// FormatTable4 renders per-stage timings plus the effort columns the
// observability layer measures (pointer passes/iterations, refutation
// paths explored/pruned).
func FormatTable4(rows []Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 4: SIERRA efficiency (seconds per stage; paper medians: CG+PA 1310, HBG 28.5, Refutation 560.5, Total 1899 on 2017 APKs)")
	fmt.Fprintf(&b, "%-16s %9s %8s %8s %8s %11s %9s %9s %10s %10s %10s\n",
		"App", "CG+PA", "HBG", "Pairs", "Compare", "Refutation", "Total", "PApasses", "PAiters", "refPaths", "refPruned")
	line := func(name string, r Row) {
		fmt.Fprintf(&b, "%-16s %9.3f %8.3f %8.3f %8.3f %11.3f %9.3f %9d %10d %10d %10d\n",
			name, r.CGPA, r.HBG, r.Pairs, r.Compare, r.Refutation, r.Total,
			r.PAPasses, r.PAIters, r.RefPaths, r.RefPruned)
	}
	for _, r := range rows {
		line(r.Name, r)
	}
	line("Median", MedianRow(rows))
	return b.String()
}

// FormatTable5 renders the large-corpus medians next to the paper's.
func FormatTable5(rows []Row, sizes []int) string {
	m := MedianRow(rows)
	var szs []float64
	for _, s := range sizes {
		szs = append(szs, float64(s))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: SIERRA on the %d-app dataset (medians; measured | paper)\n", len(rows))
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "Metric", "measured", "paper")
	line := func(name string, got, paper string) {
		fmt.Fprintf(&b, "%-22s %14s %14s\n", name, got, paper)
	}
	line("bytecode size (KB)", fmt.Sprintf("%.0f", Median(szs)/1024), "1114")
	line("harnesses", fmt.Sprintf("%d", m.Harnesses), "4.5")
	line("actions", fmt.Sprintf("%d", m.Actions), "67.5")
	line("HB edges", fmt.Sprintf("%d", m.HBEdges), "1223")
	line("ordered (%)", fmt.Sprintf("%.1f", m.OrderedPct), "17.3")
	line("racy pairs (w/ AS)", fmt.Sprintf("%d", m.RacyAS), "68")
	line("after refutation", fmt.Sprintf("%d", m.AfterRefut), "43.5")
	line("CG+PA (s)", fmt.Sprintf("%.3f", m.CGPA), "139")
	line("HBG (s)", fmt.Sprintf("%.3f", m.HBG), "27")
	line("refutation (s)", fmt.Sprintf("%.3f", m.Refutation), "648")
	line("total (s)", fmt.Sprintf("%.3f", m.Total), "960")
	return b.String()
}
