package metrics

import (
	"strings"
	"testing"

	"sierra/internal/corpus"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{1, 2}, 1.5},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestEvaluateNamedRowShape(t *testing.T) {
	pr, _ := corpus.RowByName("SuperGenPass")
	row := EvaluateNamed(pr, Options{WithDynamic: true, Schedules: 3, EventsPerSchedule: 25})
	if row.Name != "SuperGenPass" {
		t.Errorf("name = %s", row.Name)
	}
	if row.Harnesses != pr.Harnesses {
		t.Errorf("harnesses = %d, want %d", row.Harnesses, pr.Harnesses)
	}
	if row.RacyNoAS < row.RacyAS || row.RacyAS < row.AfterRefut {
		t.Errorf("funnel violated: %+v", row)
	}
	if row.TrueRaces+row.FP != row.AfterRefut {
		t.Errorf("classification doesn't sum: %d + %d != %d", row.TrueRaces, row.FP, row.AfterRefut)
	}
	if row.EventRacer < 0 {
		t.Error("dynamic baseline not run")
	}
	if row.EventRacer > row.AfterRefut*3 {
		t.Errorf("dynamic reports implausibly high: %d vs %d static", row.EventRacer, row.AfterRefut)
	}
	if row.Total <= 0 || row.CGPA <= 0 {
		t.Error("timings missing")
	}
}

func TestMedianRowAggregation(t *testing.T) {
	rows := []Row{
		{Harnesses: 1, Actions: 10, RacyAS: 4, EventRacer: 2, Total: 1},
		{Harnesses: 3, Actions: 30, RacyAS: 8, EventRacer: -1, Total: 3},
		{Harnesses: 5, Actions: 50, RacyAS: 12, EventRacer: 6, Total: 5},
	}
	m := MedianRow(rows)
	if m.Harnesses != 3 || m.Actions != 30 || m.RacyAS != 8 || m.Total != 3 {
		t.Errorf("median row wrong: %+v", m)
	}
	// EventRacer median skips the unavailable (-1) entries.
	if m.EventRacer != 4 {
		t.Errorf("ER median = %d, want 4 (median of 2,6)", m.EventRacer)
	}
}

// TestMedianRowCarriesAllFields is the regression test for MedianRow
// forgetting newly-added columns: every timing/effort field must
// aggregate, for both odd- and even-length inputs, and the EventRacer
// median must skip (not zero-fill) the -1 "not run" entries.
func TestMedianRowCarriesAllFields(t *testing.T) {
	mk := func(scale int) Row {
		s := float64(scale)
		return Row{
			Harnesses: scale, Actions: 10 * scale, HBEdges: 100 * scale,
			OrderedPct: s, RacyNoAS: 4 * scale, RacyAS: 2 * scale,
			AfterRefut: scale, TrueRaces: scale, FP: scale,
			EventRacer: -1,
			CGPA:       s, HBG: 2 * s, Pairs: 3 * s, Compare: 4 * s,
			Refutation: 5 * s, Total: 15 * s,
			PAPasses: scale, PAIters: 10 * scale,
			RefPaths: 100 * scale, RefPruned: 50 * scale,
		}
	}

	odd := MedianRow([]Row{mk(1), mk(3), mk(10)})
	wantOdd := mk(3)
	wantOdd.Name = "Median"
	if odd != wantOdd {
		t.Errorf("odd-length median dropped a field:\ngot  %+v\nwant %+v", odd, wantOdd)
	}
	if odd.EventRacer != -1 {
		t.Errorf("all-not-run EventRacer median = %d, want -1", odd.EventRacer)
	}

	even := MedianRow([]Row{mk(1), mk(3)})
	if even.Pairs != 2*3 || even.Compare != 2*4 || even.Refutation != 2*5 {
		t.Errorf("even-length timing medians wrong: %+v", even)
	}
	if even.PAPasses != 2 || even.PAIters != 20 || even.RefPaths != 200 || even.RefPruned != 100 {
		t.Errorf("even-length effort medians wrong: %+v", even)
	}

	// Mixed EventRacer: -1 rows are filtered before the median.
	mixed := []Row{
		{EventRacer: -1}, {EventRacer: 2}, {EventRacer: -1}, {EventRacer: 8},
	}
	if m := MedianRow(mixed); m.EventRacer != 5 {
		t.Errorf("mixed EventRacer median = %d, want 5 (median of 2,8)", m.EventRacer)
	}
}

func TestEvaluateRowEffortColumns(t *testing.T) {
	pr, _ := corpus.RowByName("SuperGenPass")
	row := EvaluateNamed(pr, Options{})
	if row.PAPasses <= 0 || row.PAIters <= 0 {
		t.Errorf("pointer effort columns empty: %+v", row)
	}
	if row.RacyAS > 0 && row.RefPaths <= 0 {
		t.Errorf("refutation ran on %d pairs but RefPaths = %d", row.RacyAS, row.RefPaths)
	}
	if row.Pairs <= 0 || row.Compare <= 0 {
		t.Errorf("Pairs/Compare stages not timed: %+v", row)
	}
	sum := row.CGPA + row.HBG + row.Pairs + row.Compare + row.Refutation
	if sum > row.Total {
		t.Errorf("stage sum %f exceeds total %f", sum, row.Total)
	}
}

func TestFormatTables(t *testing.T) {
	pr, _ := corpus.RowByName("VuDroid")
	row := EvaluateNamed(pr, Options{})
	t3 := FormatTable3([]Row{row})
	for _, want := range []string{"Table 3", "VuDroid", "Median (paper)", "431"} {
		if !strings.Contains(t3, want) {
			t.Errorf("table 3 missing %q:\n%s", want, t3)
		}
	}
	t4 := FormatTable4([]Row{row})
	for _, want := range []string{"Table 4", "VuDroid", "Refutation"} {
		if !strings.Contains(t4, want) {
			t.Errorf("table 4 missing %q", want)
		}
	}
	t5 := FormatTable5([]Row{row}, []int{2048 * 1024})
	for _, want := range []string{"Table 5", "racy pairs", "1114", "2048"} {
		if !strings.Contains(t5, want) {
			t.Errorf("table 5 missing %q:\n%s", want, t5)
		}
	}
}

func TestFormatTable2IncludesAllApps(t *testing.T) {
	t2 := FormatTable2()
	for _, name := range corpus.Names() {
		if !strings.Contains(t2, name) {
			t.Errorf("table 2 missing %s", name)
		}
	}
	if !strings.Contains(t2, "100,000,000–500,000,000") {
		t.Error("install brackets missing")
	}
}

func TestEvaluateFDroid(t *testing.T) {
	row := EvaluateFDroid(7, Options{})
	if !strings.HasPrefix(row.Name, "fdroid-") {
		t.Errorf("name = %s", row.Name)
	}
	if row.AfterRefut > row.RacyAS {
		t.Errorf("funnel violated: %+v", row)
	}
}

func TestPipelineFullyDeterministic(t *testing.T) {
	// Two independent evaluations of the same named app must agree on
	// every column — the whole pipeline (harness, fixpoint, SHBG,
	// refutation, ranking) is deterministic by construction.
	pr, _ := corpus.RowByName("TippyTipper")
	a := EvaluateNamed(pr, Options{})
	b := EvaluateNamed(pr, Options{})
	if a.Actions != b.Actions || a.HBEdges != b.HBEdges ||
		a.RacyNoAS != b.RacyNoAS || a.RacyAS != b.RacyAS ||
		a.AfterRefut != b.AfterRefut || a.TrueRaces != b.TrueRaces || a.FP != b.FP {
		t.Fatalf("nondeterministic pipeline:\n%+v\n%+v", a, b)
	}
}
