package callgraph

import (
	"testing"

	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// hierarchyProgram: Base.get overridden by Sub1/Sub2; Caller.top calls
// virtually via Base, statically via Util, and specially via Sub1.
func hierarchyProgram() *ir.Program {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	base := ir.NewClass("Base", frontend.Object)
	g := ir.NewMethodBuilder("get")
	g.Ret("")
	base.AddMethod(g.Build())
	p.AddClass(base)

	for _, name := range []string{"Sub1", "Sub2"} {
		c := ir.NewClass(name, "Base")
		m := ir.NewMethodBuilder("get")
		m.Ret("")
		c.AddMethod(m.Build())
		p.AddClass(c)
	}

	util := ir.NewClass("Util", frontend.Object)
	h := ir.NewStaticMethodBuilder("helper")
	h.Ret("")
	util.AddMethod(h.Build())
	p.AddClass(util)

	caller := ir.NewClass("Caller", frontend.Object)
	top := ir.NewMethodBuilder("top")
	top.NewObj("o", "Sub1")
	top.Call("", "o", "Base", "get")        // virtual: CHA says all overrides
	top.CallStatic("", "Util", "helper")    // static: exactly one
	top.CallSpecial("", "o", "Sub1", "get") // special: exactly one
	top.Ret("")
	caller.AddMethod(top.Build())
	unused := ir.NewMethodBuilder("unreached")
	unused.CallStatic("", "Util", "helper")
	unused.Ret("")
	caller.AddMethod(unused.Build())
	p.AddClass(caller)
	p.Finalize()
	return p
}

func TestCHAResolution(t *testing.T) {
	p := hierarchyProgram()
	top := p.Class("Caller").Methods["top"]
	g := BuildCHA(p, []*ir.Method{top})

	var virtualTargets, staticTargets, specialTargets []*ir.Method
	for bi, blk := range top.Blocks {
		for si, s := range blk.Stmts {
			inv, ok := s.(*ir.Invoke)
			if !ok {
				continue
			}
			targets := g.Callees(ir.Pos{Method: top, Block: bi, Index: si})
			switch inv.Kind {
			case ir.InvokeVirtual:
				virtualTargets = targets
			case ir.InvokeStatic:
				staticTargets = targets
			case ir.InvokeSpecial:
				specialTargets = targets
			}
		}
	}
	// CHA over-approximates virtual dispatch: Base.get + both overrides.
	if len(virtualTargets) != 3 {
		t.Errorf("virtual targets = %d, want 3 (Base, Sub1, Sub2)", len(virtualTargets))
	}
	if len(staticTargets) != 1 || staticTargets[0].Class.Name != "Util" {
		t.Errorf("static targets = %v", staticTargets)
	}
	if len(specialTargets) != 1 || specialTargets[0].Class.Name != "Sub1" {
		t.Errorf("special targets = %v", specialTargets)
	}
}

func TestCHAReachability(t *testing.T) {
	p := hierarchyProgram()
	top := p.Class("Caller").Methods["top"]
	g := BuildCHA(p, []*ir.Method{top})

	if !g.Reachable(top) {
		t.Error("entry not reachable")
	}
	if !g.Reachable(p.Class("Sub2").Methods["get"]) {
		t.Error("CHA should reach every override")
	}
	if g.Reachable(p.Class("Caller").Methods["unreached"]) {
		t.Error("unreached method should not be reachable")
	}
	names := map[string]bool{}
	for _, m := range g.ReachableMethods() {
		names[m.QualifiedName()] = true
	}
	if !names["Util#helper"] || names["Caller#unreached"] {
		t.Errorf("reachable set wrong: %v", names)
	}
}

func TestCHAReachableFromSubset(t *testing.T) {
	p := hierarchyProgram()
	top := p.Class("Caller").Methods["top"]
	other := p.Class("Caller").Methods["unreached"]
	g := BuildCHA(p, []*ir.Method{top, other})

	fromOther := g.ReachableFrom(other)
	if !fromOther[p.Class("Util").Methods["helper"]] {
		t.Error("helper should be reachable from unreached")
	}
	if fromOther[p.Class("Sub1").Methods["get"]] {
		t.Error("Sub1.get must not be reachable from unreached")
	}
	if got := g.ReachableFrom(nil); len(got) != 0 {
		t.Errorf("nil root should reach nothing, got %d", len(got))
	}
}

func TestCHADeterministicOrder(t *testing.T) {
	p := hierarchyProgram()
	top := p.Class("Caller").Methods["top"]
	g1 := BuildCHA(p, []*ir.Method{top})
	g2 := BuildCHA(p, []*ir.Method{top})
	m1, m2 := g1.ReachableMethods(), g2.ReachableMethods()
	if len(m1) != len(m2) {
		t.Fatal("nondeterministic reachable count")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("order differs at %d", i)
		}
	}
}
