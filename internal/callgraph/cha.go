// Package callgraph builds call graphs over the IR. It provides a cheap
// class-hierarchy-analysis (CHA) graph used by harness generation and by
// the action-insensitive baseline, and defines the call-graph types the
// pointer analysis populates on the fly (the precise, context-sensitive
// graph the paper gets from WALA).
package callgraph

import (
	"sort"

	"sierra/internal/ir"
)

// CHA is a context-insensitive call graph computed by class-hierarchy
// analysis: a virtual call resolves to every subtype override of the
// static receiver type.
type CHA struct {
	prog *ir.Program
	// callees maps a call site to its possible targets.
	callees map[ir.Pos][]*ir.Method
	// reachable is the set of methods reachable from the entry points.
	reachable map[*ir.Method]bool
}

// BuildCHA computes the CHA call graph reachable from entries.
func BuildCHA(p *ir.Program, entries []*ir.Method) *CHA {
	g := &CHA{
		prog:      p,
		callees:   make(map[ir.Pos][]*ir.Method),
		reachable: make(map[*ir.Method]bool),
	}
	work := append([]*ir.Method(nil), entries...)
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		if m == nil || g.reachable[m] {
			continue
		}
		g.reachable[m] = true
		for _, blk := range m.Blocks {
			for _, s := range blk.Stmts {
				inv, ok := s.(*ir.Invoke)
				if !ok {
					continue
				}
				targets := g.resolve(inv)
				if len(targets) > 0 {
					g.callees[inv.Pos()] = targets
					work = append(work, targets...)
				}
			}
		}
	}
	return g
}

// resolve returns the possible callees of inv under CHA.
func (g *CHA) resolve(inv *ir.Invoke) []*ir.Method {
	switch inv.Kind {
	case ir.InvokeStatic, ir.InvokeSpecial:
		if m := g.prog.ResolveMethod(inv.Class, inv.Method); m != nil {
			return []*ir.Method{m}
		}
		return nil
	default:
		seen := make(map[*ir.Method]bool)
		var out []*ir.Method
		add := func(m *ir.Method) {
			if m != nil && !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
		// The static type's own resolution…
		add(g.prog.ResolveMethod(inv.Class, inv.Method))
		// …plus every subtype override.
		for _, sub := range g.prog.SubclassesOf(inv.Class) {
			if m := sub.Methods[inv.Method]; m != nil {
				add(m)
			}
		}
		sort.Slice(out, func(i, j int) bool {
			return out[i].QualifiedName() < out[j].QualifiedName()
		})
		return out
	}
}

// Callees returns the resolved targets of the call at p (nil for
// non-calls and framework no-ops).
func (g *CHA) Callees(p ir.Pos) []*ir.Method { return g.callees[p] }

// Reachable reports whether m is reachable from the entry points.
func (g *CHA) Reachable(m *ir.Method) bool { return g.reachable[m] }

// ReachableMethods returns all reachable methods sorted by name.
func (g *CHA) ReachableMethods() []*ir.Method {
	out := make([]*ir.Method, 0, len(g.reachable))
	for m := range g.reachable {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].QualifiedName() < out[j].QualifiedName()
	})
	return out
}

// ReachableFrom computes the subset of this graph reachable from the
// given roots (following only edges already in the graph). Used to
// attribute code to actions in the action-insensitive baseline.
func (g *CHA) ReachableFrom(roots ...*ir.Method) map[*ir.Method]bool {
	seen := make(map[*ir.Method]bool)
	var work []*ir.Method
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		for _, blk := range m.Blocks {
			for _, s := range blk.Stmts {
				if _, ok := s.(*ir.Invoke); !ok {
					continue
				}
				for _, t := range g.callees[s.Pos()] {
					if !seen[t] {
						seen[t] = true
						work = append(work, t)
					}
				}
			}
		}
	}
	return seen
}
