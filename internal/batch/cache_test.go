package batch

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestMemCacheLRU(t *testing.T) {
	c := NewMemCacheCap(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 becomes the LRU entry.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", []byte{3})
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	// Re-putting an existing key must update in place, not evict.
	c.Put("k2", []byte{42})
	if v, ok := c.Get("k2"); !ok || v[0] != 42 {
		t.Fatalf("k2 after overwrite = %v, %t", v, ok)
	}
	if c.Len() != 3 {
		t.Fatalf("Len after overwrite = %d, want 3", c.Len())
	}
}

func TestMemCacheUnbounded(t *testing.T) {
	c := NewMemCache()
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if c.Len() != 100 {
		t.Fatalf("unbounded cache evicted: Len = %d", c.Len())
	}
}

func TestDirCacheSweep(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Five 100-byte entries with strictly increasing mtimes (the
	// filesystem's mtime granularity can be coarse, so set them
	// explicitly instead of sleeping).
	val := make([]byte, 100)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		c.Put(key, val)
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(c.path(key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	removed, freed := c.Sweep(250)
	if removed != 3 || freed != 300 {
		t.Fatalf("Sweep(250) = (%d, %d), want (3, 300)", removed, freed)
	}
	// The two newest entries survive; the three oldest are gone.
	for i := 0; i < 5; i++ {
		_, ok := c.Get(fmt.Sprintf("k%d", i))
		if want := i >= 3; ok != want {
			t.Fatalf("k%d present = %t, want %t", i, ok, want)
		}
	}
	// Under budget: a second sweep is a no-op.
	if removed, freed := c.Sweep(250); removed != 0 || freed != 0 {
		t.Fatalf("second Sweep = (%d, %d), want (0, 0)", removed, freed)
	}
	// Disabled budget: no-op even over any conceivable size.
	if removed, _ := c.Sweep(0); removed != 0 {
		t.Fatal("Sweep(0) must be a no-op")
	}
	// Subdirectories are left alone.
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if removed, _ := c.Sweep(1); removed != 2 {
		t.Fatalf("final sweep removed %d, want 2", removed)
	}
	if _, err := os.Stat(filepath.Join(dir, "sub")); err != nil {
		t.Fatal("sweep removed a subdirectory")
	}
}
