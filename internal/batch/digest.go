package batch

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"

	"sierra/internal/apk"
	"sierra/internal/appfile"
)

// cacheEpoch versions the cache-key scheme itself. Bump it when the
// analysis changes in ways the options fingerprint cannot express
// (e.g. a pipeline bug fix that alters results for identical inputs),
// so persisted DirCache entries from older binaries are never returned.
const cacheEpoch = "sierra-cache/1"

// AppDigest returns the content digest of an app: the SHA-256 of its
// canonical appfile serialization. Two apps with identical manifests,
// layouts, and (non-framework) code digest identically, and the
// appfile round-trip property — Parse(Dump(app)) analyzes identically
// to app — is what entitles the batch cache to treat the digest as a
// proxy for analysis results. Digest apps before analyzing them:
// harness generation mutates the program.
func AppDigest(app *apk.App) (string, error) {
	raw, err := appfile.Bytes(app)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// RawDigest returns the SHA-256 of raw serialized bytes (e.g. an .app
// file read from disk, hashed without a parse round-trip).
func RawDigest(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Key assembles a cache key from an app digest and the analysis-option
// parts that influence the result (policy name, budgets, toggles —
// anything that changes the serialized job output must appear here).
// The epoch prefix keys out entries written by incompatible versions.
func Key(appDigest string, optionParts ...string) string {
	return cacheEpoch + "|" + appDigest + "|" + strings.Join(optionParts, "|")
}
