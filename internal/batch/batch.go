// Package batch is the concurrent batch-analysis engine: a bounded
// worker pool that runs independent analysis jobs with per-job
// deadlines, panic isolation, a digest-keyed result cache, and
// deterministic in-order result emission.
//
// The engine is deliberately byte-oriented: a Job produces a serialized
// result ([]byte, typically JSON), which is what the cache stores and
// what Run hands back. That keeps the pool generic over workloads (the
// evaluation tables, `sierra -batch`, future corpora) while making the
// cache trivially content-addressed.
//
// Determinism guarantee: Run returns results indexed by input position,
// and OnResult fires in input order regardless of completion order —
// job i's callback never precedes job i-1's. A consumer that renders
// results as it receives them therefore produces byte-identical output
// for any worker count.
//
// Cancellation contract: jobs receive a context that is done when the
// per-job timeout elapses or the whole run is cancelled. Cooperative —
// the SIERRA pipeline polls it at its expensive loop boundaries (the
// pointer-analysis worklist, the SHBG closure rounds, the
// symbolic-execution path loop; see core.AnalyzeContext), so a stuck
// app times out cleanly with a partial-result verdict. A job that
// ignores its context occupies its worker until it returns; it cannot
// stall other workers or the emission of earlier results.
package batch

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"sierra/internal/obs"
	"sierra/internal/obs/eventlog"
)

// Status classifies one job's outcome.
type Status string

const (
	// StatusOK: the job completed and its value was computed fresh.
	StatusOK Status = "ok"
	// StatusCached: the value came from the result cache; the job's Fn
	// never ran.
	StatusCached Status = "cached"
	// StatusFailed: Fn returned an error.
	StatusFailed Status = "failed"
	// StatusPanic: Fn panicked; the panic was recovered and recorded,
	// the process and the other jobs are unaffected.
	StatusPanic Status = "panic"
	// StatusTimeout: the per-job deadline elapsed. Value, when non-nil,
	// is the partial result the job produced before bailing.
	StatusTimeout Status = "timeout"
	// StatusCanceled: the whole run's context was cancelled before or
	// while the job ran.
	StatusCanceled Status = "canceled"
)

// Job is one unit of batch work.
type Job struct {
	// Name identifies the job in results, logs, and obs series.
	Name string
	// KeyFn, when non-nil, returns the job's cache key — conventionally
	// Key(appDigest, optionsFingerprint...). It runs on the worker
	// before Fn; when the configured cache holds the key, Fn is skipped
	// entirely (StatusCached). A KeyFn error disables caching for the
	// job but does not fail it.
	KeyFn func() (string, error)
	// Fn computes the job's serialized result. It must honor ctx to be
	// cancellable (see the package comment's cancellation contract) and
	// may return a partial value alongside a cancelled context.
	Fn func(ctx context.Context) ([]byte, error)
	// Cleanup, when non-nil, runs on the worker once the job settles —
	// whatever the status, cached and canceled included — so a producer
	// can recycle per-job resources (the streaming pipeline returns app
	// buffers to its pool here). It must not touch the Result.
	Cleanup func()
}

// Result is one job's outcome.
type Result struct {
	Name   string
	Status Status
	// Value is the serialized result (fresh, cached, or partial —
	// see Status).
	Value []byte
	// Err carries the failure message for StatusFailed.
	Err string
	// Panic carries the recovered panic value and stack for StatusPanic.
	Panic string
	// Latency is the job's wall-clock time on its worker (zero for jobs
	// never dispatched).
	Latency time.Duration
}

// Options configures a Run.
type Options struct {
	// Workers bounds concurrency (0 = GOMAXPROCS).
	Workers int
	// Timeout is the per-job deadline (0 = none).
	Timeout time.Duration
	// Cache, when non-nil, is consulted before and populated after each
	// keyed job (see Job.KeyFn).
	Cache Cache
	// Obs, when non-nil, receives the engine's counters — batch.jobs,
	// per-status batch.<status> counts, batch.cache_hits/_misses, the
	// batch.latency_ms.* bucket counters, the batch.job_duration_ms
	// histogram, and the per-job batch.job_ms series. Per-result values
	// are recorded live as each job completes (the `-debug-addr`
	// /metrics endpoint reads them mid-run); totals are identical to a
	// post-hoc accounting.
	Obs *obs.Trace
	// Events, when non-nil, receives the engine's flight-recorder
	// events: job_start when a worker picks a job up, job_end when it
	// completes (status, cache hit/miss, digest, duration). Emitted
	// live from the workers, so the stream interleaves in completion
	// order, not input order.
	Events *eventlog.Recorder
	// Tracker, when non-nil, is live progress accounting: begun at Run
	// entry, updated per completion, readable concurrently via
	// Tracker.Snapshot (the /progress endpoint).
	Tracker *Tracker
	// OnResult, when non-nil, observes every result in input order as
	// the completed prefix grows (job i is reported only after jobs
	// 0..i-1). Called from the Run goroutine, never concurrently.
	OnResult func(index int, r Result)
	// Prefetch bounds the producer→worker queue in RunSource (0 =
	// 2×workers). A lazy source is never more than this many jobs ahead
	// of the pool — the engine's backpressure / peak-RSS knob.
	Prefetch int
}

// runJob executes one job on the calling worker: cache probe, deadline,
// panic isolation, status classification, flight-recorder emission.
func runJob(ctx context.Context, index int, j Job, o Options) (r Result) {
	r = Result{Name: j.Name}
	start := time.Now()
	var digest, cacheOutcome string
	defer func() {
		r.Latency = time.Since(start)
		if o.Events != nil {
			e := eventlog.Event{Type: "job_end", Job: j.Name, Index: index,
				Status: string(r.Status), Digest: digest, Cache: cacheOutcome,
				DurMS: float64(r.Latency) / 1e6}
			switch {
			case r.Err != "":
				e.Err = r.Err
			case r.Panic != "":
				e.Err = firstLine(r.Panic)
			}
			o.Events.Emit(e)
		}
	}()
	if ctx.Err() != nil {
		r.Status = StatusCanceled
		return r
	}
	o.Events.Emit(eventlog.Event{Type: "job_start", Job: j.Name, Index: index})

	var key string
	if j.KeyFn != nil && (o.Cache != nil || o.Events != nil) {
		if k, err := j.KeyFn(); err == nil {
			key = k
			digest = keyDigest(k)
		}
	}
	if key != "" && o.Cache != nil {
		if v, ok := o.Cache.Get(key); ok {
			o.Obs.Count("batch.cache_hits", 1)
			cacheOutcome = "hit"
			r.Status = StatusCached
			r.Value = v
			return r
		}
		o.Obs.Count("batch.cache_misses", 1)
		cacheOutcome = "miss"
	}

	jctx := ctx
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	value, err, panicked := safeRun(jctx, j.Fn)
	switch {
	case panicked != "":
		r.Status = StatusPanic
		r.Panic = panicked
	case ctx.Err() != nil:
		r.Status = StatusCanceled
		r.Value = value
	case jctx.Err() != nil:
		r.Status = StatusTimeout
		r.Value = value // partial result, when the job produced one
	case err != nil:
		r.Status = StatusFailed
		r.Err = err.Error()
	default:
		r.Status = StatusOK
		r.Value = value
		if key != "" && o.Cache != nil {
			o.Cache.Put(key, value)
		}
	}
	return r
}

// keyDigest extracts the content-digest component of a cache key built
// by Key (epoch|digest|options...), falling back to the whole key for
// foreign formats.
func keyDigest(key string) string {
	parts := strings.SplitN(key, "|", 3)
	if len(parts) >= 2 {
		return parts[1]
	}
	return key
}

// firstLine truncates a multi-line message (a recovered panic with its
// stack) to its headline for event streams.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// safeRun invokes fn with panic isolation: a panicking job becomes a
// recorded failure, not a dead process.
func safeRun(ctx context.Context, fn func(context.Context) ([]byte, error)) (v []byte, err error, panicked string) {
	defer func() {
		if p := recover(); p != nil {
			panicked = fmt.Sprintf("%v\n%s", p, debug.Stack())
		}
	}()
	v, err = fn(ctx)
	return v, err, ""
}
