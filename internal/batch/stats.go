package batch

import (
	"fmt"
	"time"

	"sierra/internal/obs"
)

// latencyBucketsMS are the upper bounds (milliseconds, cumulative —
// Prometheus-style "le") of the job-latency histogram the engine
// publishes as batch.latency_ms.le_* counters.
var latencyBucketsMS = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// recordResult publishes one completed job's counters to the engine
// trace as it lands — status count, latency bucket counters, the
// batch.job_ms series sample, and the batch.job_duration_ms histogram
// (per-app wall time) — so a mid-run /metrics scrape sees the work
// done so far. Counter totals are order-independent, and the snapshot
// serializer sorts series, so the final trace is identical to the old
// end-of-run accounting for any worker count.
func recordResult(tr *obs.Trace, r Result) {
	if tr == nil {
		return
	}
	tr.Count("batch.jobs", 1)
	tr.Count("batch."+string(r.Status), 1)
	ms := r.Latency.Milliseconds()
	tr.Series("batch.job_ms", r.Name, ms)
	tr.Observe("batch.job_duration_ms", float64(r.Latency)/1e6)
	for _, le := range latencyBucketsMS {
		if ms <= le {
			tr.Count(fmt.Sprintf("batch.latency_ms.le_%d", le), 1)
		}
	}
	tr.Count("batch.latency_ms.le_inf", 1)
	tr.Count("batch.latency_ms.sum", ms)
}

// recordRun publishes a finished run's wall-clock and throughput
// gauges.
func recordRun(tr *obs.Trace, jobs int, wall time.Duration, workers int) {
	if tr == nil {
		return
	}
	tr.Gauge("batch.workers", float64(workers))
	tr.Gauge("batch.wall_ms", float64(wall.Milliseconds()))
	if secs := wall.Seconds(); secs > 0 {
		tr.Gauge("batch.jobs_per_sec", float64(jobs)/secs)
	}
}

// Summary aggregates one run's results for human- and machine-readable
// reporting (the `sierra -batch` trailer, the bench-json throughput
// fields).
type Summary struct {
	Jobs     int     `json:"jobs"`
	OK       int     `json:"ok"`
	Cached   int     `json:"cached"`
	Failed   int     `json:"failed"`
	Panics   int     `json:"panics"`
	Timeouts int     `json:"timeouts"`
	Canceled int     `json:"canceled"`
	WallSecs float64 `json:"wall_seconds"`
	// JobsPerSec is end-to-end throughput: jobs (cached ones included)
	// over wall-clock.
	JobsPerSec float64 `json:"jobs_per_second"`
	// CacheHitRate is cached results over keyed jobs that consulted the
	// cache (0 when nothing did).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Summarize computes a Summary over results and the run's wall-clock.
func Summarize(results []Result, wall time.Duration) Summary {
	s := Summary{Jobs: len(results), WallSecs: wall.Seconds()}
	for _, r := range results {
		switch r.Status {
		case StatusOK:
			s.OK++
		case StatusCached:
			s.Cached++
		case StatusFailed:
			s.Failed++
		case StatusPanic:
			s.Panics++
		case StatusTimeout:
			s.Timeouts++
		case StatusCanceled:
			s.Canceled++
		}
	}
	if s.WallSecs > 0 {
		s.JobsPerSec = float64(s.Jobs) / s.WallSecs
	}
	if probed := s.Cached + s.OK; probed > 0 {
		s.CacheHitRate = float64(s.Cached) / float64(probed)
	}
	return s
}

// String renders the one-line trailer both CLIs print after a batch.
func (s Summary) String() string {
	return fmt.Sprintf("jobs=%d ok=%d cached=%d failed=%d panics=%d timeouts=%d canceled=%d wall=%.2fs throughput=%.2f/s cache-hit-rate=%.0f%%",
		s.Jobs, s.OK, s.Cached, s.Failed, s.Panics, s.Timeouts, s.Canceled,
		s.WallSecs, s.JobsPerSec, 100*s.CacheHitRate)
}
