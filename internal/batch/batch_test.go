package batch_test

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sierra/internal/batch"
	"sierra/internal/corpus"
	"sierra/internal/obs"
)

// TestStress is the acceptance stress test: 64 jobs on 8 workers with
// injected panics and timeouts (plus plain failures), run under
// `go test -race`. One crashing or stuck app must become a failed job
// record, never a dead process, and emission must stay in input order.
func TestStress(t *testing.T) {
	const n = 64
	jobs := make([]batch.Job, n)
	kind := func(i int) batch.Status {
		switch {
		case i%7 == 3:
			return batch.StatusPanic
		case i%11 == 5:
			return batch.StatusTimeout
		case i%13 == 7:
			return batch.StatusFailed
		default:
			return batch.StatusOK
		}
	}
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = batch.Job{
			Name: fmt.Sprintf("job-%02d", i),
			Fn: func(ctx context.Context) ([]byte, error) {
				switch kind(i) {
				case batch.StatusPanic:
					panic(fmt.Sprintf("injected panic in job %d", i))
				case batch.StatusTimeout:
					<-ctx.Done() // a "stuck app" that honors cancellation
					return []byte(fmt.Sprintf("partial-%d", i)), nil
				case batch.StatusFailed:
					return nil, fmt.Errorf("injected failure in job %d", i)
				default:
					return []byte(fmt.Sprintf("value-%d", i)), nil
				}
			},
		}
	}

	tr := obs.New("stress")
	var emitted []int
	results := batch.Run(context.Background(), jobs, batch.Options{
		Workers: 8,
		Timeout: 30 * time.Millisecond,
		Obs:     tr,
		OnResult: func(i int, r batch.Result) {
			emitted = append(emitted, i)
		},
	})

	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		want := kind(i)
		if r.Status != want {
			t.Errorf("job %d: status %q, want %q", i, r.Status, want)
		}
		switch want {
		case batch.StatusOK:
			if string(r.Value) != fmt.Sprintf("value-%d", i) {
				t.Errorf("job %d: value %q", i, r.Value)
			}
		case batch.StatusTimeout:
			// The partial-result verdict: a timed-out job's value survives.
			if string(r.Value) != fmt.Sprintf("partial-%d", i) {
				t.Errorf("job %d: partial value %q", i, r.Value)
			}
		case batch.StatusPanic:
			if !strings.Contains(r.Panic, "injected panic") {
				t.Errorf("job %d: panic record %q", i, r.Panic)
			}
		case batch.StatusFailed:
			if !strings.Contains(r.Err, "injected failure") {
				t.Errorf("job %d: err %q", i, r.Err)
			}
		}
	}
	for i, idx := range emitted {
		if idx != i {
			t.Fatalf("emission out of order: position %d got index %d", i, idx)
		}
	}
	if got := tr.Counter("batch.jobs"); got != n {
		t.Errorf("batch.jobs = %d, want %d", got, n)
	}
	s := batch.Summarize(results, time.Second)
	if s.Panics == 0 || s.Timeouts == 0 || s.Failed == 0 || s.OK == 0 {
		t.Errorf("summary misses a status class: %+v", s)
	}
	if s.Jobs != s.OK+s.Failed+s.Panics+s.Timeouts {
		t.Errorf("summary classes do not partition jobs: %+v", s)
	}
	if tr.Counter("batch.panic") != int64(s.Panics) || tr.Counter("batch.timeout") != int64(s.Timeouts) {
		t.Errorf("obs status counters disagree with summary: %+v", s)
	}
}

// TestCacheWarmRun verifies the digest-keyed cache: a second run over
// the same inputs must not re-execute any job.
func TestCacheWarmRun(t *testing.T) {
	const n = 16
	cache := batch.NewMemCache()
	var executions atomic.Int64
	mkJobs := func() []batch.Job {
		jobs := make([]batch.Job, n)
		for i := 0; i < n; i++ {
			i := i
			jobs[i] = batch.Job{
				Name:  fmt.Sprintf("app-%d", i),
				KeyFn: func() (string, error) { return batch.Key(fmt.Sprintf("digest-%d", i), "opts"), nil },
				Fn: func(ctx context.Context) ([]byte, error) {
					executions.Add(1)
					return []byte(fmt.Sprintf("result-%d", i)), nil
				},
			}
		}
		return jobs
	}

	tr := obs.New("cold")
	cold := batch.Run(context.Background(), mkJobs(), batch.Options{Workers: 4, Cache: cache, Obs: tr})
	if got := executions.Load(); got != n {
		t.Fatalf("cold run executed %d jobs, want %d", got, n)
	}
	if tr.Counter("batch.cache_misses") != n || tr.Counter("batch.cache_hits") != 0 {
		t.Fatalf("cold run cache counters: hits=%d misses=%d",
			tr.Counter("batch.cache_hits"), tr.Counter("batch.cache_misses"))
	}

	tr2 := obs.New("warm")
	warm := batch.Run(context.Background(), mkJobs(), batch.Options{Workers: 4, Cache: cache, Obs: tr2})
	if got := executions.Load(); got != n {
		t.Fatalf("warm run re-executed jobs: %d executions total", got)
	}
	if tr2.Counter("batch.cache_hits") != n {
		t.Fatalf("warm run cache hits = %d, want %d", tr2.Counter("batch.cache_hits"), n)
	}
	for i := range warm {
		if warm[i].Status != batch.StatusCached {
			t.Errorf("warm job %d status %q", i, warm[i].Status)
		}
		if string(warm[i].Value) != string(cold[i].Value) {
			t.Errorf("warm job %d value %q != cold %q", i, warm[i].Value, cold[i].Value)
		}
	}
}

// TestRunCancel verifies whole-run cancellation: once the parent
// context dies, in-flight jobs unwind and undispatched jobs are marked
// canceled without running — and every result slot is still populated.
func TestRunCancel(t *testing.T) {
	const n = 32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	jobs := make([]batch.Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = batch.Job{
			Name: fmt.Sprintf("job-%d", i),
			Fn: func(jctx context.Context) ([]byte, error) {
				if i == 0 {
					cancel()
					close(release)
					return []byte("trigger"), nil
				}
				select {
				case <-jctx.Done():
				case <-release:
				}
				return []byte("late"), nil
			},
		}
	}
	results := batch.Run(ctx, jobs, batch.Options{Workers: 2})
	var canceled int
	for i, r := range results {
		if r.Status == "" {
			t.Fatalf("job %d has no status", i)
		}
		if r.Status == batch.StatusCanceled {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("expected canceled jobs after parent-context cancellation")
	}
}

// TestDirCache exercises the directory cache across instances (the
// cross-process warm-run path).
func TestDirCache(t *testing.T) {
	dir := t.TempDir()
	c1, err := batch.NewDirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := batch.Key("deadbeef", "policy=as", "maxpaths=5000")
	if _, ok := c1.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	c1.Put(key, []byte("row-json"))
	c2, err := batch.NewDirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := c2.Get(key)
	if !ok || string(v) != "row-json" {
		t.Fatalf("second instance Get = %q, %v", v, ok)
	}
	if _, ok := c2.Get(batch.Key("deadbeef", "policy=hybrid")); ok {
		t.Fatal("different options fingerprint must miss")
	}
}

// TestAppDigestStable verifies the cache key's foundation: two fresh
// instances of the same corpus app digest identically, and different
// apps digest differently.
func TestAppDigestStable(t *testing.T) {
	row, ok := corpus.RowByName("OpenSudoku")
	if !ok {
		t.Fatal("OpenSudoku missing from corpus")
	}
	a1, _ := corpus.NamedApp(row)
	a2, _ := corpus.NamedApp(row)
	d1, err := batch.AppDigest(a1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := batch.AppDigest(a2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("fresh instances digest differently: %s vs %s", d1, d2)
	}
	other, _ := corpus.FDroidApp(0)
	d3, err := batch.AppDigest(other)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("distinct apps share a digest")
	}
}

// TestDeterministicEmissionUnderRandomLatency hammers the in-order
// emission guarantee with jobs completing in scrambled order.
func TestDeterministicEmissionUnderRandomLatency(t *testing.T) {
	const n = 40
	jobs := make([]batch.Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = batch.Job{
			Name: fmt.Sprintf("j%d", i),
			Fn: func(ctx context.Context) ([]byte, error) {
				// Reverse-staggered sleeps: later jobs finish first.
				time.Sleep(time.Duration((n-i)%8) * time.Millisecond)
				return []byte{byte(i)}, nil
			},
		}
	}
	var order []int
	results := batch.Run(context.Background(), jobs, batch.Options{
		Workers:  8,
		OnResult: func(i int, r batch.Result) { order = append(order, i) },
	})
	for i := range order {
		if order[i] != i {
			t.Fatalf("OnResult order[%d] = %d", i, order[i])
		}
	}
	for i, r := range results {
		if len(r.Value) != 1 || r.Value[0] != byte(i) {
			t.Fatalf("result %d carries wrong value %v", i, r.Value)
		}
	}
}
