package batch

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Cache stores serialized job results under content-addressed keys.
// Implementations must be safe for concurrent use and best-effort: a
// cache may drop entries or fail silently, never corrupt them.
type Cache interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
}

// MemCache is an in-process Cache. Unbounded by default (a CLI run's
// working set), it can be capped for daemon life: with a cap, entries
// are evicted least-recently-used once the cap is exceeded, where
// "used" means touched by Get or Put.
type MemCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element
	// lru orders entries most-recently-used first; evictions pop the
	// back. Entries are *memEntry values.
	lru list.List
}

// memEntry is one cached value with its key (needed to unmap on
// eviction).
type memEntry struct {
	key string
	val []byte
}

// NewMemCache returns an empty, unbounded in-memory cache.
func NewMemCache() *MemCache { return NewMemCacheCap(0) }

// NewMemCacheCap returns an empty in-memory cache holding at most max
// entries (max <= 0 = unbounded). Exceeding the cap evicts the
// least-recently-used entry, so a long-running process keeps its hot
// working set without growing forever.
func NewMemCacheCap(max int) *MemCache {
	return &MemCache{max: max, m: make(map[string]*list.Element)}
}

// Get returns the cached value for key, marking it most recently used.
func (c *MemCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*memEntry).val, true
}

// Put stores val under key (value is copied; callers may reuse the
// slice) and evicts the least-recently-used entries beyond the cap.
func (c *MemCache) Put(key string, val []byte) {
	cp := append([]byte(nil), val...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*memEntry).val = cp
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&memEntry{key: key, val: cp})
	for c.max > 0 && c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*memEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *MemCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// DirCache is a directory-backed Cache: one file per key, named by the
// key's SHA-256 (keys may contain arbitrary bytes; filenames may not).
// It is what makes a re-run of an unchanged corpus near-free across
// processes. Entries never expire on their own — the key embeds the app
// digest and the options fingerprint, so stale entries are simply never
// asked for — but a long-lived process can bound the directory's size
// with Sweep.
type DirCache struct {
	dir string
	// sweepMu serializes Sweep passes (concurrent Get/Put stay
	// lock-free; a swept-away entry is just a miss).
	sweepMu sync.Mutex
}

// NewDirCache creates (if needed) and opens a directory cache.
func NewDirCache(dir string) (*DirCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirCache{dir: dir}, nil
}

// Dir returns the cache's backing directory.
func (c *DirCache) Dir() string { return c.dir }

func (c *DirCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:]))
}

// Get reads the entry for key (a missing or unreadable file is a miss).
func (c *DirCache) Get(key string) ([]byte, bool) {
	v, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	return v, true
}

// Put writes the entry atomically (temp file + rename), so concurrent
// writers and readers of one key never observe a torn value. Errors are
// swallowed: a cache that cannot write is a cache that misses.
func (c *DirCache) Put(key string, val []byte) {
	dst := c.path(key)
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(val)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
	}
}

// Sweep is the best-effort size-budgeted GC for daemon life: when the
// cache's total byte size exceeds maxBytes, the oldest entries (by
// modification time — Put rewrites a refreshed entry's file, bumping
// it) are removed until the total fits. maxBytes <= 0 is a no-op.
// Returns entries removed and bytes freed. Failures are skipped, never
// fatal: a sweep that races a concurrent Put simply frees a little
// less, and a swept entry costs its next reader one cache miss.
func (c *DirCache) Sweep(maxBytes int64) (removed int, freed int64) {
	if maxBytes <= 0 {
		return 0, 0
	}
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, 0
	}
	type fileInfo struct {
		path  string
		size  int64
		mtime int64
	}
	var files []fileInfo
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{
			path:  filepath.Join(c.dir, e.Name()),
			size:  fi.Size(),
			mtime: fi.ModTime().UnixNano(),
		})
		total += fi.Size()
	}
	if total <= maxBytes {
		return 0, 0
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(f.path); err != nil {
			continue
		}
		total -= f.size
		freed += f.size
		removed++
	}
	return removed, freed
}
