package batch

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"
)

// Cache stores serialized job results under content-addressed keys.
// Implementations must be safe for concurrent use and best-effort: a
// cache may drop entries or fail silently, never corrupt them.
type Cache interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
}

// MemCache is an in-process Cache (a run-local map). Useful for warm
// reruns within one process and for tests.
type MemCache struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache { return &MemCache{m: make(map[string][]byte)} }

// Get returns the cached value for key.
func (c *MemCache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.m[key]
	return v, ok
}

// Put stores val under key (value is copied; callers may reuse the
// slice).
func (c *MemCache) Put(key string, val []byte) {
	c.mu.Lock()
	c.m[key] = append([]byte(nil), val...)
	c.mu.Unlock()
}

// Len reports the number of cached entries.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// DirCache is a directory-backed Cache: one file per key, named by the
// key's SHA-256 (keys may contain arbitrary bytes; filenames may not).
// It is what makes a re-run of an unchanged corpus near-free across
// processes. Entries never expire — the key embeds the app digest and
// the options fingerprint, so stale entries are simply never asked for;
// clear the directory to reclaim space or after changing the analysis
// in ways the fingerprint does not capture.
type DirCache struct {
	dir string
}

// NewDirCache creates (if needed) and opens a directory cache.
func NewDirCache(dir string) (*DirCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirCache{dir: dir}, nil
}

func (c *DirCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:]))
}

// Get reads the entry for key (a missing or unreadable file is a miss).
func (c *DirCache) Get(key string) ([]byte, bool) {
	v, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	return v, true
}

// Put writes the entry atomically (temp file + rename), so concurrent
// writers and readers of one key never observe a torn value. Errors are
// swallowed: a cache that cannot write is a cache that misses.
func (c *DirCache) Put(key string, val []byte) {
	dst := c.path(key)
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(val)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
	}
}
