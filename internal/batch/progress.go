package batch

import (
	"sync"
	"time"
)

// Tracker is the engine's live progress accounting: Run updates it as
// results complete, and the `-debug-addr` server's /progress endpoint
// reads it mid-run. The zero value is ready to use; all methods are
// safe for concurrent use and no-ops on a nil receiver, matching the
// obs conventions. A Tracker may be reused across sequential Runs (the
// evaluate tables): each Run re-begins it.
type Tracker struct {
	mu        sync.Mutex
	start     time.Time
	total     int
	streaming bool
	srcDone   bool
	done      int
	ok        int
	cached    int
	failed    int
	panics    int
	timeouts  int
	canceled  int
}

// begin resets the tracker for a run of total jobs.
func (t *Tracker) begin(total int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.start = time.Now()
	t.total = total
	t.streaming, t.srcDone = false, false
	t.done, t.ok, t.cached, t.failed, t.panics, t.timeouts, t.canceled = 0, 0, 0, 0, 0, 0, 0
	t.mu.Unlock()
}

// beginStream resets the tracker for a streaming run whose total is
// unknown: jobs_total grows as the source produces (see produce) and
// the ETA stays 0 until the source is exhausted.
func (t *Tracker) beginStream() {
	if t == nil {
		return
	}
	t.begin(0)
	t.mu.Lock()
	t.streaming = true
	t.mu.Unlock()
}

// produce records one job pulled from a streaming source — the growing
// jobs_total denominator.
func (t *Tracker) produce() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total++
	t.mu.Unlock()
}

// sourceDone marks the streaming source exhausted: jobs_total is final
// and the ETA extrapolation switches on.
func (t *Tracker) sourceDone() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.srcDone = true
	t.mu.Unlock()
}

// observe folds one completed result in.
func (t *Tracker) observe(r Result) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done++
	switch r.Status {
	case StatusOK:
		t.ok++
	case StatusCached:
		t.cached++
	case StatusFailed:
		t.failed++
	case StatusPanic:
		t.panics++
	case StatusTimeout:
		t.timeouts++
	case StatusCanceled:
		t.canceled++
	}
	t.mu.Unlock()
}

// Progress is one tracker reading — the /progress JSON schema.
type Progress struct {
	JobsTotal int `json:"jobs_total"`
	JobsDone  int `json:"jobs_done"`
	OK        int `json:"ok"`
	Cached    int `json:"cached"`
	Failed    int `json:"failed"`
	Panics    int `json:"panics"`
	Timeouts  int `json:"timeouts"`
	Canceled  int `json:"canceled"`
	// ElapsedSeconds is wall-clock since the run began.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// JobsPerSec is completed jobs (cached included) over elapsed time.
	JobsPerSec float64 `json:"jobs_per_second"`
	// CacheHitRate is cached over cached+ok so far (0 when nothing ran).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// ETASeconds extrapolates the remaining jobs at the current rate
	// (0 when done or before the first completion — always finite).
	// Streaming runs report 0 until the source is exhausted: with a
	// growing denominator there is nothing honest to extrapolate.
	ETASeconds float64 `json:"eta_seconds"`
	// Streaming marks a run over a lazy source: JobsTotal is the
	// produced-so-far count, final only once SourceDone.
	Streaming  bool `json:"streaming,omitempty"`
	SourceDone bool `json:"source_done,omitempty"`
}

// Snapshot reads the tracker's current state.
func (t *Tracker) Snapshot() Progress {
	if t == nil {
		return Progress{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := Progress{
		JobsTotal: t.total, JobsDone: t.done,
		OK: t.ok, Cached: t.cached, Failed: t.failed,
		Panics: t.panics, Timeouts: t.timeouts, Canceled: t.canceled,
		Streaming: t.streaming, SourceDone: t.srcDone,
	}
	if !t.start.IsZero() {
		p.ElapsedSeconds = time.Since(t.start).Seconds()
	}
	if p.ElapsedSeconds > 0 && p.JobsDone > 0 {
		p.JobsPerSec = float64(p.JobsDone) / p.ElapsedSeconds
		if !t.streaming || t.srcDone {
			p.ETASeconds = float64(p.JobsTotal-p.JobsDone) / p.JobsPerSec
		}
	}
	if probed := p.Cached + p.OK; probed > 0 {
		p.CacheHitRate = float64(p.Cached) / float64(probed)
	}
	return p
}
