package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// genSource yields n trivial jobs lazily, tracking how far production
// has run ahead of completion (the backpressure observable).
type genSource struct {
	n        int
	next     int
	produced int32
}

func (g *genSource) Next(ctx context.Context) (Job, bool, error) {
	if g.next >= g.n || ctx.Err() != nil {
		return Job{}, false, nil
	}
	i := g.next
	g.next++
	atomic.AddInt32(&g.produced, 1)
	return Job{
		Name: fmt.Sprintf("job-%03d", i),
		Fn: func(context.Context) ([]byte, error) {
			return []byte(fmt.Sprintf("v%d", i)), nil
		},
	}, true, nil
}

// TestRunSourceOrdering: results and OnResult callbacks arrive in
// production order for any worker count, matching the slice path.
func TestRunSourceOrdering(t *testing.T) {
	for _, workers := range []int{1, 4, 9} {
		var emitted []string
		results, err := RunSource(nil, &genSource{n: 40}, Options{
			Workers: workers,
			OnResult: func(i int, r Result) {
				if i != len(emitted) {
					t.Fatalf("OnResult out of order: got %d want %d", i, len(emitted))
				}
				emitted = append(emitted, string(r.Value))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 40 || len(emitted) != 40 {
			t.Fatalf("workers=%d: %d results, %d emitted", workers, len(results), len(emitted))
		}
		for i, r := range results {
			want := fmt.Sprintf("v%d", i)
			if string(r.Value) != want || r.Status != StatusOK {
				t.Fatalf("workers=%d result[%d] = %q (%s)", workers, i, r.Value, r.Status)
			}
		}
	}
}

// TestRunSourceBackpressure: a lazy source never runs more than
// prefetch + workers + 1 jobs ahead of completions.
func TestRunSourceBackpressure(t *testing.T) {
	const n, workers, prefetch = 60, 2, 3
	var completed int32
	var maxAhead int32
	src := &genSource{n: n}
	wrapped := FuncSource(func(ctx context.Context) (Job, bool, error) {
		j, ok, err := src.Next(ctx)
		if !ok || err != nil {
			return j, ok, err
		}
		inner := j.Fn
		j.Fn = func(ctx context.Context) ([]byte, error) {
			time.Sleep(time.Millisecond)
			v, e := inner(ctx)
			done := atomic.AddInt32(&completed, 1)
			ahead := atomic.LoadInt32(&src.produced) - done
			for {
				m := atomic.LoadInt32(&maxAhead)
				if ahead <= m || atomic.CompareAndSwapInt32(&maxAhead, m, ahead) {
					break
				}
			}
			return v, e
		}
		return j, true, nil
	})
	if _, err := RunSource(nil, wrapped, Options{Workers: workers, Prefetch: prefetch}); err != nil {
		t.Fatal(err)
	}
	// Queue capacity + one per worker + one in the producer's hand.
	limit := int32(prefetch + workers + 1)
	if atomic.LoadInt32(&maxAhead) > limit {
		t.Fatalf("producer ran %d ahead; backpressure bound is %d", maxAhead, limit)
	}
}

// TestRunSourceCleanup: Cleanup runs exactly once per job whatever the
// status — ok, failed, panicked, cached, canceled.
func TestRunSourceCleanup(t *testing.T) {
	cache := NewMemCache()
	cache.Put(Key(RawDigest([]byte("seed")), "warm"), []byte("cached-value"))
	var mu sync.Mutex
	cleaned := map[string]int{}
	mk := func(name string, fn func(context.Context) ([]byte, error), key string) Job {
		j := Job{Name: name, Fn: fn, Cleanup: func() {
			mu.Lock()
			cleaned[name]++
			mu.Unlock()
		}}
		if key != "" {
			j.KeyFn = func() (string, error) { return Key(RawDigest([]byte("seed")), key), nil }
		}
		return j
	}
	jobs := []Job{
		mk("ok", func(context.Context) ([]byte, error) { return []byte("x"), nil }, ""),
		mk("fail", func(context.Context) ([]byte, error) { return nil, errors.New("no") }, ""),
		mk("panic", func(context.Context) ([]byte, error) { panic("boom") }, ""),
		mk("hit", func(context.Context) ([]byte, error) { t.Fatal("cached job ran"); return nil, nil }, "warm"),
	}
	results := Run(nil, jobs, Options{Workers: 2, Cache: cache})
	for i, want := range []Status{StatusOK, StatusFailed, StatusPanic, StatusCached} {
		if results[i].Status != want {
			t.Fatalf("job %d status = %s, want %s", i, results[i].Status, want)
		}
	}
	for _, j := range jobs {
		if cleaned[j.Name] != 1 {
			t.Fatalf("cleanup ran %d times for %s", cleaned[j.Name], j.Name)
		}
	}

	// Canceled: a pre-cancelled context still cleans up every job.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mu.Lock()
	cleaned = map[string]int{}
	mu.Unlock()
	results = Run(ctx, jobs[:2], Options{Workers: 1})
	for _, r := range results {
		if r.Status != StatusCanceled {
			t.Fatalf("status %s after cancel", r.Status)
		}
	}
	if cleaned["ok"] != 1 || cleaned["fail"] != 1 {
		t.Fatalf("cleanup skipped on canceled jobs: %v", cleaned)
	}
}

// TestRunSourceError: a failing source terminates intake, returns the
// error, and keeps the already-produced prefix complete and ordered.
func TestRunSourceError(t *testing.T) {
	boom := errors.New("generator exploded")
	i := 0
	src := FuncSource(func(context.Context) (Job, bool, error) {
		if i == 5 {
			return Job{}, false, boom
		}
		n := i
		i++
		return Job{Name: fmt.Sprintf("j%d", n), Fn: func(context.Context) ([]byte, error) {
			return []byte{byte('0' + n)}, nil
		}}, true, nil
	})
	results, err := RunSource(nil, src, Options{Workers: 3})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("%d results before the failure", len(results))
	}
	for n, r := range results {
		if string(r.Value) != string(byte('0'+n)) {
			t.Fatalf("result %d = %q", n, r.Value)
		}
	}
}

// TestTrackerStreaming: a stream run's total grows with production, the
// ETA stays 0 until the source is done, and the final snapshot matches.
func TestTrackerStreaming(t *testing.T) {
	tr := &Tracker{}
	release := make(chan struct{})
	var sawMidrun atomic.Bool
	i := 0
	src := FuncSource(func(context.Context) (Job, bool, error) {
		if i == 8 {
			return Job{}, false, nil
		}
		i++
		return Job{Name: fmt.Sprintf("s%d", i), Fn: func(context.Context) ([]byte, error) {
			if !sawMidrun.Swap(true) {
				p := tr.Snapshot()
				if !p.Streaming {
					t.Error("mid-run snapshot not streaming")
				}
				if p.SourceDone && p.JobsTotal < 8 {
					t.Error("source done before production finished")
				}
				close(release)
			} else {
				<-release
			}
			return nil, nil
		}}, true, nil
	})
	if _, err := RunSource(nil, src, Options{Workers: 2, Tracker: tr}); err != nil {
		t.Fatal(err)
	}
	p := tr.Snapshot()
	if !p.Streaming || !p.SourceDone {
		t.Fatalf("final snapshot: %+v", p)
	}
	if p.JobsTotal != 8 || p.JobsDone != 8 || p.OK != 8 {
		t.Fatalf("final counts: %+v", p)
	}
}
