package batch_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sierra/internal/batch"
	"sierra/internal/obs"
	"sierra/internal/obs/eventlog"
)

// TestTrackerAndEvents runs a mixed batch with the full telemetry
// stack wired and checks that (a) the tracker's final reading matches
// the summary, (b) every job leaves a job_start/job_end event pair
// with the right status, cache outcome, and digest, and (c) the
// engine's live-recorded counters and histogram agree with the result
// set.
func TestTrackerAndEvents(t *testing.T) {
	const n = 12
	cache := batch.NewMemCache()
	// Pre-warm one key so a cache hit shows up.
	warmKey := batch.Key("d-03", "opts")
	cache.Put(warmKey, []byte("warm"))

	jobs := make([]batch.Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = batch.Job{
			Name: fmt.Sprintf("job-%02d", i),
			KeyFn: func() (string, error) {
				return batch.Key(fmt.Sprintf("d-%02d", i), "opts"), nil
			},
			Fn: func(ctx context.Context) ([]byte, error) {
				switch {
				case i == 5:
					return nil, errors.New("boom")
				case i == 7:
					panic("kaboom")
				default:
					return []byte("v"), nil
				}
			},
		}
	}

	tr := obs.New("batch")
	rec := eventlog.New(nil, 64)
	var tk batch.Tracker
	results := batch.Run(context.Background(), jobs, batch.Options{
		Workers: 4,
		Cache:   cache,
		Obs:     tr,
		Events:  rec,
		Tracker: &tk,
	})

	p := tk.Snapshot()
	sum := batch.Summarize(results, time.Second)
	if p.JobsDone != n || p.JobsTotal != n {
		t.Fatalf("tracker = %+v", p)
	}
	if p.OK != sum.OK || p.Cached != sum.Cached || p.Failed != sum.Failed || p.Panics != sum.Panics {
		t.Fatalf("tracker %+v disagrees with summary %+v", p, sum)
	}
	if p.Cached != 1 {
		t.Fatalf("cached = %d, want 1", p.Cached)
	}
	if p.ETASeconds != 0 {
		t.Fatalf("finished run must have zero ETA, got %v", p.ETASeconds)
	}
	if p.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate = %v", p.CacheHitRate)
	}

	// Event accounting: one job_start per dispatched job, one job_end
	// per job, statuses reconstructable from the stream alone.
	events := rec.Tail(0)
	starts, ends := 0, map[string]eventlog.Event{}
	for _, e := range events {
		switch e.Type {
		case "job_start":
			starts++
		case "job_end":
			ends[e.Job] = e
		}
	}
	if starts != n || len(ends) != n {
		t.Fatalf("starts=%d ends=%d, want %d", starts, len(ends), n)
	}
	tally := map[string]int{}
	for _, e := range ends {
		tally[e.Status]++
	}
	if tally["ok"] != sum.OK || tally["cached"] != sum.Cached ||
		tally["failed"] != sum.Failed || tally["panic"] != sum.Panics {
		t.Fatalf("event tally %v disagrees with summary %+v", tally, sum)
	}
	if e := ends["job-03"]; e.Cache != "hit" || e.Digest != "d-03" {
		t.Fatalf("cached job event = %+v", e)
	}
	if e := ends["job-00"]; e.Cache != "miss" || e.Digest != "d-00" || e.DurMS < 0 {
		t.Fatalf("fresh job event = %+v", e)
	}
	if e := ends["job-05"]; e.Err != "boom" {
		t.Fatalf("failed job event = %+v", e)
	}
	if e := ends["job-07"]; e.Err == "" {
		t.Fatalf("panicking job event = %+v", e)
	}

	// Live-recorded counters and histogram match the result set.
	if got := tr.Counter("batch.jobs"); got != n {
		t.Fatalf("batch.jobs = %d", got)
	}
	if got := tr.Counter("batch.ok"); got != int64(sum.OK) {
		t.Fatalf("batch.ok = %d, want %d", got, sum.OK)
	}
	snap := tr.Snapshot()
	if h := snap.Histograms["batch.job_duration_ms"]; h.Count != n {
		t.Fatalf("batch.job_duration_ms count = %d, want %d", h.Count, n)
	}
}

// TestTrackerMidRun reads progress while jobs are still executing: the
// snapshot must be internally consistent and the ETA finite.
func TestTrackerMidRun(t *testing.T) {
	const n = 8
	release := make(chan struct{})
	jobs := make([]batch.Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = batch.Job{
			Name: fmt.Sprintf("job-%d", i),
			Fn: func(ctx context.Context) ([]byte, error) {
				if i >= n/2 {
					<-release
				}
				return []byte("v"), nil
			},
		}
	}
	var tk batch.Tracker
	done := make(chan []batch.Result, 1)
	go func() {
		done <- batch.Run(context.Background(), jobs, batch.Options{Workers: 2, Tracker: &tk})
	}()
	// Wait until the unblocked half has landed.
	deadline := time.After(5 * time.Second)
	for {
		p := tk.Snapshot()
		if p.JobsDone >= n/2 {
			if p.JobsTotal != n || p.JobsDone > n {
				t.Fatalf("inconsistent mid-run progress %+v", p)
			}
			if p.JobsPerSec <= 0 || p.ETASeconds < 0 {
				t.Fatalf("rate/ETA not live: %+v", p)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stuck at %+v", p)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	<-done
	if p := tk.Snapshot(); p.JobsDone != n {
		t.Fatalf("final progress %+v", p)
	}
}

func TestNilTracker(t *testing.T) {
	var tk *batch.Tracker
	if p := tk.Snapshot(); p != (batch.Progress{}) {
		t.Fatalf("nil tracker snapshot = %+v", p)
	}
}
