package batch

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Source produces jobs lazily, one at a time, for RunSource. Next is
// called from a single producer goroutine — implementations need no
// internal locking against concurrent Next calls. The contract:
//
//   - Next returns (job, true, nil) to yield the next job; jobs are
//     numbered by arrival order (the determinism index).
//   - Next returns (_, false, nil) at end of stream.
//   - Next returns (_, false, err) on a production failure, which
//     terminates the run's intake; already-produced jobs still finish.
//   - ctx is the run context. A source doing real work (generating an
//     app) should return ok=false once ctx is done, so cancellation
//     stops production promptly. A source with trivially cheap items
//     may ignore ctx and drain fully — that is how SliceSource
//     preserves Run's canceled-tail accounting.
//
// Backpressure: RunSource pulls from the source only while the bounded
// prefetch queue has room, so a fast producer cannot run ahead of slow
// analysis by more than Options.Prefetch jobs — that queue bound times
// the max job payload is the engine's contribution to peak RSS.
type Source interface {
	Next(ctx context.Context) (Job, bool, error)
}

// Sized is an optional Source refinement: a source that knows its total
// job count up front. RunSource uses it to clamp the worker pool and to
// give the progress tracker a fixed denominator; without it the run is
// a "streaming" run with a growing total.
type Sized interface {
	Len() int
}

// sliceSource adapts a materialized job list. It deliberately ignores
// ctx in Next so that a cancelled run still pulls every job through the
// engine and marks the undispatched tail StatusCanceled — Run's
// historical contract.
type sliceSource struct {
	jobs []Job
	next int
}

// SliceSource wraps a pre-built job list as a Source.
func SliceSource(jobs []Job) Source { return &sliceSource{jobs: jobs} }

func (s *sliceSource) Len() int { return len(s.jobs) }

func (s *sliceSource) Next(context.Context) (Job, bool, error) {
	if s.next >= len(s.jobs) {
		return Job{}, false, nil
	}
	j := s.jobs[s.next]
	s.next++
	return j, true, nil
}

// FuncSource adapts a closure as a Source.
type FuncSource func(ctx context.Context) (Job, bool, error)

func (f FuncSource) Next(ctx context.Context) (Job, bool, error) { return f(ctx) }

// RunSource executes jobs pulled lazily from src on a bounded worker
// pool and returns their results indexed by production order. All of
// Run's guarantees carry over unchanged — in-order OnResult emission,
// per-job deadlines, panic isolation, cache probing, canceled
// classification — plus the streaming contract documented on Source.
// The returned error is the source's production error, if any; results
// for jobs produced before the failure are complete and ordered.
func RunSource(ctx context.Context, src Source, o Options) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	total, sized := -1, false
	if s, ok := src.(Sized); ok {
		total, sized = s.Len(), true
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if sized && workers > total {
		workers = total
	}
	start := time.Now()
	if sized {
		o.Tracker.begin(total)
		if total == 0 {
			return []Result{}, nil
		}
	} else {
		o.Tracker.beginStream()
	}
	prefetch := o.Prefetch
	if prefetch <= 0 {
		prefetch = 2 * workers
	}

	type indexedJob struct {
		i int
		j Job
	}
	type indexedRes struct {
		i int
		r Result
	}
	jobCh := make(chan indexedJob, prefetch)
	resCh := make(chan indexedRes)
	var produced int64
	var depth, depthPeak int64
	var srcErr error

	// Producer: the single goroutine pulling the source assigns the
	// determinism indices; the buffered jobCh is the backpressure bound.
	go func() {
		defer close(jobCh)
		for i := 0; ; i++ {
			j, ok, err := src.Next(ctx)
			if err != nil {
				srcErr = err
				o.Obs.Count("batch.stream_source_errors", 1)
				return
			}
			if !ok {
				return
			}
			atomic.AddInt64(&produced, 1)
			if !sized {
				o.Tracker.produce()
			}
			d := atomic.AddInt64(&depth, 1)
			for {
				p := atomic.LoadInt64(&depthPeak)
				if d <= p || atomic.CompareAndSwapInt64(&depthPeak, p, d) {
					break
				}
			}
			jobCh <- indexedJob{i, j}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ij := range jobCh {
				atomic.AddInt64(&depth, -1)
				r := runJob(ctx, ij.i, ij.j, o)
				if ij.j.Cleanup != nil {
					ij.j.Cleanup()
				}
				resCh <- indexedRes{ij.i, r}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Collect out-of-order completions, emit the done prefix in
	// production order (the determinism guarantee).
	var results []Result
	pending := map[int]Result{}
	next := 0
	for ir := range resCh {
		pending[ir.i] = ir.r
		o.Tracker.observe(ir.r)
		recordResult(o.Obs, ir.r)
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			results = append(results, r)
			if o.OnResult != nil {
				o.OnResult(next, r)
			}
			next++
		}
	}
	o.Tracker.sourceDone()
	if !sized {
		o.Obs.Count("batch.stream_produced", atomic.LoadInt64(&produced))
		o.Obs.Gauge("batch.stream_queue_peak", float64(atomic.LoadInt64(&depthPeak)))
	}
	recordRun(o.Obs, len(results), time.Since(start), workers)
	return results, srcErr
}

// Run executes the jobs on a bounded worker pool and returns their
// results indexed by input position. It blocks until every dispatched
// job has returned; when ctx is cancelled, undispatched jobs are marked
// StatusCanceled without running. ctx may be nil. Run is the
// materialized-list form of RunSource; see the package comment for the
// determinism and cancellation contracts.
func Run(ctx context.Context, jobs []Job, o Options) []Result {
	results, _ := RunSource(ctx, SliceSource(jobs), o)
	return results
}
