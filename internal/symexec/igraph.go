package symexec

import (
	"strconv"
	"unsafe"

	"sierra/internal/ir"
)

// branch labels on backward edges: walking backward across an If learns
// which way the branch went.
type branch int

const (
	branchNone branch = iota
	branchTrue
	branchFalse
)

// frame is one inline instance of a method. Frames are slab-allocated
// by the builder (pointer-stable chunks), not heap-allocated one by
// one.
type frame struct {
	id    int
	m     *ir.Method
	depth int
}

// inode is a node of the inlined action graph: either a real statement
// in a frame, or a synthetic move (parameter/return plumbing).
type inode struct {
	frame *frame
	pos   ir.Pos // valid for real statements
	// synthetic move: dst := src (frame-qualified); nil otherwise.
	synthDst, synthSrc string
	isSynth            bool
	isEntry            bool
	// stmt caches pos.Stmt() for real statements so the walker's inner
	// loop skips the block/index lookup.
	stmt ir.Stmt
	// qdst/qsrc/qcond are the statement's frame-qualified variable
	// names, resolved once at build time — the reverse transfer
	// functions would otherwise concatenate them on every path visit.
	qdst, qsrc, qcond string
}

// pred is a backward edge with its branch label.
type pred struct {
	node int
	br   branch
}

// igraph is the inlined control-flow graph of one action root.
type igraph struct {
	nodes []inode
	// CSR predecessor storage: predsOf(n) is
	// predData[predIdx[n]:predIdx[n+1]], with each node's predecessors
	// in edge insertion order — the walker's visit order is identical
	// to the old per-node append slices, in two flat arrays instead of
	// one slice header plus growth chain per node.
	predIdx  []int32
	predData []pred
	// entry is the root frame's entry node.
	entry int
	// exits are Return nodes of the root frame.
	exits []int
	// byPos maps a statement position to every node instantiating it
	// (ascending node id); the per-pos slices share one backing array.
	byPos map[ir.Pos][]int
}

// predsOf returns node's backward edges (read-only).
func (g *igraph) predsOf(n int) []pred {
	return g.predData[g.predIdx[n]:g.predIdx[n+1]]
}

// igraphLimits bounds construction.
type igraphLimits struct {
	maxDepth int
	maxNodes int
}

// buildIGraph inlines root into a flat graph with a one-shot builder
// (tests use it; the refuter keeps a persistent builder so scratch and
// slabs amortize across its actions).
func buildIGraph(root *ir.Method, callees func(ir.Pos) []*ir.Method, lim igraphLimits) *igraph {
	return newIGBuilder().build(root, callees, lim)
}

// igEdge is one backward edge buffered during construction; finalize
// packs the buffer into the graph's CSR arrays.
type igEdge struct {
	from, to int32
	br       branch
}

// igBuilder constructs inlined action graphs. It is built for reuse:
// per-build scratch (node/edge buffers, visited sets, cursors) is reset
// between builds, per-method tables (block bases) are cached for the
// builder's lifetime, and everything a finished graph retains — node
// arrays, CSR predecessors, byPos backing, frames, qualified-name
// bytes — is carved right-sized out of append-only slabs. Graphs built
// by one builder therefore share slab chunks and must share the
// builder's lifetime (per refuter; forks reference the same read-only
// graphs).
type igBuilder struct {
	g       *igraph
	callees func(ir.Pos) []*ir.Method
	lim     igraphLimits
	nframes int

	// Per-build scratch, reset by build().
	nodes     []inode
	edges     []igEdge
	exitsBuf  []int   // stack-disciplined per-frame Return lists
	nodeOfBuf []int32 // stack-disciplined per-frame pos→node tables
	onStack   map[*ir.Method]bool
	counts    map[ir.Pos]int32
	cursor    []int32
	// succBuf and seen are the successor-resolution scratch: firstOfInto
	// appends into succBuf, and epoch-stamped seen replaces the old
	// per-call visited maps (one epoch bump per call reproduces their
	// semantics exactly, including duplicates across separate calls).
	succBuf []int
	seen    []int32
	epoch   int32

	// blockBase caches, per method, the ordinal of each block's first
	// statement (one trailing total entry), so a frame's pos→node table
	// is a flat slice indexed by base[bi]+si instead of a map.
	blockBase map[*ir.Method][]int32

	// Retained output slabs (append-only; never reset — finished graphs
	// reference carved views).
	frames    []frame
	graphSlab []igraph
	nodeSlab  []inode
	idxSlab   []int32
	predSlab  []pred
	intSlab   []int
	strSlab   []byte
}

func newIGBuilder() *igBuilder {
	return &igBuilder{
		onStack:   map[*ir.Method]bool{},
		counts:    map[ir.Pos]int32{},
		blockBase: map[*ir.Method][]int32{},
	}
}

// build inlines root (and transitively its callees, as resolved by
// callees) into a flat graph. Recursion and depth overruns fall back to
// call fall-through edges, which over-approximates feasibility — the
// sound direction for refutation.
func (b *igBuilder) build(root *ir.Method, callees func(ir.Pos) []*ir.Method, lim igraphLimits) *igraph {
	if lim.maxDepth == 0 {
		lim.maxDepth = 6
	}
	if lim.maxNodes == 0 {
		lim.maxNodes = 20000
	}
	b.callees = callees
	b.lim = lim
	b.nframes = 0
	b.nodes = b.nodes[:0]
	b.edges = b.edges[:0]
	b.exitsBuf = b.exitsBuf[:0]
	b.nodeOfBuf = b.nodeOfBuf[:0]
	clear(b.onStack)

	b.graphSlab = growChunk(b.graphSlab, 1)
	b.graphSlab = append(b.graphSlab, igraph{})
	b.g = &b.graphSlab[len(b.graphSlab)-1]

	b.onStack[root] = true
	entry := b.inline(root, 0)
	delete(b.onStack, root)
	b.g.entry = entry
	b.finalize(b.exitsBuf)
	b.precompute()
	return b.g
}

// qvar frame-qualifies a variable name, carving the string out of the
// builder's byte slab (append-only, so unsafe.String is safe: the bytes
// are never moved or rewritten).
func (b *igBuilder) qvar(f *frame, v string) string {
	if v == "" {
		return ""
	}
	need := 21 + len(v)
	b.strSlab = growChunk(b.strSlab, need)
	start := len(b.strSlab)
	b.strSlab = strconv.AppendInt(b.strSlab, int64(f.id), 10)
	b.strSlab = append(b.strSlab, ':')
	b.strSlab = append(b.strSlab, v...)
	s := b.strSlab[start:]
	return unsafe.String(&s[0], len(s))
}

func (b *igBuilder) newNode(n inode) int {
	id := len(b.nodes)
	b.nodes = append(b.nodes, n)
	return id
}

func (b *igBuilder) addEdge(from, to int, br branch) {
	b.edges = append(b.edges, igEdge{from: int32(from), to: int32(to), br: br})
}

// finalize copies the scratch node array right-sized into the node
// slab, packs the buffered edges into CSR form (preserving per-node
// insertion order), and builds byPos with one shared backing array.
func (b *igBuilder) finalize(exits []int) {
	g := b.g
	n := len(b.nodes)

	b.nodeSlab = growChunk(b.nodeSlab, n)
	st := len(b.nodeSlab)
	b.nodeSlab = append(b.nodeSlab, b.nodes...)
	g.nodes = b.nodeSlab[st:len(b.nodeSlab):len(b.nodeSlab)]

	b.intSlab = growChunk(b.intSlab, len(exits))
	st = len(b.intSlab)
	b.intSlab = append(b.intSlab, exits...)
	g.exits = b.intSlab[st:len(b.intSlab):len(b.intSlab)]

	b.idxSlab = growChunk(b.idxSlab, n+1)
	st = len(b.idxSlab)
	b.idxSlab = b.idxSlab[:st+n+1]
	g.predIdx = b.idxSlab[st : st+n+1 : st+n+1]
	clear(g.predIdx)
	for _, e := range b.edges {
		g.predIdx[e.to+1]++
	}
	for i := 0; i < n; i++ {
		g.predIdx[i+1] += g.predIdx[i]
	}

	b.predSlab = growChunk(b.predSlab, len(b.edges))
	st = len(b.predSlab)
	b.predSlab = b.predSlab[:st+len(b.edges)]
	g.predData = b.predSlab[st : st+len(b.edges) : st+len(b.edges)]
	if cap(b.cursor) < n {
		b.cursor = make([]int32, n)
	} else {
		b.cursor = b.cursor[:n]
		clear(b.cursor)
	}
	for _, e := range b.edges {
		g.predData[g.predIdx[e.to]+b.cursor[e.to]] = pred{node: int(e.from), br: e.br}
		b.cursor[e.to]++
	}

	// byPos: count per position, carve per-pos views out of one backing
	// array, then fill in node order (ascending ids per pos — the same
	// order incremental appends produced).
	clear(b.counts)
	total := 0
	for i := range g.nodes {
		if g.nodes[i].pos.Method != nil {
			b.counts[g.nodes[i].pos]++
			total++
		}
	}
	b.intSlab = growChunk(b.intSlab, total)
	st = len(b.intSlab)
	b.intSlab = b.intSlab[:st+total]
	backing := b.intSlab[st : st+total : st+total]
	g.byPos = make(map[ir.Pos][]int, len(b.counts))
	off := 0
	for pos, c := range b.counts {
		g.byPos[pos] = backing[off : off : off+int(c)]
		off += int(c)
	}
	for i := range g.nodes {
		pos := g.nodes[i].pos
		if pos.Method == nil {
			continue
		}
		g.byPos[pos] = append(g.byPos[pos], i)
	}
}

// precompute resolves every node's statement and frame-qualified names
// once, keeping the walker's per-visit work free of lookups and string
// building.
func (b *igBuilder) precompute() {
	g := b.g
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.isSynth || n.isEntry || n.pos.Method == nil {
			continue
		}
		n.stmt = n.pos.Stmt()
		f := n.frame
		switch s := n.stmt.(type) {
		case *ir.Const:
			n.qdst = b.qvar(f, s.Dst)
		case *ir.Move:
			n.qdst, n.qsrc = b.qvar(f, s.Dst), b.qvar(f, s.Src)
		case *ir.New:
			n.qdst = b.qvar(f, s.Dst)
		case *ir.Load:
			n.qdst = b.qvar(f, s.Dst)
		case *ir.Store:
			n.qsrc = b.qvar(f, s.Src)
		case *ir.StaticLoad:
			n.qdst = b.qvar(f, s.Dst)
		case *ir.StaticStore:
			n.qsrc = b.qvar(f, s.Src)
		case *ir.Invoke:
			if s.Dst != "" {
				n.qdst = b.qvar(f, s.Dst)
			}
		case *ir.BinOp:
			n.qdst = b.qvar(f, s.Dst)
		case *ir.If:
			n.qcond = b.qvar(f, s.A)
		}
	}
}

// blockBases returns (caching per method) the statement ordinal of each
// block's start, with a trailing entry holding the method's statement
// total.
func (b *igBuilder) blockBases(m *ir.Method) []int32 {
	if base, ok := b.blockBase[m]; ok {
		return base
	}
	base := make([]int32, len(m.Blocks)+1)
	for bi, blk := range m.Blocks {
		base[bi+1] = base[bi] + int32(len(blk.Stmts))
	}
	b.blockBase[m] = base
	return base
}

// firstOfInto appends to succBuf the first statement node at/after
// block bi, following empty blocks. One epoch per call gives each call
// a fresh visited set, like the old per-call maps — duplicates across
// separate calls are preserved on purpose (they produce duplicate
// edges, which the walker visits twice; parity requires keeping them).
func (b *igBuilder) firstOfInto(m *ir.Method, base, nodeOf []int32, bi int) {
	b.epoch++
	if len(b.seen) < len(m.Blocks) {
		b.seen = append(b.seen, make([]int32, len(m.Blocks)-len(b.seen))...)
	}
	b.firstOfRec(m, base, nodeOf, bi)
}

func (b *igBuilder) firstOfRec(m *ir.Method, base, nodeOf []int32, bi int) {
	if b.seen[bi] == b.epoch {
		return
	}
	b.seen[bi] = b.epoch
	blk := m.Blocks[bi]
	if len(blk.Stmts) > 0 {
		b.succBuf = append(b.succBuf, int(nodeOf[base[bi]]))
		return
	}
	for _, s := range blk.Succs {
		b.firstOfRec(m, base, nodeOf, s)
	}
}

// inline instantiates m as a new frame, returning its entry node. The
// frame's Return nodes are appended to b.exitsBuf — callers snapshot
// len(b.exitsBuf) before the call, read the suffix, and truncate back;
// the lifetimes nest like a stack, so one shared buffer serves every
// frame.
func (b *igBuilder) inline(m *ir.Method, depth int) (entry int) {
	b.frames = growChunk(b.frames, 1)
	b.frames = append(b.frames, frame{id: b.nframes, m: m, depth: depth})
	f := &b.frames[len(b.frames)-1]
	b.nframes++

	// One node per statement; blocks may be empty. nodeOf is flat,
	// indexed by the method's statement ordinal (base[bi]+si), carved
	// stack-style from the shared buffer (its contents are fixed before
	// any nested inline appends, so a stale backing view stays valid).
	base := b.blockBases(m)
	total := int(base[len(m.Blocks)])
	noMark := len(b.nodeOfBuf)
	for cap(b.nodeOfBuf) < noMark+total {
		b.nodeOfBuf = append(b.nodeOfBuf[:cap(b.nodeOfBuf)], 0)
	}
	b.nodeOfBuf = b.nodeOfBuf[:noMark+total]
	nodeOf := b.nodeOfBuf[noMark : noMark+total]
	ord := 0
	for bi, blk := range m.Blocks {
		for si := range blk.Stmts {
			pos := ir.Pos{Method: m, Block: bi, Index: si}
			nodeOf[ord] = int32(b.newNode(inode{frame: f, pos: pos}))
			ord++
		}
	}
	// entry marker node preceding the first statement.
	entry = b.newNode(inode{frame: f, isEntry: true})

	if len(m.Blocks) > 0 {
		b.succBuf = b.succBuf[:0]
		b.firstOfInto(m, base, nodeOf, 0)
		for _, first := range b.succBuf {
			b.addEdge(entry, first, branchNone)
		}
	}

	// Wire statements.
	for bi, blk := range m.Blocks {
		for si, s := range blk.Stmts {
			id := int(nodeOf[base[bi]+int32(si)])
			switch st := s.(type) {
			case *ir.Return:
				b.exitsBuf = append(b.exitsBuf, id)
				continue
			case *ir.If:
				// Two successor blocks with branch labels.
				if len(blk.Succs) == 2 {
					b.succBuf = b.succBuf[:0]
					b.firstOfInto(m, base, nodeOf, blk.Succs[0])
					for _, t := range b.succBuf {
						b.addEdge(id, t, branchTrue)
					}
					b.succBuf = b.succBuf[:0]
					b.firstOfInto(m, base, nodeOf, blk.Succs[1])
					for _, t := range b.succBuf {
						b.addEdge(id, t, branchFalse)
					}
				}
				continue
			case *ir.Invoke:
				// Copy out of the scratch: the successor list must
				// survive the recursive inline below.
				nexts := append([]int(nil), b.stmtSuccs(m, blk, bi, si, base, nodeOf)...)
				inlined := b.inlineCall(f, id, st, ir.Pos{Method: m, Block: bi, Index: si}, depth, nexts)
				if !inlined {
					for _, nx := range nexts {
						b.addEdge(id, nx, branchNone)
					}
				}
				continue
			}
			for _, nx := range b.stmtSuccs(m, blk, bi, si, base, nodeOf) {
				b.addEdge(id, nx, branchNone)
			}
		}
	}
	b.nodeOfBuf = b.nodeOfBuf[:noMark]
	return entry
}

// stmtSuccs returns the forward successor nodes of statement (bi, si)
// in the builder's shared scratch buffer — valid until the next
// successor resolution.
func (b *igBuilder) stmtSuccs(m *ir.Method, blk *ir.Block, bi, si int, base, nodeOf []int32) []int {
	b.succBuf = b.succBuf[:0]
	if si+1 < len(blk.Stmts) {
		b.succBuf = append(b.succBuf, int(nodeOf[base[bi]+int32(si)+1]))
		return b.succBuf
	}
	// One epoch per successor, like the old fresh map per successor
	// (cross-successor duplicates preserved).
	for _, s := range blk.Succs {
		b.firstOfInto(m, base, nodeOf, s)
	}
	return b.succBuf
}

// inlineCall expands a call: param moves → callee entry, callee returns
// → return move → the call's successors. Returns false when nothing was
// inlined (no bodies, recursion, or depth exhausted) so the caller adds
// a fall-through edge instead.
func (b *igBuilder) inlineCall(f *frame, callNode int, inv *ir.Invoke, pos ir.Pos, depth int, nexts []int) bool {
	if depth >= b.lim.maxDepth || len(b.nodes) >= b.lim.maxNodes || b.callees == nil {
		return false
	}
	targets := b.callees(pos)
	inlinedAny := false
	for _, callee := range targets {
		if callee == nil || len(callee.Blocks) == 0 || b.onStack[callee] {
			continue
		}
		b.onStack[callee] = true
		exMark := len(b.exitsBuf)
		calleeEntry := b.inline(callee, depth+1)
		delete(b.onStack, callee)
		calleeExits := b.exitsBuf[exMark:]
		cf := b.nodes[calleeEntry].frame

		// Chain of synthetic moves: receiver then parameters.
		cur := callNode
		link := func(dst, src string) {
			n := b.newNode(inode{frame: cf, isSynth: true, synthDst: dst, synthSrc: src})
			b.addEdge(cur, n, branchNone)
			cur = n
		}
		if inv.Recv != "" && !callee.Static {
			link(b.qvar(cf, "this"), b.qvar(f, inv.Recv))
		}
		nargs := len(inv.Args)
		if len(callee.Params) < nargs {
			nargs = len(callee.Params)
		}
		for i := 0; i < nargs; i++ {
			link(b.qvar(cf, callee.Params[i]), b.qvar(f, inv.Args[i]))
		}
		b.addEdge(cur, calleeEntry, branchNone)

		// Returns: move the returned var into the call's destination.
		for _, ret := range calleeExits {
			retStmt := b.nodes[ret].pos.Stmt().(*ir.Return)
			after := ret
			if inv.Dst != "" && retStmt.Src != "" {
				mv := b.newNode(inode{frame: cf, isSynth: true,
					synthDst: b.qvar(f, inv.Dst), synthSrc: b.qvar(cf, retStmt.Src)})
				b.addEdge(ret, mv, branchNone)
				after = mv
			}
			for _, nx := range nexts {
				b.addEdge(after, nx, branchNone)
			}
		}
		b.exitsBuf = b.exitsBuf[:exMark]
		inlinedAny = true
	}
	return inlinedAny
}
