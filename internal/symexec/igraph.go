package symexec

import (
	"sierra/internal/ir"
)

// branch labels on backward edges: walking backward across an If learns
// which way the branch went.
type branch int

const (
	branchNone branch = iota
	branchTrue
	branchFalse
)

// frame is one inline instance of a method.
type frame struct {
	id    int
	m     *ir.Method
	depth int
}

// qvar frame-qualifies a variable name.
func (f *frame) qvar(v string) string {
	if v == "" {
		return ""
	}
	return itoa(f.id) + ":" + v
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}

// inode is a node of the inlined action graph: either a real statement
// in a frame, or a synthetic move (parameter/return plumbing).
type inode struct {
	frame *frame
	pos   ir.Pos // valid for real statements
	// synthetic move: dst := src (frame-qualified); nil otherwise.
	synthDst, synthSrc string
	isSynth            bool
	isEntry            bool
	// stmt caches pos.Stmt() for real statements so the walker's inner
	// loop skips the block/index lookup.
	stmt ir.Stmt
	// qdst/qsrc/qcond are the statement's frame-qualified variable
	// names, resolved once at build time — the reverse transfer
	// functions would otherwise concatenate them on every path visit.
	qdst, qsrc, qcond string
}

// pred is a backward edge with its branch label.
type pred struct {
	node int
	br   branch
}

// igraph is the inlined control-flow graph of one action root.
type igraph struct {
	nodes []inode
	preds [][]pred
	// entry is the root frame's entry node.
	entry int
	// exits are Return nodes of the root frame.
	exits []int
	// byPos maps a statement position to every node instantiating it.
	byPos map[ir.Pos][]int
}

// igraphLimits bounds construction.
type igraphLimits struct {
	maxDepth int
	maxNodes int
}

// buildIGraph inlines root (and transitively its callees, as resolved by
// callees) into a flat graph. Recursion and depth overruns fall back to
// call fall-through edges, which over-approximates feasibility — the
// sound direction for refutation.
func buildIGraph(root *ir.Method, callees func(ir.Pos) []*ir.Method, lim igraphLimits) *igraph {
	if lim.maxDepth == 0 {
		lim.maxDepth = 6
	}
	if lim.maxNodes == 0 {
		lim.maxNodes = 20000
	}
	b := &igBuilder{
		g:       &igraph{byPos: map[ir.Pos][]int{}},
		callees: callees,
		lim:     lim,
	}
	entry, exits := b.inline(root, 0, map[*ir.Method]bool{root: true})
	b.g.entry = entry
	b.g.exits = exits
	b.g.precompute()
	return b.g
}

// precompute resolves every node's statement and frame-qualified names
// once, keeping the walker's per-visit work free of lookups and string
// building.
func (g *igraph) precompute() {
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.isSynth || n.isEntry || n.pos.Method == nil {
			continue
		}
		n.stmt = n.pos.Stmt()
		f := n.frame
		switch s := n.stmt.(type) {
		case *ir.Const:
			n.qdst = f.qvar(s.Dst)
		case *ir.Move:
			n.qdst, n.qsrc = f.qvar(s.Dst), f.qvar(s.Src)
		case *ir.New:
			n.qdst = f.qvar(s.Dst)
		case *ir.Load:
			n.qdst = f.qvar(s.Dst)
		case *ir.Store:
			n.qsrc = f.qvar(s.Src)
		case *ir.StaticLoad:
			n.qdst = f.qvar(s.Dst)
		case *ir.StaticStore:
			n.qsrc = f.qvar(s.Src)
		case *ir.Invoke:
			if s.Dst != "" {
				n.qdst = f.qvar(s.Dst)
			}
		case *ir.BinOp:
			n.qdst = f.qvar(s.Dst)
		case *ir.If:
			n.qcond = f.qvar(s.A)
		}
	}
}

type igBuilder struct {
	g       *igraph
	callees func(ir.Pos) []*ir.Method
	lim     igraphLimits
	nframes int
}

func (b *igBuilder) newNode(n inode) int {
	id := len(b.g.nodes)
	b.g.nodes = append(b.g.nodes, n)
	b.g.preds = append(b.g.preds, nil)
	if n.pos.Method != nil {
		b.g.byPos[n.pos] = append(b.g.byPos[n.pos], id)
	}
	return id
}

func (b *igBuilder) addEdge(from, to int, br branch) {
	b.g.preds[to] = append(b.g.preds[to], pred{node: from, br: br})
}

// inline instantiates m as a new frame, returning its entry node and the
// frame's Return nodes.
func (b *igBuilder) inline(m *ir.Method, depth int, onStack map[*ir.Method]bool) (entry int, exits []int) {
	f := &frame{id: b.nframes, m: m, depth: depth}
	b.nframes++

	// One node per statement; blocks may be empty.
	nodeOf := map[ir.Pos]int{}
	for bi, blk := range m.Blocks {
		for si := range blk.Stmts {
			pos := ir.Pos{Method: m, Block: bi, Index: si}
			nodeOf[pos] = b.newNode(inode{frame: f, pos: pos})
		}
	}
	// entry marker node preceding the first statement.
	entry = b.newNode(inode{frame: f, isEntry: true})

	// firstOf resolves the first statement node at/after a block.
	var firstOf func(bi int, seen map[int]bool) []int
	firstOf = func(bi int, seen map[int]bool) []int {
		if seen[bi] {
			return nil
		}
		seen[bi] = true
		blk := m.Blocks[bi]
		if len(blk.Stmts) > 0 {
			return []int{nodeOf[ir.Pos{Method: m, Block: bi, Index: 0}]}
		}
		var out []int
		for _, s := range blk.Succs {
			out = append(out, firstOf(s, seen)...)
		}
		return out
	}

	if len(m.Blocks) > 0 {
		for _, first := range firstOf(0, map[int]bool{}) {
			b.addEdge(entry, first, branchNone)
		}
	}

	// Wire statements.
	for bi, blk := range m.Blocks {
		for si, s := range blk.Stmts {
			pos := ir.Pos{Method: m, Block: bi, Index: si}
			id := nodeOf[pos]
			switch st := s.(type) {
			case *ir.Return:
				exits = append(exits, id)
				continue
			case *ir.If:
				// Two successor blocks with branch labels.
				if len(blk.Succs) == 2 {
					for _, t := range firstOf(blk.Succs[0], map[int]bool{}) {
						b.addEdge(id, t, branchTrue)
					}
					for _, t := range firstOf(blk.Succs[1], map[int]bool{}) {
						b.addEdge(id, t, branchFalse)
					}
				}
				continue
			case *ir.Invoke:
				nexts := b.stmtSuccs(m, blk, bi, si, nodeOf, firstOf)
				inlined := b.inlineCall(f, id, st, pos, depth, onStack, nexts)
				if !inlined {
					for _, nx := range nexts {
						b.addEdge(id, nx, branchNone)
					}
				}
				continue
			}
			for _, nx := range b.stmtSuccs(m, blk, bi, si, nodeOf, firstOf) {
				b.addEdge(id, nx, branchNone)
			}
		}
	}
	return entry, exits
}

// stmtSuccs returns the forward successor nodes of statement (bi, si).
func (b *igBuilder) stmtSuccs(m *ir.Method, blk *ir.Block, bi, si int, nodeOf map[ir.Pos]int, firstOf func(int, map[int]bool) []int) []int {
	if si+1 < len(blk.Stmts) {
		return []int{nodeOf[ir.Pos{Method: m, Block: bi, Index: si + 1}]}
	}
	var out []int
	for _, s := range blk.Succs {
		out = append(out, firstOf(s, map[int]bool{})...)
	}
	return out
}

// inlineCall expands a call: param moves → callee entry, callee returns
// → return move → the call's successors. Returns false when nothing was
// inlined (no bodies, recursion, or depth exhausted) so the caller adds
// a fall-through edge instead.
func (b *igBuilder) inlineCall(f *frame, callNode int, inv *ir.Invoke, pos ir.Pos, depth int, onStack map[*ir.Method]bool, nexts []int) bool {
	if depth >= b.lim.maxDepth || len(b.g.nodes) >= b.lim.maxNodes || b.callees == nil {
		return false
	}
	targets := b.callees(pos)
	inlinedAny := false
	for _, callee := range targets {
		if callee == nil || len(callee.Blocks) == 0 || onStack[callee] {
			continue
		}
		onStack[callee] = true
		calleeEntry, calleeExits := b.inline(callee, depth+1, onStack)
		delete(onStack, callee)
		cf := b.g.nodes[calleeEntry].frame

		// Chain of synthetic moves: receiver then parameters.
		cur := callNode
		link := func(dst, src string) {
			n := b.newNode(inode{frame: cf, isSynth: true, synthDst: dst, synthSrc: src})
			b.addEdge(cur, n, branchNone)
			cur = n
		}
		if inv.Recv != "" && !callee.Static {
			link(cf.qvar("this"), f.qvar(inv.Recv))
		}
		nargs := len(inv.Args)
		if len(callee.Params) < nargs {
			nargs = len(callee.Params)
		}
		for i := 0; i < nargs; i++ {
			link(cf.qvar(callee.Params[i]), f.qvar(inv.Args[i]))
		}
		b.addEdge(cur, calleeEntry, branchNone)

		// Returns: move the returned var into the call's destination.
		for _, ret := range calleeExits {
			retStmt := b.g.nodes[ret].pos.Stmt().(*ir.Return)
			after := ret
			if inv.Dst != "" && retStmt.Src != "" {
				mv := b.newNode(inode{frame: cf, isSynth: true,
					synthDst: f.qvar(inv.Dst), synthSrc: cf.qvar(retStmt.Src)})
				b.addEdge(ret, mv, branchNone)
				after = mv
			}
			for _, nx := range nexts {
				b.addEdge(after, nx, branchNone)
			}
		}
		inlinedAny = true
	}
	return inlinedAny
}
