package symexec

import (
	"sierra/internal/ir"
	"sierra/internal/pointer"
)

// walker enumerates backward paths over an inlined action graph,
// applying reverse transfer functions to a constraint store and pruning
// contradictions.
type walker struct {
	g   *igraph
	pts func(f *frame, v string) pointer.ObjSet
	// budget is the remaining path allowance; each completed or pruned
	// path consumes one.
	budget    int
	paths     int
	budgetHit bool
	// pruned counts paths that died on a contradiction or bound
	// (branch/transfer unsat, loop bound, dangling node) rather than
	// reaching the entry.
	pruned int
	// target, when set, is the access the path must execute (E-walk).
	target ir.Pos
	// visits tracks per-path node occurrences (loop unrolling bound).
	visits map[int]int
	// cancelled, when non-nil, is polled every ctxPollStride paths; a
	// true return bails the walk through the budget-exhaustion path.
	cancelled func() bool
}

// maxVisitsPerNode allows one loop unrolling per path.
const maxVisitsPerNode = 2

// ctxPollStride is how many completed paths pass between cancellation
// polls (ctx.Err takes a lock; per-path polling would show up in the
// refutation hot loop).
const ctxPollStride = 64

// collectEntry runs the A-walk: backward from the access node (its own
// transfer skipped — the access is the query's sink) to the root entry,
// reporting each consistent store via sink.
func (w *walker) collectEntry(accessNode int, sink func(*store)) {
	w.collectEntryFrom(accessNode, newStore(), sink)
}

// collectEntryFrom is collectEntry with an initial constraint store
// (e.g. the on-demand constant propagation's message-code seed).
func (w *walker) collectEntryFrom(accessNode int, init *store, sink func(*store)) {
	w.visits = map[int]int{}
	w.walkPreds(accessNode, init.clone(), false, func(st *store, _ bool) {
		sink(st)
	})
}

// findWitness runs the E-walk: backward from every root exit to the root
// entry under init; a witness path must execute the target access.
func (w *walker) findWitness(init *store) bool {
	found := false
	for _, exit := range w.g.exits {
		if found || w.budgetHit {
			break
		}
		w.visits = map[int]int{}
		// Process the exit node itself (a Return; no-op transfer) then
		// walk its predecessors.
		w.walk(exit, init.clone(), false, func(_ *store, saw bool) {
			if saw {
				found = true
			}
		})
	}
	return found
}

// walk processes node's reverse transfer then recurses into its
// predecessors; atEntry is invoked when the root entry is reached.
func (w *walker) walk(node int, st *store, saw bool, atEntry func(*store, bool)) {
	if w.budgetHit {
		return
	}
	n := &w.g.nodes[node]
	if n.isEntry && n.frame.id == 0 {
		w.endPath()
		atEntry(st, saw)
		return
	}
	if w.target.Method != nil && n.pos == w.target {
		saw = true
	}
	ok := w.transfer(n, st)
	if !ok {
		w.prunePath()
		return
	}
	w.walkPreds(node, st, saw, atEntry)
}

// walkPreds recurses into the predecessors of node (without processing
// node itself).
func (w *walker) walkPreds(node int, st *store, saw bool, atEntry func(*store, bool)) {
	if w.budgetHit {
		return
	}
	preds := w.g.preds[node]
	if len(preds) == 0 {
		// Dangling (unreachable) node: path dies.
		w.prunePath()
		return
	}
	for _, p := range preds {
		if w.budgetHit {
			return
		}
		if w.visits[p.node] >= maxVisitsPerNode {
			w.prunePath()
			continue
		}
		branchSt := st.clone()
		if p.br != branchNone {
			iff, okIf := w.g.nodes[p.node].pos.Stmt().(*ir.If)
			if okIf && !w.applyBranch(w.g.nodes[p.node].frame, iff, p.br == branchTrue, branchSt) {
				w.prunePath()
				continue
			}
		}
		w.visits[p.node]++
		w.walk(p.node, branchSt, saw, atEntry)
		w.visits[p.node]--
	}
}

func (w *walker) endPath() {
	w.paths++
	if w.paths >= w.budget {
		w.budgetHit = true
	}
	if w.cancelled != nil && w.paths%ctxPollStride == 0 && w.cancelled() {
		w.budgetHit = true
	}
}

// prunePath ends a path that died before reaching the entry.
func (w *walker) prunePath() {
	w.pruned++
	w.endPath()
}

// applyBranch strengthens the store with an If condition taken in the
// given polarity; false means the path is infeasible.
func (w *walker) applyBranch(f *frame, iff *ir.If, taken bool, st *store) bool {
	op := iff.Op
	if !taken {
		op = op.Negate()
	}
	if iff.B.IsVar {
		return true // relational var-var constraints are not tracked
	}
	var v value
	switch iff.B.Kind {
	case ir.ConstInt:
		v = intVal(iff.B.Int)
	case ir.ConstBool:
		v = boolVal(iff.B.Bool)
	case ir.ConstNull:
		v = nullVal()
	default:
		return true
	}
	name := f.qvar(iff.A)
	switch op {
	case ir.CmpEQ:
		return st.constrainVarEq(name, v)
	case ir.CmpNE:
		if v.kind == vNull {
			return st.constrainVarEq(name, nonNullVal())
		}
		return st.constrainVarNe(name, v)
	default:
		return true // <, <=, >, >= — untracked, assume satisfiable
	}
}

// transfer applies the reverse transfer function of one node. Returns
// false when the store becomes unsatisfiable.
func (w *walker) transfer(n *inode, st *store) bool {
	if n.isEntry {
		return true // non-root frame entry: no effect
	}
	if n.isSynth {
		return w.moveVar(st, n.synthDst, n.synthSrc)
	}
	f := n.frame
	switch s := n.pos.Stmt().(type) {
	case *ir.Const:
		q := f.qvar(s.Dst)
		c, ok := st.vars[q]
		if !ok {
			return true
		}
		delete(st.vars, q)
		var v value
		switch s.Kind {
		case ir.ConstInt:
			v = intVal(s.Int)
		case ir.ConstBool:
			v = boolVal(s.Bool)
		case ir.ConstNull:
			v = nullVal()
		default:
			v = nonNullVal()
		}
		return c.satisfiedBy(v)
	case *ir.Move:
		return w.moveVar(st, f.qvar(s.Dst), f.qvar(s.Src))
	case *ir.New:
		q := f.qvar(s.Dst)
		c, ok := st.vars[q]
		if !ok {
			return true
		}
		delete(st.vars, q)
		return c.satisfiedBy(nonNullVal())
	case *ir.Load:
		q := f.qvar(s.Dst)
		c, ok := st.vars[q]
		if !ok {
			return true
		}
		delete(st.vars, q)
		objs := w.pts(f, s.Obj)
		if objs.Len() == 1 {
			for _, o := range objs.Slice() {
				return mergeLoc(st, locKey{obj: o, field: s.Field}, c)
			}
		}
		return true // ambiguous base: drop the constraint (sound)
	case *ir.Store:
		objs := w.pts(f, s.Obj)
		if objs.Len() != 1 {
			return true // weak update: the store may not hit our location
		}
		for _, o := range objs.Slice() {
			lk := locKey{obj: o, field: s.Field}
			c, ok := st.locs[lk]
			if !ok {
				return true
			}
			delete(st.locs, lk)
			// Strong update: the stored value must satisfy the
			// requirement — move the constraint onto the source var.
			return mergeVar(st, f.qvar(s.Src), c)
		}
		return true
	case *ir.StaticLoad:
		q := f.qvar(s.Dst)
		c, ok := st.vars[q]
		if !ok {
			return true
		}
		delete(st.vars, q)
		return mergeLoc(st, locKey{static: true, class: s.Class, field: s.Field}, c)
	case *ir.StaticStore:
		lk := locKey{static: true, class: s.Class, field: s.Field}
		c, ok := st.locs[lk]
		if !ok {
			return true
		}
		delete(st.locs, lk)
		return mergeVar(st, f.qvar(s.Src), c)
	case *ir.Invoke:
		if s.Dst != "" {
			// Un-inlined call: result unknown, drop the constraint.
			delete(st.vars, f.qvar(s.Dst))
		}
		return true
	case *ir.BinOp:
		delete(st.vars, f.qvar(s.Dst))
		return true
	default:
		return true
	}
}

// moveVar transfers the constraint on dst (if any) onto src.
func (w *walker) moveVar(st *store, dst, src string) bool {
	c, ok := st.vars[dst]
	if !ok {
		return true
	}
	delete(st.vars, dst)
	return mergeVar(st, src, c)
}

// mergeVar conjoins a constraint onto a variable.
func mergeVar(st *store, name string, c constraint) bool {
	if c.eq != nil && !st.constrainVarEq(name, *c.eq) {
		return false
	}
	for _, n := range c.ne {
		if !st.constrainVarNe(name, n) {
			return false
		}
	}
	return true
}

// mergeLoc conjoins a constraint onto a heap location.
func mergeLoc(st *store, lk locKey, c constraint) bool {
	have := st.locs[lk]
	if c.eq != nil {
		merged, ok := have.withEq(*c.eq)
		if !ok {
			return false
		}
		have = merged
	}
	for _, n := range c.ne {
		merged, ok := have.withNe(n)
		if !ok {
			return false
		}
		have = merged
	}
	st.locs[lk] = have
	return true
}
