package symexec

import (
	"sierra/internal/ir"
)

// walker enumerates backward paths over an inlined action graph,
// applying reverse transfer functions to a constraint store and pruning
// contradictions.
//
// Two interchangeable walk strategies produce bit-for-bit identical
// verdicts, path counts, and pruned tallies:
//
//   - the trail walker (the default) mutates one shared store and rolls
//     a mutation trail back when the DFS retreats, so the enumeration
//     spine allocates nothing per predecessor;
//   - the clone walker (cloneRef, the reference the parity property
//     test drives) copies the store per predecessor like the original
//     implementation, with its original map-based visit counting.
//
// Both visit predecessors in the same order and apply identical
// branch/transfer mutations, so the exploration — and therefore every
// observable count — is the same by construction.
type walker struct {
	g *igraph
	// ref/aid route Load/Store points-to resolution to the refuter's
	// per-(action, method, var) memo — a method call instead of a
	// closure allocated per walker.
	ref *Refuter
	aid int
	// budget is the remaining path allowance; each completed or pruned
	// path consumes one.
	budget    int
	paths     int
	budgetHit bool
	// pruned counts paths that died on a contradiction or bound
	// (branch/transfer unsat, loop bound, dangling node) rather than
	// reaching the entry.
	pruned int
	// target, when set, is the access the path must execute (E-walk).
	target ir.Pos
	// cloneRef selects the clone-per-predecessor reference walk.
	cloneRef bool
	// visits tracks per-path node occurrences (loop unrolling bound),
	// dense-indexed by igraph node id. Increments and decrements are
	// balanced on every walk, so the slice returns to all-zero and is
	// reused across walks without resetting.
	visits []uint8
	// visitsRef is the reference walker's original map-based counter.
	visitsRef map[int]int
	// sink receives each consistent entry store of an A-walk (nil on
	// E-walks); a walker field rather than a parameter threaded through
	// the DFS, so the recursion spine carries no closure.
	sink func(*store)
	// found records that an E-walk path reached the entry having
	// executed the target access. It never stops a walk mid-path (only
	// the exits loop checks it), matching the original enumeration.
	found bool
	// tr is the shared mutation trail (trail walk only); its backing
	// array is reused across walks.
	tr *trail
	// scratch is the trail walk's reusable walk store: beginWalk resets
	// it to the initial constraints instead of cloning them, so a walk
	// root allocates nothing in steady state.
	scratch *store
	// cancelled, when non-nil, is polled every ctxPollStride paths; a
	// true return bails the walk through the budget-exhaustion path.
	cancelled func() bool
}

// maxVisitsPerNode allows one loop unrolling per path.
const maxVisitsPerNode = 2

// ctxPollStride is how many completed paths pass between cancellation
// polls (ctx.Err takes a lock; per-path polling would show up in the
// refutation hot loop).
const ctxPollStride = 64

// collectEntryFrom runs the A-walk: backward from the access node (its
// own transfer skipped — the access is the query's sink) to the root
// entry under an initial constraint store (e.g. the on-demand constant
// propagation's message-code seed), reporting each consistent store via
// sink. Trail walk: the store handed to sink is the shared mutable
// store — sink must freeze/clone what it keeps.
func (w *walker) collectEntryFrom(accessNode int, init *frozen, sink func(*store)) {
	w.sink = sink
	st := w.beginWalkFrozen(init)
	w.walkPreds(accessNode, st, false)
}

// findWitness runs the E-walk: backward from every root exit to the root
// entry under init; a witness path must execute the target access.
func (w *walker) findWitness(init *store) bool {
	w.found = false
	for _, exit := range w.g.exits {
		if w.found || w.budgetHit {
			break
		}
		// Process the exit node itself (a Return; no-op transfer) then
		// walk its predecessors.
		w.walk(exit, w.beginWalk(init), false)
	}
	return w.found
}

// beginWalk prepares one walk root: a private copy of init (both modes
// mutate their store) with per-mode bookkeeping reset. The trail walk
// reuses its scratch store across walks instead of cloning.
func (w *walker) beginWalk(init *store) *store {
	if w.cloneRef {
		w.visitsRef = map[int]int{}
		return init.clone()
	}
	st := w.scratch
	st.resetTo(init)
	w.tr.ops = w.tr.ops[:0]
	st.tr = w.tr
	return st
}

// beginWalkFrozen is beginWalk for a frozen initial store: the trail
// walk hydrates its scratch store straight from the flat entries, the
// clone walk thaws a private map-backed copy.
func (w *walker) beginWalkFrozen(init *frozen) *store {
	if w.cloneRef {
		w.visitsRef = map[int]int{}
		return init.thaw()
	}
	st := w.scratch
	st.resetToFrozen(init)
	w.tr.ops = w.tr.ops[:0]
	st.tr = w.tr
	return st
}

// walk processes node's reverse transfer then recurses into its
// predecessors; reaching the root entry reports to sink (A-walk) or
// sets found (E-walk).
func (w *walker) walk(node int, st *store, saw bool) {
	if w.budgetHit {
		return
	}
	n := &w.g.nodes[node]
	if n.isEntry && n.frame.id == 0 {
		w.endPath()
		if w.sink != nil {
			w.sink(st)
		} else if saw {
			w.found = true
		}
		return
	}
	if w.target.Method != nil && n.pos == w.target {
		saw = true
	}
	ok := w.transfer(n, st)
	if !ok {
		// Trail walk: partial mutations of the failed transfer are on
		// the trail; the caller's per-predecessor rollback undoes them.
		w.prunePath()
		return
	}
	w.walkPreds(node, st, saw)
}

// walkPreds recurses into the predecessors of node (without processing
// node itself).
func (w *walker) walkPreds(node int, st *store, saw bool) {
	if w.budgetHit {
		return
	}
	preds := w.g.predsOf(node)
	if len(preds) == 0 {
		// Dangling (unreachable) node: path dies.
		w.prunePath()
		return
	}
	for _, p := range preds {
		if w.budgetHit {
			return
		}
		if w.visitCount(p.node) >= maxVisitsPerNode {
			w.prunePath()
			continue
		}
		if w.cloneRef {
			branchSt := st.clone()
			if p.br != branchNone {
				pn := &w.g.nodes[p.node]
				iff, okIf := pn.stmt.(*ir.If)
				if okIf && !w.applyBranch(pn, iff, p.br == branchTrue, branchSt) {
					w.prunePath()
					continue
				}
			}
			w.visitsRef[p.node]++
			w.walk(p.node, branchSt, saw)
			w.visitsRef[p.node]--
			continue
		}
		mark := w.tr.mark()
		if p.br != branchNone {
			pn := &w.g.nodes[p.node]
			iff, okIf := pn.stmt.(*ir.If)
			if okIf && !w.applyBranch(pn, iff, p.br == branchTrue, st) {
				st.rollback(mark)
				w.prunePath()
				continue
			}
		}
		w.visits[p.node]++
		w.walk(p.node, st, saw)
		w.visits[p.node]--
		st.rollback(mark)
	}
}

// visitCount reads the per-path occurrence count of a node.
func (w *walker) visitCount(node int) int {
	if w.cloneRef {
		return w.visitsRef[node]
	}
	return int(w.visits[node])
}

func (w *walker) endPath() {
	w.paths++
	if w.paths >= w.budget {
		w.budgetHit = true
	}
	if w.cancelled != nil && w.paths%ctxPollStride == 0 && w.cancelled() {
		w.budgetHit = true
	}
}

// prunePath ends a path that died before reaching the entry.
func (w *walker) prunePath() {
	w.pruned++
	w.endPath()
}

// applyBranch strengthens the store with an If condition taken in the
// given polarity; false means the path is infeasible.
func (w *walker) applyBranch(n *inode, iff *ir.If, taken bool, st *store) bool {
	op := iff.Op
	if !taken {
		op = op.Negate()
	}
	if iff.B.IsVar {
		return true // relational var-var constraints are not tracked
	}
	var v value
	switch iff.B.Kind {
	case ir.ConstInt:
		v = intVal(iff.B.Int)
	case ir.ConstBool:
		v = boolVal(iff.B.Bool)
	case ir.ConstNull:
		v = nullVal()
	default:
		return true
	}
	switch op {
	case ir.CmpEQ:
		return st.constrainVarEq(n.qcond, v)
	case ir.CmpNE:
		if v.kind == vNull {
			return st.constrainVarEq(n.qcond, nonNullVal())
		}
		return st.constrainVarNe(n.qcond, v)
	default:
		return true // <, <=, >, >= — untracked, assume satisfiable
	}
}

// transfer applies the reverse transfer function of one node. Returns
// false when the store becomes unsatisfiable. All mutations go through
// the store's trail-aware helpers, so both walk strategies share one
// transfer implementation verbatim.
func (w *walker) transfer(n *inode, st *store) bool {
	if n.isEntry {
		return true // non-root frame entry: no effect
	}
	if n.isSynth {
		return w.moveVar(st, n.synthDst, n.synthSrc)
	}
	f := n.frame
	switch s := n.stmt.(type) {
	case *ir.Const:
		c, ok := st.vars[n.qdst]
		if !ok {
			return true
		}
		st.delVar(n.qdst)
		var v value
		switch s.Kind {
		case ir.ConstInt:
			v = intVal(s.Int)
		case ir.ConstBool:
			v = boolVal(s.Bool)
		case ir.ConstNull:
			v = nullVal()
		default:
			v = nonNullVal()
		}
		return c.satisfiedBy(v)
	case *ir.Move:
		return w.moveVar(st, n.qdst, n.qsrc)
	case *ir.New:
		c, ok := st.vars[n.qdst]
		if !ok {
			return true
		}
		st.delVar(n.qdst)
		return c.satisfiedBy(nonNullVal())
	case *ir.Load:
		c, ok := st.vars[n.qdst]
		if !ok {
			return true
		}
		st.delVar(n.qdst)
		if o, single := w.ref.resolvePts(w.aid, f, s.Obj).Single(); single {
			return mergeLoc(st, locKey{obj: o, field: s.Field}, c)
		}
		return true // ambiguous base: drop the constraint (sound)
	case *ir.Store:
		o, single := w.ref.resolvePts(w.aid, f, s.Obj).Single()
		if !single {
			return true // weak update: the store may not hit our location
		}
		lk := locKey{obj: o, field: s.Field}
		c, ok := st.locs[lk]
		if !ok {
			return true
		}
		st.delLoc(lk)
		// Strong update: the stored value must satisfy the
		// requirement — move the constraint onto the source var.
		return mergeVar(st, n.qsrc, c)
	case *ir.StaticLoad:
		c, ok := st.vars[n.qdst]
		if !ok {
			return true
		}
		st.delVar(n.qdst)
		return mergeLoc(st, locKey{static: true, class: s.Class, field: s.Field}, c)
	case *ir.StaticStore:
		lk := locKey{static: true, class: s.Class, field: s.Field}
		c, ok := st.locs[lk]
		if !ok {
			return true
		}
		st.delLoc(lk)
		return mergeVar(st, n.qsrc, c)
	case *ir.Invoke:
		if s.Dst != "" {
			// Un-inlined call: result unknown, drop the constraint.
			st.delVar(n.qdst)
		}
		return true
	case *ir.BinOp:
		st.delVar(n.qdst)
		return true
	default:
		return true
	}
}

// moveVar transfers the constraint on dst (if any) onto src.
func (w *walker) moveVar(st *store, dst, src string) bool {
	c, ok := st.vars[dst]
	if !ok {
		return true
	}
	st.delVar(dst)
	return mergeVar(st, src, c)
}

// mergeVar conjoins a constraint onto a variable.
func mergeVar(st *store, name string, c constraint) bool {
	if c.hasEq && !st.constrainVarEq(name, c.eqv) {
		return false
	}
	for _, n := range c.ne {
		if !st.constrainVarNe(name, n) {
			return false
		}
	}
	return true
}

// mergeLoc conjoins a constraint onto a heap location.
func mergeLoc(st *store, lk locKey, c constraint) bool {
	have := st.locs[lk]
	if c.hasEq {
		merged, ok := have.withEq(c.eqv)
		if !ok {
			return false
		}
		have = merged
	}
	for _, n := range c.ne {
		merged, ok := have.withNe(n)
		if !ok {
			return false
		}
		have = merged
	}
	st.setLoc(lk, have)
	return true
}
