package symexec

import (
	"sort"
	"sync"
	"time"

	"sierra/internal/actions"
	"sierra/internal/pointer"
	"sierra/internal/race"
)

// CheckAll refutes every candidate pair and returns the verdicts
// aligned with a prefix of pairs, plus whether the run was interrupted
// by the configured context (the returned verdicts then cover only the
// pairs refuted before cancellation; the prefix is always contiguous).
//
// cfg.Jobs ≤ 1 runs the single shared-memo refuter over the pairs in
// order — exactly the legacy sequential loop. cfg.Jobs > 1 fans the
// pairs out over a bounded worker pool: the inlined action graphs are
// prebuilt once and shared read-only, while each pair gets private
// memo tables, making its verdict a pure function of the pair and the
// output independent of worker count and scheduling. Observability is
// recorded by an in-order emitter either way, so counter totals and
// the refute.pair_paths series order match the sequential run's shape.
// A worker panic is isolated to its pair, which keeps the paper's
// over-approximate "report anyway" verdict instead of crashing the
// pipeline.
func CheckAll(reg *actions.Registry, res *pointer.Result, cfg Config, pairs []race.Pair) ([]Verdict, bool) {
	ctx := cfg.Ctx
	cancelled := func() bool { return ctx != nil && ctx.Err() != nil }

	if cfg.Jobs <= 1 {
		ref := NewRefuter(reg, res, cfg)
		verdicts := make([]Verdict, 0, len(pairs))
		for _, p := range pairs {
			if cancelled() {
				return verdicts, true
			}
			verdicts = append(verdicts, ref.Check(p))
		}
		if cfg.Obs != nil {
			if ab := ref.arenaBytes(); ab > 0 {
				cfg.Obs.Count("symexec.arena_bytes", ab)
			}
		}
		return verdicts, false
	}

	tr := cfg.Obs
	workerCfg := cfg
	workerCfg.Obs = nil // workers stay silent; the emitter records
	base := NewRefuter(reg, res, workerCfg)
	// Prebuild every pair action's inlined graphs up front, in sorted
	// action order: after this the graph map is read-only, so forks can
	// share it without locks (and build effort is deterministic).
	seen := map[int]bool{}
	var aids []int
	for _, p := range pairs {
		for _, aid := range [2]int{p.A.Action, p.B.Action} {
			if aid >= 0 && aid < reg.NumActions() && !seen[aid] {
				seen[aid] = true
				aids = append(aids, aid)
			}
		}
	}
	sort.Ints(aids)
	for _, aid := range aids {
		base.actionGraphs(aid)
	}

	jobs := cfg.Jobs
	if jobs > len(pairs) {
		jobs = len(pairs)
	}
	type result struct {
		v        Verdict
		pruned   int64
		capped   int64
		durMS    float64
		panicked bool
		done     bool
	}
	results := make([]result, len(pairs))
	idxCh := make(chan int)
	wbytes := make([]int64, jobs)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			// One fork per worker, recycled across pairs: resetPair
			// clears every memo and rewinds the arenas, so each pair
			// still sees the equivalent of a fresh fork (pure verdicts,
			// worker-count independent) without re-paying the map and
			// scratch allocations per pair.
			wref := base.fork()
			for i := range idxCh {
				results[i] = func() (r result) {
					var t0 time.Time
					if tr != nil {
						t0 = time.Now()
					}
					defer func() {
						if rec := recover(); rec != nil {
							// Over-approximate, like budget exhaustion:
							// the pair is reported rather than lost. The
							// worker's refuter may hold half-walked
							// scratch (unbalanced visit counts), so
							// retire it and start the next pair clean.
							wbytes[slot] += wref.arenaBytes()
							wref = base.fork()
							r = result{
								v:        Verdict{TruePositive: true, BudgetExhausted: true},
								panicked: true,
								done:     true,
							}
						}
						if tr != nil {
							r.durMS = float64(time.Since(t0)) / 1e6
						} else {
							r.durMS = -1
						}
					}()
					wref.resetPair()
					v, pruned, capped := wref.check(pairs[i])
					return result{v: v, pruned: pruned, capped: capped, done: true}
				}()
			}
			wbytes[slot] += wref.arenaBytes()
		}(w)
	}
	fed := 0
	for i := range pairs {
		if cancelled() {
			break
		}
		idxCh <- i
		fed++
	}
	close(idxCh)
	wg.Wait()

	// Every fed index completed (cancellation only stops feeding, and
	// walkers bail budget-style when the context dies mid-pair), so the
	// done prefix is contiguous. Emit it in pair order.
	verdicts := make([]Verdict, 0, fed)
	for i := 0; i < len(results) && results[i].done; i++ {
		recordVerdict(tr, pairs[i], results[i].v, results[i].pruned, results[i].capped, results[i].durMS)
		if results[i].panicked && tr != nil {
			tr.Count("refute.pair_panics", 1)
		}
		verdicts = append(verdicts, results[i].v)
	}
	if tr != nil {
		tr.Count("symexec.refute_par_jobs", int64(len(verdicts)))
		var ab int64
		for _, b := range wbytes {
			ab += b
		}
		if ab > 0 {
			tr.Count("symexec.arena_bytes", ab)
		}
	}
	return verdicts, len(verdicts) < len(pairs)
}

// fork returns a refuter sharing the receiver's read-only prebuilt
// state (callee map, action instances, inlined graphs) with private
// memo tables, walker scratch, and pruned/capped tallies — the
// isolation that makes a pair's verdict independent of which other
// pairs ran first. Every keyed memo (entry, witness, points-to, seed)
// starts fresh so no fork observes another pair's cached state.
func (r *Refuter) fork() *Refuter {
	nr := &Refuter{
		Reg:         r.Reg,
		Res:         r.Res,
		Cfg:         r.Cfg,
		callees:     r.callees,
		insts:       r.insts,
		graphs:      r.graphs,
		entryMemo:   map[entryKey]*entryResult{},
		witnessMemo: map[witnessKey]*wbucket{},
		ptsMemo:     map[ptsKey]pointer.ObjSet{},
		seedMemo:    map[int][]*frozen{},
		objWords:    r.objWords,
		cancelled:   r.cancelled,
	}
	nr.entrySinkFn = nr.recordEntryStore
	return nr
}
