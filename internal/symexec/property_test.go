package symexec

import (
	"testing"
	"testing/quick"
)

// randValue maps fuzz inputs onto the constraint value domain.
func randValue(tag uint8, i int64, b bool) value {
	switch tag % 4 {
	case 0:
		return intVal(i % 7) // small domain to force collisions
	case 1:
		return boolVal(b)
	case 2:
		return nullVal()
	default:
		return nonNullVal()
	}
}

func TestConflictsSymmetric(t *testing.T) {
	f := func(t1, t2 uint8, i1, i2 int64, b1, b2 bool) bool {
		a, b := randValue(t1, i1, b1), randValue(t2, i2, b2)
		return conflicts(a, b) == conflicts(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValueNeverConflictsWithItself(t *testing.T) {
	f := func(tag uint8, i int64, b bool) bool {
		v := randValue(tag, i, b)
		return !conflicts(v, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWithEqConsistency(t *testing.T) {
	// If strengthening succeeds, the asserted value satisfies the result.
	f := func(t1, t2 uint8, i1, i2 int64, b1, b2 bool) bool {
		base, ok := constraint{}.withEq(randValue(t1, i1, b1))
		if !ok {
			return false // empty constraint always accepts
		}
		v := randValue(t2, i2, b2)
		c2, ok := base.withEq(v)
		if !ok {
			return true // rejection is always safe
		}
		return c2.satisfiedBy(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWithNeExcludesValue(t *testing.T) {
	f := func(tag uint8, i int64, b bool) bool {
		v := randValue(tag, i, b)
		c, ok := constraint{}.withNe(v)
		if !ok {
			return false // empty constraint accepts any disequality
		}
		return !c.satisfiedBy(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreKeyCanonical(t *testing.T) {
	// Insertion order must not affect the memoization key.
	f := func(names []uint8, i int64) bool {
		if len(names) < 2 {
			return true
		}
		mk := func(order []uint8) string {
			s := newStore()
			for _, n := range order {
				s.constrainVarEq(string('a'+rune(n%6)), intVal(i%5))
			}
			return s.key()
		}
		fwd := append([]uint8(nil), names...)
		rev := make([]uint8, len(names))
		for i, n := range names {
			rev[len(names)-1-i] = n
		}
		return mk(fwd) == mk(rev)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConstrainVarMonotoneUnsat(t *testing.T) {
	// Once a variable is pinned to a value, pinning it to a conflicting
	// value must fail — and the store must be unchanged observably (the
	// original constraint still holds).
	f := func(i1, i2 int64) bool {
		a, b := intVal(i1%5), intVal(i2%5)
		s := newStore()
		if !s.constrainVarEq("x", a) {
			return false
		}
		ok := s.constrainVarEq("x", b)
		if a.equal(b) {
			return ok
		}
		if ok {
			return false
		}
		// Original pin intact.
		return s.vars["x"].hasEq && s.vars["x"].eqv.equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
