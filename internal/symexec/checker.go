package symexec

import (
	"time"

	"sierra/internal/actions"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/race"
)

// Checker refutes individual pairs with per-pair-pure semantics: every
// Check runs on a fresh memo fork of a shared base refuter, exactly the
// way CheckAll's parallel pool (cfg.Jobs > 1) runs each pair. A pair's
// verdict is therefore a pure function of (pair, program, config) —
// independent of which pairs were checked before it, and bit-identical
// to the verdict the parallel pool would produce for the same pair.
//
// That purity is what internal/incremental leans on: it re-refutes an
// arbitrary *subset* of a baseline's pairs and splices the fresh
// verdicts in among reused ones, which is only sound if checking order
// and company cannot change a verdict. (The sequential shared-memo path
// deliberately trades that property for warm memos; a Checker never
// shares memos across pairs.)
//
// A Checker is NOT safe for concurrent use: the inlined action graphs
// are built lazily into a table shared by all forks. Use CheckAll for
// fan-out; use Checker when the caller picks the pairs one at a time.
type Checker struct {
	base *Refuter
	tr   *obs.Trace
}

// NewChecker builds a checker over the given registry, pointer result,
// and refutation config. cfg.Jobs is ignored — a Checker is the
// single-consumer equivalent of the parallel pool's workers. cfg.Obs is
// recorded per verdict (same counters and histograms CheckAll emits).
func NewChecker(reg *actions.Registry, res *pointer.Result, cfg Config) *Checker {
	tr := cfg.Obs
	cfg.Obs = nil // forks stay silent; Check records in order
	cfg.Jobs = 0
	return &Checker{base: NewRefuter(reg, res, cfg), tr: tr}
}

// Check refutes one pair on a fresh memo fork and records the verdict's
// observability (refute.* counters, pair series/histograms). A panic in
// the walker is isolated to the pair and yields the over-approximate
// "report anyway" verdict, mirroring the parallel pool.
func (c *Checker) Check(p race.Pair) Verdict {
	var t0 time.Time
	if c.tr != nil {
		t0 = time.Now()
	}
	v, pruned, capped, panicked := c.checkIsolated(p)
	durMS := -1.0
	if c.tr != nil {
		durMS = float64(time.Since(t0)) / 1e6
	}
	recordVerdict(c.tr, p, v, pruned, capped, durMS)
	if panicked && c.tr != nil {
		c.tr.Count("refute.pair_panics", 1)
	}
	return v
}

func (c *Checker) checkIsolated(p race.Pair) (v Verdict, pruned, capped int64, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			v = Verdict{TruePositive: true, BudgetExhausted: true}
			pruned, capped = 0, 0
			panicked = true
		}
	}()
	v, pruned, capped = c.base.fork().check(p)
	return v, pruned, capped, false
}
