package symexec

import (
	"context"
	"fmt"

	"sierra/internal/actions"
	"sierra/internal/ir"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/race"
)

// Verdict is the refutation outcome for one candidate pair.
type Verdict struct {
	// TruePositive: both orderings admit a feasible witness path, so the
	// pair is reported as a race.
	TruePositive bool
	// RefutedOrders names infeasible orderings ("A<B", "B<A").
	RefutedOrders []string
	// Paths is the number of backward paths explored.
	Paths int
	// BudgetExhausted marks that the path budget ran out; per the paper
	// the pair is then reported anyway (possible false positive).
	BudgetExhausted bool
}

// Config tunes the refuter.
type Config struct {
	// MaxPaths bounds backward path exploration per query (the paper
	// uses 5,000).
	MaxPaths int
	// MaxDepth bounds call inlining depth.
	MaxDepth int
	// DisableCache turns off cross-query memoization (for the ablation
	// benchmark).
	DisableCache bool
	// Jobs is the per-pair refutation parallelism for CheckAll. At most
	// 1 (the default) pairs are refuted sequentially by one refuter
	// whose memo tables span pairs — the legacy behavior, bit-for-bit.
	// Above 1, each pair is refuted independently on a bounded worker
	// pool with private memo tables over shared read-only graphs, so
	// every verdict is a pure function of its pair: deterministic for
	// any job count, but budget accounting can differ from the
	// memo-amplified sequential path.
	Jobs int
	// Obs, when non-nil, receives the refutation effort counters and the
	// per-pair refute.pair_paths series (see README.md "Observability").
	// Nil costs nothing.
	Obs *obs.Trace
	// Ctx, when non-nil, is polled every few dozen explored paths; once
	// done the walk bails as if its path budget ran out, so interrupted
	// pairs keep the paper's over-approximate "report anyway" verdict.
	Ctx context.Context
}

// Refuter performs backward symbolic execution over actions.
type Refuter struct {
	Reg *actions.Registry
	Res *pointer.Result
	Cfg Config

	callees func(ir.Pos) []*ir.Method
	insts   map[int][]pointer.MKey
	graphs  map[int][]*igraph
	// entryMemo caches A-walk results: the constraint stores required at
	// the later action's entry to reach the access.
	entryMemo map[string]*entryResult
	// witnessMemo caches E-walk results per (action, access, store).
	witnessMemo map[string]bool
	// pruned accumulates dead (contradiction/bound) paths across walks.
	pruned int64
}

type entryResult struct {
	stores   []*store
	budget   bool
	explored int
}

// NewRefuter builds a refuter for one analyzed app.
func NewRefuter(reg *actions.Registry, res *pointer.Result, cfg Config) *Refuter {
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 5000
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 6
	}
	return &Refuter{
		Reg:         reg,
		Res:         res,
		Cfg:         cfg,
		callees:     res.CalleeMethods(),
		insts:       reg.ActionInstances(res),
		graphs:      map[int][]*igraph{},
		entryMemo:   map[string]*entryResult{},
		witnessMemo: map[string]bool{},
	}
}

// Check decides whether the candidate pair survives refutation: a pair
// is a true positive iff a feasible path witnesses it in both orderings
// of the two actions (§5).
func (r *Refuter) Check(p race.Pair) Verdict {
	v, pruned := r.check(p)
	recordVerdict(r.Cfg.Obs, p, v, pruned)
	return v
}

// check is Check without observability: it returns the verdict plus
// the pruned-path delta so callers that defer obs recording (the
// parallel pool's in-order emitter) can replay it later.
func (r *Refuter) check(p race.Pair) (Verdict, int64) {
	v := Verdict{}
	budget := r.Cfg.MaxPaths
	prunedBefore := r.pruned

	abFeasible, used1, b1 := r.feasible(p.A, p.B, budget)
	v.Paths += used1
	budget -= used1
	if budget < 0 {
		budget = 0
	}
	baFeasible, used2, b2 := r.feasible(p.B, p.A, budget)
	v.Paths += used2
	v.BudgetExhausted = b1 || b2

	if !abFeasible {
		v.RefutedOrders = append(v.RefutedOrders, "A<B")
	}
	if !baFeasible {
		v.RefutedOrders = append(v.RefutedOrders, "B<A")
	}
	v.TruePositive = abFeasible && baFeasible
	return v, r.pruned - prunedBefore
}

// recordVerdict emits one pair's refutation counters and its
// refute.pair_paths sample (nil Trace = no-op). Sequential Check calls
// it inline; CheckAll's parallel path calls it from the in-order
// emitter so counter and series order match the sequential run.
func recordVerdict(tr *obs.Trace, p race.Pair, v Verdict, pruned int64) {
	if tr == nil {
		return
	}
	refutedAB, refutedBA := false, false
	for _, o := range v.RefutedOrders {
		switch o {
		case "A<B":
			refutedAB = true
		case "B<A":
			refutedBA = true
		}
	}
	tr.Count("refute.pairs", 1)
	tr.Count("refute.paths", int64(v.Paths))
	tr.Count("refute.paths_pruned", pruned)
	if v.BudgetExhausted {
		tr.Count("refute.budget_exhausted", 1)
	}
	switch {
	case v.TruePositive:
		tr.Count("refute.verdict.race", 1)
	case refutedAB && refutedBA:
		tr.Count("refute.verdict.refuted_both", 1)
	case refutedAB:
		tr.Count("refute.verdict.refuted_ab", 1)
	default:
		tr.Count("refute.verdict.refuted_ba", 1)
	}
	tr.Series("refute.pair_paths", p.Key(), int64(v.Paths))
}

// feasible checks the ordering "first's action completes, then second's
// action runs": backward from the second access to its action entry
// (collecting path constraints), then backward through the first action
// from its exits — passing the first access — to its entry. Message
// actions with constant codes get their what-field pre-seeded — the
// paper's on-demand constant propagation (§5). Returns (feasible,
// pathsUsed, budgetExhausted). Budget exhaustion counts as feasible
// (over-approximate races, per the paper).
func (r *Refuter) feasible(first, second race.Access, budget int) (bool, int, bool) {
	if budget <= 0 {
		return true, 0, true
	}
	used := 0
	// Disjunction over the second action's possible message codes.
	for wi, wseed := range r.whatSeeds(second.Action) {
		er := r.entryConstraints(second, wi, wseed, budget-used)
		used += er.explored
		if er.budget {
			return true, used, true
		}
		if len(er.stores) == 0 {
			continue // this code makes the access unreachable
		}
		remaining := budget - used
		if remaining <= 0 {
			return true, used, true
		}
		for _, st := range er.stores {
			// Disjunction over the first action's codes too.
			for _, fseed := range r.whatSeeds(first.Action) {
				init := st.clone()
				if !mergeStores(init, fseed) {
					continue
				}
				ok, u, bhit := r.witness(first, init, remaining)
				used += u
				remaining -= u
				if bhit {
					return true, used, true
				}
				if ok {
					return true, used, false
				}
				if remaining <= 0 {
					return true, used, true
				}
			}
		}
	}
	return false, used, false
}

// whatSeeds returns the initial constraint stores for an action: one per
// constant message code observed at its send sites (constraining the
// message objects' what field), or a single empty store when the action
// is not a constant-coded message.
func (r *Refuter) whatSeeds(aid int) []*store {
	a := r.Reg.Get(aid)
	if a.Kind != actions.KindMessage || len(a.MsgWhats) == 0 {
		return []*store{newStore()}
	}
	var out []*store
	for _, w := range a.MsgWhats {
		st := newStore()
		consistent := true
		for _, root := range a.Roots {
			if len(root.Params) == 0 {
				continue
			}
			msgObjs := r.ptsResolver(aid)(&frame{id: 0, m: root}, root.Params[0])
			for _, o := range msgObjs.Slice() {
				if !mergeLoc(st, locKey{obj: o, field: "what"}, mustEq(intVal(w))) {
					consistent = false
				}
			}
		}
		if consistent {
			out = append(out, st)
		}
	}
	if len(out) == 0 {
		return []*store{newStore()}
	}
	return out
}

// mustEq wraps a value as a must-equal constraint.
func mustEq(v value) constraint { return constraint{eq: &v} }

// mergeStores conjoins src's constraints into dst, reporting
// satisfiability.
func mergeStores(dst, src *store) bool {
	for name, c := range src.vars {
		if !mergeVar(dst, name, c) {
			return false
		}
	}
	for lk, c := range src.locs {
		if !mergeLoc(dst, lk, c) {
			return false
		}
	}
	return true
}

// entryConstraints runs (and memoizes) the A-walk: backward from the
// access to its action's entry under an initial seed store, yielding the
// distinct constraint stores under which the access is reachable.
func (r *Refuter) entryConstraints(acc race.Access, seedIdx int, seed *store, budget int) *entryResult {
	key := fmt.Sprintf("%d@%v#%d", acc.Action, acc.Pos, seedIdx)
	if !r.Cfg.DisableCache {
		if have, ok := r.entryMemo[key]; ok {
			return &entryResult{stores: have.stores, budget: have.budget}
		}
	}
	res := &entryResult{}
	seen := map[string]bool{}
	for _, g := range r.actionGraphs(acc.Action) {
		w := &walker{
			g:         g,
			pts:       r.ptsResolver(acc.Action),
			budget:    budget - res.explored,
			cancelled: r.cancelPoll(),
		}
		for _, start := range g.byPos[acc.Pos] {
			w.collectEntryFrom(start, seed, func(st *store) {
				k := st.key()
				if !seen[k] && len(res.stores) < 64 {
					seen[k] = true
					res.stores = append(res.stores, st.clone())
				}
			})
		}
		res.explored += w.paths
		r.pruned += int64(w.pruned)
		if w.budgetHit {
			res.budget = true
			break
		}
	}
	if !r.Cfg.DisableCache {
		r.entryMemo[key] = res
	}
	return res
}

// witness runs the E-walk: backward through the first action from its
// exits to its entry, requiring the path to execute the access, under
// the given initial constraints.
func (r *Refuter) witness(acc race.Access, init *store, budget int) (ok bool, used int, budgetHit bool) {
	key := fmt.Sprintf("%d@%v|%s", acc.Action, acc.Pos, init.key())
	if !r.Cfg.DisableCache {
		if have, cached := r.witnessMemo[key]; cached {
			return have, 0, false
		}
	}
	for _, g := range r.actionGraphs(acc.Action) {
		w := &walker{
			g:         g,
			pts:       r.ptsResolver(acc.Action),
			budget:    budget - used,
			target:    acc.Pos,
			cancelled: r.cancelPoll(),
		}
		hit := w.findWitness(init)
		used += w.paths
		r.pruned += int64(w.pruned)
		if w.budgetHit {
			return true, used, true
		}
		if hit {
			if !r.Cfg.DisableCache {
				r.witnessMemo[key] = true
			}
			return true, used, false
		}
		if used >= budget {
			return true, used, true
		}
	}
	if !r.Cfg.DisableCache {
		r.witnessMemo[key] = false
	}
	return false, used, false
}

// cancelPoll returns the walker's cancellation probe (nil when no
// context is configured, keeping the uncancellable path free).
func (r *Refuter) cancelPoll() func() bool {
	ctx := r.Cfg.Ctx
	if ctx == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// actionGraphs returns (building on demand) the inlined graphs of the
// action's roots.
func (r *Refuter) actionGraphs(aid int) []*igraph {
	if gs, ok := r.graphs[aid]; ok {
		return gs
	}
	var gs []*igraph
	for _, root := range r.Reg.Get(aid).Roots {
		gs = append(gs, buildIGraph(root, r.callees, igraphLimits{
			maxDepth: r.Cfg.MaxDepth,
		}))
	}
	r.graphs[aid] = gs
	return gs
}

// ptsResolver resolves a frame variable's points-to set within an
// action: the union over the action's instances of that method.
func (r *Refuter) ptsResolver(aid int) func(f *frame, v string) pointer.ObjSet {
	keys := r.insts[aid]
	return func(f *frame, v string) pointer.ObjSet {
		out := r.Res.NewObjSet()
		for _, mk := range keys {
			if mk.M == f.m {
				out.AddAll(r.Res.PointsTo(mk.M, mk.Ctx, v))
			}
		}
		return out
	}
}
