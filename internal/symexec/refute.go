package symexec

import (
	"context"
	"time"

	"sierra/internal/actions"
	"sierra/internal/bitset"
	"sierra/internal/ir"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/race"
)

// Verdict is the refutation outcome for one candidate pair.
type Verdict struct {
	// TruePositive: both orderings admit a feasible witness path, so the
	// pair is reported as a race.
	TruePositive bool
	// RefutedOrders names infeasible orderings ("A<B", "B<A").
	RefutedOrders []string
	// Paths is the number of backward paths explored.
	Paths int
	// BudgetExhausted marks that the path budget ran out; per the paper
	// the pair is then reported anyway (possible false positive).
	BudgetExhausted bool
}

// Config tunes the refuter.
type Config struct {
	// MaxPaths bounds backward path exploration per query (the paper
	// uses 5,000).
	MaxPaths int
	// MaxDepth bounds call inlining depth (the paper uses 6).
	MaxDepth int
	// DisableCache turns off cross-query memoization (for the ablation
	// benchmark).
	DisableCache bool
	// Jobs is the per-pair refutation parallelism for CheckAll. At most
	// 1 (the default) pairs are refuted sequentially by one refuter
	// whose memo tables span pairs — the legacy behavior, bit-for-bit.
	// Above 1, each pair is refuted independently on a bounded worker
	// pool with private memo tables over shared read-only graphs, so
	// every verdict is a pure function of its pair: deterministic for
	// any worker count, but budget accounting can differ from the
	// memo-amplified sequential path.
	Jobs int
	// Obs, when non-nil, receives the refutation effort counters and the
	// per-pair refute.pair_paths series (see README.md "Observability").
	// Nil costs nothing.
	Obs *obs.Trace
	// Ctx, when non-nil, is polled every few dozen explored paths; once
	// done the walk bails as if its path budget ran out, so interrupted
	// pairs keep the paper's over-approximate "report anyway" verdict.
	Ctx context.Context

	// cloneWalker switches the walker to the clone-per-predecessor
	// reference implementation retained for the parity property test.
	// Unexported on purpose: only in-package tests drive it; shipped
	// callers always get the allocation-free trail walker.
	cloneWalker bool
}

// EntryStoreCap bounds the distinct constraint stores one A-walk may
// collect; stores beyond it are dropped (a sound over-approximation
// surfaced by the refute.entry_stores_capped counter). Exported so
// front ends can explain the counter in user-facing notes.
const EntryStoreCap = 64

// entryKey memoizes A-walks per (action, access, seed index).
type entryKey struct {
	action  int
	pos     ir.Pos
	seedIdx int
}

// witnessKey buckets E-walk memo entries by (action, access, store
// hash); entries within a bucket are disambiguated by structural store
// equality.
type witnessKey struct {
	action int
	pos    ir.Pos
	h      uint64
}

// witnessEntry is one memoized E-walk result, keeping the initial store
// so hash collisions verify instead of aliasing.
type witnessEntry struct {
	st *frozen
	ok bool
}

// wbucket holds a witness key's memo entries with the common single
// entry inline, so a fresh key costs one slab bump instead of a heap
// slice.
type wbucket struct {
	first    witnessEntry
	hasFirst bool
	rest     []witnessEntry
}

// ptsKey memoizes per-action points-to resolution. Resolution depends
// only on the frame's method (the union spans the action's instances of
// it), never on the inline frame id.
type ptsKey struct {
	action int
	m      *ir.Method
	v      string
}

// Refuter performs backward symbolic execution over actions.
type Refuter struct {
	Reg *actions.Registry
	Res *pointer.Result
	Cfg Config

	callees func(ir.Pos) []*ir.Method
	insts   map[int][]pointer.MKey
	graphs  map[int][]*igraph
	// igb is the refuter's persistent graph builder: scratch buffers and
	// output slabs amortize across every action it inlines, and the
	// finished graphs reference its slabs (same lifetime as graphs).
	// Lazily created; forks get their own (they share graphs and rarely
	// build).
	igb *igBuilder
	// entryMemo caches A-walk results: the constraint stores required at
	// the later action's entry to reach the access.
	entryMemo map[entryKey]*entryResult
	// witnessMemo caches E-walk results per (action, access, store),
	// hash-bucketed with structural verification on lookup.
	witnessMemo map[witnessKey]*wbucket
	// ptsMemo caches resolved points-to unions per (action, method, var)
	// so the E-walk stops re-unioning ObjSets on every Load/Store
	// transfer.
	ptsMemo map[ptsKey]pointer.ObjSet
	// seedMemo caches whatSeeds per action (the seeds are read-only).
	seedMemo map[int][]*frozen
	// arena slab-allocates everything the memos retain (frozen stores,
	// entry results, witness buckets); objArena backs the resolvePts
	// ObjSet words. Both reset together with the memos (resetPair).
	arena    storeArena
	objArena bitset.Arena
	// objWords pre-sizes arena-backed ObjSets to the analysis id space
	// so unions never reallocate.
	objWords int
	// sinkStores is the A-walk sink's per-query scratch (dedup happens
	// against it; freezePtrs right-sizes it into the memo), and
	// entrySinkFn the sink bound once so each query avoids a closure.
	sinkStores  []*frozen
	entrySinkFn func(*store)
	// seedScratch is computeWhatSeeds' reusable store-building scratch.
	seedScratch store
	// pruned accumulates dead (contradiction/bound) paths across walks.
	pruned int64
	// entryCapped counts stores dropped by entryStoreCap across walks.
	entryCapped int64
	// walkVisits, walkTrail, walkStore, and walkScratch are the trail
	// walker's reusable scratch: visit counts return to zero after every
	// balanced walk, the trail's backing array survives across queries,
	// beginWalk resets walkStore instead of cloning, and the walker
	// struct itself is recycled (the refuter runs one walk at a time) —
	// so steady-state walks allocate nothing.
	walkVisits  []uint8
	walkTrail   trail
	walkStore   store
	walkScratch walker
	// feasInit is feasible's reusable seed-merge scratch (the E-walk's
	// initial store); the witness memo clones what it retains.
	feasInit store
	// cancelled is the walk cancellation probe (nil when Cfg.Ctx is),
	// built once so walker construction does not allocate a closure.
	cancelled func() bool
}

type entryResult struct {
	stores   []*frozen
	budget   bool
	explored int
}

// NewRefuter builds a refuter for one analyzed app.
func NewRefuter(reg *actions.Registry, res *pointer.Result, cfg Config) *Refuter {
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 5000
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 6
	}
	r := &Refuter{
		Reg:         reg,
		Res:         res,
		Cfg:         cfg,
		callees:     res.CalleeMethods(),
		insts:       reg.ActionInstances(res),
		graphs:      map[int][]*igraph{},
		entryMemo:   map[entryKey]*entryResult{},
		witnessMemo: map[witnessKey]*wbucket{},
		ptsMemo:     map[ptsKey]pointer.ObjSet{},
		seedMemo:    map[int][]*frozen{},
		objWords:    (res.Interner().NumObjs() + 63) / 64,
	}
	r.cancelled = r.cancelPoll()
	r.entrySinkFn = r.recordEntryStore
	return r
}

// resetPair recycles a pooled worker refuter between pairs: every keyed
// memo is cleared and both arenas rewound, which is observably
// identical to a fresh fork (each memo starts empty; the shared graphs
// are read-only), so a pair's verdict stays a pure function of the
// pair. Cumulative tallies (pruned, entryCapped, arena bytes) survive —
// check reads deltas and the arenas report lifetime bytes.
func (r *Refuter) resetPair() {
	clear(r.entryMemo)
	clear(r.witnessMemo)
	clear(r.ptsMemo)
	clear(r.seedMemo)
	r.arena.reset()
	r.objArena.Reset()
	r.sinkStores = r.sinkStores[:0]
}

// arenaBytes reports the lifetime bytes bump-allocated by this
// refuter's arenas (the symexec.arena_bytes counter's unit).
func (r *Refuter) arenaBytes() int64 {
	return r.arena.bytes + r.objArena.Bytes()
}

// Check decides whether the candidate pair survives refutation: a pair
// is a true positive iff a feasible path witnesses it in both orderings
// of the two actions (§5). Per-pair wall time is measured only when a
// trace is attached, so the telemetry-off path pays nothing.
func (r *Refuter) Check(p race.Pair) Verdict {
	var t0 time.Time
	if r.Cfg.Obs != nil {
		t0 = time.Now()
	}
	v, pruned, capped := r.check(p)
	if r.Cfg.Obs != nil {
		recordVerdict(r.Cfg.Obs, p, v, pruned, capped, float64(time.Since(t0))/1e6)
	}
	return v
}

// check is Check without observability: it returns the verdict plus
// the pruned-path and capped-store deltas so callers that defer obs
// recording (the parallel pool's in-order emitter) can replay them
// later.
func (r *Refuter) check(p race.Pair) (Verdict, int64, int64) {
	v := Verdict{}
	budget := r.Cfg.MaxPaths
	prunedBefore := r.pruned
	cappedBefore := r.entryCapped

	abFeasible, used1, b1 := r.feasible(p.A, p.B, budget)
	v.Paths += used1
	budget -= used1
	if budget < 0 {
		budget = 0
	}
	baFeasible, used2, b2 := r.feasible(p.B, p.A, budget)
	v.Paths += used2
	v.BudgetExhausted = b1 || b2

	if !abFeasible {
		v.RefutedOrders = append(v.RefutedOrders, "A<B")
	}
	if !baFeasible {
		v.RefutedOrders = append(v.RefutedOrders, "B<A")
	}
	v.TruePositive = abFeasible && baFeasible
	return v, r.pruned - prunedBefore, r.entryCapped - cappedBefore
}

// recordVerdict emits one pair's refutation counters, its
// refute.pair_paths sample, and the refute.pair_ms / refute.walk_paths
// histogram observations (nil Trace = no-op; durMS < 0 means the pair
// was not timed). Sequential Check calls it inline; CheckAll's
// parallel path calls it from the in-order emitter so counter and
// series order match the sequential run.
func recordVerdict(tr *obs.Trace, p race.Pair, v Verdict, pruned, capped int64, durMS float64) {
	if tr == nil {
		return
	}
	refutedAB, refutedBA := false, false
	for _, o := range v.RefutedOrders {
		switch o {
		case "A<B":
			refutedAB = true
		case "B<A":
			refutedBA = true
		}
	}
	tr.Count("refute.pairs", 1)
	tr.Count("refute.paths", int64(v.Paths))
	tr.Count("refute.paths_pruned", pruned)
	if capped > 0 {
		tr.Count("refute.entry_stores_capped", capped)
	}
	if v.BudgetExhausted {
		tr.Count("refute.budget_exhausted", 1)
	}
	switch {
	case v.TruePositive:
		tr.Count("refute.verdict.race", 1)
	case refutedAB && refutedBA:
		tr.Count("refute.verdict.refuted_both", 1)
	case refutedAB:
		tr.Count("refute.verdict.refuted_ab", 1)
	default:
		tr.Count("refute.verdict.refuted_ba", 1)
	}
	tr.Series("refute.pair_paths", p.Key(), int64(v.Paths))
	tr.Observe("refute.walk_paths", float64(v.Paths))
	if durMS >= 0 {
		tr.Observe("refute.pair_ms", durMS)
	}
}

// feasible checks the ordering "first's action completes, then second's
// action runs": backward from the second access to its action entry
// (collecting path constraints), then backward through the first action
// from its exits — passing the first access — to its entry. Message
// actions with constant codes get their what-field pre-seeded — the
// paper's on-demand constant propagation (§5). Returns (feasible,
// pathsUsed, budgetExhausted). Budget exhaustion counts as feasible
// (over-approximate races, per the paper).
func (r *Refuter) feasible(first, second race.Access, budget int) (bool, int, bool) {
	if budget <= 0 {
		return true, 0, true
	}
	used := 0
	// Disjunction over the second action's possible message codes.
	for wi, wseed := range r.whatSeeds(second.Action) {
		stores, bhit, explored := r.entryConstraints(second, wi, wseed, budget-used)
		used += explored
		if bhit {
			return true, used, true
		}
		if len(stores) == 0 {
			continue // this code makes the access unreachable
		}
		remaining := budget - used
		if remaining <= 0 {
			return true, used, true
		}
		for _, st := range stores {
			// Disjunction over the first action's codes too.
			for _, fseed := range r.whatSeeds(first.Action) {
				// Reusable scratch: the witness memo freezes the store
				// if it decides to retain it.
				init := &r.feasInit
				init.resetToFrozen(st)
				if !mergeFrozen(init, fseed) {
					continue
				}
				ok, u, bhit := r.witness(first, init, remaining)
				used += u
				remaining -= u
				if bhit {
					return true, used, true
				}
				if ok {
					return true, used, false
				}
				if remaining <= 0 {
					return true, used, true
				}
			}
		}
	}
	return false, used, false
}

// whatSeeds returns (and memoizes — the stores are read-only) the
// initial constraint stores for an action: one per constant message
// code observed at its send sites (constraining the message objects'
// what field), or a single empty store when the action is not a
// constant-coded message.
func (r *Refuter) whatSeeds(aid int) []*frozen {
	if seeds, ok := r.seedMemo[aid]; ok {
		return seeds
	}
	seeds := r.computeWhatSeeds(aid)
	r.seedMemo[aid] = seeds
	return seeds
}

func (r *Refuter) computeWhatSeeds(aid int) []*frozen {
	a := r.Reg.Get(aid)
	st := &r.seedScratch
	if a.Kind != actions.KindMessage || len(a.MsgWhats) == 0 {
		return []*frozen{r.arena.newFrozen()}
	}
	var out []*frozen
	for _, w := range a.MsgWhats {
		st.resetToFrozen(&emptyFrozen)
		consistent := true
		for _, root := range a.Roots {
			if len(root.Params) == 0 {
				continue
			}
			msgObjs := r.resolvePts(aid, &frame{id: 0, m: root}, root.Params[0])
			for _, o := range msgObjs.Slice() {
				if !mergeLoc(st, locKey{obj: o, field: "what"}, mustEq(intVal(w))) {
					consistent = false
				}
			}
		}
		if consistent {
			out = append(out, r.arena.freeze(st, st.hash()))
		}
	}
	if len(out) == 0 {
		return []*frozen{r.arena.newFrozen()}
	}
	return out
}

// mustEq wraps a value as a must-equal constraint.
func mustEq(v value) constraint { return constraint{eqv: v, hasEq: true} }

// mergeStores conjoins src's constraints into dst, reporting
// satisfiability.
func mergeStores(dst, src *store) bool {
	for name, c := range src.vars {
		if !mergeVar(dst, name, c) {
			return false
		}
	}
	for lk, c := range src.locs {
		if !mergeLoc(dst, lk, c) {
			return false
		}
	}
	return true
}

// newWalker recycles the refuter's walker scratch for a walk over g,
// wiring in the reusable dense-visit array, trail, and walk store (the
// refuter runs one walk at a time, so sharing is safe; forks carry
// their own scratch).
func (r *Refuter) newWalker(g *igraph, aid, budget int) *walker {
	w := &r.walkScratch
	*w = walker{
		g:         g,
		ref:       r,
		aid:       aid,
		budget:    budget,
		cloneRef:  r.Cfg.cloneWalker,
		cancelled: r.cancelled,
	}
	if !w.cloneRef {
		if len(r.walkVisits) < len(g.nodes) {
			r.walkVisits = make([]uint8, len(g.nodes))
		}
		w.visits = r.walkVisits
		w.tr = &r.walkTrail
		w.scratch = &r.walkStore
	}
	return w
}

// entryConstraints runs (and memoizes) the A-walk: backward from the
// access to its action's entry under an initial seed store, yielding the
// distinct constraint stores under which the access is reachable, plus
// whether the budget ran out and how many paths the call itself
// explored (0 on a memo hit — cached stores cost nothing to reuse).
func (r *Refuter) entryConstraints(acc race.Access, seedIdx int, seed *frozen, budget int) (stores []*frozen, budgetHit bool, explored int) {
	key := entryKey{action: acc.Action, pos: acc.Pos, seedIdx: seedIdx}
	if !r.Cfg.DisableCache {
		if have, ok := r.entryMemo[key]; ok {
			return have.stores, have.budget, 0
		}
	}
	res := r.arena.newResult()
	r.sinkStores = r.sinkStores[:0]
	for _, g := range r.actionGraphs(acc.Action) {
		w := r.newWalker(g, acc.Action, budget-res.explored)
		for _, start := range g.byPos[acc.Pos] {
			w.collectEntryFrom(start, seed, r.entrySinkFn)
		}
		res.explored += w.paths
		r.pruned += int64(w.pruned)
		if w.budgetHit {
			res.budget = true
			break
		}
	}
	res.stores = r.arena.freezePtrs(r.sinkStores)
	if !r.Cfg.DisableCache {
		r.entryMemo[key] = res
	}
	return res.stores, res.budget, res.explored
}

// recordEntryStore is the A-walk sink (bound once as entrySinkFn): it
// dedups the walked-in store against everything this query has kept so
// far (hash-then-verify, the same partition the old per-query map
// induced), enforces EntryStoreCap, and freezes survivors into the
// arena.
func (r *Refuter) recordEntryStore(st *store) {
	h := st.hash()
	for _, prev := range r.sinkStores {
		if prev.h == h && prev.equalsStore(st) {
			return
		}
	}
	if len(r.sinkStores) >= EntryStoreCap {
		r.entryCapped++
		return
	}
	r.sinkStores = append(r.sinkStores, r.arena.freeze(st, h))
}

// witness runs the E-walk: backward through the first action from its
// exits to its entry, requiring the path to execute the access, under
// the given initial constraints.
func (r *Refuter) witness(acc race.Access, init *store, budget int) (ok bool, used int, budgetHit bool) {
	useCache := !r.Cfg.DisableCache
	var wkey witnessKey
	var bkt *wbucket
	if useCache {
		wkey = witnessKey{action: acc.Action, pos: acc.Pos, h: init.hash()}
		bkt = r.witnessMemo[wkey]
		if bkt != nil {
			if bkt.hasFirst && bkt.first.st.equalsStore(init) {
				return bkt.first.ok, 0, false
			}
			for _, e := range bkt.rest {
				if e.st.equalsStore(init) {
					return e.ok, 0, false
				}
			}
		}
	}
	for _, g := range r.actionGraphs(acc.Action) {
		w := r.newWalker(g, acc.Action, budget-used)
		w.target = acc.Pos
		hit := w.findWitness(init)
		used += w.paths
		r.pruned += int64(w.pruned)
		if w.budgetHit {
			return true, used, true
		}
		if hit {
			if useCache {
				r.recordWitness(bkt, wkey, init, true)
			}
			return true, used, false
		}
		if used >= budget {
			return true, used, true
		}
	}
	if useCache {
		r.recordWitness(bkt, wkey, init, false)
	}
	return false, used, false
}

// recordWitness freezes the caller's reusable init scratch into the
// arena and appends the verdict to the key's bucket (creating it on
// first sight). Lookup order — inline first entry, then rest — matches
// the old slice append order.
func (r *Refuter) recordWitness(bkt *wbucket, wkey witnessKey, init *store, ok bool) {
	e := witnessEntry{st: r.arena.freeze(init, wkey.h), ok: ok}
	if bkt == nil {
		bkt = r.arena.newWBucket()
		r.witnessMemo[wkey] = bkt
	}
	if !bkt.hasFirst {
		bkt.first = e
		bkt.hasFirst = true
		return
	}
	bkt.rest = append(bkt.rest, e)
}

// cancelPoll returns the walker's cancellation probe (nil when no
// context is configured, keeping the uncancellable path free).
func (r *Refuter) cancelPoll() func() bool {
	ctx := r.Cfg.Ctx
	if ctx == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// actionGraphs returns (building on demand) the inlined graphs of the
// action's roots.
func (r *Refuter) actionGraphs(aid int) []*igraph {
	if gs, ok := r.graphs[aid]; ok {
		return gs
	}
	if r.igb == nil {
		r.igb = newIGBuilder()
	}
	var gs []*igraph
	for _, root := range r.Reg.Get(aid).Roots {
		gs = append(gs, r.igb.build(root, r.callees, igraphLimits{
			maxDepth: r.Cfg.MaxDepth,
		}))
	}
	r.graphs[aid] = gs
	return gs
}

// resolvePts resolves a frame variable's points-to set within an
// action — the union over the action's instances of that method —
// memoized per (action, method, var) so repeated Load/Store transfers
// on the walk spine hit a map instead of re-unioning ObjSets. The
// returned sets are shared and must be treated as read-only.
func (r *Refuter) resolvePts(aid int, f *frame, v string) pointer.ObjSet {
	k := ptsKey{action: aid, m: f.m, v: v}
	if s, ok := r.ptsMemo[k]; ok {
		return s
	}
	var out pointer.ObjSet
	if r.objWords > 0 {
		// Arena-backed words pre-sized to the analysis id space: the
		// unions below never reallocate, and the memoized set's storage
		// is recycled with the memo on resetPair.
		out = r.Res.Interner().NewSetBacked(r.objArena.Words(r.objWords))
	} else {
		out = r.Res.NewObjSet()
	}
	for _, mk := range r.insts[aid] {
		if mk.M == f.m {
			out.AddAll(r.Res.PointsTo(mk.M, mk.Ctx, v))
		}
	}
	r.ptsMemo[k] = out
	return out
}
