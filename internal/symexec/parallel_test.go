package symexec

import (
	"context"
	"reflect"
	"testing"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/harness"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/race"
	"sierra/internal/shbg"
)

// analyzeForCheckAll runs the pipeline up to racy pairs, returning the
// inputs CheckAll needs.
func analyzeForCheckAll(t *testing.T, app *apk.App) (*actions.Registry, *pointer.Result, []race.Pair) {
	t.Helper()
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	g := shbg.Build(reg, res, shbg.Options{})
	pairs := race.RacyPairs(reg, g, race.CollectAccesses(reg, res))
	return reg, res, pairs
}

// TestCheckAllParallelDeterministic verdicts must be identical across
// every worker count > 1: each pair's verdict is a pure function of the
// pair once the memo tables are private.
func TestCheckAllParallelDeterministic(t *testing.T) {
	for _, mk := range []func() *apk.App{corpus.SudokuTimerApp, corpus.NewsApp, corpus.DatabaseApp} {
		reg, res, pairs := analyzeForCheckAll(t, mk())
		if len(pairs) == 0 {
			t.Fatal("fixture produced no pairs")
		}
		var runs [][]Verdict
		for _, jobs := range []int{2, 3, 8} {
			v, interrupted := CheckAll(reg, res, Config{Jobs: jobs}, pairs)
			if interrupted {
				t.Fatalf("jobs=%d: interrupted without a context", jobs)
			}
			if len(v) != len(pairs) {
				t.Fatalf("jobs=%d: %d verdicts for %d pairs", jobs, len(v), len(pairs))
			}
			runs = append(runs, v)
		}
		for i := 1; i < len(runs); i++ {
			if !reflect.DeepEqual(runs[0], runs[i]) {
				t.Errorf("verdicts differ across worker counts:\n%+v\nvs\n%+v", runs[0], runs[i])
			}
		}
	}
}

// TestCheckAllSequentialMatchesRefuterLoop jobs<=1 must be the legacy
// shared-memo loop, verdict for verdict.
func TestCheckAllSequentialMatchesRefuterLoop(t *testing.T) {
	reg, res, pairs := analyzeForCheckAll(t, corpus.SudokuTimerApp())
	ref := NewRefuter(reg, res, Config{})
	var want []Verdict
	for _, p := range pairs {
		want = append(want, ref.Check(p))
	}
	got, interrupted := CheckAll(reg, res, Config{}, pairs)
	if interrupted {
		t.Fatal("interrupted without a context")
	}
	if !reflect.DeepEqual(append([]Verdict{}, got...), want) {
		t.Errorf("CheckAll(jobs=1) = %+v, want %+v", got, want)
	}
}

// TestCheckAllTruePositivesAgree the race/no-race outcome must agree
// between the sequential and parallel paths: private memos change
// budget accounting, never feasibility on these in-budget fixtures.
func TestCheckAllTruePositivesAgree(t *testing.T) {
	reg, res, pairs := analyzeForCheckAll(t, corpus.SudokuTimerApp())
	seq, _ := CheckAll(reg, res, Config{Jobs: 1}, pairs)
	par, _ := CheckAll(reg, res, Config{Jobs: 4}, pairs)
	for i := range pairs {
		if seq[i].TruePositive != par[i].TruePositive {
			t.Errorf("pair %s: sequential TruePositive=%v, parallel=%v",
				pairs[i].Key(), seq[i].TruePositive, par[i].TruePositive)
		}
	}
}

// TestCheckAllCancelledReturnsPrefix a pre-cancelled context yields an
// empty (but well-formed) prefix and the interrupted flag, on both
// paths.
func TestCheckAllCancelledReturnsPrefix(t *testing.T) {
	reg, res, pairs := analyzeForCheckAll(t, corpus.SudokuTimerApp())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		v, interrupted := CheckAll(reg, res, Config{Jobs: jobs, Ctx: ctx}, pairs)
		if !interrupted {
			t.Errorf("jobs=%d: cancelled run not marked interrupted", jobs)
		}
		if len(v) != 0 {
			t.Errorf("jobs=%d: cancelled run emitted %d verdicts", jobs, len(v))
		}
	}
}

// TestCheckAllPanicIsolation a worker panic (here: a pair whose action
// id does not exist) must not crash the pool; the pair keeps the
// over-approximate report-anyway verdict and is counted.
func TestCheckAllPanicIsolation(t *testing.T) {
	reg, res, pairs := analyzeForCheckAll(t, corpus.SudokuTimerApp())
	if len(pairs) == 0 {
		t.Fatal("fixture produced no pairs")
	}
	bad := pairs[0]
	bad.A.Action = reg.NumActions() + 50
	bad.B.Action = reg.NumActions() + 51
	mixed := append([]race.Pair{bad}, pairs...)

	tr := obs.New("test")
	v, interrupted := CheckAll(reg, res, Config{Jobs: 4, Obs: tr}, mixed)
	if interrupted {
		t.Fatal("panic was reported as interruption")
	}
	if len(v) != len(mixed) {
		t.Fatalf("%d verdicts for %d pairs", len(v), len(mixed))
	}
	if !v[0].TruePositive || !v[0].BudgetExhausted {
		t.Errorf("panicked pair verdict = %+v, want over-approximate race", v[0])
	}
	if got := tr.Counter("refute.pair_panics"); got != 1 {
		t.Errorf("refute.pair_panics = %d, want 1", got)
	}
	if got := tr.Counter("symexec.refute_par_jobs"); got != int64(len(mixed)) {
		t.Errorf("symexec.refute_par_jobs = %d, want %d", got, len(mixed))
	}
}

// TestCheckAllObsParityWithSequential the parallel emitter must record
// the same refute.pairs total and the same pair_paths series keys in
// the same order as the sequential path.
func TestCheckAllObsParityWithSequential(t *testing.T) {
	reg, res, pairs := analyzeForCheckAll(t, corpus.NewsApp())
	trSeq := obs.New("seq")
	CheckAll(reg, res, Config{Jobs: 1, Obs: trSeq}, pairs)
	trPar := obs.New("par")
	CheckAll(reg, res, Config{Jobs: 4, Obs: trPar}, pairs)

	if a, b := trSeq.Counter("refute.pairs"), trPar.Counter("refute.pairs"); a != b {
		t.Errorf("refute.pairs: sequential %d, parallel %d", a, b)
	}
	sa := trSeq.Snapshot().Series["refute.pair_paths"]
	sb := trPar.Snapshot().Series["refute.pair_paths"]
	if len(sa) != len(sb) {
		t.Fatalf("series lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Label != sb[i].Label {
			t.Errorf("series order diverges at %d: %q vs %q", i, sa[i].Label, sb[i].Label)
		}
	}
}
