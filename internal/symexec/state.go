// Package symexec implements goal-directed backward symbolic execution
// for race refutation (§5 of the paper). For a candidate racy pair
// ⟨αA, αB⟩ it checks whether a feasible program path witnesses each
// ordering of the two actions; ad-hoc synchronization (guard variables,
// null checks, constant message codes) shows up as contradictory path
// constraints, refuting the pair.
//
// It substitutes for the Thresher/Z3 stack in the paper's toolchain: the
// constraint language covers what the paper's refutations need —
// equality/disequality over booleans, integers, and null-ness, with
// strong updates on singleton points-to sets.
package symexec

import (
	"fmt"
	"sort"
	"strings"

	"sierra/internal/pointer"
)

// valKind discriminates symbolic values.
type valKind int

const (
	vInt valKind = iota
	vBool
	vNull
	vNonNull
)

// value is a concrete constraint operand.
type value struct {
	kind valKind
	i    int64
	b    bool
}

func intVal(i int64) value { return value{kind: vInt, i: i} }
func boolVal(b bool) value { return value{kind: vBool, b: b} }
func nullVal() value       { return value{kind: vNull} }
func nonNullVal() value    { return value{kind: vNonNull} }

func (v value) String() string {
	switch v.kind {
	case vInt:
		return fmt.Sprintf("%d", v.i)
	case vBool:
		return fmt.Sprintf("%t", v.b)
	case vNull:
		return "null"
	default:
		return "nonnull"
	}
}

// equal reports definite equality of two values.
func (a value) equal(b value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case vInt:
		return a.i == b.i
	case vBool:
		return a.b == b.b
	default:
		return true
	}
}

// conflicts reports that asserting x == a and x == b together is
// unsatisfiable.
func conflicts(a, b value) bool {
	// null vs nonnull conflict; null vs any concrete conflicts.
	if a.kind == vNull && b.kind == vNonNull || a.kind == vNonNull && b.kind == vNull {
		return true
	}
	if a.kind == vNull && (b.kind == vInt || b.kind == vBool) {
		return true
	}
	if b.kind == vNull && (a.kind == vInt || a.kind == vBool) {
		return true
	}
	if a.kind != b.kind {
		return false // incomparable, assume satisfiable
	}
	return !a.equal(b)
}

// constraint is the requirement on one variable or location: an optional
// must-equal value plus must-not-equal values.
type constraint struct {
	eq *value
	ne []value
}

// withEq returns the constraint strengthened by x == v, and whether the
// result is satisfiable.
func (c constraint) withEq(v value) (constraint, bool) {
	if c.eq != nil && conflicts(*c.eq, v) {
		return c, false
	}
	for _, n := range c.ne {
		if v.equal(n) {
			return c, false
		}
		// x != null together with x == nonnull is fine; x != nonnull is
		// not expressible, so only definite equality kills.
	}
	out := c
	if out.eq == nil {
		out.eq = &v
	}
	return out, true
}

// withNe returns the constraint strengthened by x != v.
func (c constraint) withNe(v value) (constraint, bool) {
	if c.eq != nil && c.eq.equal(v) {
		return c, false
	}
	out := c
	out.ne = append(append([]value(nil), c.ne...), v)
	return out, true
}

// satisfiedBy checks whether assigning val satisfies the constraint.
func (c constraint) satisfiedBy(val value) bool {
	if c.eq != nil && conflicts(*c.eq, val) {
		return false
	}
	if c.eq != nil && c.eq.kind != val.kind {
		// e.g. required nonnull, assigned int: int is non-null — allow
		// kind-crossing satisfaction for null-ness.
		if c.eq.kind == vNonNull && (val.kind == vInt || val.kind == vBool) {
			// fallthrough: satisfied
		} else if c.eq.kind == vNull {
			return false
		}
	}
	for _, n := range c.ne {
		if val.equal(n) {
			return false
		}
	}
	return true
}

func (c constraint) String() string {
	parts := []string{}
	if c.eq != nil {
		parts = append(parts, "=="+c.eq.String())
	}
	for _, n := range c.ne {
		parts = append(parts, "!="+n.String())
	}
	return strings.Join(parts, ",")
}

// locKey identifies a heap location: an abstract object's field or a
// static field.
type locKey struct {
	obj    pointer.Obj
	field  string
	static bool
	class  string
}

func (l locKey) String() string {
	if l.static {
		return l.class + "." + l.field
	}
	return l.obj.String() + "." + l.field
}

// store is a path-constraint store over variables (frame-qualified) and
// heap locations. Stores are copied on branch.
type store struct {
	vars map[string]constraint
	locs map[locKey]constraint
}

func newStore() *store {
	return &store{vars: map[string]constraint{}, locs: map[locKey]constraint{}}
}

func (s *store) clone() *store {
	out := newStore()
	for k, v := range s.vars {
		out.vars[k] = v
	}
	for k, v := range s.locs {
		out.locs[k] = v
	}
	return out
}

// key renders a canonical fingerprint for memoization.
func (s *store) key() string {
	parts := make([]string, 0, len(s.vars)+len(s.locs))
	for k, v := range s.vars {
		parts = append(parts, "v:"+k+":"+v.String())
	}
	for k, v := range s.locs {
		parts = append(parts, "l:"+k.String()+":"+v.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func (s *store) empty() bool { return len(s.vars) == 0 && len(s.locs) == 0 }

// constrainVarEq asserts var == v, reporting satisfiability.
func (s *store) constrainVarEq(name string, v value) bool {
	c, ok := s.vars[name].withEq(v)
	if !ok {
		return false
	}
	s.vars[name] = c
	return true
}

// constrainVarNe asserts var != v.
func (s *store) constrainVarNe(name string, v value) bool {
	c, ok := s.vars[name].withNe(v)
	if !ok {
		return false
	}
	s.vars[name] = c
	return true
}
