// Package symexec implements goal-directed backward symbolic execution
// for race refutation (§5 of the paper). For a candidate racy pair
// ⟨αA, αB⟩ it checks whether a feasible program path witnesses each
// ordering of the two actions; ad-hoc synchronization (guard variables,
// null checks, constant message codes) shows up as contradictory path
// constraints, refuting the pair.
//
// It substitutes for the Thresher/Z3 stack in the paper's toolchain: the
// constraint language covers what the paper's refutations need —
// equality/disequality over booleans, integers, and null-ness, with
// strong updates on singleton points-to sets.
package symexec

import (
	"fmt"
	"sort"
	"strings"

	"sierra/internal/pointer"
)

// valKind discriminates symbolic values.
type valKind int

const (
	vInt valKind = iota
	vBool
	vNull
	vNonNull
)

// value is a concrete constraint operand.
type value struct {
	kind valKind
	i    int64
	b    bool
}

func intVal(i int64) value { return value{kind: vInt, i: i} }
func boolVal(b bool) value { return value{kind: vBool, b: b} }
func nullVal() value       { return value{kind: vNull} }
func nonNullVal() value    { return value{kind: vNonNull} }

func (v value) String() string {
	switch v.kind {
	case vInt:
		return fmt.Sprintf("%d", v.i)
	case vBool:
		return fmt.Sprintf("%t", v.b)
	case vNull:
		return "null"
	default:
		return "nonnull"
	}
}

// equal reports definite equality of two values.
func (a value) equal(b value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case vInt:
		return a.i == b.i
	case vBool:
		return a.b == b.b
	default:
		return true
	}
}

// conflicts reports that asserting x == a and x == b together is
// unsatisfiable.
func conflicts(a, b value) bool {
	// null vs nonnull conflict; null vs any concrete conflicts.
	if a.kind == vNull && b.kind == vNonNull || a.kind == vNonNull && b.kind == vNull {
		return true
	}
	if a.kind == vNull && (b.kind == vInt || b.kind == vBool) {
		return true
	}
	if b.kind == vNull && (a.kind == vInt || a.kind == vBool) {
		return true
	}
	if a.kind != b.kind {
		return false // incomparable, assume satisfiable
	}
	return !a.equal(b)
}

// constraint is the requirement on one variable or location: an optional
// must-equal value plus must-not-equal values. The must-equal value is
// stored inline (hasEq discriminates) so strengthening a constraint on
// the walk spine never heap-allocates.
type constraint struct {
	eqv   value
	hasEq bool
	ne    []value
}

// withEq returns the constraint strengthened by x == v, and whether the
// result is satisfiable.
func (c constraint) withEq(v value) (constraint, bool) {
	if c.hasEq && conflicts(c.eqv, v) {
		return c, false
	}
	for _, n := range c.ne {
		if v.equal(n) {
			return c, false
		}
		// x != null together with x == nonnull is fine; x != nonnull is
		// not expressible, so only definite equality kills.
	}
	out := c
	if !out.hasEq {
		out.eqv = v
		out.hasEq = true
	}
	return out, true
}

// withNe returns the constraint strengthened by x != v.
func (c constraint) withNe(v value) (constraint, bool) {
	if c.hasEq && c.eqv.equal(v) {
		return c, false
	}
	out := c
	out.ne = append(append([]value(nil), c.ne...), v)
	return out, true
}

// satisfiedBy checks whether assigning val satisfies the constraint.
func (c constraint) satisfiedBy(val value) bool {
	if c.hasEq && conflicts(c.eqv, val) {
		return false
	}
	if c.hasEq && c.eqv.kind != val.kind {
		// e.g. required nonnull, assigned int: int is non-null — allow
		// kind-crossing satisfaction for null-ness.
		if c.eqv.kind == vNonNull && (val.kind == vInt || val.kind == vBool) {
			// fallthrough: satisfied
		} else if c.eqv.kind == vNull {
			return false
		}
	}
	for _, n := range c.ne {
		if val.equal(n) {
			return false
		}
	}
	return true
}

func (c constraint) String() string {
	parts := []string{}
	if c.hasEq {
		parts = append(parts, "=="+c.eqv.String())
	}
	for _, n := range c.ne {
		parts = append(parts, "!="+n.String())
	}
	return strings.Join(parts, ",")
}

// locKey identifies a heap location: an abstract object's field or a
// static field.
type locKey struct {
	obj    pointer.Obj
	field  string
	static bool
	class  string
}

func (l locKey) String() string {
	if l.static {
		return l.class + "." + l.field
	}
	return l.obj.String() + "." + l.field
}

// store is a path-constraint store over variables (frame-qualified) and
// heap locations. The trail-based walker mutates one shared store and
// rolls its trail back when the DFS retreats; the clone-based reference
// walker copies the store on branch instead (tr stays nil and every
// mutation is final).
type store struct {
	vars map[string]constraint
	locs map[locKey]constraint
	// tr, when non-nil, records the inverse of every mutation so
	// rollback can restore the store to an earlier mark. Clones never
	// inherit the trail.
	tr *trail
}

func newStore() *store {
	return &store{vars: map[string]constraint{}, locs: map[locKey]constraint{}}
}

func (s *store) clone() *store {
	out := newStore()
	for k, v := range s.vars {
		out.vars[k] = v
	}
	for k, v := range s.locs {
		out.locs[k] = v
	}
	return out
}

// resetTo overwrites s with init's contents, reusing s's map storage —
// the allocation-free clone the trail walker's scratch store and the
// feasibility check's seed-merge scratch use. Writes bypass the trail
// (callers reset the trail alongside).
func (s *store) resetTo(init *store) {
	if s.vars == nil {
		s.vars = map[string]constraint{}
		s.locs = map[locKey]constraint{}
	}
	clear(s.vars)
	clear(s.locs)
	for k, v := range init.vars {
		s.vars[k] = v
	}
	for k, v := range init.locs {
		s.locs[k] = v
	}
}

// undo is one inverse op on the trail: restore (or re-delete) a single
// var or loc entry.
type undo struct {
	key   string // var name when !isLoc
	lkey  locKey // loc key when isLoc
	old   constraint
	had   bool
	isLoc bool
}

// trail is the mutation log shared by every store the trail walker
// touches within one query; its backing array is reused across walks.
type trail struct {
	ops []undo
}

// mark returns the current trail position for a later rollback.
func (t *trail) mark() int { return len(t.ops) }

// setVar writes a var constraint, logging the displaced state.
func (s *store) setVar(name string, c constraint) {
	if s.tr != nil {
		old, had := s.vars[name]
		s.tr.ops = append(s.tr.ops, undo{key: name, old: old, had: had})
	}
	s.vars[name] = c
}

// delVar removes a var constraint (no-op and no log entry when absent).
func (s *store) delVar(name string) {
	old, had := s.vars[name]
	if !had {
		return
	}
	if s.tr != nil {
		s.tr.ops = append(s.tr.ops, undo{key: name, old: old, had: true})
	}
	delete(s.vars, name)
}

// setLoc writes a loc constraint, logging the displaced state.
func (s *store) setLoc(lk locKey, c constraint) {
	if s.tr != nil {
		old, had := s.locs[lk]
		s.tr.ops = append(s.tr.ops, undo{lkey: lk, old: old, had: had, isLoc: true})
	}
	s.locs[lk] = c
}

// delLoc removes a loc constraint (no-op and no log entry when absent).
func (s *store) delLoc(lk locKey) {
	old, had := s.locs[lk]
	if !had {
		return
	}
	if s.tr != nil {
		s.tr.ops = append(s.tr.ops, undo{lkey: lk, old: old, had: true, isLoc: true})
	}
	delete(s.locs, lk)
}

// rollback undoes every mutation logged after mark, newest first,
// restoring the store to its state when mark was taken.
func (s *store) rollback(mark int) {
	ops := s.tr.ops
	for i := len(ops) - 1; i >= mark; i-- {
		u := &ops[i]
		switch {
		case u.isLoc && u.had:
			s.locs[u.lkey] = u.old
		case u.isLoc:
			delete(s.locs, u.lkey)
		case u.had:
			s.vars[u.key] = u.old
		default:
			delete(s.vars, u.key)
		}
	}
	s.tr.ops = ops[:mark]
}

// key renders a canonical fingerprint. Retained as the readable
// reference the hash/equality pair below is property-tested against;
// the memo hot path uses hash() + storesEqual instead of building
// strings.
func (s *store) key() string {
	parts := make([]string, 0, len(s.vars)+len(s.locs))
	for k, v := range s.vars {
		parts = append(parts, "v:"+k+":"+v.String())
	}
	for k, v := range s.locs {
		parts = append(parts, "l:"+k.String()+":"+v.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// FNV-1a, accumulated manually so hashing never allocates.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnvU64(h uint64, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = (h ^ (v >> i & 0xff)) * fnvPrime
	}
	return h
}

func hashValue(h uint64, v value) uint64 {
	h = fnvByte(h, byte(v.kind))
	h = fnvU64(h, uint64(v.i))
	if v.b {
		return fnvByte(h, 1)
	}
	return fnvByte(h, 0)
}

func hashConstraint(h uint64, c constraint) uint64 {
	if c.hasEq {
		h = hashValue(fnvByte(h, 1), c.eqv)
	} else {
		h = fnvByte(h, 0)
	}
	for _, n := range c.ne {
		h = hashValue(h, n)
	}
	return h
}

// hash is the order-independent store fingerprint: per-entry FNV-1a
// hashes XORed together, so insertion (= map iteration) order cannot
// matter. Collisions are resolved by the caller with storesEqual —
// hash-then-verify, never hash-and-trust.
func (s *store) hash() uint64 {
	var acc uint64
	for k, c := range s.vars {
		acc ^= hashConstraint(fnvStr(fnvByte(fnvOffset, 'v'), k), c)
	}
	for lk, c := range s.locs {
		h := fnvByte(fnvOffset, 'l')
		h = fnvU64(h, uint64(int64(lk.obj.Site)))
		h = fnvStr(h, lk.obj.Ctx)
		h = fnvU64(h, uint64(int64(lk.obj.ViewID)))
		h = fnvStr(h, lk.obj.Class)
		h = fnvStr(h, lk.field)
		if lk.static {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
		h = fnvStr(h, lk.class)
		acc ^= hashConstraint(h, c)
	}
	return acc
}

// constraintsEqual is structural identity: same eq presence and value,
// same ne sequence in order — exactly the equivalence the rendered
// key() strings induced, so the hash-based dedup partitions stores the
// way the string-based one did.
func constraintsEqual(a, b constraint) bool {
	if a.hasEq != b.hasEq {
		return false
	}
	if a.hasEq && a.eqv != b.eqv {
		return false
	}
	if len(a.ne) != len(b.ne) {
		return false
	}
	for i := range a.ne {
		if a.ne[i] != b.ne[i] {
			return false
		}
	}
	return true
}

// storesEqual reports structural equality of two stores.
func storesEqual(a, b *store) bool {
	if len(a.vars) != len(b.vars) || len(a.locs) != len(b.locs) {
		return false
	}
	for k, ca := range a.vars {
		cb, ok := b.vars[k]
		if !ok || !constraintsEqual(ca, cb) {
			return false
		}
	}
	for k, ca := range a.locs {
		cb, ok := b.locs[k]
		if !ok || !constraintsEqual(ca, cb) {
			return false
		}
	}
	return true
}

func (s *store) empty() bool { return len(s.vars) == 0 && len(s.locs) == 0 }

// constrainVarEq asserts var == v, reporting satisfiability.
func (s *store) constrainVarEq(name string, v value) bool {
	c, ok := s.vars[name].withEq(v)
	if !ok {
		return false
	}
	s.setVar(name, c)
	return true
}

// constrainVarNe asserts var != v.
func (s *store) constrainVarNe(name string, v value) bool {
	c, ok := s.vars[name].withNe(v)
	if !ok {
		return false
	}
	s.setVar(name, c)
	return true
}
