package symexec

import (
	"reflect"
	"testing"

	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/obs"
)

// parityApps is the corpus the trail-vs-clone parity property runs
// over: every refutation fixture the unit tests exercise, covering
// guard refutations, surviving races, null checks, and message-code
// constant propagation.
func parityApps() map[string]func() *apk.App {
	return map[string]func() *apk.App{
		"SudokuTimer":  corpus.SudokuTimerApp,
		"News":         corpus.NewsApp,
		"Database":     corpus.DatabaseApp,
		"NullGuard":    corpus.NullGuardApp,
		"MessageGuard": messageGuardApp,
	}
}

// checkParity refutes every pair with both walker implementations under
// cfg and requires bit-for-bit identical verdicts (TruePositive,
// RefutedOrders, Paths, BudgetExhausted) plus identical pruned-path and
// capped-store tallies.
func checkParity(t *testing.T, name string, cfg Config, app *apk.App) {
	t.Helper()
	reg, res, pairs := analyzeForCheckAll(t, app)
	if len(pairs) == 0 {
		t.Fatalf("%s: fixture produced no pairs", name)
	}

	trailCfg := cfg
	trailCfg.cloneWalker = false
	cloneCfg := cfg
	cloneCfg.cloneWalker = true
	trailRef := NewRefuter(reg, res, trailCfg)
	cloneRef := NewRefuter(reg, res, cloneCfg)

	for _, p := range pairs {
		got := trailRef.Check(p)
		want := cloneRef.Check(p)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s pair %s: trail verdict %+v, clone verdict %+v",
				name, p.Key(), got, want)
		}
	}
	if trailRef.pruned != cloneRef.pruned {
		t.Errorf("%s: pruned paths diverge: trail %d, clone %d",
			name, trailRef.pruned, cloneRef.pruned)
	}
	if trailRef.entryCapped != cloneRef.entryCapped {
		t.Errorf("%s: capped stores diverge: trail %d, clone %d",
			name, trailRef.entryCapped, cloneRef.entryCapped)
	}
}

// TestWalkerParityTrailVsClone the allocation-free trail walker must
// reproduce the clone-per-predecessor reference bit for bit on every
// corpus fixture: same verdicts, same path counts, same pruned and
// capped tallies.
func TestWalkerParityTrailVsClone(t *testing.T) {
	for name, mk := range parityApps() {
		checkParity(t, name, Config{}, mk())
	}
}

// TestWalkerParityBudgetConstrained parity must also hold when the path
// budget bites mid-walk (the exploration order dependence a divergent
// walk order would expose immediately).
func TestWalkerParityBudgetConstrained(t *testing.T) {
	for name, mk := range parityApps() {
		checkParity(t, name, Config{MaxPaths: 37}, mk())
	}
}

// TestWalkerParityCacheDisabled without memoization every query re-runs
// the walker, so a trail/clone divergence cannot hide behind a cache
// hit.
func TestWalkerParityCacheDisabled(t *testing.T) {
	checkParity(t, "SudokuTimer", Config{DisableCache: true}, corpus.SudokuTimerApp())
}

// TestWalkerParityParallel the worker pool over trail walkers must
// produce the same verdict slice and observability totals as the
// clone-walker pool.
func TestWalkerParityParallel(t *testing.T) {
	for name, mk := range parityApps() {
		reg, res, pairs := analyzeForCheckAll(t, mk())
		trTrail := obs.New("trail")
		trailV, _ := CheckAll(reg, res, Config{Jobs: 4, Obs: trTrail}, pairs)
		trClone := obs.New("clone")
		cloneV, _ := CheckAll(reg, res, Config{Jobs: 4, Obs: trClone, cloneWalker: true}, pairs)
		if !reflect.DeepEqual(trailV, cloneV) {
			t.Errorf("%s: parallel verdicts diverge:\n%+v\nvs\n%+v", name, trailV, cloneV)
		}
		for _, c := range []string{"refute.pairs", "refute.paths", "refute.paths_pruned", "refute.entry_stores_capped"} {
			if a, b := trTrail.Counter(c), trClone.Counter(c); a != b {
				t.Errorf("%s: %s diverges: trail %d, clone %d", name, c, a, b)
			}
		}
	}
}

// TestWalkerParitySequentialCheckAll jobs=1 parity, exercising the
// shared-memo sequential path under both walkers.
func TestWalkerParitySequentialCheckAll(t *testing.T) {
	reg, res, pairs := analyzeForCheckAll(t, corpus.NewsApp())
	trailV, _ := CheckAll(reg, res, Config{Jobs: 1}, pairs)
	cloneV, _ := CheckAll(reg, res, Config{Jobs: 1, cloneWalker: true}, pairs)
	if !reflect.DeepEqual(trailV, cloneV) {
		t.Errorf("sequential verdicts diverge:\n%+v\nvs\n%+v", trailV, cloneV)
	}
}

// TestRacePairVerdictsStable is a pinned-output regression: a pair's
// verdict must not depend on how many pairs the refuter checked before
// it, under either walker.
func TestRacePairVerdictsStable(t *testing.T) {
	reg, res, pairs := analyzeForCheckAll(t, corpus.DatabaseApp())
	for _, cw := range []bool{false, true} {
		fresh := make([]Verdict, len(pairs))
		for i, p := range pairs {
			fresh[i] = NewRefuter(reg, res, Config{cloneWalker: cw}).Check(p)
		}
		shared := NewRefuter(reg, res, Config{cloneWalker: cw})
		for i, p := range pairs {
			got := shared.Check(p)
			if got.TruePositive != fresh[i].TruePositive ||
				!reflect.DeepEqual(got.RefutedOrders, fresh[i].RefutedOrders) {
				t.Errorf("cloneWalker=%v pair %s: shared-memo feasibility %+v, fresh %+v",
					cw, p.Key(), got, fresh[i])
			}
		}
	}
}
