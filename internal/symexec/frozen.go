package symexec

import "unsafe"

// Arena-backed frozen stores. Every constraint store a refuter retains
// across queries — what-seed stores, memoized A-walk entry stores,
// witness-memo keys — is immutable once recorded. Cloning each into a
// fresh map-backed store was the dominant allocation source of the
// refutation kernel, so retained stores are instead *frozen* into flat
// entry slices carved from per-refuter bump slabs: one slab chunk per
// few hundred entries instead of three heap objects per clone.
//
// A frozen store's entry order is whatever map iteration produced at
// freeze time; that is safe because every consumer is order-independent:
// resetTo-style hydration writes distinct keys, mergeStores-style
// conjunction is a per-key AND whose satisfiability verdict cannot
// depend on entry order, the hash is an order-independent XOR (the same
// fingerprint store.hash computes), and equality is lookup-based. The ne
// slices are aliased, not copied — live stores never mutate an ne slice
// in place (withNe copies), so sharing is sound.
//
// Lifetime: frozen stores live exactly as long as the memo tables that
// reference them. storeArena.reset invalidates everything at once; the
// parallel pool resets a worker's arena together with its memos between
// pairs (see Refuter.resetPair), so no dangling references can survive.

// varEntry and locEntry are the flat forms of one store map entry.
type varEntry struct {
	name string
	c    constraint
}

type locEntry struct {
	lk locKey
	c  constraint
}

// frozen is an immutable snapshot of a store, with its dedup hash
// computed once at freeze time.
type frozen struct {
	vars []varEntry
	locs []locEntry
	h    uint64
}

// storeArena bump-allocates frozen stores and their entries, plus the
// other per-query slab-lived records (entry results, witness buckets,
// frozen-pointer lists), in chunks. reset recycles every chunk.
type storeArena struct {
	frozens  []frozen
	vars     []varEntry
	locs     []locEntry
	ptrs     []*frozen
	results  []entryResult
	wbuckets []wbucket
	bytes    int64
}

const storeArenaChunk = 256

// Per-record sizes for the arena's bytes accounting (the
// symexec.arena_bytes counter).
const (
	frozenSize      = int64(unsafe.Sizeof(frozen{}))
	varEntrySize    = int64(unsafe.Sizeof(varEntry{}))
	locEntrySize    = int64(unsafe.Sizeof(locEntry{}))
	entryResultSize = int64(unsafe.Sizeof(entryResult{}))
	wbucketSize     = int64(unsafe.Sizeof(wbucket{}))
)

// emptyFrozen is the frozen form of the empty store (resetToFrozen
// target for scratch clearing).
var emptyFrozen frozen

// grow returns a slice with free capacity for n more elements, starting
// a fresh chunk when the current one is full (older chunks stay alive
// through the pointers already handed out).
func growChunk[T any](chunk []T, n int) []T {
	if cap(chunk)-len(chunk) < n {
		size := storeArenaChunk
		if n > size {
			size = n
		}
		return make([]T, 0, size)
	}
	return chunk
}

func (a *storeArena) newFrozen() *frozen {
	a.frozens = growChunk(a.frozens, 1)
	a.frozens = append(a.frozens, frozen{})
	a.bytes += int64(frozenSize)
	return &a.frozens[len(a.frozens)-1]
}

func (a *storeArena) newResult() *entryResult {
	a.results = growChunk(a.results, 1)
	a.results = append(a.results, entryResult{})
	a.bytes += int64(entryResultSize)
	return &a.results[len(a.results)-1]
}

func (a *storeArena) newWBucket() *wbucket {
	a.wbuckets = growChunk(a.wbuckets, 1)
	a.wbuckets = append(a.wbuckets, wbucket{})
	a.bytes += int64(wbucketSize)
	return &a.wbuckets[len(a.wbuckets)-1]
}

// freezePtrs copies a scratch pointer list into the arena, returning a
// right-sized view the caller may retain.
func (a *storeArena) freezePtrs(src []*frozen) []*frozen {
	if len(src) == 0 {
		return nil
	}
	a.ptrs = growChunk(a.ptrs, len(src))
	start := len(a.ptrs)
	a.ptrs = append(a.ptrs, src...)
	a.bytes += int64(len(src)) * 8
	return a.ptrs[start:len(a.ptrs):len(a.ptrs)]
}

// freeze snapshots a live store into the arena under a precomputed
// hash (callers have always just hashed the store for dedup).
func (a *storeArena) freeze(s *store, h uint64) *frozen {
	fz := a.newFrozen()
	fz.h = h
	if n := len(s.vars); n > 0 {
		a.vars = growChunk(a.vars, n)
		start := len(a.vars)
		for name, c := range s.vars {
			a.vars = append(a.vars, varEntry{name: name, c: c})
		}
		a.bytes += int64(n) * int64(varEntrySize)
		fz.vars = a.vars[start:len(a.vars):len(a.vars)]
	}
	if n := len(s.locs); n > 0 {
		a.locs = growChunk(a.locs, n)
		start := len(a.locs)
		for lk, c := range s.locs {
			a.locs = append(a.locs, locEntry{lk: lk, c: c})
		}
		a.bytes += int64(n) * int64(locEntrySize)
		fz.locs = a.locs[start:len(a.locs):len(a.locs)]
	}
	return fz
}

// reset truncates every slab for reuse. All frozen stores handed out
// since the last reset are invalidated.
func (a *storeArena) reset() {
	a.frozens = a.frozens[:0]
	a.vars = a.vars[:0]
	a.locs = a.locs[:0]
	a.ptrs = a.ptrs[:0]
	a.results = a.results[:0]
	a.wbuckets = a.wbuckets[:0]
}

// equalsStore reports structural equality with a live store — the same
// partition storesEqual induces, so memo hit/miss decisions are
// unchanged by freezing.
func (fz *frozen) equalsStore(s *store) bool {
	if len(fz.vars) != len(s.vars) || len(fz.locs) != len(s.locs) {
		return false
	}
	for i := range fz.vars {
		c, ok := s.vars[fz.vars[i].name]
		if !ok || !constraintsEqual(fz.vars[i].c, c) {
			return false
		}
	}
	for i := range fz.locs {
		c, ok := s.locs[fz.locs[i].lk]
		if !ok || !constraintsEqual(fz.locs[i].c, c) {
			return false
		}
	}
	return true
}

// thaw materializes a fresh map-backed store (the clone-walker
// reference path and tests use it; the hot path hydrates scratch stores
// with resetToFrozen instead).
func (fz *frozen) thaw() *store {
	out := newStore()
	for i := range fz.vars {
		out.vars[fz.vars[i].name] = fz.vars[i].c
	}
	for i := range fz.locs {
		out.locs[fz.locs[i].lk] = fz.locs[i].c
	}
	return out
}

// resetToFrozen overwrites s with fz's contents, reusing s's map
// storage — the frozen twin of resetTo. Writes bypass the trail.
func (s *store) resetToFrozen(fz *frozen) {
	if s.vars == nil {
		s.vars = map[string]constraint{}
		s.locs = map[locKey]constraint{}
	}
	clear(s.vars)
	clear(s.locs)
	for i := range fz.vars {
		s.vars[fz.vars[i].name] = fz.vars[i].c
	}
	for i := range fz.locs {
		s.locs[fz.locs[i].lk] = fz.locs[i].c
	}
}

// mergeFrozen conjoins fz's constraints into dst, reporting
// satisfiability — the frozen twin of mergeStores. Per-key conjunction
// commutes across distinct keys, so entry order cannot change the
// verdict or the resulting store.
func mergeFrozen(dst *store, fz *frozen) bool {
	for i := range fz.vars {
		if !mergeVar(dst, fz.vars[i].name, fz.vars[i].c) {
			return false
		}
	}
	for i := range fz.locs {
		if !mergeLoc(dst, fz.locs[i].lk, fz.locs[i].c) {
			return false
		}
	}
	return true
}
