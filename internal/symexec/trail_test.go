package symexec

import (
	"testing"
	"testing/quick"

	"sierra/internal/corpus"
	"sierra/internal/obs"
	"sierra/internal/race"
)

// copyConstraint deep-copies a constraint (private ne backing array;
// the eq value is inline and copies with the struct).
func copyConstraint(c constraint) constraint {
	out := c
	if len(c.ne) > 0 {
		out.ne = append([]value(nil), c.ne...)
	}
	return out
}

// snapshotStore deep-copies a store, including loc maps and ne lists,
// so later mutation of the original cannot alias into the snapshot.
func snapshotStore(s *store) *store {
	out := newStore()
	for k, c := range s.vars {
		out.vars[k] = copyConstraint(c)
	}
	for k, c := range s.locs {
		out.locs[k] = copyConstraint(c)
	}
	return out
}

// trailOp is one randomized store mutation, decoded from fuzz bytes.
func trailOp(s *store, opTag, nameTag, valTag uint8, i int64, b bool) {
	name := string('a' + rune(nameTag%5))
	lk := locKey{field: name, static: true, class: "C"}
	v := randValue(valTag, i, b)
	switch opTag % 6 {
	case 0:
		s.setVar(name, mustEq(v))
	case 1:
		s.delVar(name)
	case 2:
		s.setLoc(lk, constraint{ne: []value{v}})
	case 3:
		s.delLoc(lk)
	case 4:
		s.constrainVarEq(name, v)
	case 5:
		s.constrainVarNe(name, v)
	}
}

// TestTrailRollbackExactRestore property: any sequence of trail-logged
// mutations rolled back to a mark restores the store exactly — same
// vars, same loc map, same ne lists in order — and drains the trail to
// the mark.
func TestTrailRollbackExactRestore(t *testing.T) {
	f := func(ops []uint8, seedVals []int64, b bool) bool {
		// Random base store (built trail-free).
		base := newStore()
		for i, sv := range seedVals {
			trailOp(base, uint8(i), uint8(sv), uint8(sv>>8), sv%9, b)
		}
		want := snapshotStore(base)

		tr := &trail{}
		base.tr = tr
		mark := tr.mark()
		for i := 0; i+3 < len(ops); i += 4 {
			trailOp(base, ops[i], ops[i+1], ops[i+2], int64(ops[i+3])%9, b)
		}
		base.rollback(mark)

		return len(tr.ops) == mark && storesEqual(base, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTrailRollbackNestedMarks rollbacks must compose: undoing an inner
// mark leaves the outer prefix intact, and undoing the outer mark
// restores the original store.
func TestTrailRollbackNestedMarks(t *testing.T) {
	f := func(outer, inner []uint8, b bool) bool {
		base := newStore()
		tr := &trail{}
		base.tr = tr

		m0 := tr.mark()
		for i := 0; i+3 < len(outer); i += 4 {
			trailOp(base, outer[i], outer[i+1], outer[i+2], int64(outer[i+3])%9, b)
		}
		afterOuter := snapshotStore(base)

		m1 := tr.mark()
		for i := 0; i+3 < len(inner); i += 4 {
			trailOp(base, inner[i], inner[i+1], inner[i+2], int64(inner[i+3])%9, b)
		}
		base.rollback(m1)
		if !storesEqual(base, afterOuter) {
			return false
		}
		base.rollback(m0)
		return len(tr.ops) == 0 && storesEqual(base, newStore())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTrailWalkRestoresStore walks real inlined graphs (generated with
// randomized corpus knobs) end to end and requires that (a) the seed
// store handed to the walker is never mutated, (b) the reusable scratch
// store is back to the seed state after every walk, and (c) the trail
// is fully drained — the invariants that make scratch reuse sound.
func TestTrailWalkRestoresStore(t *testing.T) {
	knobs := []corpus.Knobs{
		{Activities: 1, GuardTotal: 2, GuardFields: 2},
		{Activities: 2, AsyncTotal: 3, AsyncFields: 1, GuardTotal: 1, GuardFields: 1},
		{Activities: 1, ImplicitTotal: 2, ImplicitFields: 2, WithReceiver: true},
	}
	for ki, k := range knobs {
		app, _ := corpus.Generate("TrailWalk", "1k", k)
		reg, res, pairs := analyzeForCheckAll(t, app)
		ref := NewRefuter(reg, res, Config{})
		for _, p := range pairs {
			for _, acc := range []race.Access{p.A, p.B} {
				for si, seed := range ref.whatSeeds(acc.Action) {
					// Frozen seeds are immutable by construction; thaw a
					// reference copy to check scratch restoration against.
					want := seed.thaw()
					for _, g := range ref.actionGraphs(acc.Action) {
						w := ref.newWalker(g, acc.Action, 1000)
						for _, start := range g.byPos[acc.Pos] {
							w.collectEntryFrom(start, seed, func(*store) {})
							if !seed.equalsStore(want) {
								t.Fatalf("knobs[%d] seed %d: walk mutated the seed store", ki, si)
							}
							if !storesEqual(&ref.walkStore, want) {
								t.Fatalf("knobs[%d] seed %d: scratch store not restored after walk", ki, si)
							}
							if len(ref.walkTrail.ops) != 0 {
								t.Fatalf("knobs[%d] seed %d: trail not drained: %d ops", ki, si, len(ref.walkTrail.ops))
							}
						}
					}
				}
			}
		}
	}
}

// TestWitnessMemoHitReportsZeroPaths regression: a memoized E-walk
// answer must cost zero explored paths on the repeat query (the cached
// verdict is reused, not re-walked).
func TestWitnessMemoHitReportsZeroPaths(t *testing.T) {
	reg, res, pairs := analyzeForCheckAll(t, corpus.SudokuTimerApp())
	ref := NewRefuter(reg, res, Config{})
	acc := pairs[0].A
	init := newStore()

	ok1, used1, _ := ref.witness(acc, init, ref.Cfg.MaxPaths)
	if used1 == 0 {
		t.Fatal("first witness query explored no paths (fixture too trivial)")
	}
	ok2, used2, _ := ref.witness(acc, init, ref.Cfg.MaxPaths)
	if ok2 != ok1 {
		t.Errorf("cached witness verdict flipped: first %v, repeat %v", ok1, ok2)
	}
	if used2 != 0 {
		t.Errorf("cached witness hit explored %d paths, want 0", used2)
	}
}

// TestRecordVerdictCappedCounter refute.entry_stores_capped is emitted
// exactly when an A-walk dropped stores at the cap, with the dropped
// count as the delta.
func TestRecordVerdictCappedCounter(t *testing.T) {
	tr := obs.New("test")
	recordVerdict(tr, race.Pair{}, Verdict{}, 0, 0, -1)
	if got := tr.Counter("refute.entry_stores_capped"); got != 0 {
		t.Errorf("uncapped pair emitted refute.entry_stores_capped = %d", got)
	}
	recordVerdict(tr, race.Pair{}, Verdict{}, 0, 7, -1)
	if got := tr.Counter("refute.entry_stores_capped"); got != 7 {
		t.Errorf("refute.entry_stores_capped = %d, want 7", got)
	}
}
