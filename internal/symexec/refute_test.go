package symexec

import (
	"testing"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/frontend"
	"sierra/internal/harness"
	"sierra/internal/ir"
	"sierra/internal/pointer"
	"sierra/internal/race"
	"sierra/internal/shbg"
)

// analyze runs the pipeline up to racy pairs and returns a refuter.
func analyze(t *testing.T, app *apk.App) (*actions.Registry, []race.Pair, *Refuter) {
	t.Helper()
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	g := shbg.Build(reg, res, shbg.Options{})
	accs := race.CollectAccesses(reg, res)
	pairs := race.RacyPairs(reg, g, accs)
	return reg, pairs, NewRefuter(reg, res, Config{})
}

// pairsOn selects pairs racing on a field between the two callbacks.
func pairsOn(reg *actions.Registry, pairs []race.Pair, field, cb1, cb2 string) []race.Pair {
	var out []race.Pair
	for _, p := range pairs {
		if p.A.Field != field {
			continue
		}
		n1 := reg.Get(p.A.Action).Callback
		n2 := reg.Get(p.B.Action).Callback
		if (n1 == cb1 && n2 == cb2) || (n1 == cb2 && n2 == cb1) {
			out = append(out, p)
		}
	}
	return out
}

func TestFigure8OpenSudokuRefutation(t *testing.T) {
	reg, pairs, ref := analyze(t, corpus.SudokuTimerApp())

	// The guarded mAccumTime pair must be refuted: running stop() before
	// run() forces mIsRunning=false, contradicting run()'s guard.
	guarded := pairsOn(reg, pairs, "mAccumTime", "run", "onPause")
	if len(guarded) == 0 {
		t.Fatal("no mAccumTime candidates to refute")
	}
	for _, p := range guarded {
		v := ref.Check(p)
		if v.TruePositive {
			t.Errorf("mAccumTime pair %s should be refuted; verdict %+v", p.Key(), v)
		}
		if len(v.RefutedOrders) == 0 {
			t.Errorf("no refuted order recorded for %s", p.Key())
		}
	}

	// The guard variable itself is a true (benign) race: both orderings
	// are feasible.
	guard := pairsOn(reg, pairs, "mIsRunning", "run", "onPause")
	if len(guard) == 0 {
		t.Fatal("no mIsRunning candidates")
	}
	trueRace := false
	for _, p := range guard {
		if ref.Check(p).TruePositive {
			trueRace = true
		}
	}
	if !trueRace {
		t.Error("the mIsRunning guard race must survive refutation (§6.5)")
	}
}

func TestFigure1NewsRaceSurvives(t *testing.T) {
	reg, pairs, ref := analyze(t, corpus.NewsApp())
	cand := pairsOn(reg, pairs, "mData", "doInBackground", "onScroll")
	if len(cand) == 0 {
		t.Fatal("Fig 1 candidate missing")
	}
	survived := false
	for _, p := range cand {
		if ref.Check(p).TruePositive {
			survived = true
		}
	}
	if !survived {
		t.Error("the unguarded Fig 1 race must survive refutation")
	}
}

func TestFigure2DBRaceSurvives(t *testing.T) {
	reg, pairs, ref := analyze(t, corpus.DatabaseApp())
	cand := pairsOn(reg, pairs, "mOpen", "onReceive", "onStop")
	if len(cand) == 0 {
		t.Fatal("Fig 2 candidate missing")
	}
	survived := false
	for _, p := range cand {
		if ref.Check(p).TruePositive {
			survived = true
		}
	}
	if !survived {
		t.Error("the unguarded Fig 2 race must survive refutation")
	}
}

func TestNullCheckGuardRefuted(t *testing.T) {
	reg, pairs, ref := analyze(t, corpus.NullGuardApp())
	// cache write in onClick is guarded by data != null; onReceive sets
	// data = null before writing cache, so the receive-first order has
	// no witness and the pair is refuted.
	cand := pairsOn(reg, pairs, "cache", "onClick", "onReceive")
	if len(cand) == 0 {
		t.Fatal("cache candidate missing")
	}
	for _, p := range cand {
		v := ref.Check(p)
		if v.TruePositive {
			t.Errorf("null-guarded cache pair %s should be refuted: %+v", p.Key(), v)
		}
	}
	// The guard field itself (data) races for real.
	dataPairs := pairsOn(reg, pairs, "data", "onClick", "onReceive")
	if len(dataPairs) == 0 {
		t.Fatal("data candidate missing")
	}
	survived := false
	for _, p := range dataPairs {
		if ref.Check(p).TruePositive {
			survived = true
		}
	}
	if !survived {
		t.Error("data guard race must survive")
	}
}

func TestBudgetExhaustionReportsRace(t *testing.T) {
	_, pairs, _ := analyze(t, corpus.SudokuTimerApp())
	if len(pairs) == 0 {
		t.Skip("no pairs")
	}
	app := corpus.SudokuTimerApp()
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	g := shbg.Build(reg, res, shbg.Options{})
	accs := race.CollectAccesses(reg, res)
	ps := race.RacyPairs(reg, g, accs)
	tiny := NewRefuter(reg, res, Config{MaxPaths: 1})
	for _, p := range ps {
		v := tiny.Check(p)
		if !v.TruePositive && v.BudgetExhausted {
			t.Errorf("budget-exhausted pair must be reported as a race: %+v", v)
		}
	}
}

func TestCacheConsistency(t *testing.T) {
	app1 := corpus.SudokuTimerApp()
	hs1 := harness.Generate(app1)
	reg1, res1 := actions.Analyze(app1, hs1, pointer.ActionSensitivePolicy{K: 2})
	g1 := shbg.Build(reg1, res1, shbg.Options{})
	ps1 := race.RacyPairs(reg1, g1, race.CollectAccesses(reg1, res1))

	cached := NewRefuter(reg1, res1, Config{})
	uncached := NewRefuter(reg1, res1, Config{DisableCache: true})
	for _, p := range ps1 {
		a := cached.Check(p)
		b := uncached.Check(p)
		if a.TruePositive != b.TruePositive {
			t.Errorf("cache changes verdict for %s: %t vs %t", p.Key(), a.TruePositive, b.TruePositive)
		}
	}
	// Re-checking with the warm cache must agree too.
	for _, p := range ps1 {
		a1 := cached.Check(p)
		a2 := cached.Check(p)
		if a1.TruePositive != a2.TruePositive {
			t.Errorf("unstable cached verdict for %s", p.Key())
		}
	}
}

func TestConstraintPrimitives(t *testing.T) {
	c := constraint{}
	c2, ok := c.withEq(boolVal(true))
	if !ok {
		t.Fatal("first eq must succeed")
	}
	if _, ok := c2.withEq(boolVal(false)); ok {
		t.Error("true==false must conflict")
	}
	if _, ok := c2.withEq(boolVal(true)); !ok {
		t.Error("idempotent eq must succeed")
	}
	c3, ok := c.withNe(intVal(5))
	if !ok {
		t.Fatal("ne must succeed")
	}
	if _, ok := c3.withEq(intVal(5)); ok {
		t.Error("eq 5 after ne 5 must conflict")
	}
	if !c3.satisfiedBy(intVal(6)) {
		t.Error("6 satisfies !=5")
	}
	if c3.satisfiedBy(intVal(5)) {
		t.Error("5 must not satisfy !=5")
	}
	// Null-ness.
	cn, _ := constraint{}.withEq(nullVal())
	if cn.satisfiedBy(nonNullVal()) {
		t.Error("nonnull must not satisfy ==null")
	}
	if cn.satisfiedBy(intVal(0)) {
		t.Error("int must not satisfy ==null")
	}
	cnn, _ := constraint{}.withEq(nonNullVal())
	if !cnn.satisfiedBy(intVal(3)) {
		t.Error("int satisfies nonnull")
	}
	if cnn.satisfiedBy(nullVal()) {
		t.Error("null must not satisfy nonnull")
	}
}

func TestStoreCloneIsolation(t *testing.T) {
	s := newStore()
	if !s.constrainVarEq("x", intVal(1)) {
		t.Fatal("constrain failed")
	}
	c := s.clone()
	if !c.constrainVarEq("y", intVal(2)) {
		t.Fatal("constrain clone failed")
	}
	if _, ok := s.vars["y"]; ok {
		t.Error("clone leaked into original")
	}
	if s.key() == c.key() {
		t.Error("keys must differ")
	}
	if s.empty() {
		t.Error("store not empty")
	}
}

// messageGuardApp: a handler dispatches on the constant message code; a
// sender posts what=1 only, so the what==2 branch's access is dead for
// that action — exactly what on-demand constant propagation (§5) proves.
func messageGuardApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	hc := ir.NewClass("DispHandler", frontend.HandlerClass)
	hb := ir.NewMethodBuilder(frontend.HandleMessage, "m")
	hb.Load("w", "m", "what")
	one, rest := hb.If("w", ir.CmpEQ, ir.IntOperand(1))
	hb.SetBlock(one)
	hb.SLoad("a", "G", "alpha")
	hb.Ret("")
	hb.SetBlock(rest)
	two, els := hb.If("w", ir.CmpEQ, ir.IntOperand(2))
	hb.SetBlock(two)
	hb.SLoad("b", "G", "beta")
	hb.Ret("")
	hb.SetBlock(els)
	hb.Ret("")
	hc.AddMethod(hb.Build())
	p.AddClass(hc)

	p.AddClass(ir.NewClass("G", frontend.Object))

	act := ir.NewClass("MsgActivity", frontend.ActivityClass)
	b := ir.NewMethodBuilder(frontend.OnCreate)
	b.CallStatic("looper", frontend.LooperClass, frontend.GetMainLooper)
	b.NewObj("h", "DispHandler")
	b.CallSpecial("", "h", frontend.HandlerClass, "<init>", "looper")
	b.Int("code", 1)
	b.Call("", "h", "DispHandler", frontend.SendEmptyMessage, "code")
	b.Ret("")
	act.AddMethod(b.Build())
	// onDestroy writes both globals — candidates against handleMessage.
	d := ir.NewMethodBuilder(frontend.OnDestroy)
	d.NewObj("x", frontend.BundleClass)
	d.SStore("G", "alpha", "x")
	d.SStore("G", "beta", "x")
	d.Ret("")
	act.AddMethod(d.Build())
	p.AddClass(act)
	p.Finalize()
	return &apk.App{
		Name: "msgguard", Program: p,
		Manifest: apk.Manifest{Activities: []apk.Component{{Class: "MsgActivity"}}},
		Layouts:  map[string]*apk.Layout{},
	}
}

func TestMessageCodeConstantPropagation(t *testing.T) {
	reg, pairs, ref := analyze(t, messageGuardApp())
	var alphaPair, betaPair *race.Pair
	for i := range pairs {
		p := &pairs[i]
		cb1 := reg.Get(p.A.Action).Callback
		cb2 := reg.Get(p.B.Action).Callback
		isMsgVsDestroy := (cb1 == "handleMessage" && cb2 == "onDestroy") ||
			(cb1 == "onDestroy" && cb2 == "handleMessage")
		if !isMsgVsDestroy {
			continue
		}
		switch p.A.Field {
		case "alpha":
			alphaPair = p
		case "beta":
			betaPair = p
		}
	}
	if alphaPair == nil || betaPair == nil {
		t.Fatalf("expected alpha and beta candidates; have %d pairs", len(pairs))
	}
	// The sender only posts what=1: the alpha branch is live (true
	// race), the beta branch is dead for this message action (refuted by
	// constant propagation).
	if !ref.Check(*alphaPair).TruePositive {
		t.Error("alpha (what==1 branch) must survive — the sender posts what=1")
	}
	if v := ref.Check(*betaPair); v.TruePositive {
		t.Errorf("beta (what==2 branch) must be refuted via message-code propagation: %+v", v)
	}
}
