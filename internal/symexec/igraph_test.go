package symexec

import (
	"testing"

	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// inlineProgram: root calls mid(arg); mid calls leaf(); leaf returns a
// value that flows back up — exercising param/return plumbing.
func inlineProgram() (*ir.Program, *ir.Method) {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	c := ir.NewClass("C", frontend.Object)

	leaf := ir.NewMethodBuilder("leaf")
	leaf.Int("v", 7)
	leaf.Ret("v")
	c.AddMethod(leaf.Build())

	mid := ir.NewMethodBuilder("mid", "x")
	mid.Call("r", "this", "C", "leaf")
	mid.Ret("r")
	c.AddMethod(mid.Build())

	root := ir.NewMethodBuilder("root")
	root.Int("arg", 3)
	root.Call("out", "this", "C", "mid", "arg")
	root.Ret("")
	c.AddMethod(root.Build())

	// rec: direct recursion — must fall back to a fall-through edge.
	rec := ir.NewMethodBuilder("rec")
	then, els := rec.IfStar()
	rec.SetBlock(then)
	rec.Call("", "this", "C", "rec")
	rec.Ret("")
	rec.SetBlock(els)
	rec.Ret("")
	c.AddMethod(rec.Build())

	p.AddClass(c)
	p.Finalize()
	return p, c.Methods["root"]
}

func resolver(p *ir.Program) func(ir.Pos) []*ir.Method {
	return func(pos ir.Pos) []*ir.Method {
		inv, ok := pos.Stmt().(*ir.Invoke)
		if !ok {
			return nil
		}
		if m := p.ResolveMethod(inv.Class, inv.Method); m != nil {
			return []*ir.Method{m}
		}
		return nil
	}
}

func TestIGraphInlinesTransitively(t *testing.T) {
	p, root := inlineProgram()
	g := buildIGraph(root, resolver(p), igraphLimits{})

	// Nodes must include leaf's statements (depth-2 inline) plus
	// synthetic param/return moves.
	var sawLeafConst, sawSynth int
	for _, n := range g.nodes {
		if n.isSynth {
			sawSynth++
		}
		if n.pos.Method != nil && n.pos.Method.Name == "leaf" {
			sawLeafConst++
		}
	}
	if sawLeafConst == 0 {
		t.Error("leaf body not inlined")
	}
	if sawSynth == 0 {
		t.Error("no synthetic param/return moves")
	}
	if len(g.exits) != 1 {
		t.Errorf("root exits = %d, want 1", len(g.exits))
	}
	if !g.nodes[g.entry].isEntry {
		t.Error("entry marker wrong")
	}
}

func TestIGraphRecursionFallsBack(t *testing.T) {
	p, _ := inlineProgram()
	rec := p.Class("C").Methods["rec"]
	g := buildIGraph(rec, resolver(p), igraphLimits{})
	// The recursive call cannot inline itself; only one frame of rec.
	frames := map[int]bool{}
	for _, n := range g.nodes {
		if n.pos.Method == rec {
			frames[n.frame.id] = true
		}
	}
	if len(frames) != 1 {
		t.Errorf("rec inlined into %d frames, want 1", len(frames))
	}
	// The call node must have a fall-through edge: the statement after
	// the recursive call (Return) is reachable backward from an exit.
	if len(g.exits) == 0 {
		t.Fatal("no exits")
	}
}

func TestIGraphDepthLimit(t *testing.T) {
	// A chain deeper than maxDepth falls back to fall-through edges
	// instead of exploding.
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	c := ir.NewClass("Deep", frontend.Object)
	const depth = 12
	for i := 0; i < depth; i++ {
		b := ir.NewMethodBuilder(lvl(i))
		if i+1 < depth {
			b.Call("", "this", "Deep", lvl(i+1))
		}
		b.Ret("")
		c.AddMethod(b.Build())
	}
	p.AddClass(c)
	p.Finalize()

	g := buildIGraph(c.Methods[lvl(0)], resolver(p), igraphLimits{maxDepth: 3})
	deepest := 0
	for _, n := range g.nodes {
		if n.frame != nil && n.frame.depth > deepest {
			deepest = n.frame.depth
		}
	}
	if deepest > 3 {
		t.Errorf("inlined to depth %d despite limit 3", deepest)
	}
}

func lvl(i int) string { return "l" + string(rune('a'+i)) }

func TestIGraphBranchLabels(t *testing.T) {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	c := ir.NewClass("B", frontend.Object)
	b := ir.NewMethodBuilder("m")
	b.Int("x", 1)
	then, els := b.If("x", ir.CmpEQ, ir.IntOperand(1))
	b.SetBlock(then)
	b.Int("t", 2)
	b.Ret("")
	b.SetBlock(els)
	b.Int("e", 3)
	b.Ret("")
	c.AddMethod(b.Build())
	p.AddClass(c)
	p.Finalize()

	g := buildIGraph(c.Methods["m"], resolver(p), igraphLimits{})
	// Find the then/else first statements and check their backward edge
	// labels point at the If with the right polarity.
	var sawTrue, sawFalse bool
	for id, n := range g.nodes {
		if n.pos.Method == nil {
			continue
		}
		for _, pr := range g.predsOf(id) {
			if _, isIf := stmtAt(g, pr.node); isIf {
				switch pr.br {
				case branchTrue:
					sawTrue = true
				case branchFalse:
					sawFalse = true
				}
			}
		}
	}
	if !sawTrue || !sawFalse {
		t.Errorf("branch labels missing: true=%t false=%t", sawTrue, sawFalse)
	}
}

func stmtAt(g *igraph, id int) (ir.Stmt, bool) {
	n := g.nodes[id]
	if n.pos.Method == nil {
		return nil, false
	}
	s := n.pos.Stmt()
	_, isIf := s.(*ir.If)
	return s, isIf
}

func TestIGraphByPosIndexing(t *testing.T) {
	p, root := inlineProgram()
	g := buildIGraph(root, resolver(p), igraphLimits{})
	// Every real statement node is indexed under its position.
	for id, n := range g.nodes {
		if n.pos.Method == nil {
			continue
		}
		found := false
		for _, have := range g.byPos[n.pos] {
			if have == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d missing from byPos[%v]", id, n.pos)
		}
	}
}
