package interp

import (
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// maxCallDepth bounds interpreted call nesting.
const maxCallDepth = 64

// invoke runs method `name` on receiver o with args, dispatching through
// the class hierarchy. Missing bodies are no-ops.
func (m *Machine) invoke(o *Object, name string, args []Value) Value {
	if o == nil {
		return NullV()
	}
	target := m.prog.ResolveMethod(o.Class, name)
	if target == nil {
		return NullV()
	}
	return m.call(target, RefV(o), args, 0)
}

// call interprets one method body.
func (m *Machine) call(target *ir.Method, this Value, args []Value, depth int) Value {
	if target == nil || len(target.Blocks) == 0 || depth > maxCallDepth {
		return NullV()
	}
	locals := map[string]Value{}
	if !target.Static {
		locals["this"] = this
	}
	for i, p := range target.Params {
		if i < len(args) {
			locals[p] = args[i]
		}
	}
	bi := 0
	for {
		blk := target.Blocks[bi]
		branchTo := -1
		for si := 0; si < len(blk.Stmts); si++ {
			m.steps++
			if m.steps > m.maxSteps {
				return NullV()
			}
			s := blk.Stmts[si]
			switch st := s.(type) {
			case *ir.New:
				locals[st.Dst] = RefV(m.alloc(st.Class))
			case *ir.Const:
				switch st.Kind {
				case ir.ConstInt:
					locals[st.Dst] = IntV(st.Int)
				case ir.ConstBool:
					locals[st.Dst] = BoolV(st.Bool)
				case ir.ConstString:
					locals[st.Dst] = StrV(st.Str)
				default:
					locals[st.Dst] = NullV()
				}
			case *ir.Move:
				locals[st.Dst] = locals[st.Src]
			case *ir.Load:
				base := locals[st.Obj]
				var v Value
				if base.Kind == VRef && base.Ref != nil {
					v = base.Ref.Get(st.Field)
					m.record(TraceAccess{
						ObjID: base.Ref.ID, Class: base.Ref.Class, Field: st.Field,
						Kind: Read, Pos: st.Pos(),
						RefTyped: v.Kind == VRef || v.Kind == VNull,
					})
				}
				locals[st.Dst] = v
			case *ir.Store:
				base := locals[st.Obj]
				if base.Kind == VRef && base.Ref != nil {
					v := locals[st.Src]
					base.Ref.Set(st.Field, v)
					m.record(TraceAccess{
						ObjID: base.Ref.ID, Class: base.Ref.Class, Field: st.Field,
						Kind: Write, Pos: st.Pos(),
						RefTyped: v.Kind == VRef || v.Kind == VNull,
					})
				}
			case *ir.StaticLoad:
				v := m.statics[st.Class+"."+st.Field]
				m.record(TraceAccess{ObjID: -1, Class: st.Class, Field: st.Field,
					Kind: Read, Pos: st.Pos(), RefTyped: v.Kind == VRef || v.Kind == VNull})
				locals[st.Dst] = v
			case *ir.StaticStore:
				v := locals[st.Src]
				m.statics[st.Class+"."+st.Field] = v
				m.record(TraceAccess{ObjID: -1, Class: st.Class, Field: st.Field,
					Kind: Write, Pos: st.Pos(), RefTyped: v.Kind == VRef || v.Kind == VNull})
			case *ir.BinOp:
				locals[st.Dst] = evalBinOp(st.Op, locals[st.A], locals[st.B])
			case *ir.Invoke:
				locals[st.Dst] = m.execInvoke(st, locals, depth)
				if st.Dst == "" {
					delete(locals, "")
				}
			case *ir.Return:
				if st.Src == "" {
					return NullV()
				}
				return locals[st.Src]
			case *ir.If:
				if m.evalCond(st, locals) {
					branchTo = blk.Succs[0]
				} else {
					branchTo = blk.Succs[1]
				}
			}
			if branchTo >= 0 {
				break
			}
		}
		switch {
		case branchTo >= 0:
			bi = branchTo
		case len(blk.Succs) > 0:
			bi = blk.Succs[0]
		default:
			return NullV()
		}
	}
}

// evalCond evaluates an If condition; variables never assigned (the
// harness's star idiom) resolve randomly.
func (m *Machine) evalCond(st *ir.If, locals map[string]Value) bool {
	a, okA := locals[st.A]
	if !okA {
		return m.rng.Intn(2) == 0
	}
	var b Value
	if st.B.IsVar {
		var okB bool
		b, okB = locals[st.B.Var]
		if !okB {
			return m.rng.Intn(2) == 0
		}
	} else {
		switch st.B.Kind {
		case ir.ConstInt:
			b = IntV(st.B.Int)
		case ir.ConstBool:
			b = BoolV(st.B.Bool)
		default:
			b = NullV()
		}
	}
	switch st.Op {
	case ir.CmpEQ:
		return a.Equal(b)
	case ir.CmpNE:
		return !a.Equal(b)
	case ir.CmpLT:
		return a.Int < b.Int
	case ir.CmpLE:
		return a.Int <= b.Int
	case ir.CmpGT:
		return a.Int > b.Int
	default:
		return a.Int >= b.Int
	}
}

func evalBinOp(op ir.BinOpKind, a, b Value) Value {
	switch op {
	case ir.OpAdd:
		return IntV(a.Int + b.Int)
	case ir.OpSub:
		return IntV(a.Int - b.Int)
	case ir.OpMul:
		return IntV(a.Int * b.Int)
	case ir.OpAnd:
		return IntV(a.Int & b.Int)
	case ir.OpOr:
		return IntV(a.Int | b.Int)
	default:
		return IntV(a.Int ^ b.Int)
	}
}

// execInvoke interprets a call: framework concurrency/GUI APIs get their
// runtime semantics; everything else dispatches into IR bodies.
func (m *Machine) execInvoke(inv *ir.Invoke, locals map[string]Value, depth int) Value {
	argv := make([]Value, len(inv.Args))
	for i, a := range inv.Args {
		argv[i] = locals[a]
	}
	recv := NullV()
	if inv.Recv != "" {
		recv = locals[inv.Recv]
	}

	if api, ok := frontend.Recognize(m.prog, inv); ok {
		return m.execAPI(inv, api, recv, argv, depth)
	}
	// Looper accessors.
	if inv.Class == frontend.LooperClass &&
		(inv.Method == frontend.GetMainLooper || inv.Method == frontend.MyLooper) {
		return RefV(m.looperObj)
	}

	switch inv.Kind {
	case ir.InvokeStatic:
		return m.call(m.prog.ResolveMethod(inv.Class, inv.Method), NullV(), argv, depth+1)
	case ir.InvokeSpecial:
		if recv.Kind != VRef || recv.Ref == nil {
			return NullV()
		}
		return m.call(m.prog.ResolveMethod(inv.Class, inv.Method), recv, argv, depth+1)
	default:
		if recv.Kind != VRef || recv.Ref == nil {
			return NullV()
		}
		return m.call(m.prog.ResolveMethod(recv.Ref.Class, inv.Method), recv, argv, depth+1)
	}
}

// looperOfHandler resolves the looper object a handler is bound to
// (nil → main looper).
func looperOfHandler(recv Value) *Object {
	if recv.Kind != VRef || recv.Ref == nil {
		return nil
	}
	l := recv.Ref.Get("looper")
	if l.Kind == VRef {
		return l.Ref
	}
	return nil
}

// execAPI implements the framework API runtime semantics.
func (m *Machine) execAPI(inv *ir.Invoke, api frontend.APICall, recv Value, argv []Value, depth int) Value {
	cur := m.curID()
	switch api.Kind {
	case frontend.APIFindViewByID:
		if len(argv) > 0 && argv[0].Kind == VInt {
			return RefV(m.viewObj(int(argv[0].Int)))
		}
		return RefV(m.viewObj(0))

	case frontend.APISetListener:
		if len(argv) > 0 && argv[0].Kind == VRef && argv[0].Ref != nil {
			m.gui = append(m.gui, &guiHandler{
				label:     api.Callback + "[" + argv[0].Ref.Class + "]",
				listener:  argv[0].Ref,
				callback:  api.Callback,
				enabledBy: cur,
			})
		}
		return NullV()

	case frontend.APIExecuteAsyncTask:
		if recv.Kind != VRef || recv.Ref == nil {
			return NullV()
		}
		task := recv.Ref
		// onPreExecute runs synchronously on the calling thread.
		if pre := m.prog.ResolveMethod(task.Class, frontend.OnPreExecute); pre != nil && !pre.Class.Framework {
			m.call(pre, recv, nil, depth+1)
		}
		m.bgTasks = append(m.bgTasks, &pendingEvent{
			kind:     EvBackground,
			label:    "doInBackground[" + task.Class + "]",
			postedBy: cur,
			run: func(mm *Machine) {
				result := mm.call(mm.prog.ResolveMethod(task.Class, frontend.DoInBackground), recv, nil, 0)
				bgID := mm.curID()
				if post := mm.prog.ResolveMethod(task.Class, frontend.OnPostExecute); post != nil && !post.Class.Framework {
					mm.enqueue(nil, &pendingEvent{
						kind:     EvMain,
						label:    "onPostExecute[" + task.Class + "]",
						postedBy: bgID,
						run: func(m3 *Machine) {
							m3.call(post, recv, []Value{result}, 0)
						},
					})
				}
			},
		})
		return NullV()

	case frontend.APIThreadStart:
		if recv.Kind != VRef || recv.Ref == nil {
			return NullV()
		}
		t := recv.Ref
		m.bgTasks = append(m.bgTasks, &pendingEvent{
			kind: EvBackground, label: "run[" + t.Class + "]", postedBy: cur,
			run: func(mm *Machine) {
				mm.call(mm.prog.ResolveMethod(t.Class, frontend.Run), recv, nil, 0)
			},
		})
		return NullV()

	case frontend.APIExecutorExecute, frontend.APITimerSchedule:
		if api.Arg < len(argv) && argv[api.Arg].Kind == VRef && argv[api.Arg].Ref != nil {
			r := argv[api.Arg]
			m.bgTasks = append(m.bgTasks, &pendingEvent{
				kind: EvBackground, label: "run[" + r.Ref.Class + "]", postedBy: cur,
				run: func(mm *Machine) {
					mm.call(mm.prog.ResolveMethod(r.Ref.Class, frontend.Run), r, nil, 0)
				},
			})
		}
		return NullV()

	case frontend.APIPostRunnable:
		if api.Arg < len(argv) && argv[api.Arg].Kind == VRef && argv[api.Arg].Ref != nil {
			r := argv[api.Arg]
			var target *Object
			if api.Target == frontend.TargetHandlerLooper {
				target = looperOfHandler(recv)
			}
			m.enqueue(target, &pendingEvent{
				kind: EvMain, label: "run[" + r.Ref.Class + "]",
				postedBy: cur, delayed: api.Delayed,
				run: func(mm *Machine) {
					mm.call(mm.prog.ResolveMethod(r.Ref.Class, frontend.Run), r, nil, 0)
				},
			})
		}
		return NullV()

	case frontend.APISendMessage:
		if recv.Kind != VRef || recv.Ref == nil {
			return NullV()
		}
		h := recv.Ref
		var msg Value
		if inv.Method == frontend.SendEmptyMessage {
			mo := m.alloc(frontend.MessageClass)
			if len(argv) > 0 {
				mo.Set("what", argv[0])
			}
			msg = RefV(mo)
		} else if len(argv) > 0 {
			msg = argv[0]
		}
		m.enqueue(looperOfHandler(recv), &pendingEvent{
			kind: EvMain, label: "handleMessage[" + h.Class + "]",
			postedBy: cur, delayed: api.Delayed,
			run: func(mm *Machine) {
				mm.call(mm.prog.ResolveMethod(h.Class, frontend.HandleMessage), recv, []Value{msg}, 0)
			},
		})
		return NullV()

	case frontend.APIRegisterReceiver:
		if api.Arg < len(argv) && argv[api.Arg].Kind == VRef && argv[api.Arg].Ref != nil {
			r := argv[api.Arg].Ref
			m.receivers = append(m.receivers, &guiHandler{
				label: "onReceive[" + r.Class + "]", listener: r,
				callback: frontend.OnReceive, enabledBy: cur,
			})
		}
		return NullV()

	case frontend.APIUnregisterReceiver:
		if api.Arg < len(argv) && argv[api.Arg].Kind == VRef {
			target := argv[api.Arg].Ref
			for i, h := range m.receivers {
				if h.listener == target {
					m.receivers = append(m.receivers[:i], m.receivers[i+1:]...)
					break
				}
			}
		}
		return NullV()

	case frontend.APIStartService:
		for _, comp := range m.App.Manifest.Services {
			comp := comp
			svc := m.alloc(comp.Class)
			m.enqueue(nil, &pendingEvent{
				kind: EvSystem, label: "onStartCommand[" + comp.Class + "]", postedBy: cur,
				run: func(mm *Machine) {
					mm.invoke(svc, frontend.OnStartCommand, []Value{NullV()})
				},
			})
		}
		return NullV()

	case frontend.APIBindService:
		if api.Arg < len(argv) && argv[api.Arg].Kind == VRef && argv[api.Arg].Ref != nil {
			conn := argv[api.Arg]
			m.enqueue(nil, &pendingEvent{
				kind: EvSystem, label: "onServiceConnected[" + conn.Ref.Class + "]", postedBy: cur,
				run: func(mm *Machine) {
					mm.call(mm.prog.ResolveMethod(conn.Ref.Class, frontend.OnServiceConnected), conn, nil, 0)
				},
			})
		}
		return NullV()

	case frontend.APIStartActivity:
		return NullV() // single-activity simulation: transition ignored
	}
	return NullV()
}

// RegisterManifestReceivers enables manifest-declared receivers before
// the run (the framework instantiates them on demand).
func (m *Machine) RegisterManifestReceivers() {
	for _, comp := range m.App.Manifest.Receivers {
		if m.prog.ResolveMethod(comp.Class, frontend.OnReceive) == nil {
			continue
		}
		obj := m.alloc(comp.Class)
		m.receivers = append(m.receivers, &guiHandler{
			label: "onReceive[" + comp.Class + "]", listener: obj,
			callback: frontend.OnReceive, enabledBy: -1,
		})
	}
}
