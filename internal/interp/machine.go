package interp

import (
	"fmt"
	"math/rand"

	"sierra/internal/apk"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// AccessKind is read or write, mirroring the static analysis.
type AccessKind int

const (
	// Read is a field load.
	Read AccessKind = iota
	// Write is a field store.
	Write
)

// TraceAccess is one observed memory access.
type TraceAccess struct {
	ObjID int // -1 for statics
	Class string
	Field string
	Kind  AccessKind
	Pos   ir.Pos
	// RefTyped marks accesses whose observed value is a reference (or
	// null) — the pointer-check distinction EventRacer's race-coverage
	// filter misses.
	RefTyped bool
}

// EventKind classifies trace events.
type EventKind int

const (
	// EvLifecycle is an Activity lifecycle callback.
	EvLifecycle EventKind = iota
	// EvGUI is a user-input callback.
	EvGUI
	// EvMain is a runnable/message executed on the main looper.
	EvMain
	// EvBackground is a background thread body.
	EvBackground
	// EvSystem is a broadcast/service callback.
	EvSystem
)

// TraceEvent is one executed event with its accesses.
type TraceEvent struct {
	ID       int
	Kind     EventKind
	Label    string // e.g. "onCreate", "run[TimerRunnable]"
	PostedBy int    // event id that posted/enabled this one; -1 otherwise
	Delayed  bool
	Accesses []TraceAccess
}

// Trace is one execution's event sequence, in execution order.
type Trace struct {
	Events []*TraceEvent
}

// pendingEvent is a not-yet-executed event.
type pendingEvent struct {
	kind     EventKind
	label    string
	postedBy int
	delayed  bool
	run      func(m *Machine)
}

// guiHandler is a registered listener awaiting user input.
type guiHandler struct {
	label     string
	listener  *Object
	callback  string
	enabledBy int
}

// Machine simulates the Android runtime for one app.
type Machine struct {
	App  *apk.App
	prog *ir.Program
	rng  *rand.Rand

	nextObjID int
	statics   map[string]Value
	viewObjs  map[int]*Object
	looperObj *Object

	activity *Object
	// state is the activity lifecycle state: created, started, resumed,
	// paused, stopped, destroyed.
	state string

	// queues holds one FIFO per looper object; loopers lists them in
	// creation order (index 0 is the main looper).
	queues    map[*Object][]*pendingEvent
	loopers   []*Object
	bgTasks   []*pendingEvent
	gui       []*guiHandler
	receivers []*guiHandler // registered broadcast receivers

	trace   Trace
	current *TraceEvent

	// Steps guards against runaway interpretation.
	steps    int
	maxSteps int

	// lastLifecycle remembers the event id of the last lifecycle event
	// (each lifecycle step is enabled by the previous one).
	lastLifecycle int
}

// NewMachine prepares a machine for the app's launcher activity.
func NewMachine(app *apk.App, seed int64) *Machine {
	m := &Machine{
		App:           app,
		prog:          app.Program,
		rng:           rand.New(rand.NewSource(seed)),
		statics:       map[string]Value{},
		viewObjs:      map[int]*Object{},
		maxSteps:      200000,
		state:         "init",
		lastLifecycle: -1,
	}
	m.looperObj = m.alloc(frontend.LooperClass)
	m.queues = map[*Object][]*pendingEvent{}
	m.loopers = []*Object{m.looperObj}
	return m
}

// enqueue appends an event to a looper's FIFO, registering the looper on
// first use (a HandlerThread's looper materializes when first posted to).
func (m *Machine) enqueue(looper *Object, ev *pendingEvent) {
	if looper == nil {
		looper = m.looperObj
	}
	if _, known := m.queues[looper]; !known {
		if looper != m.looperObj {
			m.loopers = append(m.loopers, looper)
		}
	}
	m.queues[looper] = append(m.queues[looper], ev)
}

// alloc creates a fresh heap object.
func (m *Machine) alloc(cls string) *Object {
	m.nextObjID++
	return &Object{ID: m.nextObjID, Class: cls, Fields: map[string]Value{}}
}

// viewObj lazily materializes the inflated view for a resource id.
func (m *Machine) viewObj(id int) *Object {
	if o, ok := m.viewObjs[id]; ok {
		return o
	}
	cls := frontend.ViewClass
	for _, l := range m.App.Layouts {
		for _, v := range l.AllViews() {
			if v.ID == id {
				cls = v.Type
			}
		}
	}
	o := m.alloc(cls)
	o.Set("$viewID", IntV(int64(id)))
	m.viewObjs[id] = o
	return o
}

// record appends an access to the current event.
func (m *Machine) record(a TraceAccess) {
	if m.current != nil {
		m.current.Accesses = append(m.current.Accesses, a)
	}
}

// beginEvent starts a new trace event and returns it.
func (m *Machine) beginEvent(kind EventKind, label string, postedBy int, delayed bool) *TraceEvent {
	ev := &TraceEvent{
		ID:       len(m.trace.Events),
		Kind:     kind,
		Label:    label,
		PostedBy: postedBy,
		Delayed:  delayed,
	}
	m.trace.Events = append(m.trace.Events, ev)
	m.current = ev
	return ev
}

// Trace returns the execution trace so far.
func (m *Machine) Trace() *Trace { return &m.trace }

// Run executes up to maxEvents events under the machine's random
// scheduler, starting from activity launch, and returns the trace.
func (m *Machine) Run(maxEvents int) *Trace {
	launcher := m.App.Launcher()
	if launcher == nil {
		return &m.trace
	}
	m.activity = m.alloc(launcher.Class)

	// onCreate always runs first.
	m.fireLifecycle(frontend.OnCreate, "created")

	for len(m.trace.Events) < maxEvents {
		if !m.step() {
			break
		}
	}
	return &m.trace
}

// choice is one scheduler-eligible step.
type choice struct {
	describe string
	fire     func()
}

// step picks and executes one event; false when nothing is runnable.
func (m *Machine) step() bool {
	var cs []choice

	// Lifecycle transitions per the activity state machine.
	for _, next := range m.lifecycleNext() {
		cb, to := next[0], next[1]
		cs = append(cs, choice{cb, func() { m.fireLifecycle(cb, to) }})
	}
	// GUI events require a resumed activity.
	if m.state == "resumed" {
		for _, h := range m.gui {
			h := h
			cs = append(cs, choice{"gui:" + h.label, func() { m.fireGUI(h) }})
		}
	}
	// Looper queues: FIFO for non-delayed; delayed events may fire
	// anytime. Each looper (main + HandlerThreads) progresses
	// independently.
	for _, lp := range m.loopers {
		lp := lp
		if i := m.firstUndelayed(lp); i >= 0 {
			ev := m.queues[lp][i]
			cs = append(cs, choice{"looper:" + ev.label, func() { m.fireQueued(lp, ev) }})
		}
		for _, ev := range m.queues[lp] {
			if ev.delayed {
				ev := ev
				cs = append(cs, choice{"delayed:" + ev.label, func() { m.fireQueued(lp, ev) }})
			}
		}
	}
	// Background tasks run whenever the scheduler feels like it.
	for _, ev := range m.bgTasks {
		ev := ev
		cs = append(cs, choice{"bg:" + ev.label, func() { m.fireBackground(ev) }})
	}
	// Broadcast delivery to registered (or manifest) receivers while the
	// app is alive.
	if m.state != "destroyed" {
		for _, h := range m.receivers {
			h := h
			cs = append(cs, choice{"recv:" + h.label, func() { m.fireReceiver(h) }})
		}
	}

	if len(cs) == 0 {
		return false
	}
	cs[m.rng.Intn(len(cs))].fire()
	return true
}

// lifecycleNext returns (callback, nextState) pairs allowed now.
func (m *Machine) lifecycleNext() [][2]string {
	switch m.state {
	case "created":
		return [][2]string{{frontend.OnStart, "started"}}
	case "started":
		return [][2]string{{frontend.OnResume, "resumed"}}
	case "resumed":
		return [][2]string{{frontend.OnPause, "paused"}}
	case "paused":
		return [][2]string{{frontend.OnResume, "resumed"}, {frontend.OnStop, "stopped"}}
	case "stopped":
		return [][2]string{{frontend.OnRestart, "restarted"}, {frontend.OnDestroy, "destroyed"}}
	case "restarted":
		return [][2]string{{frontend.OnStart, "started"}}
	default:
		return nil
	}
}

func (m *Machine) fireLifecycle(cb, newState string) {
	ev := m.beginEvent(EvLifecycle, cb, m.lastLifecycle, false)
	m.lastLifecycle = ev.ID
	m.state = newState
	m.invokeOn(m.activity, cb)
	m.current = nil
}

func (m *Machine) fireGUI(h *guiHandler) {
	m.beginEvent(EvGUI, h.label, h.enabledBy, false)
	args := make([]Value, m.paramCount(h.listener.Class, h.callback))
	for i := range args {
		args[i] = RefV(m.viewObj(0))
	}
	m.invoke(h.listener, h.callback, args)
	m.current = nil
}

func (m *Machine) fireQueued(looper *Object, ev *pendingEvent) {
	q := m.queues[looper]
	for i, have := range q {
		if have == ev {
			m.queues[looper] = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	m.beginEvent(ev.kind, ev.label, ev.postedBy, ev.delayed)
	ev.run(m)
	m.current = nil
}

func (m *Machine) fireBackground(ev *pendingEvent) {
	for i, have := range m.bgTasks {
		if have == ev {
			m.bgTasks = append(m.bgTasks[:i], m.bgTasks[i+1:]...)
			break
		}
	}
	m.beginEvent(EvBackground, ev.label, ev.postedBy, false)
	ev.run(m)
	m.current = nil
}

func (m *Machine) fireReceiver(h *guiHandler) {
	m.beginEvent(EvSystem, h.label, h.enabledBy, false)
	intent := m.alloc(frontend.IntentClass)
	intent.Set("extras", RefV(m.alloc(frontend.BundleClass)))
	args := []Value{RefV(m.activity), RefV(intent)}
	n := m.paramCount(h.listener.Class, h.callback)
	if n < len(args) {
		args = args[:n]
	}
	m.invoke(h.listener, h.callback, args)
	m.current = nil
}

func (m *Machine) firstUndelayed(looper *Object) int {
	for i, ev := range m.queues[looper] {
		if !ev.delayed {
			return i
		}
	}
	return -1
}

func (m *Machine) paramCount(cls, method string) int {
	if mm := m.prog.ResolveMethod(cls, method); mm != nil {
		return len(mm.Params)
	}
	return 0
}

// curID returns the current event id (-1 outside events).
func (m *Machine) curID() int {
	if m.current == nil {
		return -1
	}
	return m.current.ID
}

// invokeOn dispatches method name on the object if a body exists.
func (m *Machine) invokeOn(o *Object, name string) {
	m.invoke(o, name, nil)
}

func (m *Machine) String() string {
	return fmt.Sprintf("machine[%s, %d events, state %s]", m.App.Name, len(m.trace.Events), m.state)
}
