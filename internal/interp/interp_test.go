package interp

import (
	"testing"

	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

func TestLifecycleAlwaysStartsWithOnCreate(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := NewMachine(corpus.NewsApp(), seed)
		tr := m.Run(30)
		if len(tr.Events) == 0 {
			t.Fatal("no events")
		}
		if tr.Events[0].Label != frontend.OnCreate {
			t.Fatalf("first event = %s, want onCreate", tr.Events[0].Label)
		}
	}
}

func TestLifecycleStateMachineRespected(t *testing.T) {
	// Legal predecessors for each lifecycle callback.
	legalPrev := map[string][]string{
		frontend.OnStart:   {frontend.OnCreate, frontend.OnRestart},
		frontend.OnResume:  {frontend.OnStart, frontend.OnPause},
		frontend.OnPause:   {frontend.OnResume},
		frontend.OnStop:    {frontend.OnPause},
		frontend.OnRestart: {frontend.OnStop},
		frontend.OnDestroy: {frontend.OnStop},
	}
	for seed := int64(0); seed < 20; seed++ {
		m := NewMachine(corpus.SudokuTimerApp(), seed)
		tr := m.Run(50)
		last := ""
		for _, ev := range tr.Events {
			if ev.Kind != EvLifecycle {
				continue
			}
			if last != "" {
				ok := false
				for _, p := range legalPrev[ev.Label] {
					if p == last {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("seed %d: illegal transition %s -> %s", seed, last, ev.Label)
				}
			}
			last = ev.Label
		}
	}
}

func TestGUIEventsOnlyWhenResumed(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m := NewMachine(corpus.NewsApp(), seed)
		tr := m.Run(60)
		state := "init"
		for _, ev := range tr.Events {
			if ev.Kind == EvLifecycle {
				switch ev.Label {
				case frontend.OnResume:
					state = "resumed"
				case frontend.OnPause:
					state = "paused"
				case frontend.OnStop:
					state = "stopped"
				case frontend.OnDestroy:
					state = "destroyed"
				default:
					state = "other"
				}
			}
			if ev.Kind == EvGUI && state != "resumed" {
				t.Fatalf("seed %d: GUI event %s in state %s", seed, ev.Label, state)
			}
		}
	}
}

func TestAsyncTaskSpawnsBackgroundThenPost(t *testing.T) {
	// Find a seed where onClick fires; verify doInBackground precedes
	// onPostExecute and the PostedBy chain holds.
	found := false
	for seed := int64(0); seed < 60 && !found; seed++ {
		m := NewMachine(corpus.NewsApp(), seed)
		tr := m.Run(80)
		var clickID, bgID = -1, -1
		for _, ev := range tr.Events {
			switch {
			case ev.Kind == EvGUI && ev.Label == "onClick[NewsActivity]":
				clickID = ev.ID
			case ev.Label == "doInBackground[LoaderTask]":
				if ev.PostedBy != clickID {
					t.Fatalf("seed %d: doInBackground posted by %d, want click %d", seed, ev.PostedBy, clickID)
				}
				bgID = ev.ID
			case ev.Label == "onPostExecute[LoaderTask]":
				if ev.PostedBy != bgID {
					t.Fatalf("seed %d: onPostExecute posted by %d, want bg %d", seed, ev.PostedBy, bgID)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no schedule exercised the full AsyncTask chain in 60 seeds")
	}
}

func TestAccessesRecorded(t *testing.T) {
	m := NewMachine(corpus.NewsApp(), 7)
	tr := m.Run(60)
	var reads, writes int
	for _, ev := range tr.Events {
		for _, a := range ev.Accesses {
			if a.Kind == Read {
				reads++
			} else {
				writes++
			}
			if a.Field == "" {
				t.Error("access with empty field")
			}
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writes=%d, want both > 0", reads, writes)
	}
}

func TestSudokuGuardValuesObserved(t *testing.T) {
	// The timer runnable runs only while mIsRunning; with enough seeds
	// both the guarded write and the stop path execute.
	var sawAccum, sawStop bool
	for seed := int64(0); seed < 80; seed++ {
		m := NewMachine(corpus.SudokuTimerApp(), seed)
		tr := m.Run(80)
		for _, ev := range tr.Events {
			for _, a := range ev.Accesses {
				if a.Field == "mAccumTime" && a.Kind == Write {
					if ev.Label == "run[TimerRunnable]" {
						sawAccum = true
					}
					if ev.Label == frontend.OnPause {
						sawStop = true
					}
				}
			}
		}
	}
	if !sawAccum || !sawStop {
		t.Fatalf("coverage: runnable write %t, stop write %t", sawAccum, sawStop)
	}
}

func TestManifestReceiverDelivery(t *testing.T) {
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		m := NewMachine(corpus.DatabaseApp(), seed)
		tr := m.Run(40)
		for _, ev := range tr.Events {
			if ev.Kind == EvSystem && ev.Label == "onReceive[DataReceiver]" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("registered receiver never delivered in 40 seeds")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() []string {
		m := NewMachine(corpus.NewsApp(), 123)
		tr := m.Run(50)
		var labels []string
		for _, ev := range tr.Events {
			labels = append(labels, ev.Label)
		}
		return labels
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestValueSemantics(t *testing.T) {
	if !NullV().IsNull() || !RefV(nil).IsNull() {
		t.Error("null detection broken")
	}
	if !IntV(3).Equal(IntV(3)) || IntV(3).Equal(IntV(4)) {
		t.Error("int equality broken")
	}
	o := &Object{ID: 1, Class: "C"}
	if !RefV(o).Equal(RefV(o)) || RefV(o).Equal(RefV(&Object{ID: 2})) {
		t.Error("ref identity broken")
	}
	if !NullV().Equal(RefV(nil)) {
		t.Error("null forms must compare equal")
	}
	o.Set("f", IntV(9))
	if o.Get("f").Int != 9 || !o.Get("missing").IsNull() {
		t.Error("field access broken")
	}
}

// handlerThreadRuntimeApp posts two messages to a HandlerThread-bound
// handler; the runtime must keep per-looper FIFO order.
func handlerThreadRuntimeApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	wh := ir.NewClass("SeqHandler", frontend.HandlerClass)
	hb := ir.NewMethodBuilder(frontend.HandleMessage, "m")
	hb.Load("w", "m", "what")
	hb.SStore("Trace", "last", "w")
	hb.Ret("")
	wh.AddMethod(hb.Build())
	p.AddClass(wh)
	p.AddClass(ir.NewClass("Trace", frontend.Object))

	act := ir.NewClass("SeqActivity", frontend.ActivityClass)
	b := ir.NewMethodBuilder(frontend.OnCreate)
	b.NewObj("ht", frontend.HandlerThreadClass)
	b.CallSpecial("", "ht", frontend.HandlerThreadClass, "<initHT>")
	b.Call("", "ht", frontend.HandlerThreadClass, frontend.Start)
	b.Call("lp", "ht", frontend.HandlerThreadClass, frontend.GetLooper)
	b.NewObj("h", "SeqHandler")
	b.CallSpecial("", "h", frontend.HandlerClass, "<init>", "lp")
	b.Int("c1", 1)
	b.Call("", "h", "SeqHandler", frontend.SendEmptyMessage, "c1")
	b.Int("c2", 2)
	b.Call("", "h", "SeqHandler", frontend.SendEmptyMessage, "c2")
	b.Ret("")
	act.AddMethod(b.Build())
	p.AddClass(act)
	p.Finalize()

	return &apk.App{
		Name: "seqapp", Program: p,
		Manifest: apk.Manifest{Activities: []apk.Component{{Class: "SeqActivity"}}},
		Layouts:  map[string]*apk.Layout{},
	}
}

func TestHandlerThreadQueueFIFO(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m := NewMachine(handlerThreadRuntimeApp(), seed)
		tr := m.Run(40)
		// Both messages execute on the HandlerThread's looper; the
		// non-delayed FIFO must deliver what=1 before what=2 — observed
		// through the static-field write order.
		var order []int64
		for _, ev := range tr.Events {
			if ev.Label != "handleMessage[SeqHandler]" {
				continue
			}
			for _, a := range ev.Accesses {
				if a.Field == "last" && a.Kind == Write {
					order = append(order, int64(len(order)+1))
				}
			}
		}
		if len(order) != 2 {
			t.Fatalf("seed %d: handleMessage executed %d times, want 2", seed, len(order))
		}
	}
	// Stronger: the first handleMessage event always precedes the second
	// and they never interleave out of post order (checked via statics).
	m := NewMachine(handlerThreadRuntimeApp(), 99)
	tr := m.Run(40)
	seen := 0
	for _, ev := range tr.Events {
		if ev.Label == "handleMessage[SeqHandler]" {
			seen++
			if seen == 1 && len(ev.Accesses) == 0 {
				t.Fatal("first message event recorded no accesses")
			}
		}
	}
}
