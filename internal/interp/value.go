// Package interp executes IR apps on a simulated Android runtime: a main
// looper with a FIFO message queue, background threads, a lifecycle
// state machine, GUI input events, and broadcast delivery. A pluggable
// randomized scheduler picks the next event, so different seeds explore
// different event interleavings.
//
// It substitutes for the instrumented device/emulator execution that the
// paper's dynamic baseline (EventRacer Android) observes: the dynamic
// detector in package eventracer consumes the traces produced here, with
// exactly the coverage limitation the paper contrasts against — it only
// sees the schedules that were actually run.
package interp

import "fmt"

// VKind discriminates runtime values.
type VKind int

const (
	// VNull is the zero value for references (and uninitialized slots).
	VNull VKind = iota
	// VInt is a 64-bit integer.
	VInt
	// VBool is a boolean.
	VBool
	// VStr is a string.
	VStr
	// VRef references a heap object.
	VRef
)

// Value is a runtime value.
type Value struct {
	Kind VKind
	Int  int64
	Bool bool
	Str  string
	Ref  *Object
}

// NullV is the null value.
func NullV() Value { return Value{} }

// IntV wraps an integer.
func IntV(i int64) Value { return Value{Kind: VInt, Int: i} }

// BoolV wraps a boolean.
func BoolV(b bool) Value { return Value{Kind: VBool, Bool: b} }

// StrV wraps a string.
func StrV(s string) Value { return Value{Kind: VStr, Str: s} }

// RefV wraps an object reference.
func RefV(o *Object) Value {
	if o == nil {
		return NullV()
	}
	return Value{Kind: VRef, Ref: o}
}

// IsNull reports null-ness.
func (v Value) IsNull() bool { return v.Kind == VNull || (v.Kind == VRef && v.Ref == nil) }

func (v Value) String() string {
	switch v.Kind {
	case VInt:
		return fmt.Sprintf("%d", v.Int)
	case VBool:
		return fmt.Sprintf("%t", v.Bool)
	case VStr:
		return fmt.Sprintf("%q", v.Str)
	case VRef:
		if v.Ref == nil {
			return "null"
		}
		return fmt.Sprintf("%s@%d", v.Ref.Class, v.Ref.ID)
	default:
		return "null"
	}
}

// Equal implements == on runtime values (reference identity for refs).
func (v Value) Equal(o Value) bool {
	if v.IsNull() && o.IsNull() {
		return true
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case VInt:
		return v.Int == o.Int
	case VBool:
		return v.Bool == o.Bool
	case VStr:
		return v.Str == o.Str
	case VRef:
		return v.Ref == o.Ref
	}
	return false
}

// Object is a heap object.
type Object struct {
	ID     int
	Class  string
	Fields map[string]Value
}

// Get reads a field (null when unset).
func (o *Object) Get(f string) Value { return o.Fields[f] }

// Set writes a field.
func (o *Object) Set(f string, v Value) {
	if o.Fields == nil {
		o.Fields = map[string]Value{}
	}
	o.Fields[f] = v
}
