package pointer

import "sierra/internal/ir"

// SolverReads reports whether the fixpoint stages of the pipeline —
// the points-to transfer functions (see analyzer.transfer), action
// discovery (which resolves message `what` codes and view ids through
// ir.ConstIntDefs over Const statements), SHBG construction, and race
// pairing — read any *operand* of statement s.
//
// The two statement kinds they never read are If and BinOp: branch
// conditions and arithmetic exist only for the backward symbolic
// walker (internal/symexec) and for report ranking, both of which run
// against the current method bodies every time. A method edit that
// only rewrites If/BinOp operands therefore cannot perturb the pointer
// result, the action registry, the happens-before graph, or the racy
// pair set — which is exactly the reuse window internal/incremental's
// skeleton fingerprints carve out. Everything else (New, Const, Move,
// Load, Store, StaticLoad, StaticStore, Invoke, Return) feeds at least
// one fixpoint stage and must hash fully.
//
// Control flow is not in scope here: If determines block successor
// edges, but those live on Block.Succs, which the skeleton hashes via
// block lines independently of the If statement's operands.
func SolverReads(s ir.Stmt) bool {
	switch s.(type) {
	case *ir.If, *ir.BinOp:
		return false
	default:
		return true
	}
}
