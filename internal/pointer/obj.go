// Package pointer implements a flow-insensitive, context-sensitive
// inclusion-based (Andersen-style) points-to analysis over the IR, with
// on-the-fly call-graph construction.
//
// It substitutes for WALA's pointer analysis in the paper's toolchain and
// adds the paper's contribution on top: a pluggable context policy
// including the novel action-sensitive abstraction (§3.3) and the
// InflatedViewContext for findViewById-returned views.
package pointer

import (
	"fmt"
	"sort"
	"strings"

	"sierra/internal/ir"
)

// Obj is an abstract heap object.
type Obj struct {
	// Site is the allocation-site id, or a negative tag for special
	// objects: SiteView for inflated views, SiteMainLooper for the main
	// thread's looper.
	Site int
	// Ctx is the heap context chosen by the policy at allocation.
	Ctx string
	// ViewID is the layout resource id for inflated views (Site ==
	// SiteView). Two views with the same id are the same object no
	// matter where findViewById was called — the InflatedViewContext.
	ViewID int
	// Class is the object's dynamic class.
	Class string
}

// Special Site tags.
const (
	// SiteView marks inflated view objects keyed by ViewID.
	SiteView = -1
	// SiteMainLooper is the singleton main-thread looper.
	SiteMainLooper = -2
)

// ViewObj constructs the abstract object for an inflated view.
func ViewObj(id int, class string) Obj {
	return Obj{Site: SiteView, ViewID: id, Class: class}
}

// MainLooperObj is the singleton abstract object for the main looper.
func MainLooperObj(looperClass string) Obj {
	return Obj{Site: SiteMainLooper, Class: looperClass}
}

// IsView reports whether the object is an inflated view.
func (o Obj) IsView() bool { return o.Site == SiteView }

func (o Obj) String() string {
	switch o.Site {
	case SiteView:
		return fmt.Sprintf("view#%d(%s)", o.ViewID, o.Class)
	case SiteMainLooper:
		return "main-looper"
	default:
		if o.Ctx == "" {
			return fmt.Sprintf("o%d(%s)", o.Site, o.Class)
		}
		return fmt.Sprintf("o%d[%s](%s)", o.Site, o.Ctx, o.Class)
	}
}

// id returns the object-identity element used in k-obj context strings.
func (o Obj) id() string {
	if o.Site == SiteView {
		return fmt.Sprintf("v%d", o.ViewID)
	}
	return fmt.Sprintf("%d", o.Site)
}

// Context is a method-analysis context: the action the code runs in (for
// action-sensitive policies; NoAction otherwise), the k-obj receiver
// chain, and the k-cfa call string.
type Context struct {
	Action int
	Objs   string
	Calls  string
}

// NoAction is the Action value of contexts outside any action (or under
// non-action-sensitive policies).
const NoAction = -1

// EmptyContext is the root context.
var EmptyContext = Context{Action: NoAction}

func (c Context) String() string {
	parts := []string{}
	if c.Action != NoAction {
		parts = append(parts, fmt.Sprintf("A%d", c.Action))
	}
	if c.Objs != "" {
		parts = append(parts, "o:"+c.Objs)
	}
	if c.Calls != "" {
		parts = append(parts, "c:"+c.Calls)
	}
	if len(parts) == 0 {
		return "ε"
	}
	return strings.Join(parts, "|")
}

// push prepends elem to a comma-joined bounded string, keeping at most k
// elements — the k-limiting all context policies share.
func push(chain, elem string, k int) string {
	if k <= 0 {
		return ""
	}
	if chain == "" {
		return elem
	}
	parts := strings.SplitN(chain, ",", k)
	if len(parts) >= k {
		parts = parts[:k-1]
	}
	if len(parts) == 0 {
		return elem
	}
	return elem + "," + strings.Join(parts, ",")
}

// ObjSet is a set of abstract objects, represented as a word-packed
// bitset of interner-dense ids. The zero value is a read-only empty
// set (Len/Slice/Contains/Intersects work, mutation needs a set from
// Interner.NewSet or Result.NewObjSet). Copies of an ObjSet alias the
// same backing storage, like the map representation it replaced.
type ObjSet struct {
	d *objsetData
}

// Add inserts o, reporting whether it was new.
func (s ObjSet) Add(o Obj) bool {
	return s.d.bits.Add(int(s.d.in.Intern(o)))
}

// AddAll inserts all of other, reporting whether anything was new. When
// both sets share an id space (always, within one analysis) this is a
// word-parallel union with no hashing.
func (s ObjSet) AddAll(other ObjSet) bool {
	if other.d == nil {
		return false
	}
	if s.d.in == other.d.in {
		return s.d.bits.Or(other.d.bits) > 0
	}
	// Cross-analysis union (never on the hot path): re-intern.
	changed := false
	for _, o := range other.Slice() {
		if s.Add(o) {
			changed = true
		}
	}
	return changed
}

// Contains reports membership.
func (s ObjSet) Contains(o Obj) bool {
	if s.d == nil {
		return false
	}
	id, ok := s.d.in.lookup(o)
	return ok && s.d.bits.Has(int(id))
}

// Intersects reports whether the sets share an element — one AND per
// word when the sets share an id space.
func (s ObjSet) Intersects(other ObjSet) bool {
	if s.d == nil || other.d == nil {
		return false
	}
	if s.d.in == other.d.in {
		return s.d.bits.Intersects(other.d.bits)
	}
	for _, o := range s.Slice() {
		if other.Contains(o) {
			return true
		}
	}
	return false
}

// Len returns the set's cardinality.
func (s ObjSet) Len() int {
	if s.d == nil {
		return 0
	}
	return s.d.bits.Count()
}

// Words reports the backing word count (the pointer.objset_words
// counter's unit; 64 ids per word).
func (s ObjSet) Words() int {
	if s.d == nil {
		return 0
	}
	return s.d.bits.Words()
}

// Slice returns the objects in deterministic order (the same
// site/view/ctx/class order the map representation produced, so
// downstream event firing and action numbering are unchanged).
func (s ObjSet) Slice() []Obj {
	if s.d == nil {
		return nil
	}
	objs := s.d.in.snapshot()
	out := make([]Obj, 0, s.d.bits.Count())
	s.d.bits.ForEach(func(id int) {
		out = append(out, objs[id])
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.ViewID != b.ViewID {
			return a.ViewID < b.ViewID
		}
		if a.Ctx != b.Ctx {
			return a.Ctx < b.Ctx
		}
		return a.Class < b.Class
	})
	return out
}

func (s ObjSet) String() string {
	parts := make([]string, 0, s.Len())
	for _, o := range s.Slice() {
		parts = append(parts, o.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// VarKey identifies a context-sensitive variable.
type VarKey struct {
	M   *ir.Method
	Ctx Context
	Var string
}

func (k VarKey) String() string {
	return fmt.Sprintf("%s<%s>:%s", k.M.QualifiedName(), k.Ctx, k.Var)
}

// MKey identifies a method instance (a call-graph node).
type MKey struct {
	M   *ir.Method
	Ctx Context
}

func (k MKey) String() string {
	return fmt.Sprintf("%s<%s>", k.M.QualifiedName(), k.Ctx)
}

// FieldKey identifies an abstract object's field.
type FieldKey struct {
	Obj   Obj
	Field string
}

// retVar is the synthetic local holding a method's return value.
const retVar = "$ret"
