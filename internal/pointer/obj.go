// Package pointer implements a flow-insensitive, context-sensitive
// inclusion-based (Andersen-style) points-to analysis over the IR, with
// on-the-fly call-graph construction.
//
// It substitutes for WALA's pointer analysis in the paper's toolchain and
// adds the paper's contribution on top: a pluggable context policy
// including the novel action-sensitive abstraction (§3.3) and the
// InflatedViewContext for findViewById-returned views.
package pointer

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sierra/internal/bitset"
	"sierra/internal/ir"
)

// Obj is an abstract heap object.
type Obj struct {
	// Site is the allocation-site id, or a negative tag for special
	// objects: SiteView for inflated views, SiteMainLooper for the main
	// thread's looper.
	Site int
	// Ctx is the heap context chosen by the policy at allocation.
	Ctx string
	// ViewID is the layout resource id for inflated views (Site ==
	// SiteView). Two views with the same id are the same object no
	// matter where findViewById was called — the InflatedViewContext.
	ViewID int
	// Class is the object's dynamic class.
	Class string
}

// Special Site tags.
const (
	// SiteView marks inflated view objects keyed by ViewID.
	SiteView = -1
	// SiteMainLooper is the singleton main-thread looper.
	SiteMainLooper = -2
)

// ViewObj constructs the abstract object for an inflated view.
func ViewObj(id int, class string) Obj {
	return Obj{Site: SiteView, ViewID: id, Class: class}
}

// MainLooperObj is the singleton abstract object for the main looper.
func MainLooperObj(looperClass string) Obj {
	return Obj{Site: SiteMainLooper, Class: looperClass}
}

// IsView reports whether the object is an inflated view.
func (o Obj) IsView() bool { return o.Site == SiteView }

func (o Obj) String() string {
	switch o.Site {
	case SiteView:
		return fmt.Sprintf("view#%d(%s)", o.ViewID, o.Class)
	case SiteMainLooper:
		return "main-looper"
	default:
		if o.Ctx == "" {
			return fmt.Sprintf("o%d(%s)", o.Site, o.Class)
		}
		return fmt.Sprintf("o%d[%s](%s)", o.Site, o.Ctx, o.Class)
	}
}

// id returns the object-identity element used in k-obj context strings.
func (o Obj) id() string {
	if o.Site == SiteView {
		return fmt.Sprintf("v%d", o.ViewID)
	}
	return fmt.Sprintf("%d", o.Site)
}

// Context is a method-analysis context: the action the code runs in (for
// action-sensitive policies; NoAction otherwise), the k-obj receiver
// chain, and the k-cfa call string.
type Context struct {
	Action int
	Objs   string
	Calls  string
}

// NoAction is the Action value of contexts outside any action (or under
// non-action-sensitive policies).
const NoAction = -1

// EmptyContext is the root context.
var EmptyContext = Context{Action: NoAction}

func (c Context) String() string {
	if c.Action == NoAction && c.Objs == "" && c.Calls == "" {
		return "ε"
	}
	// Manual rendering: this is the sort key for copy-edge ordering, so
	// it runs once per discovered variable and must not pay fmt overhead.
	var b strings.Builder
	if c.Action != NoAction {
		b.WriteByte('A')
		b.WriteString(strconv.Itoa(c.Action))
	}
	if c.Objs != "" {
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		b.WriteString("o:")
		b.WriteString(c.Objs)
	}
	if c.Calls != "" {
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		b.WriteString("c:")
		b.WriteString(c.Calls)
	}
	return b.String()
}

// push prepends elem to a comma-joined bounded string, keeping at most k
// elements — the k-limiting all context policies share.
func push(chain, elem string, k int) string {
	if k <= 0 {
		return ""
	}
	if chain == "" {
		return elem
	}
	parts := strings.SplitN(chain, ",", k)
	if len(parts) >= k {
		parts = parts[:k-1]
	}
	if len(parts) == 0 {
		return elem
	}
	return elem + "," + strings.Join(parts, ",")
}

// ObjSet is a set of abstract objects, represented as a word-packed
// bitset of interner-dense ids. The zero value is a read-only empty
// set (Len/Slice/Contains/Intersects work, mutation needs a set from
// Interner.NewSet or Result.NewObjSet). Copies of an ObjSet alias the
// same backing storage, like the map representation it replaced.
type ObjSet struct {
	d *objsetData
}

// Add inserts o, reporting whether it was new.
func (s ObjSet) Add(o Obj) bool {
	if s.d.bits.Add(int(s.d.in.Intern(o))) {
		s.d.ver++
		return true
	}
	return false
}

// AddAll inserts all of other, reporting whether anything was new. When
// both sets share an id space (always, within one analysis) this is a
// word-parallel union with no hashing.
func (s ObjSet) AddAll(other ObjSet) bool {
	if other.d == nil {
		return false
	}
	if s.d.in == other.d.in {
		if s.d.bits.Or(other.d.bits) > 0 {
			s.d.ver++
			return true
		}
		return false
	}
	// Cross-analysis union (never on the hot path): re-intern.
	changed := false
	for _, o := range other.Slice() {
		if s.Add(o) {
			changed = true
		}
	}
	return changed
}

// version returns the set's growth counter (0 for the zero-value set).
// Two reads returning the same version bracket a window in which the set
// did not grow — the delta solver's cheap "did my input change" test.
func (s ObjSet) version() uint32 {
	if s.d == nil {
		return 0
	}
	return s.d.ver
}

// bits exposes the backing bitset for in-package delta iteration (nil
// for the zero-value set).
func (s ObjSet) bits() bitset.Set {
	if s.d == nil {
		return nil
	}
	return s.d.bits
}

// takeDelta appends the interned ids present in s but not yet in prev to
// dst, marks them in prev, and returns dst (see bitset.TakeDelta).
func (s ObjSet) takeDelta(prev *bitset.Set, dst []int) []int {
	if s.d == nil {
		return dst
	}
	return s.d.bits.TakeDelta(prev, dst)
}

// Contains reports membership.
func (s ObjSet) Contains(o Obj) bool {
	if s.d == nil {
		return false
	}
	id, ok := s.d.in.lookup(o)
	return ok && s.d.bits.Has(int(id))
}

// Intersects reports whether the sets share an element — one AND per
// word when the sets share an id space.
func (s ObjSet) Intersects(other ObjSet) bool {
	if s.d == nil || other.d == nil {
		return false
	}
	if s.d.in == other.d.in {
		return s.d.bits.Intersects(other.d.bits)
	}
	for _, o := range s.Slice() {
		if other.Contains(o) {
			return true
		}
	}
	return false
}

// Len returns the set's cardinality.
func (s ObjSet) Len() int {
	if s.d == nil {
		return 0
	}
	return s.d.bits.Count()
}

// Words reports the backing word count (the pointer.objset_words
// counter's unit; 64 ids per word).
func (s ObjSet) Words() int {
	if s.d == nil {
		return 0
	}
	return s.d.bits.Words()
}

// Single returns the set's sole object when it has exactly one —
// the singleton strong-update test, without the Slice allocation.
func (s ObjSet) Single() (Obj, bool) {
	if s.d == nil {
		return Obj{}, false
	}
	id, ok := s.d.bits.Single()
	if !ok {
		return Obj{}, false
	}
	return s.d.in.snapshot()[id], true
}

// Slice returns the objects in deterministic order (the same
// site/view/ctx/class order the map representation produced, so
// downstream event firing and action numbering are unchanged).
func (s ObjSet) Slice() []Obj {
	if s.d == nil {
		return nil
	}
	objs := s.d.in.snapshot()
	out := make([]Obj, 0, s.d.bits.Count())
	s.d.bits.ForEach(func(id int) {
		out = append(out, objs[id])
	})
	sortObjs(out)
	return out
}

// lessObj is the canonical object order (site/view/ctx/class) that
// Slice and the delta solver's new-receiver iteration share, so both
// solvers bind dispatch targets in the same sequence.
func lessObj(a, b Obj) bool {
	if a.Site != b.Site {
		return a.Site < b.Site
	}
	if a.ViewID != b.ViewID {
		return a.ViewID < b.ViewID
	}
	if a.Ctx != b.Ctx {
		return a.Ctx < b.Ctx
	}
	return a.Class < b.Class
}

// sortObjs sorts objects into the canonical lessObj order.
func sortObjs(objs []Obj) {
	sort.Slice(objs, func(i, j int) bool { return lessObj(objs[i], objs[j]) })
}

func (s ObjSet) String() string {
	parts := make([]string, 0, s.Len())
	for _, o := range s.Slice() {
		parts = append(parts, o.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// VarKey identifies a context-sensitive variable.
type VarKey struct {
	M   *ir.Method
	Ctx Context
	Var string
}

func (k VarKey) String() string {
	return k.M.QualifiedName() + "<" + k.Ctx.String() + ">:" + k.Var
}

// MKey identifies a method instance (a call-graph node).
type MKey struct {
	M   *ir.Method
	Ctx Context
}

func (k MKey) String() string {
	return k.M.QualifiedName() + "<" + k.Ctx.String() + ">"
}

// FieldKey identifies an abstract object's field.
type FieldKey struct {
	Obj   Obj
	Field string
}

// retVar is the synthetic local holding a method's return value.
const retVar = "$ret"
