package pointer

import (
	"testing"

	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// prog builds a finalized program with the framework installed plus the
// given classes.
func prog(classes ...*ir.Class) *ir.Program {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	for _, c := range classes {
		p.AddClass(c)
	}
	p.Finalize()
	return p
}

func entry(m *ir.Method) Entry { return Entry{Method: m, Ctx: EmptyContext} }

func TestBasicFlow(t *testing.T) {
	// main() { a = new A; b = a; b.f = a; c = b.f }
	c := ir.NewClass("A", frontend.Object)
	c.Fields = []string{"f"}
	b := ir.NewMethodBuilder("main")
	b.NewObj("a", "A").Move("b", "a").Store("b", "f", "a").Load("c", "b", "f")
	b.Ret("")
	c.AddMethod(b.Build())
	p := prog(c)
	m := c.Methods["main"]

	res := Analyze(Config{Prog: p, Policy: Insensitive{}, Entries: []Entry{entry(m)}})
	for _, v := range []string{"a", "b", "c"} {
		pts := res.PointsTo(m, EmptyContext, v)
		if pts.Len() != 1 {
			t.Fatalf("pts(%s) = %v, want one object", v, pts)
		}
		for _, o := range pts.Slice() {
			if o.Class != "A" {
				t.Errorf("pts(%s) class = %s", v, o.Class)
			}
		}
	}
}

func TestCallBindingAndReturn(t *testing.T) {
	// A.make() { r = new A; return r }   A.main() { x = this.make() }
	c := ir.NewClass("A", frontend.Object)
	mk := ir.NewMethodBuilder("make")
	mk.NewObj("r", "A")
	mk.Ret("r")
	c.AddMethod(mk.Build())
	mb := ir.NewMethodBuilder("main")
	mb.NewObj("self", "A")
	mb.Call("x", "self", "A", "make")
	mb.Ret("")
	c.AddMethod(mb.Build())
	p := prog(c)
	m := c.Methods["main"]

	res := Analyze(Config{Prog: p, Policy: Insensitive{}, Entries: []Entry{entry(m)}})
	if got := res.PointsToAll(m, "x"); got.Len() != 1 {
		t.Fatalf("return flow broken: pts(x) = %v", got)
	}
	// Receiver binding: make's this is the self object.
	made := res.InstancesOf(c.Methods["make"])
	if len(made) != 1 {
		t.Fatalf("make instances = %v", made)
	}
	if got := res.PointsTo(c.Methods["make"], made[0].Ctx, "this"); got.Len() != 1 {
		t.Fatalf("this binding broken: %v", got)
	}
}

func TestVirtualDispatchPerReceiverClass(t *testing.T) {
	// Base with two subclasses overriding get(); only the allocated
	// subclass's method should be reached.
	base := ir.NewClass("Base", frontend.Object)
	g := ir.NewMethodBuilder("get")
	g.Ret("")
	base.AddMethod(g.Build())
	sub1 := ir.NewClass("Sub1", "Base")
	g1 := ir.NewMethodBuilder("get")
	g1.NewObj("r", "Sub1")
	g1.Ret("r")
	sub1.AddMethod(g1.Build())
	sub2 := ir.NewClass("Sub2", "Base")
	g2 := ir.NewMethodBuilder("get")
	g2.NewObj("r", "Sub2")
	g2.Ret("r")
	sub2.AddMethod(g2.Build())

	main := ir.NewClass("Main", frontend.Object)
	mb := ir.NewMethodBuilder("main")
	mb.NewObj("o", "Sub1")
	mb.Call("x", "o", "Base", "get")
	mb.Ret("")
	main.AddMethod(mb.Build())

	p := prog(base, sub1, sub2, main)
	res := Analyze(Config{Prog: p, Policy: Hybrid{K: 2}, Entries: []Entry{entry(main.Methods["main"])}})

	if got := res.InstancesOf(sub2.Methods["get"]); len(got) != 0 {
		t.Errorf("Sub2.get should be unreachable, got %v", got)
	}
	if got := res.InstancesOf(sub1.Methods["get"]); len(got) != 1 {
		t.Errorf("Sub1.get instances = %v, want 1", got)
	}
	x := res.PointsToAll(main.Methods["main"], "x")
	if x.Len() != 1 {
		t.Fatalf("pts(x) = %v", x)
	}
	for _, o := range x.Slice() {
		if o.Class != "Sub1" {
			t.Errorf("x points to %s, want Sub1", o.Class)
		}
	}
}

// twoActionAliasProgram reproduces the paper's §3.3 motivating case: two
// actions call helper() which allocates an object; context policies that
// ignore actions conflate the two allocations once k is exhausted.
func twoActionAliasProgram() (*ir.Program, *ir.Method, ir.Pos, ir.Pos) {
	host := ir.NewClass("Host", frontend.Object)
	// helper() { o = new Data; return o } — a static helper so hybrid
	// context is pure k-cfa here.
	hb := ir.NewStaticMethodBuilder("helper")
	hb.NewObj("o", "Data")
	hb.Ret("o")
	host.AddMethod(hb.Build())
	// mid() { r = Host.helper(); return r } — one extra frame to exhaust
	// k=1 call strings.
	mid := ir.NewStaticMethodBuilder("mid")
	mid.CallStatic("r", "Host", "helper")
	mid.Ret("r")
	host.AddMethod(mid.Build())
	// main() { x1 = Host.mid(); x2 = Host.mid() } with each call entering
	// a different action.
	mb := ir.NewStaticMethodBuilder("main")
	mb.CallStatic("x1", "Host", "mid")
	mb.CallStatic("x2", "Host", "mid")
	mb.Ret("")
	host.AddMethod(mb.Build())

	data := ir.NewClass("Data", frontend.Object)
	p := prog(host, data)
	m := host.Methods["main"]
	site1 := ir.Pos{Method: m, Block: 0, Index: 0}
	site2 := ir.Pos{Method: m, Block: 0, Index: 1}
	return p, m, site1, site2
}

func TestActionSensitivitySeparatesAllocations(t *testing.T) {
	p, m, site1, site2 := twoActionAliasProgram()
	actionAt := func(pos ir.Pos) (int, bool) {
		switch pos {
		case site1:
			return 1, true
		case site2:
			return 2, true
		}
		return 0, false
	}

	run := func(pol Policy) (x1, x2 ObjSet) {
		res := Analyze(Config{Prog: p, Policy: pol, Entries: []Entry{entry(m)}, ActionAt: actionAt})
		return res.PointsToAll(m, "x1"), res.PointsToAll(m, "x2")
	}

	// k=1 call-site sensitivity: both paths end with the same last call
	// site (mid → helper), so the allocations conflate.
	x1, x2 := run(KCFA{K: 1})
	if !x1.Intersects(x2) {
		t.Error("1-cfa should conflate the two allocations")
	}
	x1, x2 = run(Hybrid{K: 1})
	if !x1.Intersects(x2) {
		t.Error("hybrid-1 should conflate the two allocations")
	}

	// Action sensitivity keeps them apart even with k=1.
	x1, x2 = run(ActionSensitivePolicy{K: 1})
	if x1.Len() == 0 || x2.Len() == 0 {
		t.Fatalf("empty pts under action sensitivity: %v %v", x1, x2)
	}
	if x1.Intersects(x2) {
		t.Error("action sensitivity must separate allocations from different actions")
	}
}

func TestInflatedViewContextAliasesSameID(t *testing.T) {
	// Two different methods call findViewById(7): same abstract object.
	act := ir.NewClass("A", frontend.ActivityClass)
	b1 := ir.NewMethodBuilder("m1")
	b1.Int("id", 7)
	b1.Call("v", "this", "A", frontend.FindViewByID, "id")
	b1.Ret("")
	act.AddMethod(b1.Build())
	b2 := ir.NewMethodBuilder("m2")
	b2.Int("id", 7)
	b2.Call("v", "this", "A", frontend.FindViewByID, "id")
	b2.Int("id2", 8)
	b2.Call("w", "this", "A", frontend.FindViewByID, "id2")
	b2.Ret("")
	act.AddMethod(b2.Build())
	p := prog(act)

	views := map[int]string{7: frontend.ButtonClass, 8: frontend.TextViewClass}
	res := Analyze(Config{
		Prog: p, Policy: ActionSensitivePolicy{K: 2},
		Entries: []Entry{entry(act.Methods["m1"]), entry(act.Methods["m2"])},
		Views:   views,
	})
	v1 := res.PointsToAll(act.Methods["m1"], "v")
	v2 := res.PointsToAll(act.Methods["m2"], "v")
	w := res.PointsToAll(act.Methods["m2"], "w")
	if !v1.Intersects(v2) {
		t.Error("same view id must alias across methods")
	}
	if v1.Intersects(w) {
		t.Error("different view ids must not alias")
	}
	for _, o := range v1.Slice() {
		if !o.IsView() || o.ViewID != 7 || o.Class != frontend.ButtonClass {
			t.Errorf("bad view object %v", o)
		}
	}
}

func TestMainLooperSingleton(t *testing.T) {
	c := ir.NewClass("C", frontend.Object)
	b := ir.NewMethodBuilder("m")
	b.CallStatic("l1", frontend.LooperClass, frontend.GetMainLooper)
	b.CallStatic("l2", frontend.LooperClass, frontend.MyLooper)
	b.Ret("")
	c.AddMethod(b.Build())
	p := prog(c)
	res := Analyze(Config{Prog: p, Policy: Insensitive{}, Entries: []Entry{entry(c.Methods["m"])}})
	l1 := res.PointsToAll(c.Methods["m"], "l1")
	l2 := res.PointsToAll(c.Methods["m"], "l2")
	if l1.Len() != 1 || !l1.Intersects(l2) {
		t.Fatalf("looper objects: l1=%v l2=%v, want the shared singleton", l1, l2)
	}
}

func TestSeedsJoinAcrossMethods(t *testing.T) {
	// reg(l) in class R never calls sink; a seed wires reg's local into
	// sink's variable.
	r := ir.NewClass("R", frontend.Object)
	rb := ir.NewMethodBuilder("reg")
	rb.NewObj("l", "R")
	rb.Ret("")
	r.AddMethod(rb.Build())
	sb := ir.NewMethodBuilder("sink")
	sb.Load("x", "recv", "ignore") // recv defined only via seed
	sb.Ret("")
	r.AddMethod(sb.Build())
	p := prog(r)

	res := Analyze(Config{
		Prog: p, Policy: Insensitive{},
		Entries: []Entry{entry(r.Methods["reg"]), entry(r.Methods["sink"])},
		Seeds: []Seed{{
			SrcMethod: r.Methods["reg"], SrcVar: "l",
			DstMethod: r.Methods["sink"], DstVar: "recv",
		}},
	})
	if got := res.PointsToAll(r.Methods["sink"], "recv"); got.Len() != 1 {
		t.Fatalf("seed did not propagate: %v", got)
	}
}

func TestOnEventSpawnsEntries(t *testing.T) {
	// main() { r = new Task; h = view.post(r) } — the hook should see the
	// post with the Task object and spawn run().
	task := ir.NewClass("Task", frontend.Object, frontend.RunnableIface)
	task.Fields = []string{"hit"}
	tb := ir.NewMethodBuilder(frontend.Run)
	tb.Bool("t", true).Store("this", "hit", "t")
	tb.Ret("")
	task.AddMethod(tb.Build())

	main := ir.NewClass("Main", frontend.ActivityClass)
	mb := ir.NewMethodBuilder("main")
	mb.Int("id", 1)
	mb.Call("v", "this", "Main", frontend.FindViewByID, "id")
	mb.NewObj("r", "Task")
	mb.Call("", "v", frontend.ViewClass, frontend.Post, "r")
	mb.Ret("")
	main.AddMethod(mb.Build())
	p := prog(task, main)

	var spawned []Event
	res := Analyze(Config{
		Prog: p, Policy: ActionSensitivePolicy{K: 2},
		Entries: []Entry{entry(main.Methods["main"])},
		Views:   map[int]string{1: frontend.ViewClass},
		OnEvent: func(ev Event) []Entry {
			if ev.API.Kind != frontend.APIPostRunnable {
				return nil
			}
			spawned = append(spawned, ev)
			var out []Entry
			for _, o := range ev.Args[0] {
				m := p.ResolveMethod(o.Class, frontend.Run)
				out = append(out, Entry{
					Method: m,
					Ctx:    Context{Action: 42, Objs: o.id()},
					This:   []Obj{o},
				})
			}
			return out
		},
	})
	if len(spawned) == 0 {
		t.Fatal("post event never fired")
	}
	runs := res.InstancesOf(task.Methods[frontend.Run])
	if len(runs) != 1 {
		t.Fatalf("run instances = %v", runs)
	}
	if runs[0].Ctx.Action != 42 {
		t.Errorf("spawned ctx = %v, want action 42", runs[0].Ctx)
	}
	// The store in run() must have landed on the Task object.
	thisSet := res.PointsTo(task.Methods[frontend.Run], runs[0].Ctx, "this")
	if thisSet.Len() != 1 {
		t.Fatalf("run this = %v", thisSet)
	}
	for _, o := range thisSet.Slice() {
		if got := res.FieldPointsTo(o, "hit"); got.Len() != 0 {
			// "hit" holds no objects (boolean store), so empty is right;
			// just ensure no panic and object identity is the Task.
			t.Errorf("unexpected field pts %v", got)
		}
		if o.Class != "Task" {
			t.Errorf("this class = %s", o.Class)
		}
	}
}

func TestReachableFromFollowsCallEdges(t *testing.T) {
	a := ir.NewClass("A", frontend.Object)
	leaf := ir.NewMethodBuilder("leaf")
	leaf.Ret("")
	a.AddMethod(leaf.Build())
	mid := ir.NewMethodBuilder("mid")
	mid.Call("", "this", "A", "leaf")
	mid.Ret("")
	a.AddMethod(mid.Build())
	other := ir.NewMethodBuilder("other")
	other.Ret("")
	a.AddMethod(other.Build())
	top := ir.NewMethodBuilder("top")
	top.NewObj("self", "A")
	top.Call("", "self", "A", "mid")
	top.Ret("")
	a.AddMethod(top.Build())
	p := prog(a)

	res := Analyze(Config{Prog: p, Policy: Hybrid{K: 2}, Entries: []Entry{entry(a.Methods["top"])}})
	roots := res.InstancesOf(a.Methods["top"])
	reach := res.ReachableFrom(roots...)
	var names []string
	for mk := range reach {
		names = append(names, mk.M.Name)
	}
	has := func(n string) bool {
		for _, x := range names {
			if x == n {
				return true
			}
		}
		return false
	}
	if !has("top") || !has("mid") || !has("leaf") {
		t.Errorf("reachable = %v, want top/mid/leaf", names)
	}
	if has("other") {
		t.Errorf("other should not be reachable: %v", names)
	}
}

func TestPolicyNamesAndHeapCtx(t *testing.T) {
	pols := []Policy{Insensitive{}, KCFA{K: 2}, KObj{K: 2}, Hybrid{K: 2}, ActionSensitivePolicy{K: 2}}
	seen := map[string]bool{}
	for _, pol := range pols {
		if pol.Name() == "" || seen[pol.Name()] {
			t.Errorf("bad/duplicate policy name %q", pol.Name())
		}
		seen[pol.Name()] = true
	}
	if !(ActionSensitivePolicy{K: 2}).ActionSensitive() {
		t.Error("AS policy must report action sensitivity")
	}
	ctx := Context{Action: 7, Objs: "1,2"}
	if got := (ActionSensitivePolicy{K: 2}).HeapCtx(ctx); got != "A7|1,2" {
		t.Errorf("AS heap ctx = %q", got)
	}
	if got := (Hybrid{K: 2}).HeapCtx(Context{Objs: "1", Calls: "s"}); got != "1/s" {
		t.Errorf("hybrid heap ctx = %q", got)
	}
}

func TestPushTruncation(t *testing.T) {
	s := ""
	for i := 0; i < 5; i++ {
		s = push(s, "x", 2)
	}
	if s != "x,x" {
		t.Errorf("push chain = %q, want x,x", s)
	}
	if push("a,b,c", "z", 3) != "z,a,b" {
		t.Errorf("push = %q", push("a,b,c", "z", 3))
	}
	if push("a", "z", 0) != "" {
		t.Error("k=0 must collapse")
	}
}
