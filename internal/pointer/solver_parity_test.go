package pointer

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// parityConfig is one randomized analysis setup run under both solvers.
type parityConfig struct {
	prog    *ir.Program
	entries []Entry
	seeds   []Seed
	views   map[int]string
	policy  Policy
	events  bool
}

// randomRichProgram generates a synthetic app exercising every transfer
// the solvers implement: allocation, moves, field loads/stores, static
// loads/stores, virtual dispatch over a class hierarchy, special and
// static calls, findViewById (constant and fallback), returns,
// cross-context seeds, and Runnable posts reified through an OnEvent
// hook (including FieldObjs reads, so field growth must re-fire events).
func randomRichProgram(r *rand.Rand) parityConfig {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	vars := []string{"a", "b", "c", "d", "e"}
	classes := []string{"Task", "Base", "Sub1", "Sub2"}
	soup := func(b *ir.MethodBuilder, n int, allowCalls bool) {
		for i := 0; i < n; i++ {
			dst := vars[r.Intn(len(vars))]
			src := vars[r.Intn(len(vars))]
			switch r.Intn(10) {
			case 0, 1:
				b.NewObj(dst, classes[r.Intn(len(classes))])
			case 2:
				b.Move(dst, src)
			case 3:
				b.Load(dst, src, "f")
			case 4:
				b.Store(src, "f", dst)
			case 5:
				b.SLoad(dst, "G", "s")
			case 6:
				b.SStore("G", "s", src)
			case 7:
				if allowCalls {
					b.Call(dst, src, "Base", "work", vars[r.Intn(len(vars))])
				} else {
					b.Move(dst, src)
				}
			case 8:
				if allowCalls {
					b.CallStatic(dst, "Helper", "make")
				} else {
					b.NewObj(dst, "Task")
				}
			default:
				b.Load(dst, src, "g")
			}
		}
	}

	task := ir.NewClass("Task", frontend.Object, frontend.RunnableIface)
	task.Fields = []string{"f", "g"}
	tb := ir.NewMethodBuilder(frontend.Run)
	soup(tb, 2+r.Intn(6), false)
	tb.Ret(vars[r.Intn(len(vars))])
	task.AddMethod(tb.Build())
	p.AddClass(task)

	base := ir.NewClass("Base", frontend.Object)
	base.Fields = []string{"f", "g"}
	wb := ir.NewMethodBuilder("work", "x")
	soup(wb, 1+r.Intn(4), false)
	wb.Ret(vars[r.Intn(len(vars))])
	base.AddMethod(wb.Build())
	p.AddClass(base)
	for _, sub := range []string{"Sub1", "Sub2"} {
		c := ir.NewClass(sub, "Base")
		c.Fields = []string{"f", "g"}
		sb := ir.NewMethodBuilder("work", "x")
		soup(sb, 1+r.Intn(4), false)
		sb.Ret(vars[r.Intn(len(vars))])
		c.AddMethod(sb.Build())
		p.AddClass(c)
	}

	helper := ir.NewClass("Helper", frontend.Object)
	hb := ir.NewMethodBuilder("make")
	hb.NewObj("h", classes[r.Intn(len(classes))])
	hb.Ret("h")
	helper.AddMethod(hb.Build())
	p.AddClass(helper)

	glob := ir.NewClass("G", frontend.Object)
	glob.Fields = []string{"s"}
	p.AddClass(glob)

	main := ir.NewClass("Main", frontend.ActivityClass)
	nEntries := 1 + r.Intn(2)
	var entryNames []string
	for e := 0; e < nEntries; e++ {
		name := fmt.Sprintf("main%d", e)
		entryNames = append(entryNames, name)
		mb := ir.NewMethodBuilder(name)
		soup(mb, 3+r.Intn(8), true)
		if r.Intn(2) == 0 {
			// Constant view id half the time, non-constant fallback else.
			if r.Intn(2) == 0 {
				mb.Int("id", int64(7+r.Intn(2)))
			} else {
				mb.Move("id", vars[r.Intn(len(vars))])
			}
			mb.Call("v", "this", "Main", frontend.FindViewByID, "id")
		}
		mb.NewObj("t", "Task")
		if r.Intn(3) > 0 {
			mb.Store("t", "f", vars[r.Intn(len(vars))])
		}
		mb.Int("vid", 7)
		mb.Call("w", "this", "Main", frontend.FindViewByID, "vid")
		mb.Call("", "w", frontend.ViewClass, frontend.Post, "t")
		soup(mb, r.Intn(5), true)
		mb.Ret("")
		main.AddMethod(mb.Build())
	}
	p.AddClass(main)
	p.Finalize()

	cfg := parityConfig{
		prog: p,
		views: map[int]string{
			7: frontend.ButtonClass,
			8: frontend.TextViewClass,
		},
		events: true,
	}
	for _, name := range entryNames {
		cfg.entries = append(cfg.entries, Entry{Method: main.Methods[name], Ctx: EmptyContext})
	}
	runM := task.Methods[frontend.Run]
	for s := 0; s < r.Intn(3); s++ {
		cfg.seeds = append(cfg.seeds, Seed{
			SrcMethod: main.Methods[entryNames[r.Intn(len(entryNames))]],
			SrcVar:    vars[r.Intn(len(vars))],
			DstMethod: runM,
			DstVar:    vars[r.Intn(len(vars))],
		})
	}
	pols := []Policy{
		Insensitive{}, KCFA{K: 1}, KObj{K: 2}, Hybrid{K: 2},
		ActionSensitivePolicy{K: 2},
	}
	cfg.policy = pols[r.Intn(len(pols))]
	return cfg
}

// runSolver analyzes cfg under the given solver. The OnEvent hook
// mirrors the actions registry's shape: deterministic, idempotent, and
// reading both argument sets and object fields (via FieldObjs).
func runSolver(cfg parityConfig, solver Solver) *Result {
	var onEvent func(Event) []Entry
	if cfg.events {
		p := cfg.prog
		onEvent = func(ev Event) []Entry {
			if ev.API.Kind != frontend.APIPostRunnable || len(ev.Args) == 0 {
				return nil
			}
			var out []Entry
			spawn := func(o Obj) {
				m := p.ResolveMethod(o.Class, frontend.Run)
				if m == nil {
					return
				}
				out = append(out, Entry{
					Method: m,
					Ctx:    Context{Action: 42, Objs: o.id()},
					This:   []Obj{o},
				})
			}
			for _, o := range ev.Args[0] {
				spawn(o)
				// Chase one field hop so event refiring depends on field
				// points-to growth, not just the argument sets.
				for _, q := range ev.FieldObjs(o, "f") {
					spawn(q)
				}
			}
			return out
		}
	}
	return Analyze(Config{
		Prog:    cfg.prog,
		Policy:  cfg.policy,
		Solver:  solver,
		Entries: cfg.entries,
		Seeds:   cfg.seeds,
		Views:   cfg.views,
		OnEvent: onEvent,
	})
}

// requireIdenticalResults asserts full observable equality of two
// results: pass count, instance set, entry order, per-site callee edge
// order, and the exact contents (and key sets) of pts/fpts/spts.
func requireIdenticalResults(t *testing.T, want, got *Result) {
	t.Helper()
	if want.passes != got.passes {
		t.Fatalf("passes: exhaustive=%d delta=%d", want.passes, got.passes)
	}
	if want.Interrupted != got.Interrupted {
		t.Fatalf("interrupted: exhaustive=%v delta=%v", want.Interrupted, got.Interrupted)
	}
	wantInst, gotInst := want.Instances(), got.Instances()
	if len(wantInst) != len(gotInst) {
		t.Fatalf("instance count: exhaustive=%d delta=%d", len(wantInst), len(gotInst))
	}
	for i := range wantInst {
		if wantInst[i].String() != gotInst[i].String() {
			t.Fatalf("instance[%d]: exhaustive=%s delta=%s", i, wantInst[i], gotInst[i])
		}
	}
	wantE, gotE := want.Entries(), got.Entries()
	if len(wantE) != len(gotE) {
		t.Fatalf("entry count: exhaustive=%d delta=%d", len(wantE), len(gotE))
	}
	for i := range wantE {
		if wantE[i].String() != gotE[i].String() {
			t.Fatalf("entry[%d] order: exhaustive=%s delta=%s", i, wantE[i], gotE[i])
		}
	}
	if len(want.callees) != len(got.callees) {
		t.Fatalf("call sites: exhaustive=%d delta=%d", len(want.callees), len(got.callees))
	}
	for sk, wantCallees := range want.callees {
		gotCallees, ok := got.callees[sk]
		if !ok {
			t.Fatalf("call site %v@%v missing under delta", sk.Caller, sk.Pos)
		}
		if len(wantCallees) != len(gotCallees) {
			t.Fatalf("callees at %v@%v: exhaustive=%v delta=%v", sk.Caller, sk.Pos, wantCallees, gotCallees)
		}
		for i := range wantCallees {
			if wantCallees[i].String() != gotCallees[i].String() {
				t.Fatalf("callee order at %v@%v[%d]: exhaustive=%s delta=%s",
					sk.Caller, sk.Pos, i, wantCallees[i], gotCallees[i])
			}
		}
	}
	if len(want.pts) != len(got.pts) {
		t.Fatalf("pts keys: exhaustive=%d delta=%d", len(want.pts), len(got.pts))
	}
	for k, ws := range want.pts {
		gs, ok := got.pts[k]
		if !ok {
			t.Fatalf("pts key %v missing under delta", k)
		}
		if ws.String() != gs.String() {
			t.Fatalf("pts[%v]: exhaustive=%v delta=%v", k, ws, gs)
		}
	}
	if len(want.fpts) != len(got.fpts) {
		t.Fatalf("fpts keys: exhaustive=%d delta=%d", len(want.fpts), len(got.fpts))
	}
	for k, ws := range want.fpts {
		gs, ok := got.fpts[k]
		if !ok {
			t.Fatalf("fpts key %v missing under delta", k)
		}
		if ws.String() != gs.String() {
			t.Fatalf("fpts[%v]: exhaustive=%v delta=%v", k, ws, gs)
		}
	}
	if len(want.spts) != len(got.spts) {
		t.Fatalf("spts keys: exhaustive=%d delta=%d", len(want.spts), len(got.spts))
	}
	for k, ws := range want.spts {
		gs, ok := got.spts[k]
		if !ok {
			t.Fatalf("spts key %q missing under delta", k)
		}
		if ws.String() != gs.String() {
			t.Fatalf("spts[%q]: exhaustive=%v delta=%v", k, ws, gs)
		}
	}
	// Same interner id assignment order — the strongest determinism
	// statement: both solvers discovered objects in the same sequence.
	wantObjs, gotObjs := want.in.snapshot(), got.in.snapshot()
	if len(wantObjs) != len(gotObjs) {
		t.Fatalf("interned objs: exhaustive=%d delta=%d", len(wantObjs), len(gotObjs))
	}
	for i := range wantObjs {
		if wantObjs[i] != gotObjs[i] {
			t.Fatalf("interner id %d: exhaustive=%v delta=%v", i, wantObjs[i], gotObjs[i])
		}
	}
}

// TestSolverParityProperty runs randomized rich programs under both
// solvers and requires bit-for-bit identical results.
func TestSolverParityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := randomRichProgram(r)
		want := runSolver(cfg, SolverExhaustive)
		got := runSolver(cfg, SolverDelta)
		requireIdenticalResults(t, want, got)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestSolverParityLinearPrograms re-runs the original straight-line
// generator under both solvers (no calls or events: pins the pure
// Move/Load/Store delta paths).
func TestSolverParityLinearPrograms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, m := randomLinearProgram(r)
		cfg := parityConfig{
			prog:    p,
			entries: []Entry{{Method: m, Ctx: EmptyContext}},
			policy:  ActionSensitivePolicy{K: 2},
		}
		want := runSolver(cfg, SolverExhaustive)
		got := runSolver(cfg, SolverDelta)
		requireIdenticalResults(t, want, got)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestParseSolver(t *testing.T) {
	for in, want := range map[string]Solver{
		"":           SolverDelta,
		"delta":      SolverDelta,
		"exhaustive": SolverExhaustive,
	} {
		got, err := ParseSolver(in)
		if err != nil || got != want {
			t.Fatalf("ParseSolver(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSolver("nope"); err == nil {
		t.Fatal("ParseSolver must reject unknown solvers")
	}
}
