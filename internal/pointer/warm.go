package pointer

import (
	"fmt"

	"sierra/internal/ir"
	"sierra/internal/obs"
)

// Warm is a live handle on a solved delta analyzer, kept after the
// initial fixpoint so a skeleton-visible edit can be re-solved
// incrementally instead of from scratch. ReSolve retracts the changed
// methods' statement constraints (their dense slots are orphaned and
// their event sites dead-marked), re-seeds fresh all-dirty slots from
// the patched bodies, and re-drains the difference-propagation worklist
// from that frontier.
//
// The handle does not make retraction sound in general — removing a
// constraint from a monotone solver cannot shrink already-derived
// facts. It is sound, and byte-for-byte equal to a cold solve, exactly
// when the caller's planner proves the edit could not shrink or grow
// any already-solved key (see internal/incremental's stage planner).
// ReSolve verifies the "could not grow" half at runtime: it snapshots
// every points-to set's growth version before re-solving and fails if
// any pre-existing key grew, any new method instance or entry appeared,
// or the fixpoint did not converge. On failure the handle — and the
// Result it wraps — must be discarded (fail closed to a cold run); the
// partially re-propagated state is not rolled back.
//
// A Warm handle is not safe for concurrent use and is only produced by
// the delta solver (AnalyzeWarm returns nil for the exhaustive solver).
type Warm struct {
	a     *analyzer
	spent bool // a failed ReSolve leaves the state unusable
}

// AnalyzeWarm is Analyze, but additionally returns a Warm re-solve
// handle when the configuration supports one (delta solver, completed
// fixpoint). Callers that never re-solve should use Analyze.
func AnalyzeWarm(cfg Config) (*Result, *Warm) {
	a := newAnalyzer(cfg)
	a.run()
	if a.d == nil || a.res.Interrupted {
		return a.res, nil
	}
	return a.res, &Warm{a: a}
}

// Result returns the result the handle re-solves in place.
func (w *Warm) Result() *Result { return w.a.res }

// versionSnap records every points-to key's growth version before a
// warm re-solve; comparing after the re-drain detects any growth of
// already-solved keys (new keys are fine — they belong to the edit).
type versionSnap struct {
	pts  map[VarKey]uint32
	fpts map[FieldKey]uint32
	spts map[string]uint32
}

func snapshotVersions(r *Result) versionSnap {
	s := versionSnap{
		pts:  make(map[VarKey]uint32, len(r.pts)),
		fpts: make(map[FieldKey]uint32, len(r.fpts)),
		spts: make(map[string]uint32, len(r.spts)),
	}
	for k, v := range r.pts {
		s.pts[k] = v.version()
	}
	for k, v := range r.fpts {
		s.fpts[k] = v.version()
	}
	for k, v := range r.spts {
		s.spts[k] = v.version()
	}
	return s
}

func (s versionSnap) verify(r *Result) error {
	for k, ver := range s.pts {
		if r.pts[k].version() != ver {
			return fmt.Errorf("pointer: warm re-solve grew var set %s.%s", k.M.QualifiedName(), k.Var)
		}
	}
	for k, ver := range s.fpts {
		if r.fpts[k].version() != ver {
			return fmt.Errorf("pointer: warm re-solve grew field set %s", k.Field)
		}
	}
	for k, ver := range s.spts {
		if r.spts[k].version() != ver {
			return fmt.Errorf("pointer: warm re-solve grew static set %s", k)
		}
	}
	return nil
}

// ReSolve incrementally re-solves after the given methods' bodies were
// patched in place (same *ir.Method identities, new block contents).
// On success the wrapped Result reflects the patched program with every
// pre-existing key byte-identical to a cold solve of it. On error the
// baseline state is unusable and the caller must fall back to a cold
// run. tr, when non-nil, receives pointer.retracted_keys and
// pointer.resolve_passes.
func (w *Warm) ReSolve(changed []*ir.Method, tr *obs.Trace) error {
	if w == nil || w.a == nil || w.a.d == nil {
		return fmt.Errorf("pointer: no warm delta state")
	}
	if w.spent {
		return fmt.Errorf("pointer: warm handle spent by an earlier failed re-solve")
	}
	a := w.a
	d := a.d
	if a.res.Interrupted {
		return fmt.Errorf("pointer: warm baseline is interrupted")
	}

	chSet := make(map[*ir.Method]bool, len(changed))
	for _, m := range changed {
		chSet[m] = true
		// Invalidate the per-method caches: the body is already patched,
		// so the next methodStmts/methodEvents read sees the new stmts.
		delete(d.stmtsOf, m)
		delete(d.eventsOf, m)
	}

	snap := snapshotVersions(a.res)
	nInst, nEntries := len(a.order), len(a.res.entryKeys)

	// Dead-mark the affected instances' event sites before re-slotting:
	// stale consumer lists can re-dirty the old ids forever.
	affected := make([]int, 0, 8)
	isAffected := make(map[int]bool, 8)
	for i, mk := range a.order {
		if chSet[mk.M] {
			affected = append(affected, i)
			isAffected[i] = true
		}
	}
	for eid := range d.evSites {
		if isAffected[d.evSites[eid].inst] {
			d.evSites[eid].dead = true
		}
	}
	retracted := 0
	for _, i := range affected {
		retracted += d.instLen[i]
		d.slotInstance(a, i, a.order[i])
	}

	// The re-drain is always serial and uncancellable: the parallel
	// sweep's purity planner and partition state assume the dense arrays
	// grew append-only from installation order, which a re-slot breaks,
	// and a mid-drain cancellation would leave the baseline half-
	// propagated with no way to mark it Interrupted safely.
	a.cfg.Jobs = 1
	a.cfg.Ctx = nil
	a.runDelta()

	if tr != nil {
		tr.Count("pointer.retracted_keys", int64(retracted))
		tr.Count("pointer.resolve_passes", int64(a.res.passes))
	}
	if a.res.Interrupted {
		w.spent = true
		return fmt.Errorf("pointer: warm re-solve interrupted")
	}
	if d.changed {
		w.spent = true
		return fmt.Errorf("pointer: warm re-solve hit the pass bound before converging")
	}
	if len(a.order) != nInst || len(a.res.entryKeys) != nEntries {
		w.spent = true
		return fmt.Errorf("pointer: warm re-solve discovered new instances (%d -> %d) or entries (%d -> %d)",
			nInst, len(a.order), nEntries, len(a.res.entryKeys))
	}
	if err := snap.verify(a.res); err != nil {
		w.spent = true
		return err
	}
	return nil
}
