package pointer

// The difference-propagation worklist solver (SolverDelta).
//
// The exhaustive solver re-runs every statement of every instance each
// pass even when nothing the statement reads has changed; on large apps
// almost all of that work is no-op set unions. This solver keeps the
// exhaustive pass structure — instance sweep in discovery order, then
// copy edges in sorted order, then seeds, then events — but skips every
// unit of work whose inputs provably did not grow:
//
//   - Each (instance, statement) pair gets a dense id and a dirty bit.
//     A statement re-runs only when marked dirty by a growth of one of
//     its inputs (tracked through a dependency index from VarKey /
//     FieldKey / static-key to consuming statements).
//   - Load/Store are delta-aware inside a single visit too: new base
//     objects (bitset.TakeDelta against a per-statement prev set) are
//     expanded against full field sets, and previously-seen field sets
//     are re-unioned only when their version counter moved.
//   - Virtual/special dispatch resolves targets only for newly-seen
//     receiver objects, sorted into the same canonical object order the
//     exhaustive Slice() walk uses so call edges append identically.
//   - Copy edges carry a dirty flag set when a source grows; seeds are
//     indexed by source (method, var) and by method so only affected
//     seeds re-apply; event sites re-fire only when their receiver,
//     arguments, or previously-read field sets grew.
//
// Because a skipped unit of work is exactly one the exhaustive solver
// would have executed as a no-op (monotone transfer functions with
// unchanged inputs), every observable — points-to contents, instance /
// entry discovery order, callee edge order, interner id assignment, and
// the pass count — is bit-for-bit identical across the two solvers.
// solver_parity_test.go and the metrics golden test pin this.

import (
	"fmt"

	"sierra/internal/bitset"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// consumers lists the dense statement ids and event-site ids that read a
// points-to key.
type consumers struct {
	stmts  []int
	events []int
}

// stmtState is the per-(instance, statement) delta bookkeeping.
type stmtState struct {
	// init marks that one-time work ran: dependency registration, and
	// for one-shot statements (New, static invoke, findViewById, looper
	// accessors, recognized framework stubs) the whole transfer.
	init bool
	// prev holds the base/receiver ids already expanded (Load, Store,
	// Invoke dispatch).
	prev bitset.Set
	// fields / fvers track, for Load, each seen base's field key and the
	// field set version last unioned into the destination.
	fields []FieldKey
	fvers  []uint32
	// srcVer is, for Store, the source-set version last written through
	// to every base.
	srcVer uint32
}

// evSite is a recognized event-firing API call inside a method body.
type evSite struct {
	inv *ir.Invoke
	api frontend.APICall
}

// evInstance is one event site instantiated in a method instance.
type evInstance struct {
	inst int // index into analyzer.order
	site evSite
	// dead marks a site orphaned by a warm re-slot (warm.go): its
	// instance was re-registered with fresh sites, but stale dependency
	// consumer lists can still re-dirty the old id, so the firing loop
	// must skip-and-clear it forever.
	dead bool
}

// seedVar keys the seed-source index: any growth of (method, var) under
// any context re-dirties the seeds reading it.
type seedVar struct {
	M *ir.Method
	V string
}

// evFieldDep dedups dynamic FieldObjs dependency registration.
type evFieldDep struct {
	fk FieldKey
	ev int
}

type deltaState struct {
	// Per-method caches: flattened statement lists (block order, the
	// order processInstance visits) and recognized event sites.
	stmtsOf  map[*ir.Method][]ir.Stmt
	eventsOf map[*ir.Method][]evSite

	// Dense statement ids: instance i's statements occupy
	// [instBase[i], instBase[i]+instLen[i]), where instLen[i] is the
	// statement count of order[i].M at slotting time. instLen must be
	// tracked explicitly: after a warm re-slot (warm.go) instBase is no
	// longer monotone and the method body may already be patched, so
	// neither neighbors nor a fresh len(methodStmts) recovers the old
	// slot extent.
	instBase []int
	instLen  []int
	stmtInst []int // statement id -> instance index
	stmts    []stmtState

	// Flattened event-site instances, appended at install time so the
	// event phase's forward cursor reaches sites of instances installed
	// mid-phase (matching the exhaustive re-read of the growing order).
	evSites []evInstance

	dirtyStmt bitset.Set
	dirtyInst bitset.Set
	dirtyEv   bitset.Set

	// The dependency index: key -> consumers.
	varDeps     map[VarKey]*consumers
	fieldDeps   map[FieldKey]*consumers
	staticDeps  map[string]*consumers
	copyIndex   map[VarKey][]*copyEdge
	evFieldSeen map[evFieldDep]bool

	seedSrc   map[seedVar][]int
	seedByM   map[*ir.Method][]int
	seedDirty []bool

	dirtyCopies int // count of dirty copy edges
	dirtySeeds  int // count of dirty seeds

	// changed mirrors the exhaustive solver's per-pass changed flag: set
	// on any set growth or new instance, reset at each pass start.
	changed bool

	scratch []int // reusable id buffer for TakeDelta/AppendBits
	nDeps   int   // registered dependency edges (pointer.dep_edges)
}

func newDeltaState(a *analyzer) *deltaState {
	d := &deltaState{
		stmtsOf:     make(map[*ir.Method][]ir.Stmt, a.hintMethods),
		eventsOf:    make(map[*ir.Method][]evSite, a.hintMethods),
		varDeps:     make(map[VarKey]*consumers, a.hintStmts/2),
		fieldDeps:   make(map[FieldKey]*consumers, a.hintMethods/2),
		staticDeps:  make(map[string]*consumers, 16),
		copyIndex:   make(map[VarKey][]*copyEdge, a.hintMethods),
		evFieldSeen: make(map[evFieldDep]bool),
		seedSrc:     make(map[seedVar][]int, len(a.cfg.Seeds)),
		seedByM:     make(map[*ir.Method][]int, len(a.cfg.Seeds)),
		seedDirty:   make([]bool, len(a.cfg.Seeds)),
		// Dense statement slots grow with discovered instances (observed
		// ~1.2× the static statement count); starting near the expected
		// final size avoids repeated large re-copies of the stmtState
		// array during the discovery-heavy first pass.
		stmts:    make([]stmtState, 0, a.hintStmts+a.hintStmts/4),
		stmtInst: make([]int, 0, a.hintStmts+a.hintStmts/4),
		instBase: make([]int, 0, 2*a.hintMethods),
		instLen:  make([]int, 0, 2*a.hintMethods),
	}
	for i := range a.cfg.Seeds {
		s := &a.cfg.Seeds[i]
		// All seeds start dirty: the exhaustive solver applies each one
		// on every pass, so the first delta pass must apply them all.
		d.seedDirty[i] = true
		d.dirtySeeds++
		sv := seedVar{M: s.SrcMethod, V: s.SrcVar}
		d.seedSrc[sv] = append(d.seedSrc[sv], i)
		d.seedByM[s.SrcMethod] = append(d.seedByM[s.SrcMethod], i)
		if s.DstMethod != s.SrcMethod {
			d.seedByM[s.DstMethod] = append(d.seedByM[s.DstMethod], i)
		}
		d.nDeps += 2
	}
	return d
}

// depEdges reports how many dependency edges the solver registered.
func (d *deltaState) depEdges() int { return d.nDeps }

// methodStmts returns m's statements flattened in block order (cached).
func (d *deltaState) methodStmts(m *ir.Method) []ir.Stmt {
	if s, ok := d.stmtsOf[m]; ok {
		return s
	}
	n := 0
	for _, blk := range m.Blocks {
		n += len(blk.Stmts)
	}
	out := make([]ir.Stmt, 0, n)
	for _, blk := range m.Blocks {
		out = append(out, blk.Stmts...)
	}
	d.stmtsOf[m] = out
	return out
}

// methodEvents returns m's event-firing API sites (cached): recognized
// calls other than findViewById and listener registration, exactly the
// filter the exhaustive fireEvents applies.
func (d *deltaState) methodEvents(a *analyzer, m *ir.Method) []evSite {
	if s, ok := d.eventsOf[m]; ok {
		return s
	}
	var out []evSite
	for _, s := range d.methodStmts(m) {
		inv, ok := s.(*ir.Invoke)
		if !ok {
			continue
		}
		api, ok := frontend.Recognize(a.cfg.Prog, inv)
		if !ok || api.Kind == frontend.APIFindViewByID || api.Kind == frontend.APISetListener {
			continue
		}
		out = append(out, evSite{inv: inv, api: api})
	}
	d.eventsOf[m] = out
	return out
}

// registerInstance wires a newly-installed method instance into the
// delta bookkeeping: dense statement ids (all dirty — a new instance
// must run every statement once, as the exhaustive sweep would), event
// sites with their receiver/argument dependencies, and any seeds
// touching the method.
func (d *deltaState) registerInstance(a *analyzer, idx int, mk MKey) {
	d.instBase = append(d.instBase, 0)
	d.instLen = append(d.instLen, 0)
	d.slotInstance(a, idx, mk)
}

// slotInstance (re)assigns instance idx a fresh all-dirty statement-slot
// range at the end of the dense arrays and wires event sites and seeds.
// Shared by install-time registration and the warm re-slot (warm.go),
// which overwrites the instance's old range pointers and leaves the old
// slots orphaned (never scanned: no instBase entry covers them).
func (d *deltaState) slotInstance(a *analyzer, idx int, mk MKey) {
	d.changed = true
	stmts := d.methodStmts(mk.M)
	base := len(d.stmts)
	d.instBase[idx] = base
	d.instLen[idx] = len(stmts)
	d.stmts = append(d.stmts, make([]stmtState, len(stmts))...)
	for sid := base; sid < base+len(stmts); sid++ {
		d.stmtInst = append(d.stmtInst, idx)
		d.dirtyStmt.Add(sid)
	}
	if len(stmts) > 0 {
		d.dirtyInst.Add(idx)
	}
	if a.cfg.OnEvent != nil {
		for _, es := range d.methodEvents(a, mk.M) {
			eid := len(d.evSites)
			d.evSites = append(d.evSites, evInstance{inst: idx, site: es})
			d.dirtyEv.Add(eid)
			if es.inv.Recv != "" {
				d.dependVarEvent(VarKey{M: mk.M, Ctx: mk.Ctx, Var: es.inv.Recv}, eid)
			}
			for _, arg := range es.inv.Args {
				d.dependVarEvent(VarKey{M: mk.M, Ctx: mk.Ctx, Var: arg}, eid)
			}
		}
	}
	for _, si := range d.seedByM[mk.M] {
		if !d.seedDirty[si] {
			d.seedDirty[si] = true
			d.dirtySeeds++
		}
	}
}

// registerCopy indexes a new copy edge by its source and marks the edge
// dirty so it applies during this pass's copy phase (the exhaustive
// solver applies new edges the same pass they appear).
func (d *deltaState) registerCopy(e *copyEdge, src VarKey) {
	d.copyIndex[src] = append(d.copyIndex[src], e)
	d.nDeps++
	if !e.dirty {
		e.dirty = true
		d.dirtyCopies++
	}
}

func (d *deltaState) varCons(k VarKey) *consumers {
	c := d.varDeps[k]
	if c == nil {
		c = &consumers{}
		d.varDeps[k] = c
	}
	return c
}

func (d *deltaState) fieldCons(k FieldKey) *consumers {
	c := d.fieldDeps[k]
	if c == nil {
		c = &consumers{}
		d.fieldDeps[k] = c
	}
	return c
}

func (d *deltaState) staticCons(key string) *consumers {
	c := d.staticDeps[key]
	if c == nil {
		c = &consumers{}
		d.staticDeps[key] = c
	}
	return c
}

func (d *deltaState) dependVar(k VarKey, sid int) {
	c := d.varCons(k)
	c.stmts = append(c.stmts, sid)
	d.nDeps++
}

func (d *deltaState) dependField(k FieldKey, sid int) {
	c := d.fieldCons(k)
	c.stmts = append(c.stmts, sid)
	d.nDeps++
}

func (d *deltaState) dependStatic(key string, sid int) {
	c := d.staticCons(key)
	c.stmts = append(c.stmts, sid)
	d.nDeps++
}

func (d *deltaState) dependVarEvent(k VarKey, eid int) {
	c := d.varCons(k)
	c.events = append(c.events, eid)
	d.nDeps++
}

// dependFieldEvent registers a FieldObjs read discovered while firing an
// event (deduped: the same site re-reads the same fields every firing).
func (d *deltaState) dependFieldEvent(fk FieldKey, eid int) {
	dep := evFieldDep{fk: fk, ev: eid}
	if d.evFieldSeen[dep] {
		return
	}
	d.evFieldSeen[dep] = true
	c := d.fieldCons(fk)
	c.events = append(c.events, eid)
	d.nDeps++
}

// markConsumers dirties every statement (and its instance) and event
// site reading a grown key.
func (d *deltaState) markConsumers(c *consumers) {
	for _, sid := range c.stmts {
		d.dirtyStmt.Add(sid)
		d.dirtyInst.Add(d.stmtInst[sid])
	}
	for _, eid := range c.events {
		d.dirtyEv.Add(eid)
	}
}

// touchVar records that a variable's points-to set grew: consumers go
// dirty, copy edges sourced from it go dirty, and seeds reading it
// re-apply.
func (d *deltaState) touchVar(k VarKey) {
	d.changed = true
	if c := d.varDeps[k]; c != nil {
		d.markConsumers(c)
	}
	for _, e := range d.copyIndex[k] {
		if !e.dirty {
			e.dirty = true
			d.dirtyCopies++
		}
	}
	if idxs := d.seedSrc[seedVar{M: k.M, V: k.Var}]; len(idxs) > 0 {
		for _, si := range idxs {
			if !d.seedDirty[si] {
				d.seedDirty[si] = true
				d.dirtySeeds++
			}
		}
	}
}

// touchField records that an object field's points-to set grew.
func (d *deltaState) touchField(k FieldKey) {
	d.changed = true
	if c := d.fieldDeps[k]; c != nil {
		d.markConsumers(c)
	}
}

// touchStatic records that a static field's points-to set grew.
func (d *deltaState) touchStatic(key string) {
	d.changed = true
	if c := d.staticDeps[key]; c != nil {
		d.markConsumers(c)
	}
}

// runDelta is the difference-propagation fixpoint. It mirrors
// runExhaustive's pass structure exactly — same phase order, same
// context polling, same per-pass changed semantics — so pass counts and
// all discovery orders match; only provably no-op work is skipped.
func (a *analyzer) runDelta() {
	cfg := a.cfg
	d := a.d
	var ps *parState
	if cfg.Jobs > 1 {
		ps = newParState(a)
	}
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		if ctxDone(cfg.Ctx) {
			a.res.Interrupted = true
			break
		}
		a.res.passes = pass + 1
		d.changed = false
		// The partitioned sweep runs only when the planner proves the
		// pass pure (parallel.go); otherwise — and always under Jobs≤1 —
		// the serial sweep runs, bit-for-bit the legacy path.
		if ps == nil || !ps.tryPass() {
			a.sweepDelta()
		}
		if a.res.Interrupted {
			break
		}
		a.applyCopiesDelta()
		a.applySeedsDelta()
		a.fireEventsDelta()
		if !d.changed {
			break
		}
	}
	if ps != nil {
		ps.reportObs()
	}
}

// sweepDelta is the serial instance sweep of one delta pass.
func (a *analyzer) sweepDelta() {
	cfg := a.cfg
	d := a.d
	for i := 0; i < len(a.order); i++ {
		if i%ctxStride == ctxStride-1 && ctxDone(cfg.Ctx) {
			a.res.Interrupted = true
			break
		}
		// iterations stays solver-invariant (the sweep visits every
		// slot); the delta-specific effort shows up in
		// dirty_instances / transfer_skips / delta_props instead.
		a.stats.iterations++
		if !d.dirtyInst.Has(i) {
			a.stats.transferSkips++
			continue
		}
		d.dirtyInst.Clear(i)
		a.stats.dirtyInstances++
		a.processInstanceDelta(i)
	}
}

// processInstanceDelta re-runs the dirty statements of one instance, in
// statement order.
func (a *analyzer) processInstanceDelta(idx int) {
	d := a.d
	mk := a.order[idx]
	base := d.instBase[idx]
	for si, s := range d.methodStmts(mk.M) {
		sid := base + si
		if !d.dirtyStmt.Has(sid) {
			continue
		}
		d.dirtyStmt.Clear(sid)
		a.stats.deltaProps++
		a.transferDelta(mk, s, sid)
	}
}

// transferDelta is the delta-aware transfer function. Mutations of
// a.d.stmts[sid] must complete before any bindCall/install (those can
// append to d.stmts and invalidate the pointer).
func (a *analyzer) transferDelta(mk MKey, s ir.Stmt, sid int) {
	d := a.d
	key := func(v string) VarKey { return VarKey{M: mk.M, Ctx: mk.Ctx, Var: v} }
	switch stm := s.(type) {
	case *ir.New:
		st := &d.stmts[sid]
		if st.init {
			return
		}
		st.init = true
		k := key(stm.Dst)
		o := Obj{Site: stm.Site, Ctx: a.cfg.Policy.HeapCtx(mk.Ctx), Class: stm.Class}
		if a.pts(k).Add(o) {
			a.touchVar(k)
		}
	case *ir.Move:
		st := &d.stmts[sid]
		sk := key(stm.Src)
		if !st.init {
			st.init = true
			d.dependVar(sk, sid)
		}
		dk := key(stm.Dst)
		if a.pts(dk).AddAll(a.pts(sk)) {
			a.touchVar(dk)
		}
	case *ir.Load:
		a.loadDelta(mk, stm, sid)
	case *ir.Store:
		a.storeDelta(mk, stm, sid)
	case *ir.StaticLoad:
		st := &d.stmts[sid]
		if !st.init {
			st.init = true
			d.dependStatic(stm.Class+"."+stm.Field, sid)
		}
		dk := key(stm.Dst)
		if a.pts(dk).AddAll(a.spts(stm.Class, stm.Field)) {
			a.touchVar(dk)
		}
	case *ir.StaticStore:
		st := &d.stmts[sid]
		sk := key(stm.Src)
		if !st.init {
			st.init = true
			d.dependVar(sk, sid)
		}
		if a.spts(stm.Class, stm.Field).AddAll(a.pts(sk)) {
			a.touchStatic(stm.Class + "." + stm.Field)
		}
	case *ir.Return:
		if stm.Src == "" {
			return
		}
		st := &d.stmts[sid]
		sk := key(stm.Src)
		if !st.init {
			st.init = true
			d.dependVar(sk, sid)
		}
		dk := key(retVar)
		if a.pts(dk).AddAll(a.pts(sk)) {
			a.touchVar(dk)
		}
	case *ir.Invoke:
		a.invokeDelta(mk, stm, sid)
	}
}

// loadDelta: dst ⊇ base.field for every base object. New bases are
// expanded against their full field sets; already-seen field sets are
// re-unioned only when their version moved.
func (a *analyzer) loadDelta(mk MKey, stm *ir.Load, sid int) {
	d := a.d
	st := &d.stmts[sid]
	bk := VarKey{M: mk.M, Ctx: mk.Ctx, Var: stm.Obj}
	dk := VarKey{M: mk.M, Ctx: mk.Ctx, Var: stm.Dst}
	if !st.init {
		st.init = true
		d.dependVar(bk, sid)
	}
	// Snapshot the base delta before any union: when dst aliases base
	// ("x = x.f"), ids added below must wait for the next visit, exactly
	// as the exhaustive Slice() snapshot defers them a pass.
	d.scratch = a.pts(bk).takeDelta(&st.prev, d.scratch[:0])
	if len(st.fields) == 0 && len(d.scratch) == 0 {
		// No bases at all yet: the exhaustive loop body would not run,
		// so don't even materialize dst (keeps res.pts keys identical).
		return
	}
	dst := a.pts(dk)
	grew := false
	for i, fk := range st.fields {
		fs := a.fpts(fk)
		if v := fs.version(); v != st.fvers[i] {
			st.fvers[i] = v
			if dst.AddAll(fs) {
				grew = true
			}
		}
	}
	if len(d.scratch) > 0 {
		objs := a.in.snapshot()
		for _, id := range d.scratch {
			fk := FieldKey{Obj: objs[id], Field: stm.Field}
			fs := a.fpts(fk)
			if dst.AddAll(fs) {
				grew = true
			}
			st.fields = append(st.fields, fk)
			st.fvers = append(st.fvers, fs.version())
			d.dependField(fk, sid)
		}
	}
	if grew {
		a.touchVar(dk)
	}
}

// storeDelta: base.field ⊇ src for every base object. When src grew the
// full source re-stores into every base; otherwise only new bases need
// the union.
func (a *analyzer) storeDelta(mk MKey, stm *ir.Store, sid int) {
	d := a.d
	st := &d.stmts[sid]
	bk := VarKey{M: mk.M, Ctx: mk.Ctx, Var: stm.Obj}
	sk := VarKey{M: mk.M, Ctx: mk.Ctx, Var: stm.Src}
	first := !st.init
	if first {
		st.init = true
		d.dependVar(bk, sid)
		d.dependVar(sk, sid)
	}
	src := a.pts(sk)
	base := a.pts(bk)
	srcChanged := first || src.version() != st.srcVer
	st.srcVer = src.version()
	if srcChanged {
		d.scratch = base.bits().AppendBits(d.scratch[:0])
		st.prev.CopyFrom(base.bits())
	} else {
		d.scratch = base.takeDelta(&st.prev, d.scratch[:0])
	}
	if len(d.scratch) == 0 {
		return
	}
	objs := a.in.snapshot()
	for _, id := range d.scratch {
		fk := FieldKey{Obj: objs[id], Field: stm.Field}
		if a.fpts(fk).AddAll(src) {
			a.touchField(fk)
		}
	}
}

// invokeDelta handles dispatch and framework semantics, binding targets
// only for newly-seen receivers.
func (a *analyzer) invokeDelta(mk MKey, inv *ir.Invoke, sid int) {
	d := a.d
	key := func(v string) VarKey { return VarKey{M: mk.M, Ctx: mk.Ctx, Var: v} }
	pos := inv.Pos()

	if api, ok := frontend.Recognize(a.cfg.Prog, inv); ok {
		// Framework stubs: findViewById's effect is a one-shot constant
		// (view map and constant args are static); other recognized APIs
		// have no transfer effect (events are handled by the event
		// phase).
		st := &d.stmts[sid]
		if st.init {
			return
		}
		st.init = true
		if api.Kind == frontend.APIFindViewByID && inv.Dst != "" {
			dk := key(inv.Dst)
			for _, o := range a.viewObjs(mk.M, inv.Args[0]) {
				if a.pts(dk).Add(o) {
					a.touchVar(dk)
				}
			}
		}
		return
	}
	if inv.Class == frontend.LooperClass &&
		(inv.Method == frontend.GetMainLooper || inv.Method == frontend.MyLooper) {
		st := &d.stmts[sid]
		if st.init {
			return
		}
		st.init = true
		if inv.Dst != "" {
			dk := key(inv.Dst)
			if a.pts(dk).Add(MainLooperObj(frontend.LooperClass)) {
				a.touchVar(dk)
			}
		}
		return
	}

	site := fmt.Sprintf("%s@%d.%d", mk.M.QualifiedName(), pos.Block, pos.Index)
	if inv.Kind == ir.InvokeStatic {
		// One-shot: the target and callee context are static, and
		// bindCall is idempotent.
		st := &d.stmts[sid]
		if st.init {
			return
		}
		st.init = true
		target := a.cfg.Prog.ResolveMethod(inv.Class, inv.Method)
		ctx := a.cfg.Policy.CalleeContext(mk.Ctx, site, inv.Kind, Obj{}, false)
		ctx = a.maybeEnterAction(ctx, pos)
		a.bindCall(mk, inv, pos, target, ctx, nil)
		return
	}

	// Virtual / special dispatch over newly-seen receivers only, sorted
	// into the canonical object order so callee edges append in the same
	// sequence the exhaustive sorted full-set walk produces.
	st := &d.stmts[sid]
	rk := key(inv.Recv)
	if !st.init {
		st.init = true
		d.dependVar(rk, sid)
	}
	d.scratch = a.pts(rk).takeDelta(&st.prev, d.scratch[:0])
	if len(d.scratch) == 0 {
		return
	}
	objs := a.in.snapshot()
	recvs := make([]Obj, 0, len(d.scratch))
	for _, id := range d.scratch {
		recvs = append(recvs, objs[id])
	}
	sortObjs(recvs)
	// st must not be touched past this point: bindCall can install new
	// instances, growing d.stmts under us.
	for i := range recvs {
		o := recvs[i]
		var target *ir.Method
		if inv.Kind == ir.InvokeSpecial {
			target = a.cfg.Prog.ResolveMethod(inv.Class, inv.Method)
		} else {
			target = a.cfg.Prog.ResolveMethod(o.Class, inv.Method)
		}
		ctx := a.cfg.Policy.CalleeContext(mk.Ctx, site, inv.Kind, o, true)
		ctx = a.maybeEnterAction(ctx, pos)
		a.bindCall(mk, inv, pos, target, ctx, &o)
	}
}

// applyCopiesDelta applies only the dirty copy edges, in the same
// sorted order the exhaustive sweep uses. An edge dirtied behind the
// cursor (by a union during this sweep) stays dirty for the next pass —
// the same one-sweep-per-pass semantics the exhaustive solver has.
func (a *analyzer) applyCopiesDelta() {
	d := a.d
	if d.dirtyCopies == 0 {
		return
	}
	for _, e := range a.sortedCopies {
		if !e.dirty {
			continue
		}
		e.dirty = false
		d.dirtyCopies--
		dst := a.pts(e.dst)
		for _, s := range e.srcs {
			if dst.AddAll(a.pts(s.src)) {
				a.touchVar(e.dst)
			}
		}
	}
}

// applySeedsDelta re-applies only the seeds whose sources grew or whose
// methods gained instances, in seed order.
func (a *analyzer) applySeedsDelta() {
	d := a.d
	if d.dirtySeeds == 0 {
		return
	}
	for i := range a.cfg.Seeds {
		if !d.seedDirty[i] {
			continue
		}
		d.seedDirty[i] = false
		d.dirtySeeds--
		a.applySeed(&a.cfg.Seeds[i])
	}
}

// fireEventsDelta re-fires only the dirty event sites. The forward
// cursor re-reads the growing site list so sites of instances installed
// by earlier firings fire within the same phase, exactly like the
// exhaustive loop re-reading len(a.order).
func (a *analyzer) fireEventsDelta() {
	if a.cfg.OnEvent == nil {
		return
	}
	d := a.d
	for eid := 0; eid < len(d.evSites); eid++ {
		if !d.dirtyEv.Has(eid) {
			continue
		}
		d.dirtyEv.Clear(eid)
		if d.evSites[eid].dead {
			continue // orphaned by a warm re-slot; see evInstance.dead
		}
		a.fireEventDelta(eid)
	}
}

// fireEventDelta fires one event site with current points-to facts and
// installs any returned entries. FieldObjs reads register (deduped)
// field→event dependencies so field growth re-fires the site later.
func (a *analyzer) fireEventDelta(eid int) {
	d := a.d
	ei := d.evSites[eid]
	mk := a.order[ei.inst]
	inv := ei.site.inv
	ev := Event{
		Caller: mk, Pos: inv.Pos(), Inv: inv, API: ei.site.api,
		FieldObjs: func(o Obj, field string) []Obj {
			fk := FieldKey{Obj: o, Field: field}
			d.dependFieldEvent(fk, eid)
			return a.fpts(fk).Slice()
		},
	}
	if inv.Recv != "" {
		ev.Recv = a.pts(VarKey{M: mk.M, Ctx: mk.Ctx, Var: inv.Recv}).Slice()
	}
	for _, arg := range inv.Args {
		ev.Args = append(ev.Args, a.pts(VarKey{M: mk.M, Ctx: mk.Ctx, Var: arg}).Slice())
	}
	a.stats.eventsFired++
	for _, e := range a.cfg.OnEvent(ev) {
		if a.install(e, true) {
			d.changed = true
		}
	}
}
