package pointer

// Constraint-graph condensation for the parallel delta solver.
//
// The sweep phase of a pass reads and writes three kinds of points-to
// keys — context-sensitive variables (VarKey), object fields (collapsed
// to their field name, since the concrete FieldKeys a Store reaches
// depend on how its base set grows at run time), and static fields.
// Interning each key as a dense token and union-finding every token an
// instance's statements mention yields a partition of the instance set
// in which two instances in different partitions provably share no
// sweep-phase state: no points-to set, no dependency list, no dirty
// mark can flow between them within one pass. Those partitions are the
// units the parallel sweep hands to workers (pointer.par_partitions).
//
// The finer condensation — Tarjan SCCs of the directed read/write
// graph (instance → token it writes, token → instance that reads it) —
// is reported as pointer.scc_components. Within a partition the worker
// visits instances in ascending discovery-slot order, which the parity
// argument in DESIGN.md shows reproduces the serial sweep exactly; the
// SCC condensation is what guarantees the partitions themselves cannot
// interact.

// tokenTable interns sweep-phase points-to keys as dense token ids and
// maintains the union-find, writer tally, and reader index over them.
type tokenTable struct {
	varTok    map[VarKey]int32
	fieldTok  map[string]int32
	staticTok map[string]int32
	// parent is the union-find forest over tokens.
	parent []int32
	// writers counts static statement write sites per token (a token
	// with zero writers can never grow during a sweep).
	writers []int32
	// readers lists the instance slots whose statements read a token —
	// the token → instance edges of the SCC digraph.
	readers [][]int32
}

func newTokenTable() *tokenTable {
	return &tokenTable{
		varTok:    make(map[VarKey]int32),
		fieldTok:  make(map[string]int32),
		staticTok: make(map[string]int32),
	}
}

func (t *tokenTable) newToken() int32 {
	id := int32(len(t.parent))
	t.parent = append(t.parent, id)
	t.writers = append(t.writers, 0)
	t.readers = append(t.readers, nil)
	return id
}

func (t *tokenTable) varToken(k VarKey) int32 {
	if id, ok := t.varTok[k]; ok {
		return id
	}
	id := t.newToken()
	t.varTok[k] = id
	return id
}

func (t *tokenTable) fieldToken(name string) int32 {
	if id, ok := t.fieldTok[name]; ok {
		return id
	}
	id := t.newToken()
	t.fieldTok[name] = id
	return id
}

func (t *tokenTable) staticToken(key string) int32 {
	if id, ok := t.staticTok[key]; ok {
		return id
	}
	id := t.newToken()
	t.staticTok[key] = id
	return id
}

// find returns the token's component root with path halving.
func (t *tokenTable) find(x int32) int32 {
	for t.parent[x] != x {
		t.parent[x] = t.parent[t.parent[x]]
		x = t.parent[x]
	}
	return x
}

// union merges two token components.
func (t *tokenTable) union(a, b int32) {
	ra, rb := t.find(a), t.find(b)
	if ra != rb {
		t.parent[ra] = rb
	}
}

// sccCount runs an iterative Tarjan over the read/write digraph
// restricted to the given instance slots (the pass's active
// partitions): edges run instance → written token and token → reading
// instance. It returns the number of strongly connected components
// containing at least one instance — the pointer.scc_components
// metric, and the nodes of the condensation DAG whose topological
// structure the ascending-slot visit order refines.
func (ps *parState) sccCount(slots []int) int {
	t := ps.toks
	nSlots := len(ps.a.order)
	// Node ids: slot s is s; token tk is nSlots+tk.
	index := make(map[int]int32, 2*len(slots))
	low := make(map[int]int32, 2*len(slots))
	onStack := make(map[int]bool, 2*len(slots))
	var stack []int
	var next int32
	count := 0

	succs := func(node int) []int32 {
		if node < nSlots {
			return ps.slotWrites[node]
		}
		return t.readers[node-nSlots]
	}
	type frame struct {
		node int
		ei   int
	}
	var frames []frame

	visit := func(root int) {
		frames = frames[:0]
		frames = append(frames, frame{node: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			edges := succs(f.node)
			if f.ei < len(edges) {
				var child int
				if f.node < nSlots {
					child = nSlots + int(edges[f.ei])
				} else {
					child = int(edges[f.ei])
				}
				f.ei++
				if _, seen := index[child]; !seen {
					index[child] = next
					low[child] = next
					next++
					stack = append(stack, child)
					onStack[child] = true
					frames = append(frames, frame{node: child})
				} else if onStack[child] {
					if index[child] < low[f.node] {
						low[f.node] = index[child]
					}
				}
				continue
			}
			// Node finished: pop an SCC if it is a root.
			node := f.node
			if low[node] == index[node] {
				hasInstance := false
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					if top < nSlots {
						hasInstance = true
					}
					if top == node {
						break
					}
				}
				if hasInstance {
					count++
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[node] < low[p.node] {
					low[p.node] = low[node]
				}
			}
		}
	}

	for _, s := range slots {
		if _, seen := index[s]; !seen {
			visit(s)
		}
	}
	return count
}
