package pointer

import (
	"sync"

	"sierra/internal/bitset"
)

// Interner assigns dense uint32 ids to abstract objects, one id space
// per analysis. ObjSets store those ids in a word-packed bitset, so the
// fixpoint's set unions (Move/Load/Store transfer, copy constraints)
// and the race detector's alias tests run word-parallel instead of
// hashing Obj structs. Obj→id hashing happens only where objects enter
// the analysis (allocation sites, view inflation, seeds) — never on the
// propagation hot path.
//
// Intern is called by the single-threaded fixpoint; lookups are
// read-locked so the refuter's worker pool can resolve points-to sets
// concurrently once the analysis is frozen.
type Interner struct {
	mu   sync.RWMutex
	ids  map[Obj]uint32
	objs []Obj
}

// NewInterner returns an empty id space.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Obj]uint32)}
}

// Intern returns o's dense id, assigning the next one on first sight.
func (in *Interner) Intern(o Obj) uint32 {
	in.mu.RLock()
	id, ok := in.ids[o]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[o]; ok {
		return id
	}
	id = uint32(len(in.objs))
	in.ids[o] = id
	in.objs = append(in.objs, o)
	return id
}

// lookup returns o's id without assigning one.
func (in *Interner) lookup(o Obj) (uint32, bool) {
	in.mu.RLock()
	id, ok := in.ids[o]
	in.mu.RUnlock()
	return id, ok
}

// snapshot returns the current id→Obj table. Interned objects are
// immutable and ids append-only, so indexing a snapshot is safe while
// other goroutines intern.
func (in *Interner) snapshot() []Obj {
	in.mu.RLock()
	objs := in.objs
	in.mu.RUnlock()
	return objs
}

// NumObjs reports how many objects have been interned.
func (in *Interner) NumObjs() int {
	in.mu.RLock()
	n := len(in.objs)
	in.mu.RUnlock()
	return n
}

// NewSet returns an empty ObjSet bound to this id space.
func (in *Interner) NewSet() ObjSet {
	return ObjSet{d: &objsetData{in: in}}
}

// NewSetBacked returns an empty ObjSet bound to this id space whose bit
// storage grows into words — typically carved from a caller-owned arena
// and capacity-sized to the id space, so unions never spill to the
// heap. The words must be zeroed, and the set owns them afterwards.
func (in *Interner) NewSetBacked(words []uint64) ObjSet {
	return ObjSet{d: &objsetData{in: in, bits: bitset.Set(words[:0])}}
}

// objsetData is the shared backing of an ObjSet: copies of the ObjSet
// header alias the same data, preserving the reference semantics the
// map-based representation had.
type objsetData struct {
	in   *Interner
	bits bitset.Set
	// ver counts growth events (Add/AddAll that inserted something). The
	// delta solver compares versions to skip re-unioning sets that have
	// not grown since it last looked.
	ver uint32
}
