package pointer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// randObj builds an arbitrary abstract object from fuzz inputs.
func randObj(site int, ctx string, view uint8) Obj {
	if site%5 == 0 {
		return ViewObj(int(view), frontend.ButtonClass)
	}
	if site < 0 {
		site = -site
	}
	return Obj{Site: site % 97, Ctx: ctx, Class: "C"}
}

func TestObjSetProperties(t *testing.T) {
	add := func(sites []int16, ctx string) bool {
		s := NewInterner().NewSet()
		for _, raw := range sites {
			o := randObj(int(raw), ctx, uint8(raw))
			first := s.Add(o)
			second := s.Add(o)
			// Add is idempotent: the second insert never reports new.
			if second {
				return false
			}
			if !s.Contains(o) {
				return false
			}
			_ = first
		}
		// Slice is duplicate-free and matches the set size.
		sl := s.Slice()
		if len(sl) != s.Len() {
			return false
		}
		seen := map[Obj]bool{}
		for _, o := range sl {
			if seen[o] {
				return false
			}
			seen[o] = true
		}
		return true
	}
	if err := quick.Check(add, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectsSymmetric(t *testing.T) {
	f := func(a, b []int16) bool {
		in := NewInterner()
		sa, sb := in.NewSet(), in.NewSet()
		for _, x := range a {
			sa.Add(randObj(int(x), "", uint8(x)))
		}
		for _, x := range b {
			sb.Add(randObj(int(x), "", uint8(x)))
		}
		return sa.Intersects(sb) == sb.Intersects(sa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddAllIsUnion(t *testing.T) {
	f := func(a, b []int16) bool {
		in := NewInterner()
		sa, sb := in.NewSet(), in.NewSet()
		for _, x := range a {
			sa.Add(randObj(int(x), "x", uint8(x)))
		}
		for _, x := range b {
			sb.Add(randObj(int(x), "x", uint8(x)))
		}
		union := in.NewSet()
		union.AddAll(sa)
		union.AddAll(sb)
		// Every element of both sides is in the union, nothing else.
		if union.Len() > sa.Len()+sb.Len() {
			return false
		}
		for _, o := range sa.Slice() {
			if !union.Contains(o) {
				return false
			}
		}
		for _, o := range sb.Slice() {
			if !union.Contains(o) {
				return false
			}
		}
		// AddAll on a superset reports no change.
		return !union.AddAll(sa) && !union.AddAll(sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// mapObjSet is the naive reference implementation the bitset ObjSet
// replaced; the equivalence property below keeps the two in lockstep
// on randomized workloads.
type mapObjSet map[Obj]struct{}

func (m mapObjSet) add(o Obj) bool {
	if _, ok := m[o]; ok {
		return false
	}
	m[o] = struct{}{}
	return true
}

func (m mapObjSet) addAll(other mapObjSet) bool {
	changed := false
	for o := range other {
		if m.add(o) {
			changed = true
		}
	}
	return changed
}

func (m mapObjSet) intersects(other mapObjSet) bool {
	for o := range m {
		if _, ok := other[o]; ok {
			return true
		}
	}
	return false
}

// TestObjSetMatchesMapReference drives the bitset ObjSet and the naive
// map set through the same randomized Add/AddAll/Intersects/Contains
// sequence and requires identical observable behavior, including the
// changed-report of every mutation and the sorted Slice contents.
func TestObjSetMatchesMapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := NewInterner()
		const nsets = 4
		bs := make([]ObjSet, nsets)
		ms := make([]mapObjSet, nsets)
		for i := range bs {
			bs[i] = in.NewSet()
			ms[i] = mapObjSet{}
		}
		for op := 0; op < 300; op++ {
			i := rng.Intn(nsets)
			switch rng.Intn(4) {
			case 0:
				o := randObj(rng.Intn(200)-20, string('a'+rune(rng.Intn(3))), uint8(rng.Intn(16)))
				if bs[i].Add(o) != ms[i].add(o) {
					return false
				}
			case 1:
				j := rng.Intn(nsets)
				if bs[i].AddAll(bs[j]) != ms[i].addAll(ms[j]) {
					return false
				}
			case 2:
				j := rng.Intn(nsets)
				if bs[i].Intersects(bs[j]) != ms[i].intersects(ms[j]) {
					return false
				}
			case 3:
				o := randObj(rng.Intn(200)-20, "a", uint8(rng.Intn(16)))
				if bs[i].Contains(o) != (func() bool { _, ok := ms[i][o]; return ok })() {
					return false
				}
			}
		}
		for i := range bs {
			if bs[i].Len() != len(ms[i]) {
				return false
			}
			for _, o := range bs[i].Slice() {
				if _, ok := ms[i][o]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPushBoundsProperty(t *testing.T) {
	f := func(elems []uint8, k8 uint8) bool {
		k := int(k8%5) + 1
		chain := ""
		for _, e := range elems {
			chain = push(chain, string('a'+rune(e%26)), k)
			// The chain never exceeds k comma-separated elements.
			n := 1
			for _, c := range chain {
				if c == ',' {
					n++
				}
			}
			if chain == "" {
				n = 0
			}
			if n > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomLinearProgram builds a straight-line program with random moves,
// stores, and loads over a bounded variable set — enough to exercise the
// fixpoint's termination and monotonicity.
func randomLinearProgram(r *rand.Rand) (*ir.Program, *ir.Method) {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	c := ir.NewClass("R", frontend.Object)
	c.Fields = []string{"f", "g"}
	vars := []string{"a", "b", "c", "d"}
	b := ir.NewMethodBuilder("m")
	b.NewObj("a", "R")
	n := 4 + r.Intn(20)
	for i := 0; i < n; i++ {
		dst := vars[r.Intn(len(vars))]
		src := vars[r.Intn(len(vars))]
		switch r.Intn(4) {
		case 0:
			b.NewObj(dst, "R")
		case 1:
			b.Move(dst, src)
		case 2:
			b.Store(src, "f", dst)
		default:
			b.Load(dst, src, "f")
		}
	}
	b.Ret("")
	c.AddMethod(b.Build())
	p.AddClass(c)
	p.Finalize()
	return p, c.Methods["m"]
}

func TestAnalysisTerminatesAndIsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, m := randomLinearProgram(r)
		run := func() map[string]int {
			res := Analyze(Config{Prog: p, Policy: ActionSensitivePolicy{K: 2},
				Entries: []Entry{{Method: m, Ctx: EmptyContext}}})
			out := map[string]int{}
			for _, v := range []string{"a", "b", "c", "d"} {
				out[v] = res.PointsToAll(m, v).Len()
			}
			return out
		}
		r1, r2 := run(), run()
		for k := range r1 {
			if r1[k] != r2[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestContextPoliciesProduceBoundedContexts(t *testing.T) {
	// Policies must respect their own k bounds: the Objs/Calls strings
	// never grow beyond k elements no matter the call chain.
	pols := []Policy{KCFA{K: 2}, KObj{K: 2}, Hybrid{K: 2}, ActionSensitivePolicy{K: 2}}
	f := func(sites []uint8) bool {
		for _, pol := range pols {
			ctx := EmptyContext
			for i, s := range sites {
				recv := Obj{Site: int(s), Ctx: ctx.Objs, Class: "C"}
				kind := ir.InvokeVirtual
				if i%3 == 0 {
					kind = ir.InvokeStatic
				}
				ctx = pol.CalleeContext(ctx, string('a'+rune(s%26)), kind, recv, kind != ir.InvokeStatic)
				if countElems(ctx.Objs) > 2 || countElems(ctx.Calls) > 2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func countElems(chain string) int {
	if chain == "" {
		return 0
	}
	n := 1
	for _, c := range chain {
		if c == ',' {
			n++
		}
	}
	return n
}
