package pointer

import (
	"fmt"

	"sierra/internal/ir"
)

// Policy is a context-sensitivity policy (the paper's §3.3 knob). It
// decides the context a callee is analyzed under and the heap context of
// allocations.
type Policy interface {
	// Name identifies the policy in reports and benchmarks.
	Name() string
	// ActionSensitive reports whether action ids participate in contexts;
	// when false the engine keeps Action = NoAction everywhere.
	ActionSensitive() bool
	// CalleeContext returns the analysis context for a callee invoked at
	// call site `site` from `caller`. For virtual/special dispatch recv
	// is the receiver object (hasRecv true); static calls have none.
	CalleeContext(caller Context, site string, kind ir.InvokeKind, recv Obj, hasRecv bool) Context
	// HeapCtx returns the heap context for an allocation under ctx.
	HeapCtx(ctx Context) string
}

// Insensitive is the context-insensitive baseline.
type Insensitive struct{}

// Name implements Policy.
func (Insensitive) Name() string { return "insensitive" }

// ActionSensitive implements Policy.
func (Insensitive) ActionSensitive() bool { return false }

// CalleeContext implements Policy.
func (Insensitive) CalleeContext(Context, string, ir.InvokeKind, Obj, bool) Context {
	return EmptyContext
}

// HeapCtx implements Policy.
func (Insensitive) HeapCtx(Context) string { return "" }

// KCFA is k-call-site sensitivity (Sharir–Pnueli style call strings).
type KCFA struct{ K int }

// Name implements Policy.
func (p KCFA) Name() string { return fmt.Sprintf("%d-cfa", p.K) }

// ActionSensitive implements Policy.
func (KCFA) ActionSensitive() bool { return false }

// CalleeContext implements Policy.
func (p KCFA) CalleeContext(caller Context, site string, _ ir.InvokeKind, _ Obj, _ bool) Context {
	return Context{Action: NoAction, Calls: push(caller.Calls, site, p.K)}
}

// HeapCtx implements Policy.
func (p KCFA) HeapCtx(ctx Context) string { return ctx.Calls }

// KObj is k-object sensitivity (Milanova et al.): virtual callees are
// analyzed per receiver-object chain; static calls inherit the caller's
// object context.
type KObj struct{ K int }

// Name implements Policy.
func (p KObj) Name() string { return fmt.Sprintf("%d-obj", p.K) }

// ActionSensitive implements Policy.
func (KObj) ActionSensitive() bool { return false }

// CalleeContext implements Policy.
func (p KObj) CalleeContext(caller Context, _ string, _ ir.InvokeKind, recv Obj, hasRecv bool) Context {
	if !hasRecv {
		return Context{Action: NoAction, Objs: caller.Objs}
	}
	return Context{Action: NoAction, Objs: push(recv.Ctx, recv.id(), p.K)}
}

// HeapCtx implements Policy.
func (p KObj) HeapCtx(ctx Context) string { return ctx.Objs }

// Hybrid is the paper's hybrid context sensitivity: k-obj for dispatch
// calls, k-cfa for static invocations.
type Hybrid struct{ K int }

// Name implements Policy.
func (p Hybrid) Name() string { return fmt.Sprintf("hybrid-%d", p.K) }

// ActionSensitive implements Policy.
func (Hybrid) ActionSensitive() bool { return false }

// CalleeContext implements Policy.
func (p Hybrid) CalleeContext(caller Context, site string, kind ir.InvokeKind, recv Obj, hasRecv bool) Context {
	if kind == ir.InvokeStatic || !hasRecv {
		return Context{Action: NoAction, Objs: caller.Objs, Calls: push(caller.Calls, site, p.K)}
	}
	return Context{Action: NoAction, Objs: push(recv.Ctx, recv.id(), p.K)}
}

// HeapCtx implements Policy.
func (p Hybrid) HeapCtx(ctx Context) string {
	if ctx.Calls == "" {
		return ctx.Objs
	}
	return ctx.Objs + "/" + ctx.Calls
}

// ActionSensitivePolicy is the paper's contribution: hybrid context
// sensitivity with the current action id as an additional context
// element, so objects allocated in different actions never conflate even
// when the k-bounded suffixes coincide.
type ActionSensitivePolicy struct{ K int }

// Name implements Policy.
func (p ActionSensitivePolicy) Name() string { return fmt.Sprintf("action+hybrid-%d", p.K) }

// ActionSensitive implements Policy.
func (ActionSensitivePolicy) ActionSensitive() bool { return true }

// CalleeContext implements Policy: hybrid, with the caller's action
// propagated (the engine overrides Action at action-entry sites).
func (p ActionSensitivePolicy) CalleeContext(caller Context, site string, kind ir.InvokeKind, recv Obj, hasRecv bool) Context {
	ctx := Hybrid{p.K}.CalleeContext(caller, site, kind, recv, hasRecv)
	ctx.Action = caller.Action
	return ctx
}

// HeapCtx implements Policy: the action id prefixes the hybrid heap
// context, keeping per-action heaps apart.
func (p ActionSensitivePolicy) HeapCtx(ctx Context) string {
	inner := Hybrid{p.K}.HeapCtx(ctx)
	if ctx.Action == NoAction {
		return inner
	}
	return fmt.Sprintf("A%d|%s", ctx.Action, inner)
}

// EntryContext builds the analysis context for an action root: the
// policy's callee context for a synthetic entry dispatch, with the
// action id installed when the policy is action-sensitive.
func EntryContext(pol Policy, actionID int, recv Obj, hasRecv bool) Context {
	ctx := pol.CalleeContext(EmptyContext, "$entry", ir.InvokeVirtual, recv, hasRecv)
	if pol.ActionSensitive() {
		ctx.Action = actionID
	} else {
		ctx.Action = NoAction
	}
	return ctx
}
