package pointer

// The SCC-partitioned parallel sweep for the delta solver (Config.Jobs
// > 1). The serial delta pass has four phases — instance sweep, copy
// edges, seeds, events — and only the sweep dominates; the other three
// stay serial. Each pass the planner decides whether the sweep is
// *pure*: no dirty statement can install a new instance, register a
// copy edge, or resolve dispatch (all of which mutate global discovery
// state whose order the parity contract pins). A pure sweep touches
// only points-to sets and dependency/dirty bookkeeping, and every key
// it can touch belongs to exactly one token component (see scc.go), so
// the components are solved concurrently by workers that buffer their
// global-state writes in per-worker overlays; a deterministic merge
// then applies the overlays in worker index order. Impure passes — and
// passes with fewer than two active components — fall back to the
// byte-identical serial sweep.
//
// Parity argument (details in DESIGN.md "Multi-core kernels"):
//   - Dirty one-shot statements are always virgin (they register no
//     dependencies, so only instance registration dirties them), and
//     instances are only registered by the serial phases; therefore a
//     pure pass's set of interned objects is exactly the dirty one-shot
//     News/findViewByIds/looper-gets, which the planner pre-interns in
//     ascending (slot, statement) order — the serial sweep's order —
//     before workers start. Workers then only hit the interner's
//     read-lock fast path.
//   - A worker visits its component's slots in ascending slot order.
//     Any mid-sweep dirtying flows through a written key's consumers,
//     which share the key's token and hence its component, so slot i's
//     visible state when visited equals the serial sweep's: effects of
//     all lower slots in its own component, and nothing else.
//   - Dispatch statements whose receiver could grow mid-sweep force the
//     serial path (planner check), so the sweep never resolves targets
//     — discovery order never depends on the partitioning.

import (
	"sync"
	"time"

	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// Statement kinds, classified once per method. The planner uses them to
// detect structural statements; workers use them to dispatch transfers
// without re-running type switches and frontend.Recognize.
const (
	kOther uint8 = iota
	kNew
	kMove
	kLoad
	kStore
	kSLoad
	kSStore
	kReturn      // Return with a source
	kInvPure     // recognized framework stub other than findViewById
	kInvFVB      // findViewById
	kInvLooper   // Looper.getMainLooper / myLooper
	kInvStatic   // static invoke: structural (binds a call)
	kInvDispatch // virtual/special invoke: structural (resolves targets)
)

// parState is the persistent cross-pass state of the parallel planner.
type parState struct {
	a    *analyzer
	toks *tokenTable

	// kindsOf caches per-method statement kinds, aligned with
	// deltaState.methodStmts order.
	kindsOf map[*ir.Method][]uint8

	// nSynced counts instance slots absorbed into the token structures;
	// sync() catches up to len(a.order) at each plan.
	nSynced int

	// slotRep holds one token of each slot (-1 when the slot's
	// statements mention no points-to key); find(slotRep[s]) is the
	// slot's component.
	slotRep []int32
	// slotWrites lists each slot's written tokens (the slot → token
	// edges of the SCC digraph).
	slotWrites [][]int32
	// slotDispatch lists each slot's dispatch receiver tokens, for the
	// mid-sweep receiver-growth check.
	slotDispatch [][]int32

	workers []*parWorker

	// Per-pass scratch.
	dirtySlots  []int
	tokenless   []int
	activeSlots []int
	activeRoots map[int32]bool
	compIdx     map[int32]int
	comps       [][]int

	// Metric accumulators, reported once after the fixpoint.
	partitions int64
	sccs       int64
}

func newParState(a *analyzer) *parState {
	return &parState{
		a:           a,
		toks:        newTokenTable(),
		kindsOf:     make(map[*ir.Method][]uint8, a.hintMethods),
		activeRoots: make(map[int32]bool),
		compIdx:     make(map[int32]int),
	}
}

// reportObs publishes the partitioning counters (only ever non-zero
// when a parallel sweep actually ran, so Jobs≤1 runs emit nothing).
func (ps *parState) reportObs() {
	tr := ps.a.cfg.Obs
	if tr == nil || ps.partitions == 0 {
		return
	}
	tr.Count("pointer.par_partitions", ps.partitions)
	tr.Count("pointer.scc_components", ps.sccs)
}

// methodKinds classifies a method's statements (cached).
func (ps *parState) methodKinds(m *ir.Method) []uint8 {
	if ks, ok := ps.kindsOf[m]; ok {
		return ks
	}
	stmts := ps.a.d.methodStmts(m)
	ks := make([]uint8, len(stmts))
	for i, s := range stmts {
		switch stm := s.(type) {
		case *ir.New:
			ks[i] = kNew
		case *ir.Move:
			ks[i] = kMove
		case *ir.Load:
			ks[i] = kLoad
		case *ir.Store:
			ks[i] = kStore
		case *ir.StaticLoad:
			ks[i] = kSLoad
		case *ir.StaticStore:
			ks[i] = kSStore
		case *ir.Return:
			if stm.Src != "" {
				ks[i] = kReturn
			}
		case *ir.Invoke:
			if api, ok := frontend.Recognize(ps.a.cfg.Prog, stm); ok {
				if api.Kind == frontend.APIFindViewByID {
					ks[i] = kInvFVB
				} else {
					ks[i] = kInvPure
				}
			} else if stm.Class == frontend.LooperClass &&
				(stm.Method == frontend.GetMainLooper || stm.Method == frontend.MyLooper) {
				ks[i] = kInvLooper
			} else if stm.Kind == ir.InvokeStatic {
				ks[i] = kInvStatic
			} else {
				ks[i] = kInvDispatch
			}
		}
	}
	ps.kindsOf[m] = ks
	return ks
}

// sync absorbs instance slots registered since the last plan: interns
// their tokens, unions each slot's tokens into one component, and
// indexes writers/readers for the structural check and the SCC metric.
func (ps *parState) sync() {
	a := ps.a
	for s := ps.nSynced; s < len(a.order); s++ {
		mk := a.order[s]
		stmts := a.d.methodStmts(mk.M)
		kinds := ps.methodKinds(mk.M)
		vk := func(v string) int32 {
			return ps.toks.varToken(VarKey{M: mk.M, Ctx: mk.Ctx, Var: v})
		}
		var all, writes, dispatch []int32
		read := func(t int32) {
			all = append(all, t)
			ps.toks.readers[t] = append(ps.toks.readers[t], int32(s))
		}
		write := func(t int32) {
			all = append(all, t)
			writes = append(writes, t)
			ps.toks.writers[t]++
		}
		for i, stmt := range stmts {
			switch kinds[i] {
			case kNew:
				write(vk(stmt.(*ir.New).Dst))
			case kMove:
				stm := stmt.(*ir.Move)
				read(vk(stm.Src))
				write(vk(stm.Dst))
			case kLoad:
				stm := stmt.(*ir.Load)
				read(vk(stm.Obj))
				read(ps.toks.fieldToken(stm.Field))
				write(vk(stm.Dst))
			case kStore:
				stm := stmt.(*ir.Store)
				read(vk(stm.Obj))
				read(vk(stm.Src))
				write(ps.toks.fieldToken(stm.Field))
			case kSLoad:
				stm := stmt.(*ir.StaticLoad)
				read(ps.toks.staticToken(stm.Class + "." + stm.Field))
				write(vk(stm.Dst))
			case kSStore:
				stm := stmt.(*ir.StaticStore)
				read(vk(stm.Src))
				write(ps.toks.staticToken(stm.Class + "." + stm.Field))
			case kReturn:
				read(vk(stmt.(*ir.Return).Src))
				write(vk(retVar))
			case kInvFVB, kInvLooper:
				if dst := stmt.(*ir.Invoke).Dst; dst != "" {
					write(vk(dst))
				}
			case kInvDispatch:
				t := vk(stmt.(*ir.Invoke).Recv)
				read(t)
				dispatch = append(dispatch, t)
			}
		}
		rep := int32(-1)
		if len(all) > 0 {
			rep = all[0]
			for _, t := range all[1:] {
				ps.toks.union(rep, t)
			}
		}
		ps.slotRep = append(ps.slotRep, rep)
		ps.slotWrites = append(ps.slotWrites, writes)
		ps.slotDispatch = append(ps.slotDispatch, dispatch)
	}
	ps.nSynced = len(a.order)
}

// hasDirtyStructural reports whether any dirty statement of a slot is a
// static invoke or a dispatch (either would bind calls this pass).
func (ps *parState) hasDirtyStructural(slot int) bool {
	a := ps.a
	d := a.d
	mk := a.order[slot]
	kinds := ps.methodKinds(mk.M)
	base := d.instBase[slot]
	for si := range kinds {
		if !d.dirtyStmt.Has(base + si) {
			continue
		}
		if k := kinds[si]; k == kInvStatic || k == kInvDispatch {
			return true
		}
	}
	return false
}

// preIntern interns, in statement order, every object a slot's dirty
// one-shot statements will create — reproducing the interner id order
// of the serial sweep before any worker runs.
func (ps *parState) preIntern(slot int) {
	a := ps.a
	d := a.d
	mk := a.order[slot]
	kinds := ps.methodKinds(mk.M)
	stmts := d.methodStmts(mk.M)
	base := d.instBase[slot]
	for si, kind := range kinds {
		switch kind {
		case kNew, kInvFVB, kInvLooper:
		default:
			continue
		}
		sid := base + si
		if !d.dirtyStmt.Has(sid) || d.stmts[sid].init {
			continue
		}
		switch kind {
		case kNew:
			stm := stmts[si].(*ir.New)
			a.in.Intern(Obj{Site: stm.Site, Ctx: a.cfg.Policy.HeapCtx(mk.Ctx), Class: stm.Class})
		case kInvFVB:
			inv := stmts[si].(*ir.Invoke)
			if inv.Dst != "" {
				for _, o := range a.viewObjs(mk.M, inv.Args[0]) {
					a.in.Intern(o)
				}
			}
		case kInvLooper:
			if stmts[si].(*ir.Invoke).Dst != "" {
				a.in.Intern(MainLooperObj(frontend.LooperClass))
			}
		}
	}
}

// tryPass plans one pass. If the sweep is pure and spans at least two
// active components it runs the partitioned sweep and returns true;
// otherwise it returns false with no solver state touched, and the
// caller runs the serial sweep.
func (ps *parState) tryPass() bool {
	a := ps.a
	d := a.d
	ps.sync()

	ps.dirtySlots = ps.dirtySlots[:0]
	d.dirtyInst.ForEach(func(i int) {
		ps.dirtySlots = append(ps.dirtySlots, i)
	})
	if len(ps.dirtySlots) == 0 {
		return false
	}
	// Structural check (a): a dirty static-invoke or dispatch statement
	// would bind calls during the sweep.
	for _, slot := range ps.dirtySlots {
		if ps.hasDirtyStructural(slot) {
			return false
		}
	}
	// Active components, keyed by union-find root.
	clear(ps.activeRoots)
	for _, slot := range ps.dirtySlots {
		if rep := ps.slotRep[slot]; rep >= 0 {
			ps.activeRoots[ps.toks.find(rep)] = true
		}
	}
	// Structural check (b): a clean dispatch statement whose receiver
	// token can grow inside an active component would be dirtied — and,
	// in the serial sweep, run — mid-pass.
	for _, dts := range ps.slotDispatch {
		for _, t := range dts {
			if ps.toks.writers[t] > 0 && ps.activeRoots[ps.toks.find(t)] {
				return false
			}
		}
	}
	// Group the active components in first-slot order; collect dirty
	// tokenless slots (pure no-ops, processed inline).
	ps.tokenless = ps.tokenless[:0]
	for _, slot := range ps.dirtySlots {
		if ps.slotRep[slot] == -1 {
			ps.tokenless = append(ps.tokenless, slot)
		}
	}
	clear(ps.compIdx)
	ps.comps = ps.comps[:0]
	ps.activeSlots = ps.activeSlots[:0]
	for slot := 0; slot < len(a.order); slot++ {
		rep := ps.slotRep[slot]
		if rep < 0 {
			continue
		}
		root := ps.toks.find(rep)
		if !ps.activeRoots[root] {
			continue
		}
		ci, ok := ps.compIdx[root]
		if !ok {
			ci = len(ps.comps)
			ps.compIdx[root] = ci
			ps.comps = append(ps.comps, nil)
		}
		ps.comps[ci] = append(ps.comps[ci], slot)
		ps.activeSlots = append(ps.activeSlots, slot)
	}
	if len(ps.comps) < 2 {
		return false
	}

	// Committed: this pass runs partitioned.
	ps.partitions += int64(len(ps.comps))
	ps.sccs += int64(ps.sccCount(ps.activeSlots))
	for _, slot := range ps.dirtySlots {
		ps.preIntern(slot)
	}
	processed := int64(0)
	for _, slot := range ps.tokenless {
		d.dirtyInst.Clear(slot)
		a.stats.dirtyInstances++
		processed++
		a.processInstanceDelta(slot)
	}

	jobs := a.cfg.Jobs
	if jobs > len(ps.comps) {
		jobs = len(ps.comps)
	}
	for len(ps.workers) < jobs {
		ps.workers = append(ps.workers, newParWorker(ps))
	}
	var wg sync.WaitGroup
	for wi := 0; wi < jobs; wi++ {
		w := ps.workers[wi]
		w.reset()
		wg.Add(1)
		go func(w *parWorker, wi int) {
			defer wg.Done()
			for ci := wi; ci < len(ps.comps); ci += jobs {
				if ctxDone(a.cfg.Ctx) {
					w.interrupted = true
					return
				}
				w.runComponent(ps.comps[ci])
			}
		}(w, wi)
	}
	wg.Wait()

	// Deterministic merge, in worker index order.
	start := time.Now()
	for wi := 0; wi < jobs; wi++ {
		w := ps.workers[wi]
		for k, s := range w.ptsOv {
			a.res.pts[k] = s
		}
		for k, s := range w.fptsOv {
			a.res.fpts[k] = s
		}
		for k, s := range w.sptsOv {
			a.res.spts[k] = s
		}
		for k, c := range w.varDepOv {
			gc := d.varCons(k)
			gc.stmts = append(gc.stmts, c.stmts...)
		}
		for k, c := range w.fieldDepOv {
			gc := d.fieldCons(k)
			gc.stmts = append(gc.stmts, c.stmts...)
		}
		for k, c := range w.staticDepOv {
			gc := d.staticCons(k)
			gc.stmts = append(gc.stmts, c.stmts...)
		}
		d.nDeps += w.newDeps
		for sid, v := range w.stmtOv {
			if v {
				d.dirtyStmt.Add(sid)
			} else {
				d.dirtyStmt.Clear(sid)
			}
		}
		for i, v := range w.instOv {
			if v {
				d.dirtyInst.Add(i)
			} else {
				d.dirtyInst.Clear(i)
			}
		}
		for _, eid := range w.evMarks {
			d.dirtyEv.Add(eid)
		}
		for _, si := range w.seedMarks {
			if !d.seedDirty[si] {
				d.seedDirty[si] = true
				d.dirtySeeds++
			}
		}
		for _, e := range w.copyMarks {
			if !e.dirty {
				e.dirty = true
				d.dirtyCopies++
			}
		}
		if w.changed {
			d.changed = true
		}
		if w.interrupted {
			a.res.Interrupted = true
		}
		a.stats.dirtyInstances += w.processed
		a.stats.deltaProps += w.props
		processed += w.processed
	}
	if tr := a.cfg.Obs; tr != nil {
		tr.Observe("pointer.par_merge_ms", float64(time.Since(start))/1e6)
	}
	// The serial sweep visits every slot; slots neither processed here
	// nor dirtied mid-sweep would have been skips.
	a.stats.iterations += int64(len(a.order))
	a.stats.transferSkips += int64(len(a.order)) - processed
	return true
}

// parWorker executes components of a pure pass. It mutates existing
// points-to sets and per-statement state in place (exclusive to its
// component) and buffers every global-structure write in overlays the
// merge phase applies.
type parWorker struct {
	a  *analyzer
	ps *parState

	// Overlay maps for keys materialized this pass.
	ptsOv  map[VarKey]ObjSet
	fptsOv map[FieldKey]ObjSet
	sptsOv map[string]ObjSet

	// Overlay dependency registrations (appended to the global lists at
	// merge; component exclusivity keeps per-key order serial-identical).
	varDepOv    map[VarKey]*consumers
	fieldDepOv  map[FieldKey]*consumers
	staticDepOv map[string]*consumers

	// Overlay dirty bits: entries shadow the (unmutated) global bitsets.
	instOv map[int]bool
	stmtOv map[int]bool

	evMarks   []int
	seedMarks []int
	copyMarks []*copyEdge

	scratch []int
	polls   int

	newDeps     int
	processed   int64
	props       int64
	changed     bool
	interrupted bool
}

func newParWorker(ps *parState) *parWorker {
	return &parWorker{
		a:           ps.a,
		ps:          ps,
		ptsOv:       make(map[VarKey]ObjSet),
		fptsOv:      make(map[FieldKey]ObjSet),
		sptsOv:      make(map[string]ObjSet),
		varDepOv:    make(map[VarKey]*consumers),
		fieldDepOv:  make(map[FieldKey]*consumers),
		staticDepOv: make(map[string]*consumers),
		instOv:      make(map[int]bool),
		stmtOv:      make(map[int]bool),
	}
}

func (w *parWorker) reset() {
	clear(w.ptsOv)
	clear(w.fptsOv)
	clear(w.sptsOv)
	clear(w.varDepOv)
	clear(w.fieldDepOv)
	clear(w.staticDepOv)
	clear(w.instOv)
	clear(w.stmtOv)
	w.evMarks = w.evMarks[:0]
	w.seedMarks = w.seedMarks[:0]
	w.copyMarks = w.copyMarks[:0]
	w.newDeps, w.polls = 0, 0
	w.processed, w.props = 0, 0
	w.changed, w.interrupted = false, false
}

func (w *parWorker) instDirty(i int) bool {
	if v, ok := w.instOv[i]; ok {
		return v
	}
	return w.a.d.dirtyInst.Has(i)
}

func (w *parWorker) stmtDirty(sid int) bool {
	if v, ok := w.stmtOv[sid]; ok {
		return v
	}
	return w.a.d.dirtyStmt.Has(sid)
}

// runComponent sweeps one component's slots in ascending order — the
// serial sweep's visit order restricted to the component.
func (w *parWorker) runComponent(slots []int) {
	for _, slot := range slots {
		w.polls++
		if w.polls%ctxStride == 0 && ctxDone(w.a.cfg.Ctx) {
			w.interrupted = true
			return
		}
		if !w.instDirty(slot) {
			continue
		}
		w.instOv[slot] = false
		w.processed++
		w.processInstance(slot)
	}
}

func (w *parWorker) processInstance(slot int) {
	a := w.a
	d := a.d
	mk := a.order[slot]
	base := d.instBase[slot]
	kinds := w.ps.kindsOf[mk.M]
	for si, s := range d.methodStmts(mk.M) {
		sid := base + si
		if !w.stmtDirty(sid) {
			continue
		}
		w.stmtOv[sid] = false
		w.props++
		w.transfer(mk, s, sid, kinds[si])
	}
}

// transfer mirrors transferDelta for the pure statement kinds. The
// planner guarantees no structural kind is ever dirty here.
func (w *parWorker) transfer(mk MKey, s ir.Stmt, sid int, kind uint8) {
	a := w.a
	d := a.d
	key := func(v string) VarKey { return VarKey{M: mk.M, Ctx: mk.Ctx, Var: v} }
	switch kind {
	case kNew:
		st := &d.stmts[sid]
		if st.init {
			return
		}
		st.init = true
		stm := s.(*ir.New)
		k := key(stm.Dst)
		o := Obj{Site: stm.Site, Ctx: a.cfg.Policy.HeapCtx(mk.Ctx), Class: stm.Class}
		if w.pts(k).Add(o) {
			w.touchVar(k)
		}
	case kMove:
		st := &d.stmts[sid]
		stm := s.(*ir.Move)
		sk := key(stm.Src)
		if !st.init {
			st.init = true
			w.dependVar(sk, sid)
		}
		dk := key(stm.Dst)
		if w.pts(dk).AddAll(w.pts(sk)) {
			w.touchVar(dk)
		}
	case kLoad:
		w.load(mk, s.(*ir.Load), sid)
	case kStore:
		w.store(mk, s.(*ir.Store), sid)
	case kSLoad:
		st := &d.stmts[sid]
		stm := s.(*ir.StaticLoad)
		if !st.init {
			st.init = true
			w.dependStatic(stm.Class+"."+stm.Field, sid)
		}
		dk := key(stm.Dst)
		if w.pts(dk).AddAll(w.spts(stm.Class, stm.Field)) {
			w.touchVar(dk)
		}
	case kSStore:
		st := &d.stmts[sid]
		stm := s.(*ir.StaticStore)
		sk := key(stm.Src)
		if !st.init {
			st.init = true
			w.dependVar(sk, sid)
		}
		if w.spts(stm.Class, stm.Field).AddAll(w.pts(sk)) {
			w.touchStatic(stm.Class + "." + stm.Field)
		}
	case kReturn:
		st := &d.stmts[sid]
		stm := s.(*ir.Return)
		sk := key(stm.Src)
		if !st.init {
			st.init = true
			w.dependVar(sk, sid)
		}
		dk := key(retVar)
		if w.pts(dk).AddAll(w.pts(sk)) {
			w.touchVar(dk)
		}
	case kInvPure, kInvFVB, kInvLooper:
		st := &d.stmts[sid]
		if st.init {
			return
		}
		st.init = true
		inv := s.(*ir.Invoke)
		if inv.Dst == "" {
			return
		}
		dk := key(inv.Dst)
		switch kind {
		case kInvFVB:
			for _, o := range a.viewObjs(mk.M, inv.Args[0]) {
				if w.pts(dk).Add(o) {
					w.touchVar(dk)
				}
			}
		case kInvLooper:
			if w.pts(dk).Add(MainLooperObj(frontend.LooperClass)) {
				w.touchVar(dk)
			}
		}
	case kInvStatic, kInvDispatch:
		panic("pointer: structural statement reached a pure parallel sweep")
	}
}

// load mirrors loadDelta with overlay lookups and buffered marks.
func (w *parWorker) load(mk MKey, stm *ir.Load, sid int) {
	a := w.a
	st := &a.d.stmts[sid]
	bk := VarKey{M: mk.M, Ctx: mk.Ctx, Var: stm.Obj}
	dk := VarKey{M: mk.M, Ctx: mk.Ctx, Var: stm.Dst}
	if !st.init {
		st.init = true
		w.dependVar(bk, sid)
	}
	w.scratch = w.pts(bk).takeDelta(&st.prev, w.scratch[:0])
	if len(st.fields) == 0 && len(w.scratch) == 0 {
		return
	}
	dst := w.pts(dk)
	grew := false
	for i, fk := range st.fields {
		fs := w.fpts(fk)
		if v := fs.version(); v != st.fvers[i] {
			st.fvers[i] = v
			if dst.AddAll(fs) {
				grew = true
			}
		}
	}
	if len(w.scratch) > 0 {
		objs := a.in.snapshot()
		for _, id := range w.scratch {
			fk := FieldKey{Obj: objs[id], Field: stm.Field}
			fs := w.fpts(fk)
			if dst.AddAll(fs) {
				grew = true
			}
			st.fields = append(st.fields, fk)
			st.fvers = append(st.fvers, fs.version())
			w.dependField(fk, sid)
		}
	}
	if grew {
		w.touchVar(dk)
	}
}

// store mirrors storeDelta with overlay lookups and buffered marks.
func (w *parWorker) store(mk MKey, stm *ir.Store, sid int) {
	a := w.a
	st := &a.d.stmts[sid]
	bk := VarKey{M: mk.M, Ctx: mk.Ctx, Var: stm.Obj}
	sk := VarKey{M: mk.M, Ctx: mk.Ctx, Var: stm.Src}
	first := !st.init
	if first {
		st.init = true
		w.dependVar(bk, sid)
		w.dependVar(sk, sid)
	}
	src := w.pts(sk)
	base := w.pts(bk)
	srcChanged := first || src.version() != st.srcVer
	st.srcVer = src.version()
	if srcChanged {
		w.scratch = base.bits().AppendBits(w.scratch[:0])
		st.prev.CopyFrom(base.bits())
	} else {
		w.scratch = base.takeDelta(&st.prev, w.scratch[:0])
	}
	if len(w.scratch) == 0 {
		return
	}
	objs := a.in.snapshot()
	for _, id := range w.scratch {
		fk := FieldKey{Obj: objs[id], Field: stm.Field}
		if w.fpts(fk).AddAll(src) {
			w.touchField(fk)
		}
	}
}

// pts / fpts / spts look a key up in the global maps, then the overlay,
// materializing missing sets in the overlay (so the global key set
// after merge is identical to the serial sweep's).
func (w *parWorker) pts(k VarKey) ObjSet {
	if s, ok := w.a.res.pts[k]; ok {
		return s
	}
	if s, ok := w.ptsOv[k]; ok {
		return s
	}
	s := w.a.in.NewSet()
	w.ptsOv[k] = s
	return s
}

func (w *parWorker) fpts(k FieldKey) ObjSet {
	if s, ok := w.a.res.fpts[k]; ok {
		return s
	}
	if s, ok := w.fptsOv[k]; ok {
		return s
	}
	s := w.a.in.NewSet()
	w.fptsOv[k] = s
	return s
}

func (w *parWorker) spts(cls, field string) ObjSet {
	key := cls + "." + field
	if s, ok := w.a.res.spts[key]; ok {
		return s
	}
	if s, ok := w.sptsOv[key]; ok {
		return s
	}
	s := w.a.in.NewSet()
	w.sptsOv[key] = s
	return s
}

func (w *parWorker) dependVar(k VarKey, sid int) {
	c := w.varDepOv[k]
	if c == nil {
		c = &consumers{}
		w.varDepOv[k] = c
	}
	c.stmts = append(c.stmts, sid)
	w.newDeps++
}

func (w *parWorker) dependField(k FieldKey, sid int) {
	c := w.fieldDepOv[k]
	if c == nil {
		c = &consumers{}
		w.fieldDepOv[k] = c
	}
	c.stmts = append(c.stmts, sid)
	w.newDeps++
}

func (w *parWorker) dependStatic(key string, sid int) {
	c := w.staticDepOv[key]
	if c == nil {
		c = &consumers{}
		w.staticDepOv[key] = c
	}
	c.stmts = append(c.stmts, sid)
	w.newDeps++
}

// markCons dirties a key's consuming statements (in the overlay) and
// buffers its event marks for the merge.
func (w *parWorker) markCons(c *consumers) {
	d := w.a.d
	for _, sid := range c.stmts {
		w.stmtOv[sid] = true
		w.instOv[d.stmtInst[sid]] = true
	}
	for _, eid := range c.events {
		w.evMarks = append(w.evMarks, eid)
	}
}

func (w *parWorker) touchVar(k VarKey) {
	w.changed = true
	d := w.a.d
	if c := d.varDeps[k]; c != nil {
		w.markCons(c)
	}
	if c := w.varDepOv[k]; c != nil {
		w.markCons(c)
	}
	for _, e := range d.copyIndex[k] {
		if !e.dirty {
			w.copyMarks = append(w.copyMarks, e)
		}
	}
	if idxs := d.seedSrc[seedVar{M: k.M, V: k.Var}]; len(idxs) > 0 {
		w.seedMarks = append(w.seedMarks, idxs...)
	}
}

func (w *parWorker) touchField(k FieldKey) {
	w.changed = true
	d := w.a.d
	if c := d.fieldDeps[k]; c != nil {
		w.markCons(c)
	}
	if c := w.fieldDepOv[k]; c != nil {
		w.markCons(c)
	}
}

func (w *parWorker) touchStatic(key string) {
	w.changed = true
	d := w.a.d
	if c := d.staticDeps[key]; c != nil {
		w.markCons(c)
	}
	if c := w.staticDepOv[key]; c != nil {
		w.markCons(c)
	}
}
