package pointer

import (
	"sort"
	"sync"

	"sierra/internal/ir"
)

// Result holds the points-to sets and the context-sensitive call graph
// produced by Analyze.
type Result struct {
	Policy Policy
	// Interrupted marks that the fixpoint stopped early because the
	// configured context was cancelled: every recorded fact is real, but
	// the call graph and points-to sets may be incomplete.
	Interrupted bool

	in        *Interner
	pts       map[VarKey]ObjSet
	fpts      map[FieldKey]ObjSet
	spts      map[string]ObjSet
	instances map[MKey]bool
	callees   map[siteKey][]MKey
	entryKeys []MKey
	passes    int

	// cmOnce/cmByPos back CalleeMethods: the context-insensitive
	// pos → sorted-methods view is a pure function of the (immutable)
	// callee map, computed once per Result and shared read-only.
	cmOnce  sync.Once
	cmByPos map[ir.Pos][]*ir.Method
}

// NewObjSet returns an empty mutable set in this result's dense-id
// space — the constructor downstream consumers (race, symexec) use to
// union points-to sets word-parallel.
func (r *Result) NewObjSet() ObjSet { return r.in.NewSet() }

// Interner exposes the result's id space (for equivalence tests and
// diagnostics).
func (r *Result) Interner() *Interner { return r.in }

// PointsTo returns the points-to set of variable v in method m under ctx
// (nil-safe: missing keys yield an empty set).
func (r *Result) PointsTo(m *ir.Method, ctx Context, v string) ObjSet {
	return r.pts[VarKey{M: m, Ctx: ctx, Var: v}]
}

// PointsToAll unions v's points-to sets across every context of m.
func (r *Result) PointsToAll(m *ir.Method, v string) ObjSet {
	out := r.in.NewSet()
	for mk := range r.instances {
		if mk.M == m {
			out.AddAll(r.pts[VarKey{M: m, Ctx: mk.Ctx, Var: v}])
		}
	}
	return out
}

// FieldPointsTo returns what obj.field may point to.
func (r *Result) FieldPointsTo(obj Obj, field string) ObjSet {
	return r.fpts[FieldKey{Obj: obj, Field: field}]
}

// StaticPointsTo returns what the static field cls.field may point to.
func (r *Result) StaticPointsTo(cls, field string) ObjSet {
	return r.spts[cls+"."+field]
}

// Instances returns every discovered method instance, sorted.
func (r *Result) Instances() []MKey {
	out := make([]MKey, 0, len(r.instances))
	for mk := range r.instances {
		out = append(out, mk)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// InstancesOf returns the discovered instances of one method.
func (r *Result) InstancesOf(m *ir.Method) []MKey {
	var out []MKey
	for mk := range r.instances {
		if mk.M == m {
			out = append(out, mk)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// NumInstances reports the call-graph node count.
func (r *Result) NumInstances() int { return len(r.instances) }

// Entries returns the root instances (analysis entrypoints, including
// action roots installed by the OnEvent hook).
func (r *Result) Entries() []MKey { return r.entryKeys }

// CalleesAt returns the callee instances of the call at pos inside the
// caller instance.
func (r *Result) CalleesAt(caller MKey, pos ir.Pos) []MKey {
	return r.callees[siteKey{Caller: caller, Pos: pos}]
}

// ReachableFrom returns the instance set reachable from the given roots
// over call edges (roots included).
func (r *Result) ReachableFrom(roots ...MKey) map[MKey]bool {
	seen := make(map[MKey]bool)
	var work []MKey
	for _, root := range roots {
		if r.instances[root] && !seen[root] {
			seen[root] = true
			work = append(work, root)
		}
	}
	for len(work) > 0 {
		mk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, blk := range mk.M.Blocks {
			for _, s := range blk.Stmts {
				if _, ok := s.(*ir.Invoke); !ok {
					continue
				}
				for _, callee := range r.callees[siteKey{Caller: mk, Pos: s.Pos()}] {
					if !seen[callee] {
						seen[callee] = true
						work = append(work, callee)
					}
				}
			}
		}
	}
	return seen
}

// Passes reports how many global fixpoint passes the analysis took.
func (r *Result) Passes() int { return r.passes }

// CalleeMethods flattens CalleesAt to methods — the shape the ICFG
// needs. The pos → sorted-methods view is computed once per Result
// (every refuter built over the same analysis shares it read-only).
func (r *Result) CalleeMethods() func(ir.Pos) []*ir.Method {
	r.cmOnce.Do(func() {
		// Precompute: pos -> methods (context-insensitively joined).
		byPos := make(map[ir.Pos]map[*ir.Method]bool)
		for sk, callees := range r.callees {
			set := byPos[sk.Pos]
			if set == nil {
				set = make(map[*ir.Method]bool)
				byPos[sk.Pos] = set
			}
			for _, c := range callees {
				set[c.M] = true
			}
		}
		r.cmByPos = make(map[ir.Pos][]*ir.Method, len(byPos))
		for p, set := range byPos {
			out := make([]*ir.Method, 0, len(set))
			for m := range set {
				out = append(out, m)
			}
			sort.Slice(out, func(i, j int) bool {
				return out[i].QualifiedName() < out[j].QualifiedName()
			})
			r.cmByPos[p] = out
		}
	})
	byPos := r.cmByPos
	return func(p ir.Pos) []*ir.Method { return byPos[p] }
}

// ApproxBytes estimates the result's resident memory: bitset words of
// every points-to set plus flat per-entry overhead for the index maps
// and the call graph. It deliberately overcounts a little (map buckets,
// interner strings) rather than undercount — the serve baseline pool
// uses it as an eviction budget, where "approximately right and stable"
// beats exact.
func (r *Result) ApproxBytes() int64 {
	const entryOverhead = 96 // map bucket share + key + ObjSet header
	var b int64
	for _, s := range r.pts {
		b += int64(s.Words())*8 + entryOverhead
	}
	for _, s := range r.fpts {
		b += int64(s.Words())*8 + entryOverhead
	}
	for _, s := range r.spts {
		b += int64(s.Words())*8 + entryOverhead
	}
	b += int64(len(r.instances)) * 64
	for _, c := range r.callees {
		b += int64(len(c))*24 + 64
	}
	b += int64(len(r.entryKeys)) * 24
	return b
}
