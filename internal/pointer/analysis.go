package pointer

import (
	"context"
	"fmt"
	"sort"

	"sierra/internal/frontend"
	"sierra/internal/ir"
	"sierra/internal/obs"
)

// Entry is an analysis entrypoint: a method instance with seeded
// receiver/parameter points-to sets. Harness mains and action roots are
// entries.
type Entry struct {
	Method *ir.Method
	Ctx    Context
	// This seeds the receiver variable.
	This []Obj
	// ParamObjs seeds parameters with objects directly.
	ParamObjs map[string][]Obj
	// ParamFrom installs persistent copy constraints param ⊆ src, e.g.
	// handleMessage's msg parameter from the sendMessage argument.
	ParamFrom map[string]VarKey
}

// Seed is a cross-context copy constraint: the points-to set of
// (SrcMethod, SrcVar) under every context flows into (DstMethod, DstVar)
// under every context. Harness GUI receiver variables are seeded this
// way from listener-registration arguments.
type Seed struct {
	SrcMethod *ir.Method
	SrcVar    string
	DstMethod *ir.Method
	DstVar    string
}

// Event is a recognized framework API call observed during the analysis,
// with the current points-to sets of its receiver and arguments. The
// OnEvent hook turns spawn events into new analysis entries (action
// roots) and records HB bookkeeping.
type Event struct {
	Caller MKey
	Pos    ir.Pos
	Inv    *ir.Invoke
	API    frontend.APICall
	Recv   []Obj
	Args   [][]Obj
	// FieldObjs reads the current points-to set of an object's field —
	// e.g. resolving an Intent's target activity at startActivity sites.
	FieldObjs func(Obj, string) []Obj
}

// Solver selects the fixpoint strategy. Both solvers compute the exact
// same Result — same points-to sets, same instance/entry discovery
// order, same call-edge order, same pass count — the difference is only
// how much no-op work each pass re-does.
type Solver string

const (
	// SolverDelta is the difference-propagation worklist solver (the
	// default): it tracks which points-to keys grew, maintains a
	// dependency index from keys to the statements / copy edges / seeds /
	// event sites that consume them, and only re-runs transfer functions
	// whose inputs actually changed.
	SolverDelta Solver = "delta"
	// SolverExhaustive re-runs every statement of every instance each
	// pass — the simple reference solver kept as an escape hatch and as
	// the parity oracle for the delta solver's tests.
	SolverExhaustive Solver = "exhaustive"
)

// ParseSolver validates a -pta-solver flag value ("" means the default,
// delta).
func ParseSolver(s string) (Solver, error) {
	switch Solver(s) {
	case "", SolverDelta:
		return SolverDelta, nil
	case SolverExhaustive:
		return SolverExhaustive, nil
	}
	return "", fmt.Errorf("unknown points-to solver %q (want %q or %q)", s, SolverDelta, SolverExhaustive)
}

// Config parameterizes Analyze.
type Config struct {
	Prog   *ir.Program
	Policy Policy
	// Solver picks the fixpoint strategy; the zero value means
	// SolverDelta. Results are identical either way.
	Solver Solver
	// Entries are the initial roots (typically the harness mains).
	Entries []Entry
	// Seeds are cross-context copy constraints.
	Seeds []Seed
	// Views maps layout view ids to view classes for findViewById.
	Views map[int]string
	// OnEvent, when set, is consulted for every recognized framework API
	// call each pass. It must be idempotent: the engine re-fires events
	// as points-to sets grow.
	OnEvent func(Event) []Entry
	// ActionAt maps a call site to the action id entered when the callee
	// runs (harness lifecycle/GUI sites). Under action-sensitive
	// policies the callee context's Action is set accordingly.
	ActionAt func(ir.Pos) (int, bool)
	// MaxPasses bounds the global fixpoint (safety valve; 0 = default).
	MaxPasses int
	// Jobs bounds the delta solver's worker count for the
	// SCC-partitioned parallel sweep; ≤1 (the zero value) runs the
	// exact legacy serial path, and the exhaustive solver ignores it.
	// Results are bit-for-bit identical at every count.
	Jobs int
	// Ctx, when non-nil, is polled at pass boundaries and every
	// ctxStride instances within a pass; once done the fixpoint stops
	// early and the result is marked Interrupted (sound for the facts
	// derived so far, but incomplete).
	Ctx context.Context
	// Obs, when non-nil, receives the analysis effort counters
	// (pointer.* — see README.md "Observability"). Nil costs nothing.
	Obs *obs.Trace
}

// Analyze runs the points-to analysis to fixpoint and returns the result
// (points-to sets plus the context-sensitive call graph).
func Analyze(cfg Config) *Result {
	a := newAnalyzer(cfg)
	a.run()
	return a.res
}

// newAnalyzer constructs the solver state for cfg without running it.
// Split from Analyze so AnalyzeWarm can keep the analyzer alive for
// incremental re-solving after the initial fixpoint.
func newAnalyzer(cfg Config) *analyzer {
	if cfg.Policy == nil {
		cfg.Policy = ActionSensitivePolicy{K: 2}
	}
	if cfg.MaxPasses == 0 {
		cfg.MaxPasses = 200
	}
	// Size hints scale with program text: context sensitivity multiplies
	// methods into instances and locals into variable keys, so seeding
	// the hot maps near their final size avoids the incremental-rehash
	// churn that otherwise dominates construction.
	nMethods, nStmts := 0, 0
	if cfg.Prog != nil {
		for _, cl := range cfg.Prog.Classes() {
			for _, m := range cl.Methods {
				nMethods++
				for _, b := range m.Blocks {
					nStmts += len(b.Stmts)
				}
			}
		}
	}
	in := NewInterner()
	a := &analyzer{
		cfg: cfg,
		in:  in,
		res: &Result{
			Policy:    cfg.Policy,
			in:        in,
			pts:       make(map[VarKey]ObjSet, nStmts),
			fpts:      make(map[FieldKey]ObjSet, nMethods/2),
			spts:      make(map[string]ObjSet, 16),
			instances: make(map[MKey]bool, 3*nMethods/2),
			callees:   make(map[siteKey][]MKey, nMethods),
		},
		edgeOf:      make(map[VarKey]*copyEdge, nMethods),
		byMethod:    make(map[*ir.Method][]MKey, nMethods),
		calleeSeen:  make(map[calleeEdge]bool, nMethods),
		hintStmts:   nStmts,
		hintMethods: nMethods,
	}
	a.viewFallback = sortedViewObjs(cfg.Views)
	if cfg.Solver != SolverExhaustive {
		a.d = newDeltaState(a)
	}
	for _, e := range cfg.Entries {
		a.install(e, true)
	}
	return a
}

// run drives the constructed analyzer to its initial fixpoint.
func (a *analyzer) run() {
	if a.d != nil {
		a.runDelta()
	} else {
		a.runExhaustive()
	}
	a.reportObs()
}

// runExhaustive is the reference fixpoint: every pass re-runs every
// statement of every discovered instance, then all copy edges, seeds,
// and events.
func (a *analyzer) runExhaustive() {
	cfg := a.cfg
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		if ctxDone(cfg.Ctx) {
			a.res.Interrupted = true
			break
		}
		a.res.passes = pass + 1
		changed := false
		// Statements of every discovered instance (order-stable: the
		// slice only grows, and growth order is deterministic).
		for i := 0; i < len(a.order); i++ {
			if i%ctxStride == ctxStride-1 && ctxDone(cfg.Ctx) {
				a.res.Interrupted = true
				break
			}
			a.stats.iterations++
			if a.processInstance(a.order[i]) {
				changed = true
			}
		}
		if a.res.Interrupted {
			break
		}
		if a.applyCopies() {
			changed = true
		}
		if a.applySeeds() {
			changed = true
		}
		if a.fireEvents() {
			changed = true
		}
		if !changed {
			break
		}
	}
}

// ctxStride is how many instances a pass processes between context
// polls; ctx.Err takes a lock, so the worklist does not check per
// statement.
const ctxStride = 256

// ctxDone reports whether the (possibly nil) context is cancelled.
func ctxDone(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// reportObs publishes the fixpoint's effort counters (no-op on nil Obs).
func (a *analyzer) reportObs() {
	tr := a.cfg.Obs
	if tr == nil {
		return
	}
	tr.Count("pointer.passes", int64(a.res.passes))
	if a.res.Interrupted {
		tr.Count("pointer.interrupted", 1)
	}
	tr.Count("pointer.worklist_iterations", a.stats.iterations)
	tr.Observe("pointer.solve_iterations", float64(a.stats.iterations))
	if a.d != nil {
		tr.Count("pointer.dirty_instances", a.stats.dirtyInstances)
		tr.Count("pointer.transfer_skips", a.stats.transferSkips)
		tr.Count("pointer.delta_props", a.stats.deltaProps)
		tr.Count("pointer.dep_edges", int64(a.d.depEdges()))
	}
	tr.Count("pointer.instances", int64(len(a.res.instances)))
	tr.Count("pointer.entries", int64(len(a.res.entryKeys)))
	tr.Count("pointer.cha_targets", a.stats.chaTargets)
	tr.Count("pointer.events_fired", a.stats.eventsFired)
	edges := 0
	for _, callees := range a.res.callees {
		edges += len(callees)
	}
	tr.Count("pointer.call_edges", int64(edges))
	copies := 0
	for _, e := range a.sortedCopies {
		copies += len(e.srcs)
	}
	tr.Count("pointer.copy_constraints", int64(copies))
	var totalObjs, maxSet, words int
	for _, set := range a.res.pts {
		n := set.Len()
		totalObjs += n
		if n > maxSet {
			maxSet = n
		}
		words += set.Words()
	}
	for _, set := range a.res.fpts {
		words += set.Words()
	}
	for _, set := range a.res.spts {
		words += set.Words()
	}
	tr.Count("pointer.objset_words", int64(words))
	tr.Count("pointer.interned_objs", int64(a.in.NumObjs()))
	tr.Gauge("pointer.pts_vars", float64(len(a.res.pts)))
	tr.Gauge("pointer.pts_objs", float64(totalObjs))
	tr.Gauge("pointer.pts_max", float64(maxSet))
}

// siteKey identifies a call site instance.
type siteKey struct {
	Caller MKey
	Pos    ir.Pos
}

type analyzer struct {
	cfg   Config
	in    *Interner
	res   *Result
	order []MKey // instance worklist in discovery order
	// edgeOf maps each copy destination to its edge, so addCopy finds
	// (or dedups) an edge with one hash lookup plus a scan of the
	// destination's short source list — no nested membership maps and no
	// key re-rendering per call.
	edgeOf map[VarKey]*copyEdge
	// sortedCopies holds the copy edges String()-ordered so applyCopies
	// iterates deterministically without re-sorting (and re-rendering
	// keys) every sweep.
	sortedCopies []*copyEdge
	// byMethod indexes discovered instances by method, maintained at
	// install time so applySeeds (and the delta solver) never rescan the
	// full instance order.
	byMethod map[*ir.Method][]MKey
	// calleeSeen is the membership mirror of res.callees, so recordEdge
	// is O(1) per re-visit instead of a linear scan of the edge list.
	calleeSeen map[calleeEdge]bool
	// viewFallback is the sorted all-views slice viewObjs falls back to
	// for non-constant findViewById arguments, computed once.
	viewFallback []Obj
	// d holds the difference-propagation state; nil under the exhaustive
	// solver.
	d *deltaState
	// hintStmts / hintMethods are the program-text sizes the map size
	// hints derive from (shared with the delta state's own maps).
	hintStmts, hintMethods int
	// stats feeds the pointer.* observability counters.
	stats struct {
		iterations     int64 // instance sweep slots visited, summed over passes
		chaTargets     int64 // dispatch targets resolved at call sites
		eventsFired    int64 // OnEvent hook invocations
		dirtyInstances int64 // delta: instances actually processed
		transferSkips  int64 // delta: sweep slots skipped (no input grew)
		deltaProps     int64 // delta: dirty statement transfers re-run
	}
}

// calleeEdge is one (call site, callee) pair — the recordEdge dedup key.
type calleeEdge struct {
	sk     siteKey
	callee MKey
}

// copyEdge is one destination's persistent copy constraints, its
// sources kept String()-sorted.
type copyEdge struct {
	key  string
	dst  VarKey
	srcs []copySrc
	// dirty marks that some source grew since the delta solver last
	// applied this edge (unused by the exhaustive solver).
	dirty bool
}

type copySrc struct {
	key string
	src VarKey
}

// install registers an entry's method instance and seeds, reporting
// whether anything new was learned.
func (a *analyzer) install(e Entry, isRoot bool) bool {
	if e.Method == nil {
		return false
	}
	changed := false
	mk := MKey{M: e.Method, Ctx: e.Ctx}
	if a.newInstance(mk, isRoot) {
		changed = true
	}
	thisKey := VarKey{M: e.Method, Ctx: e.Ctx, Var: "this"}
	for _, o := range e.This {
		if a.pts(thisKey).Add(o) {
			changed = true
			a.touchVar(thisKey)
		}
	}
	for v, objs := range e.ParamObjs {
		k := VarKey{M: e.Method, Ctx: e.Ctx, Var: v}
		for _, o := range objs {
			if a.pts(k).Add(o) {
				changed = true
				a.touchVar(k)
			}
		}
	}
	for v, src := range e.ParamFrom {
		dst := VarKey{M: e.Method, Ctx: e.Ctx, Var: v}
		if !a.hasCopy(dst, src) {
			a.addCopy(dst, src)
			changed = true
		}
	}
	return changed
}

// newInstance registers a method instance on first sight: the instance
// set, the discovery-ordered worklist, the per-method index, the entry
// list (for roots), and — under the delta solver — the per-statement
// dirty bookkeeping. Reports whether the instance was new.
func (a *analyzer) newInstance(mk MKey, isRoot bool) bool {
	if a.res.instances[mk] {
		return false
	}
	a.res.instances[mk] = true
	a.order = append(a.order, mk)
	a.byMethod[mk.M] = append(a.byMethod[mk.M], mk)
	if isRoot {
		a.res.entryKeys = append(a.res.entryKeys, mk)
	}
	if a.d != nil {
		a.d.registerInstance(a, len(a.order)-1, mk)
	}
	return true
}

// touchVar / touchField / touchStatic notify the delta solver that a
// points-to set grew (no-ops under the exhaustive solver).
func (a *analyzer) touchVar(k VarKey) {
	if a.d != nil {
		a.d.touchVar(k)
	}
}

func (a *analyzer) touchField(k FieldKey) {
	if a.d != nil {
		a.d.touchField(k)
	}
}

func (a *analyzer) touchStatic(key string) {
	if a.d != nil {
		a.d.touchStatic(key)
	}
}

func (a *analyzer) pts(k VarKey) ObjSet {
	s, ok := a.res.pts[k]
	if !ok {
		s = a.in.NewSet()
		a.res.pts[k] = s
	}
	return s
}

func (a *analyzer) fpts(k FieldKey) ObjSet {
	s, ok := a.res.fpts[k]
	if !ok {
		s = a.in.NewSet()
		a.res.fpts[k] = s
	}
	return s
}

func (a *analyzer) spts(cls, field string) ObjSet {
	key := cls + "." + field
	s, ok := a.res.spts[key]
	if !ok {
		s = a.in.NewSet()
		a.res.spts[key] = s
	}
	return s
}

// hasCopy reports whether dst ⊆ src is already recorded. Source lists
// are short (a destination's fan-in), so a scan beats a nested map.
func (a *analyzer) hasCopy(dst, src VarKey) bool {
	e := a.edgeOf[dst]
	if e == nil {
		return false
	}
	for i := range e.srcs {
		if e.srcs[i].src == src {
			return true
		}
	}
	return false
}

// addCopy records dst ⊆ src, keeping the sorted iteration mirrors in
// sync (no-op for an already-known edge).
func (a *analyzer) addCopy(dst, src VarKey) {
	e := a.edgeOf[dst]
	if e == nil {
		e = a.insertCopyEdge(dst)
		a.edgeOf[dst] = e
	}
	for i := range e.srcs {
		if e.srcs[i].src == src {
			return
		}
	}
	a.insertCopySrc(e, src)
	if a.d != nil {
		a.d.registerCopy(e, src)
	}
}

// insertCopyEdge places a new destination into sortedCopies at its
// String()-ordered position, returning the fresh edge.
func (a *analyzer) insertCopyEdge(dst VarKey) *copyEdge {
	key := dst.String()
	i := sort.Search(len(a.sortedCopies), func(i int) bool {
		return a.sortedCopies[i].key >= key
	})
	a.sortedCopies = append(a.sortedCopies, nil)
	copy(a.sortedCopies[i+1:], a.sortedCopies[i:])
	e := &copyEdge{key: key, dst: dst}
	a.sortedCopies[i] = e
	return e
}

// insertCopySrc places a new source into the destination edge's sorted
// source list.
func (a *analyzer) insertCopySrc(e *copyEdge, src VarKey) {
	skey := src.String()
	j := sort.Search(len(e.srcs), func(j int) bool {
		return e.srcs[j].key >= skey
	})
	e.srcs = append(e.srcs, copySrc{})
	copy(e.srcs[j+1:], e.srcs[j:])
	e.srcs[j] = copySrc{key: skey, src: src}
}

// processInstance applies all statement transfer functions of one method
// instance, returning whether any points-to set grew.
func (a *analyzer) processInstance(mk MKey) bool {
	changed := false
	for _, blk := range mk.M.Blocks {
		for _, s := range blk.Stmts {
			if a.transfer(mk, s) {
				changed = true
			}
		}
	}
	return changed
}

func (a *analyzer) transfer(mk MKey, s ir.Stmt) bool {
	key := func(v string) VarKey { return VarKey{M: mk.M, Ctx: mk.Ctx, Var: v} }
	switch st := s.(type) {
	case *ir.New:
		o := Obj{Site: st.Site, Ctx: a.cfg.Policy.HeapCtx(mk.Ctx), Class: st.Class}
		return a.pts(key(st.Dst)).Add(o)
	case *ir.Move:
		return a.pts(key(st.Dst)).AddAll(a.pts(key(st.Src)))
	case *ir.Load:
		changed := false
		for _, o := range a.pts(key(st.Obj)).Slice() {
			if a.pts(key(st.Dst)).AddAll(a.fpts(FieldKey{Obj: o, Field: st.Field})) {
				changed = true
			}
		}
		return changed
	case *ir.Store:
		changed := false
		src := a.pts(key(st.Src))
		for _, o := range a.pts(key(st.Obj)).Slice() {
			if a.fpts(FieldKey{Obj: o, Field: st.Field}).AddAll(src) {
				changed = true
			}
		}
		return changed
	case *ir.StaticLoad:
		return a.pts(key(st.Dst)).AddAll(a.spts(st.Class, st.Field))
	case *ir.StaticStore:
		return a.spts(st.Class, st.Field).AddAll(a.pts(key(st.Src)))
	case *ir.Return:
		if st.Src == "" {
			return false
		}
		return a.pts(key(retVar)).AddAll(a.pts(key(st.Src)))
	case *ir.Invoke:
		return a.invoke(mk, st)
	default:
		return false
	}
}

// invoke handles dispatch, special framework semantics, and call-edge
// recording.
func (a *analyzer) invoke(mk MKey, inv *ir.Invoke) bool {
	key := func(v string) VarKey { return VarKey{M: mk.M, Ctx: mk.Ctx, Var: v} }
	pos := inv.Pos()
	changed := false

	if api, ok := frontend.Recognize(a.cfg.Prog, inv); ok {
		switch api.Kind {
		case frontend.APIFindViewByID:
			if inv.Dst != "" {
				for _, o := range a.viewObjs(mk.M, inv.Args[0]) {
					if a.pts(key(inv.Dst)).Add(o) {
						changed = true
					}
				}
			}
			return changed
		default:
			// Spawning and registration APIs are framework stubs whose
			// effects the OnEvent hook reifies; no body to dispatch into.
			return false
		}
	}
	// Looper accessors return the main looper singleton (background
	// loopers are modelled per-thread by the actions layer).
	if inv.Class == frontend.LooperClass &&
		(inv.Method == frontend.GetMainLooper || inv.Method == frontend.MyLooper) {
		if inv.Dst != "" {
			return a.pts(key(inv.Dst)).Add(MainLooperObj(frontend.LooperClass))
		}
		return false
	}

	site := fmt.Sprintf("%s@%d.%d", mk.M.QualifiedName(), pos.Block, pos.Index)
	switch inv.Kind {
	case ir.InvokeStatic:
		target := a.cfg.Prog.ResolveMethod(inv.Class, inv.Method)
		ctx := a.cfg.Policy.CalleeContext(mk.Ctx, site, inv.Kind, Obj{}, false)
		ctx = a.maybeEnterAction(ctx, pos)
		if a.bindCall(mk, inv, pos, target, ctx, nil) {
			changed = true
		}
	case ir.InvokeSpecial:
		target := a.cfg.Prog.ResolveMethod(inv.Class, inv.Method)
		for _, o := range a.pts(key(inv.Recv)).Slice() {
			o := o
			ctx := a.cfg.Policy.CalleeContext(mk.Ctx, site, inv.Kind, o, true)
			ctx = a.maybeEnterAction(ctx, pos)
			if a.bindCall(mk, inv, pos, target, ctx, &o) {
				changed = true
			}
		}
	default: // virtual
		for _, o := range a.pts(key(inv.Recv)).Slice() {
			o := o
			target := a.cfg.Prog.ResolveMethod(o.Class, inv.Method)
			ctx := a.cfg.Policy.CalleeContext(mk.Ctx, site, inv.Kind, o, true)
			ctx = a.maybeEnterAction(ctx, pos)
			if a.bindCall(mk, inv, pos, target, ctx, &o) {
				changed = true
			}
		}
	}
	return changed
}

// bindCall wires one resolved dispatch target into the call graph: it
// installs the callee instance, records the call edge, flows the
// receiver into the callee's this, and adds the parameter/return copy
// constraints. Reports whether anything new was learned (new instance or
// receiver growth). Shared by both solvers so discovery order and edge
// order are identical.
func (a *analyzer) bindCall(mk MKey, inv *ir.Invoke, pos ir.Pos, target *ir.Method, ctx Context, recv *Obj) bool {
	if target == nil {
		return false
	}
	a.stats.chaTargets++
	changed := false
	calleeKey := MKey{M: target, Ctx: ctx}
	if a.newInstance(calleeKey, false) {
		changed = true
	}
	a.recordEdge(siteKey{Caller: mk, Pos: pos}, calleeKey)
	if recv != nil {
		thisKey := VarKey{M: target, Ctx: ctx, Var: "this"}
		if a.pts(thisKey).Add(*recv) {
			changed = true
			a.touchVar(thisKey)
		}
	}
	n := len(inv.Args)
	if len(target.Params) < n {
		n = len(target.Params)
	}
	for i := 0; i < n; i++ {
		a.addCopy(
			VarKey{M: target, Ctx: ctx, Var: target.Params[i]},
			VarKey{M: mk.M, Ctx: mk.Ctx, Var: inv.Args[i]})
	}
	if inv.Dst != "" {
		a.addCopy(
			VarKey{M: mk.M, Ctx: mk.Ctx, Var: inv.Dst},
			VarKey{M: target, Ctx: ctx, Var: retVar})
	}
	return changed
}

// maybeEnterAction switches the context's action at harness action-entry
// sites (only meaningful under action-sensitive policies).
func (a *analyzer) maybeEnterAction(ctx Context, pos ir.Pos) Context {
	if a.cfg.ActionAt == nil {
		return ctx
	}
	if aid, ok := a.cfg.ActionAt(pos); ok {
		if a.cfg.Policy.ActionSensitive() {
			ctx.Action = aid
		} else {
			ctx.Action = NoAction
		}
	}
	return ctx
}

// viewObjs resolves findViewById's result objects: the views whose ids
// the argument can hold, or every known view when the id is not a
// constant (the sound fallback, precomputed once in Analyze).
func (a *analyzer) viewObjs(m *ir.Method, arg string) []Obj {
	ids := ir.ConstIntDefs(m, arg)
	if len(ids) > 0 {
		var out []Obj
		for _, id := range ids {
			if cls, ok := a.cfg.Views[int(id)]; ok {
				out = append(out, ViewObj(int(id), cls))
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return a.viewFallback
}

// sortedViewObjs renders the view map as id-sorted view objects — the
// fallback slice viewObjs hands out (callers only iterate it).
func sortedViewObjs(views map[int]string) []Obj {
	keys := make([]int, 0, len(views))
	for id := range views {
		keys = append(keys, id)
	}
	sort.Ints(keys)
	out := make([]Obj, 0, len(keys))
	for _, id := range keys {
		out = append(out, ViewObj(id, views[id]))
	}
	return out
}

func (a *analyzer) recordEdge(sk siteKey, callee MKey) {
	e := calleeEdge{sk: sk, callee: callee}
	if a.calleeSeen[e] {
		return
	}
	a.calleeSeen[e] = true
	a.res.callees[sk] = append(a.res.callees[sk], callee)
}

// applyCopies propagates all persistent copy constraints once, in the
// stable String() order sortedCopies maintains (word-parallel unions;
// no per-sweep sorting or key rendering).
func (a *analyzer) applyCopies() bool {
	changed := false
	for _, e := range a.sortedCopies {
		dst := a.pts(e.dst)
		for _, s := range e.srcs {
			if dst.AddAll(a.pts(s.src)) {
				changed = true
			}
		}
	}
	return changed
}

// applySeeds propagates the cross-context seeds once (over the
// per-method instance index, not the full order).
func (a *analyzer) applySeeds() bool {
	changed := false
	for i := range a.cfg.Seeds {
		if a.applySeed(&a.cfg.Seeds[i]) {
			changed = true
		}
	}
	return changed
}

// applySeed propagates one seed: the union of the source variable across
// every instance of the source method flows into the destination
// variable of every instance of the destination method.
func (a *analyzer) applySeed(seed *Seed) bool {
	var union ObjSet
	for _, mk := range a.byMethod[seed.SrcMethod] {
		src := a.res.pts[VarKey{M: mk.M, Ctx: mk.Ctx, Var: seed.SrcVar}]
		if src.Len() == 0 {
			continue
		}
		if union.d == nil {
			union = a.in.NewSet()
		}
		union.AddAll(src)
	}
	if union.d == nil {
		return false
	}
	changed := false
	for _, mk := range a.byMethod[seed.DstMethod] {
		k := VarKey{M: mk.M, Ctx: mk.Ctx, Var: seed.DstVar}
		if a.pts(k).AddAll(union) {
			changed = true
			a.touchVar(k)
		}
	}
	return changed
}

// fireEvents re-runs the OnEvent hook over every recognized API call
// site with current points-to information and installs returned entries.
func (a *analyzer) fireEvents() bool {
	if a.cfg.OnEvent == nil {
		return false
	}
	changed := false
	for i := 0; i < len(a.order); i++ {
		mk := a.order[i]
		for _, blk := range mk.M.Blocks {
			for _, s := range blk.Stmts {
				inv, ok := s.(*ir.Invoke)
				if !ok {
					continue
				}
				api, ok := frontend.Recognize(a.cfg.Prog, inv)
				if !ok || api.Kind == frontend.APIFindViewByID || api.Kind == frontend.APISetListener {
					continue
				}
				ev := Event{
					Caller: mk, Pos: inv.Pos(), Inv: inv, API: api,
					FieldObjs: func(o Obj, field string) []Obj {
						return a.fpts(FieldKey{Obj: o, Field: field}).Slice()
					},
				}
				if inv.Recv != "" {
					ev.Recv = a.pts(VarKey{M: mk.M, Ctx: mk.Ctx, Var: inv.Recv}).Slice()
				}
				for _, arg := range inv.Args {
					ev.Args = append(ev.Args, a.pts(VarKey{M: mk.M, Ctx: mk.Ctx, Var: arg}).Slice())
				}
				a.stats.eventsFired++
				for _, e := range a.cfg.OnEvent(ev) {
					if a.install(e, true) {
						changed = true
					}
				}
			}
		}
	}
	return changed
}
