package pointer

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sierra/internal/frontend"
	"sierra/internal/ir"
	"sierra/internal/obs"
)

// randomPartitionedProgram generates a synthetic app whose constraint
// graph splits into several independent token components: each "family"
// gets its own entry method, Task class, field names, and static class,
// so the parallel planner finds one component per family. Families are
// randomly straight-line, event-posting (instances discovered mid-run
// while every pass stays pure), or dispatching (forces serial-fallback
// passes, exercising the planner's purity check).
func randomPartitionedProgram(r *rand.Rand) parityConfig {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	vars := []string{"a", "b", "c", "d"}
	nFam := 3 + r.Intn(6)
	var entries []Entry
	type fam struct {
		main  *ir.Class
		entry string
	}
	var fams []fam
	for fi := 0; fi < nFam; fi++ {
		field := fmt.Sprintf("f%d", fi)
		taskCls := fmt.Sprintf("Task%d", fi)
		statCls := fmt.Sprintf("G%d", fi)
		mainCls := fmt.Sprintf("Main%d", fi)
		kind := r.Intn(8) // 0-3 straight-line, 4-6 posting, 7 dispatching

		soup := func(b *ir.MethodBuilder, n int) {
			for i := 0; i < n; i++ {
				dst := vars[r.Intn(len(vars))]
				src := vars[r.Intn(len(vars))]
				switch r.Intn(7) {
				case 0, 1:
					b.NewObj(dst, taskCls)
				case 2:
					b.Move(dst, src)
				case 3:
					b.Load(dst, src, field)
				case 4:
					b.Store(src, field, dst)
				case 5:
					b.SLoad(dst, statCls, "s")
				default:
					b.SStore(statCls, "s", src)
				}
			}
		}

		task := ir.NewClass(taskCls, frontend.Object, frontend.RunnableIface)
		task.Fields = []string{field}
		tb := ir.NewMethodBuilder(frontend.Run)
		soup(tb, 2+r.Intn(5))
		tb.Ret(vars[r.Intn(len(vars))])
		task.AddMethod(tb.Build())
		if kind == 7 {
			wb := ir.NewMethodBuilder("work", "x")
			soup(wb, 1+r.Intn(3))
			wb.Ret(vars[r.Intn(len(vars))])
			task.AddMethod(wb.Build())
		}
		p.AddClass(task)

		glob := ir.NewClass(statCls, frontend.Object)
		glob.Fields = []string{"s"}
		p.AddClass(glob)

		main := ir.NewClass(mainCls, frontend.ActivityClass)
		entry := fmt.Sprintf("main%d", fi)
		mb := ir.NewMethodBuilder(entry)
		soup(mb, 3+r.Intn(6))
		switch {
		case kind >= 4 && kind <= 6:
			mb.NewObj("t", taskCls)
			if r.Intn(2) == 0 {
				mb.Store("t", field, vars[r.Intn(len(vars))])
			}
			mb.Int("vid", 7)
			mb.Call("w", "this", mainCls, frontend.FindViewByID, "vid")
			mb.Call("", "w", frontend.ViewClass, frontend.Post, "t")
		case kind == 7:
			mb.NewObj("t", taskCls)
			mb.Call(vars[r.Intn(len(vars))], "t", taskCls, "work", vars[r.Intn(len(vars))])
		}
		soup(mb, r.Intn(4))
		mb.Ret("")
		main.AddMethod(mb.Build())
		p.AddClass(main)
		fams = append(fams, fam{main: main, entry: entry})
	}
	p.Finalize()

	for _, f := range fams {
		entries = append(entries, Entry{Method: f.main.Methods[f.entry], Ctx: EmptyContext})
	}
	cfg := parityConfig{
		prog:    p,
		entries: entries,
		views:   map[int]string{7: frontend.ButtonClass},
		events:  true,
	}
	// Occasional cross-family seeds: applied in the serial seed phase,
	// they mark slots across components between parallel sweeps.
	for s := 0; s < r.Intn(3); s++ {
		src := fams[r.Intn(len(fams))]
		dst := fams[r.Intn(len(fams))]
		cfg.seeds = append(cfg.seeds, Seed{
			SrcMethod: src.main.Methods[src.entry],
			SrcVar:    vars[r.Intn(len(vars))],
			DstMethod: dst.main.Methods[dst.entry],
			DstVar:    vars[r.Intn(len(vars))],
		})
	}
	pols := []Policy{
		Insensitive{}, KCFA{K: 1}, KObj{K: 2}, Hybrid{K: 2},
		ActionSensitivePolicy{K: 2},
	}
	cfg.policy = pols[r.Intn(len(pols))]
	return cfg
}

// runSolverJobs analyzes cfg under the delta solver with the given
// worker count, collecting the pointer.* counters.
func runSolverJobs(cfg parityConfig, jobs int, tr *obs.Trace) *Result {
	var onEvent func(Event) []Entry
	if cfg.events {
		p := cfg.prog
		onEvent = func(ev Event) []Entry {
			if ev.API.Kind != frontend.APIPostRunnable || len(ev.Args) == 0 {
				return nil
			}
			var out []Entry
			spawn := func(o Obj) {
				m := p.ResolveMethod(o.Class, frontend.Run)
				if m == nil {
					return
				}
				out = append(out, Entry{
					Method: m,
					Ctx:    Context{Action: 42, Objs: o.id()},
					This:   []Obj{o},
				})
			}
			for _, o := range ev.Args[0] {
				spawn(o)
				for _, q := range ev.FieldObjs(o, "f0") {
					spawn(q)
				}
			}
			return out
		}
	}
	return Analyze(Config{
		Prog:    cfg.prog,
		Policy:  cfg.policy,
		Solver:  SolverDelta,
		Entries: cfg.entries,
		Seeds:   cfg.seeds,
		Views:   cfg.views,
		OnEvent: onEvent,
		Jobs:    jobs,
		Obs:     tr,
	})
}

// effortCounters are the solver-effort observables the parallel sweep
// must reproduce exactly (the partitioned path recomputes skips and
// merges per-worker tallies; any drift is a planner bug).
var effortCounters = []string{
	"pointer.passes",
	"pointer.worklist_iterations",
	"pointer.dirty_instances",
	"pointer.transfer_skips",
	"pointer.delta_props",
	"pointer.dep_edges",
	"pointer.cha_targets",
	"pointer.events_fired",
	"pointer.call_edges",
	"pointer.copy_constraints",
	"pointer.objset_words",
	"pointer.interned_objs",
	"pointer.instances",
	"pointer.entries",
}

// parityAtJobs runs serial-vs-parallel delta at each worker count and
// requires identical results and identical effort counters. It reports
// whether any parallel sweep actually executed.
func parityAtJobs(t *testing.T, cfg parityConfig, counts []int) bool {
	t.Helper()
	serialTr := obs.New("jobs1")
	want := runSolverJobs(cfg, 1, serialTr)
	engaged := false
	for _, jobs := range counts {
		tr := obs.New(fmt.Sprintf("jobs%d", jobs))
		got := runSolverJobs(cfg, jobs, tr)
		requireIdenticalResults(t, want, got)
		for _, name := range effortCounters {
			if w, g := serialTr.Counter(name), tr.Counter(name); w != g {
				t.Fatalf("jobs=%d counter %s: serial=%d parallel=%d", jobs, name, w, g)
			}
		}
		if tr.Counter("pointer.par_partitions") > 0 {
			engaged = true
		}
	}
	return engaged
}

// TestParallelSolverParityPartitioned runs randomized multi-component
// programs at worker counts {1,2,3,8} and requires bit-for-bit parity
// with the serial delta solver — results, orders, and effort counters.
// It also requires that the partitioned sweep actually engaged on a
// healthy share of the corpus (the generator builds one component per
// family, so a silent always-serial fallback would fail here).
func TestParallelSolverParityPartitioned(t *testing.T) {
	engagedRuns := 0
	total := 0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := randomPartitionedProgram(r)
		total++
		if parityAtJobs(t, cfg, []int{2, 3, 8}) {
			engagedRuns++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if engagedRuns < total/4 {
		t.Fatalf("parallel sweep engaged on only %d/%d runs; planner falls back too eagerly", engagedRuns, total)
	}
}

// TestParallelSolverParityRich runs the rich single-component generator
// (heavy dispatch, shared statics) through the parallel planner: most
// passes take the serial fallback, pinning that the fallback path and
// the engagement checks never corrupt parity.
func TestParallelSolverParityRich(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := randomRichProgram(r)
		parityAtJobs(t, cfg, []int{2, 8})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelSolverParityLinear pins the straight-line generator at
// several worker counts (single entry → usually one component, so this
// mostly exercises the <2-components fallback plus occasional splits).
func TestParallelSolverParityLinear(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, m := randomLinearProgram(r)
		cfg := parityConfig{
			prog:    p,
			entries: []Entry{{Method: m, Ctx: EmptyContext}},
			policy:  ActionSensitivePolicy{K: 2},
		}
		parityAtJobs(t, cfg, []int{2, 3, 8})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
