// Package corpus provides the apps SIERRA is evaluated on: faithful IR
// models of the paper's motivating examples (Figs 1, 2, 8), the 20-app
// named dataset mirroring Table 2, and the 174-app generated dataset.
//
// It substitutes for the Gator benchmark APKs and the F-Droid corpus the
// paper analyzes: the real packages are unavailable, so each app here
// embeds the same race patterns (unordered async/GUI accesses, guarded
// ad-hoc synchronization, context-sensitivity aliasing traps) the paper's
// pipeline exercises.
package corpus

import (
	"sierra/internal/apk"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// View ids used by the hand-made apps.
const (
	rootViewID  = 100
	recyclerID  = 101
	buttonID    = 102
	timerViewID = 103
)

// NewsApp models Figure 1: an intra-component race in a news activity.
// onClick starts a LoaderTask (AsyncTask); doInBackground updates the
// adapter's data from a background thread while a scroll event on the
// main thread reads it through the RecycleView — unordered, so racy.
// onPostExecute's notifyDataSetChanged races with the scroll read too.
func NewsApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	// class NewsActivity extends Activity
	//   implements OnClickListener, OnScrollListener
	act := ir.NewClass("NewsActivity", frontend.ActivityClass,
		frontend.OnClickListener, frontend.OnScrollListener)
	act.Fields = []string{"rv", "adapter"}
	{
		b := ir.NewMethodBuilder(frontend.OnCreate)
		b.Int("idRv", recyclerID)
		b.Call("rv", "this", "NewsActivity", frontend.FindViewByID, "idRv")
		b.NewObj("adapter", "NewsAdapter")
		b.Call("", "rv", frontend.RecycleViewClass, frontend.SetAdapter, "adapter")
		b.Store("this", "rv", "rv")
		b.Store("this", "adapter", "adapter")
		b.Int("idBtn", buttonID)
		b.Call("btn", "this", "NewsActivity", frontend.FindViewByID, "idBtn")
		b.Call("", "btn", frontend.ViewClass, frontend.SetOnClickListener, "this")
		b.Call("", "rv", frontend.ViewClass, frontend.SetOnScrollListener, "this")
		b.Ret("")
		act.AddMethod(b.Build())
	}
	{
		b := ir.NewMethodBuilder(frontend.OnClick, "v")
		b.Load("a", "this", "adapter")
		b.NewObj("task", "LoaderTask")
		b.CallSpecial("", "task", "LoaderTask", "<init>", "a")
		b.Call("", "task", "LoaderTask", frontend.Execute)
		b.Ret("")
		act.AddMethod(b.Build())
	}
	{
		// onScroll reads the adapter state through the RecycleView's
		// position lookup — the racy main-thread read.
		b := ir.NewMethodBuilder(frontend.OnScroll, "v", "pos")
		b.Load("rv", "this", "rv")
		b.Call("item", "rv", frontend.RecycleViewClass, "getViewForPosition", "pos")
		b.Ret("")
		act.AddMethod(b.Build())
	}
	p.AddClass(act)

	// class NewsAdapter extends BaseAdapter (framework body carries the
	// mData/mCacheValid accesses).
	p.AddClass(ir.NewClass("NewsAdapter", frontend.AdapterClass))

	// class LoaderTask extends AsyncTask { final NewsAdapter adapter; … }
	task := ir.NewClass("LoaderTask", frontend.AsyncTaskClass)
	task.Fields = []string{"adapter"}
	{
		b := ir.NewMethodBuilder("<init>", "a")
		b.Store("this", "adapter", "a")
		b.Ret("")
		task.AddMethod(b.Build())
	}
	{
		b := ir.NewMethodBuilder(frontend.DoInBackground)
		b.Call("newslist", "this", "LoaderTask", "download")
		b.Load("a", "this", "adapter")
		b.Call("", "a", "NewsAdapter", "add", "newslist")
		b.Ret("")
		task.AddMethod(b.Build())
	}
	{
		b := ir.NewMethodBuilder("download")
		b.NewObj("d", frontend.BundleClass)
		b.Ret("d")
		task.AddMethod(b.Build())
	}
	{
		b := ir.NewMethodBuilder(frontend.OnPostExecute, "news")
		b.Load("a", "this", "adapter")
		b.Call("", "a", "NewsAdapter", "notifyDataSetChanged")
		b.Ret("")
		task.AddMethod(b.Build())
	}
	p.AddClass(task)
	p.Finalize()

	return &apk.App{
		Name:    "newsapp",
		Program: p,
		Manifest: apk.Manifest{
			Package:    "com.example.news",
			Activities: []apk.Component{{Class: "NewsActivity", Layout: "main"}},
		},
		Layouts: map[string]*apk.Layout{
			"main": {
				Name: "main",
				Root: &apk.View{
					ID:   rootViewID,
					Type: frontend.ViewClass,
					Children: []*apk.View{
						{ID: recyclerID, Type: frontend.RecycleViewClass},
						{ID: buttonID, Type: frontend.ButtonClass},
					},
				},
			},
		},
	}
}

// DatabaseApp models Figure 2: an inter-component "Activity vs Broadcast
// Receiver" race. onStop closes the database while a broadcast delivered
// in the background-state window calls update() on it.
func DatabaseApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	act := ir.NewClass("MainActivity", frontend.ActivityClass)
	act.Fields = []string{"mDB", "recv"}
	{
		b := ir.NewMethodBuilder(frontend.OnCreate)
		b.NewObj("db", frontend.SQLiteDatabaseClass)
		b.Store("this", "mDB", "db")
		b.NewObj("r", "DataReceiver")
		b.CallSpecial("", "r", "DataReceiver", "<init>", "this")
		b.Store("this", "recv", "r")
		b.NewObj("filter", frontend.IntentFilterClass)
		b.Call("", "this", "MainActivity", frontend.RegisterReceiver, "r", "filter")
		b.Ret("")
		act.AddMethod(b.Build())
	}
	{
		b := ir.NewMethodBuilder(frontend.OnStart)
		b.Load("db", "this", "mDB")
		b.Call("", "db", frontend.SQLiteDatabaseClass, "open")
		b.Ret("")
		act.AddMethod(b.Build())
	}
	{
		b := ir.NewMethodBuilder(frontend.OnStop)
		b.Load("db", "this", "mDB")
		b.Call("", "db", frontend.SQLiteDatabaseClass, "close")
		b.Ret("")
		act.AddMethod(b.Build())
	}
	{
		b := ir.NewMethodBuilder(frontend.OnDestroy)
		b.Load("r", "this", "recv")
		b.Call("", "this", "MainActivity", frontend.UnregisterReceiver, "r")
		b.Null("nul")
		b.Store("this", "mDB", "nul")
		b.Ret("")
		act.AddMethod(b.Build())
	}
	p.AddClass(act)

	recv := ir.NewClass("DataReceiver", frontend.ReceiverClass)
	recv.Fields = []string{"act"}
	{
		b := ir.NewMethodBuilder("<init>", "a")
		b.Store("this", "act", "a")
		b.Ret("")
		recv.AddMethod(b.Build())
	}
	{
		b := ir.NewMethodBuilder(frontend.OnReceive, "ctx", "intent")
		b.Call("bundle", "intent", frontend.IntentClass, "getExtras")
		b.Load("a", "this", "act")
		b.Load("db", "a", "mDB")
		b.Call("", "db", frontend.SQLiteDatabaseClass, "update", "bundle")
		b.Ret("")
		recv.AddMethod(b.Build())
	}
	p.AddClass(recv)
	p.Finalize()

	return &apk.App{
		Name:    "dbapp",
		Program: p,
		Manifest: apk.Manifest{
			Package:    "com.example.db",
			Activities: []apk.Component{{Class: "MainActivity"}},
			Receivers:  []apk.Component{{Class: "DataReceiver", IntentFilters: []string{"com.example.DATA"}}},
		},
		Layouts: map[string]*apk.Layout{},
	}
}

// SudokuTimerApp models Figure 8: the OpenSudoku timer pattern whose
// mAccumTime "race" is ad-hoc-synchronized by the mIsRunning guard and
// must be refuted by backward symbolic execution. The guard variable
// itself (mIsRunning read in run() vs write in stop()) remains a true —
// though arguably benign — race.
func SudokuTimerApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	act := ir.NewClass("SudokuActivity", frontend.ActivityClass)
	act.Fields = []string{"mIsRunning", "mAccumTime", "rootView", "runner"}
	{
		b := ir.NewMethodBuilder(frontend.OnCreate)
		b.Int("id", timerViewID)
		b.Call("v", "this", "SudokuActivity", frontend.FindViewByID, "id")
		b.Store("this", "rootView", "v")
		b.NewObj("r", "TimerRunnable")
		b.CallSpecial("", "r", "TimerRunnable", "<init>", "this")
		b.Store("this", "runner", "r")
		b.Ret("")
		act.AddMethod(b.Build())
	}
	{
		b := ir.NewMethodBuilder(frontend.OnResume)
		b.Bool("t", true)
		b.Store("this", "mIsRunning", "t")
		b.Load("v", "this", "rootView")
		b.Load("r", "this", "runner")
		b.Call("", "v", frontend.ViewClass, frontend.Post, "r")
		b.Ret("")
		act.AddMethod(b.Build())
	}
	{
		b := ir.NewMethodBuilder(frontend.OnPause)
		b.Call("", "this", "SudokuActivity", "stop")
		b.Ret("")
		act.AddMethod(b.Build())
	}
	{
		// void stop() { if (mIsRunning) { mIsRunning = false; mAccumTime = …; } }
		b := ir.NewMethodBuilder("stop")
		b.Load("flag", "this", "mIsRunning")
		then, els := b.If("flag", ir.CmpEQ, ir.BoolOperand(true))
		b.SetBlock(then)
		b.Bool("f", false)
		b.Store("this", "mIsRunning", "f")
		b.Int("t", 0)
		b.Store("this", "mAccumTime", "t")
		b.Ret("")
		b.SetBlock(els)
		b.Ret("")
		act.AddMethod(b.Build())
	}
	p.AddClass(act)

	run := ir.NewClass("TimerRunnable", frontend.Object, frontend.RunnableIface)
	run.Fields = []string{"act"}
	{
		b := ir.NewMethodBuilder("<init>", "a")
		b.Store("this", "act", "a")
		b.Ret("")
		run.AddMethod(b.Build())
	}
	{
		// void run() { if (act.mIsRunning) { act.mAccumTime = …;
		//   if (*) postDelayed(this) else act.mIsRunning = false; } }
		b := ir.NewMethodBuilder(frontend.Run)
		b.Load("a", "this", "act")
		b.Load("flag", "a", "mIsRunning")
		then, els := b.If("flag", ir.CmpEQ, ir.BoolOperand(true))
		b.SetBlock(then)
		b.Int("t", 1)
		b.Store("a", "mAccumTime", "t")
		repost, stopArm := b.IfStar()
		b.SetBlock(repost)
		b.Load("v", "a", "rootView")
		b.Int("delay", 1000)
		b.Call("", "v", frontend.ViewClass, frontend.PostDelayed, "this", "delay")
		b.Ret("")
		b.SetBlock(stopArm)
		b.Bool("f", false)
		b.Store("a", "mIsRunning", "f")
		b.Ret("")
		b.SetBlock(els)
		b.Ret("")
		run.AddMethod(b.Build())
	}
	p.AddClass(run)
	p.Finalize()

	return &apk.App{
		Name:    "opensudoku-timer",
		Program: p,
		Manifest: apk.Manifest{
			Package:    "com.example.sudoku",
			Activities: []apk.Component{{Class: "SudokuActivity", Layout: "main"}},
		},
		Layouts: map[string]*apk.Layout{
			"main": {
				Name: "main",
				Root: &apk.View{ID: timerViewID, Type: frontend.ViewClass},
			},
		},
	}
}

// NullGuardApp models the pointer-guard pattern of §6.4: onClick uses this.data only behind a null check, while a
// broadcast receiver callback nulls it. The guarded pair is refutable —
// the pattern behind EventRacer's pointer-check false positives that
// SIERRA filters (§6.4).
func NullGuardApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	act := ir.NewClass("A", frontend.ActivityClass, frontend.OnClickListener)
	act.Fields = []string{"data", "cache"}
	{
		b := ir.NewMethodBuilder(frontend.OnCreate)
		b.Int("id", 1)
		b.Call("v", "this", "A", frontend.FindViewByID, "id")
		b.Call("", "v", frontend.ViewClass, frontend.SetOnClickListener, "this")
		b.NewObj("d", frontend.BundleClass)
		b.Store("this", "data", "d")
		b.NewObj("r", "Resetter")
		b.CallSpecial("", "r", "Resetter", "<init>", "this")
		b.NewObj("filter", frontend.IntentFilterClass)
		b.Call("", "this", "A", frontend.RegisterReceiver, "r", "filter")
		b.Ret("")
		act.AddMethod(b.Build())
	}
	{
		// onClick: if (data != null) { cache = data }  — guarded use.
		b := ir.NewMethodBuilder(frontend.OnClick, "v")
		b.Load("d", "this", "data")
		then, els := b.If("d", ir.CmpNE, ir.NullOperand())
		b.SetBlock(then)
		b.Store("this", "cache", "d")
		b.Ret("")
		b.SetBlock(els)
		b.Ret("")
		act.AddMethod(b.Build())
	}
	p.AddClass(act)

	recv := ir.NewClass("Resetter", frontend.ReceiverClass)
	recv.Fields = []string{"act"}
	{
		b := ir.NewMethodBuilder("<init>", "a")
		b.Store("this", "act", "a")
		b.Ret("")
		recv.AddMethod(b.Build())
	}
	{
		// onReceive: act.data = null; act.cache = null.
		b := ir.NewMethodBuilder(frontend.OnReceive, "ctx", "intent")
		b.Load("a", "this", "act")
		b.Null("n")
		b.Store("a", "data", "n")
		b.Store("a", "cache", "n")
		b.Ret("")
		recv.AddMethod(b.Build())
	}
	p.AddClass(recv)
	p.Finalize()
	return &apk.App{
		Name: "nullguard", Program: p,
		Manifest: apk.Manifest{Activities: []apk.Component{{Class: "A", Layout: "l"}}},
		Layouts: map[string]*apk.Layout{"l": {Name: "l",
			Root: &apk.View{ID: 1, Type: frontend.ButtonClass}}},
	}
}
