package corpus

import (
	"math/rand"
	"testing"

	"sierra/internal/core"
)

func TestPaperRowsComplete(t *testing.T) {
	rows := PaperRows()
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Name] {
			t.Errorf("duplicate row %s", r.Name)
		}
		seen[r.Name] = true
		if r.Harnesses < 1 || r.Actions < r.Harnesses || r.SizeKB <= 0 {
			t.Errorf("implausible row %+v", r)
		}
		if r.RacyNoAS < r.RacyAS || r.RacyAS < r.AfterRefutation {
			t.Errorf("column monotonicity violated in %s", r.Name)
		}
	}
	if len(Names()) != 20 {
		t.Error("Names() mismatch")
	}
	if _, ok := RowByName("OpenSudoku"); !ok {
		t.Error("RowByName failed")
	}
	if _, ok := RowByName("NoSuchApp"); ok {
		t.Error("bogus row found")
	}
}

func TestNamedAppsValidateAndAreDeterministic(t *testing.T) {
	for _, row := range PaperRows()[:6] {
		a1, gt1 := NamedApp(row)
		a2, _ := NamedApp(row)
		if err := a1.Validate(); err != nil {
			t.Fatalf("%s: %v", row.Name, err)
		}
		if a1.Program.NumClasses() != a2.Program.NumClasses() {
			t.Errorf("%s: nondeterministic class count", row.Name)
		}
		if len(a1.Manifest.Activities) != row.Harnesses {
			t.Errorf("%s: activities = %d, want %d", row.Name,
				len(a1.Manifest.Activities), row.Harnesses)
		}
		if len(gt1.TrueFields) == 0 || len(gt1.RefutableFields) == 0 {
			t.Errorf("%s: ground truth empty", row.Name)
		}
	}
}

func TestGeneratedAppShape(t *testing.T) {
	row, _ := RowByName("APV")
	app, gt := NamedApp(row)
	res := core.Analyze(app, core.Options{CompareContexts: true})

	if res.NumHarnesses() != row.Harnesses {
		t.Errorf("harnesses = %d, want %d", res.NumHarnesses(), row.Harnesses)
	}
	// Funnel monotonicity: candidates without AS ≥ with AS ≥ survivors.
	if res.RacyPairsNoAS < len(res.RacyPairs) {
		t.Errorf("noAS %d < AS %d", res.RacyPairsNoAS, len(res.RacyPairs))
	}
	if len(res.RacyPairs) < res.TrueRaces() {
		t.Errorf("AS %d < after-refutation %d", len(res.RacyPairs), res.TrueRaces())
	}
	// Action sensitivity must make a real dent (the paper sees ~5×; we
	// require at least 1.5×).
	if float64(res.RacyPairsNoAS) < 1.5*float64(len(res.RacyPairs)) {
		t.Errorf("AS reduction too weak: %d vs %d", res.RacyPairsNoAS, len(res.RacyPairs))
	}
	// Refutation must prune something (the guard patterns).
	if res.TrueRaces() >= len(res.RacyPairs) {
		t.Errorf("refutation pruned nothing: %d of %d", res.TrueRaces(), len(res.RacyPairs))
	}
	// Classification: most survivors are planted true races; refutable
	// fields must not survive.
	nTrue, nFP, nUnknown := 0, 0, 0
	for _, r := range res.Reports {
		switch gt.Classify(r.Pair.A.Field) {
		case "true":
			nTrue++
		case "fp":
			nFP++
			if gt.RefutableFields[r.Pair.A.Field] {
				t.Errorf("refutable field %s survived refutation", r.Pair.A.Field)
			}
		default:
			nUnknown++
		}
	}
	if nTrue <= nFP {
		t.Errorf("true=%d fp=%d: survivors should be mostly true races", nTrue, nFP)
	}
	if nUnknown > res.TrueRaces()/3 {
		t.Errorf("too many unclassified reports: %d of %d", nUnknown, res.TrueRaces())
	}
}

func TestFDroidAppsGenerate(t *testing.T) {
	for _, i := range []int{0, 42, 173} {
		app, gt := FDroidApp(i)
		if err := app.Validate(); err != nil {
			t.Fatalf("fdroid-%d: %v", i, err)
		}
		if len(gt.TrueFields) == 0 {
			t.Errorf("fdroid-%d: no planted races", i)
		}
		row := FDroidRow(i)
		if row.Harnesses < 2 || row.Harnesses > 7 {
			t.Errorf("fdroid-%d: harnesses = %d out of sampling range", i, row.Harnesses)
		}
	}
	// Distinct seeds yield distinct structure.
	a, _ := FDroidApp(1)
	b, _ := FDroidApp(2)
	if a.Program.NumClasses() == b.Program.NumClasses() &&
		len(a.Manifest.Activities) == len(b.Manifest.Activities) &&
		a.BytecodeSize() == b.BytecodeSize() {
		t.Error("fdroid apps 1 and 2 look identical")
	}
}

func TestDeriveKnobsSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, row := range PaperRows() {
		k := DeriveKnobs(row, rng)
		if k.Activities != row.Harnesses {
			t.Errorf("%s: activities %d != harnesses %d", row.Name, k.Activities, row.Harnesses)
		}
		if k.AsyncTotal < 1 || k.GuardTotal < 1 {
			t.Errorf("%s: degenerate knobs %+v", row.Name, k)
		}
		if k.AsyncFields < 1 || k.AsyncFields > 16 {
			t.Errorf("%s: AsyncFields %d out of range", row.Name, k.AsyncFields)
		}
	}
}

func TestGroundTruthClassify(t *testing.T) {
	gt := &GroundTruth{
		TrueFields:      map[string]bool{"a": true},
		FPFields:        map[string]bool{"b": true},
		RefutableFields: map[string]bool{"c": true},
		TrapFields:      map[string]bool{"d": true},
	}
	cases := map[string]string{"a": "true", "b": "fp", "c": "fp", "d": "fp", "e": "unknown"}
	for f, want := range cases {
		if got := gt.Classify(f); got != want {
			t.Errorf("Classify(%s) = %s, want %s", f, got, want)
		}
	}
	if got := gt.SortedTrueFields(); len(got) != 1 || got[0] != "a" {
		t.Errorf("SortedTrueFields = %v", got)
	}
}

func TestBytecodeSizeRankingFollowsPaper(t *testing.T) {
	// Padding should make bigger paper apps bigger models: compare the
	// largest and smallest named apps.
	big, _ := RowByName("Astrid")    // 5.4 MB
	small, _ := RowByName("VuDroid") // 63 KB
	bapp, _ := NamedApp(big)
	sapp, _ := NamedApp(small)
	if bapp.BytecodeSize() <= sapp.BytecodeSize() {
		t.Errorf("size ranking inverted: %d (Astrid) vs %d (VuDroid)",
			bapp.BytecodeSize(), sapp.BytecodeSize())
	}
}

func TestSeedForStability(t *testing.T) {
	if seedFor("APV") != seedFor("APV") {
		t.Error("unstable seed")
	}
	if seedFor("APV") == seedFor("VLC") {
		t.Error("seed collision between distinct names")
	}
}

func TestLibraryBucketExercised(t *testing.T) {
	// An app with ≥3 async patterns routes one through library code; its
	// reports must include the library category.
	row, _ := RowByName("FBReader")
	app, _ := NamedApp(row)
	res := core.Analyze(app, core.Options{})
	sawLibrary := false
	for _, r := range res.Reports {
		if r.Category.String() == "library" {
			sawLibrary = true
		}
	}
	if !sawLibrary {
		t.Error("no library-category reports despite library-routed patterns")
	}
}

func TestServicePatternProducesServiceRace(t *testing.T) {
	row, _ := RowByName("APV")
	app, gt := NamedApp(row)
	if len(app.Manifest.Services) == 0 {
		t.Fatal("no service declared")
	}
	if !gt.TrueFields["svcstate0"] {
		t.Fatal("service state not in ground truth")
	}
	res := core.Analyze(app, core.Options{})
	found := false
	for _, r := range res.Reports {
		if r.Pair.A.Field == "svcstate0" {
			found = true
			a := res.Registry.Get(r.Pair.A.Action)
			b := res.Registry.Get(r.Pair.B.Action)
			if a.Callback != "onStartCommand" && b.Callback != "onStartCommand" {
				t.Errorf("service race without service action: %s vs %s", a.Name(), b.Name())
			}
		}
	}
	if !found {
		t.Error("service-vs-lifecycle race missing from reports")
	}
}

func TestHandlerThreadPatternRace(t *testing.T) {
	row, _ := RowByName("APV") // 4 activities → pattern on activity 1
	app, gt := NamedApp(row)
	if !gt.TrueFields["workres1"] {
		t.Fatal("handler-thread state not in ground truth")
	}
	res := core.Analyze(app, core.Options{})
	found := false
	for _, r := range res.Reports {
		if r.Pair.A.Field != "workres1" {
			continue
		}
		found = true
		// One side must be the handleMessage action on a background looper.
		for _, aid := range []int{r.Pair.A.Action, r.Pair.B.Action} {
			a := res.Registry.Get(aid)
			if a.Callback == "handleMessage" && a.OnMainLooper() {
				t.Error("worker handler action should be on a HandlerThread looper")
			}
		}
	}
	if !found {
		t.Error("handler-thread race missing from reports")
	}
}
