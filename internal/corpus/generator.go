package corpus

import (
	"fmt"
	"math"
	"math/rand"

	"sierra/internal/apk"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// Knobs are the per-app generation parameters, usually derived from a
// paper table row (see DeriveKnobs).
type Knobs struct {
	// Activities is the number of activities (= harnesses).
	Activities int
	// AsyncTotal plants Fig-1-style AsyncTask update races, distributed
	// round-robin over activities.
	AsyncTotal int
	// AsyncFields is how many shared fields each async pattern races on
	// (more fields = more racy pairs per action).
	AsyncFields int
	// GuardTotal plants Fig-8-style guarded (refutable) patterns.
	GuardTotal int
	// GuardFields is the number of guarded fields per guard pattern
	// (each contributes one refutable candidate pair).
	GuardFields int
	// ImplicitTotal plants implicit-dependency patterns (SIERRA false
	// positives by design, §6.5).
	ImplicitTotal int
	// ImplicitFields is the FP field count per implicit pattern.
	ImplicitFields int
	// TrapOnlyTotal adds extra callbacks that only exercise the
	// per-activity alias trap (inflating the without-action-sensitivity
	// candidate count, §3.3).
	TrapOnlyTotal int
	// FillerTotal adds chained listeners with activity-local effects
	// (actions without races; the chaining densifies HB order).
	FillerTotal int
	// WithReceiver plants one Fig-2-style receiver pattern (activity 0).
	WithReceiver bool
	// WithService plants a started-service pattern (activity 0): the
	// service callback and the activity lifecycle race on static state.
	WithService bool
	// WithHandlerThread plants a worker-handler pattern (activity 1 when
	// present): messages handled on a HandlerThread's looper race with
	// the activity lifecycle — exercising §4.4's handler→looper binding.
	WithHandlerThread bool
	// PaddingStmts adds unanalyzed plain code to approximate bytecode
	// size ranking.
	PaddingStmts int

	// The remaining knobs drive the scenario families (see scenario.go)
	// the config-driven generator stresses beyond the paper's shapes.

	// ServiceTotal plants extra started services whose onStartCommand
	// races with the activity lifecycle. startService targets are
	// statically opaque, so every call site over-approximates to every
	// manifest service: N services yield ~N² service actions — the
	// service-lifecycle storm.
	ServiceTotal int
	// BindTotal plants bound-service connections: onServiceConnected
	// writes activity state that onDestroy reads and onStop clears.
	BindTotal int
	// MsgChainTotal plants deep Message.what chains: a handler hop
	// writes shared state and forwards to the next handler, MsgChainDepth
	// hops long, so each chain is a depth-long line of message actions.
	MsgChainTotal int
	// MsgChainDepth is the hop count per message chain (min 2).
	MsgChainDepth int
	// ReflectTotal plants reflection-storm dispatch hubs: one slot field
	// conflates ReflectTargets receiver objects, so a single virtual call
	// fans out to every target (DroidEL-style reflective dispatch
	// pressure on the points-to solver).
	ReflectTotal int
	// ReflectTargets is the receiver fan-out per reflection storm.
	ReflectTargets int
	// TrapDepth is the alias-trap helper chain depth (0 = the legacy 3).
	// Depths beyond the policies' k=2 make the trap adversarial for any
	// fixed-k context abstraction; only action sensitivity keeps the
	// per-callback cells apart.
	TrapDepth int
}

// share splits a total count across activities round-robin.
func share(total, acts, ai int) int {
	v := total / acts
	if ai < total%acts {
		v++
	}
	return v
}

// GroundTruth records which planted fields are real races and which are
// known false positives, so measured reports can be classified the way
// the paper's manual inspection classified them.
type GroundTruth struct {
	// TrueFields are fields whose surviving reports are true races.
	TrueFields map[string]bool
	// FPFields are fields whose surviving reports are false positives
	// (implicit dependencies beyond SIERRA's reasoning).
	FPFields map[string]bool
	// RefutableFields are guarded fields the refuter should eliminate;
	// a surviving report on one counts as a false positive.
	RefutableFields map[string]bool
	// TrapFields exist only to conflate under context-insensitive
	// analysis; a surviving report on one counts as a false positive.
	TrapFields map[string]bool
}

// Classify buckets a reported field.
func (gt *GroundTruth) Classify(field string) string {
	switch {
	case gt.TrueFields[field]:
		return "true"
	case gt.FPFields[field], gt.RefutableFields[field], gt.TrapFields[field]:
		return "fp"
	default:
		return "unknown"
	}
}

// Generate builds a synthetic app from knobs. The same (name, knobs)
// always yields the same app.
func Generate(name, installs string, k Knobs) (*apk.App, *GroundTruth) {
	g := &genState{
		gt: &GroundTruth{
			TrueFields:      map[string]bool{},
			FPFields:        map[string]bool{},
			RefutableFields: map[string]bool{},
			TrapFields:      map[string]bool{},
		},
	}
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	app := &apk.App{
		Name:     name,
		Program:  p,
		Installs: installs,
		Manifest: apk.Manifest{Package: "gen." + name},
		Layouts:  map[string]*apk.Layout{},
	}

	for ai := 0; ai < k.Activities; ai++ {
		g.buildActivity(app, ai, k)
	}
	if k.PaddingStmts > 0 {
		g.buildPadding(p, k.PaddingStmts)
	}
	p.Finalize()
	return app, g.gt
}

type genState struct {
	gt             *GroundTruth
	nextID         int
	pendingFillers []pendingFiller
}

// viewID hands out fresh layout resource ids.
func (g *genState) viewID() int {
	g.nextID++
	return 1000 + g.nextID
}

// buildActivity assembles one activity with its planted patterns.
func (g *genState) buildActivity(app *apk.App, ai int, k Knobs) {
	p := app.Program
	actName := fmt.Sprintf("Act%d", ai)
	layoutName := fmt.Sprintf("layout%d", ai)
	act := ir.NewClass(actName, frontend.ActivityClass, frontend.OnScrollListener)
	var views []*apk.View

	onCreate := ir.NewMethodBuilder(frontend.OnCreate)
	onResume := ir.NewMethodBuilder(frontend.OnResume)
	onPause := ir.NewMethodBuilder(frontend.OnPause)
	onStart := ir.NewMethodBuilder(frontend.OnStart)
	onStop := ir.NewMethodBuilder(frontend.OnStop)
	onDestroy := ir.NewMethodBuilder(frontend.OnDestroy)
	scroll := ir.NewMethodBuilder(frontend.OnScroll, "v", "pos")

	// The per-activity alias trap (§3.3): a static helper chain deeper
	// than k=2 that allocates a cell; every participating callback
	// writes its own cell, which only action-sensitive contexts keep
	// apart.
	trapField := fmt.Sprintf("v%d", ai)
	g.gt.TrapFields[trapField] = true
	buildTrapUtil(p, ai, trapField, k.TrapDepth)
	emitTrapInit(onCreate, ai)

	newView := func(cls string) (int, string) {
		id := g.viewID()
		views = append(views, &apk.View{ID: id, Type: cls})
		return id, cls
	}

	// (a) async update patterns (Fig 1).
	nAsync := share(k.AsyncTotal, k.Activities, ai)
	for j := 0; j < nAsync; j++ {
		g.asyncPattern(p, act, onCreate, scroll, ai, j, k.AsyncFields, newView)
	}
	// The scroll listener itself is registered on a dedicated view.
	{
		id, _ := newView(frontend.RecycleViewClass)
		onCreate.Int("idScroll", int64(id))
		onCreate.Call("rvScroll", "this", actName, frontend.FindViewByID, "idScroll")
		onCreate.Call("", "rvScroll", frontend.ViewClass, frontend.SetOnScrollListener, "this")
	}
	// The scroll handler participates in the alias trap.
	emitTrapUse(scroll, ai, trapField)

	// (b) guarded patterns (Fig 8).
	for j := 0; j < share(k.GuardTotal, k.Activities, ai); j++ {
		g.guardPattern(p, act, onCreate, onResume, onPause, ai, j, k.GuardFields, newView)
	}
	// (c) receiver pattern (Fig 2) on activity 0.
	if k.WithReceiver && ai == 0 {
		g.receiverPattern(app, act, onCreate, onStart, onStop, onDestroy, ai)
	}
	// (c') started-service pattern on activity 0.
	if k.WithService && ai == 0 {
		g.servicePattern(app, act, onCreate, onStop, ai)
	}
	// (c'') worker-handler pattern on activity 1.
	if k.WithHandlerThread && ai == 1 {
		g.handlerThreadPattern(p, act, onCreate, onStop, ai)
	}
	// (c''') scenario-family patterns (see scenario.go).
	for j := 0; j < share(k.ServiceTotal, k.Activities, ai); j++ {
		g.serviceStormPattern(app, act, onCreate, onStop, ai, j)
	}
	for j := 0; j < share(k.BindTotal, k.Activities, ai); j++ {
		g.bindServicePattern(app, act, onCreate, onStop, onDestroy, ai, j)
	}
	for j := 0; j < share(k.MsgChainTotal, k.Activities, ai); j++ {
		g.messageChainPattern(p, act, onCreate, onStop, ai, j, k.MsgChainDepth)
	}
	for j := 0; j < share(k.ReflectTotal, k.Activities, ai); j++ {
		g.reflectionStormPattern(p, act, onCreate, onStop, ai, j, k.ReflectTargets, newView)
	}
	// (d) implicit-dependency patterns (designed FPs).
	for j := 0; j < share(k.ImplicitTotal, k.Activities, ai); j++ {
		g.implicitPattern(p, act, onCreate, ai, j, k.ImplicitFields, newView)
	}
	// (e) trap-only callbacks.
	for j := 0; j < share(k.TrapOnlyTotal, k.Activities, ai); j++ {
		g.trapOnlyListener(p, act, onCreate, ai, j, trapField, newView)
	}
	// (f) filler callbacks (activity-local, race-free), chained: each is
	// registered inside the previous one, which nests the harness GUI
	// slots and densifies dominance-derived HB order (Fig 6's
	// onClick2 ≺ onClick3 shape).
	var prevFiller *ir.MethodBuilder
	recvVar := "this" // registration receiver: activity in onCreate
	for j := 0; j < share(k.FillerTotal, k.Activities, ai); j++ {
		regInto := onCreate
		if prevFiller != nil {
			regInto = prevFiller
			recvVar = "v" // the previous callback's view parameter
		}
		prevFiller = g.fillerListener(p, regInto, recvVar, ai, j, newView)
	}
	g.finishFillers()

	// (g) navigation: each activity (except the last) starts the next
	// one from a dedicated click — the launch chain that orders whole
	// activities in the SHBG (and is how real apps reach non-launcher
	// screens).
	if ai+1 < k.Activities {
		g.navListener(p, act, onCreate, ai, newView)
	}

	for _, b := range []*ir.MethodBuilder{onCreate, onResume, onPause, onStart, onStop, onDestroy, scroll} {
		b.Ret("")
	}
	act.AddMethod(onCreate.Build())
	act.AddMethod(onResume.Build())
	act.AddMethod(onPause.Build())
	act.AddMethod(onStart.Build())
	act.AddMethod(onStop.Build())
	act.AddMethod(onDestroy.Build())
	act.AddMethod(scroll.Build())
	p.AddClass(act)

	root := &apk.View{ID: g.viewID(), Type: frontend.ViewClass, Children: views}
	app.Layouts[layoutName] = &apk.Layout{Name: layoutName, Root: root}
	app.Manifest.Activities = append(app.Manifest.Activities,
		apk.Component{Class: actName, Layout: layoutName})
}

// buildTrapUtil creates the §3.3 aliasing trap: a shared per-activity
// helper object whose depth-long virtual chain m1→…→mD allocates a
// Cell. Every caller dispatches on the same helper instance, so k-obj
// (and hybrid) contexts coincide and the per-callback cells conflate
// into one abstract object; only the action id in action-sensitive
// contexts keeps them apart. Each callback writes its own cell — under
// conflation those writes look like races. Depth 0 means the legacy
// 3-deep chain; deeper chains (the alias-trap-deep family) defeat any
// fixed-k context abstraction, not just k=2.
func buildTrapUtil(p *ir.Program, ai int, trapField string, depth int) {
	if depth < 3 {
		depth = 3
	}
	cell := ir.NewClass(fmt.Sprintf("Cell%d", ai), frontend.Object)
	cell.Fields = []string{trapField}
	p.AddClass(cell)

	util := ir.NewClass(fmt.Sprintf("Util%d", ai), frontend.Object)
	last := ir.NewMethodBuilder(fmt.Sprintf("m%d", depth))
	last.NewObj("o", cell.Name)
	last.Ret("o")
	util.AddMethod(last.Build())
	for d := depth - 1; d >= 1; d-- {
		m := ir.NewMethodBuilder(fmt.Sprintf("m%d", d))
		m.Call("r", "this", util.Name, fmt.Sprintf("m%d", d+1))
		m.Ret("r")
		util.AddMethod(m.Build())
	}
	p.AddClass(util)
}

// emitTrapInit allocates the shared helper in onCreate and publishes it
// through a static field so every callback can reach it.
func emitTrapInit(onCreate *ir.MethodBuilder, ai int) {
	onCreate.NewObj("trapUtil", fmt.Sprintf("Util%d", ai))
	onCreate.SStore(fmt.Sprintf("Util%d", ai), "inst", "trapUtil")
}

// emitTrapUse makes a callback allocate its cell through the shared
// helper chain and write its field.
func emitTrapUse(b *ir.MethodBuilder, ai int, trapField string) {
	b.SLoad("util", fmt.Sprintf("Util%d", ai), "inst")
	b.Call("cell", "util", fmt.Sprintf("Util%d", ai), "m1")
	b.Int("tv", 1)
	b.Store("cell", trapField, "tv")
}

// asyncPattern plants one Fig-1-style race: a click-started AsyncTask
// writes shared store fields from the background and from its completion
// callback, while the scroll handler reads them.
func (g *genState) asyncPattern(p *ir.Program, act *ir.Class, onCreate, scroll *ir.MethodBuilder, ai, j, nFields int, newView func(string) (int, string)) {
	if nFields < 1 {
		nFields = 1
	}
	var dataFields []string
	for fi := 0; fi < nFields; fi++ {
		df := fmt.Sprintf("data%d_%d_%d", ai, j, fi)
		dataFields = append(dataFields, df)
		g.gt.TrueFields[df] = true
	}
	cacheF := fmt.Sprintf("cache%d_%d", ai, j)
	g.gt.TrueFields[cacheF] = true

	storeCls := ir.NewClass(fmt.Sprintf("Store%d_%d", ai, j), frontend.Object)
	storeCls.Fields = append(append([]string(nil), dataFields...), cacheF)
	p.AddClass(storeCls)

	// Every third pattern routes its background writes through a bundled
	// third-party library helper, exercising the prioritizer's library
	// bucket (app > framework > library).
	viaLibrary := (ai+j)%3 == 2
	var libCls *ir.Class
	if viaLibrary {
		libCls = ir.NewClass(fmt.Sprintf("Lib%d_%d", ai, j), frontend.Object)
		libCls.Library = true
		lb := ir.NewStaticMethodBuilder("put", "s", "x")
		for _, df := range dataFields {
			lb.Store("s", df, "x")
		}
		lb.Ret("")
		libCls.AddMethod(lb.Build())
		p.AddClass(libCls)
	}

	storeField := fmt.Sprintf("store%d_%d", ai, j)
	act.Fields = append(act.Fields, storeField)

	// Task class.
	task := ir.NewClass(fmt.Sprintf("Task%d_%d", ai, j), frontend.AsyncTaskClass)
	task.Fields = []string{"store"}
	init := ir.NewMethodBuilder("<init>", "s")
	init.Store("this", "store", "s")
	init.Ret("")
	task.AddMethod(init.Build())
	bg := ir.NewMethodBuilder(frontend.DoInBackground)
	bg.Load("s", "this", "store")
	bg.NewObj("x", frontend.BundleClass)
	if viaLibrary {
		bg.CallStatic("", libCls.Name, "put", "s", "x")
	} else {
		for _, df := range dataFields {
			bg.Store("s", df, "x")
		}
	}
	bg.Ret("")
	task.AddMethod(bg.Build())
	post := ir.NewMethodBuilder(frontend.OnPostExecute, "result")
	post.Load("s", "this", "store")
	post.Bool("t", true)
	post.Store("s", cacheF, "t")
	post.Ret("")
	task.AddMethod(post.Build())
	p.AddClass(task)

	// Click listener class launching the task (+ trap participation).
	click := ir.NewClass(fmt.Sprintf("Click%d_%d", ai, j), frontend.Object, frontend.OnClickListener)
	click.Fields = []string{"act"}
	cinit := ir.NewMethodBuilder("<init>", "a")
	cinit.Store("this", "act", "a")
	cinit.Ret("")
	click.AddMethod(cinit.Build())
	cb := ir.NewMethodBuilder(frontend.OnClick, "v")
	cb.Load("a", "this", "act")
	cb.Load("s", "a", storeField)
	cb.NewObj("t", task.Name)
	cb.CallSpecial("", "t", task.Name, "<init>", "s")
	cb.Call("", "t", task.Name, frontend.Execute)
	emitTrapUse(cb, ai, fmt.Sprintf("v%d", ai))
	cb.Ret("")
	click.AddMethod(cb.Build())
	p.AddClass(click)

	// onCreate wiring: store allocation + listener registration.
	id, _ := newView(frontend.ButtonClass)
	sv := fmt.Sprintf("s%d_%d", ai, j)
	lv := fmt.Sprintf("l%d_%d", ai, j)
	bv := fmt.Sprintf("btn%d_%d", ai, j)
	iv := fmt.Sprintf("idb%d_%d", ai, j)
	onCreate.NewObj(sv, storeCls.Name)
	onCreate.Store("this", storeField, sv)
	onCreate.NewObj(lv, click.Name)
	onCreate.CallSpecial("", lv, click.Name, "<init>", "this")
	onCreate.Int(iv, int64(id))
	onCreate.Call(bv, "this", act.Name, frontend.FindViewByID, iv)
	onCreate.Call("", bv, frontend.ViewClass, frontend.SetOnClickListener, lv)

	// The shared scroll handler reads every raced field.
	rs := fmt.Sprintf("rs%d_%d", ai, j)
	scroll.Load(rs, "this", storeField)
	for fi, df := range dataFields {
		scroll.Load(fmt.Sprintf("%s_d%d", rs, fi), rs, df)
	}
	scroll.Load(rs+"_c", rs, cacheF)
}

// guardPattern plants one Fig-8-style ad-hoc-synchronized pattern: a
// posted runnable and onPause's stop() both write accum fields guarded
// by a running flag; the accum pairs are refutable, the flag pair is a
// true benign race.
func (g *genState) guardPattern(p *ir.Program, act *ir.Class, onCreate, onResume, onPause *ir.MethodBuilder, ai, j, nFields int, newView func(string) (int, string)) {
	if nFields < 1 {
		nFields = 1
	}
	runF := fmt.Sprintf("running%d_%d", ai, j)
	g.gt.TrueFields[runF] = true
	var accFields []string
	for fi := 0; fi < nFields; fi++ {
		f := fmt.Sprintf("accum%d_%d_%d", ai, j, fi)
		accFields = append(accFields, f)
		g.gt.RefutableFields[f] = true
	}
	act.Fields = append(act.Fields, runF)
	act.Fields = append(act.Fields, accFields...)
	act.Fields = append(act.Fields,
		fmt.Sprintf("runner%d_%d", ai, j), fmt.Sprintf("timerView%d_%d", ai, j))

	run := ir.NewClass(fmt.Sprintf("Ticker%d_%d", ai, j), frontend.Object, frontend.RunnableIface)
	run.Fields = []string{"act"}
	init := ir.NewMethodBuilder("<init>", "a")
	init.Store("this", "act", "a")
	init.Ret("")
	run.AddMethod(init.Build())
	rb := ir.NewMethodBuilder(frontend.Run)
	rb.Load("a", "this", "act")
	rb.Load("flag", "a", runF)
	then, els := rb.If("flag", ir.CmpEQ, ir.BoolOperand(true))
	rb.SetBlock(then)
	rb.Int("t", 1)
	for _, f := range accFields {
		rb.Store("a", f, "t")
	}
	rb.Ret("")
	rb.SetBlock(els)
	rb.Ret("")
	run.AddMethod(rb.Build())
	p.AddClass(run)

	stopName := fmt.Sprintf("stopTimer%d_%d", ai, j)
	sb := ir.NewMethodBuilder(stopName)
	sb.Load("flag", "this", runF)
	then2, els2 := sb.If("flag", ir.CmpEQ, ir.BoolOperand(true))
	sb.SetBlock(then2)
	sb.Bool("f", false)
	sb.Store("this", runF, "f")
	sb.Int("z", 0)
	for _, f := range accFields {
		sb.Store("this", f, "z")
	}
	sb.Ret("")
	sb.SetBlock(els2)
	sb.Ret("")
	act.AddMethod(sb.Build())

	id, _ := newView(frontend.ViewClass)
	iv := fmt.Sprintf("idt%d_%d", ai, j)
	vv := fmt.Sprintf("tview%d_%d", ai, j)
	rv := fmt.Sprintf("ticker%d_%d", ai, j)
	onCreate.Int(iv, int64(id))
	onCreate.Call(vv, "this", act.Name, frontend.FindViewByID, iv)
	onCreate.Store("this", fmt.Sprintf("timerView%d_%d", ai, j), vv)
	onCreate.NewObj(rv, run.Name)
	onCreate.CallSpecial("", rv, run.Name, "<init>", "this")
	onCreate.Store("this", fmt.Sprintf("runner%d_%d", ai, j), rv)

	tv := fmt.Sprintf("rt%d_%d", ai, j)
	onResume.Bool(tv, true)
	onResume.Store("this", runF, tv)
	onResume.Load(tv+"_v", "this", fmt.Sprintf("timerView%d_%d", ai, j))
	onResume.Load(tv+"_r", "this", fmt.Sprintf("runner%d_%d", ai, j))
	onResume.Call("", tv+"_v", frontend.ViewClass, frontend.Post, tv+"_r")

	onPause.Call("", "this", act.Name, stopName)
}

// receiverPattern plants the Fig-2 inter-component race on activity 0.
func (g *genState) receiverPattern(app *apk.App, act *ir.Class, onCreate, onStart, onStop, onDestroy *ir.MethodBuilder, ai int) {
	p := app.Program
	openF := fmt.Sprintf("open%d", ai)
	dbF := fmt.Sprintf("db%d", ai)
	g.gt.TrueFields[openF] = true
	g.gt.TrueFields[dbF] = true
	act.Fields = append(act.Fields, dbF, fmt.Sprintf("recv%d", ai))

	res := ir.NewClass(fmt.Sprintf("Resource%d", ai), frontend.Object)
	res.Fields = []string{openF}
	op := ir.NewMethodBuilder("open")
	op.Bool("t", true).Store("this", openF, "t")
	op.Ret("")
	res.AddMethod(op.Build())
	cl := ir.NewMethodBuilder("close")
	cl.Bool("f", false).Store("this", openF, "f")
	cl.Ret("")
	res.AddMethod(cl.Build())
	up := ir.NewMethodBuilder("update", "b")
	up.Load("o", "this", openF)
	up.Ret("")
	res.AddMethod(up.Build())
	p.AddClass(res)

	recv := ir.NewClass(fmt.Sprintf("Recv%d", ai), frontend.ReceiverClass)
	recv.Fields = []string{"act"}
	init := ir.NewMethodBuilder("<init>", "a")
	init.Store("this", "act", "a")
	init.Ret("")
	recv.AddMethod(init.Build())
	orb := ir.NewMethodBuilder(frontend.OnReceive, "ctx", "intent")
	orb.Call("b", "intent", frontend.IntentClass, "getExtras")
	orb.Load("a", "this", "act")
	orb.Load("res", "a", dbF)
	orb.Call("", "res", res.Name, "update", "b")
	orb.Ret("")
	recv.AddMethod(orb.Build())
	p.AddClass(recv)

	onCreate.NewObj("resrc", res.Name)
	onCreate.Store("this", dbF, "resrc")
	onCreate.NewObj("rcv", recv.Name)
	onCreate.CallSpecial("", "rcv", recv.Name, "<init>", "this")
	onCreate.Store("this", fmt.Sprintf("recv%d", ai), "rcv")
	onCreate.NewObj("fltr", frontend.IntentFilterClass)
	onCreate.Call("", "this", act.Name, frontend.RegisterReceiver, "rcv", "fltr")

	onStart.Load("resA", "this", dbF)
	onStart.Call("", "resA", res.Name, "open")
	onStop.Load("resB", "this", dbF)
	onStop.Call("", "resB", res.Name, "close")
	onDestroy.Load("rcvD", "this", fmt.Sprintf("recv%d", ai))
	onDestroy.Call("", "this", act.Name, frontend.UnregisterReceiver, "rcvD")
	onDestroy.Null("nulD")
	onDestroy.Store("this", dbF, "nulD")
}

// implicitPattern plants a designed false positive: onCreate's thread
// fills a field that a click handler reads; the app's flow guarantees
// data is ready before any click, but that dependency is beyond SIERRA
// (§6.5's OpenManager example).
func (g *genState) implicitPattern(p *ir.Program, act *ir.Class, onCreate *ir.MethodBuilder, ai, j, nFields int, newView func(string) (int, string)) {
	if nFields < 1 {
		nFields = 1
	}
	var itemFields []string
	for fi := 0; fi < nFields; fi++ {
		f := fmt.Sprintf("items%d_%d_%d", ai, j, fi)
		itemFields = append(itemFields, f)
		g.gt.FPFields[f] = true
	}
	act.Fields = append(act.Fields, itemFields...)

	th := ir.NewClass(fmt.Sprintf("Loader%d_%d", ai, j), frontend.ThreadClass)
	th.Fields = []string{"act2"}
	init := ir.NewMethodBuilder("<init2>", "a")
	init.Store("this", "act2", "a")
	init.Ret("")
	th.AddMethod(init.Build())
	rb := ir.NewMethodBuilder(frontend.Run)
	rb.Load("a", "this", "act2")
	rb.NewObj("x", frontend.BundleClass)
	for _, f := range itemFields {
		rb.Store("a", f, "x")
	}
	rb.Ret("")
	th.AddMethod(rb.Build())
	p.AddClass(th)

	click := ir.NewClass(fmt.Sprintf("ItemClick%d_%d", ai, j), frontend.Object, frontend.OnClickListener)
	click.Fields = []string{"act"}
	cinit := ir.NewMethodBuilder("<init>", "a")
	cinit.Store("this", "act", "a")
	cinit.Ret("")
	click.AddMethod(cinit.Build())
	cb := ir.NewMethodBuilder(frontend.OnClick, "v")
	cb.Load("a", "this", "act")
	for fi, f := range itemFields {
		cb.Load(fmt.Sprintf("x%d", fi), "a", f)
	}
	cb.Ret("")
	click.AddMethod(cb.Build())
	p.AddClass(click)

	id, _ := newView(frontend.ListViewClass)
	tv := fmt.Sprintf("ld%d_%d", ai, j)
	onCreate.NewObj(tv, th.Name)
	onCreate.CallSpecial("", tv, th.Name, "<init2>", "this")
	onCreate.Call("", tv, th.Name, frontend.Start)
	onCreate.NewObj(tv+"_l", click.Name)
	onCreate.CallSpecial("", tv+"_l", click.Name, "<init>", "this")
	onCreate.Int(tv+"_id", int64(id))
	onCreate.Call(tv+"_v", "this", act.Name, frontend.FindViewByID, tv+"_id")
	onCreate.Call("", tv+"_v", frontend.ViewClass, frontend.SetOnClickListener, tv+"_l")
}

// trapOnlyListener adds a click handler that only exercises the alias
// trap — no real shared state.
func (g *genState) trapOnlyListener(p *ir.Program, act *ir.Class, onCreate *ir.MethodBuilder, ai, j int, trapField string, newView func(string) (int, string)) {
	click := ir.NewClass(fmt.Sprintf("TrapClick%d_%d", ai, j), frontend.Object, frontend.OnClickListener)
	cb := ir.NewMethodBuilder(frontend.OnClick, "v")
	emitTrapUse(cb, ai, trapField)
	cb.Ret("")
	click.AddMethod(cb.Build())
	p.AddClass(click)

	id, _ := newView(frontend.ButtonClass)
	tv := fmt.Sprintf("tc%d_%d", ai, j)
	onCreate.NewObj(tv, click.Name)
	onCreate.Int(tv+"_id", int64(id))
	onCreate.Call(tv+"_v", "this", act.Name, frontend.FindViewByID, tv+"_id")
	onCreate.Call("", tv+"_v", frontend.ViewClass, frontend.SetOnClickListener, tv)
}

// fillerListener adds a race-free long-click handler touching only its
// own object. Registration is emitted into regInto (onCreate for the
// first link, the previous filler's callback for the rest), looking the
// target view up through recvVar (the activity, or the previous
// callback's view parameter). The returned builder is the new callback
// body, left open so the next chain link can register inside it; all
// pending bodies are sealed by finishFillers.
func (g *genState) fillerListener(p *ir.Program, regInto *ir.MethodBuilder, recvVar string, ai, j int, newView func(string) (int, string)) *ir.MethodBuilder {
	click := ir.NewClass(fmt.Sprintf("Filler%d_%d", ai, j), frontend.Object, frontend.OnLongClickListener)
	click.Fields = []string{"local"}
	cb := ir.NewMethodBuilder(frontend.OnLongClick, "v")
	cb.Int("x", int64(j))
	cb.Store("this", "local", "x")
	cb.Load("y", "this", "local")

	id, _ := newView(frontend.ButtonClass)
	tv := fmt.Sprintf("fl%d_%d", ai, j)
	regInto.NewObj(tv, click.Name)
	regInto.Int(tv+"_id", int64(id))
	regInto.Call(tv+"_v", recvVar, frontend.ViewClass, frontend.FindViewByID, tv+"_id")
	regInto.Call("", tv+"_v", frontend.ViewClass, frontend.SetOnLongClickListener, tv)

	p.AddClass(click)
	g.pendingFillers = append(g.pendingFillers, pendingFiller{cls: click, b: cb})
	return cb
}

// pendingFiller defers Build of chained filler callbacks until the whole
// chain is emitted (later links register inside earlier bodies).
type pendingFiller struct {
	cls *ir.Class
	b   *ir.MethodBuilder
}

// finishFillers seals and registers all pending filler callbacks.
func (g *genState) finishFillers() {
	for _, pf := range g.pendingFillers {
		pf.b.Ret("")
		pf.cls.AddMethod(pf.b.Build())
	}
	g.pendingFillers = nil
}

// servicePattern plants a started service whose onStartCommand writes
// static state the activity's onStop reads — a service-vs-lifecycle race
// (Table 1's startService row).
func (g *genState) servicePattern(app *apk.App, act *ir.Class, onCreate, onStop *ir.MethodBuilder, ai int) {
	p := app.Program
	stateF := fmt.Sprintf("svcstate%d", ai)
	g.gt.TrueFields[stateF] = true

	svc := ir.NewClass(fmt.Sprintf("Svc%d", ai), frontend.ServiceClass)
	sb := ir.NewMethodBuilder(frontend.OnStartCommand, "intent")
	sb.NewObj("x", frontend.BundleClass)
	sb.SStore(svc.Name, stateF, "x")
	sb.Ret("")
	svc.AddMethod(sb.Build())
	p.AddClass(svc)
	app.Manifest.Services = append(app.Manifest.Services, apk.Component{Class: svc.Name})

	onCreate.NewObj("svcIntent", frontend.IntentClass)
	onCreate.Call("", "this", act.Name, frontend.StartService, "svcIntent")
	onStop.SLoad("svcPeek", svc.Name, stateF)
}

// handlerThreadPattern plants a worker handler bound to a HandlerThread
// looper; its handleMessage writes activity state that onStop reads —
// a background-looper message race (§4.4).
func (g *genState) handlerThreadPattern(p *ir.Program, act *ir.Class, onCreate, onStop *ir.MethodBuilder, ai int) {
	resF := fmt.Sprintf("workres%d", ai)
	g.gt.TrueFields[resF] = true
	act.Fields = append(act.Fields, resF)

	wh := ir.NewClass(fmt.Sprintf("Worker%d", ai), frontend.HandlerClass)
	wh.Fields = []string{"act"}
	hb := ir.NewMethodBuilder(frontend.HandleMessage, "m")
	hb.Load("a", "this", "act")
	hb.NewObj("x", frontend.BundleClass)
	hb.Store("a", resF, "x")
	hb.Ret("")
	wh.AddMethod(hb.Build())
	p.AddClass(wh)

	onCreate.NewObj("ht", frontend.HandlerThreadClass)
	onCreate.CallSpecial("", "ht", frontend.HandlerThreadClass, "<initHT>")
	onCreate.Call("", "ht", frontend.HandlerThreadClass, frontend.Start)
	onCreate.Call("wlp", "ht", frontend.HandlerThreadClass, frontend.GetLooper)
	onCreate.NewObj("wrk", wh.Name)
	onCreate.CallSpecial("", "wrk", frontend.HandlerClass, "<init>", "wlp")
	onCreate.Store("wrk", "act", "this")
	onCreate.Int("wcode", 9)
	onCreate.Call("", "wrk", wh.Name, frontend.SendEmptyMessage, "wcode")
	onStop.Load("wpeek", "this", resF)
}

// navListener plants a click handler that starts the next activity; the
// intent's targetClass field carries the destination for the registry's
// launch-order rule.
func (g *genState) navListener(p *ir.Program, act *ir.Class, onCreate *ir.MethodBuilder, ai int, newView func(string) (int, string)) {
	nextAct := fmt.Sprintf("Act%d", ai+1)
	click := ir.NewClass(fmt.Sprintf("Nav%d", ai), frontend.Object, frontend.OnClickListener)
	click.Fields = []string{"act"}
	init := ir.NewMethodBuilder("<init>", "a")
	init.Store("this", "act", "a")
	init.Ret("")
	click.AddMethod(init.Build())
	cb := ir.NewMethodBuilder(frontend.OnClick, "v")
	cb.Load("a", "this", "act")
	cb.NewObj("tgt", nextAct)
	cb.NewObj("it", frontend.IntentClass)
	cb.Store("it", "targetClass", "tgt")
	cb.Call("", "a", act.Name, frontend.StartActivity, "it")
	cb.Ret("")
	click.AddMethod(cb.Build())
	p.AddClass(click)

	id, _ := newView(frontend.ButtonClass)
	onCreate.NewObj("nav", click.Name)
	onCreate.CallSpecial("", "nav", click.Name, "<init>", "this")
	onCreate.Int("navId", int64(id))
	onCreate.Call("navBtn", "this", act.Name, frontend.FindViewByID, "navId")
	onCreate.Call("", "navBtn", frontend.ViewClass, frontend.SetOnClickListener, "nav")
}

// buildPadding emits plain arithmetic classes unreachable from any
// callback; they contribute bytecode size without analysis cost.
func (g *genState) buildPadding(p *ir.Program, stmts int) {
	const perMethod = 40
	n := 0
	for stmts > 0 {
		c := ir.NewClass(fmt.Sprintf("Pad%d", n), frontend.Object)
		for mi := 0; mi < 4 && stmts > 0; mi++ {
			b := ir.NewStaticMethodBuilder(fmt.Sprintf("compute%d", mi), "x")
			count := perMethod
			if count > stmts {
				count = stmts
			}
			b.Int("acc", 0)
			for i := 0; i < count; i++ {
				b.BinOp("acc", ir.OpAdd, "acc", "x")
			}
			b.Ret("acc")
			stmts -= count
			c.AddMethod(b.Build())
		}
		p.AddClass(c)
		n++
	}
}

// DeriveKnobs inverts a paper table row into generation knobs: pattern
// counts and per-pattern field counts that land the measured statistics
// in the row's neighbourhood. The derivation is approximate by design —
// the paper's apps are real code; ours only needs the same shape.
func DeriveKnobs(r PaperRow, rng *rand.Rand) Knobs {
	acts := r.Harnesses
	if acts < 1 {
		acts = 1
	}
	k := Knobs{
		Activities:        acts,
		WithReceiver:      true,
		WithService:       true,
		WithHandlerThread: acts > 1,
		// ~36 statements model one KB of dex (28 bytes/stmt plus method
		// overhead), so model sizes land near the paper's Table 2 sizes.
		PaddingStmts: r.SizeKB * 36,
	}
	// Refutable candidates: one per guarded field.
	refutable := r.RacyAS - r.AfterRefutation
	if refutable < 0 {
		refutable = 0
	}
	k.GuardTotal = clamp((refutable+5)/6, 1, 2*acts)
	k.GuardFields = clamp((refutable+k.GuardTotal-1)/k.GuardTotal, 1, 12)
	// Designed false positives: one per implicit field.
	if r.FP > 0 {
		k.ImplicitTotal = clamp((r.FP+4)/5, 1, 2*acts)
		k.ImplicitFields = clamp((r.FP+k.ImplicitTotal-1)/k.ImplicitTotal, 1, 8)
	}
	// True races: receiver ≈ 3, each guard pattern 1 (the flag), each
	// async pattern AsyncFields+1.
	trueLeft := r.TrueRaces - 5 - k.GuardTotal
	if trueLeft < 1 {
		trueLeft = 1
	}
	k.AsyncTotal = clamp((trueLeft+4)/5, 1, 2*acts)
	k.AsyncFields = clamp((trueLeft+k.AsyncTotal-1)/k.AsyncTotal-1, 1, 16)

	// The alias trap inflates the no-AS count quadratically per
	// activity: participants k_i give ~C(k_i,2) extra pairs. Attribution
	// sharing under context-insensitive runs already inflates the
	// organic patterns by roughly 2.2×, so the trap only covers the
	// residual deficit.
	organic := float64(r.RacyAS) * 2.2
	deficit := (float64(r.RacyNoAS) - organic) / float64(acts)
	if deficit > 1 {
		ki := int(math.Ceil((1 + math.Sqrt(1+8*deficit)) / 2))
		baseline := (k.AsyncTotal+k.ImplicitTotal)/acts + 2 // + scroll + click
		k.TrapOnlyTotal = clamp((ki-baseline)*acts, 0, 30*acts)
	}
	// Filler listeners absorb the remaining action budget.
	used := acts*11 + k.AsyncTotal*3 + k.GuardTotal + k.ImplicitTotal*2 + k.TrapOnlyTotal + 2
	k.FillerTotal = clamp(r.Actions-used, 0, 40*acts)
	_ = rng
	return k
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
