package corpus

import (
	"fmt"
	"math/rand"
	"sort"

	"sierra/internal/apk"
)

// PaperRow is one row of the paper's Tables 2 and 3 for the 20-app
// dataset: dataset metadata (installs, bytecode size) plus the reported
// per-app measurements used to derive generation knobs.
type PaperRow struct {
	Name     string
	Installs string
	// SizeKB is the .dex size from Table 2.
	SizeKB int
	// Table 3 columns.
	Harnesses       int
	Actions         int
	HBEdges         int
	OrderedPct      int
	RacyNoAS        int
	RacyAS          int
	AfterRefutation int
	TrueRaces       int
	FP              int
	// EventRacer races; -1 where the paper could not run it.
	EventRacer int
}

// PaperRows returns the 20-app dataset exactly as Tables 2 and 3 report
// it.
func PaperRows() []PaperRow {
	return []PaperRow{
		{"APV", "500,000–1,000,000", 736, 4, 84, 1648, 47, 75, 25, 10, 8, 2, 3},
		{"Astrid", "100,000–500,000", 5400, 6, 147, 2755, 26, 319, 83, 54, 37, 17, -1},
		{"BarcodeScanner", "100,000,000–500,000,000", 808, 9, 136, 2756, 30, 64, 24, 15, 11, 4, 7},
		{"Beem", "50,000–100,000", 1700, 12, 169, 3724, 26, 467, 73, 13, 10, 0, 0},
		{"ConnectBot", "1,000,000–5,000,000", 700, 11, 171, 4829, 33, 567, 96, 58, 43, 15, 16},
		{"FBReader", "10,000,000–50,000,000", 1013, 27, 259, 4710, 14, 836, 285, 106, 93, 13, 5},
		{"K-9Mail", "5,000,000–10,000,000", 2800, 29, 312, 5725, 12, 1347, 370, 89, 72, 17, 1},
		{"KeePassDroid", "1,000,000–5,000,000", 489, 15, 216, 4076, 18, 266, 61, 27, 16, 1, 0},
		{"Mileage", "500,000–1,000,000", 641, 50, 331, 8498, 16, 496, 195, 36, 33, 3, 1},
		{"MyTracks", "500,000–1,000,000", 5300, 8, 198, 6826, 35, 634, 174, 80, 75, 5, 34},
		{"NPRNews", "1,000,000–5,000,000", 1500, 13, 490, 10673, 9, 607, 132, 21, 21, 0, 3},
		{"NotePad", "10,000,000–50,000,000", 228, 9, 72, 609, 24, 436, 65, 31, 27, 4, 9},
		{"OpenManager", "N/A", 77, 6, 92, 1036, 25, 532, 113, 55, 51, 4, 5},
		{"OpenSudoku", "1,000,000–5,000,000", 170, 10, 141, 1425, 14, 426, 158, 110, 83, 27, 72},
		{"SipDroid", "1,000,000–5,000,000", 539, 11, 206, 2386, 11, 321, 94, 27, 17, 10, -1},
		{"SuperGenPass", "10,000–50,000", 137, 2, 43, 343, 38, 82, 16, 6, 6, 0, 3},
		{"TippyTipper", "100,000–500,000", 79, 5, 100, 1864, 38, 93, 21, 9, 7, 2, 1},
		{"VLC", "100,000,000–500,000,000", 1100, 13, 151, 2349, 20, 202, 78, 35, 32, 3, 0},
		{"VuDroid", "100,000–500,000", 63, 3, 45, 150, 15, 62, 27, 10, 10, 0, 5},
		{"XBMC", "100,000–500,000", 1100, 13, 330, 4218, 8, 445, 137, 63, 48, 15, 17},
	}
}

// NamedApp generates the synthetic stand-in for one named dataset app,
// returning the app and its planted ground truth.
func NamedApp(row PaperRow) (*apk.App, *GroundTruth) {
	rng := rand.New(rand.NewSource(seedFor(row.Name)))
	k := DeriveKnobs(row, rng)
	return Generate(row.Name, row.Installs, k)
}

// seedFor derives a stable per-name seed.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// FDroidRow synthesizes the i-th app of the 174-app dataset (Table 5).
// Sizes and structure are sampled so the medians land near the paper's
// (median bytecode 1.1 MB-equivalent, 4.5 harnesses, ~67.5 actions).
func FDroidRow(i int) PaperRow {
	rng := rand.New(rand.NewSource(int64(9091*i + 17)))
	harnesses := 2 + rng.Intn(6) // 2..7, median ~4.5
	actions := harnesses*10 + 10 + rng.Intn(40)
	racyAS := 30 + rng.Intn(80)
	after := racyAS * (35 + rng.Intn(30)) / 100
	trueRaces := after * (75 + rng.Intn(20)) / 100
	return PaperRow{
		Name:            fmt.Sprintf("fdroid-%03d", i),
		Installs:        "F-Droid",
		SizeKB:          400 + rng.Intn(1500),
		Harnesses:       harnesses,
		Actions:         actions,
		RacyNoAS:        racyAS * (4 + rng.Intn(3)),
		RacyAS:          racyAS,
		AfterRefutation: after,
		TrueRaces:       trueRaces,
		FP:              rng.Intn(6),
		EventRacer:      -1,
	}
}

// FDroidApp generates the i-th 174-app dataset member.
func FDroidApp(i int) (*apk.App, *GroundTruth) {
	row := FDroidRow(i)
	rng := rand.New(rand.NewSource(int64(31 + i)))
	k := DeriveKnobs(row, rng)
	return Generate(row.Name, row.Installs, k)
}

// FDroidCount is the size of the generated dataset (Table 5).
const FDroidCount = 174

// Names returns the named dataset's app names in table order.
func Names() []string {
	rows := PaperRows()
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Name
	}
	return out
}

// RowByName finds a named dataset row.
func RowByName(name string) (PaperRow, bool) {
	for _, r := range PaperRows() {
		if r.Name == name {
			return r, true
		}
	}
	return PaperRow{}, false
}

// SortedTrueFields lists a ground truth's true fields (test helper).
func (gt *GroundTruth) SortedTrueFields() []string {
	out := make([]string, 0, len(gt.TrueFields))
	for f := range gt.TrueFields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
