// Scenario families: named, knob-tunable generation shapes beyond the
// paper's 20-app dataset. The config-driven generator (config.go) mixes
// weighted families into a corpus stream; each family stresses one part
// of the pipeline the fixed Table-2 derivation does not.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"

	"sierra/internal/apk"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// ScenarioKnob is one tunable size knob of a scenario family.
type ScenarioKnob struct {
	Name    string
	Default int
	Desc    string
}

// Scenario is one named generation family in the registry.
type Scenario struct {
	Name string
	Desc string
	// Weight is the family's default mix weight in a config that lists
	// it without an explicit weight.
	Weight int
	Knobs  []ScenarioKnob
	// derive turns resolved knob values into generation knobs. rng is
	// seeded per app, so the same (family, seed, knobs) triple always
	// yields the same app.
	derive func(rng *rand.Rand, kv map[string]int) Knobs
}

// knob reads a resolved knob value, falling back to the family default.
func (s Scenario) knob(kv map[string]int, name string) int {
	if v, ok := kv[name]; ok {
		return v
	}
	for _, k := range s.Knobs {
		if k.Name == name {
			return k.Default
		}
	}
	return 0
}

// Generate builds one app of this family. Determinism contract: the
// same (appName, seed, knob values) always yields a byte-identical
// serialized app, independent of process, run, or generation worker.
func (s Scenario) Generate(appName string, seed int64, kv map[string]int) (*apk.App, *GroundTruth) {
	rng := rand.New(rand.NewSource(seed))
	k := s.derive(rng, kv)
	return Generate(appName, "stream", k)
}

// scenarios is the family registry. Order here is presentation order
// for -list-scenarios and the README catalog. Built in init so derive
// closures may call ScenarioByName without an initialization cycle.
var scenarios []Scenario

func init() { scenarios = buildScenarios() }

func buildScenarios() []Scenario {
	return []Scenario{
		{
			Name:   "paper-mix",
			Desc:   "a Table-2-shaped app: knobs derived from a sampled paper row",
			Weight: 4,
			Knobs: []ScenarioKnob{
				{"row", -1, "paper row index 0..19 (-1 = sample per app)"},
				{"scale", 1, "multiplier on the row's size and pattern counts"},
			},
			derive: func(rng *rand.Rand, kv map[string]int) Knobs {
				s, _ := ScenarioByName("paper-mix")
				row := s.knob(kv, "row")
				if row < 0 || row >= len(PaperRows()) {
					row = rng.Intn(len(PaperRows()))
				}
				return scaleRowKnobs(PaperRows()[row], rng, s.knob(kv, "scale"))
			},
		},
		{
			Name:   "table2-x10",
			Desc:   "a paper row scaled ~10x in size and pattern counts",
			Weight: 1,
			Knobs: []ScenarioKnob{
				{"row", -1, "paper row index 0..19 (-1 = sample per app)"},
				{"scale", 10, "multiplier on the row's size and pattern counts"},
			},
			derive: func(rng *rand.Rand, kv map[string]int) Knobs {
				s, _ := ScenarioByName("table2-x10")
				row := s.knob(kv, "row")
				if row < 0 || row >= len(PaperRows()) {
					row = rng.Intn(len(PaperRows()))
				}
				return scaleRowKnobs(PaperRows()[row], rng, s.knob(kv, "scale"))
			},
		},
		{
			Name:   "async-storm",
			Desc:   "many Fig-1 AsyncTask update races per activity",
			Weight: 2,
			Knobs: []ScenarioKnob{
				{"activities", 2, "activity (= harness) count"},
				{"patterns", 6, "async patterns across activities"},
				{"fields", 4, "raced fields per pattern"},
				{"filler", 6, "race-free chained listeners"},
			},
			derive: func(rng *rand.Rand, kv map[string]int) Knobs {
				s, _ := ScenarioByName("async-storm")
				return Knobs{
					Activities:  atLeast(s.knob(kv, "activities"), 1),
					AsyncTotal:  jitter(rng, s.knob(kv, "patterns")),
					AsyncFields: atLeast(s.knob(kv, "fields"), 1),
					FillerTotal: s.knob(kv, "filler"),
				}
			},
		},
		{
			Name:   "guarded-sync",
			Desc:   "Fig-8 ad-hoc-synchronized patterns the refuter must eliminate",
			Weight: 2,
			Knobs: []ScenarioKnob{
				{"activities", 2, "activity (= harness) count"},
				{"patterns", 6, "guarded patterns across activities"},
				{"fields", 3, "refutable accum fields per pattern"},
			},
			derive: func(rng *rand.Rand, kv map[string]int) Knobs {
				s, _ := ScenarioByName("guarded-sync")
				return Knobs{
					Activities:  atLeast(s.knob(kv, "activities"), 1),
					AsyncTotal:  1,
					GuardTotal:  jitter(rng, s.knob(kv, "patterns")),
					GuardFields: atLeast(s.knob(kv, "fields"), 1),
				}
			},
		},
		{
			Name:   "service-lifecycle",
			Desc:   "started + bound services racing with the activity lifecycle; startService over-approximates to every manifest service",
			Weight: 2,
			Knobs: []ScenarioKnob{
				{"activities", 2, "activity (= harness) count"},
				{"services", 3, "started services (actions grow ~quadratically)"},
				{"binds", 3, "bound-service connections"},
			},
			derive: func(rng *rand.Rand, kv map[string]int) Knobs {
				s, _ := ScenarioByName("service-lifecycle")
				return Knobs{
					Activities:   atLeast(s.knob(kv, "activities"), 1),
					AsyncTotal:   1,
					ServiceTotal: jitter(rng, s.knob(kv, "services")),
					BindTotal:    s.knob(kv, "binds"),
				}
			},
		},
		{
			Name:   "message-chain",
			Desc:   "deep Message.what chains: handler hops forwarding to the next handler, each writing shared state",
			Weight: 2,
			Knobs: []ScenarioKnob{
				{"activities", 1, "activity (= harness) count"},
				{"chains", 2, "chains per activity"},
				{"depth", 8, "handler hops per chain (min 2)"},
			},
			derive: func(rng *rand.Rand, kv map[string]int) Knobs {
				s, _ := ScenarioByName("message-chain")
				return Knobs{
					Activities:    atLeast(s.knob(kv, "activities"), 1),
					AsyncTotal:    1,
					MsgChainTotal: s.knob(kv, "chains"),
					MsgChainDepth: atLeast(jitter(rng, s.knob(kv, "depth")), 2),
				}
			},
		},
		{
			Name:   "reflection-storm",
			Desc:   "reflective dispatch hubs: one slot field conflating many receivers, so one call fans out to every target",
			Weight: 2,
			Knobs: []ScenarioKnob{
				{"activities", 1, "activity (= harness) count"},
				{"storms", 2, "dispatch hubs per activity"},
				{"targets", 12, "receiver fan-out per hub"},
			},
			derive: func(rng *rand.Rand, kv map[string]int) Knobs {
				s, _ := ScenarioByName("reflection-storm")
				return Knobs{
					Activities:     atLeast(s.knob(kv, "activities"), 1),
					AsyncTotal:     1,
					ReflectTotal:   s.knob(kv, "storms"),
					ReflectTargets: atLeast(jitter(rng, s.knob(kv, "targets")), 2),
				}
			},
		},
		{
			Name:   "alias-trap-deep",
			Desc:   "adversarial alias traps: helper chains deeper than any fixed k, many participating callbacks",
			Weight: 1,
			Knobs: []ScenarioKnob{
				{"activities", 2, "activity (= harness) count"},
				{"depth", 6, "helper chain depth (min 3; defeats k-object contexts of any k < depth)"},
				{"callbacks", 10, "trap-only callbacks across activities"},
			},
			derive: func(rng *rand.Rand, kv map[string]int) Knobs {
				s, _ := ScenarioByName("alias-trap-deep")
				return Knobs{
					Activities:    atLeast(s.knob(kv, "activities"), 1),
					AsyncTotal:    1,
					TrapDepth:     atLeast(s.knob(kv, "depth"), 3),
					TrapOnlyTotal: jitter(rng, s.knob(kv, "callbacks")),
				}
			},
		},
	}
}

// Scenarios lists the registry in presentation order.
func Scenarios() []Scenario {
	return append([]Scenario(nil), scenarios...)
}

// ScenarioByName finds a registered family.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// ScenarioNames lists the registered family names, sorted.
func ScenarioNames() []string {
	out := make([]string, len(scenarios))
	for i, s := range scenarios {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// atLeast clamps from below.
func atLeast(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

// jitter varies a knob ±25% deterministically from the app rng, so a
// weighted mix does not emit structurally identical apps.
func jitter(rng *rand.Rand, v int) int {
	if v <= 1 {
		return v
	}
	span := v / 2
	if span < 1 {
		return v
	}
	return v - span/2 + rng.Intn(span+1)
}

// scaleRowKnobs derives knobs from a paper row with every size-driving
// column multiplied by scale — table2-x10's "apps sized ~10x Table 2".
func scaleRowKnobs(r PaperRow, rng *rand.Rand, scale int) Knobs {
	if scale < 1 {
		scale = 1
	}
	r.SizeKB *= scale
	r.Actions *= scale
	r.RacyNoAS *= scale
	r.RacyAS *= scale
	r.AfterRefutation *= scale
	r.TrueRaces *= scale
	r.FP *= scale
	k := DeriveKnobs(r, rng)
	if scale > 1 {
		// DeriveKnobs clamps pattern counts per activity; lift the caps
		// proportionally so the scaled app really is ~scale× the work.
		k.AsyncTotal = clamp(k.AsyncTotal*scale/2, k.AsyncTotal, 8*k.Activities)
		k.FillerTotal = clamp(k.FillerTotal*scale/2, k.FillerTotal, 80*k.Activities)
		k.ServiceTotal = clamp(scale/2, 2, 6)
		k.MsgChainTotal = 1
		k.MsgChainDepth = clamp(scale, 4, 16)
	}
	return k
}

// serviceStormPattern plants one extra started service: onStartCommand
// writes static service state the activity's onStop reads. Every
// startService site over-approximates to every manifest service, so N
// storm services yield ~N² service actions — the lifecycle storm.
func (g *genState) serviceStormPattern(app *apk.App, act *ir.Class, onCreate, onStop *ir.MethodBuilder, ai, j int) {
	p := app.Program
	stateF := fmt.Sprintf("svcst%d_%d", ai, j)
	g.gt.TrueFields[stateF] = true

	svc := ir.NewClass(fmt.Sprintf("StormSvc%d_%d", ai, j), frontend.ServiceClass)
	sb := ir.NewMethodBuilder(frontend.OnStartCommand, "intent")
	sb.NewObj("x", frontend.BundleClass)
	sb.SStore(svc.Name, stateF, "x")
	sb.Ret("")
	svc.AddMethod(sb.Build())
	p.AddClass(svc)
	app.Manifest.Services = append(app.Manifest.Services, apk.Component{Class: svc.Name})

	iv := fmt.Sprintf("ssIntent%d_%d", ai, j)
	onCreate.NewObj(iv, frontend.IntentClass)
	onCreate.Call("", "this", act.Name, frontend.StartService, iv)
	onStop.SLoad(fmt.Sprintf("ssPeek%d_%d", ai, j), svc.Name, stateF)
}

// bindServicePattern plants one bound-service connection: bindService
// registers a ServiceConnection whose onServiceConnected writes activity
// state that onDestroy reads and onStop clears — the connection-vs-
// lifecycle race family.
func (g *genState) bindServicePattern(app *apk.App, act *ir.Class, onCreate, onStop, onDestroy *ir.MethodBuilder, ai, j int) {
	p := app.Program
	connF := fmt.Sprintf("binder%d_%d", ai, j)
	g.gt.TrueFields[connF] = true
	act.Fields = append(act.Fields, connF)

	svc := ir.NewClass(fmt.Sprintf("BoundSvc%d_%d", ai, j), frontend.ServiceClass)
	ob := ir.NewMethodBuilder(frontend.OnBind, "intent")
	ob.NewObj("b", frontend.BundleClass)
	ob.Ret("b")
	svc.AddMethod(ob.Build())
	p.AddClass(svc)
	app.Manifest.Services = append(app.Manifest.Services, apk.Component{Class: svc.Name})

	conn := ir.NewClass(fmt.Sprintf("Conn%d_%d", ai, j), frontend.Object, frontend.ServiceConnectionIface)
	conn.Fields = []string{"act"}
	init := ir.NewMethodBuilder("<init>", "a")
	init.Store("this", "act", "a")
	init.Ret("")
	conn.AddMethod(init.Build())
	osc := ir.NewMethodBuilder(frontend.OnServiceConnected, "name", "binder")
	osc.Load("a", "this", "act")
	osc.NewObj("x", frontend.BundleClass)
	osc.Store("a", connF, "x")
	osc.Ret("")
	conn.AddMethod(osc.Build())
	p.AddClass(conn)

	cv := fmt.Sprintf("conn%d_%d", ai, j)
	iv := fmt.Sprintf("bsIntent%d_%d", ai, j)
	onCreate.NewObj(cv, conn.Name)
	onCreate.CallSpecial("", cv, conn.Name, "<init>", "this")
	onCreate.NewObj(iv, frontend.IntentClass)
	onCreate.Call("", "this", act.Name, frontend.BindService, iv, cv)

	onStop.Null(fmt.Sprintf("bsNull%d_%d", ai, j))
	onStop.Store("this", connF, fmt.Sprintf("bsNull%d_%d", ai, j))
	onDestroy.Load(fmt.Sprintf("bsPeek%d_%d", ai, j), "this", connF)
}

// messageChainPattern plants one deep Message.what chain: depth handler
// classes, each hop's handleMessage writing its shared hop field and
// forwarding to the next handler with the next what code. The chain is
// a depth-long line of message actions in the SHBG (inter-action rule
// pressure); every hop field races with the activity's onStop read.
func (g *genState) messageChainPattern(p *ir.Program, act *ir.Class, onCreate, onStop *ir.MethodBuilder, ai, j, depth int) {
	if depth < 2 {
		depth = 2
	}
	hopCls := make([]*ir.Class, depth)
	for h := 0; h < depth; h++ {
		hopCls[h] = ir.NewClass(fmt.Sprintf("Chain%d_%d_%d", ai, j, h), frontend.HandlerClass)
		hopCls[h].Fields = []string{"act", "next"}
	}
	for h := 0; h < depth; h++ {
		hopF := fmt.Sprintf("hop%d_%d_%d", ai, j, h)
		g.gt.TrueFields[hopF] = true
		act.Fields = append(act.Fields, hopF)

		hb := ir.NewMethodBuilder(frontend.HandleMessage, "m")
		hb.Load("a", "this", "act")
		hb.NewObj("x", frontend.BundleClass)
		hb.Store("a", hopF, "x")
		if h+1 < depth {
			hb.Load("nxt", "this", "next")
			hb.Int("code", int64(h+1))
			hb.Call("", "nxt", hopCls[h+1].Name, frontend.SendEmptyMessage, "code")
		}
		hb.Ret("")
		hopCls[h].AddMethod(hb.Build())
		p.AddClass(hopCls[h])

		onStop.Load(fmt.Sprintf("hopPeek%d_%d_%d", ai, j, h), "this", hopF)
	}

	// Wire the chain back-to-front (each hop holds its successor), then
	// kick it off with what-code 0. Handlers are constructed without a
	// looper binding, so every hop runs on the main looper.
	for h := depth - 1; h >= 0; h-- {
		hv := fmt.Sprintf("ch%d_%d_%d", ai, j, h)
		onCreate.NewObj(hv, hopCls[h].Name)
		onCreate.Store(hv, "act", "this")
		if h+1 < depth {
			onCreate.Store(hv, "next", fmt.Sprintf("ch%d_%d_%d", ai, j, h+1))
		}
	}
	kick := fmt.Sprintf("kick%d_%d", ai, j)
	onCreate.Int(kick, 0)
	onCreate.Call("", fmt.Sprintf("ch%d_%d_0", ai, j), hopCls[0].Name, frontend.SendEmptyMessage, kick)
}

// reflectionStormPattern plants one reflective dispatch hub: targets
// distinct receiver classes all stored into a single static slot field,
// so the hub callback's virtual invoke fans out to every target — the
// shape DroidEL-resolved reflection leaves behind, and a deliberate
// stress on dispatch resolution (cha_targets, events_fired). Every
// target's invoke writes the shared storm field onStop reads.
func (g *genState) reflectionStormPattern(p *ir.Program, act *ir.Class, onCreate, onStop *ir.MethodBuilder, ai, j, targets int, newView func(string) (int, string)) {
	if targets < 2 {
		targets = 2
	}
	stormF := fmt.Sprintf("storm%d_%d", ai, j)
	g.gt.TrueFields[stormF] = true

	base := ir.NewClass(fmt.Sprintf("ReflBase%d_%d", ai, j), frontend.Object)
	base.Fields = []string{"act"}
	inv := ir.NewMethodBuilder("invoke")
	inv.Load("a", "this", "act")
	inv.NewObj("x", frontend.BundleClass)
	inv.Store("a", stormF, "x")
	inv.Ret("")
	base.AddMethod(inv.Build())
	p.AddClass(base)
	act.Fields = append(act.Fields, stormF)

	// The registry holding the conflated slot.
	reg := ir.NewClass(fmt.Sprintf("ReflReg%d_%d", ai, j), frontend.Object)
	reg.Fields = []string{"slot"}
	p.AddClass(reg)

	for t := 0; t < targets; t++ {
		tc := ir.NewClass(fmt.Sprintf("Refl%d_%d_%d", ai, j, t), base.Name)
		tb := ir.NewMethodBuilder("invoke")
		tb.Load("a", "this", "act")
		tb.NewObj("x", frontend.BundleClass)
		tb.Store("a", stormF, "x")
		tb.Ret("")
		tc.AddMethod(tb.Build())
		p.AddClass(tc)

		tv := fmt.Sprintf("rt%d_%d_%d", ai, j, t)
		onCreate.NewObj(tv, tc.Name)
		onCreate.Store(tv, "act", "this")
		onCreate.SStore(reg.Name, "slot", tv)
	}

	// The hub: a click callback that loads the conflated slot and
	// dispatches — one call edge per target under any policy.
	click := ir.NewClass(fmt.Sprintf("ReflClick%d_%d", ai, j), frontend.Object, frontend.OnClickListener)
	cb := ir.NewMethodBuilder(frontend.OnClick, "v")
	cb.SLoad("tgt", reg.Name, "slot")
	cb.Call("", "tgt", base.Name, "invoke")
	cb.Ret("")
	click.AddMethod(cb.Build())
	p.AddClass(click)

	id, _ := newView(frontend.ButtonClass)
	hv := fmt.Sprintf("rh%d_%d", ai, j)
	onCreate.NewObj(hv, click.Name)
	onCreate.Int(hv+"_id", int64(id))
	onCreate.Call(hv+"_v", "this", act.Name, frontend.FindViewByID, hv+"_id")
	onCreate.Call("", hv+"_v", frontend.ViewClass, frontend.SetOnClickListener, hv)

	onStop.Load(fmt.Sprintf("stormPeek%d_%d", ai, j), "this", stormF)
}
