package corpus

import (
	"fmt"
	"strings"
)

// StageDemoEdit selects a variant of the StageDemo app text. The zero
// value is the baseline; each field is one of the edit classes the
// partial-stage-reuse machinery is fuzzed against (all edits apply to
// group 0's Click2 listener):
type StageDemoEdit struct {
	// IfLine overrides Click2_0.onClick's branch condition — an
	// If-operand-only edit, absorbed by tier-1 whole-stage reuse.
	IfLine string
	// ExtraStmt inserts a statement into Click2_0.onClick's fallthrough
	// block before its return — skeleton-visible. A dataflow sink (say
	// "load w a f1_0") is absorbed by tier-2 partial stage reuse; an
	// inserted call ("call v _ a Act0 helper") is a planned fallback.
	ExtraStmt string
	// WithCall includes a helper call in that same block; a revision
	// pair {WithCall: true} → {} exercises the removed-call class
	// (planned fallback: call removal is never provably inert).
	WithCall bool
	// ExtraHandler adds a fourth listener class to group 0 (a handler
	// add — shape change, planned fallback; the reverse diff is a
	// handler remove).
	ExtraHandler bool
	// ExtraMethod adds an Act0 method (new-method shape change,
	// planned fallback).
	ExtraMethod bool
}

// StageDemoText renders a generated corpus app of `groups` independent
// listener trios, each the IncrDemo pattern: Click1_g spawns an
// AsyncTask writing fields f1_g/f2_g from the background, Click2_g
// reads f1_g behind a constant guard, Click3_g reads f2_g unguarded.
// Groups share nothing but the activity, so an edit inside group 0
// leaves every other group's racy pairs untouched — the splice fraction
// of an incremental re-analysis grows with `groups`, which is what the
// incremental benchmark lane scales on.
func StageDemoText(groups int, ed StageDemoEdit) []byte {
	if groups < 1 {
		groups = 1
	}
	ifLine := ed.IfLine
	if ifLine == "" {
		ifLine = "if c == int 1"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "app StageDemo%d\n", groups)
	b.WriteString("package gen.stagedemo\n")
	b.WriteString("activity Act0 layout layout0\n")
	b.WriteString("layout layout0\n")
	b.WriteString("view layout0 1000 android.view.View -1\n")
	for g := 0; g < groups; g++ {
		for i := 1; i <= 3; i++ {
			fmt.Fprintf(&b, "view layout0 %d android.widget.Button 1000\n", 1000+3*g+i)
		}
	}
	b.WriteString("class Act0 extends android.app.Activity\n")
	for g := 0; g < groups; g++ {
		fmt.Fprintf(&b, "field Act0 f1_%d\n", g)
		fmt.Fprintf(&b, "field Act0 f2_%d\n", g)
	}
	b.WriteString("method Act0 onCreate\nblock Act0 onCreate 0\n")
	for g := 0; g < groups; g++ {
		for i := 1; i <= 3; i++ {
			fmt.Fprintf(&b, "new l%d_%d Click%d_%d\n", i, g, i, g)
			fmt.Fprintf(&b, "call p _ l%d_%d Click%d_%d <init> this\n", i, g, i, g)
			fmt.Fprintf(&b, "const id%d_%d int %d\n", i, g, 1000+3*g+i)
			fmt.Fprintf(&b, "call v b%d_%d this Act0 findViewById id%d_%d\n", i, g, i, g)
			fmt.Fprintf(&b, "call v _ b%d_%d android.view.View setOnClickListener l%d_%d\n", i, g, i, g)
		}
	}
	if ed.ExtraHandler {
		b.WriteString("new l4_0 Click4_0\n")
		b.WriteString("call p _ l4_0 Click4_0 <init> this\n")
		b.WriteString("call v _ b1_0 android.view.View setOnClickListener l4_0\n")
	}
	b.WriteString("ret _\n")
	b.WriteString("method Act0 helper\nblock Act0 helper 0\nret _\n")
	if ed.ExtraMethod {
		b.WriteString("method Act0 extra\nblock Act0 extra 0\nret _\n")
	}
	for g := 0; g < groups; g++ {
		// Click1_g: spawn the task.
		fmt.Fprintf(&b, "class Click1_%d extends java.lang.Object implements android.view.View$OnClickListener\n", g)
		fmt.Fprintf(&b, "field Click1_%d act\n", g)
		fmt.Fprintf(&b, "method Click1_%d <init> params a\nblock Click1_%d <init> 0\nstore this act a\nret _\n", g, g)
		fmt.Fprintf(&b, "method Click1_%d onClick params v\nblock Click1_%d onClick 0\n", g, g)
		fmt.Fprintf(&b, "load a this act\nnew t Task1_%d\ncall p _ t Task1_%d <init> a\ncall v _ t Task1_%d execute\nret _\n", g, g, g)
		// Task1_g: background writes.
		fmt.Fprintf(&b, "class Task1_%d extends android.os.AsyncTask\n", g)
		fmt.Fprintf(&b, "field Task1_%d act\n", g)
		fmt.Fprintf(&b, "method Task1_%d <init> params a\nblock Task1_%d <init> 0\nstore this act a\nret _\n", g, g)
		fmt.Fprintf(&b, "method Task1_%d doInBackground\nblock Task1_%d doInBackground 0\n", g, g)
		fmt.Fprintf(&b, "load a this act\nconst one int 1\nstore a f1_%d one\nstore a f2_%d one\nret _\n", g, g)
		// Click2_g: guarded f1 read; group 0 carries the edits.
		fmt.Fprintf(&b, "class Click2_%d extends java.lang.Object implements android.view.View$OnClickListener\n", g)
		fmt.Fprintf(&b, "field Click2_%d act\n", g)
		fmt.Fprintf(&b, "method Click2_%d <init> params a\nblock Click2_%d <init> 0\nstore this act a\nret _\n", g, g)
		fmt.Fprintf(&b, "method Click2_%d onClick params v\nblock Click2_%d onClick 0 succ 1,2\n", g, g)
		b.WriteString("load a this act\nconst c int 0\n")
		if g == 0 {
			b.WriteString(ifLine + "\n")
		} else {
			b.WriteString("if c == int 1\n")
		}
		fmt.Fprintf(&b, "block Click2_%d onClick 1\nload y a f1_%d\nret _\n", g, g)
		fmt.Fprintf(&b, "block Click2_%d onClick 2\n", g)
		if g == 0 {
			if ed.WithCall {
				b.WriteString("call v _ a Act0 helper\n")
			}
			if ed.ExtraStmt != "" {
				b.WriteString(ed.ExtraStmt + "\n")
			}
		}
		b.WriteString("ret _\n")
		// Click3_g: unguarded f2 read.
		fmt.Fprintf(&b, "class Click3_%d extends java.lang.Object implements android.view.View$OnClickListener\n", g)
		fmt.Fprintf(&b, "field Click3_%d act\n", g)
		fmt.Fprintf(&b, "method Click3_%d <init> params a\nblock Click3_%d <init> 0\nstore this act a\nret _\n", g, g)
		fmt.Fprintf(&b, "method Click3_%d onClick params v\nblock Click3_%d onClick 0\n", g, g)
		fmt.Fprintf(&b, "load a this act\nload z a f2_%d\nret _\n", g)
	}
	if ed.ExtraHandler {
		b.WriteString("class Click4_0 extends java.lang.Object implements android.view.View$OnClickListener\n")
		b.WriteString("field Click4_0 act\n")
		b.WriteString("method Click4_0 <init> params a\nblock Click4_0 <init> 0\nstore this act a\nret _\n")
		b.WriteString("method Click4_0 onClick params v\nblock Click4_0 onClick 0\nload a this act\nload q a f1_0\nret _\n")
	}
	return []byte(b.String())
}
