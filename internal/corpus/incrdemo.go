package corpus

import "strings"

// IncrDemoEdit selects a variant of the IncrDemo app text.
type IncrDemoEdit struct {
	// IfLine overrides Click2.onClick's branch condition. The default
	// guard "if c == int 1" over "const c int 0" makes the guarded f1
	// read infeasible (refuted); "if c == int 0" makes it reachable —
	// an If-operand-only edit, invisible to the fixpoint stages and so
	// eligible for incremental re-analysis.
	IfLine string
	// ExtraStmt appends a statement to Click2.onClick — a
	// skeleton-visible change the tier-1 planner must decline.
	// Admissible statements (dataflow sinks, e.g. "load w a f1") are
	// then absorbed by tier-2 partial stage reuse; anything else falls
	// back to a full run. StageDemo is the richer fixture for the
	// tier-2 edit classes.
	ExtraStmt string
	// ExtraField adds an Act0 field declaration (a shape change:
	// decline).
	ExtraField string
}

// IncrDemoText renders the IncrDemo app in canonical .app text: one
// activity with three buttons. Click1 spawns an AsyncTask writing f1
// and f2 from the background; Click2 reads f1 behind a constant guard;
// Click3 reads f2 unguarded. The Task-write/Click2-read pair and the
// Task-write/Click3-read pair involve disjoint listener callbacks, so
// an edit inside Click2.onClick must re-refute the f1 pair and reuse
// the f2 verdict — the fixture the incremental-analysis and service
// tests are built on.
func IncrDemoText(ed IncrDemoEdit) []byte {
	ifLine := ed.IfLine
	if ifLine == "" {
		ifLine = "if c == int 1"
	}
	var b strings.Builder
	b.WriteString(`app IncrDemo
package gen.incrdemo
activity Act0 layout layout0
layout layout0
view layout0 1000 android.view.View -1
view layout0 1001 android.widget.Button 1000
view layout0 1002 android.widget.Button 1000
view layout0 1003 android.widget.Button 1000
class Act0 extends android.app.Activity
field Act0 f1
field Act0 f2
`)
	if ed.ExtraField != "" {
		b.WriteString("field Act0 " + ed.ExtraField + "\n")
	}
	b.WriteString(`method Act0 onCreate
block Act0 onCreate 0
new l1 Click1
call p _ l1 Click1 <init> this
const id1 int 1001
call v b1 this Act0 findViewById id1
call v _ b1 android.view.View setOnClickListener l1
new l2 Click2
call p _ l2 Click2 <init> this
const id2 int 1002
call v b2 this Act0 findViewById id2
call v _ b2 android.view.View setOnClickListener l2
new l3 Click3
call p _ l3 Click3 <init> this
const id3 int 1003
call v b3 this Act0 findViewById id3
call v _ b3 android.view.View setOnClickListener l3
ret _
class Click1 extends java.lang.Object implements android.view.View$OnClickListener
field Click1 act
method Click1 <init> params a
block Click1 <init> 0
store this act a
ret _
method Click1 onClick params v
block Click1 onClick 0
load a this act
new t Task1
call p _ t Task1 <init> a
call v _ t Task1 execute
ret _
class Task1 extends android.os.AsyncTask
field Task1 act
method Task1 <init> params a
block Task1 <init> 0
store this act a
ret _
method Task1 doInBackground
block Task1 doInBackground 0
load a this act
const one int 1
store a f1 one
store a f2 one
ret _
class Click2 extends java.lang.Object implements android.view.View$OnClickListener
field Click2 act
method Click2 <init> params a
block Click2 <init> 0
store this act a
ret _
method Click2 onClick params v
block Click2 onClick 0 succ 1,2
load a this act
const c int 0
`)
	b.WriteString(ifLine + "\n")
	b.WriteString(`block Click2 onClick 1
load y a f1
ret _
block Click2 onClick 2
`)
	if ed.ExtraStmt != "" {
		b.WriteString(ed.ExtraStmt + "\n")
	}
	b.WriteString(`ret _
class Click3 extends java.lang.Object implements android.view.View$OnClickListener
field Click3 act
method Click3 <init> params a
block Click3 <init> 0
store this act a
ret _
method Click3 onClick params v
block Click3 onClick 0
load a this act
load z a f2
ret _
`)
	return []byte(b.String())
}
