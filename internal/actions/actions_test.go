package actions

import (
	"testing"

	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/frontend"
	"sierra/internal/harness"
	"sierra/internal/ir"
	"sierra/internal/pointer"
)

func discover(t *testing.T, app *apk.App, pol pointer.Policy) (*Registry, *pointer.Result) {
	t.Helper()
	hs := harness.Generate(app)
	return Analyze(app, hs, pol)
}

func find(reg *Registry, kind Kind, callback string) *Action {
	for _, a := range reg.Actions() {
		if a.Kind == kind && a.Callback == callback {
			return a
		}
	}
	return nil
}

func findInstance(reg *Registry, callback string, instance int) *Action {
	for _, a := range reg.Actions() {
		if a.Kind == KindLifecycle && a.Callback == callback && a.Instance == instance {
			return a
		}
	}
	return nil
}

func TestNewsAppActionDiscovery(t *testing.T) {
	app := corpus.NewsApp()
	reg, _ := discover(t, app, pointer.ActionSensitivePolicy{K: 2})

	// Harness root + 9 lifecycle sites + 2 GUI + 2 async = 14.
	var nLifecycle, nGUI int
	for _, a := range reg.Actions() {
		switch a.Kind {
		case KindLifecycle:
			nLifecycle++
		case KindGUI:
			nGUI++
		}
	}
	if nLifecycle != 9 {
		t.Errorf("lifecycle actions = %d, want 9 (7 callbacks, 2 duplicated)", nLifecycle)
	}
	if nGUI != 2 {
		t.Errorf("GUI actions = %d, want 2 (onClick, onScroll)", nGUI)
	}

	bg := find(reg, KindAsyncBackground, frontend.DoInBackground)
	if bg == nil {
		t.Fatal("doInBackground action missing")
	}
	if bg.Class != "LoaderTask" || !bg.Background() {
		t.Errorf("bad background action %v (looper %d)", bg, bg.Looper)
	}
	post := find(reg, KindAsyncPost, frontend.OnPostExecute)
	if post == nil {
		t.Fatal("onPostExecute action missing")
	}
	if !post.OnMainLooper() {
		t.Error("onPostExecute must run on the main looper")
	}

	// Spawn chain: onClick spawns doInBackground; doInBackground spawns
	// onPostExecute (Table 1 + AsyncTask semantics).
	onClick := find(reg, KindGUI, frontend.OnClick)
	if onClick == nil {
		t.Fatal("onClick action missing")
	}
	if len(bg.Spawns) == 0 || bg.Spawns[0].From != onClick.ID {
		t.Errorf("doInBackground spawns = %+v, want from onClick %d", bg.Spawns, onClick.ID)
	}
	if len(post.Spawns) == 0 || post.Spawns[0].From != bg.ID {
		t.Errorf("onPostExecute spawns = %+v, want from doInBackground %d", post.Spawns, bg.ID)
	}
	// AsyncTask-internal edge recorded.
	foundEdge := false
	for _, e := range reg.TaskEdges() {
		if e[0] == bg.ID && e[1] == post.ID {
			foundEdge = true
		}
	}
	if !foundEdge {
		t.Errorf("task edge bg→post missing: %v", reg.TaskEdges())
	}
}

func TestLifecycleActionsHaveHarnessSites(t *testing.T) {
	app := corpus.NewsApp()
	reg, _ := discover(t, app, pointer.ActionSensitivePolicy{K: 2})
	onStart1 := findInstance(reg, frontend.OnStart, 1)
	onStart2 := findInstance(reg, frontend.OnStart, 2)
	if onStart1 == nil || onStart2 == nil {
		t.Fatal("duplicated onStart actions missing")
	}
	if !onStart1.HarnessSite.Valid() || !onStart2.HarnessSite.Valid() {
		t.Error("lifecycle actions need harness sites")
	}
	if onStart1.HarnessSite == onStart2.HarnessSite {
		t.Error("the two onStart instances must have distinct sites")
	}
	if aid, ok := reg.ActionAt(onStart1.HarnessSite); !ok || aid != onStart1.ID {
		t.Error("ActionAt does not map the harness site back to the action")
	}
}

func TestDatabaseAppSystemAction(t *testing.T) {
	app := corpus.DatabaseApp()
	reg, res := discover(t, app, pointer.ActionSensitivePolicy{K: 2})

	recv := find(reg, KindSystem, frontend.OnReceive)
	if recv == nil {
		t.Fatal("onReceive action missing")
	}
	if recv.Class != "DataReceiver" || recv.Scope != -1 {
		t.Errorf("bad receiver action %v scope %d", recv, recv.Scope)
	}
	// Spawned from onCreate (registerReceiver call).
	onCreate := findInstance(reg, frontend.OnCreate, 1)
	spawnedFromOnCreate := false
	for _, s := range recv.Spawns {
		if s.From == onCreate.ID {
			spawnedFromOnCreate = true
		}
	}
	if !spawnedFromOnCreate {
		t.Errorf("onReceive spawns = %+v, want one from onCreate %d", recv.Spawns, onCreate.ID)
	}
	// The receiver's accesses must be reachable: its instances include
	// DataReceiver#onReceive.
	insts := reg.ActionInstances(res)
	foundBody := false
	for _, mk := range insts[recv.ID] {
		if mk.M.QualifiedName() == "DataReceiver#onReceive" {
			foundBody = true
		}
	}
	if !foundBody {
		t.Errorf("onReceive body not attributed to its action: %v", insts[recv.ID])
	}
}

func TestSudokuRunnableAction(t *testing.T) {
	app := corpus.SudokuTimerApp()
	reg, _ := discover(t, app, pointer.ActionSensitivePolicy{K: 2})
	run := find(reg, KindRunnable, frontend.Run)
	if run == nil {
		t.Fatal("posted runnable action missing")
	}
	if run.Class != "TimerRunnable" || !run.OnMainLooper() {
		t.Errorf("bad runnable action %v", run)
	}
	onResume := findInstance(reg, frontend.OnResume, 1)
	fromResume := false
	for _, s := range run.Spawns {
		if s.From == onResume.ID {
			fromResume = true
		}
	}
	if !fromResume {
		t.Errorf("runnable spawns = %+v, want one from onResume", run.Spawns)
	}
	// The postDelayed(this) inside run() posts from its own site, which
	// is a second runnable action whose spawns are delayed and come from
	// runnable actions (including itself — the self-repost loop).
	var repost *Action
	for _, a := range reg.Actions() {
		if a.Kind == KindRunnable && a != run {
			repost = a
		}
	}
	if repost == nil {
		t.Fatal("delayed re-post action missing")
	}
	delayedFromRunnable := false
	for _, s := range repost.Spawns {
		if s.Delayed && (s.From == run.ID || s.From == repost.ID) {
			delayedFromRunnable = true
		}
	}
	if !delayedFromRunnable {
		t.Errorf("re-post spawns = %+v, want delayed from a runnable action", repost.Spawns)
	}
}

func TestActionAttributionDisjointUnderAS(t *testing.T) {
	app := corpus.NewsApp()
	reg, res := discover(t, app, pointer.ActionSensitivePolicy{K: 2})
	insts := reg.ActionInstances(res)
	// Under action sensitivity each non-harness instance belongs to at
	// most one action (contexts carry the action id).
	owner := map[pointer.MKey]int{}
	for aid, keys := range insts {
		for _, mk := range keys {
			if mk.Ctx.Action != aid {
				continue // entry plumbing (harness main under root action)
			}
			if prev, dup := owner[mk]; dup && prev != aid {
				t.Errorf("instance %v attributed to both A%d and A%d", mk, prev, aid)
			}
			owner[mk] = aid
		}
	}
}

func TestAttributionSharedUnderHybrid(t *testing.T) {
	app := corpus.NewsApp()
	reg, res := discover(t, app, pointer.Hybrid{K: 2})
	insts := reg.ActionInstances(res)
	// Without action sensitivity the adapter's add/notify instances are
	// shared between actions — count instances attributed to 2+ actions.
	count := map[string]int{}
	for _, keys := range insts {
		for _, mk := range keys {
			count[mk.String()]++
		}
	}
	shared := 0
	for _, n := range count {
		if n > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("hybrid attribution should share instances between actions")
	}
}

// handlerApp builds an app whose onCreate sends a constant-code message
// to a custom handler, exercising handler actions and the send-site
// constant extraction feeding on-demand constant propagation.
func handlerApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	hc := ir.NewClass("MyHandler", frontend.HandlerClass)
	hb := ir.NewMethodBuilder(frontend.HandleMessage, "m")
	hb.Load("w", "m", "what")
	hb.Ret("")
	hc.AddMethod(hb.Build())
	p.AddClass(hc)

	act := ir.NewClass("HActivity", frontend.ActivityClass)
	act.Fields = []string{"h"}
	b := ir.NewMethodBuilder(frontend.OnCreate)
	b.CallStatic("looper", frontend.LooperClass, frontend.GetMainLooper)
	b.NewObj("h", "MyHandler")
	b.CallSpecial("", "h", frontend.HandlerClass, "<init>", "looper")
	b.Store("this", "h", "h")
	b.CallStatic("msg", frontend.MessageClass, frontend.Obtain)
	b.Int("code", 5)
	b.Store("msg", "what", "code")
	b.Call("", "h", "MyHandler", frontend.SendMessage, "msg")
	b.Ret("")
	act.AddMethod(b.Build())
	p.AddClass(act)
	p.Finalize()

	return &apk.App{
		Name:    "handlerapp",
		Program: p,
		Manifest: apk.Manifest{
			Activities: []apk.Component{{Class: "HActivity"}},
		},
		Layouts: map[string]*apk.Layout{},
	}
}

func TestMessageWhatsExtraction(t *testing.T) {
	app := handlerApp()
	reg, res := discover(t, app, pointer.ActionSensitivePolicy{K: 2})
	msg := find(reg, KindMessage, frontend.HandleMessage)
	if msg == nil {
		t.Fatal("handleMessage action missing")
	}
	if len(msg.MsgWhats) != 1 || msg.MsgWhats[0] != 5 {
		t.Errorf("MsgWhats = %v, want [5]", msg.MsgWhats)
	}
	if !msg.OnMainLooper() {
		t.Error("handler action should be on the main looper")
	}
	onCreate := findInstance(reg, frontend.OnCreate, 1)
	if len(msg.Spawns) == 0 || msg.Spawns[0].From != onCreate.ID {
		t.Errorf("message spawns = %+v, want from onCreate", msg.Spawns)
	}
	// The message parameter must be bound: handleMessage's m points to
	// the obtained Message object.
	hm := app.Program.Class("MyHandler").Methods[frontend.HandleMessage]
	if got := res.PointsToAll(hm, "m"); got.Len() == 0 {
		t.Error("handleMessage's message parameter has empty points-to")
	}
}

// handlerThreadApp binds one handler to a HandlerThread's looper and one
// to the main looper — the §4.4 handler→looper binding scenario.
func handlerThreadApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	wh := ir.NewClass("WorkHandler", frontend.HandlerClass)
	hb := ir.NewMethodBuilder(frontend.HandleMessage, "m")
	hb.Ret("")
	wh.AddMethod(hb.Build())
	p.AddClass(wh)

	uh := ir.NewClass("UIHandler", frontend.HandlerClass)
	ub := ir.NewMethodBuilder(frontend.HandleMessage, "m")
	ub.Ret("")
	uh.AddMethod(ub.Build())
	p.AddClass(uh)

	act := ir.NewClass("HTActivity", frontend.ActivityClass)
	b := ir.NewMethodBuilder(frontend.OnCreate)
	b.NewObj("ht", frontend.HandlerThreadClass)
	b.CallSpecial("", "ht", frontend.HandlerThreadClass, "<initHT>")
	b.Call("", "ht", frontend.HandlerThreadClass, frontend.Start)
	b.Call("bgLooper", "ht", frontend.HandlerThreadClass, frontend.GetLooper)
	b.NewObj("wh", "WorkHandler")
	b.CallSpecial("", "wh", frontend.HandlerClass, "<init>", "bgLooper")
	b.CallStatic("mainLooper", frontend.LooperClass, frontend.GetMainLooper)
	b.NewObj("uh", "UIHandler")
	b.CallSpecial("", "uh", frontend.HandlerClass, "<init>", "mainLooper")
	b.Int("c1", 1)
	b.Call("", "wh", "WorkHandler", frontend.SendEmptyMessage, "c1")
	b.Int("c2", 2)
	b.Call("", "uh", "UIHandler", frontend.SendEmptyMessage, "c2")
	b.Ret("")
	act.AddMethod(b.Build())
	p.AddClass(act)
	p.Finalize()

	return &apk.App{
		Name: "htapp", Program: p,
		Manifest: apk.Manifest{Activities: []apk.Component{{Class: "HTActivity"}}},
		Layouts:  map[string]*apk.Layout{},
	}
}

func TestHandlerThreadLooperBinding(t *testing.T) {
	app := handlerThreadApp()
	reg, _ := discover(t, app, pointer.ActionSensitivePolicy{K: 2})
	var work, ui *Action
	for _, a := range reg.Actions() {
		if a.Kind != KindMessage {
			continue
		}
		switch a.Class {
		case "WorkHandler":
			work = a
		case "UIHandler":
			ui = a
		}
	}
	if work == nil || ui == nil {
		t.Fatalf("message actions missing: work=%v ui=%v", work, ui)
	}
	if work.OnMainLooper() {
		t.Error("WorkHandler's action must be on the HandlerThread looper, not main")
	}
	if work.Looper <= LooperMain {
		t.Errorf("background looper id = %d, want > LooperMain", work.Looper)
	}
	if !ui.OnMainLooper() {
		t.Errorf("UIHandler's action must be on the main looper, got %d", ui.Looper)
	}
	if work.Looper == ui.Looper {
		t.Error("distinct loopers must not collide")
	}
}
