// Package actions reifies Android concurrency as the paper's "concurrency
// actions" (§4.2, Table 1): context-sensitive event processors covering
// threads, async tasks, posted runnables, messages, lifecycle events, GUI
// events, and system events. Actions are the nodes of the Static
// Happens-Before Graph.
package actions

import (
	"fmt"

	"sierra/internal/ir"
)

// Kind classifies actions per Table 1.
type Kind int

const (
	// KindHarnessRoot is the synthetic per-activity startup action (the
	// harness main itself) — the sender of every lifecycle action.
	KindHarnessRoot Kind = iota
	// KindLifecycle is an Activity lifecycle callback instance.
	KindLifecycle
	// KindGUI is a user-input callback.
	KindGUI
	// KindSystem is a broadcast/service callback.
	KindSystem
	// KindAsyncBackground is AsyncTask.doInBackground.
	KindAsyncBackground
	// KindAsyncPre is AsyncTask.onPreExecute (main thread, before the
	// background body).
	KindAsyncPre
	// KindAsyncPost is AsyncTask.onPostExecute (posted to main looper).
	KindAsyncPost
	// KindThread is a background thread body (Thread.run, executor task,
	// timer task).
	KindThread
	// KindRunnable is a Runnable posted to a looper.
	KindRunnable
	// KindMessage is Handler.handleMessage for a posted message.
	KindMessage
)

func (k Kind) String() string {
	return [...]string{
		"harness", "lifecycle", "gui", "system",
		"doInBackground", "onPreExecute", "onPostExecute",
		"thread", "runnable", "message",
	}[k]
}

// Looper identifies the event queue an action executes on.
type Looper int

const (
	// LooperNone: the action runs on a free background thread — no
	// looper atomicity with respect to other actions.
	LooperNone Looper = -1
	// LooperMain: the main (UI) thread's looper. All lifecycle, GUI and
	// system actions run here.
	LooperMain Looper = 0
	// Values above LooperMain identify background loopers (HandlerThread
	// instances), interned per abstract looper object by the registry —
	// the handler→looper binding of §4.4.
)

// Action is one SHBG node.
type Action struct {
	ID   int
	Kind Kind
	// Roots are the handler bodies the action may execute (usually one;
	// GUI slots with over-approximated listener classes may have more).
	Roots []*ir.Method
	// Class is the implementing class of the handler.
	Class string
	// Callback is the handler method name (onCreate, run, …).
	Callback string
	// Instance numbers duplicated lifecycle callbacks (onStart "1"/"2").
	Instance int
	// HarnessSite is the harness call site for lifecycle/GUI actions.
	HarnessSite ir.Pos
	// Scope indexes the owning harness (activity); -1 for app-global
	// actions (system events).
	Scope int
	// Looper is where the action runs.
	Looper Looper
	// Spawns records every site that creates/posts this action.
	Spawns []Spawn
	// MsgWhats collects constant message codes observed at send sites —
	// input to the refuter's on-demand constant propagation.
	MsgWhats []int64
}

// Spawn records one creation/posting of an action.
type Spawn struct {
	// From is the spawning action's id (NoSpawner when unknown, e.g.
	// manifest-declared receivers enabled at install time).
	From int
	// Site is the spawn call site.
	Site ir.Pos
	// Delayed marks postDelayed/sendMessageDelayed/schedule: delayed
	// posts break the FIFO reasoning of inter-action transitivity.
	Delayed bool
	// Posted marks real looper-queue posts (Handler/View posts,
	// messages, AsyncTask's completion callback). Only posted spawns
	// participate in the FIFO-based HB rules 4/5/6; synthetic harness
	// invocation records and system registrations do not.
	Posted bool
}

// NoSpawner marks spawns with no known spawning action.
const NoSpawner = -1

// Name renders a stable human-readable action name.
func (a *Action) Name() string {
	switch a.Kind {
	case KindHarnessRoot:
		return fmt.Sprintf("harness[%s]", a.Class)
	case KindLifecycle:
		return fmt.Sprintf("%s[%s]#%d", a.Callback, a.Class, a.Instance)
	default:
		return fmt.Sprintf("%s[%s]", a.Callback, a.Class)
	}
}

func (a *Action) String() string {
	return fmt.Sprintf("A%d:%s(%s)", a.ID, a.Name(), a.Kind)
}

// OnMainLooper reports whether the action runs on the main looper.
func (a *Action) OnMainLooper() bool { return a.Looper == LooperMain }

// Background reports whether the action runs off-looper.
func (a *Action) Background() bool { return a.Looper == LooperNone }

// SameScope reports whether two actions can belong to the same execution
// (same activity harness, or either is app-global).
func SameScope(a, b *Action) bool {
	return a.Scope == -1 || b.Scope == -1 || a.Scope == b.Scope
}
