package actions

import (
	"context"

	"sierra/internal/apk"
	"sierra/internal/harness"
	"sierra/internal/obs"
	"sierra/internal/pointer"
)

// Analyze runs the joint action-discovery / points-to fixpoint for an
// app whose harnesses have already been generated: it builds the
// registry, wires the harness GUI receiver seeds and view map into the
// pointer analysis, and returns both the populated registry and the
// points-to result.
//
// Call it twice with different policies (action-sensitive vs hybrid) to
// reproduce the paper's with/without-action-sensitivity comparison; the
// harnesses are shared.
func Analyze(app *apk.App, hs []*harness.Harness, pol pointer.Policy) (*Registry, *pointer.Result) {
	return AnalyzeTraced(app, hs, pol, nil)
}

// AnalyzeTraced is Analyze with observability: the trace is handed to
// the pointer analysis (pointer.* counters) and receives the discovered
// action count (actions.discovered). Nil Trace = no-op.
func AnalyzeTraced(app *apk.App, hs []*harness.Harness, pol pointer.Policy, tr *obs.Trace) (*Registry, *pointer.Result) {
	return AnalyzeContext(nil, app, hs, pol, tr)
}

// AnalyzeContext is AnalyzeTraced with cooperative cancellation: the
// context (nil = never cancelled) is threaded into the pointer
// analysis, whose fixpoint stops early once it is done (the returned
// result is then marked Interrupted).
func AnalyzeContext(ctx context.Context, app *apk.App, hs []*harness.Harness, pol pointer.Policy, tr *obs.Trace) (*Registry, *pointer.Result) {
	return AnalyzeSolver(ctx, app, hs, pol, pointer.SolverDelta, 0, tr)
}

// AnalyzeSolver is AnalyzeContext with an explicit points-to solver
// selection (the -pta-solver flag's plumbing) and worker count (the
// -pta-jobs flag; ≤1 = the exact sequential fixpoint, >1 the
// SCC-partitioned parallel delta solver — identical results either
// way). Both solvers produce identical results; SolverExhaustive is the
// slow reference implementation kept for parity testing.
func AnalyzeSolver(ctx context.Context, app *apk.App, hs []*harness.Harness, pol pointer.Policy, solver pointer.Solver, ptaJobs int, tr *obs.Trace) (*Registry, *pointer.Result) {
	reg, res, _ := AnalyzeSolverWarm(ctx, app, hs, pol, solver, ptaJobs, tr)
	return reg, res
}

// AnalyzeSolverWarm is AnalyzeSolver, but additionally returns the
// pointer solver's warm re-solve handle (nil under the exhaustive
// solver or when the fixpoint was interrupted). Incremental serve
// baselines keep the handle to re-solve skeleton-visible edits without
// a cold fixpoint; everyone else should call AnalyzeSolver and let the
// solver state be collected.
func AnalyzeSolverWarm(ctx context.Context, app *apk.App, hs []*harness.Harness, pol pointer.Policy, solver pointer.Solver, ptaJobs int, tr *obs.Trace) (*Registry, *pointer.Result, *pointer.Warm) {
	reg := NewRegistry(app, hs, pol)

	var seeds []pointer.Seed
	for _, h := range hs {
		for _, slot := range h.GUI {
			if slot.BindActivity {
				seeds = append(seeds, pointer.Seed{
					SrcMethod: h.Method, SrcVar: h.ActivityVar,
					DstMethod: h.Method, DstVar: slot.RecvVar,
				})
			}
			for _, bind := range slot.Bindings {
				seeds = append(seeds, pointer.Seed{
					SrcMethod: bind.SrcMethod, SrcVar: bind.SrcVar,
					DstMethod: h.Method, DstVar: slot.RecvVar,
				})
			}
		}
	}

	views := make(map[int]string)
	for id, v := range app.ViewIDs() {
		views[id] = v.Type
	}

	res, warm := pointer.AnalyzeWarm(pointer.Config{
		Prog:     app.Program,
		Policy:   pol,
		Entries:  reg.Entries(),
		Seeds:    seeds,
		Views:    views,
		OnEvent:  reg.OnEvent,
		ActionAt: reg.ActionAt,
		Solver:   solver,
		Jobs:     ptaJobs,
		Obs:      tr,
		Ctx:      ctx,
	})
	tr.Count("actions.discovered", int64(reg.NumActions()))
	return reg, res, warm
}
