package actions

import (
	"fmt"
	"sort"
	"sync"

	"sierra/internal/apk"
	"sierra/internal/frontend"
	"sierra/internal/harness"
	"sierra/internal/ir"
	"sierra/internal/pointer"
)

// Registry discovers and owns all actions of one app. It plugs into the
// pointer analysis as its OnEvent hook: spawn APIs observed during the
// analysis create actions and new analysis entries on the fly, so action
// discovery and points-to resolution reach a joint fixpoint.
type Registry struct {
	App       *apk.App
	Harnesses []*harness.Harness
	Policy    pointer.Policy

	actions    []*Action
	byKey      map[string]*Action
	siteAction map[ir.Pos]int
	// taskEdges are AsyncTask-internal orderings (pre ≺ bg ≺ post).
	taskEdges [][2]int
	// entryKeys records the analysis entry instances per action.
	entryKeys map[int][]pointer.MKey
	// synthSites maps class → synthetic allocation-site id for
	// framework-instantiated components.
	synthSites map[string]int
	// harnessRoot maps activity class → harness-root action id.
	harnessRoot map[string]int
	// looperIDs interns background looper objects (§4.4 handler→looper
	// binding); the main looper singleton maps to LooperMain.
	looperIDs  map[pointer.Obj]Looper
	nextLooper Looper
	nextSynth  int
	// instMu guards instMemo, the per-Result ActionInstances cache.
	// The attribution is a pure function of (registry, result) and the
	// pipeline asks for it at least twice per app (access collection and
	// refuter construction), so recomputing the reachability closures
	// each time was a measurable share of refuter setup.
	instMu   sync.Mutex
	instMemo map[*pointer.Result]map[int][]pointer.MKey
}

// NewRegistry creates the registry and the upfront actions: one harness
// root per activity, one lifecycle action per harness lifecycle site,
// one GUI action per harness slot, and one system action per
// manifest-declared receiver.
func NewRegistry(app *apk.App, hs []*harness.Harness, pol pointer.Policy) *Registry {
	r := &Registry{
		App:         app,
		Harnesses:   hs,
		Policy:      pol,
		byKey:       make(map[string]*Action),
		siteAction:  make(map[ir.Pos]int),
		entryKeys:   make(map[int][]pointer.MKey),
		harnessRoot: make(map[string]int),
		looperIDs:   make(map[pointer.Obj]Looper),
		nextLooper:  LooperMain + 1,
		nextSynth:   -100,
	}
	p := app.Program
	for hi, h := range hs {
		root := r.add(&Action{
			Kind:     KindHarnessRoot,
			Roots:    []*ir.Method{h.Method},
			Class:    h.Activity,
			Callback: "main",
			Scope:    hi,
			Looper:   LooperMain,
		}, fmt.Sprintf("harness:%d", hi))
		r.harnessRoot[h.Activity] = root.ID
		for _, site := range h.Lifecycle {
			a := r.add(&Action{
				Kind:        KindLifecycle,
				Roots:       methods(p.ResolveMethod(h.Activity, site.Callback)),
				Class:       h.Activity,
				Callback:    site.Callback,
				Instance:    site.Instance,
				HarnessSite: site.Pos,
				Scope:       hi,
				Looper:      LooperMain,
				Spawns:      []Spawn{{From: root.ID, Site: site.Pos}},
			}, fmt.Sprintf("lc:%d:%s:%d", hi, site.Callback, site.Instance))
			r.siteAction[site.Pos] = a.ID
		}
		for si, slot := range h.GUI {
			var roots []*ir.Method
			for _, cls := range slot.Classes {
				if m := p.ResolveMethod(cls, slot.Callback); m != nil {
					roots = append(roots, m)
				}
			}
			cls := h.Activity
			if len(slot.Classes) == 1 {
				cls = slot.Classes[0]
			}
			a := r.add(&Action{
				Kind:        KindGUI,
				Roots:       roots,
				Class:       cls,
				Callback:    slot.Callback,
				HarnessSite: slot.Pos,
				Scope:       hi,
				Looper:      LooperMain,
				Spawns:      []Spawn{{From: root.ID, Site: slot.Pos}},
			}, fmt.Sprintf("gui:%d:%d", hi, si))
			r.siteAction[slot.Pos] = a.ID
		}
	}
	// Manifest-declared receivers are enabled at install time.
	for _, comp := range app.Manifest.Receivers {
		if m := p.ResolveMethod(comp.Class, frontend.OnReceive); m != nil && !m.Class.Framework {
			r.add(&Action{
				Kind:     KindSystem,
				Roots:    []*ir.Method{m},
				Class:    comp.Class,
				Callback: frontend.OnReceive,
				Scope:    -1,
				Looper:   LooperMain,
				Spawns:   []Spawn{{From: NoSpawner}},
			}, "recv-class:"+comp.Class)
		}
	}
	return r
}

func methods(ms ...*ir.Method) []*ir.Method {
	var out []*ir.Method
	for _, m := range ms {
		if m != nil {
			out = append(out, m)
		}
	}
	return out
}

// add registers an action under a dedup key, returning the existing one
// if present.
func (r *Registry) add(a *Action, key string) *Action {
	if have, ok := r.byKey[key]; ok {
		return have
	}
	a.ID = len(r.actions)
	r.actions = append(r.actions, a)
	r.byKey[key] = a
	return a
}

// Actions returns all actions in id order.
func (r *Registry) Actions() []*Action { return r.actions }

// Get returns the action with the given id.
func (r *Registry) Get(id int) *Action { return r.actions[id] }

// NumActions reports the action count.
func (r *Registry) NumActions() int { return len(r.actions) }

// ActionAt implements the pointer.Config hook: harness lifecycle and GUI
// call sites enter their action.
func (r *Registry) ActionAt(pos ir.Pos) (int, bool) {
	id, ok := r.siteAction[pos]
	return id, ok
}

// TaskEdges returns AsyncTask-internal HB edges (pre ≺ bg ≺ post).
func (r *Registry) TaskEdges() [][2]int { return r.taskEdges }

// Entries returns the initial pointer-analysis entries: the harness
// mains (as harness-root actions) plus manifest-declared system actions.
func (r *Registry) Entries() []pointer.Entry {
	var out []pointer.Entry
	for _, a := range r.actions {
		switch a.Kind {
		case KindHarnessRoot:
			ctx := pointer.EntryContext(r.Policy, a.ID, pointer.Obj{}, false)
			e := pointer.Entry{Method: a.Roots[0], Ctx: ctx}
			r.recordEntry(a.ID, e)
			out = append(out, e)
		case KindSystem:
			// Manifest receivers: framework-created instance.
			obj := r.synthObj(a.Class)
			ctx := pointer.EntryContext(r.Policy, a.ID, obj, true)
			for _, m := range a.Roots {
				e := pointer.Entry{Method: m, Ctx: ctx, This: []pointer.Obj{obj}}
				r.recordEntry(a.ID, e)
				out = append(out, e)
			}
		}
	}
	return out
}

func (r *Registry) recordEntry(id int, e pointer.Entry) {
	mk := pointer.MKey{M: e.Method, Ctx: e.Ctx}
	for _, have := range r.entryKeys[id] {
		if have == mk {
			return
		}
	}
	r.entryKeys[id] = append(r.entryKeys[id], mk)
}

// synthObj returns a per-class synthetic abstract object for
// framework-instantiated components (manifest receivers, services).
func (r *Registry) synthObj(cls string) pointer.Obj {
	return r.synthObjKeyed(cls, cls)
}

// synthObjKeyed returns a synthetic object with an explicit identity key
// (e.g. one Message per sendEmptyMessage site).
func (r *Registry) synthObjKeyed(key, cls string) pointer.Obj {
	if r.synthSites == nil {
		r.synthSites = make(map[string]int)
	}
	site, ok := r.synthSites[key]
	if !ok {
		site = r.nextSynth
		r.nextSynth--
		r.synthSites[key] = site
	}
	return pointer.Obj{Site: site, Class: cls, Ctx: "synthetic"}
}

// OnEvent implements the pointer.Config hook: recognized spawn APIs turn
// into actions and analysis entries. It is idempotent — the engine
// re-fires events as points-to sets grow.
func (r *Registry) OnEvent(ev pointer.Event) []pointer.Entry {
	p := r.App.Program
	from := ev.Caller.Ctx.Action
	scope := r.scopeOf(from)
	var out []pointer.Entry

	switch ev.API.Kind {
	case frontend.APIExecuteAsyncTask:
		for _, o := range ev.Recv {
			key := fmt.Sprintf("task:%v:%s", ev.Pos, o.Class)
			pre := r.appMethod(p, o.Class, frontend.OnPreExecute)
			bg := r.appMethod(p, o.Class, frontend.DoInBackground)
			post := r.appMethod(p, o.Class, frontend.OnPostExecute)
			var preA, bgA, postA *Action
			if pre != nil {
				preA = r.add(&Action{Kind: KindAsyncPre, Roots: []*ir.Method{pre},
					Class: o.Class, Callback: frontend.OnPreExecute, Scope: scope,
					Looper: LooperMain}, key+":pre")
				r.addSpawn(preA, Spawn{From: from, Site: ev.Pos})
				out = append(out, r.spawnEntry(preA, pre, o)...)
			}
			if bg != nil {
				bgA = r.add(&Action{Kind: KindAsyncBackground, Roots: []*ir.Method{bg},
					Class: o.Class, Callback: frontend.DoInBackground, Scope: scope,
					Looper: LooperNone}, key+":bg")
				r.addSpawn(bgA, Spawn{From: from, Site: ev.Pos})
				out = append(out, r.spawnEntry(bgA, bg, o)...)
			}
			if post != nil && bgA != nil {
				postA = r.add(&Action{Kind: KindAsyncPost, Roots: []*ir.Method{post},
					Class: o.Class, Callback: frontend.OnPostExecute, Scope: scope,
					Looper: LooperMain}, key+":post")
				r.addSpawn(postA, Spawn{From: bgA.ID, Site: ev.Pos, Posted: true})
				out = append(out, r.spawnEntry(postA, post, o)...)
			}
			if preA != nil && bgA != nil {
				r.addTaskEdge(preA.ID, bgA.ID)
			}
			if bgA != nil && postA != nil {
				r.addTaskEdge(bgA.ID, postA.ID)
			}
		}

	case frontend.APIThreadStart:
		for _, o := range ev.Recv {
			run := p.ResolveMethod(o.Class, frontend.Run)
			if run == nil {
				continue
			}
			a := r.add(&Action{Kind: KindThread, Roots: []*ir.Method{run},
				Class: o.Class, Callback: frontend.Run, Scope: scope,
				Looper: LooperNone}, fmt.Sprintf("thread:%v:%s", ev.Pos, o.Class))
			r.addSpawn(a, Spawn{From: from, Site: ev.Pos})
			out = append(out, r.spawnEntry(a, run, o)...)
		}

	case frontend.APIExecutorExecute, frontend.APITimerSchedule:
		for _, o := range ev.Args[ev.API.Arg] {
			run := p.ResolveMethod(o.Class, frontend.Run)
			if run == nil {
				continue
			}
			a := r.add(&Action{Kind: KindThread, Roots: []*ir.Method{run},
				Class: o.Class, Callback: frontend.Run, Scope: scope,
				Looper: LooperNone}, fmt.Sprintf("exec:%v:%s", ev.Pos, o.Class))
			r.addSpawn(a, Spawn{From: from, Site: ev.Pos, Delayed: ev.API.Delayed})
			out = append(out, r.spawnEntry(a, run, o)...)
		}

	case frontend.APIPostRunnable:
		looper := LooperMain
		if ev.API.Target == frontend.TargetHandlerLooper {
			looper = r.looperOf(ev, ev.Recv)
		}
		for _, o := range ev.Args[ev.API.Arg] {
			run := p.ResolveMethod(o.Class, frontend.Run)
			if run == nil {
				continue
			}
			a := r.add(&Action{Kind: KindRunnable, Roots: []*ir.Method{run},
				Class: o.Class, Callback: frontend.Run, Scope: scope,
				Looper: looper}, fmt.Sprintf("post:%v:%s", ev.Pos, o.Class))
			// Points-to grows monotonically across event refires; adopt
			// the more specific looper once the binding resolves.
			if looper != LooperMain {
				a.Looper = looper
			}
			r.addSpawn(a, Spawn{From: from, Site: ev.Pos, Delayed: ev.API.Delayed, Posted: true})
			out = append(out, r.spawnEntry(a, run, o)...)
		}

	case frontend.APISendMessage:
		whats := messageWhats(ev)
		looper := r.looperOf(ev, ev.Recv)
		for _, o := range ev.Recv {
			hm := r.appMethod(p, o.Class, frontend.HandleMessage)
			if hm == nil {
				continue
			}
			a := r.add(&Action{Kind: KindMessage, Roots: []*ir.Method{hm},
				Class: o.Class, Callback: frontend.HandleMessage, Scope: scope,
				Looper: looper}, fmt.Sprintf("msg:%v:%s", ev.Pos, o.Class))
			if looper != LooperMain {
				a.Looper = looper
			}
			r.addSpawn(a, Spawn{From: from, Site: ev.Pos, Delayed: ev.API.Delayed, Posted: true})
			a.MsgWhats = mergeWhats(a.MsgWhats, whats)
			entries := r.spawnEntry(a, hm, o)
			// Bind the message parameter: to the send argument, or — for
			// sendEmptyMessage — to a synthetic per-site Message object
			// so the refuter's constant propagation has a carrier for
			// the what constraint.
			if len(hm.Params) > 0 {
				if ev.Inv.Method == frontend.SendEmptyMessage {
					msg := r.synthObjKeyed(fmt.Sprintf("msg:%v", ev.Pos), frontend.MessageClass)
					for i := range entries {
						entries[i].ParamObjs = map[string][]pointer.Obj{hm.Params[0]: {msg}}
					}
				} else {
					src := pointer.VarKey{M: ev.Caller.M, Ctx: ev.Caller.Ctx, Var: ev.Inv.Args[0]}
					for i := range entries {
						entries[i].ParamFrom = map[string]pointer.VarKey{hm.Params[0]: src}
					}
				}
			}
			out = append(out, entries...)
		}

	case frontend.APIRegisterReceiver:
		for _, o := range ev.Args[ev.API.Arg] {
			m := r.appMethod(p, o.Class, frontend.OnReceive)
			if m == nil {
				continue
			}
			// Receivers are keyed by class: a manifest declaration and a
			// dynamic registration of the same receiver are one action.
			a := r.add(&Action{Kind: KindSystem, Roots: []*ir.Method{m},
				Class: o.Class, Callback: frontend.OnReceive, Scope: -1,
				Looper: LooperMain}, "recv-class:"+o.Class)
			r.addSpawn(a, Spawn{From: from, Site: ev.Pos})
			e := r.spawnEntry(a, m, o)
			// The intent parameter gets a synthetic Intent object.
			if len(m.Params) >= 2 {
				intent := r.synthObj(frontend.IntentClass)
				for i := range e {
					e[i].ParamObjs = map[string][]pointer.Obj{m.Params[1]: {intent}}
				}
			}
			out = append(out, e...)
		}

	case frontend.APIStartService:
		// The intent's target class is opaque statically; over-
		// approximate to every manifest service.
		for _, comp := range r.App.Manifest.Services {
			m := r.appMethod(p, comp.Class, frontend.OnStartCommand)
			if m == nil {
				continue
			}
			a := r.add(&Action{Kind: KindSystem, Roots: []*ir.Method{m},
				Class: comp.Class, Callback: frontend.OnStartCommand, Scope: -1,
				Looper: LooperMain}, fmt.Sprintf("svc:%v:%s", ev.Pos, comp.Class))
			r.addSpawn(a, Spawn{From: from, Site: ev.Pos})
			obj := r.synthObj(comp.Class)
			ctx := pointer.EntryContext(r.Policy, a.ID, obj, true)
			e := pointer.Entry{Method: m, Ctx: ctx, This: []pointer.Obj{obj}}
			r.recordEntry(a.ID, e)
			out = append(out, e)
		}

	case frontend.APIStartActivity:
		// Activity launch order: the started activity's whole harness is
		// ordered after the starting action. The intent's target is read
		// from its targetClass field (the frontend's intent model); an
		// unresolvable target adds no order — the sound default.
		for _, intent := range ev.Args[ev.API.Arg] {
			if ev.FieldObjs == nil {
				break
			}
			for _, tgt := range ev.FieldObjs(intent, "targetClass") {
				rootID, ok := r.harnessRoot[tgt.Class]
				if !ok {
					continue
				}
				root := r.actions[rootID]
				// Never order an activity after itself (navigation
				// cycles would corrupt the HB relation).
				if root.Scope == scope {
					continue
				}
				r.addSpawn(root, Spawn{From: from, Site: ev.Pos})
			}
		}

	case frontend.APIBindService:
		for _, o := range ev.Args[ev.API.Arg] {
			m := r.appMethod(p, o.Class, frontend.OnServiceConnected)
			if m == nil {
				continue
			}
			a := r.add(&Action{Kind: KindSystem, Roots: []*ir.Method{m},
				Class: o.Class, Callback: frontend.OnServiceConnected, Scope: -1,
				Looper: LooperMain}, fmt.Sprintf("conn:%v:%s", ev.Pos, o.Class))
			r.addSpawn(a, Spawn{From: from, Site: ev.Pos})
			out = append(out, r.spawnEntry(a, m, o)...)
		}
	}
	return out
}

// spawnEntry builds the analysis entry for a spawned action root.
func (r *Registry) spawnEntry(a *Action, m *ir.Method, recv pointer.Obj) []pointer.Entry {
	ctx := pointer.EntryContext(r.Policy, a.ID, recv, true)
	e := pointer.Entry{Method: m, Ctx: ctx, This: []pointer.Obj{recv}}
	r.recordEntry(a.ID, e)
	return []pointer.Entry{e}
}

// appMethod resolves cls#name, returning it only when the implementation
// is app code (framework default bodies are no-op callbacks, not
// actions).
func (r *Registry) appMethod(p *ir.Program, cls, name string) *ir.Method {
	m := p.ResolveMethod(cls, name)
	if m == nil || (m.Class != nil && m.Class.Framework) {
		return nil
	}
	return m
}

// addSpawn appends a spawn record, deduplicating.
func (r *Registry) addSpawn(a *Action, s Spawn) {
	for _, have := range a.Spawns {
		if have == s {
			return
		}
	}
	a.Spawns = append(a.Spawns, s)
}

func (r *Registry) addTaskEdge(from, to int) {
	for _, have := range r.taskEdges {
		if have[0] == from && have[1] == to {
			return
		}
	}
	r.taskEdges = append(r.taskEdges, [2]int{from, to})
}

// looperOf resolves the looper a handler posts to: the handler objects'
// looper field points-to sets, interned per background looper object.
// Unresolvable bindings default to the main looper (the common case for
// handlers constructed with getMainLooper).
func (r *Registry) looperOf(ev pointer.Event, handlers []pointer.Obj) Looper {
	if ev.FieldObjs == nil {
		return LooperMain
	}
	for _, h := range handlers {
		for _, lo := range ev.FieldObjs(h, "looper") {
			if lo.Site == pointer.SiteMainLooper {
				return LooperMain
			}
			if id, ok := r.looperIDs[lo]; ok {
				return id
			}
			id := r.nextLooper
			r.nextLooper++
			r.looperIDs[lo] = id
			return id
		}
	}
	return LooperMain
}

// scopeOf returns the harness scope of an action id (or -1).
func (r *Registry) scopeOf(id int) int {
	if id < 0 || id >= len(r.actions) {
		return -1
	}
	return r.actions[id].Scope
}

// ActionInstances attributes call-graph instances to actions by
// reachability from each action's entry instances. Under action-
// sensitive policies the sets are disjoint (contexts carry the action
// id); under insensitive policies method instances shared between
// actions attribute to all of them — exactly the imprecision action
// sensitivity removes.
//
// The result is memoized per Result and shared: callers must treat the
// returned map and its slices as read-only.
func (r *Registry) ActionInstances(res *pointer.Result) map[int][]pointer.MKey {
	r.instMu.Lock()
	defer r.instMu.Unlock()
	if out, ok := r.instMemo[res]; ok {
		return out
	}
	out := make(map[int][]pointer.MKey, len(r.actions))
	for _, a := range r.actions {
		roots := append([]pointer.MKey(nil), r.entryKeys[a.ID]...)
		// Lifecycle/GUI actions enter via their harness call site.
		if a.HarnessSite.Valid() {
			h := r.Harnesses[a.Scope]
			for _, mainMK := range res.InstancesOf(h.Method) {
				roots = append(roots, res.CalleesAt(mainMK, a.HarnessSite)...)
			}
		}
		reach := res.ReachableFrom(roots...)
		keys := make([]pointer.MKey, 0, len(reach))
		for mk := range reach {
			keys = append(keys, mk)
		}
		// Decorate-sort: render each key once instead of O(n log n)
		// times inside the comparator (this runs per action and was the
		// refuter-construction hot spot).
		names := make([]string, len(keys))
		for i, mk := range keys {
			names[i] = mk.String()
		}
		sort.Sort(&keysByName{keys: keys, names: names})
		out[a.ID] = keys
	}
	if r.instMemo == nil {
		r.instMemo = map[*pointer.Result]map[int][]pointer.MKey{}
	}
	r.instMemo[res] = out
	return out
}

// keysByName sorts MKeys by their pre-rendered String forms, keeping
// the two slices aligned.
type keysByName struct {
	keys  []pointer.MKey
	names []string
}

func (s *keysByName) Len() int           { return len(s.keys) }
func (s *keysByName) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *keysByName) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.names[i], s.names[j] = s.names[j], s.names[i]
}

// messageWhats extracts constant message codes at a send site: the
// direct constant of sendEmptyMessage, or constants stored into the
// message argument's "what" field within the sending method.
func messageWhats(ev pointer.Event) []int64 {
	m := ev.Caller.M
	if ev.Inv.Method == frontend.SendEmptyMessage {
		return ir.ConstIntDefs(m, ev.Inv.Args[0])
	}
	arg := ev.Inv.Args[0]
	var out []int64
	for _, blk := range m.Blocks {
		for _, s := range blk.Stmts {
			if st, ok := s.(*ir.Store); ok && st.Field == "what" && st.Obj == arg {
				out = append(out, ir.ConstIntDefs(m, st.Src)...)
			}
		}
	}
	return out
}

func mergeWhats(have, more []int64) []int64 {
	seen := map[int64]bool{}
	for _, w := range have {
		seen[w] = true
	}
	for _, w := range more {
		if !seen[w] {
			seen[w] = true
			have = append(have, w)
		}
	}
	return have
}
