package core

import (
	"context"
	"testing"
	"time"

	"sierra/internal/corpus"
)

// TestAnalyzeContextCancelled drives the cancellation contract from the
// top: with a dead context the pipeline must return quickly with a
// partial, well-formed Result — every stage still runs (so downstream
// consumers keep their non-nil Registry/Graph invariants) but each
// bails at its first cancellation poll.
func TestAnalyzeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the pipeline starts

	start := time.Now()
	res := AnalyzeContext(ctx, corpus.NewsApp(), Options{CompareContexts: true})
	elapsed := time.Since(start)

	if !res.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if res.InterruptedStage != "cgpa" {
		t.Errorf("InterruptedStage = %q, want cgpa (the earliest stage)", res.InterruptedStage)
	}
	if res.Registry == nil || res.Graph == nil {
		t.Fatal("partial result dropped the Registry/Graph invariants")
	}
	if len(res.AllVerdicts) > len(res.RacyPairs) {
		t.Errorf("verdicts (%d) exceed racy pairs (%d)", len(res.AllVerdicts), len(res.RacyPairs))
	}
	// "Quickly" here is generous — the uncancelled pipeline on this app
	// takes noticeably longer than a second only on starved CI machines,
	// but a cancelled one must not do real pointer-analysis work at all.
	if elapsed > 5*time.Second {
		t.Errorf("cancelled run took %v", elapsed)
	}
}

// TestAnalyzeContextNilMatchesAnalyze pins the compatibility contract:
// Analyze is AnalyzeContext with a nil (never-cancelled) context.
func TestAnalyzeContextNilMatchesAnalyze(t *testing.T) {
	a := Analyze(corpus.NewsApp(), Options{})
	b := AnalyzeContext(nil, corpus.NewsApp(), Options{})
	if a.Interrupted || b.Interrupted {
		t.Fatal("uncancelled runs marked Interrupted")
	}
	if a.NumActions() != b.NumActions() || a.HBEdges() != b.HBEdges() ||
		len(a.RacyPairs) != len(b.RacyPairs) || a.TrueRaces() != b.TrueRaces() {
		t.Errorf("nil-context run diverges from Analyze: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.NumActions(), a.HBEdges(), len(a.RacyPairs), a.TrueRaces(),
			b.NumActions(), b.HBEdges(), len(b.RacyPairs), b.TrueRaces())
	}
}
