// Package core orchestrates the SIERRA pipeline (Fig 3): harness
// generation → action discovery + context-sensitive points-to analysis →
// Static Happens-Before Graph → racy-pair generation → symbolic
// refutation → ranked race reports. It is the library's public analysis
// entry point.
package core

import (
	"context"
	"time"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/harness"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/race"
	"sierra/internal/report"
	"sierra/internal/shbg"
	"sierra/internal/symexec"
)

// Options configures an analysis run.
type Options struct {
	// Policy is the context-sensitivity policy (default: the paper's
	// action-sensitive hybrid abstraction with k = 2).
	Policy pointer.Policy
	// CompareContexts additionally runs the pipeline under plain hybrid
	// contexts to fill the "racy pairs without action sensitivity"
	// column of Table 3.
	CompareContexts bool
	// SkipRefutation stops after racy-pair generation.
	SkipRefutation bool
	// Refuter tunes the symbolic executor.
	Refuter symexec.Config
	// SHBG tunes happens-before construction (rule ablation).
	SHBG shbg.Options
	// PTASolver selects the points-to fixpoint implementation
	// (pointer.SolverDelta, the default, or pointer.SolverExhaustive —
	// the -pta-solver flag). Both produce identical results.
	PTASolver pointer.Solver
	// PTAJobs bounds the delta solver's SCC-partitioned worker count
	// (the -pta-jobs flag); ≤1 runs the exact sequential fixpoint. Any
	// count produces bit-identical results.
	PTAJobs int
	// KeepPTAWarm retains the delta solver's live state on
	// Result.PTAWarm so a later skeleton-visible edit can be re-solved
	// incrementally (internal/incremental's stage reuse). Costs memory
	// proportional to the solver's dependency index; leave off outside
	// serve-baseline use.
	KeepPTAWarm bool
	// Obs, when non-nil, collects hierarchical spans and per-stage
	// effort counters for the whole pipeline (see README.md
	// "Observability"). Nil disables observability at zero cost.
	Obs *obs.Trace
}

// Timing records per-stage wall-clock durations (Table 4's columns).
// The components partition Total: CGPA + HBG + Pairs + Compare +
// Refutation accounts for the whole pipeline.
type Timing struct {
	// CGPA covers harness generation, call graph and pointer analysis.
	CGPA time.Duration
	// HBG covers SHBG construction.
	HBG time.Duration
	// Pairs covers access collection and racy-pair generation.
	Pairs time.Duration
	// Compare covers the optional plain-hybrid rerun (CompareContexts).
	Compare time.Duration
	// Refutation covers backward symbolic execution and ranking.
	Refutation time.Duration
	// Total is the whole pipeline.
	Total time.Duration
}

// Result carries everything a run produced.
type Result struct {
	App       *apk.App
	Harnesses []*harness.Harness
	Registry  *actions.Registry
	PTA       *pointer.Result
	// PTAWarm is the delta solver's warm re-solve handle, populated only
	// under Options.KeepPTAWarm (nil otherwise, and nil whenever the
	// solver cannot re-solve — exhaustive solver or interrupted run).
	PTAWarm  *pointer.Warm
	Graph    *shbg.Graph
	Accesses []race.Access
	// RacyPairs are the candidates under the configured policy.
	RacyPairs []race.Pair
	// RacyPairsNoAS is the candidate count under plain hybrid contexts
	// (only when CompareContexts is set).
	RacyPairsNoAS int
	// AllVerdicts align with RacyPairs (every candidate's refutation
	// outcome; nil when refutation is skipped, shorter than RacyPairs
	// when the run was Interrupted mid-refutation).
	AllVerdicts []symexec.Verdict
	// Verdicts align with the surviving pairs (the Reports' order input).
	Verdicts []symexec.Verdict
	// Reports are the surviving races, ranked.
	Reports []report.Report
	Timing  Timing
	// Interrupted marks a run whose context was cancelled (or timed out)
	// mid-pipeline: every recorded fact is real but the result is
	// partial. InterruptedStage names the earliest stage that noticed
	// ("cgpa", "shbg", "pairs", "compare", "refute").
	Interrupted      bool
	InterruptedStage string
}

// NumHarnesses returns the per-activity harness count.
func (r *Result) NumHarnesses() int { return len(r.Harnesses) }

// NumActions returns the SHBG node count.
func (r *Result) NumActions() int { return r.Registry.NumActions() }

// HBEdges returns the SHBG edge count after closure.
func (r *Result) HBEdges() int { return r.Graph.NumEdges() }

// OrderedPercent is Table 3's "Ordered (%)" column.
func (r *Result) OrderedPercent() float64 { return 100 * r.Graph.OrderedFraction() }

// TrueRaces counts reports (races surviving refutation).
func (r *Result) TrueRaces() int { return len(r.Reports) }

// Analyze runs the full pipeline on one app. The app's program is
// extended with synthetic harness classes; analyze each app instance at
// most once (corpus constructors return fresh instances).
func Analyze(app *apk.App, opts Options) *Result {
	return AnalyzeContext(nil, app, opts)
}

// AnalyzeContext is Analyze with cooperative cancellation (ctx nil =
// never cancelled). The expensive loops — the pointer-analysis
// worklist, the SHBG closure rounds, the symbolic-execution path loop,
// and the per-pair refutation loop here — poll the context and stop
// early once it is done, so a deadline yields a well-formed partial
// Result (marked Interrupted, with the earliest affected stage in
// InterruptedStage) instead of a stuck process. Every stage still runs:
// a cancelled context makes each one cheap rather than skipped, keeping
// the Result's shape invariants (non-nil Registry/Graph) intact.
func AnalyzeContext(ctx context.Context, app *apk.App, opts Options) *Result {
	if opts.Policy == nil {
		opts.Policy = pointer.ActionSensitivePolicy{K: 2}
	}
	if opts.PTASolver == "" {
		opts.PTASolver = pointer.SolverDelta
	}
	tr := opts.Obs
	res := &Result{App: app}
	// mark records the earliest stage at which the context was already
	// cancelled (checked at every stage boundary).
	mark := func(stage string) {
		if !res.Interrupted && ctx != nil && ctx.Err() != nil {
			res.Interrupted = true
			res.InterruptedStage = stage
		}
	}
	start := time.Now()
	span := tr.Start("analyze")

	// Stage 1: harness + call graph + pointer analysis (+ actions).
	t0 := time.Now()
	sHarness := tr.Start("harness")
	res.Harnesses = harness.GenerateTraced(app, tr)
	sHarness.End()
	sCGPA := tr.Start("cgpa")
	var reg *actions.Registry
	var pta *pointer.Result
	if opts.KeepPTAWarm {
		reg, pta, res.PTAWarm = actions.AnalyzeSolverWarm(ctx, app, res.Harnesses, opts.Policy, opts.PTASolver, opts.PTAJobs, tr)
	} else {
		reg, pta = actions.AnalyzeSolver(ctx, app, res.Harnesses, opts.Policy, opts.PTASolver, opts.PTAJobs, tr)
	}
	sCGPA.End()
	res.Registry, res.PTA = reg, pta
	res.Timing.CGPA = time.Since(t0)
	mark("cgpa")

	// Stage 2: Static Happens-Before Graph.
	t1 := time.Now()
	sSHBG := tr.Start("shbg")
	shbgOpts := opts.SHBG
	shbgOpts.Obs = tr
	shbgOpts.Ctx = ctx
	res.Graph = shbg.Build(reg, pta, shbgOpts)
	sSHBG.End()
	res.Timing.HBG = time.Since(t1)
	mark("shbg")

	// Stage 3: racy pairs (the action-sensitive run is authoritative;
	// the hybrid rerun only contributes its candidate count).
	t2 := time.Now()
	sPairs := tr.Start("pairs")
	res.Accesses = race.CollectAccessesTraced(reg, pta, tr)
	res.RacyPairs = race.RacyPairsTraced(reg, res.Graph, res.Accesses, tr)
	sPairs.End()
	res.Timing.Pairs = time.Since(t2)
	mark("pairs")
	if opts.CompareContexts {
		t3 := time.Now()
		sCompare := tr.Start("compare")
		// The rerun is deliberately untraced so the counters describe
		// the authoritative (action-sensitive) run only.
		plainSHBG := opts.SHBG
		plainSHBG.Obs = nil
		plainSHBG.Ctx = ctx
		regH, ptaH := actions.AnalyzeSolver(ctx, app, res.Harnesses, pointer.Hybrid{K: 2}, opts.PTASolver, opts.PTAJobs, nil)
		gH := shbg.Build(regH, ptaH, plainSHBG)
		pairsH := race.RacyPairs(regH, gH, race.CollectAccesses(regH, ptaH))
		res.RacyPairsNoAS = len(pairsH)
		sCompare.End()
		res.Timing.Compare = time.Since(t3)
		mark("compare")
	}

	// Stage 4: refutation + ranking.
	t4 := time.Now()
	if !opts.SkipRefutation {
		sRefute := tr.Start("refute")
		refCfg := opts.Refuter
		refCfg.Obs = tr
		refCfg.Ctx = ctx
		var survivors []race.Pair
		var verdicts []symexec.Verdict
		all, interrupted := symexec.CheckAll(reg, pta, refCfg, res.RacyPairs)
		res.AllVerdicts = all
		if interrupted {
			mark("refute")
		}
		for i, v := range all {
			if v.TruePositive {
				survivors = append(survivors, res.RacyPairs[i])
				verdicts = append(verdicts, v)
			}
		}
		sRefute.End()
		res.Verdicts = verdicts
		sRank := tr.Start("rank")
		res.Reports = report.Rank(app.Program, survivors, verdicts)
		sRank.End()
		mark("refute")
	}
	res.Timing.Refutation = time.Since(t4)
	res.Timing.Total = time.Since(start)
	tr.Count("core.reports", int64(len(res.Reports)))
	tr.Observe("core.analyze_ms", float64(res.Timing.Total)/1e6)
	if res.Interrupted {
		tr.Count("core.interrupted", 1)
	}
	span.End()
	return res
}
