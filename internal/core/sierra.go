// Package core orchestrates the SIERRA pipeline (Fig 3): harness
// generation → action discovery + context-sensitive points-to analysis →
// Static Happens-Before Graph → racy-pair generation → symbolic
// refutation → ranked race reports. It is the library's public analysis
// entry point.
package core

import (
	"time"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/harness"
	"sierra/internal/pointer"
	"sierra/internal/race"
	"sierra/internal/report"
	"sierra/internal/shbg"
	"sierra/internal/symexec"
)

// Options configures an analysis run.
type Options struct {
	// Policy is the context-sensitivity policy (default: the paper's
	// action-sensitive hybrid abstraction with k = 2).
	Policy pointer.Policy
	// CompareContexts additionally runs the pipeline under plain hybrid
	// contexts to fill the "racy pairs without action sensitivity"
	// column of Table 3.
	CompareContexts bool
	// SkipRefutation stops after racy-pair generation.
	SkipRefutation bool
	// Refuter tunes the symbolic executor.
	Refuter symexec.Config
	// SHBG tunes happens-before construction (rule ablation).
	SHBG shbg.Options
}

// Timing records per-stage wall-clock durations (Table 4's columns).
type Timing struct {
	// CGPA covers harness generation, call graph and pointer analysis.
	CGPA time.Duration
	// HBG covers SHBG construction.
	HBG time.Duration
	// Refutation covers backward symbolic execution.
	Refutation time.Duration
	// Total is the whole pipeline.
	Total time.Duration
}

// Result carries everything a run produced.
type Result struct {
	App       *apk.App
	Harnesses []*harness.Harness
	Registry  *actions.Registry
	PTA       *pointer.Result
	Graph     *shbg.Graph
	Accesses  []race.Access
	// RacyPairs are the candidates under the configured policy.
	RacyPairs []race.Pair
	// RacyPairsNoAS is the candidate count under plain hybrid contexts
	// (only when CompareContexts is set).
	RacyPairsNoAS int
	// Verdicts align with RacyPairs.
	Verdicts []symexec.Verdict
	// Reports are the surviving races, ranked.
	Reports []report.Report
	Timing  Timing
}

// NumHarnesses returns the per-activity harness count.
func (r *Result) NumHarnesses() int { return len(r.Harnesses) }

// NumActions returns the SHBG node count.
func (r *Result) NumActions() int { return r.Registry.NumActions() }

// HBEdges returns the SHBG edge count after closure.
func (r *Result) HBEdges() int { return r.Graph.NumEdges() }

// OrderedPercent is Table 3's "Ordered (%)" column.
func (r *Result) OrderedPercent() float64 { return 100 * r.Graph.OrderedFraction() }

// TrueRaces counts reports (races surviving refutation).
func (r *Result) TrueRaces() int { return len(r.Reports) }

// Analyze runs the full pipeline on one app. The app's program is
// extended with synthetic harness classes; analyze each app instance at
// most once (corpus constructors return fresh instances).
func Analyze(app *apk.App, opts Options) *Result {
	if opts.Policy == nil {
		opts.Policy = pointer.ActionSensitivePolicy{K: 2}
	}
	res := &Result{App: app}
	start := time.Now()

	// Stage 1: harness + call graph + pointer analysis (+ actions).
	t0 := time.Now()
	res.Harnesses = harness.Generate(app)
	reg, pta := actions.Analyze(app, res.Harnesses, opts.Policy)
	res.Registry, res.PTA = reg, pta
	res.Timing.CGPA = time.Since(t0)

	// Stage 2: Static Happens-Before Graph.
	t1 := time.Now()
	res.Graph = shbg.Build(reg, pta, opts.SHBG)
	res.Timing.HBG = time.Since(t1)

	// Stage 3: racy pairs (the action-sensitive run is authoritative;
	// the hybrid rerun only contributes its candidate count).
	res.Accesses = race.CollectAccesses(reg, pta)
	res.RacyPairs = race.RacyPairs(reg, res.Graph, res.Accesses)
	if opts.CompareContexts {
		regH, ptaH := actions.Analyze(app, res.Harnesses, pointer.Hybrid{K: 2})
		gH := shbg.Build(regH, ptaH, opts.SHBG)
		pairsH := race.RacyPairs(regH, gH, race.CollectAccesses(regH, ptaH))
		res.RacyPairsNoAS = len(pairsH)
	}

	// Stage 4: refutation + ranking.
	t2 := time.Now()
	if !opts.SkipRefutation {
		ref := symexec.NewRefuter(reg, pta, opts.Refuter)
		var survivors []race.Pair
		var verdicts []symexec.Verdict
		for _, p := range res.RacyPairs {
			v := ref.Check(p)
			if v.TruePositive {
				survivors = append(survivors, p)
				verdicts = append(verdicts, v)
			}
		}
		res.Verdicts = verdicts
		res.Reports = report.Rank(app.Program, survivors, verdicts)
	}
	res.Timing.Refutation = time.Since(t2)
	res.Timing.Total = time.Since(start)
	return res
}
