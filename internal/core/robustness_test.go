package core

import (
	"testing"

	"sierra/internal/apk"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// bareApp wraps a program as an app with the given activities.
func bareApp(p *ir.Program, activities ...string) *apk.App {
	p.Finalize()
	var comps []apk.Component
	for _, a := range activities {
		comps = append(comps, apk.Component{Class: a})
	}
	return &apk.App{
		Name:     "degenerate",
		Program:  p,
		Manifest: apk.Manifest{Activities: comps},
		Layouts:  map[string]*apk.Layout{},
	}
}

func freshProgram() *ir.Program {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	return p
}

func TestNoActivitiesApp(t *testing.T) {
	res := Analyze(bareApp(freshProgram()), Options{CompareContexts: true})
	if res.NumHarnesses() != 0 || res.NumActions() != 0 {
		t.Errorf("empty app produced harnesses=%d actions=%d", res.NumHarnesses(), res.NumActions())
	}
	if len(res.RacyPairs) != 0 || res.TrueRaces() != 0 {
		t.Error("empty app produced races")
	}
}

func TestActivityWithNoOverrides(t *testing.T) {
	p := freshProgram()
	p.AddClass(ir.NewClass("Empty", frontend.ActivityClass))
	res := Analyze(bareApp(p, "Empty"), Options{})
	// The harness still models the full lifecycle (framework stubs).
	if res.NumHarnesses() != 1 {
		t.Fatalf("harnesses = %d", res.NumHarnesses())
	}
	if res.TrueRaces() != 0 {
		t.Error("no-op activity produced races")
	}
}

func TestSelfRecursiveMethod(t *testing.T) {
	p := freshProgram()
	act := ir.NewClass("Rec", frontend.ActivityClass)
	b := ir.NewMethodBuilder(frontend.OnCreate)
	b.Call("", "this", "Rec", "spin")
	b.Ret("")
	act.AddMethod(b.Build())
	spin := ir.NewMethodBuilder("spin")
	then, els := spin.IfStar()
	spin.SetBlock(then)
	spin.Call("", "this", "Rec", "spin") // direct recursion
	spin.Ret("")
	spin.SetBlock(els)
	spin.Store("this", "x", "this")
	spin.Ret("")
	act.AddMethod(spin.Build())
	act.Fields = []string{"x"}
	p.AddClass(act)
	res := Analyze(bareApp(p, "Rec"), Options{})
	if res.NumActions() == 0 {
		t.Fatal("recursion broke action discovery")
	}
}

func TestMutualRecursionThroughPosts(t *testing.T) {
	// Two runnables posting each other — the action graph has a spawn
	// cycle; the pipeline must terminate and stay acyclic in HB.
	p := freshProgram()
	for _, pair := range [][2]string{{"Ping", "Pong"}, {"Pong", "Ping"}} {
		c := ir.NewClass(pair[0], frontend.Object, frontend.RunnableIface)
		c.Fields = []string{"view", "other"}
		b := ir.NewMethodBuilder(frontend.Run)
		b.Load("v", "this", "view")
		b.Load("o", "this", "other")
		b.Call("", "v", frontend.ViewClass, frontend.Post, "o")
		b.Ret("")
		c.AddMethod(b.Build())
		p.AddClass(c)
	}
	act := ir.NewClass("A", frontend.ActivityClass)
	b := ir.NewMethodBuilder(frontend.OnCreate)
	b.Int("id", 1)
	b.Call("v", "this", "A", frontend.FindViewByID, "id")
	b.NewObj("ping", "Ping")
	b.NewObj("pong", "Pong")
	b.Store("ping", "view", "v")
	b.Store("pong", "view", "v")
	b.Store("ping", "other", "pong")
	b.Store("pong", "other", "ping")
	b.Call("", "v", frontend.ViewClass, frontend.Post, "ping")
	b.Ret("")
	act.AddMethod(b.Build())
	p.AddClass(act)

	app := bareApp(p, "A")
	app.Layouts[""] = nil
	delete(app.Layouts, "")
	app.Layouts["l"] = &apk.Layout{Name: "l", Root: &apk.View{ID: 1, Type: frontend.ViewClass}}
	app.Manifest.Activities[0].Layout = "l"

	res := Analyze(app, Options{})
	// HB must stay acyclic despite the spawn cycle.
	n := res.NumActions()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && res.Graph.HB(a, b) && res.Graph.HB(b, a) {
				t.Fatalf("HB cycle between %d and %d", a, b)
			}
		}
	}
}

func TestDeepCallChain(t *testing.T) {
	// A 30-deep call chain exceeds the refuter's inline depth; the
	// pipeline must degrade gracefully (fall-through edges), not hang.
	p := freshProgram()
	act := ir.NewClass("Deep", frontend.ActivityClass)
	act.Fields = []string{"x"}
	const depth = 30
	for i := 0; i < depth; i++ {
		b := ir.NewMethodBuilder(callName(i))
		if i+1 < depth {
			b.Call("", "this", "Deep", callName(i+1))
		} else {
			b.Store("this", "x", "this")
		}
		b.Ret("")
		act.AddMethod(b.Build())
	}
	oc := ir.NewMethodBuilder(frontend.OnCreate)
	oc.Call("", "this", "Deep", callName(0))
	oc.Ret("")
	act.AddMethod(oc.Build())
	od := ir.NewMethodBuilder(frontend.OnDestroy)
	od.Null("n")
	od.Store("this", "x", "n")
	od.Ret("")
	act.AddMethod(od.Build())
	p.AddClass(act)

	res := Analyze(bareApp(p, "Deep"), Options{})
	// The deep write is ordered before onDestroy; no race expected, and
	// more importantly: no hang, no panic.
	_ = res
}

func callName(i int) string { return "lvl" + string(rune('A'+i%26)) + string(rune('0'+i/26)) }

func TestListenerBehindFieldOverApproximates(t *testing.T) {
	// A listener stored in a field then registered elsewhere: the
	// harness falls back to type-based over-approximation and must not
	// crash or miss the callback entirely.
	p := freshProgram()
	l := ir.NewClass("FieldListener", frontend.Object, frontend.OnClickListener)
	lb := ir.NewMethodBuilder(frontend.OnClick, "v")
	lb.Ret("")
	l.AddMethod(lb.Build())
	p.AddClass(l)

	act := ir.NewClass("F", frontend.ActivityClass)
	act.Fields = []string{"listener"}
	oc := ir.NewMethodBuilder(frontend.OnCreate)
	oc.NewObj("x", "FieldListener")
	oc.Store("this", "listener", "x")
	oc.Call("", "this", "F", "wire")
	oc.Ret("")
	act.AddMethod(oc.Build())
	wire := ir.NewMethodBuilder("wire")
	wire.Int("id", 1)
	wire.Call("v", "this", "F", frontend.FindViewByID, "id")
	wire.Load("lst", "this", "listener")
	wire.Call("", "v", frontend.ViewClass, frontend.SetOnClickListener, "lst")
	wire.Ret("")
	act.AddMethod(wire.Build())
	p.AddClass(act)

	app := bareApp(p, "F")
	app.Layouts["l"] = &apk.Layout{Name: "l", Root: &apk.View{ID: 1, Type: frontend.ButtonClass}}
	app.Manifest.Activities[0].Layout = "l"
	res := Analyze(app, Options{})

	found := false
	for _, a := range res.Registry.Actions() {
		if a.Callback == frontend.OnClick {
			found = true
		}
	}
	if !found {
		t.Error("field-stored listener's callback not discovered")
	}
}

func TestBrokenSuccessorIndicesDoNotCrashAnalysis(t *testing.T) {
	// An If with a single successor (malformed builder usage) must not
	// panic the pipeline stages that read block structure.
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("pipeline panicked on malformed CFG: %v", r)
		}
	}()
	p := freshProgram()
	act := ir.NewClass("Bad", frontend.ActivityClass)
	m := &ir.Method{Name: frontend.OnCreate}
	m.Blocks = []*ir.Block{
		{Index: 0, Stmts: []ir.Stmt{&ir.If{A: "x", Op: ir.CmpEQ, B: ir.IntOperand(0)}}, Succs: []int{1}},
		{Index: 1, Stmts: []ir.Stmt{&ir.Return{}}},
	}
	act.AddMethod(m)
	p.AddClass(act)
	Analyze(bareApp(p, "Bad"), Options{})
}
