package core_test

import (
	"fmt"

	"sierra/internal/core"
	"sierra/internal/corpus"
)

// ExampleAnalyze runs the full pipeline on the paper's Fig 1 app and
// prints the funnel — the canonical library entry point.
func ExampleAnalyze() {
	res := core.Analyze(corpus.NewsApp(), core.Options{CompareContexts: true})
	fmt.Printf("harnesses: %d\n", res.NumHarnesses())
	fmt.Printf("actions: %d\n", res.NumActions())
	fmt.Printf("racy pairs: %d (hybrid contexts: %d)\n", len(res.RacyPairs), res.RacyPairsNoAS)
	fmt.Printf("races: %d\n", res.TrueRaces())
	for i := range res.Reports {
		fmt.Printf("  %s\n", res.Reports[i].Pair.A.Location())
	}
	// Output:
	// harnesses: 1
	// actions: 14
	// racy pairs: 2 (hybrid contexts: 8)
	// races: 2
	//   .mData
	//   .mCacheValid
}

// ExampleAnalyze_refutation shows the symbolic refuter eliminating the
// guarded Fig 8 candidates while keeping the guard-flag race.
func ExampleAnalyze_refutation() {
	res := core.Analyze(corpus.SudokuTimerApp(), core.Options{})
	fields := map[string]int{}
	for _, p := range res.RacyPairs {
		fields[p.A.Field]++
	}
	fmt.Printf("candidates include mAccumTime: %v\n", fields["mAccumTime"] > 0)
	surviving := map[string]bool{}
	for i := range res.Reports {
		surviving[res.Reports[i].Pair.A.Field] = true
	}
	fmt.Printf("mAccumTime survives: %v\n", surviving["mAccumTime"])
	fmt.Printf("mIsRunning survives: %v\n", surviving["mIsRunning"])
	// Output:
	// candidates include mAccumTime: true
	// mAccumTime survives: false
	// mIsRunning survives: true
}
