package core

import (
	"encoding/json"
	"testing"

	"sierra/internal/corpus"
	"sierra/internal/obs"
)

// TestAnalyzeObsCounters is the observability smoke test: a full
// pipeline run on a handmade corpus app must populate the documented
// counter contract with non-zero effort numbers, stamp the span tree,
// and serialize to valid JSON.
func TestAnalyzeObsCounters(t *testing.T) {
	tr := obs.New("test")
	res := Analyze(corpus.NewsApp(), Options{CompareContexts: true, Obs: tr})
	if res.TrueRaces() == 0 {
		t.Fatal("pipeline found no races; counters below would be vacuous")
	}

	for _, name := range []string{
		"harness.emitted",
		"harness.synthetic_stmts",
		"actions.discovered",
		"pointer.passes",
		"pointer.worklist_iterations",
		"pointer.instances",
		"pointer.call_edges",
		"pointer.cha_targets",
		"shbg.edges.invocation",
		"shbg.edges.lifecycle",
		"shbg.edges_closed",
		"shbg.closure_rounds",
		"race.accesses",
		"race.pairs_considered",
		"race.alias_hits",
		"race.pairs_emitted",
		"refute.pairs",
		"refute.paths",
		"core.reports",
	} {
		if tr.Counter(name) <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, tr.Counter(name))
		}
	}
	if tr.GaugeValue("pointer.pts_objs") <= 0 {
		t.Errorf("gauge pointer.pts_objs = %f, want > 0", tr.GaugeValue("pointer.pts_objs"))
	}

	// Counters must agree with the result they describe.
	if got, want := tr.Counter("harness.emitted"), int64(res.NumHarnesses()); got != want {
		t.Errorf("harness.emitted = %d, result has %d", got, want)
	}
	if got, want := tr.Counter("actions.discovered"), int64(res.NumActions()); got != want {
		t.Errorf("actions.discovered = %d, result has %d", got, want)
	}
	if got, want := tr.Counter("shbg.edges_closed"), int64(res.HBEdges()); got != want {
		t.Errorf("shbg.edges_closed = %d, result has %d", got, want)
	}
	if got, want := tr.Counter("race.pairs_emitted"), int64(len(res.RacyPairs)); got != want {
		t.Errorf("race.pairs_emitted = %d, result has %d", got, want)
	}
	if got, want := tr.Counter("refute.pairs"), int64(len(res.RacyPairs)); got != want {
		t.Errorf("refute.pairs = %d, want one check per candidate (%d)", got, want)
	}
	if got, want := tr.Counter("core.reports"), int64(res.TrueRaces()); got != want {
		t.Errorf("core.reports = %d, result has %d", got, want)
	}

	// AllVerdicts aligns with the candidates; its path counts match the
	// refute.pair_paths series.
	if len(res.AllVerdicts) != len(res.RacyPairs) {
		t.Fatalf("AllVerdicts = %d entries, want %d", len(res.AllVerdicts), len(res.RacyPairs))
	}
	snap := tr.Snapshot()
	series := snap.Series["refute.pair_paths"]
	if len(series) != len(res.RacyPairs) {
		t.Fatalf("refute.pair_paths series = %d samples, want %d", len(series), len(res.RacyPairs))
	}
	var fromVerdicts, fromSeries int64
	for i := range res.AllVerdicts {
		fromVerdicts += int64(res.AllVerdicts[i].Paths)
		fromSeries += series[i].Value
	}
	if fromVerdicts != fromSeries || fromVerdicts != tr.Counter("refute.paths") {
		t.Errorf("path totals disagree: verdicts %d, series %d, counter %d",
			fromVerdicts, fromSeries, tr.Counter("refute.paths"))
	}

	// The span tree carries the pipeline stages under analyze.
	if snap.Trace == nil || len(snap.Trace.Children) == 0 {
		t.Fatal("snapshot has no span tree")
	}
	analyze := snap.Trace.Children[0]
	want := map[string]bool{"harness": true, "cgpa": true, "shbg": true, "pairs": true, "compare": true, "refute": true, "rank": true}
	for _, c := range analyze.Children {
		delete(want, c.Name)
	}
	if len(want) != 0 {
		t.Errorf("span tree missing stages: %v", want)
	}

	raw, err := snap.JSON()
	if err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if !json.Valid(raw) {
		t.Fatal("snapshot JSON is invalid")
	}
}

// TestAnalyzeTimingPartition checks satellite invariant: the timing
// components account for the total (no unattributed stage time).
func TestAnalyzeTimingPartition(t *testing.T) {
	res := Analyze(corpus.NewsApp(), Options{CompareContexts: true})
	sum := res.Timing.CGPA + res.Timing.HBG + res.Timing.Pairs +
		res.Timing.Compare + res.Timing.Refutation
	if sum > res.Timing.Total {
		t.Fatalf("components (%v) exceed total (%v)", sum, res.Timing.Total)
	}
	// The unattributed remainder must be a sliver (bookkeeping between
	// timers), not a missing stage: allow 10% of total plus 10ms slack
	// for scheduler noise on tiny runs.
	slack := res.Timing.Total/10 + 10e6
	if res.Timing.Total-sum > slack {
		t.Fatalf("unattributed stage time: total %v - components %v > %v", res.Timing.Total, sum, slack)
	}
	if res.Timing.Pairs <= 0 {
		t.Fatal("Pairs stage not timed")
	}
	if res.Timing.Compare <= 0 {
		t.Fatal("Compare stage not timed under CompareContexts")
	}
}
