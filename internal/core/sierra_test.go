package core

import (
	"testing"

	"sierra/internal/corpus"
	"sierra/internal/report"
	"sierra/internal/shbg"
)

func TestPipelineNewsApp(t *testing.T) {
	res := Analyze(corpus.NewsApp(), Options{CompareContexts: true})
	if res.NumHarnesses() != 1 {
		t.Errorf("harnesses = %d, want 1", res.NumHarnesses())
	}
	if res.NumActions() < 12 {
		t.Errorf("actions = %d, want >= 12", res.NumActions())
	}
	if res.HBEdges() == 0 {
		t.Error("no HB edges")
	}
	if p := res.OrderedPercent(); p <= 0 || p > 100 {
		t.Errorf("ordered%% = %f", p)
	}
	if len(res.RacyPairs) == 0 {
		t.Fatal("no racy pairs")
	}
	if res.RacyPairsNoAS < len(res.RacyPairs) {
		t.Errorf("hybrid pairs %d < AS pairs %d: AS must not increase candidates",
			res.RacyPairsNoAS, len(res.RacyPairs))
	}
	if res.TrueRaces() == 0 {
		t.Fatal("the Fig 1 races must survive refutation")
	}
	if res.TrueRaces() > len(res.RacyPairs) {
		t.Error("refutation cannot add races")
	}
	// Ranking invariants: ranks 1..n, app bucket before framework.
	lastCat := report.AppCode
	for i, r := range res.Reports {
		if r.Rank != i+1 {
			t.Errorf("rank %d at index %d", r.Rank, i)
		}
		if r.Category < lastCat {
			t.Error("reports not sorted by category")
		}
		lastCat = r.Category
	}
	if res.Timing.Total <= 0 || res.Timing.CGPA <= 0 {
		t.Error("timings not recorded")
	}
}

func TestPipelineSudokuRefutesGuardedPair(t *testing.T) {
	res := Analyze(corpus.SudokuTimerApp(), Options{})
	// The mAccumTime pair is refuted; surviving races include the
	// mIsRunning guard pair.
	for _, r := range res.Reports {
		if r.Pair.A.Field == "mAccumTime" {
			aCb := res.Registry.Get(r.Pair.A.Action).Callback
			bCb := res.Registry.Get(r.Pair.B.Action).Callback
			if (aCb == "run" && bCb == "onPause") || (aCb == "onPause" && bCb == "run") {
				t.Errorf("guarded mAccumTime pair not refuted: %s", r.Pair.Key())
			}
		}
	}
	foundGuard := false
	for _, r := range res.Reports {
		if r.Pair.A.Field == "mIsRunning" {
			foundGuard = true
			if !r.Benign {
				t.Error("mIsRunning race should be classified benign-guard")
			}
		}
	}
	if !foundGuard {
		t.Error("guard race missing from reports")
	}
}

func TestSkipRefutation(t *testing.T) {
	res := Analyze(corpus.NewsApp(), Options{SkipRefutation: true})
	if len(res.Reports) != 0 || len(res.Verdicts) != 0 {
		t.Error("refutation ran despite SkipRefutation")
	}
	if len(res.RacyPairs) == 0 {
		t.Error("pairs should still be computed")
	}
}

func TestSHBGAblationThroughPipeline(t *testing.T) {
	full := Analyze(corpus.NewsApp(), Options{SkipRefutation: true})
	crippled := Analyze(corpus.NewsApp(), Options{
		SkipRefutation: true,
		SHBG: shbg.Options{Disable: map[shbg.Rule]bool{
			shbg.RuleLifecycle: true,
			shbg.RuleGUI:       true,
		}},
	})
	if crippled.HBEdges() >= full.HBEdges() {
		t.Errorf("disabling dominance rules must lose edges: %d vs %d",
			crippled.HBEdges(), full.HBEdges())
	}
	if len(crippled.RacyPairs) < len(full.RacyPairs) {
		t.Errorf("fewer HB edges cannot mean fewer candidates: %d vs %d",
			len(crippled.RacyPairs), len(full.RacyPairs))
	}
}

func TestDatabaseAppEndToEnd(t *testing.T) {
	res := Analyze(corpus.DatabaseApp(), Options{})
	if res.TrueRaces() == 0 {
		t.Fatal("Fig 2 races must be reported")
	}
	// The mOpen race is a framework-internal access (SQLiteDatabase) —
	// category framework; mDB is pure app code.
	var sawApp, sawFw bool
	for _, r := range res.Reports {
		switch r.Category {
		case report.AppCode:
			sawApp = true
		case report.FrameworkFromApp:
			sawFw = true
		}
	}
	if !sawApp || !sawFw {
		t.Errorf("want both app and framework categories; app=%t fw=%t", sawApp, sawFw)
	}
	s := report.Summarize(res.Reports)
	if s.Total != len(res.Reports) || s.App+s.Framework+s.Library != s.Total {
		t.Errorf("summary inconsistent: %+v", s)
	}
}
