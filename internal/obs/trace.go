// Package obs is the pipeline's observability substrate: hierarchical
// wall-clock + allocation spans, named monotonic counters, gauges, and
// labelled series, all serializable to one JSON snapshot. It is
// zero-dependency (standard library only) and nil-safe: every method on
// a nil *Trace or nil *Span is a no-op, so pipeline code threads a
// possibly-nil trace without guards and pays only a nil check when
// observability is off.
//
// Counter names are a stable contract (see README.md "Observability");
// benchmarks and the evaluation tables read them by name.
package obs

import (
	"runtime"
	"sync"
	"time"
)

// Trace is one observed run: a tree of spans plus a counter set. All
// methods are safe for concurrent use.
type Trace struct {
	mu   sync.Mutex
	root *Span
	cur  *Span
	c    Counters
}

// New starts a trace whose root span is open until Snapshot (or an
// explicit End on the returned trace's root).
func New(name string) *Trace {
	t := &Trace{}
	t.root = &Span{name: name, start: time.Now(), startAlloc: readAlloc()}
	t.root.t = t
	t.cur = t.root
	return t
}

// Span is one timed region. Duration and allocation deltas include
// children (allocation is the runtime's cumulative TotalAlloc delta, so
// it counts bytes allocated, not bytes retained).
type Span struct {
	t          *Trace
	parent     *Span
	name       string
	start      time.Time
	startAlloc uint64
	dur        time.Duration
	alloc      int64
	ended      bool
	children   []*Span
}

// readAlloc samples cumulative allocated bytes. ReadMemStats is not
// free; spans are meant for stage-granularity regions, not hot loops.
func readAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// Start opens a child span under the innermost open span.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{t: t, parent: t.cur, name: name, start: time.Now(), startAlloc: readAlloc()}
	t.cur.children = append(t.cur.children, s)
	t.cur = s
	return s
}

// End closes the span, recording its wall-clock and allocation deltas.
// Ending out of order closes the span where it is and reopens its
// parent; ending twice keeps the first measurement.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.alloc = int64(readAlloc() - s.startAlloc)
	for p := s.t.cur; p != nil; p = p.parent {
		if p == s {
			s.t.cur = s.parent
			break
		}
	}
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the measured duration (elapsed-so-far if still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Count adds delta to the named monotonic counter.
func (t *Trace) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.c.Add(name, delta)
}

// Gauge sets the named gauge to v (last write wins).
func (t *Trace) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.c.Gauge(name, v)
}

// Series appends a labelled value to the named series (e.g. one entry
// per refuted pair).
func (t *Trace) Series(series, label string, v int64) {
	if t == nil {
		return
	}
	t.c.Append(series, label, v)
}

// Observe records one sample into the named histogram (see Histogram
// for the shared bucket layout).
func (t *Trace) Observe(name string, v float64) {
	if t == nil {
		return
	}
	t.c.Observe(name, v)
}

// Hist returns the named histogram, creating it on first use, so hot
// paths can resolve the handle once and Observe through it. Nil trace
// returns a nil (no-op) histogram.
func (t *Trace) Hist(name string) *Histogram {
	if t == nil {
		return nil
	}
	return t.c.Hist(name)
}

// Absorb merges a snapshot's counters, gauges, series, and histograms
// into the trace: counters sum, gauges keep the maximum, series append,
// histograms merge bucket-wise. Span trees are not merged (spans
// describe one run's timeline; absorbed snapshots typically come from
// sibling runs, e.g. batch jobs). Safe for concurrent use; no-op when
// t or s is nil.
func (t *Trace) Absorb(s *Snapshot) {
	if t == nil || s == nil {
		return
	}
	t.c.absorb(s.Counters, s.Gauges, s.Series, s.Histograms)
}

// Counter reads a counter's current value (0 if absent or t is nil).
func (t *Trace) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	return t.c.Get(name)
}

// GaugeValue reads a gauge's current value (0 if absent or t is nil).
func (t *Trace) GaugeValue(name string) float64 {
	if t == nil {
		return 0
	}
	return t.c.GaugeValue(name)
}
