package eventlog

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock makes emission deterministic for the golden test.
func fixedClock(r *Recorder) {
	var n int64
	r.now = func() time.Time {
		n++
		return time.Unix(1700000000, n)
	}
}

// TestJSONLGolden pins the sierra-events/1 wire format byte-for-byte:
// schema header on the first line only, stable field order, omitted
// zero fields.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, 8)
	fixedClock(r)
	r.Emit(Event{Type: "run_start", Fields: map[string]any{"jobs": 4}})
	r.Emit(Event{Type: "job_start", Job: "a.app", Index: 0})
	r.Emit(Event{Type: "job_end", Job: "a.app", Index: 0, Status: "ok",
		Digest: "d3adb33f", Cache: "miss", DurMS: 1.5})
	r.Emit(Event{Type: "run_end", Fields: map[string]any{"races": 3}})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`{"schema":"sierra-events/1","seq":0,"t_ns":1700000000000000001,"type":"run_start","fields":{"jobs":4}}`,
		`{"seq":1,"t_ns":1700000000000000002,"type":"job_start","job":"a.app"}`,
		`{"seq":2,"t_ns":1700000000000000003,"type":"job_end","job":"a.app","status":"ok","digest":"d3adb33f","cache":"miss","dur_ms":1.5}`,
		`{"seq":3,"t_ns":1700000000000000004,"type":"run_end","fields":{"races":3}}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("JSONL drift:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestRoundTrip decodes an encoded stream back and compares events.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, 16)
	fixedClock(r)
	r.Emit(Event{Type: "run_start", Fields: map[string]any{"glob": "corpus/*.app"}})
	for i := 0; i < 5; i++ {
		r.Emit(Event{Type: "job_end", Job: fmt.Sprintf("app%d", i), Index: i,
			Status: "ok", DurMS: float64(i), Fields: map[string]any{"races": float64(i)}})
	}
	r.Flush()

	events, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("decoded %d events, want 6", len(events))
	}
	if events[0].Schema != Schema || events[0].Type != "run_start" {
		t.Fatalf("header = %+v", events[0])
	}
	var races float64
	for _, e := range events[1:] {
		if e.Type != "job_end" || e.Status != "ok" {
			t.Fatalf("event = %+v", e)
		}
		races += e.Fields["races"].(float64)
	}
	if races != 0+1+2+3+4 {
		t.Fatalf("replayed races = %v", races)
	}
}

func TestDecodeRejectsForeignSchema(t *testing.T) {
	in := strings.NewReader(`{"schema":"other/9","seq":0,"t_ns":1,"type":"x"}` + "\n")
	if _, err := Decode(in); err == nil {
		t.Fatal("foreign schema must not decode")
	}
}

// TestRingBounded verifies eviction order and the dropped tally.
func TestRingBounded(t *testing.T) {
	r := New(nil, 4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Type: "e", Index: i})
	}
	tail := r.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("ring holds %d, want 4", len(tail))
	}
	for i, e := range tail {
		if e.Index != 6+i || e.Seq != int64(6+i) {
			t.Fatalf("tail[%d] = %+v", i, e)
		}
	}
	if r.Dropped() != 6 || r.Len() != 10 {
		t.Fatalf("dropped=%d len=%d", r.Dropped(), r.Len())
	}
	if got := r.Tail(2); len(got) != 2 || got[1].Index != 9 {
		t.Fatalf("Tail(2) = %+v", got)
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Type: "x"})
	if r.Tail(0) != nil || r.Len() != 0 || r.Dropped() != 0 || r.Flush() != nil {
		t.Fatal("nil recorder must be inert")
	}
	if err := r.WriteTail(&bytes.Buffer{}, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderStress hammers one ring from 16 goroutines (the -race
// concurrency contract shared with obs.Histogram).
func TestRecorderStress(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, 64)
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Emit(Event{Type: "job_end", Job: fmt.Sprintf("w%d", w), Index: i})
				_ = r.Tail(8)
				_ = r.Len()
			}
		}()
	}
	wg.Wait()
	if r.Len() != workers*perWorker {
		t.Fatalf("len = %d, want %d", r.Len(), workers*perWorker)
	}
	r.Flush()
	events, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*perWorker {
		t.Fatalf("sink holds %d events, want %d", len(events), workers*perWorker)
	}
	for i, e := range events {
		if e.Seq != int64(i) {
			t.Fatalf("sink event %d has seq %d", i, e.Seq)
		}
	}
}
