// Package eventlog is the pipeline's flight recorder: a bounded
// in-memory ring of structured events, optionally mirrored live to a
// JSONL stream (the `sierra-events/1` format behind the `-events`
// flag). Like the rest of internal/obs it is zero-dependency and
// nil-safe — every method on a nil *Recorder is a no-op, so emission
// sites need no guards and cost one nil check when the recorder is off.
//
// The ring is the crash-forensics half of the design: however a run
// dies — panic, signal, deadline — the last RingCap events are still in
// memory and can be dumped (WriteTail, DumpOnPanic, NotifySignals), so
// a 10k-app batch that explodes at app 9,731 leaves a trail of what it
// was doing, not just a stack.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// Schema identifies the JSONL event format. The first event of every
// stream carries it in its "schema" field; Decode rejects streams that
// declare a different one.
const Schema = "sierra-events/1"

// DefaultRingCap is the ring size both cmds use: large enough to cover
// the recent history of a wide batch (hundreds of jobs in flight),
// small enough to be dumped wholesale to a terminal.
const DefaultRingCap = 512

// Event is one structured telemetry record. Fixed fields cover the
// common shapes (job lifecycle, timing, cache outcome); Fields carries
// event-type-specific payloads (run config, stage summaries, verdict
// tallies) as free-form JSON.
type Event struct {
	// Schema is set on the first event of a stream (Decode keys on it).
	Schema string `json:"schema,omitempty"`
	// Seq is the recorder-assigned sequence number, from 0.
	Seq int64 `json:"seq"`
	// TimeNS is the emission wall-clock time (Unix nanoseconds).
	TimeNS int64 `json:"t_ns"`
	// Type names the event: run_start, job_start, job_end, job_verdict,
	// stage, signal, run_end (the set is open — consumers must skip
	// unknown types).
	Type string `json:"type"`
	// Job names the job (batch input path / app name) for job events.
	Job string `json:"job,omitempty"`
	// Index is the job's input position for job events (-1 otherwise).
	Index int `json:"index,omitempty"`
	// Status is the job outcome (batch.Status string) for job_end.
	Status string `json:"status,omitempty"`
	// Digest is the job's cache key digest, when one was computed.
	Digest string `json:"digest,omitempty"`
	// Cache is "hit" or "miss" when the job consulted the result cache.
	Cache string `json:"cache,omitempty"`
	// DurMS is the event's duration in milliseconds, when it has one.
	DurMS float64 `json:"dur_ms,omitempty"`
	// Err carries the failure or panic headline for failed jobs.
	Err string `json:"err,omitempty"`
	// Fields carries type-specific payload (config, tallies, timings).
	Fields map[string]any `json:"fields,omitempty"`
}

// Recorder accumulates events in a bounded ring and, when constructed
// with a sink, mirrors each event to it as one JSON line. All methods
// are safe for concurrent use and no-ops on a nil receiver.
type Recorder struct {
	mu      sync.Mutex
	sink    *bufio.Writer
	ring    []Event
	start   int // index of the oldest ring entry
	n       int // live ring entries
	seq     int64
	dropped int64 // events evicted from the ring (still on the sink)
	now     func() time.Time
}

// New builds a recorder with the given ring capacity (0 or negative
// selects DefaultRingCap). sink, when non-nil, receives every event as
// one JSON line; call Flush (or Close the underlying file) when done.
func New(sink io.Writer, ringCap int) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	r := &Recorder{ring: make([]Event, 0, ringCap), now: time.Now}
	if sink != nil {
		r.sink = bufio.NewWriter(sink)
	}
	return r
}

// Emit records one event, filling Seq, TimeNS, and (on the first event)
// Schema. The caller's Event is taken by value; fixed fields the caller
// set are preserved.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = r.seq
	if r.seq == 0 {
		e.Schema = Schema
	} else {
		e.Schema = ""
	}
	r.seq++
	e.TimeNS = r.now().UnixNano()
	if r.n < cap(r.ring) {
		r.ring = append(r.ring, e)
		r.n++
	} else {
		r.ring[r.start] = e
		r.start = (r.start + 1) % cap(r.ring)
		r.dropped++
	}
	if r.sink != nil {
		raw, err := json.Marshal(e)
		if err == nil {
			r.sink.Write(raw)
			r.sink.WriteByte('\n')
		}
	}
}

// Len returns the number of events emitted so far (including any the
// ring has since evicted).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.seq)
}

// Dropped returns how many events the ring has evicted (they remain on
// the JSONL sink when one is configured).
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Tail returns copies of the most recent n ring events in emission
// order (all of them when n <= 0 or n exceeds the ring).
func (r *Recorder) Tail(n int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = r.ring[(r.start+r.n-n+i)%cap(r.ring)]
	}
	return out
}

// Flush drains the buffered JSONL sink (no-op without one).
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink == nil {
		return nil
	}
	return r.sink.Flush()
}

// WriteTail dumps the most recent n ring events (all when n <= 0) to w
// as JSON lines — the panic/signal forensics path.
func (r *Recorder) WriteTail(w io.Writer, n int) error {
	for _, e := range r.Tail(n) {
		raw, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(raw, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// DumpOnPanic is meant to be deferred at a run's top level: on panic it
// dumps the ring tail to w, flushes the sink, and re-panics so the
// process still dies loudly with the original stack.
func (r *Recorder) DumpOnPanic(w io.Writer) {
	if p := recover(); p != nil {
		if r != nil {
			fmt.Fprintf(w, "panic: %v — flight recorder tail (%d events):\n", p, len(r.Tail(0)))
			r.WriteTail(w, 0)
			r.Flush()
		}
		panic(p)
	}
}

// NotifySignals installs a SIGINT/SIGTERM handler that dumps the ring
// tail to w, flushes the sink, and then invokes then (typically a
// context cancel, so the run winds down as a graceful cancellation).
// A second signal exits immediately. Returns a stop func that
// uninstalls the handler.
func (r *Recorder) NotifySignals(w io.Writer, then func()) (stop func()) {
	return r.notifyStages(w, []func(){then})
}

// NotifyDrain is the long-running-service shape of NotifySignals: the
// first SIGINT/SIGTERM dumps the ring tail, flushes the sink, and
// invokes drain (stop accepting work, let in-flight jobs finish); a
// second signal invokes force (hard-cancel what remains); a third
// exits 130. The extra stage is what lets `sierra serve` exit 0 after
// a clean drain while an operator can still escalate a wedged shutdown.
// Returns a stop func that uninstalls the handler.
func (r *Recorder) NotifyDrain(w io.Writer, drain, force func()) (stop func()) {
	return r.notifyStages(w, []func(){drain, force})
}

// notifyStages runs one stage func per received signal, dumping the
// ring tail on the first; signals past the last stage exit 130.
func (r *Recorder) notifyStages(w io.Writer, stages []func()) (stop func()) {
	ch := make(chan os.Signal, 4)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		for i := 0; ; i++ {
			sig, ok := <-ch
			if !ok {
				return
			}
			if i == 0 {
				fmt.Fprintf(w, "\n%v — flight recorder tail (%d events):\n", sig, len(r.Tail(0)))
				r.WriteTail(w, 0)
				r.Flush()
			}
			if i >= len(stages) {
				os.Exit(130)
			}
			if i > 0 {
				fmt.Fprintf(w, "\n%v — escalating shutdown (stage %d)\n", sig, i+1)
			}
			if stages[i] != nil {
				stages[i]()
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}

// Decode reads a sierra-events/1 JSONL stream back into events,
// validating the schema header on the first line. Unknown fields are
// ignored, so newer streams decode under older readers.
func Decode(rd io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("event %d: %w", len(out), err)
		}
		if len(out) == 0 && e.Schema != Schema {
			return nil, fmt.Errorf("stream schema %q, want %q", e.Schema, Schema)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
