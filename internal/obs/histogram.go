package obs

import "sync"

// histBounds are the shared bucket upper bounds of every Histogram:
// fixed exponential buckets, 0.5 doubling to 0.5·2²³ ≈ 4.19e6, plus an
// implicit +Inf bucket. One layout serves every observed quantity —
// millisecond wall times (0.5 ms .. ~70 min), walk path counts (1 ..
// 4M), closure iteration counts — so snapshots merge bucket-wise
// without negotiation and the exposition format needs no per-metric
// metadata. The bounds are non-cumulative here; cumulative ("le")
// counts are derived at snapshot/exposition time.
const numHistBounds = 24

var histBounds = func() []float64 {
	b := make([]float64, numHistBounds)
	v := 0.5
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// HistogramBounds returns the shared bucket upper bounds (excluding the
// implicit +Inf bucket). Callers must not mutate the result.
func HistogramBounds() []float64 { return histBounds }

// Histogram is a concurrency-safe distribution recorder over the shared
// fixed exponential bucket layout. The zero value is ready to use; all
// methods are no-ops on a nil receiver, so hot paths can thread a
// possibly-nil *Histogram obtained from a possibly-nil *Trace without
// guards.
type Histogram struct {
	mu     sync.Mutex
	counts [numHistBounds + 1]int64 // per-bucket (non-cumulative); last is +Inf
	sum    float64
	n      int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := bucketIndex(v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// bucketIndex locates v's bucket by binary search over histBounds
// (index len(histBounds) is the +Inf bucket).
func bucketIndex(v float64) int {
	lo, hi := 0, len(histBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= histBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of samples observed so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// HistogramSnapshot is a histogram frozen for serialization. Counts are
// per-bucket (non-cumulative), aligned with HistogramBounds() plus a
// final +Inf bucket; the JSON form is part of the `-stats` contract.
type HistogramSnapshot struct {
	Counts []int64 `json:"counts"`
	Sum    float64 `json:"sum"`
	Count  int64   `json:"count"`
}

// snapshot deep-copies the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Counts: append([]int64(nil), h.counts[:]...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// merge folds a frozen histogram into this one (bucket-wise sum). A
// snapshot with a foreign bucket count is ignored rather than
// misaligned — it can only come from a different obs version.
func (h *Histogram) merge(s HistogramSnapshot) {
	if h == nil || len(s.Counts) != len(h.counts) {
		return
	}
	h.mu.Lock()
	for i, c := range s.Counts {
		h.counts[i] += c
	}
	h.sum += s.Sum
	h.n += s.Count
	h.mu.Unlock()
}
