// Package export is the live exposition surface over internal/obs: a
// zero-dependency (stdlib-only) HTTP debug server behind the
// `-debug-addr` flag serving
//
//	/metrics   Prometheus text exposition of every counter, gauge, and
//	           histogram in the wired Trace, deterministically sorted
//	/progress  JSON batch progress (jobs done/total, apps/sec, cache
//	           hit rate, ETA) plus a live counter snapshot
//	/events    the tail of the flight-recorder ring as a JSON array
//	/healthz   liveness probe
//	/debug/pprof/...  the stdlib profiling handlers
//
// The server holds only pointers to live telemetry (Trace, Recorder) —
// every request re-snapshots, so what you curl mid-run is what the run
// has done so far, not a stale export.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"sierra/internal/obs"
	"sierra/internal/obs/eventlog"
)

// Options wires the server's telemetry sources. Any of them may be nil;
// the corresponding endpoint then serves an empty-but-valid response.
type Options struct {
	// Trace backs /metrics and the counter snapshot half of /progress.
	Trace *obs.Trace
	// Events backs /events.
	Events *eventlog.Recorder
	// Progress, when non-nil, supplies the progress half of /progress
	// (typically batch.Tracker.Snapshot bound by the caller). The value
	// is marshaled verbatim, so callers own the schema.
	Progress func() any
}

// Server is a running debug server. Close shuts it down.
type Server struct {
	opts Options
	ln   net.Listener
	srv  *http.Server
}

// Handler returns the debug endpoints (/metrics, /progress, /events,
// /healthz, /debug/pprof/...) as a ServeMux bound to opts, for callers
// that host their own HTTP server — `sierra serve` mounts these next to
// its /v1 API so one port exposes both the service and its telemetry.
// Serve is a convenience wrapper that binds this handler to a listener.
func Handler(opts Options) *http.ServeMux {
	s := &Server{opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr (":0" picks a free port; use
// Addr to discover it). The listener is bound synchronously — a taken
// port fails here, not later — and requests are served on a background
// goroutine until Close.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, ln: ln}
	s.srv = &http.Server{Handler: Handler(opts), ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, s.opts.Trace.Snapshot())
}

// progressBody is /progress's envelope: the caller-owned progress
// value plus a live counter snapshot.
type progressBody struct {
	Progress any              `json:"progress,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	body := progressBody{}
	if s.opts.Progress != nil {
		body.Progress = s.opts.Progress()
	}
	if snap := s.opts.Trace.Snapshot(); snap != nil {
		body.Counters = snap.Counters
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, _ = strconv.Atoi(q)
	}
	events := s.opts.Events.Tail(n)
	if events == nil {
		events = []eventlog.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(events)
}

// WriteMetrics renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as `sierra_<name>` counter families,
// gauges as gauge families, histograms as `_bucket`/`_sum`/`_count`
// triples over the shared obs bucket bounds. Families are emitted in
// sorted name order and series are skipped (they are labeled samples,
// not aggregates — the `-stats` snapshot carries them). Deterministic:
// two identical snapshots render byte-identically.
func WriteMetrics(w io.Writer, s *obs.Snapshot) {
	if s == nil {
		return
	}
	type family struct {
		name string
		emit func()
	}
	var fams []family
	for name, v := range s.Counters {
		name, v := name, v
		fams = append(fams, family{metricName(name), func() {
			m := metricName(name)
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, v)
		}})
	}
	for name, v := range s.Gauges {
		name, v := name, v
		fams = append(fams, family{metricName(name), func() {
			m := metricName(name)
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m, m, formatFloat(v))
		}})
	}
	for name, h := range s.Histograms {
		name, h := name, h
		fams = append(fams, family{metricName(name), func() {
			m := metricName(name)
			fmt.Fprintf(w, "# TYPE %s histogram\n", m)
			cum := int64(0)
			for i, le := range s.HistogramLE {
				if i < len(h.Counts) {
					cum += h.Counts[i]
				}
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m, formatFloat(le), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
			fmt.Fprintf(w, "%s_sum %s\n", m, formatFloat(h.Sum))
			fmt.Fprintf(w, "%s_count %d\n", m, h.Count)
		}})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.emit()
	}
}

// metricName mangles an obs name (dotted, may contain dashes) into a
// Prometheus metric name under the sierra_ namespace.
func metricName(name string) string {
	mangled := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return "sierra_" + mangled
}

// formatFloat renders a float the Prometheus way: integral values
// without an exponent or trailing zeros.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
