package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"sierra/internal/obs"
	"sierra/internal/obs/eventlog"
)

// TestWriteMetricsGolden pins the Prometheus text exposition format:
// sorted families, mangled names, cumulative histogram buckets.
func TestWriteMetricsGolden(t *testing.T) {
	tr := obs.New("run")
	tr.Count("refute.pairs", 42)
	tr.Count("shbg.edges.inter-proc", 7)
	tr.Gauge("pointer.pts_max", 12)
	tr.Observe("core.analyze_ms", 0.4) // bucket le=0.5
	tr.Observe("core.analyze_ms", 3)   // bucket le=4
	tr.Observe("core.analyze_ms", 1e9) // +Inf bucket

	var b strings.Builder
	WriteMetrics(&b, tr.Snapshot())
	got := b.String()

	bounds := obs.HistogramBounds()
	var h strings.Builder
	fmt.Fprintf(&h, "# TYPE sierra_core_analyze_ms histogram\n")
	cum := 0
	for _, le := range bounds {
		if le >= 0.5 && cum == 0 {
			cum = 1
		}
		if le >= 4 && cum == 1 {
			cum = 2
		}
		fmt.Fprintf(&h, "sierra_core_analyze_ms_bucket{le=\"%g\"} %d\n", le, cum)
	}
	h.WriteString("sierra_core_analyze_ms_bucket{le=\"+Inf\"} 3\n")
	h.WriteString("sierra_core_analyze_ms_sum 1.0000000034e+09\n")
	h.WriteString("sierra_core_analyze_ms_count 3\n")

	want := h.String() +
		"# TYPE sierra_pointer_pts_max gauge\nsierra_pointer_pts_max 12\n" +
		"# TYPE sierra_refute_pairs counter\nsierra_refute_pairs 42\n" +
		"# TYPE sierra_shbg_edges_inter_proc counter\nsierra_shbg_edges_inter_proc 7\n"
	if got != want {
		t.Fatalf("exposition drift:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteMetricsNil(t *testing.T) {
	var b strings.Builder
	WriteMetrics(&b, nil)
	WriteMetrics(&b, (*obs.Trace)(nil).Snapshot())
	if b.String() != "" {
		t.Fatalf("nil snapshot wrote %q", b.String())
	}
}

// TestServerEndpoints drives a live server end to end.
func TestServerEndpoints(t *testing.T) {
	tr := obs.New("run")
	tr.Count("batch.jobs", 3)
	tr.Observe("batch.job_duration_ms", 2)
	rec := eventlog.New(nil, 8)
	rec.Emit(eventlog.Event{Type: "run_start"})
	rec.Emit(eventlog.Event{Type: "job_end", Job: "a.app", Status: "ok"})

	srv, err := Serve("127.0.0.1:0", Options{
		Trace:  tr,
		Events: rec,
		Progress: func() any {
			return map[string]any{"jobs_done": 1, "jobs_total": 3}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	if got := get("/healthz"); got != "ok\n" {
		t.Fatalf("/healthz = %q", got)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE sierra_batch_jobs counter\nsierra_batch_jobs 3\n",
		"# TYPE sierra_batch_job_duration_ms histogram\n",
		`sierra_batch_job_duration_ms_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var prog struct {
		Progress map[string]any   `json:"progress"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(get("/progress")), &prog); err != nil {
		t.Fatal(err)
	}
	if prog.Progress["jobs_done"].(float64) != 1 || prog.Counters["batch.jobs"] != 3 {
		t.Fatalf("/progress = %+v", prog)
	}

	var events []eventlog.Event
	if err := json.Unmarshal([]byte(get("/events?n=1")), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != "job_end" {
		t.Fatalf("/events tail = %+v", events)
	}

	if got := get("/debug/pprof/cmdline"); got == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// TestServerEmptySources: every endpoint stays valid with nil sources.
func TestServerEmptySources(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/progress", "/events", "/healthz"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}
