package obs

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	bounds := HistogramBounds()
	// One sample exactly on each bound lands in that bound's bucket
	// (cumulative "le" semantics), one huge sample lands in +Inf.
	for _, b := range bounds {
		h.Observe(b)
	}
	h.Observe(math.MaxFloat64)
	s := h.snapshot()
	if s.Count != int64(len(bounds))+1 {
		t.Fatalf("count = %d, want %d", s.Count, len(bounds)+1)
	}
	for i := range bounds {
		if s.Counts[i] != 1 {
			t.Fatalf("bucket %d (le %g) = %d, want 1", i, bounds[i], s.Counts[i])
		}
	}
	if s.Counts[len(bounds)] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", s.Counts[len(bounds)])
	}
	// Below the first bound goes into the first bucket.
	h.Observe(0)
	if got := h.snapshot().Counts[0]; got != 2 {
		t.Fatalf("first bucket after Observe(0) = %d, want 2", got)
	}
}

func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read zeros")
	}
}

// TestHistogramStress hammers one Histogram from 16 goroutines; under
// -race this is the concurrency-safety contract.
func TestHistogramStress(t *testing.T) {
	var h Histogram
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w*perWorker + i))
				_ = h.Count()
				_ = h.Sum()
			}
		}()
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
	wantSum := float64(workers*perWorker) * float64(workers*perWorker-1) / 2
	if s.Sum != wantSum {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramAbsorb(t *testing.T) {
	a, b := New("a"), New("b")
	a.Observe("x_ms", 1)
	a.Observe("x_ms", 100)
	b.Observe("x_ms", 3)
	b.Observe("y_ms", 7)
	a.Absorb(b.Snapshot())
	s := a.Snapshot()
	if s.Histograms["x_ms"].Count != 3 || s.Histograms["x_ms"].Sum != 104 {
		t.Fatalf("merged x_ms = %+v", s.Histograms["x_ms"])
	}
	if s.Histograms["y_ms"].Count != 1 {
		t.Fatalf("merged y_ms = %+v", s.Histograms["y_ms"])
	}
	if len(s.HistogramLE) != len(HistogramBounds()) {
		t.Fatalf("histogram_le missing: %v", s.HistogramLE)
	}
}

// TestAbsorbOrderDeterminism pins the satellite contract: a trace that
// absorbs the same worker snapshots in any arrival order — the only
// thing a different `-jobs N` can change — serializes byte-identically.
func TestAbsorbOrderDeterminism(t *testing.T) {
	worker := func(id int) *Snapshot {
		tr := New("job")
		tr.Count("race.pairs_emitted", int64(id))
		tr.Gauge("pointer.pts_max", float64(10*id))
		tr.Series("refute.pair_paths", "pair"+string(rune('a'+id)), int64(id))
		tr.Observe("core.analyze_ms", float64(id))
		return tr.Snapshot()
	}
	snaps := make([]*Snapshot, 8)
	for i := range snaps {
		snaps[i] = worker(i)
	}

	merge := func(order []int) []byte {
		tr := New("batch")
		for _, i := range order {
			tr.Absorb(snaps[i])
		}
		s := tr.Snapshot()
		s.Trace = nil // span timings are wall-clock, not part of the contract
		raw, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	sequential := merge([]int{0, 1, 2, 3, 4, 5, 6, 7})
	for _, order := range [][]int{
		{7, 6, 5, 4, 3, 2, 1, 0},
		{3, 0, 7, 1, 6, 2, 5, 4},
	} {
		if got := merge(order); !bytes.Equal(got, sequential) {
			t.Fatalf("absorb order %v changed the snapshot:\n%s\nvs\n%s", order, got, sequential)
		}
	}
}
