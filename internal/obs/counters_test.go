package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestCountersConcurrency hammers one Counters value from many
// goroutines; run under -race this is the concurrency-safety contract.
func TestCountersConcurrency(t *testing.T) {
	var c Counters
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add("hits", 1)
				c.Gauge("last", float64(i))
				c.Append("samples", fmt.Sprintf("w%d", w), int64(i))
				c.Observe("lat_ms", float64(i))
				_ = c.Get("hits")
				_ = c.GaugeValue("last")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hits"); got != workers*perWorker {
		t.Fatalf("hits = %d, want %d", got, workers*perWorker)
	}
	counts, gauges, series, hists := c.snapshot()
	if counts["hits"] != workers*perWorker {
		t.Fatalf("snapshot counts = %v", counts)
	}
	if _, ok := gauges["last"]; !ok {
		t.Fatalf("snapshot gauges = %v", gauges)
	}
	if len(series["samples"]) != workers*perWorker {
		t.Fatalf("snapshot series len = %d", len(series["samples"]))
	}
	if hists["lat_ms"].Count != workers*perWorker {
		t.Fatalf("snapshot histogram count = %d", hists["lat_ms"].Count)
	}
}

// TestTraceConcurrency exercises concurrent counter writes through a
// Trace alongside span starts/ends on separate goroutines.
func TestTraceConcurrency(t *testing.T) {
	tr := New("root")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Count("n", 1)
				s := tr.Start("work")
				s.End()
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if tr.Counter("n") != 2000 {
		t.Fatalf("n = %d, want 2000", tr.Counter("n"))
	}
}

func TestNilCounters(t *testing.T) {
	var c *Counters
	c.Add("x", 1)
	c.Gauge("x", 1)
	c.Append("x", "l", 1)
	c.Observe("x", 1)
	c.Hist("x").Observe(1)
	if c.Get("x") != 0 || c.GaugeValue("x") != 0 || c.Hist("x").Count() != 0 {
		t.Fatal("nil Counters must read zeros")
	}
}
