package obs

import (
	"sort"
	"sync"
)

// Counters is a concurrency-safe set of named monotonic counters,
// gauges, labelled series, and histograms. The zero value is ready to
// use; all methods are no-ops on a nil receiver.
type Counters struct {
	mu     sync.Mutex
	counts map[string]int64
	gauges map[string]float64
	series map[string][]SeriesPoint
	hists  map[string]*Histogram
}

// SeriesPoint is one labelled sample of a series.
type SeriesPoint struct {
	Label string `json:"label"`
	Value int64  `json:"value"`
}

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += delta
	c.mu.Unlock()
}

// Gauge sets the named gauge (last write wins).
func (c *Counters) Gauge(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.gauges == nil {
		c.gauges = make(map[string]float64)
	}
	c.gauges[name] = v
	c.mu.Unlock()
}

// Append adds a labelled sample to the named series.
func (c *Counters) Append(series, label string, v int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.series == nil {
		c.series = make(map[string][]SeriesPoint)
	}
	c.series[series] = append(c.series[series], SeriesPoint{Label: label, Value: v})
	c.mu.Unlock()
}

// Hist returns the named histogram, creating it on first use. The
// returned handle is stable, so hot paths can look it up once and
// Observe through it without further map traffic. Nil receiver returns
// a nil (no-op) histogram.
func (c *Counters) Hist(name string) *Histogram {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hists == nil {
		c.hists = make(map[string]*Histogram)
	}
	h := c.hists[name]
	if h == nil {
		h = &Histogram{}
		c.hists[name] = h
	}
	return h
}

// Observe records one sample into the named histogram.
func (c *Counters) Observe(name string, v float64) {
	c.Hist(name).Observe(v)
}

// Get reads a counter (0 if absent).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// GaugeValue reads a gauge (0 if absent).
func (c *Counters) GaugeValue(name string) float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gauges[name]
}

// absorb merges frozen counter state into this set: counters sum,
// gauges keep the maximum (the aggregate of peak-style gauges like
// pointer.pts_max), series append, histograms merge bucket-wise.
func (c *Counters) absorb(counts map[string]int64, gauges map[string]float64, series map[string][]SeriesPoint, hists map[string]HistogramSnapshot) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(counts) > 0 && c.counts == nil {
		c.counts = make(map[string]int64)
	}
	for k, v := range counts {
		c.counts[k] += v
	}
	if len(gauges) > 0 && c.gauges == nil {
		c.gauges = make(map[string]float64)
	}
	for k, v := range gauges {
		if have, ok := c.gauges[k]; !ok || v > have {
			c.gauges[k] = v
		}
	}
	if len(series) > 0 && c.series == nil {
		c.series = make(map[string][]SeriesPoint)
	}
	for k, pts := range series {
		c.series[k] = append(c.series[k], pts...)
	}
	if len(hists) > 0 && c.hists == nil {
		c.hists = make(map[string]*Histogram)
	}
	for k, hs := range hists {
		h := c.hists[k]
		if h == nil {
			h = &Histogram{}
			c.hists[k] = h
		}
		h.merge(hs)
	}
}

// snapshot deep-copies the current state. Series points are sorted by
// (label, value) so snapshots from parallel workers — whose absorb
// order depends on scheduling — serialize byte-identically for any
// worker count (the `-jobs N` determinism guarantee).
func (c *Counters) snapshot() (counts map[string]int64, gauges map[string]float64, series map[string][]SeriesPoint, hists map[string]HistogramSnapshot) {
	if c == nil {
		return nil, nil, nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.counts) > 0 {
		counts = make(map[string]int64, len(c.counts))
		for k, v := range c.counts {
			counts[k] = v
		}
	}
	if len(c.gauges) > 0 {
		gauges = make(map[string]float64, len(c.gauges))
		for k, v := range c.gauges {
			gauges[k] = v
		}
	}
	if len(c.series) > 0 {
		series = make(map[string][]SeriesPoint, len(c.series))
		for k, v := range c.series {
			pts := append([]SeriesPoint(nil), v...)
			sort.SliceStable(pts, func(i, j int) bool {
				if pts[i].Label != pts[j].Label {
					return pts[i].Label < pts[j].Label
				}
				return pts[i].Value < pts[j].Value
			})
			series[k] = pts
		}
	}
	if len(c.hists) > 0 {
		hists = make(map[string]HistogramSnapshot, len(c.hists))
		for k, h := range c.hists {
			hists[k] = h.snapshot()
		}
	}
	return counts, gauges, series, hists
}
