package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Snapshot is a trace frozen for serialization: the span tree plus all
// counters, gauges, series, and histograms. Its JSON form is the
// `-stats` contract. HistogramLE carries the shared bucket upper
// bounds every HistogramSnapshot's counts align with (plus a final
// +Inf bucket); it is present iff Histograms is.
type Snapshot struct {
	Trace       *SpanSnapshot                `json:"trace,omitempty"`
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]float64           `json:"gauges,omitempty"`
	Series      map[string][]SeriesPoint     `json:"series,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
	HistogramLE []float64                    `json:"histogram_le,omitempty"`
}

// SpanSnapshot is one node of the frozen span tree.
type SpanSnapshot struct {
	Name       string          `json:"name"`
	DurationNS int64           `json:"duration_ns"`
	AllocBytes int64           `json:"alloc_bytes"`
	Children   []*SpanSnapshot `json:"children,omitempty"`
}

// Snapshot freezes the trace. Open spans (including the root) report
// their elapsed-so-far duration without being closed.
func (t *Trace) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	root := freezeSpan(t.root)
	t.mu.Unlock()
	counts, gauges, series, hists := t.c.snapshot()
	s := &Snapshot{Trace: root, Counters: counts, Gauges: gauges, Series: series, Histograms: hists}
	if len(hists) > 0 {
		s.HistogramLE = HistogramBounds()
	}
	return s
}

func freezeSpan(s *Span) *SpanSnapshot {
	if s == nil {
		return nil
	}
	out := &SpanSnapshot{Name: s.name, DurationNS: int64(s.dur), AllocBytes: s.alloc}
	if !s.ended {
		out.DurationNS = int64(time.Since(s.start))
		out.AllocBytes = int64(readAlloc() - s.startAlloc)
	}
	for _, c := range s.children {
		out.Children = append(out.Children, freezeSpan(c))
	}
	return out
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Format renders a human-readable breakdown: the span tree with
// durations and allocation deltas, then counters, gauges, and series
// totals in sorted order.
func Format(s *Snapshot) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	if s.Trace != nil {
		formatSpan(&b, s.Trace, 0)
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(&b, "counters\n")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-36s %12d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(&b, "gauges\n")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-36s %12.2f\n", k, s.Gauges[k])
		}
	}
	if len(s.Series) > 0 {
		fmt.Fprintf(&b, "series\n")
		for _, k := range sortedKeys(s.Series) {
			pts := s.Series[k]
			var total int64
			for _, p := range pts {
				total += p.Value
			}
			fmt.Fprintf(&b, "  %-36s %6d samples, total %d\n", k, len(pts), total)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(&b, "histograms\n")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&b, "  %-36s %6d samples, sum %.2f, mean %.2f\n", k, h.Count, h.Sum, mean)
		}
	}
	return b.String()
}

func formatSpan(b *strings.Builder, s *SpanSnapshot, depth int) {
	fmt.Fprintf(b, "%-*s%-*s %10.3fms %10s\n",
		2*depth, "", 36-2*depth, s.Name,
		float64(s.DurationNS)/1e6, formatBytes(s.AllocBytes))
	for _, c := range s.Children {
		formatSpan(b, c, depth+1)
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
