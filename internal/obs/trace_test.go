package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New("root")
	a := tr.Start("a")
	a1 := tr.Start("a1")
	a1.End()
	a2 := tr.Start("a2")
	a2.End()
	a.End()
	b := tr.Start("b")
	b.End()

	snap := tr.Snapshot()
	if snap.Trace.Name != "root" {
		t.Fatalf("root name = %q", snap.Trace.Name)
	}
	if len(snap.Trace.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(snap.Trace.Children))
	}
	sa := snap.Trace.Children[0]
	if sa.Name != "a" || len(sa.Children) != 2 {
		t.Fatalf("span a = %q with %d children, want a/2", sa.Name, len(sa.Children))
	}
	if sa.Children[0].Name != "a1" || sa.Children[1].Name != "a2" {
		t.Fatalf("a's children = %q, %q", sa.Children[0].Name, sa.Children[1].Name)
	}
	if snap.Trace.Children[1].Name != "b" {
		t.Fatalf("second child = %q, want b", snap.Trace.Children[1].Name)
	}
	// The open root reports elapsed time; closed children report fixed
	// durations no longer than the root's.
	if snap.Trace.DurationNS <= 0 {
		t.Fatalf("root duration = %d, want > 0", snap.Trace.DurationNS)
	}
	if sa.DurationNS > snap.Trace.DurationNS {
		t.Fatalf("child longer than root: %d > %d", sa.DurationNS, snap.Trace.DurationNS)
	}
}

func TestSpanEndIsIdempotentAndOutOfOrderSafe(t *testing.T) {
	tr := New("root")
	a := tr.Start("a")
	b := tr.Start("b")
	a.End() // out of order: closes a, reopens root
	b.End() // b already detached from the open chain; must not panic
	a.End() // idempotent
	c := tr.Start("c")
	c.End()
	snap := tr.Snapshot()
	if n := len(snap.Trace.Children); n != 2 {
		t.Fatalf("root children = %d, want 2 (a, c)", n)
	}
	if snap.Trace.Children[1].Name != "c" {
		t.Fatalf("second root child = %q, want c (cur must pop past b)", snap.Trace.Children[1].Name)
	}
}

func TestNilTraceAndSpanAreNoOps(t *testing.T) {
	var tr *Trace
	s := tr.Start("x")
	s.End()
	tr.Count("c", 1)
	tr.Gauge("g", 1)
	tr.Series("s", "l", 1)
	if tr.Counter("c") != 0 || tr.GaugeValue("g") != 0 {
		t.Fatal("nil trace must read zeros")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil trace snapshot must be nil")
	}
	if s.Duration() != 0 || s.Name() != "" {
		t.Fatal("nil span must read zeros")
	}
	if Format(nil) != "" {
		t.Fatal("Format(nil) must be empty")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	tr := New("analyze")
	s := tr.Start("shbg")
	time.Sleep(time.Millisecond)
	s.End()
	tr.Count("shbg.edges.lifecycle", 42)
	tr.Gauge("pointer.pts_max", 7)
	tr.Series("refute.pair_paths", "p1", 100)
	tr.Series("refute.pair_paths", "p2", 3)

	raw, err := tr.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if back.Trace.Name != "analyze" || len(back.Trace.Children) != 1 {
		t.Fatalf("trace tree lost in round trip: %+v", back.Trace)
	}
	if back.Trace.Children[0].DurationNS < int64(time.Millisecond) {
		t.Fatalf("child duration = %dns, want >= 1ms", back.Trace.Children[0].DurationNS)
	}
	if back.Counters["shbg.edges.lifecycle"] != 42 {
		t.Fatalf("counter lost: %v", back.Counters)
	}
	if back.Gauges["pointer.pts_max"] != 7 {
		t.Fatalf("gauge lost: %v", back.Gauges)
	}
	pts := back.Series["refute.pair_paths"]
	if len(pts) != 2 || pts[0].Label != "p1" || pts[0].Value != 100 {
		t.Fatalf("series lost: %v", pts)
	}
}

func TestFormatBreakdown(t *testing.T) {
	tr := New("analyze")
	s := tr.Start("cgpa")
	s.End()
	tr.Count("pointer.passes", 3)
	tr.Gauge("pointer.pts_max", 9)
	tr.Series("refute.pair_paths", "p", 5)
	out := Format(tr.Snapshot())
	for _, want := range []string{"analyze", "cgpa", "counters", "pointer.passes", "gauges", "pointer.pts_max", "series", "refute.pair_paths"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}
