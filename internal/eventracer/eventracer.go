// Package eventracer is the dynamic event-race detector SIERRA is
// compared against (Table 3's last column): it runs the app on the
// simulated Android runtime under randomized schedules, derives a
// dynamic happens-before relation over the observed events, and reports
// conflicting accesses from unordered events.
//
// It reproduces the baseline's characteristic behaviour the paper
// leans on (§6.4): coverage-limited recall (only executed code and
// schedules are seen) and a "race coverage" filter that recognizes
// primitive-typed guard variables but not pointer-check conditions — so
// pointer-guarded ad-hoc synchronization shows up as false positives.
package eventracer

import (
	"fmt"
	"sort"

	"sierra/internal/apk"
	"sierra/internal/interp"
	"sierra/internal/ir"
)

// Race is one dynamic race report, deduplicated across schedules.
type Race struct {
	// Field is the racy field.
	Field string
	// Labels names the two racing events (sorted).
	Labels [2]string
	// RefTyped marks pointer reference races.
	RefTyped bool
	// PointerGuarded marks races whose accesses sit behind pointer-check
	// conditions — the false-positive class EventRacer cannot filter but
	// SIERRA refutes.
	PointerGuarded bool
	// Schedules counts in how many schedules the race was observed.
	Schedules int
}

// Key canonicalizes the report identity.
func (r Race) Key() string {
	return fmt.Sprintf("%s|%s|%s", r.Field, r.Labels[0], r.Labels[1])
}

// Options tunes a detection run.
type Options struct {
	// Schedules is how many random schedules to execute.
	Schedules int
	// EventsPerSchedule bounds each schedule's length.
	EventsPerSchedule int
	// Seed makes runs reproducible.
	Seed int64
	// DisableRaceCoverage turns off the primitive-guard filter.
	DisableRaceCoverage bool
}

// Detect runs the dynamic analysis and returns deduplicated races.
func Detect(app func() *apk.App, opts Options) []Race {
	if opts.Schedules == 0 {
		opts.Schedules = 5
	}
	if opts.EventsPerSchedule == 0 {
		opts.EventsPerSchedule = 40
	}
	found := map[string]*Race{}
	for s := 0; s < opts.Schedules; s++ {
		a := app()
		m := interp.NewMachine(a, opts.Seed+int64(s)*7919)
		m.RegisterManifestReceivers()
		tr := m.Run(opts.EventsPerSchedule)
		for _, r := range analyzeTrace(a.Program, tr, opts) {
			if have, ok := found[r.Key()]; ok {
				have.Schedules++
			} else {
				rr := r
				rr.Schedules = 1
				found[r.Key()] = &rr
			}
		}
	}
	out := make([]Race, 0, len(found))
	for _, r := range found {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// analyzeTrace computes dynamic HB over one trace and reports
// conflicting accesses of unordered events.
func analyzeTrace(prog *ir.Program, tr *interp.Trace, opts Options) []Race {
	n := len(tr.Events)
	if n == 0 {
		return nil
	}
	// hb[a][b]: event a happens-before event b.
	hb := make([][]bool, n)
	for i := range hb {
		hb[i] = make([]bool, n)
	}
	var lastLC = -1
	for _, ev := range tr.Events {
		// Poster/enabler edges.
		if ev.PostedBy >= 0 && ev.PostedBy < n {
			hb[ev.PostedBy][ev.ID] = true
		}
		// Lifecycle events are totally ordered as executed.
		if ev.Kind == interp.EvLifecycle {
			if lastLC >= 0 {
				hb[lastLC][ev.ID] = true
			}
			lastLC = ev.ID
		}
	}
	// Transitive closure (Floyd–Warshall on the small event count).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !hb[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if hb[k][j] {
					hb[i][j] = true
				}
			}
		}
	}

	guards := primitiveGuardFields(prog)
	pointerGuards := pointerGuardFields(prog)

	seen := map[string]bool{}
	var out []Race
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if hb[i][j] || hb[j][i] {
				continue
			}
			e1, e2 := tr.Events[i], tr.Events[j]
			for _, a1 := range e1.Accesses {
				for _, a2 := range e2.Accesses {
					if a1.Field != a2.Field || a1.ObjID != a2.ObjID {
						continue
					}
					if a1.Kind != interp.Write && a2.Kind != interp.Write {
						continue
					}
					// Race coverage: primitive guard variables are
					// recognized and filtered; pointer guards are not.
					if !opts.DisableRaceCoverage && guards[a1.Field] && !a1.RefTyped {
						continue
					}
					labels := [2]string{e1.Label, e2.Label}
					if labels[0] > labels[1] {
						labels[0], labels[1] = labels[1], labels[0]
					}
					r := Race{
						Field:          a1.Field,
						Labels:         labels,
						RefTyped:       a1.RefTyped || a2.RefTyped,
						PointerGuarded: pointerGuards[a1.Field],
					}
					if !seen[r.Key()] {
						seen[r.Key()] = true
						out = append(out, r)
					}
				}
			}
		}
	}
	return out
}

// primitiveGuardFields finds fields loaded into variables that If
// statements compare against int/bool constants — the guard shape
// EventRacer's race coverage recognizes.
func primitiveGuardFields(prog *ir.Program) map[string]bool {
	return guardFieldsWhere(prog, func(op ir.Operand) bool {
		return !op.IsVar && (op.Kind == ir.ConstInt || op.Kind == ir.ConstBool)
	})
}

// pointerGuardFields finds fields guarded by null checks — the shape
// race coverage misses.
func pointerGuardFields(prog *ir.Program) map[string]bool {
	return guardFieldsWhere(prog, func(op ir.Operand) bool {
		return !op.IsVar && op.Kind == ir.ConstNull
	})
}

func guardFieldsWhere(prog *ir.Program, match func(ir.Operand) bool) map[string]bool {
	out := map[string]bool{}
	for _, c := range prog.Classes() {
		for _, m := range c.MethodsSorted() {
			loaded := map[string][]string{}
			for _, blk := range m.Blocks {
				for _, s := range blk.Stmts {
					switch st := s.(type) {
					case *ir.Load:
						loaded[st.Dst] = append(loaded[st.Dst], st.Field)
					case *ir.StaticLoad:
						loaded[st.Dst] = append(loaded[st.Dst], st.Field)
					case *ir.If:
						if match(st.B) {
							for _, f := range loaded[st.A] {
								out[f] = true
							}
						}
					}
				}
			}
		}
	}
	return out
}
