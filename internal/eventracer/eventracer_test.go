package eventracer

import (
	"testing"

	"sierra/internal/core"
	"sierra/internal/corpus"
)

func TestDetectFindsSomeNewsAppRaces(t *testing.T) {
	races := Detect(corpus.NewsApp, Options{Schedules: 12, EventsPerSchedule: 60, Seed: 1})
	if len(races) == 0 {
		t.Fatal("dynamic detector found nothing across 12 schedules")
	}
	for _, r := range races {
		if r.Field == "" || r.Labels[0] == "" || r.Labels[1] == "" {
			t.Errorf("malformed race %+v", r)
		}
		if r.Labels[0] > r.Labels[1] {
			t.Errorf("labels not canonical: %+v", r)
		}
		if r.Schedules < 1 {
			t.Errorf("schedule count missing: %+v", r)
		}
	}
}

func TestDynamicMissesRacesSIERRAFinds(t *testing.T) {
	// The Table 3 phenomenon in miniature: under realistic (limited)
	// schedule budgets the dynamic detector misses statically-proven
	// races because the required interleaving was never executed. With
	// one short schedule, at least one of the news app's two true race
	// fields (mData, mCacheValid) goes unobserved.
	static := core.Analyze(corpus.NewsApp(), core.Options{})
	want := map[string]bool{}
	for _, r := range static.Reports {
		want[r.Pair.A.Field] = true
	}
	if !want["mData"] || !want["mCacheValid"] {
		t.Fatalf("static races missing expected fields: %v", want)
	}
	dynamic := Detect(corpus.NewsApp, Options{Schedules: 1, EventsPerSchedule: 12, Seed: 3})
	got := map[string]bool{}
	for _, r := range dynamic {
		got[r.Field] = true
	}
	if got["mData"] && got["mCacheValid"] {
		t.Error("a single 12-event schedule should not witness both races")
	}
}

func TestRaceCoverageFiltersPrimitiveGuards(t *testing.T) {
	// The Sudoku guard variable (bool mIsRunning) is filtered by race
	// coverage; disabling the filter reveals it.
	filtered := Detect(corpus.SudokuTimerApp, Options{Schedules: 30, EventsPerSchedule: 60, Seed: 5})
	raw := Detect(corpus.SudokuTimerApp, Options{Schedules: 30, EventsPerSchedule: 60, Seed: 5, DisableRaceCoverage: true})
	has := func(rs []Race, field string) bool {
		for _, r := range rs {
			if r.Field == field {
				return true
			}
		}
		return false
	}
	if has(filtered, "mIsRunning") {
		t.Error("race coverage should filter the primitive guard race")
	}
	if !has(raw, "mIsRunning") {
		t.Error("without race coverage the guard race should be visible")
	}
}

func TestPointerGuardedRacesAreFalsePositives(t *testing.T) {
	// Pointer-check guards elude race coverage: EventRacer reports the
	// guarded cache race (SIERRA refutes it — §6.4).
	races := Detect(corpus.NullGuardApp, Options{Schedules: 40, EventsPerSchedule: 60, Seed: 11})
	var sawGuardedFP bool
	for _, r := range races {
		if r.Field == "cache" && r.PointerGuarded {
			sawGuardedFP = true
		}
	}
	if !sawGuardedFP {
		t.Skip("schedules never exercised both cache accesses; acceptable for a dynamic tool")
	}
	// SIERRA refutes exactly that pair.
	static := core.Analyze(corpus.NullGuardApp(), core.Options{})
	for _, rep := range static.Reports {
		if rep.Pair.A.Field == "cache" {
			aCb := static.Registry.Get(rep.Pair.A.Action).Callback
			bCb := static.Registry.Get(rep.Pair.B.Action).Callback
			if (aCb == "onClick" && bCb == "onReceive") || (aCb == "onReceive" && bCb == "onClick") {
				t.Error("SIERRA should have refuted the pointer-guarded cache pair")
			}
		}
	}
}

func TestDetectDeterministicForSeed(t *testing.T) {
	a := Detect(corpus.NewsApp, Options{Schedules: 6, EventsPerSchedule: 40, Seed: 42})
	b := Detect(corpus.NewsApp, Options{Schedules: 6, EventsPerSchedule: 40, Seed: 42})
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("race %d differs: %s vs %s", i, a[i].Key(), b[i].Key())
		}
	}
}

func TestMoreSchedulesFindAtLeastAsMuch(t *testing.T) {
	few := Detect(corpus.NewsApp, Options{Schedules: 2, EventsPerSchedule: 40, Seed: 9})
	many := Detect(corpus.NewsApp, Options{Schedules: 20, EventsPerSchedule: 40, Seed: 9})
	if len(many) < len(few) {
		t.Errorf("more schedules found fewer races: %d vs %d", len(many), len(few))
	}
}
