// Package bitset is the dense-ID substrate shared by the pipeline's
// hottest kernels: a word-packed set of small non-negative integers.
// The pointer analysis stores interned-object ids in it (pointer.ObjSet),
// and the SHBG keeps one Set per action as its happens-before row, so
// set union, intersection tests, and transitive-closure propagation all
// run word-parallel (64 elements per machine op) instead of per-element
// through map or [][]bool indirections.
package bitset

import "math/bits"

// Set is a word-packed bitset. The zero value is an empty set; Add and
// Or grow it as needed. Sets are append-only views over their word
// slice: copy a Set header freely, but share mutation through a single
// owner (the pointer analysis wraps Set behind a shared pointer).
type Set []uint64

// wordsFor returns the word count needed to hold bit i.
func wordsFor(i int) int { return i/64 + 1 }

// New returns a set pre-sized to hold bits [0, nbits).
func New(nbits int) Set {
	if nbits <= 0 {
		return nil
	}
	return make(Set, wordsFor(nbits-1))
}

// Add sets bit i (growing the set), reporting whether it was newly set.
func (s *Set) Add(i int) bool {
	if i < 0 {
		return false
	}
	w := i >> 6
	if w >= len(*s) {
		grown := make(Set, w+1)
		copy(grown, *s)
		*s = grown
	}
	mask := uint64(1) << (uint(i) & 63)
	if (*s)[w]&mask != 0 {
		return false
	}
	(*s)[w] |= mask
	return true
}

// Clear unsets bit i (no-op for out-of-range i; the set never shrinks).
func (s Set) Clear(i int) {
	if i < 0 {
		return
	}
	w := i >> 6
	if w < len(s) {
		s[w] &^= 1 << (uint(i) & 63)
	}
}

// Has reports whether bit i is set (false for out-of-range i — the
// bounds check the callers rely on).
func (s Set) Has(i int) bool {
	if i < 0 {
		return false
	}
	w := i >> 6
	return w < len(s) && s[w]&(1<<(uint(i)&63)) != 0
}

// Or unions other into s word-parallel, returning how many bits were
// newly set (0 = no change).
func (s *Set) Or(other Set) int {
	if len(other) > len(*s) {
		// Trim other's trailing zero words before growing.
		n := len(other)
		for n > 0 && other[n-1] == 0 {
			n--
		}
		if n > len(*s) {
			grown := make(Set, n)
			copy(grown, *s)
			*s = grown
		}
	}
	dst := *s
	added := 0
	n := len(other)
	if n > len(dst) {
		n = len(dst)
	}
	for w := 0; w < n; w++ {
		diff := other[w] &^ dst[w]
		if diff != 0 {
			dst[w] |= diff
			added += bits.OnesCount64(diff)
		}
	}
	return added
}

// Intersects reports whether the sets share a bit — one AND per word.
func (s Set) Intersects(other Set) bool {
	n := len(s)
	if len(other) < n {
		n = len(other)
	}
	for w := 0; w < n; w++ {
		if s[w]&other[w] != 0 {
			return true
		}
	}
	return false
}

// Single returns the sole set bit when the set has exactly one element
// (the strong-update test the refuter's Load/Store transfers make per
// visit — this avoids materializing a slice just to read one id).
func (s Set) Single() (int, bool) {
	idx := -1
	for w, word := range s {
		if word == 0 {
			continue
		}
		if idx >= 0 || word&(word-1) != 0 {
			return -1, false
		}
		idx = w<<6 + bits.TrailingZeros64(word)
	}
	if idx < 0 {
		return -1, false
	}
	return idx, true
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Words reports the backing word count (the pointer.objset_words
// gauge's unit).
func (s Set) Words() int { return len(s) }

// ForEach calls fn for every set bit in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for w, word := range s {
		for word != 0 {
			fn(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// AppendBits appends the set bits in ascending order to dst and returns
// it (an allocation-free ForEach for callers that reuse a scratch
// slice).
func (s Set) AppendBits(dst []int) []int {
	for w, word := range s {
		for word != 0 {
			dst = append(dst, w<<6+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return dst
}

// TakeDelta is the difference-propagation primitive: it appends the bits
// set in s but absent from prev to dst (ascending), marks them in prev
// (growing prev as needed), and returns dst. After the call prev ⊇ s, so
// the next TakeDelta against the same prev yields only bits added to s
// in between.
func (s Set) TakeDelta(prev *Set, dst []int) []int {
	if len(s) > len(*prev) {
		// Trim s's trailing zero words before growing prev.
		n := len(s)
		for n > 0 && s[n-1] == 0 {
			n--
		}
		if n > len(*prev) {
			grown := make(Set, n)
			copy(grown, *prev)
			*prev = grown
		}
	}
	p := *prev
	n := len(s)
	if len(p) < n {
		n = len(p)
	}
	for w := 0; w < n; w++ {
		diff := s[w] &^ p[w]
		if diff == 0 {
			continue
		}
		p[w] |= diff
		for diff != 0 {
			dst = append(dst, w<<6+bits.TrailingZeros64(diff))
			diff &= diff - 1
		}
	}
	return dst
}

// ForEachNew calls fn for every bit set in s but not in prev, ascending
// — TakeDelta's read-only sibling (prev is left untouched).
func (s Set) ForEachNew(prev Set, fn func(i int)) {
	for w, word := range s {
		if w < len(prev) {
			word &^= prev[w]
		}
		for word != 0 {
			fn(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// CopyFrom overwrites s with other's contents, reusing s's backing array
// when it is large enough.
func (s *Set) CopyFrom(other Set) {
	if cap(*s) < len(other) {
		*s = make(Set, len(other))
	} else {
		*s = (*s)[:len(other)]
	}
	copy(*s, other)
}
