package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// ref is the naive map reference implementation the bitset must agree
// with.
type ref map[int]bool

func (r ref) slice() []int {
	out := make([]int, 0, len(r))
	for i := range r {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func TestAgainstMapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		m := ref{}
		for op := 0; op < 200; op++ {
			i := rng.Intn(300)
			switch rng.Intn(3) {
			case 0:
				if s.Add(i) == m[i] {
					return false // Add must report newness, m[i] is prior membership
				}
				m[i] = true
			case 1:
				if s.Has(i) != m[i] {
					return false
				}
			case 2:
				var o Set
				om := ref{}
				for k := 0; k < rng.Intn(20); k++ {
					j := rng.Intn(300)
					o.Add(j)
					om[j] = true
				}
				before := len(m)
				for j := range om {
					m[j] = true
				}
				if s.Or(o) != len(m)-before {
					return false
				}
			}
		}
		if s.Count() != len(m) {
			return false
		}
		var got []int
		s.ForEach(func(i int) { got = append(got, i) })
		want := m.slice()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// AppendBits agrees with ForEach.
		ap := s.AppendBits(nil)
		for i := range ap {
			if ap[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectsSymmetricAndAgainstRef(t *testing.T) {
	f := func(a, b []uint16) bool {
		var sa, sb Set
		ma, mb := ref{}, ref{}
		for _, x := range a {
			sa.Add(int(x) % 500)
			ma[int(x)%500] = true
		}
		for _, x := range b {
			sb.Add(int(x) % 500)
			mb[int(x)%500] = true
		}
		want := false
		for i := range ma {
			if mb[i] {
				want = true
			}
		}
		return sa.Intersects(sb) == want && sb.Intersects(sa) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueAndBounds(t *testing.T) {
	var s Set
	if s.Has(0) || s.Has(63) || s.Has(-1) || s.Count() != 0 || s.Words() != 0 {
		t.Fatal("zero value must be empty")
	}
	if s.Add(-1) {
		t.Fatal("negative bits are rejected")
	}
	if !s.Add(64) || s.Add(64) {
		t.Fatal("Add must report newness exactly once")
	}
	if s.Has(1000) {
		t.Fatal("out-of-range Has must be false, not panic")
	}
	var empty Set
	if s.Intersects(empty) || empty.Intersects(s) {
		t.Fatal("empty set intersects nothing")
	}
	if empty.Or(s) != 1 || !empty.Has(64) {
		t.Fatal("Or must grow the receiver")
	}
	if got := New(65); len(got) != 2 {
		t.Fatalf("New(65) = %d words, want 2", len(got))
	}
	if New(0) != nil {
		t.Fatal("New(0) is nil")
	}
}

// TestTakeDeltaAgainstReference drives a growing set through randomized
// Add/Or bursts, calling TakeDelta after each burst, and checks that (a)
// every delta is exactly the bits added since the previous call, in
// ascending order, and (b) prev converges to the full set.
func TestTakeDeltaAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s, prev Set
		seen := ref{}
		for burst := 0; burst < 20; burst++ {
			fresh := ref{}
			for k := 0; k < rng.Intn(30); k++ {
				i := rng.Intn(700)
				if s.Add(i) {
					fresh[i] = true
				}
			}
			if rng.Intn(2) == 0 {
				var o Set
				for k := 0; k < rng.Intn(10); k++ {
					o.Add(rng.Intn(700))
				}
				o.ForEach(func(i int) {
					if !seen[i] && !fresh[i] {
						fresh[i] = true
					}
				})
				s.Or(o)
			}
			// ForEachNew must agree with the upcoming TakeDelta and leave
			// prev untouched.
			var peek []int
			s.ForEachNew(prev, func(i int) { peek = append(peek, i) })
			got := s.TakeDelta(&prev, nil)
			want := fresh.slice()
			if len(got) != len(want) || len(peek) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] || peek[i] != want[i] {
					return false
				}
			}
			for i := range fresh {
				seen[i] = true
			}
		}
		// prev has absorbed everything: the next delta is empty.
		if d := s.TakeDelta(&prev, nil); len(d) != 0 {
			return false
		}
		return prev.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClearAndCopyFrom(t *testing.T) {
	var s Set
	s.Add(5)
	s.Add(130)
	s.Clear(5)
	if s.Has(5) || !s.Has(130) {
		t.Fatal("Clear must unset exactly the given bit")
	}
	s.Clear(-1)
	s.Clear(100000) // out of range: no-op, no panic
	var c Set
	c.Add(900) // larger than the source: CopyFrom must shrink
	c.CopyFrom(s)
	if c.Has(900) || !c.Has(130) || c.Count() != 1 {
		t.Fatalf("CopyFrom mismatch: %v", c.AppendBits(nil))
	}
	c.Add(7)
	if s.Has(7) {
		t.Fatal("CopyFrom must not alias the source")
	}
	var shrunk Set
	shrunk.CopyFrom(nil)
	if shrunk.Count() != 0 {
		t.Fatal("CopyFrom(nil) empties the set")
	}
}

func TestOrTrimsTrailingZeroWords(t *testing.T) {
	var big Set
	big.Add(1000)
	var small Set
	small.Add(3)
	// big has many words but only low bits matter for small.
	bigLow := make(Set, len(big))
	copy(bigLow, big)
	bigLow[1000>>6] = 0 // now all-zero words beyond word 0
	if small.Or(bigLow) != 0 {
		t.Fatal("OR with zero words adds nothing")
	}
	if small.Words() != 1 {
		t.Fatalf("receiver grew to %d words for all-zero source tail", small.Words())
	}
}

// TestSingleAgainstReference Single must return (id, true) exactly when
// the set has one element, for any population — including elements past
// the first word and sets with trailing zero words.
func TestSingleAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		r := ref{}
		for n := rng.Intn(4); n > 0; n-- {
			i := rng.Intn(300)
			s.Add(i)
			r[i] = true
		}
		// Occasionally force trailing zero words.
		if rng.Intn(2) == 0 {
			i := rng.Intn(300)
			s.Add(i)
			s.Clear(i)
			delete(r, i)
		}
		id, ok := s.Single()
		if len(r) == 1 {
			return ok && id == r.slice()[0]
		}
		return !ok && id == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleEdgeCases pins the boundary shapes: empty set, bit 0, bit
// 63/64 (word boundary), two bits in one word, two bits across words.
func TestSingleEdgeCases(t *testing.T) {
	var empty Set
	if _, ok := empty.Single(); ok {
		t.Error("empty set reported a single element")
	}
	for _, bit := range []int{0, 63, 64, 200} {
		var s Set
		s.Add(bit)
		if id, ok := s.Single(); !ok || id != bit {
			t.Errorf("Single() = (%d, %v) for {%d}", id, ok, bit)
		}
	}
	var sameWord Set
	sameWord.Add(3)
	sameWord.Add(7)
	if _, ok := sameWord.Single(); ok {
		t.Error("{3,7} reported a single element")
	}
	var crossWord Set
	crossWord.Add(3)
	crossWord.Add(100)
	if _, ok := crossWord.Single(); ok {
		t.Error("{3,100} reported a single element")
	}
}
