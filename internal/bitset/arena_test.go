package bitset

import (
	"math/rand"
	"sync"
	"testing"
)

func TestArenaWordsZeroedAndDisjoint(t *testing.T) {
	var a Arena
	w1 := a.Words(10)
	w2 := a.Words(10)
	for i := range w1 {
		w1[i] = ^uint64(0)
	}
	for i, w := range w2 {
		if w != 0 {
			t.Fatalf("w2[%d] = %x after writing w1, want 0", i, w)
		}
	}
	// No spare capacity: appending must not land in w2's words.
	w1 = append(w1, 7)
	if w2[0] != 0 {
		t.Fatal("append to w1 overwrote w2")
	}
	if a.Bytes() != 20*8 {
		t.Fatalf("Bytes() = %d, want %d", a.Bytes(), 20*8)
	}
}

func TestArenaResetRezeroes(t *testing.T) {
	var a Arena
	w := a.Words(64)
	for i := range w {
		w[i] = 0xdeadbeef
	}
	a.Reset()
	w2 := a.Words(64)
	for i, x := range w2 {
		if x != 0 {
			t.Fatalf("post-reset word %d = %x, want 0", i, x)
		}
	}
}

func TestArenaOversizedRequest(t *testing.T) {
	var a Arena
	big := a.Words(arenaChunkWords * 3)
	if len(big) != arenaChunkWords*3 {
		t.Fatalf("len = %d", len(big))
	}
	small := a.Words(8)
	big[len(big)-1] = 1
	if small[0] != 0 {
		t.Fatal("oversized chunk overlaps the next allocation")
	}
}

// TestArenaPerWorkerRace mirrors the refutation pool's usage under the
// race detector: 16 goroutines each own a private arena, repeatedly
// carving word slices, writing a goroutine-unique pattern, resetting,
// and reusing. Any cross-arena sharing or chunk aliasing shows up as a
// race report or a pattern mismatch.
func TestArenaPerWorkerRace(t *testing.T) {
	const workers = 16
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var a Arena
			pattern := uint64(g)*0x9e3779b97f4a7c15 + 1
			for round := 0; round < 50; round++ {
				var live [][]uint64
				for i := 0; i < 40; i++ {
					w := a.Words(1 + rng.Intn(300))
					for j := range w {
						if w[j] != 0 {
							t.Errorf("worker %d: dirty word on handout", g)
							return
						}
						w[j] = pattern
					}
					live = append(live, w)
				}
				for _, w := range live {
					for j := range w {
						if w[j] != pattern {
							t.Errorf("worker %d: pattern corrupted", g)
							return
						}
					}
				}
				a.Reset()
			}
		}(g)
	}
	wg.Wait()
}
