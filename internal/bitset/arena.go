package bitset

// Arena is a chunked bump allocator for bitset words. Callers that
// build many short-lived or batch-lived Sets (per-worker solver
// overlays, per-pair refutation scratch) carve zeroed word slices out
// of large chunks instead of hitting the heap per set, then drop the
// whole batch with Reset.
//
// An Arena is NOT safe for concurrent use — the intended shape is one
// arena per worker, reset between jobs, never shared. Reset recycles
// the chunks without freeing them (the next round's Words calls re-zero
// on handout), so a worker's steady state allocates nothing.
type Arena struct {
	chunks [][]uint64
	ci     int // chunk being bumped
	off    int // words consumed in chunks[ci]
	bytes  int64
}

// arenaChunkWords sizes a standard chunk (128 KiB). Requests larger
// than this get a dedicated chunk of exactly their size.
const arenaChunkWords = 16384

// Words returns a zeroed word slice of length n with no spare capacity
// (appending to it reallocates on the heap rather than corrupting a
// neighbor's words).
func (a *Arena) Words(n int) []uint64 {
	if n <= 0 {
		return nil
	}
	for a.ci < len(a.chunks) && len(a.chunks[a.ci])-a.off < n {
		a.ci++
		a.off = 0
	}
	if a.ci == len(a.chunks) {
		size := arenaChunkWords
		if n > size {
			size = n
		}
		a.chunks = append(a.chunks, make([]uint64, size))
	}
	w := a.chunks[a.ci][a.off : a.off+n : a.off+n]
	a.off += n
	a.bytes += int64(n) * 8
	for i := range w {
		w[i] = 0
	}
	return w
}

// Reset recycles every chunk for reuse. Previously returned slices are
// invalidated — the caller must have dropped all references (per-worker
// memo tables cleared alongside).
func (a *Arena) Reset() {
	a.ci = 0
	a.off = 0
}

// Bytes reports the cumulative bytes handed out over the arena's
// lifetime, across resets — the figure behind the symexec.arena_bytes
// counter.
func (a *Arena) Bytes() int64 { return a.bytes }
