// Config-driven corpus generation: a line-oriented scenario config
// names a weighted mix of scenario families plus a count and/or byte
// budget, and every app in the resulting stream is a pure function of
// (config, index). That purity is the whole determinism story — any
// number of generation workers, in any order, reproduce the same
// byte-identical stream, and the budget cutoff is applied on in-order
// cumulative bytes so parallel runs agree with serial ones.
//
// Format (one directive per line; '#' starts a comment):
//
//	corpus nightly            # corpus name (default app-name prefix)
//	seed 1234                 # corpus seed (default 1)
//	apps 10000                # app count cap (optional)
//	tot-size 2GB              # serialized-byte budget (optional)
//	name-prefix night         # app name prefix override (optional)
//	scenario async-storm weight 3 patterns 8 fields 4
//	scenario service-lifecycle weight 2
//	scenario alias-trap-deep depth 9
//
// At least one of `apps` / `tot-size` and at least one `scenario` line
// are required. Unknown knob names on a scenario line are an error so
// typos do not silently fall back to defaults.
package stream

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"sierra/internal/apk"
	"sierra/internal/appfile"
	"sierra/internal/corpus"
)

// ConfigScenario is one weighted family entry in a corpus config.
type ConfigScenario struct {
	Name   string
	Weight int
	Knobs  map[string]int
}

// Config is a parsed corpus config: a weighted scenario mix under a
// count and/or byte budget.
type Config struct {
	Name    string
	Seed    int64
	Apps    int   // app count cap; 0 = unbounded (budget applies)
	TotSize int64 // serialized-byte budget; 0 = unbounded (count applies)
	Prefix  string
	Mix     []ConfigScenario

	weightSum int
}

// ParseConfig reads the line-oriented config format.
func ParseConfig(r io.Reader) (*Config, error) {
	c := &Config{Name: "corpus", Seed: 1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		bad := func(format string, args ...any) error {
			return fmt.Errorf("config line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "corpus":
			if len(f) != 2 {
				return nil, bad("corpus needs one name")
			}
			c.Name = f[1]
		case "seed":
			if len(f) != 2 {
				return nil, bad("seed needs one integer")
			}
			v, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				return nil, bad("bad seed %q", f[1])
			}
			c.Seed = v
		case "apps":
			if len(f) != 2 {
				return nil, bad("apps needs one integer")
			}
			v, err := strconv.Atoi(f[1])
			if err != nil || v < 0 {
				return nil, bad("bad app count %q", f[1])
			}
			c.Apps = v
		case "tot-size":
			if len(f) != 2 {
				return nil, bad("tot-size needs one size (e.g. 64MB)")
			}
			v, err := ParseSize(f[1])
			if err != nil {
				return nil, bad("%v", err)
			}
			c.TotSize = v
		case "name-prefix":
			if len(f) != 2 {
				return nil, bad("name-prefix needs one value")
			}
			c.Prefix = f[1]
		case "scenario":
			if len(f) < 2 {
				return nil, bad("scenario needs a family name")
			}
			s, ok := corpus.ScenarioByName(f[1])
			if !ok {
				return nil, bad("unknown scenario family %q (see corpusgen -list-scenarios)", f[1])
			}
			entry := ConfigScenario{Name: s.Name, Weight: s.Weight, Knobs: map[string]int{}}
			rest := f[2:]
			if len(rest)%2 != 0 {
				return nil, bad("scenario %s: knobs must be name/value pairs", s.Name)
			}
			for i := 0; i < len(rest); i += 2 {
				key, val := rest[i], rest[i+1]
				v, err := strconv.Atoi(val)
				if err != nil {
					return nil, bad("scenario %s: bad value %q for %s", s.Name, val, key)
				}
				if key == "weight" {
					if v <= 0 {
						return nil, bad("scenario %s: weight must be positive", s.Name)
					}
					entry.Weight = v
					continue
				}
				known := false
				for _, k := range s.Knobs {
					if k.Name == key {
						known = true
						break
					}
				}
				if !known {
					return nil, bad("scenario %s: unknown knob %q", s.Name, key)
				}
				entry.Knobs[key] = v
			}
			c.Mix = append(c.Mix, entry)
		default:
			return nil, bad("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(c.Mix) == 0 {
		return nil, fmt.Errorf("config: no scenario lines")
	}
	if c.Apps == 0 && c.TotSize == 0 {
		return nil, fmt.Errorf("config: need apps and/or tot-size")
	}
	if c.Prefix == "" {
		c.Prefix = c.Name
	}
	for _, m := range c.Mix {
		c.weightSum += m.Weight
	}
	return c, nil
}

// LoadConfig parses a config file from disk.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := ParseConfig(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// ParseSize parses a byte size with an optional KB/MB/GB suffix (powers
// of 1024; a bare number is bytes).
func ParseSize(s string) (int64, error) {
	u := strings.ToUpper(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, u[:len(u)-2]
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, u[:len(u)-2]
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, u[:len(u)-2]
	case strings.HasSuffix(u, "B"):
		u = u[:len(u)-1]
	}
	v, err := strconv.ParseInt(u, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

// AppSeed derives the per-index app seed: an FNV-1a-style mix of the
// corpus seed and the index, so neighboring indices decorrelate.
func (c *Config) AppSeed(i int) int64 {
	h := int64(1469598103934665603)
	mix := func(v int64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 1099511628211
		}
	}
	mix(c.Seed)
	mix(int64(i))
	if h < 0 {
		h = -h
	}
	return h
}

// AppName names the i-th app of the stream. Zero-padded so a corpus
// materialized to disk globs back in stream order.
func (c *Config) AppName(i int) string {
	return fmt.Sprintf("%s-%06d", c.Prefix, i)
}

// PickScenario deterministically selects the i-th app's family by
// weighted draw from the per-index seed.
func (c *Config) PickScenario(i int) (corpus.Scenario, map[string]int) {
	rng := rand.New(rand.NewSource(c.AppSeed(i) ^ 0x5ca1ab1e))
	n := rng.Intn(c.weightSum)
	for _, m := range c.Mix {
		if n < m.Weight {
			s, _ := corpus.ScenarioByName(m.Name)
			return s, m.Knobs
		}
		n -= m.Weight
	}
	s, _ := corpus.ScenarioByName(c.Mix[len(c.Mix)-1].Name)
	return s, c.Mix[len(c.Mix)-1].Knobs
}

// GenerateApp builds the i-th app of the stream — a pure function of
// (config, i), independent of process, worker, or generation order.
func (c *Config) GenerateApp(i int) (*apk.App, *corpus.GroundTruth) {
	s, kv := c.PickScenario(i)
	return s.Generate(c.AppName(i), c.AppSeed(i), kv)
}

// GenerateRaw is GenerateApp serialized to the textual .app format —
// the unit the streaming pipeline moves around. buf, when non-nil, is
// recycled as the destination buffer.
func (c *Config) GenerateRaw(i int, buf []byte) ([]byte, *corpus.GroundTruth, error) {
	app, gt := c.GenerateApp(i)
	raw, err := appfile.AppendBytes(buf[:0], app)
	if err != nil {
		return nil, nil, err
	}
	return raw, gt, nil
}

// StreamApp is one in-order element of a budgeted corpus stream.
type StreamApp struct {
	Index int
	Name  string
	Raw   []byte
	GT    *corpus.GroundTruth
}

// Stream yields the corpus in index order, applying the count cap and
// the cumulative tot-size budget, and stops early if yield errors. The
// budget rule: an app is admitted while cumulative bytes so far are
// below TotSize; the app that crosses the budget is still emitted
// (matching elastic-generator semantics: tot-size is a floor on useful
// output, the stream never under-fills). This serial loop is the
// reference semantics the parallel fused pipeline must reproduce.
func (c *Config) Stream(yield func(StreamApp) error) error {
	var total int64
	for i := 0; c.Admit(i, total); i++ {
		raw, gt, err := c.GenerateRaw(i, nil)
		if err != nil {
			return fmt.Errorf("%s: %w", c.AppName(i), err)
		}
		total += int64(len(raw))
		if err := yield(StreamApp{Index: i, Name: c.AppName(i), Raw: raw, GT: gt}); err != nil {
			return err
		}
	}
	return nil
}

// Admit reports whether the i-th app is inside the budget given the
// cumulative serialized bytes of apps 0..i-1. Shared by the serial
// Stream and the parallel sequencer so cutoff semantics cannot drift.
func (c *Config) Admit(i int, bytesSoFar int64) bool {
	if c.Apps > 0 && i >= c.Apps {
		return false
	}
	if c.TotSize > 0 && bytesSoFar >= c.TotSize {
		return false
	}
	return true
}

// MixSummary renders the weighted mix for logs and -list-scenarios.
func (c *Config) MixSummary() string {
	var b strings.Builder
	for i, m := range c.Mix {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", m.Name, m.Weight)
		if len(m.Knobs) > 0 {
			keys := make([]string, 0, len(m.Knobs))
			for k := range m.Knobs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteByte('(')
			for j, k := range keys {
				if j > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%d", k, m.Knobs[k])
			}
			b.WriteByte(')')
		}
	}
	return b.String()
}
