package stream

import (
	"crypto/sha256"
	"strings"
	"testing"

	"sierra/internal/corpus"
)

const testConfig = `
# test mix
corpus demo
seed 99
apps 12
tot-size 200KB
scenario async-storm weight 3 patterns 4
scenario service-lifecycle weight 2
scenario message-chain depth 5
scenario reflection-storm targets 6
scenario alias-trap-deep depth 7
`

func mustParse(t *testing.T, text string) *Config {
	t.Helper()
	c, err := ParseConfig(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return c
}

func TestParseConfig(t *testing.T) {
	c := mustParse(t, testConfig)
	if c.Name != "demo" || c.Seed != 99 || c.Apps != 12 {
		t.Fatalf("header mismatch: %+v", c)
	}
	if c.TotSize != 200<<10 {
		t.Fatalf("tot-size = %d", c.TotSize)
	}
	if len(c.Mix) != 5 {
		t.Fatalf("mix entries = %d", len(c.Mix))
	}
	if c.Mix[0].Weight != 3 || c.Mix[0].Knobs["patterns"] != 4 {
		t.Fatalf("explicit weight/knob lost: %+v", c.Mix[0])
	}
	// Unweighted entries inherit the family default.
	def, _ := corpus.ScenarioByName("message-chain")
	if c.Mix[2].Weight != def.Weight {
		t.Fatalf("default weight: got %d want %d", c.Mix[2].Weight, def.Weight)
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, bad := range []string{
		"apps 5\n",                               // no scenario
		"scenario async-storm\n",                 // no budget
		"apps 5\nscenario no-such-family\n",      // unknown family
		"apps 5\nscenario async-storm bogus 3\n", // unknown knob
		"apps 5\nscenario async-storm weight\n",  // dangling pair
		"apps 5\ntot-size 12XB\nscenario async-storm\n",
	} {
		if _, err := ParseConfig(strings.NewReader(bad)); err == nil {
			t.Errorf("config %q: expected error", bad)
		}
	}
}

func TestParseSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{{"0", 0}, {"123", 123}, {"123B", 123}, {"4KB", 4096}, {"2MB", 2 << 20}, {"1GB", 1 << 30}, {"3gb", 3 << 30}} {
		got, err := ParseSize(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
}

// streamDigest runs the serial reference stream and hashes every app's
// bytes in order.
func streamDigest(t *testing.T, c *Config) ([32]byte, int, int64) {
	t.Helper()
	h := sha256.New()
	count, bytes := 0, int64(0)
	err := c.Stream(func(a StreamApp) error {
		if a.Index != count {
			t.Fatalf("out-of-order index %d at position %d", a.Index, count)
		}
		if a.Name != c.AppName(a.Index) {
			t.Fatalf("name mismatch: %s", a.Name)
		}
		h.Write(a.Raw)
		count++
		bytes += int64(len(a.Raw))
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum, count, bytes
}

// TestStreamDeterminism: the same config + seed yields a byte-identical
// app stream across two independent runs, and a different seed does not.
func TestStreamDeterminism(t *testing.T) {
	c1 := mustParse(t, testConfig)
	c2 := mustParse(t, testConfig)
	d1, n1, b1 := streamDigest(t, c1)
	d2, n2, b2 := streamDigest(t, c2)
	if d1 != d2 || n1 != n2 || b1 != b2 {
		t.Fatalf("stream not deterministic: (%x,%d,%d) vs (%x,%d,%d)", d1, n1, b1, d2, n2, b2)
	}
	if n1 == 0 {
		t.Fatal("empty stream")
	}
	c3 := mustParse(t, strings.Replace(testConfig, "seed 99", "seed 100", 1))
	d3, _, _ := streamDigest(t, c3)
	if d3 == d1 {
		t.Fatal("different seed produced an identical stream")
	}
}

// TestStreamBudget: tot-size admits apps while cumulative bytes are
// under budget and emits the crossing app, never under-filling.
func TestStreamBudget(t *testing.T) {
	c := mustParse(t, `
seed 7
tot-size 40KB
scenario message-chain
`)
	var total int64
	var count int
	var lastBefore int64
	err := c.Stream(func(a StreamApp) error {
		lastBefore = total
		total += int64(len(a.Raw))
		count++
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if total < c.TotSize {
		t.Fatalf("under-filled: %d < %d", total, c.TotSize)
	}
	if lastBefore >= c.TotSize {
		t.Fatalf("emitted an app after the budget was already crossed (%d >= %d)", lastBefore, c.TotSize)
	}
	if count < 2 {
		t.Fatalf("budget stream too short: %d apps", count)
	}
	// The count cap composes with the byte budget.
	c.Apps = 1
	n := 0
	if err := c.Stream(func(StreamApp) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("apps cap ignored: %d", n)
	}
}

// TestGenerateRawRecyclesBuffer: a large-enough recycled buffer is
// reused rather than reallocated, and contents match the fresh path.
func TestGenerateRawRecyclesBuffer(t *testing.T) {
	c := mustParse(t, "apps 1\nscenario message-chain\n")
	fresh, _, err := c.GenerateRaw(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 2*len(fresh))
	reused, _, err := c.GenerateRaw(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(fresh) != string(reused) {
		t.Fatal("recycled buffer changed serialization")
	}
	if &buf[:1][0] != &reused[:1][0] {
		t.Fatal("large-enough buffer was not reused")
	}
}

// TestPickScenarioMix: every configured family appears in a long
// enough stream, roughly in weight proportion.
func TestPickScenarioMix(t *testing.T) {
	c := mustParse(t, testConfig)
	counts := map[string]int{}
	for i := 0; i < 500; i++ {
		s, _ := c.PickScenario(i)
		counts[s.Name]++
	}
	for _, m := range c.Mix {
		if counts[m.Name] == 0 {
			t.Errorf("family %s never drawn", m.Name)
		}
	}
	if counts["async-storm"] <= counts["service-lifecycle"]/2 {
		t.Errorf("weights ignored: %+v", counts)
	}
}
