// Package stream fuses config-driven corpus generation into the batch
// analysis engine: generation workers produce apps speculatively, a
// sequencer emits them in index order under the config's budget, and
// the batch engine's bounded prefetch queue applies backpressure so
// peak RSS is bounded by (speculation window + prefetch queue + one
// per analysis worker) × max app size — never by corpus size. No byte
// of the corpus touches disk.
//
// Determinism: every app is a pure function of (config, index), and
// the budget cutoff is applied on in-order cumulative bytes, so any
// generation worker count produces the same admitted stream as the
// serial reference loop (Config.Stream) — byte for byte.
package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sierra/internal/appfile"
	"sierra/internal/batch"
	"sierra/internal/core"
	"sierra/internal/obs"
)

// Summary is the per-app verdict a corpus sweep stores per job — the
// one JSON schema shared by `sierra -batch`, `sierra -stream`, and the
// result cache, which is what makes disk and stream runs byte-
// comparable.
type Summary struct {
	App          string  `json:"app"`
	Harnesses    int     `json:"harnesses"`
	Actions      int     `json:"actions"`
	HBEdges      int     `json:"hb_edges"`
	RacyPairs    int     `json:"racy_pairs"`
	Races        int     `json:"races"`
	TotalSeconds float64 `json:"total_seconds"`
	Interrupted  bool    `json:"interrupted"`
}

// AnalyzeFn turns one serialized app into its serialized job result.
type AnalyzeFn func(ctx context.Context, name string, raw []byte) ([]byte, error)

// Analyzer builds the standard pipeline AnalyzeFn: parse, run the
// SIERRA analysis under opts, marshal a Summary. When absorb is
// non-nil each job runs with its own obs trace whose snapshot is
// absorbed into it (the live `-stats`/`-debug-addr` path); opts.Obs is
// overridden per job in that case.
func Analyzer(opts core.Options, absorb *obs.Trace) AnalyzeFn {
	return func(ctx context.Context, name string, raw []byte) ([]byte, error) {
		app, err := appfile.Read(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		o := opts
		if absorb != nil {
			o.Obs = obs.New("sierra:" + app.Name)
		}
		res := core.AnalyzeContext(ctx, app, o)
		if absorb != nil {
			absorb.Absorb(o.Obs.Snapshot())
		}
		return json.Marshal(Summary{
			App:          app.Name,
			Harnesses:    res.NumHarnesses(),
			Actions:      res.NumActions(),
			HBEdges:      res.HBEdges(),
			RacyPairs:    len(res.RacyPairs),
			Races:        res.TrueRaces(),
			TotalSeconds: res.Timing.Total.Seconds(),
			Interrupted:  res.Interrupted,
		})
	}
}

// SourceOptions tunes a fused generation source.
type SourceOptions struct {
	// GenJobs is the generation worker count (0 or 1 = one worker).
	GenJobs int
	// Window bounds speculation: workers may generate at most this many
	// indices ahead of the in-order emission point (0 = 2×GenJobs,
	// min 1). Together with batch.Options.Prefetch this is the RSS
	// bound; overshoot past the byte budget wastes at most Window
	// generations.
	Window int
	// Fingerprint is the cache-key option fingerprint appended to each
	// app's content digest (see batch.Key).
	Fingerprint []string
	// Obs receives corpusgen.* telemetry: apps/bytes admitted, buffers
	// recycled, discarded speculative overshoot, per-app generation
	// latency.
	Obs *obs.Trace
}

// genItem is one speculatively generated app in flight to the
// sequencer.
type genItem struct {
	i    int
	name string
	raw  []byte
	err  error
}

// Source generates apps from a Config on a pool of generation workers
// and yields analysis jobs in index order under the budget. It
// implements batch.Source; it deliberately does not implement
// batch.Sized even for a pure count-capped config, so runs over it are
// always streaming runs (growing totals, batch.stream_* telemetry).
type Source struct {
	cfg     *Config
	analyze AnalyzeFn
	o       SourceOptions

	start    sync.Once
	done     chan struct{}
	stop     sync.Once
	credits  chan struct{}
	items    chan genItem
	pool     chan []byte
	pending  map[int]genItem
	nextEmit int
	bytes    int64
}

// NewSource builds a fused generation source over cfg. The source is
// single-consumer (batch.RunSource's producer goroutine).
func NewSource(cfg *Config, analyze AnalyzeFn, o SourceOptions) *Source {
	if o.GenJobs < 1 {
		o.GenJobs = 1
	}
	if o.Window < 1 {
		o.Window = 2 * o.GenJobs
	}
	if o.Window < o.GenJobs {
		o.Window = o.GenJobs
	}
	return &Source{
		cfg:     cfg,
		analyze: analyze,
		o:       o,
		done:    make(chan struct{}),
		credits: make(chan struct{}, o.Window),
		items:   make(chan genItem, o.Window),
		pool:    make(chan []byte, o.Window+2),
		pending: make(map[int]genItem, o.Window),
	}
}

// launch starts the ticket coordinator and the generation workers.
func (s *Source) launch() {
	for i := 0; i < s.o.Window; i++ {
		s.credits <- struct{}{}
	}
	tickets := make(chan int)
	go func() {
		defer close(tickets)
		for i := 0; ; i++ {
			if s.cfg.Apps > 0 && i >= s.cfg.Apps {
				return
			}
			select {
			case <-s.credits:
			case <-s.done:
				return
			}
			select {
			case tickets <- i:
			case <-s.done:
				return
			}
		}
	}()
	for w := 0; w < s.o.GenJobs; w++ {
		go func() {
			for i := range tickets {
				t0 := time.Now()
				raw, _, err := s.cfg.GenerateRaw(i, s.getBuf())
				s.o.Obs.Observe("corpusgen.gen_ms", float64(time.Since(t0))/1e6)
				select {
				case s.items <- genItem{i: i, name: s.cfg.AppName(i), raw: raw, err: err}:
				case <-s.done:
					return
				}
			}
		}()
	}
}

// Stop terminates generation. Safe to call more than once; Next stops
// on its own at the budget, on ctx cancellation, and on a generation
// error, but an external caller abandoning the source early should
// Stop it to release the workers.
func (s *Source) Stop() {
	s.stop.Do(func() { close(s.done) })
}

func (s *Source) getBuf() []byte {
	select {
	case b := <-s.pool:
		return b
	default:
		return nil
	}
}

func (s *Source) putBuf(b []byte) {
	if b == nil {
		return
	}
	select {
	case s.pool <- b[:0]:
		s.o.Obs.Count("corpusgen.buffers_recycled", 1)
	default:
	}
}

// Next yields the next in-order admitted app as an analysis job —
// batch.Source's contract. It blocks while generation catches up with
// the emission point (and ctx governs that wait).
func (s *Source) Next(ctx context.Context) (batch.Job, bool, error) {
	s.start.Do(s.launch)
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.cfg.Admit(s.nextEmit, s.bytes) {
		s.Stop()
		s.discardPending()
		return batch.Job{}, false, nil
	}
	for {
		if it, ok := s.pending[s.nextEmit]; ok {
			delete(s.pending, s.nextEmit)
			if it.err != nil {
				s.Stop()
				return batch.Job{}, false, fmt.Errorf("generating %s: %w", it.name, it.err)
			}
			s.nextEmit++
			s.bytes += int64(len(it.raw))
			s.o.Obs.Count("corpusgen.apps", 1)
			s.o.Obs.Count("corpusgen.bytes", int64(len(it.raw)))
			select {
			case s.credits <- struct{}{}:
			default:
			}
			return s.job(it), true, nil
		}
		select {
		case it := <-s.items:
			s.pending[it.i] = it
		case <-ctx.Done():
			s.Stop()
			return batch.Job{}, false, nil
		}
	}
}

// job wraps one admitted app as a batch job. The raw buffer is returned
// to the generation pool by Cleanup once the job settles — including
// cache hits and cancellations, where Fn never runs.
func (s *Source) job(it genItem) batch.Job {
	raw := it.raw
	name := it.name
	return batch.Job{
		Name: name + ".app",
		KeyFn: func() (string, error) {
			return batch.Key(batch.RawDigest(raw), s.o.Fingerprint...), nil
		},
		Fn: func(ctx context.Context) ([]byte, error) {
			return s.analyze(ctx, name, raw)
		},
		Cleanup: func() { s.putBuf(raw) },
	}
}

// discardPending recycles buffers of speculative apps generated past
// the budget cutoff.
func (s *Source) discardPending() {
	n := 0
	for i, it := range s.pending {
		s.putBuf(it.raw)
		delete(s.pending, i)
		n++
	}
	for {
		select {
		case it := <-s.items:
			s.putBuf(it.raw)
			n++
		default:
			if n > 0 {
				s.o.Obs.Count("corpusgen.discarded", int64(n))
			}
			return
		}
	}
}

// Emitted reports the admitted app count and byte total so far.
func (s *Source) Emitted() (apps int, bytes int64) { return s.nextEmit, s.bytes }

// VerdictTable renders results as a deterministic TSV verdict
// artifact: one row per app with the headline analysis numbers.
// Job names are reduced to their path base so a disk-materialized run
// (names are file paths) and a streamed run (names are app names) of
// the same corpus render byte-identical tables; timings are excluded
// for the same reason.
func VerdictTable(results []batch.Result) []byte {
	var b bytes.Buffer
	b.WriteString("app\tstatus\tharnesses\tactions\thb_edges\tracy_pairs\traces\tinterrupted\n")
	for _, r := range results {
		name := strings.TrimSuffix(filepath.Base(r.Name), ".app")
		var s Summary
		if len(r.Value) > 0 && json.Unmarshal(r.Value, &s) == nil {
			fmt.Fprintf(&b, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%t\n",
				name, r.Status, s.Harnesses, s.Actions, s.HBEdges,
				s.RacyPairs, s.Races, s.Interrupted)
			continue
		}
		fmt.Fprintf(&b, "%s\t%s\t-\t-\t-\t-\t-\t-\n", name, r.Status)
	}
	return b.Bytes()
}
