package ir

import "fmt"

// Validate checks the structural invariants analyses rely on, for every
// non-framework class:
//
//   - successor indices are in range;
//   - an If is the last statement of its block, which has exactly two
//     successors (then, else);
//   - a Return is the last statement of its block, which has none;
//   - a block with multiple successors ends in an If (no ambiguous
//     fall-through);
//   - statements never follow a terminator.
//
// The builder maintains these by construction; Validate guards
// hand-assembled methods and parsed input.
func (p *Program) Validate() error {
	for _, c := range p.Classes() {
		if c.Framework {
			continue
		}
		for _, m := range c.MethodsSorted() {
			if err := validateMethod(m); err != nil {
				return fmt.Errorf("%s: %w", m.QualifiedName(), err)
			}
		}
	}
	return nil
}

func validateMethod(m *Method) error {
	n := len(m.Blocks)
	for bi, blk := range m.Blocks {
		for _, s := range blk.Succs {
			if s < 0 || s >= n {
				return fmt.Errorf("block %d: successor %d out of range [0,%d)", bi, s, n)
			}
		}
		for si, s := range blk.Stmts {
			last := si == len(blk.Stmts)-1
			switch s.(type) {
			case *If:
				if !last {
					return fmt.Errorf("block %d: If at %d is not the block terminator", bi, si)
				}
				if len(blk.Succs) != 2 {
					return fmt.Errorf("block %d: If needs exactly 2 successors, has %d", bi, len(blk.Succs))
				}
			case *Return:
				if !last {
					return fmt.Errorf("block %d: statement follows Return at %d", bi, si)
				}
				if len(blk.Succs) != 0 {
					return fmt.Errorf("block %d: Return with %d successors", bi, len(blk.Succs))
				}
			}
		}
		if len(blk.Succs) > 1 {
			if len(blk.Stmts) == 0 {
				return fmt.Errorf("block %d: empty block with %d successors", bi, len(blk.Succs))
			}
			if _, ok := blk.Stmts[len(blk.Stmts)-1].(*If); !ok {
				return fmt.Errorf("block %d: multiple successors without an If terminator", bi)
			}
		}
	}
	return nil
}
